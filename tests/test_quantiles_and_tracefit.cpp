// Tests for the reservoir quantile estimator, the simulator's response-time
// percentiles, and the trace -> MMPP fitting pipeline.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "sim/fgbg_simulator.hpp"
#include "sim/statistics.hpp"
#include "traffic/processes.hpp"
#include "workloads/presets.hpp"
#include "workloads/trace.hpp"

namespace perfbg {
namespace {

TEST(ReservoirQuantiles, ExactWhenUnderCapacity) {
  sim::ReservoirQuantiles rq(100);
  for (int i = 1; i <= 11; ++i) rq.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(rq.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(rq.quantile(0.5), 6.0);
  EXPECT_DOUBLE_EQ(rq.quantile(1.0), 11.0);
  EXPECT_EQ(rq.count(), 11u);
}

TEST(ReservoirQuantiles, InterpolatesBetweenOrderStatistics) {
  sim::ReservoirQuantiles rq(10);
  rq.add(0.0);
  rq.add(10.0);
  EXPECT_DOUBLE_EQ(rq.quantile(0.25), 2.5);
}

TEST(ReservoirQuantiles, UniformStreamQuantilesConverge) {
  sim::ReservoirQuantiles rq(20000, 7);
  std::mt19937_64 rng(3);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  for (int i = 0; i < 500000; ++i) rq.add(u(rng));
  EXPECT_NEAR(rq.quantile(0.5), 0.5, 0.02);
  EXPECT_NEAR(rq.quantile(0.95), 0.95, 0.01);
  EXPECT_NEAR(rq.quantile(0.99), 0.99, 0.01);
}

TEST(ReservoirQuantiles, ExponentialTail) {
  sim::ReservoirQuantiles rq(50000, 11);
  std::mt19937_64 rng(5);
  std::exponential_distribution<double> e(1.0);
  for (int i = 0; i < 400000; ++i) rq.add(e(rng));
  EXPECT_NEAR(rq.quantile(0.99), -std::log(0.01), 0.2);
}

TEST(ReservoirQuantiles, ErrorsOnMisuse) {
  sim::ReservoirQuantiles rq(10);
  EXPECT_THROW(rq.quantile(0.5), std::invalid_argument);  // empty
  rq.add(1.0);
  EXPECT_THROW(rq.quantile(1.5), std::invalid_argument);
  EXPECT_THROW(sim::ReservoirQuantiles(0), std::invalid_argument);
}

TEST(SimulatorPercentiles, MM1ResponsePercentilesMatchClosedForm) {
  // M/M/1 response time is Exp(mu - lambda): p-quantile = -ln(1-p)/(mu-la).
  const double rho = 0.5, mu = 1.0 / 6.0, lambda = rho * mu;
  core::FgBgParams params{traffic::poisson(lambda)};
  params.bg_probability = 0.0;
  sim::SimConfig cfg;
  cfg.warmup_time = 2e5;
  cfg.batch_time = 2e6;
  cfg.batches = 10;
  const sim::SimMetrics s = sim::simulate_fgbg(params, cfg);
  const double scale = 1.0 / (mu - lambda);
  EXPECT_NEAR(s.fg_response_p50, -std::log(0.5) * scale, 0.05 * scale);
  EXPECT_NEAR(s.fg_response_p95, -std::log(0.05) * scale, 0.15 * scale);
  EXPECT_NEAR(s.fg_response_p99, -std::log(0.01) * scale, 0.4 * scale);
}

TEST(SimulatorPercentiles, BackgroundWorkInflatesTheTail) {
  core::FgBgParams base{traffic::poisson(0.3 / 6.0)};
  base.bg_probability = 0.0;
  core::FgBgParams with_bg = base;
  with_bg.bg_probability = 0.9;
  sim::SimConfig cfg;
  cfg.warmup_time = 1e5;
  cfg.batch_time = 1e6;
  cfg.batches = 8;
  const sim::SimMetrics a = sim::simulate_fgbg(base, cfg);
  const sim::SimMetrics b = sim::simulate_fgbg(with_bg, cfg);
  EXPECT_GT(b.fg_response_p95, a.fg_response_p95);
}

TEST(TraceFit, RoundTripsPresetStatistics) {
  const auto original = workloads::software_dev();
  const auto trace = workloads::generate_interarrival_trace(original, 400000, 99);
  const auto fit = workloads::fit_mmpp2_from_trace(trace, 30, "roundtrip");
  EXPECT_EQ(fit.name(), "roundtrip");
  EXPECT_NEAR(fit.mean_rate(), original.mean_rate(), 0.03 * original.mean_rate());
  EXPECT_NEAR(fit.interarrival_scv(), original.interarrival_scv(),
              0.15 * original.interarrival_scv());
  EXPECT_NEAR(fit.acf(1), original.acf(1), 0.06);
  EXPECT_NEAR(fit.acf_decay_rate(), original.acf_decay_rate(), 0.05);
}

TEST(TraceFit, UncorrelatedTraceIsRejected) {
  const auto trace =
      workloads::generate_interarrival_trace(workloads::email_poisson(), 100000, 3);
  EXPECT_THROW(workloads::fit_mmpp2_from_trace(trace), std::invalid_argument);
}

TEST(TraceFit, ShortTraceIsRejected) {
  const std::vector<double> tiny(100, 1.0);
  EXPECT_THROW(workloads::fit_mmpp2_from_trace(tiny, 40), std::invalid_argument);
}

}  // namespace
}  // namespace perfbg
