// perfbgd daemon tests: single-flight coalescing, admission-control shed,
// deadline cancellation + watchdog eviction, circuit-breaker trip/recovery,
// graceful drain with no lost requests, warm start, and the socket/IO fault
// hooks (tests/fault_injection.hpp). Every test runs a real Daemon on a real
// Unix-domain socket in-process, so the suite also runs under
// -fsanitize=thread in CI.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fault_injection.hpp"
#include "obs/recorder.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "runner/journal.hpp"
#include "runner/sweep_runner.hpp"
#include "server/client.hpp"
#include "server/daemon.hpp"

namespace perfbg {
namespace {

using obs::JsonValue;
using server::Client;
using server::Daemon;
using server::DaemonOptions;

std::string unique_socket(const std::string& tag) {
  static std::atomic<int> counter{0};
  return ::testing::TempDir() + "perfbgd_" + tag + "_" +
         std::to_string(::getpid()) + "_" + std::to_string(counter.fetch_add(1)) +
         ".sock";
}

/// Fast-reacting daemon defaults for tests: 5 ms watchdog, test hooks on.
DaemonOptions test_options(const std::string& tag) {
  DaemonOptions options;
  options.socket_path = unique_socket(tag);
  options.workers = 2;
  options.watchdog_interval_ms = 5.0;
  options.watchdog_grace_ms = 30.0;
  options.default_deadline_ms = 15000.0;
  options.enable_test_hooks = true;
  return options;
}

/// In-process daemon with its run() loop on a background thread.
class DaemonHarness {
 public:
  explicit DaemonHarness(DaemonOptions options) : report_("test_server") {
    runner::clear_interrupt();  // stray state from other tests must not drain us
    socket_ = options.socket_path;
    daemon_ = std::make_unique<Daemon>(std::move(options), report_);
    daemon_->start();
    runner_ = std::thread([this] { exit_code_ = daemon_->run(); });
  }

  ~DaemonHarness() {
    if (runner_.joinable()) {
      daemon_->force_drain();
      runner_.join();
    }
  }

  /// Level-1 drain and join; returns the daemon exit code.
  int drain() {
    daemon_->begin_drain();
    runner_.join();
    return exit_code_;
  }
  int force() {
    daemon_->force_drain();
    runner_.join();
    return exit_code_;
  }

  const std::string& socket() const { return socket_; }
  Daemon& daemon() { return *daemon_; }
  obs::RunReport& report() { return report_; }
  std::uint64_t counter(const std::string& name) const {
    return report_.metrics().counter(name);
  }

 private:
  obs::RunReport report_;
  std::unique_ptr<Daemon> daemon_;
  std::thread runner_;
  std::string socket_;
  int exit_code_ = -1;
};

JsonValue hooked_solve(const std::string& id, double util, double sleep_ms = 0.0,
                       double wedge_ms = 0.0, const std::string& fail_code = "",
                       double deadline_ms = 0.0) {
  JsonValue v = server::solve_request(id, "email", util, 0.3, 5, deadline_ms);
  if (sleep_ms > 0.0) v.set("test_sleep_ms", sleep_ms);
  if (wedge_ms > 0.0) v.set("test_wedge_ms", wedge_ms);
  if (!fail_code.empty()) v.set("test_fail_code", fail_code);
  return v;
}

std::string error_code_of(const JsonValue& response) {
  const JsonValue* err = response.find("error");
  if (!err || !err->is_object()) return "";
  const JsonValue* code = err->find("code");
  return code && code->is_string() ? code->as_string() : "";
}

bool response_ok(const JsonValue& response) {
  const JsonValue* ok = response.find("ok");
  return ok && ok->is_bool() && ok->as_bool();
}

// ---------------------------------------------------------------------------

TEST(Server, SolvesAndServesFromCache) {
  DaemonHarness h(test_options("cache"));
  Client client(h.socket());

  const JsonValue first = client.request(hooked_solve("a", 0.15));
  ASSERT_TRUE(response_ok(first)) << first.dump();
  EXPECT_FALSE(first.at("cached").as_bool());
  EXPECT_EQ(first.at("id").as_string(), "a");
  const JsonValue* result = first.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_GT(result->at("fg_queue_length").as_double(), 0.0);
  const JsonValue* health = first.find("health");
  ASSERT_NE(health, nullptr);
  EXPECT_TRUE(health->is_object());

  const JsonValue second = client.request(hooked_solve("b", 0.15));
  ASSERT_TRUE(response_ok(second));
  EXPECT_TRUE(second.at("cached").as_bool());
  // Byte-identical payload from the cache.
  EXPECT_EQ(second.at("result").dump(), result->dump());

  EXPECT_EQ(h.counter("server.solve.executed"), 1u);
  EXPECT_EQ(h.counter("server.cache.hit"), 1u);
  EXPECT_EQ(h.drain(), 0);
}

TEST(Server, HerdOfIdenticalRequestsCoalescesToOneSolve) {
  DaemonHarness h(test_options("herd"));
  constexpr int kClients = 16;

  std::atomic<int> ok{0}, coalesced{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      Client client(h.socket());
      const JsonValue response =
          client.request(hooked_solve("h" + std::to_string(i), 0.2, 300.0));
      if (response_ok(response)) ++ok;
      if (const JsonValue* c = response.find("coalesced"); c && c->as_bool())
        ++coalesced;
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(ok.load(), kClients);
  // The herd cost exactly one solver execution; everyone else joined the
  // flight (or, for stragglers, hit the fresh cache entry).
  EXPECT_EQ(h.counter("server.solve.executed"), 1u);
  EXPECT_GE(coalesced.load() + static_cast<int>(h.counter("server.cache.hit")),
            kClients - 1);
  EXPECT_EQ(h.drain(), 0);
}

TEST(Server, SweepSolvesPointsAndSeedsTheCache) {
  DaemonHarness h(test_options("sweep"));
  Client client(h.socket());

  JsonValue sweep = JsonValue::object();
  sweep.set("id", "s");
  sweep.set("kind", "sweep");
  sweep.set("workload", "email");
  JsonValue utils = JsonValue::array();
  utils.push_back(0.1);
  utils.push_back(0.2);
  sweep.set("utils", std::move(utils));

  const JsonValue response = client.request(sweep);
  ASSERT_TRUE(response_ok(response)) << response.dump();
  const JsonValue& points = response.at("result").at("points");
  ASSERT_EQ(points.as_array().size(), 2u);
  for (const JsonValue& point : points.as_array())
    EXPECT_TRUE(point.at("ok").as_bool()) << point.dump();

  // The sweep seeded the per-point cache: the same point as a solve is a hit.
  const JsonValue solo = client.request(hooked_solve("p", 0.1));
  ASSERT_TRUE(response_ok(solo));
  EXPECT_TRUE(solo.at("cached").as_bool());
  EXPECT_EQ(h.drain(), 0);
}

TEST(Server, AdmissionControlShedsWhenQueueIsFull) {
  DaemonOptions options = test_options("shed");
  options.workers = 1;
  options.max_queue = 1;
  DaemonHarness h(options);

  // Distinct slow models: one executing, one queued, the third must shed.
  Client a(h.socket()), b(h.socket()), c(h.socket());
  ASSERT_TRUE(a.send_line(hooked_solve("a", 0.31, 800.0).dump()));
  // Wait until A occupies the worker so B/C ordering is deterministic.
  Client probe(h.socket());
  for (int i = 0; i < 200; ++i) {
    const JsonValue health =
        probe.request(server::control_request("hz", "healthz"));
    if (health.at("result").at("inflight").as_int() >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(b.send_line(hooked_solve("b", 0.32, 800.0).dump()));
  for (int i = 0; i < 200; ++i) {
    const JsonValue health =
        probe.request(server::control_request("hz", "healthz"));
    if (health.at("result").at("queue_depth").as_int() >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  const JsonValue shed = c.request(hooked_solve("c", 0.33, 800.0));
  EXPECT_FALSE(response_ok(shed));
  EXPECT_EQ(error_code_of(shed), "kOverloaded");
  EXPECT_GE(h.counter("server.queue.shed"), 1u);

  // The admitted requests still finish.
  JsonValue ra = a.read_response(), rb = b.read_response();
  EXPECT_TRUE(response_ok(ra)) << ra.dump();
  EXPECT_TRUE(response_ok(rb)) << rb.dump();
  EXPECT_EQ(h.drain(), 0);
}

TEST(Server, ControlRequestsBypassAdmission) {
  DaemonOptions options = test_options("control");
  options.workers = 1;
  options.max_queue = 1;
  DaemonHarness h(options);

  Client busy(h.socket());
  ASSERT_TRUE(busy.send_line(hooked_solve("slow", 0.4, 300.0).dump()));

  // healthz and metricsz answer while the one worker is saturated.
  Client control(h.socket());
  const JsonValue health = control.request(server::control_request("hz", "healthz"));
  ASSERT_TRUE(response_ok(health));
  EXPECT_EQ(health.at("result").at("status").as_string(), "serving");

  const JsonValue metrics = control.request(server::control_request("mz", "metricsz"));
  ASSERT_TRUE(response_ok(metrics));
  const std::string& text = metrics.at("result").at("text").as_string();
  EXPECT_NE(text.find("perfbg_server_requests_total"), std::string::npos);

  EXPECT_TRUE(response_ok(busy.read_response()));
  EXPECT_EQ(h.drain(), 0);
}

TEST(Server, DeadlineCancelsACooperativeSolve) {
  DaemonHarness h(test_options("deadline"));
  Client client(h.socket());

  const auto start = std::chrono::steady_clock::now();
  const JsonValue response =
      client.request(hooked_solve("d", 0.5, /*sleep_ms=*/5000.0, 0.0, "", 150.0));
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();
  EXPECT_FALSE(response_ok(response));
  EXPECT_EQ(error_code_of(response), "kDeadlineExceeded");
  EXPECT_LT(elapsed_ms, 2000.0);  // nowhere near the 5 s sleep

  // The daemon is still healthy afterwards.
  const JsonValue health = client.request(server::control_request("hz", "healthz"));
  EXPECT_TRUE(response_ok(health));
  EXPECT_EQ(h.drain(), 0);
}

TEST(Server, WatchdogEvictsAWedgedSolve) {
  DaemonHarness h(test_options("wedge"));
  Client client(h.socket());

  // The wedge ignores its token, so only the watchdog can answer the client.
  const auto start = std::chrono::steady_clock::now();
  const JsonValue response =
      client.request(hooked_solve("w", 0.5, 0.0, /*wedge_ms=*/1200.0, "", 100.0));
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();
  EXPECT_FALSE(response_ok(response));
  EXPECT_EQ(error_code_of(response), "kDeadlineExceeded");
  EXPECT_LT(elapsed_ms, 1000.0);  // answered well before the wedge returns
  // The waiter's own timeout fires at the deadline; the watchdog eviction
  // lands a grace period later, so poll briefly for the counter.
  for (int i = 0; i < 400 && h.counter("server.watchdog.evicted") == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(h.counter("server.watchdog.evicted"), 1u);
  // Teardown joins the wedged worker (~1.2 s): drain still completes.
  EXPECT_EQ(h.drain(), 0);
}

TEST(Server, CircuitBreakerTripsFastFailsAndRecovers) {
  DaemonOptions options = test_options("breaker");
  options.breaker_threshold = 2;
  options.breaker_cooldown_ms = 150.0;
  DaemonHarness h(options);
  Client client(h.socket());

  // Two distinct points of one model class fail numerically -> class trips.
  for (int i = 0; i < 2; ++i) {
    const JsonValue response = client.request(
        hooked_solve("f" + std::to_string(i), 0.41 + 0.01 * i, 0.0, 0.0,
                     "kNonConvergence"));
    EXPECT_EQ(error_code_of(response), "kNonConvergence");
  }
  const JsonValue fast = client.request(hooked_solve("f2", 0.45));
  EXPECT_EQ(error_code_of(fast), "kCircuitOpen");
  EXPECT_EQ(h.counter("server.breaker.trips"), 1u);
  const std::uint64_t executed_before = h.counter("server.solve.executed");

  // After the cool-down one probe is admitted; its success closes the class.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const JsonValue probe = client.request(hooked_solve("p", 0.46));
  EXPECT_TRUE(response_ok(probe)) << probe.dump();
  EXPECT_GT(h.counter("server.solve.executed"), executed_before);
  EXPECT_GE(h.counter("server.breaker.recovered"), 1u);

  const JsonValue after = client.request(hooked_solve("q", 0.47));
  EXPECT_TRUE(response_ok(after));
  EXPECT_EQ(h.drain(), 0);
}

TEST(Server, DrainFinishesAcceptedWorkAndRefusesNew) {
  DaemonHarness h(test_options("drain"));

  Client inflight(h.socket());
  ASSERT_TRUE(inflight.send_line(hooked_solve("in", 0.22, 300.0).dump()));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  h.daemon().begin_drain();
  // The accepted request still completes with its real result...
  const JsonValue response = inflight.read_response();
  EXPECT_TRUE(response_ok(response)) << response.dump();

  // ...while new connections are refused with a typed overload answer.
  bool refused = false;
  try {
    Client late(h.socket());
    const JsonValue r = late.request(hooked_solve("late", 0.23));
    refused = error_code_of(r) == "kOverloaded";
  } catch (const std::exception&) {
    refused = true;  // listener may already be gone entirely
  }
  EXPECT_TRUE(refused);
  EXPECT_EQ(h.drain(), 0);
}

TEST(Server, ForceDrainAnswersWaitersWithInterrupted) {
  DaemonHarness h(test_options("force"));
  Client client(h.socket());
  ASSERT_TRUE(client.send_line(hooked_solve("x", 0.24, 5000.0).dump()));
  std::this_thread::sleep_for(std::chrono::milliseconds(80));

  const auto start = std::chrono::steady_clock::now();
  const int rc = h.force();
  const JsonValue response = client.read_response();
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();
  EXPECT_EQ(error_code_of(response), "kInterrupted");
  EXPECT_EQ(rc, 9);               // the documented forced-drain exit code
  EXPECT_LT(elapsed_ms, 2000.0);  // cancelled, not waited out
}

TEST(Server, JournalRecordsServedSolvesAndWarmStartsTheNextLife) {
  const std::string journal_path = ::testing::TempDir() + "perfbgd_journal_" +
                                   std::to_string(::getpid()) + ".jsonl";
  std::remove(journal_path.c_str());
  {
    runner::JournalWriter writer(journal_path, "perfbgd");
    DaemonOptions options = test_options("life1");
    options.journal = &writer;
    DaemonHarness h(options);
    Client client(h.socket());
    ASSERT_TRUE(response_ok(client.request(hooked_solve("a", 0.15))));
    EXPECT_EQ(h.drain(), 0);
    EXPECT_GE(h.counter("server.journal.records"), 1u);
  }

  const runner::JournalIndex index = runner::JournalIndex::load(journal_path, "perfbgd");
  ASSERT_GE(index.size(), 1u);

  DaemonOptions options = test_options("life2");
  options.warm_start = &index;
  DaemonHarness h(options);
  Client client(h.socket());
  const JsonValue response = client.request(hooked_solve("b", 0.15));
  ASSERT_TRUE(response_ok(response));
  EXPECT_TRUE(response.at("cached").as_bool());
  EXPECT_EQ(h.counter("server.solve.executed"), 0u);
  EXPECT_EQ(h.drain(), 0);
}

TEST(Server, MalformedFramesGetTypedErrorsAndKeepTheConnection) {
  DaemonOptions options = test_options("malformed");
  options.max_frame_bytes = 4096;
  DaemonHarness h(options);
  Client client(h.socket());

  ASSERT_TRUE(client.send_line("{\"kind\": \"solve\", "));  // truncated JSON
  JsonValue response = client.read_response();
  EXPECT_EQ(error_code_of(response), "kInvalidModel");

  ASSERT_TRUE(client.send_line("{\"kind\": \"solve\", \"util\": NaN}"));
  response = client.read_response();
  EXPECT_EQ(error_code_of(response), "kInvalidModel");

  ASSERT_TRUE(client.send_line(std::string(100, '[') + std::string(100, ']')));
  response = client.read_response();
  EXPECT_EQ(error_code_of(response), "kInvalidModel");

  ASSERT_TRUE(client.send_line("{\"kind\": \"warp\"}"));  // unknown kind
  response = client.read_response();
  EXPECT_EQ(error_code_of(response), "kInvalidModel");

  // The connection survived all of it.
  ASSERT_TRUE(response_ok(client.request(hooked_solve("ok", 0.15))));

  // An oversized frame is answered, then the stream is dropped (no resync).
  ASSERT_TRUE(client.send_line(std::string(8192, 'x')));
  response = client.read_response();
  EXPECT_EQ(error_code_of(response), "kInvalidModel");
  std::string line;
  EXPECT_FALSE(client.recv_line(line));
  EXPECT_EQ(h.drain(), 0);
}

TEST(Server, RequestValidationRejectsBadFields) {
  DaemonHarness h(test_options("validate"));
  Client client(h.socket());

  const char* bad_frames[] = {
      "{\"kind\": \"solve\", \"util\": 0}",
      "{\"kind\": \"solve\", \"p\": 1.5}",
      "{\"kind\": \"solve\", \"buffer\": 0}",
      "{\"kind\": \"solve\", \"workload\": \"nosuch\"}",
      "{\"kind\": \"sweep\"}",                      // sweep without utils
      "{\"kind\": \"solve\", \"utils\": [0.1]}",    // utils on a solve
      "{\"kind\": \"solve\", \"util\": \"x\"}",     // wrong type
  };
  for (const char* frame : bad_frames) {
    ASSERT_TRUE(client.send_line(frame));
    const JsonValue response = client.read_response();
    EXPECT_EQ(error_code_of(response), "kInvalidModel") << frame;
  }
  // An unstable load point is diagnosed by the solver preflight, not parsing.
  const JsonValue unstable = client.request(hooked_solve("u", 1.2));
  EXPECT_EQ(error_code_of(unstable), "kUnstableQbd");
  EXPECT_EQ(h.drain(), 0);
}

TEST(Server, SurvivesInjectedIoFaults) {
  testing::ScriptedIoFaults faults;
  faults.max_read_chunk = 3;        // frames arrive in 3-byte slivers
  faults.read_eagain_storms = 25;   // opening burst of EAGAINs
  testing::ScopedIoFaults guard(faults);

  DaemonHarness h(test_options("iofaults"));
  Client client(h.socket());
  const JsonValue response = client.request(hooked_solve("io", 0.15));
  EXPECT_TRUE(response_ok(response)) << response.dump();
  EXPECT_GT(faults.reads.load(), 10u);

  // Mid-frame disconnect: every read from now on reports EOF. The daemon
  // drops the connection; it must stay serving for a fresh one.
  faults.read_eof_after = 0;
  std::string line;
  client.send_line(hooked_solve("dead", 0.16).dump());
  EXPECT_FALSE(client.recv_line(line));

  faults.read_eof_after = testing::ScriptedIoFaults::kNever;
  Client fresh(h.socket());
  EXPECT_TRUE(response_ok(fresh.request(hooked_solve("alive", 0.15))));

  // Write reset mid-response: the daemon loses that connection, nothing else.
  faults.write_reset_after = faults.writes.load();
  Client doomed(h.socket());
  bool dropped = false;
  try {
    const JsonValue r = doomed.request(hooked_solve("doomed", 0.17));
    dropped = !response_ok(r);
  } catch (const std::exception&) {
    dropped = true;
  }
  EXPECT_TRUE(dropped);
  faults.write_reset_after = testing::ScriptedIoFaults::kNever;

  Client survivor(h.socket());
  EXPECT_TRUE(response_ok(survivor.request(hooked_solve("final", 0.15))));
  EXPECT_EQ(h.drain(), 0);
}

// ---------------------------------------------------------------------------
// Tracing + flight recorder

TEST(Server, TraceIdEchoedAndJoinerCarriesLeaderLinkage) {
  DaemonHarness h(test_options("trace"));

  // Leader: a slow solve under a client-supplied trace id.
  Client leader(h.socket());
  JsonValue lead_req = hooked_solve("lead", 0.2, /*sleep_ms=*/400.0);
  lead_req.set("trace_id", "aaaa1111");
  ASSERT_TRUE(leader.send_line(lead_req.dump()));

  // Wait until the leader's flight is in the air, then join it.
  Client probe(h.socket());
  for (int i = 0; i < 200; ++i) {
    const JsonValue health = probe.request(server::control_request("hz", "healthz"));
    if (health.at("result").at("inflight").as_int() >= 1) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  Client joiner(h.socket());
  JsonValue join_req = hooked_solve("join", 0.2, /*sleep_ms=*/400.0);
  join_req.set("trace_id", "bbbb2222");
  const JsonValue joined = joiner.request(join_req);
  const JsonValue led = leader.read_response();

  ASSERT_TRUE(response_ok(led)) << led.dump();
  ASSERT_TRUE(response_ok(joined)) << joined.dump();

  // Both responses echo their own trace id, zero-padded to 16 hex digits.
  ASSERT_NE(led.find("trace_id"), nullptr) << led.dump();
  EXPECT_EQ(led.at("trace_id").as_string(), obs::trace_id_hex(0xaaaa1111u));
  ASSERT_NE(joined.find("trace_id"), nullptr) << joined.dump();
  EXPECT_EQ(joined.at("trace_id").as_string(), obs::trace_id_hex(0xbbbb2222u));

  // The coalesced response additionally names the leader's trace, so the two
  // requests join up in any downstream store.
  ASSERT_TRUE(joined.at("coalesced").as_bool()) << joined.dump();
  ASSERT_NE(joined.find("trace_leader"), nullptr) << joined.dump();
  EXPECT_EQ(joined.at("trace_leader").as_string(), obs::trace_id_hex(0xaaaa1111u));
  EXPECT_EQ(led.find("trace_leader"), nullptr);  // the leader has no leader

  EXPECT_EQ(h.counter("server.trace.client_supplied"), 2u);
  EXPECT_EQ(h.counter("server.trace.generated"), 0u);

  // tracez carries both completed requests with the same linkage.
  const JsonValue tz = probe.request(server::control_request("tz", "tracez"));
  ASSERT_TRUE(response_ok(tz)) << tz.dump();
  const JsonValue& entries = tz.at("result").at("recorder").at("entries");
  bool saw_leader = false, saw_joiner = false;
  for (const JsonValue& e : entries.as_array()) {
    if (e.at("trace_id").as_string() == obs::trace_id_hex(0xaaaa1111u))
      saw_leader = true;
    if (e.at("trace_id").as_string() == obs::trace_id_hex(0xbbbb2222u)) {
      saw_joiner = true;
      EXPECT_EQ(e.at("outcome").as_string(), "coalesced");
      EXPECT_EQ(e.at("trace_leader").as_string(), obs::trace_id_hex(0xaaaa1111u));
    }
  }
  EXPECT_TRUE(saw_leader);
  EXPECT_TRUE(saw_joiner);
  EXPECT_EQ(h.drain(), 0);
}

TEST(Server, RequestsWithoutTraceIdGetOneAssigned) {
  DaemonHarness h(test_options("autotrace"));
  Client client(h.socket());

  const JsonValue response = client.request(hooked_solve("auto", 0.15));
  ASSERT_TRUE(response_ok(response));
  const JsonValue* trace = response.find("trace_id");
  ASSERT_NE(trace, nullptr) << response.dump();
  std::uint64_t id = 0;
  ASSERT_TRUE(obs::parse_trace_id_hex(trace->as_string(), id));
  EXPECT_NE(id, 0u);
  EXPECT_EQ(h.counter("server.trace.generated"), 1u);

  // An invalid client trace id is a typed bad request, not a hang or a crash.
  JsonValue bad = hooked_solve("bad", 0.15);
  bad.set("trace_id", "not-hex");
  const JsonValue rejected = client.request(bad);
  EXPECT_FALSE(response_ok(rejected));
  EXPECT_EQ(error_code_of(rejected), "kInvalidModel");
  EXPECT_EQ(h.drain(), 0);
}

TEST(Server, WatchdogEvictionDumpsRecorderWithEvictedTrace) {
  DaemonOptions options = test_options("recdump");
  const std::string dump_path = ::testing::TempDir() + "recorder_dump_" +
                                std::to_string(::getpid()) + ".json";
  std::remove(dump_path.c_str());
  options.recorder_dump_path = dump_path;
  DaemonHarness h(options);
  Client client(h.socket());

  JsonValue wedge = hooked_solve("w", 0.5, 0.0, /*wedge_ms=*/1200.0, "", 100.0);
  wedge.set("trace_id", "dead4444");
  const JsonValue response = client.request(wedge);
  EXPECT_FALSE(response_ok(response));
  EXPECT_EQ(error_code_of(response), "kDeadlineExceeded");

  for (int i = 0; i < 400 && h.counter("server.recorder.dumps") == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_GE(h.counter("server.recorder.dumps"), 1u);

  std::ifstream in(dump_path);
  ASSERT_TRUE(in.good()) << dump_path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonValue dump = obs::parse_json(buffer.str());
  EXPECT_EQ(dump.at("schema").as_string(), "perfbg.flight_recorder.v1");
  EXPECT_EQ(dump.at("trigger").as_string(), "watchdog_eviction");
  bool saw_eviction = false;
  for (const JsonValue& e : dump.at("recorder").at("entries").as_array()) {
    if (e.at("outcome").as_string() == "evicted" &&
        e.at("trace_id").as_string() == obs::trace_id_hex(0xdead4444u))
      saw_eviction = true;
  }
  EXPECT_TRUE(saw_eviction) << dump.dump();
  std::remove(dump_path.c_str());
  EXPECT_EQ(h.drain(), 0);
}

TEST(Server, RecorderRingWrapsUnderRequestStorm) {
  DaemonOptions options = test_options("storm");
  options.recorder_capacity = 64;
  options.slow_log_capacity = 8;
  DaemonHarness h(options);

  // 8 clients x 1250 identical requests in lock step: one solve, the rest
  // served from cache/coalescing, every response recorded. Under TSan this
  // also exercises the ring's locking from many connection threads at once.
  constexpr int kClients = 8;
  constexpr int kPerClient = 1250;
  std::atomic<int> answered{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      Client client(h.socket());
      std::string line;
      for (int r = 0; r < kPerClient; ++r) {
        const std::string id = "s" + std::to_string(c) + "/" + std::to_string(r);
        if (!client.send_line(hooked_solve(id, 0.15).dump())) return;
        if (!client.recv_line(line)) return;
        ++answered;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  ASSERT_EQ(answered.load(), kClients * kPerClient);

  const std::uint64_t total = kClients * kPerClient;
  EXPECT_EQ(h.counter("server.recorder.records"), total);
  EXPECT_EQ(h.daemon().recorder().total(), total);
  EXPECT_EQ(h.daemon().recorder().size(), 64u);

  // The ring kept exactly the last 64 records, oldest-first, seq contiguous.
  const std::vector<obs::RequestTrace> entries = h.daemon().recorder().snapshot();
  ASSERT_EQ(entries.size(), 64u);
  for (std::size_t i = 0; i < entries.size(); ++i)
    EXPECT_EQ(entries[i].seq, total - 64 + 1 + i);
  EXPECT_EQ(h.daemon().slow_log().size(), 8u);
  EXPECT_EQ(h.drain(), 0);
}

TEST(Server, TracezAndStatuszBypassAdmissionAndExposeTail) {
  DaemonOptions options = test_options("statusz");
  options.workers = 1;
  options.max_queue = 1;
  DaemonHarness h(options);

  // A completed slow request populates the slow log and the tail exemplar.
  Client warm(h.socket());
  JsonValue slow = hooked_solve("slow", 0.2, /*sleep_ms=*/50.0);
  slow.set("trace_id", "feed5555");
  ASSERT_TRUE(response_ok(warm.request(slow)));

  // Saturate the one worker; the new endpoints must still answer.
  Client busy(h.socket());
  ASSERT_TRUE(busy.send_line(hooked_solve("busy", 0.4, 300.0).dump()));

  Client control(h.socket());
  const JsonValue tz = control.request(server::control_request("tz", "tracez"));
  ASSERT_TRUE(response_ok(tz)) << tz.dump();
  const JsonValue& result = tz.at("result");
  ASSERT_NE(result.find("active"), nullptr);
  ASSERT_NE(result.find("slow"), nullptr);
  ASSERT_NE(result.find("recorder"), nullptr);
  bool slow_has_trace = false;
  for (const JsonValue& e : result.at("slow").as_array())
    if (e.at("trace_id").as_string() == obs::trace_id_hex(0xfeed5555u))
      slow_has_trace = true;
  EXPECT_TRUE(slow_has_trace) << result.at("slow").dump();

  const JsonValue sz = control.request(server::control_request("sz", "statusz"));
  ASSERT_TRUE(response_ok(sz)) << sz.dump();
  const JsonValue& status = sz.at("result");
  EXPECT_EQ(status.at("status").as_string(), "serving");
  EXPECT_GE(status.at("uptime_ms").as_double(), 0.0);
  ASSERT_NE(status.find("recorder"), nullptr);
  ASSERT_NE(status.find("request_wall_ms"), nullptr);
  // The tail exemplar names a concrete trace id (the slow request's, unless a
  // later one displaced it in the same bucket).
  ASSERT_NE(status.at("request_wall_ms").find("tail_trace_id"), nullptr)
      << status.dump();
  std::uint64_t tail_id = 0;
  EXPECT_TRUE(obs::parse_trace_id_hex(
      status.at("request_wall_ms").at("tail_trace_id").as_string(), tail_id));
  EXPECT_NE(tail_id, 0u);
  ASSERT_NE(status.find("counters"), nullptr);
  EXPECT_GE(status.at("counters").at("server.trace.requests").as_int(), 2);

  EXPECT_TRUE(response_ok(busy.read_response()));
  EXPECT_EQ(h.drain(), 0);
}

TEST(Server, JournalLinesCarryTheTraceId) {
  DaemonOptions options = test_options("tracejournal");
  const std::string journal_path = ::testing::TempDir() + "trace_journal_" +
                                   std::to_string(::getpid()) + ".jsonl";
  std::remove(journal_path.c_str());
  {
    runner::JournalWriter writer(journal_path, "perfbgd");
    options.journal = &writer;
    DaemonHarness h(options);
    Client client(h.socket());
    JsonValue request = hooked_solve("j", 0.15);
    request.set("trace_id", "cafe6666");
    ASSERT_TRUE(response_ok(client.request(request)));
    EXPECT_EQ(h.drain(), 0);
  }
  const runner::JournalIndex index = runner::JournalIndex::load(journal_path);
  ASSERT_EQ(index.size(), 1u);
  EXPECT_EQ(index.records().begin()->second.trace, obs::trace_id_hex(0xcafe6666u));
  std::remove(journal_path.c_str());
}

}  // namespace
}  // namespace perfbg
