#include "sim/statistics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <stdexcept>

namespace perfbg::sim {
namespace {

TEST(OnlineMean, MatchesDirectComputation) {
  OnlineMean m;
  const std::vector<double> xs{1.0, 4.0, 2.0, 8.0, 5.0};
  for (double x : xs) m.add(x);
  EXPECT_EQ(m.count(), xs.size());
  EXPECT_NEAR(m.mean(), 4.0, 1e-12);
  // Sample variance: sum((x-4)^2)/4 = (9+0+4+16+1)/4 = 7.5.
  EXPECT_NEAR(m.variance(), 7.5, 1e-12);
}

TEST(OnlineMean, VarianceIsZeroBeforeTwoSamples) {
  OnlineMean m;
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
  m.add(3.0);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
}

TEST(OnlineMean, NumericallyStableForLargeOffsets) {
  OnlineMean m;
  for (int i = 0; i < 1000; ++i) m.add(1e12 + (i % 2));
  EXPECT_NEAR(m.mean(), 1e12 + 0.5, 1e-3);
  EXPECT_NEAR(m.variance(), 0.25025, 1e-3);
}

TEST(TimeWeighted, PiecewiseConstantAverage) {
  TimeWeighted tw(0.0);
  tw.advance(2.0, 1.0);  // level 1 for 2 units
  tw.advance(3.0, 4.0);  // level 4 for 1 unit
  EXPECT_NEAR(tw.average(), (2.0 * 1.0 + 1.0 * 4.0) / 3.0, 1e-12);
  EXPECT_NEAR(tw.elapsed(), 3.0, 1e-12);
}

TEST(TimeWeighted, ResetDiscardsHistory) {
  TimeWeighted tw(0.0);
  tw.advance(10.0, 100.0);
  tw.reset(10.0);
  tw.advance(11.0, 2.0);
  EXPECT_NEAR(tw.average(), 2.0, 1e-12);
}

TEST(TimeWeighted, BackwardsTimeThrows) {
  TimeWeighted tw(5.0);
  EXPECT_THROW(tw.advance(4.0, 1.0), std::invalid_argument);
}

TEST(TQuantile, KnownValues) {
  EXPECT_NEAR(t_quantile_975(1), 12.706, 1e-9);
  EXPECT_NEAR(t_quantile_975(10), 2.228, 1e-9);
  EXPECT_NEAR(t_quantile_975(30), 2.042, 1e-9);
  EXPECT_NEAR(t_quantile_975(10000), 1.96, 1e-9);
}

TEST(BatchMeans, EstimateFromKnownBatches) {
  BatchMeans bm;
  for (double v : {10.0, 12.0, 11.0, 9.0, 13.0}) bm.add_batch(v);
  const Estimate e = bm.estimate();
  EXPECT_NEAR(e.mean, 11.0, 1e-12);
  // s^2 = 2.5, se = sqrt(0.5), hw = t(4) * se.
  EXPECT_NEAR(e.half_width, 2.776 * std::sqrt(0.5), 1e-9);
  EXPECT_TRUE(e.contains(11.5));
  EXPECT_FALSE(e.contains(14.0));
}

TEST(BatchMeans, SingleBatchHasZeroHalfWidth) {
  BatchMeans bm;
  bm.add_batch(5.0);
  EXPECT_DOUBLE_EQ(bm.estimate().half_width, 0.0);
}

TEST(BatchMeans, CoversTrueMeanOfIidNormal) {
  // With many i.i.d. batches the 95% CI should cover the mean ~95% of the
  // time; check coverage is at least 85% over 200 replications.
  std::mt19937_64 rng(7);
  std::normal_distribution<double> normal(3.0, 1.0);
  int covered = 0;
  for (int rep = 0; rep < 200; ++rep) {
    BatchMeans bm;
    for (int b = 0; b < 20; ++b) bm.add_batch(normal(rng));
    if (bm.estimate().contains(3.0)) ++covered;
  }
  EXPECT_GE(covered, 170);
}

TEST(Estimate, Bounds) {
  const Estimate e{10.0, 2.0};
  EXPECT_DOUBLE_EQ(e.lo(), 8.0);
  EXPECT_DOUBLE_EQ(e.hi(), 12.0);
}

}  // namespace
}  // namespace perfbg::sim
