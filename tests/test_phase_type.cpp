#include "traffic/phase_type.hpp"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>

#include "traffic/sampler.hpp"

namespace perfbg::traffic {
namespace {

TEST(PhaseType, ExponentialMoments) {
  const PhaseType ph = PhaseType::exponential(4.0);
  EXPECT_EQ(ph.phases(), 1u);
  EXPECT_NEAR(ph.mean(), 4.0, 1e-12);
  EXPECT_NEAR(ph.moment(2), 32.0, 1e-10);  // 2 * mean^2
  EXPECT_NEAR(ph.scv(), 1.0, 1e-12);
}

TEST(PhaseType, ErlangMoments) {
  for (int k : {1, 2, 4, 8}) {
    const PhaseType ph = PhaseType::erlang(k, 6.0);
    EXPECT_NEAR(ph.mean(), 6.0, 1e-10) << k;
    EXPECT_NEAR(ph.scv(), 1.0 / k, 1e-10) << k;
  }
}

TEST(PhaseType, HyperexponentialMoments) {
  const double p1 = 0.25, m1 = 2.0, m2 = 10.0;
  const PhaseType ph = PhaseType::hyperexponential(p1, m1, m2);
  const double mean = p1 * m1 + (1.0 - p1) * m2;
  EXPECT_NEAR(ph.mean(), mean, 1e-12);
  const double ex2 = 2.0 * (p1 * m1 * m1 + (1.0 - p1) * m2 * m2);
  EXPECT_NEAR(ph.moment(2), ex2, 1e-10);
  EXPECT_GE(ph.scv(), 1.0);
}

TEST(PhaseType, Coxian2Mean) {
  // E[T] = 1/mu1 + q / mu2.
  const PhaseType ph = PhaseType::coxian2(0.5, 0.25, 0.6);
  EXPECT_NEAR(ph.mean(), 2.0 + 0.6 * 4.0, 1e-12);
}

TEST(PhaseType, Coxian2WithZeroContinuationIsExponential) {
  const PhaseType ph = PhaseType::coxian2(0.2, 1.0, 0.0);
  EXPECT_NEAR(ph.mean(), 5.0, 1e-12);
  EXPECT_NEAR(ph.scv(), 1.0, 1e-12);
}

TEST(PhaseType, ScaledToMean) {
  const PhaseType ph = PhaseType::erlang(3, 2.0).scaled_to_mean(7.0);
  EXPECT_NEAR(ph.mean(), 7.0, 1e-10);
  EXPECT_NEAR(ph.scv(), 1.0 / 3.0, 1e-10);  // shape preserved
}

TEST(PhaseType, VarianceIsConsistent) {
  const PhaseType ph = PhaseType::hyperexponential(0.3, 1.0, 9.0);
  EXPECT_NEAR(ph.variance(), ph.moment(2) - ph.mean() * ph.mean(), 1e-10);
}

TEST(PhaseType, ValidationRejectsMalformedInput) {
  using M = linalg::Matrix;
  // alpha does not sum to 1.
  EXPECT_THROW(PhaseType({0.5}, M{{-1.0}}), std::invalid_argument);
  // negative alpha.
  EXPECT_THROW(PhaseType({-0.5, 1.5}, M{{-1.0, 0.0}, {0.0, -1.0}}), std::invalid_argument);
  // positive diagonal.
  EXPECT_THROW(PhaseType({1.0}, M{{1.0}}), std::invalid_argument);
  // row sums > 0.
  EXPECT_THROW(PhaseType({1.0, 0.0}, M{{-1.0, 2.0}, {0.0, -1.0}}), std::invalid_argument);
  // no absorption anywhere.
  EXPECT_THROW(PhaseType({1.0, 0.0}, M{{-1.0, 1.0}, {1.0, -1.0}}), std::invalid_argument);
  // shape mismatch.
  EXPECT_THROW(PhaseType({1.0}, M(2, 2, -1.0)), std::invalid_argument);
}

TEST(PhaseType, FactoryArgumentChecks) {
  EXPECT_THROW(PhaseType::exponential(0.0), std::invalid_argument);
  EXPECT_THROW(PhaseType::erlang(0, 1.0), std::invalid_argument);
  EXPECT_THROW(PhaseType::hyperexponential(0.0, 1.0, 2.0), std::invalid_argument);
  EXPECT_THROW(PhaseType::coxian2(1.0, 1.0, 1.5), std::invalid_argument);
  EXPECT_THROW(PhaseType::exponential(1.0).scaled_to_mean(-1.0), std::invalid_argument);
}

TEST(PhaseTypeSampler, EmpiricalMomentsMatchAnalytic) {
  std::mt19937_64 rng(31);
  for (const PhaseType& ph :
       {PhaseType::exponential(3.0), PhaseType::erlang(4, 3.0),
        PhaseType::hyperexponential(0.2, 1.0, 8.0), PhaseType::coxian2(1.0, 0.5, 0.4)}) {
    const PhaseTypeSampler sampler(ph);
    double sum = 0.0, sum2 = 0.0;
    const int n = 300000;
    for (int i = 0; i < n; ++i) {
      const double t = sampler.sample(rng);
      ASSERT_GT(t, 0.0);
      sum += t;
      sum2 += t * t;
    }
    const double mean = sum / n;
    const double scv = (sum2 / n - mean * mean) / (mean * mean);
    EXPECT_NEAR(mean, ph.mean(), 0.03 * ph.mean()) << ph.name();
    EXPECT_NEAR(scv, ph.scv(), 0.1 * std::max(1.0, ph.scv())) << ph.name();
  }
}

}  // namespace
}  // namespace perfbg::traffic
