// Tests of the phase-type idle-wait extension (the second half of the
// paper's footnote 3): the idle-wait clock becomes a PH distribution via a
// third Kronecker factor. Anchors: exact agreement with the exponential
// path, invariance laws, simulation cross-checks against the simulator's
// independent Erlang idle-wait implementation, and the expected monotone
// effect of idle-wait variability.
#include <gtest/gtest.h>

#include "core/model.hpp"
#include "core/truncated_chain.hpp"
#include "sim/fgbg_simulator.hpp"
#include "traffic/processes.hpp"
#include "workloads/presets.hpp"

namespace perfbg::core {
namespace {

using traffic::PhaseType;

FgBgParams base(double util, double p, double idle_intensity = 1.0) {
  FgBgParams params{traffic::poisson(util / 6.0)};
  params.bg_probability = p;
  params.bg_buffer = 3;
  params.idle_wait_intensity = idle_intensity;
  return params;
}

TEST(ModelPhIdle, ExponentialDistributionObjectMatchesScalarPath) {
  FgBgParams scalar = base(0.3, 0.5, 1.5);
  FgBgParams ph = scalar;
  ph.idle_wait_distribution = PhaseType::exponential(1.5 * 6.0);
  const FgBgMetrics a = FgBgModel(scalar).solve().metrics();
  const FgBgMetrics b = FgBgModel(ph).solve().metrics();
  EXPECT_NEAR(a.fg_queue_length, b.fg_queue_length, 1e-10);
  EXPECT_NEAR(a.bg_completion, b.bg_completion, 1e-10);
  EXPECT_NEAR(a.fg_delayed, b.fg_delayed, 1e-10);
  EXPECT_NEAR(a.idle_fraction, b.idle_fraction, 1e-10);
}

TEST(ModelPhIdle, InvariantsHoldWithErlangWait) {
  FgBgParams params = base(0.35, 0.6);
  params.idle_wait_distribution = PhaseType::erlang(3, 6.0);
  const FgBgSolution sol = FgBgModel(params).solve();
  const FgBgMetrics& m = sol.metrics();
  EXPECT_NEAR(m.probability_mass, 1.0, 1e-8);
  EXPECT_NEAR(m.fg_throughput, params.arrivals.mean_rate(), 1e-9);
  EXPECT_NEAR(m.bg_accept_rate, m.bg_throughput, 1e-10);
  EXPECT_NEAR(m.busy_fraction + m.idle_fraction, 1.0, 1e-9);
}

TEST(ModelPhIdle, ErlangWaitAgreesWithIndependentSimulatorPath) {
  // The simulator's IdleWaitKind::kErlang2 is a separate hand-coded
  // implementation — agreement here checks the Kronecker construction
  // against code that never saw a PhaseType.
  FgBgParams params = base(0.4, 0.6, 1.0);
  params.idle_wait_distribution = PhaseType::erlang(2, 6.0);
  const FgBgMetrics m = FgBgModel(params).solve().metrics();

  FgBgParams sim_params = base(0.4, 0.6, 1.0);  // exponential knob, same mean
  sim::SimConfig cfg;
  cfg.warmup_time = 2e5;
  cfg.batch_time = 1.5e6;
  cfg.batches = 10;
  cfg.idle_wait = sim::IdleWaitKind::kErlang2;
  const sim::SimMetrics s = sim::simulate_fgbg(sim_params, cfg);

  EXPECT_NEAR(m.fg_queue_length, s.fg_queue_length.mean,
              3.0 * s.fg_queue_length.half_width + 0.02);
  EXPECT_NEAR(m.bg_completion, s.bg_completion.mean,
              3.0 * s.bg_completion.half_width + 0.01);
  EXPECT_NEAR(m.bg_queue_length, s.bg_queue_length.mean,
              3.0 * s.bg_queue_length.half_width + 0.03);
  EXPECT_NEAR(m.idle_fraction, s.idle_fraction.mean,
              3.0 * s.idle_fraction.half_width + 0.01);
}

TEST(ModelPhIdle, PhWaitOnParamsDrivesTheSimulatorToo) {
  // Setting idle_wait_distribution must route the simulator through the
  // same PH sampler; analytic and simulated then agree for a wait shape
  // that the IdleWaitKind enum does not offer (hyperexponential).
  FgBgParams params = base(0.35, 0.5);
  params.idle_wait_distribution = PhaseType::hyperexponential(0.3, 2.0, 12.0);
  const FgBgMetrics m = FgBgModel(params).solve().metrics();
  sim::SimConfig cfg;
  cfg.warmup_time = 2e5;
  cfg.batch_time = 1.5e6;
  cfg.batches = 10;
  const sim::SimMetrics s = sim::simulate_fgbg(params, cfg);
  EXPECT_NEAR(m.bg_completion, s.bg_completion.mean,
              3.0 * s.bg_completion.half_width + 0.01);
  EXPECT_NEAR(m.fg_queue_length, s.fg_queue_length.mean,
              3.0 * s.fg_queue_length.half_width + 0.02);
}

TEST(ModelPhIdle, DeterministicLikeWaitDelaysBgStartsLess) {
  // At equal mean wait, a low-variability (Erlang-8) wait produces fewer
  // very short waits, so fewer background starts sneak in just before
  // arrivals: the delayed fraction drops and completion falls slightly.
  FgBgParams expo = base(0.25, 0.6, 1.0);
  FgBgParams det = expo;
  det.idle_wait_distribution = PhaseType::erlang(8, 6.0);
  const FgBgMetrics m_expo = FgBgModel(expo).solve().metrics();
  const FgBgMetrics m_det = FgBgModel(det).solve().metrics();
  EXPECT_LT(m_det.fg_delayed_arrivals, m_expo.fg_delayed_arrivals);
  EXPECT_NEAR(m_det.bg_completion, m_expo.bg_completion, 0.05);
}

TEST(ModelPhIdle, CombinedPhServiceAndPhWaitAndMmpp) {
  // Full third-order Kronecker: 2 arrival x 2 service x 2 wait phases.
  FgBgParams params{traffic::mmpp2(0.002, 0.0008, 0.04, 0.004)};
  params.bg_probability = 0.5;
  params.bg_buffer = 2;
  params.service_distribution = PhaseType::erlang(2, 6.0);
  params.idle_wait_distribution = PhaseType::erlang(2, 6.0);
  const FgBgSolution sol = FgBgModel(params).solve();
  EXPECT_EQ(sol.layout().phases(), 8u);
  EXPECT_NEAR(sol.metrics().probability_mass, 1.0, 1e-8);
  EXPECT_NEAR(sol.metrics().fg_throughput, params.arrivals.mean_rate(), 1e-9);

  // And the truncated chain agrees with the QBD on this fully general case.
  const TruncatedFgBgChain chain(params, 60);
  const linalg::Vector pi = chain.stationary();
  EXPECT_NEAR(chain.mean_fg_jobs(pi), sol.metrics().fg_queue_length, 1e-5);
  EXPECT_NEAR(chain.bg_completion_rate(pi), sol.metrics().bg_throughput, 1e-8);
}

TEST(ModelPhIdle, MeanIdleWaitAccessors) {
  FgBgParams params = base(0.3, 0.5, 2.0);
  EXPECT_NEAR(params.mean_idle_wait(), 12.0, 1e-12);
  params.idle_wait_distribution = PhaseType::erlang(4, 9.0);
  EXPECT_NEAR(params.mean_idle_wait(), 9.0, 1e-12);
  EXPECT_NEAR(params.idle_wait_rate(), 1.0 / 9.0, 1e-12);
}

}  // namespace
}  // namespace perfbg::core
