#include "traffic/map_process.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "linalg/lu.hpp"
#include "traffic/processes.hpp"

namespace perfbg::traffic {
namespace {

TEST(Poisson, RateAndMean) {
  const auto m = poisson(0.25);
  EXPECT_NEAR(m.mean_rate(), 0.25, 1e-14);
  EXPECT_NEAR(m.mean_interarrival(), 4.0, 1e-14);
  EXPECT_EQ(m.phases(), 1u);
}

TEST(Poisson, ExponentialInterarrivalsHaveUnitScv) {
  EXPECT_NEAR(poisson(3.0).interarrival_scv(), 1.0, 1e-12);
  EXPECT_NEAR(poisson(3.0).interarrival_cv(), 1.0, 1e-12);
}

TEST(Poisson, ZeroAutocorrelation) {
  const auto m = poisson(1.0);
  for (double a : m.acf_series(20)) EXPECT_NEAR(a, 0.0, 1e-12);
  EXPECT_TRUE(m.is_renewal());
  EXPECT_DOUBLE_EQ(m.acf_decay_rate(), 0.0);
}

TEST(Mmpp2, MeanRateMatchesStationaryMixture) {
  // lambda = (v2 l1 + v1 l2) / (v1 + v2).
  const double v1 = 0.3, v2 = 0.1, l1 = 5.0, l2 = 0.5;
  const auto m = mmpp2(v1, v2, l1, l2);
  EXPECT_NEAR(m.mean_rate(), (v2 * l1 + v1 * l2) / (v1 + v2), 1e-12);
}

TEST(Mmpp2, PhaseStationaryIsStationary) {
  const auto m = mmpp2(0.2, 0.4, 3.0, 1.0);
  const linalg::Vector pi = m.phase_stationary();
  EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-14);
  const linalg::Vector residual = linalg::vec_mat(pi, m.d0() + m.d1());
  EXPECT_NEAR(residual[0], 0.0, 1e-14);
  EXPECT_NEAR(residual[1], 0.0, 1e-14);
}

TEST(Mmpp2, ScvExceedsOne) {
  // Bursty MMPPs are more variable than Poisson.
  EXPECT_GT(mmpp2(0.01, 0.003, 10.0, 1.0).interarrival_scv(), 1.0);
}

TEST(Mmpp2, EqualPhaseRatesDegenerateToPoisson) {
  // l1 == l2 makes phase changes unobservable: CV = 1, ACF = 0.
  const auto m = mmpp2(0.3, 0.7, 2.0, 2.0);
  EXPECT_NEAR(m.interarrival_scv(), 1.0, 1e-10);
  EXPECT_NEAR(m.acf(1), 0.0, 1e-10);
}

TEST(Mmpp2, AcfDecayIsGeometric) {
  const auto m = mmpp2(0.02, 0.01, 8.0, 0.5);
  const auto acf = m.acf_series(30);
  const double gamma = m.acf_decay_rate();
  for (int k = 1; k < 29; ++k)
    EXPECT_NEAR(acf[static_cast<std::size_t>(k)] / acf[static_cast<std::size_t>(k - 1)],
                gamma, 1e-9)
        << k;
}

TEST(Mmpp2, AcfSeriesMatchesSingleLagCalls) {
  const auto m = mmpp2(0.05, 0.02, 4.0, 0.2);
  const auto series = m.acf_series(10);
  EXPECT_NEAR(series[0], m.acf(1), 1e-15);
  EXPECT_NEAR(series[9], m.acf(10), 1e-15);
}

TEST(Mmpp2, EmbeddedTransitionMatrixIsStochastic) {
  const auto m = mmpp2(0.3, 0.1, 2.0, 0.7);
  const linalg::Matrix& p = m.embedded_transition_matrix();
  for (std::size_t i = 0; i < 2; ++i) EXPECT_NEAR(p.row_sum(i), 1.0, 1e-12);
  // Embedded stationary sums to 1 and is a fixed point of P.
  const linalg::Vector& pe = m.embedded_stationary();
  EXPECT_NEAR(pe[0] + pe[1], 1.0, 1e-12);
  const linalg::Vector fixed = linalg::vec_mat(pe, p);
  EXPECT_NEAR(fixed[0], pe[0], 1e-12);
}

TEST(Mmpp2, MeanInterarrivalFromEmbeddedChainIsConsistent) {
  // E[X] = pi_e (-D0)^{-1} 1 must equal 1 / lambda.
  const auto m = mmpp2(0.3, 0.1, 2.0, 0.7);
  linalg::Matrix neg_d0 = m.d0();
  neg_d0 *= -1.0;
  const linalg::Vector v =
      linalg::mat_vec(linalg::inverse(neg_d0), linalg::Vector(2, 1.0));
  EXPECT_NEAR(linalg::dot(m.embedded_stationary(), v), m.mean_interarrival(), 1e-12);
}

TEST(Scaling, ScaledByChangesOnlyRate) {
  const auto m = mmpp2(0.02, 0.01, 8.0, 0.5);
  const auto s = m.scaled_by(3.0);
  EXPECT_NEAR(s.mean_rate(), 3.0 * m.mean_rate(), 1e-12);
  EXPECT_NEAR(s.interarrival_scv(), m.interarrival_scv(), 1e-10);
  EXPECT_NEAR(s.acf(1), m.acf(1), 1e-10);
  EXPECT_NEAR(s.acf_decay_rate(), m.acf_decay_rate(), 1e-10);
}

TEST(Scaling, ScaledToRateHitsTarget) {
  const auto s = mmpp2(0.02, 0.01, 8.0, 0.5).scaled_to_rate(0.125);
  EXPECT_NEAR(s.mean_rate(), 0.125, 1e-12);
}

TEST(Scaling, ScaledToUtilization) {
  const auto s = poisson(1.0).scaled_to_utilization(0.42, 6.0);
  EXPECT_NEAR(s.mean_rate() * 6.0, 0.42, 1e-12);
}

TEST(Scaling, BadArgumentsThrow) {
  const auto m = poisson(1.0);
  EXPECT_THROW(m.scaled_by(0.0), std::invalid_argument);
  EXPECT_THROW(m.scaled_to_rate(-1.0), std::invalid_argument);
  EXPECT_THROW(m.scaled_to_utilization(0.0, 6.0), std::invalid_argument);
  EXPECT_THROW(m.scaled_to_utilization(0.5, 0.0), std::invalid_argument);
}

TEST(Scaling, PastSaturationUtilizationIsAllowed) {
  // Sweeps probe across the stability boundary; the arrival process itself
  // is well-defined there (the solve pipeline's preflight diagnoses the
  // unstable queue with a typed error).
  const auto s = poisson(1.0).scaled_to_utilization(1.5, 6.0);
  EXPECT_NEAR(s.mean_rate() * 6.0, 1.5, 1e-12);
}

TEST(Renamed, ChangesOnlyName) {
  const auto m = poisson(1.0).renamed("foo");
  EXPECT_EQ(m.name(), "foo");
  EXPECT_NEAR(m.mean_rate(), 1.0, 1e-14);
}

TEST(Validation, RejectsMalformedMaps) {
  // D1 negative.
  EXPECT_THROW(MarkovianArrivalProcess(linalg::Matrix{{-1.0}}, linalg::Matrix{{-1.0}}),
               std::invalid_argument);
  // Shapes differ.
  EXPECT_THROW(
      MarkovianArrivalProcess(linalg::Matrix{{-1.0}}, linalg::Matrix(2, 2, 0.5)),
      std::invalid_argument);
  // Rows of D0 + D1 must sum to zero.
  EXPECT_THROW(MarkovianArrivalProcess(linalg::Matrix{{-2.0}}, linalg::Matrix{{1.0}}),
               std::invalid_argument);
  // Nonnegative diagonal of D0.
  EXPECT_THROW(MarkovianArrivalProcess(linalg::Matrix{{0.0}}, linalg::Matrix{{0.0}}),
               std::invalid_argument);
}

TEST(Ipp, HighVariabilityZeroCorrelation) {
  const auto m = ipp(5.0, 0.05, 0.02);
  EXPECT_GT(m.interarrival_scv(), 1.0);
  // IPP interarrivals are hyperexponential (a renewal process).
  for (double a : m.acf_series(10)) EXPECT_NEAR(a, 0.0, 1e-10);
  EXPECT_TRUE(m.is_renewal(1e-9));
}

TEST(Ipp, MeanRateIsOnFractionTimesOnRate) {
  const double l1 = 5.0, v1 = 0.05, v2 = 0.02;
  const auto m = ipp(l1, v1, v2);
  EXPECT_NEAR(m.mean_rate(), l1 * v2 / (v1 + v2), 1e-12);
}

}  // namespace
}  // namespace perfbg::traffic
