#include "linalg/matrix.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace perfbg::linalg {
namespace {

TEST(Matrix, DefaultConstructedIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.cols(), 0u);
  EXPECT_TRUE(m.empty());
}

TEST(Matrix, SizedConstructorFills) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(m(i, j), 1.5);
}

TEST(Matrix, InitializerListLayout) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 4.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityAndDiagonal) {
  const Matrix i3 = Matrix::identity(3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(i3(i, j), i == j ? 1.0 : 0.0);
  const Matrix d = Matrix::diagonal({2.0, 5.0});
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(Matrix, OutOfRangeAccessThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m(2, 0), std::invalid_argument);
  EXPECT_THROW(m(0, 2), std::invalid_argument);
}

TEST(Matrix, AdditionSubtractionScaling) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{10.0, 20.0}, {30.0, 40.0}};
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(1, 1), 44.0);
  const Matrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff(0, 0), 9.0);
  const Matrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
  const Matrix scaled2 = 0.5 * b;
  EXPECT_DOUBLE_EQ(scaled2(0, 1), 10.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a -= b, std::invalid_argument);
}

TEST(Matrix, MultiplyMatchesHandComputation) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = a * b;
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MultiplyRectangular) {
  const Matrix a{{1.0, 0.0, 2.0}};       // 1x3
  const Matrix b{{1.0}, {2.0}, {3.0}};   // 3x1
  const Matrix c = a * b;                // 1x1
  ASSERT_EQ(c.rows(), 1u);
  ASSERT_EQ(c.cols(), 1u);
  EXPECT_DOUBLE_EQ(c(0, 0), 7.0);
}

TEST(Matrix, MultiplyByIdentityIsNoop) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(a * Matrix::identity(2), a);
  EXPECT_EQ(Matrix::identity(2) * a, a);
}

TEST(Matrix, MultiplyShapeMismatchThrows) {
  Matrix a(2, 3), b(2, 3);
  EXPECT_THROW(a * b, std::invalid_argument);
}

TEST(Matrix, Transposed) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = a.transposed();
  ASSERT_EQ(t.rows(), 3u);
  ASSERT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_EQ(t.transposed(), a);
}

TEST(Matrix, RowSumAndInfNorm) {
  const Matrix a{{1.0, -2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.row_sum(0), -1.0);
  EXPECT_DOUBLE_EQ(a.row_sum(1), 7.0);
  EXPECT_DOUBLE_EQ(a.inf_norm(), 7.0);
}

TEST(Matrix, MaxAbsDiff) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{1.0, 2.5}, {3.0, 3.0}};
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 1.0);
}

TEST(VectorOps, VecMatAndMatVec) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Vector v{1.0, 1.0};
  const Vector left = vec_mat(v, a);
  EXPECT_DOUBLE_EQ(left[0], 4.0);
  EXPECT_DOUBLE_EQ(left[1], 6.0);
  const Vector right = mat_vec(a, v);
  EXPECT_DOUBLE_EQ(right[0], 3.0);
  EXPECT_DOUBLE_EQ(right[1], 7.0);
}

TEST(VectorOps, DotSumScaledAdd) {
  EXPECT_DOUBLE_EQ(dot({1.0, 2.0}, {3.0, 4.0}), 11.0);
  EXPECT_DOUBLE_EQ(sum({1.0, 2.0, 3.0}), 6.0);
  const Vector s = scaled({1.0, 2.0}, 3.0);
  EXPECT_DOUBLE_EQ(s[1], 6.0);
  const Vector a = add({1.0, 2.0}, {10.0, 20.0});
  EXPECT_DOUBLE_EQ(a[0], 11.0);
}

TEST(VectorOps, SizeMismatchThrows) {
  EXPECT_THROW(dot({1.0}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(vec_mat({1.0}, Matrix(2, 2)), std::invalid_argument);
  EXPECT_THROW(mat_vec(Matrix(2, 2), {1.0}), std::invalid_argument);
}

TEST(Kron, MatchesDefinition) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{0.0, 5.0}, {6.0, 7.0}};
  const Matrix k = kron(a, b);
  ASSERT_EQ(k.rows(), 4u);
  ASSERT_EQ(k.cols(), 4u);
  EXPECT_DOUBLE_EQ(k(0, 1), 5.0);    // a00 * b01
  EXPECT_DOUBLE_EQ(k(1, 0), 6.0);    // a00 * b10
  EXPECT_DOUBLE_EQ(k(1, 3), 14.0);   // a01 * b11
  EXPECT_DOUBLE_EQ(k(3, 2), 4.0 * 6.0);
}

TEST(Kron, IdentityKronIdentityIsIdentity) {
  EXPECT_EQ(kron(Matrix::identity(2), Matrix::identity(3)), Matrix::identity(6));
}

TEST(Kron, MixedProductProperty) {
  // (A (x) B)(C (x) D) == (AC) (x) (BD).
  const Matrix a{{1.0, 2.0}, {0.0, 1.0}};
  const Matrix b{{2.0, 0.0}, {1.0, 1.0}};
  const Matrix c{{1.0, 1.0}, {1.0, 0.0}};
  const Matrix d{{0.0, 1.0}, {2.0, 1.0}};
  const Matrix lhs = kron(a, b) * kron(c, d);
  const Matrix rhs = kron(a * c, b * d);
  EXPECT_LT(lhs.max_abs_diff(rhs), 1e-12);
}

TEST(FromBlocks, AssemblesGrid) {
  const Matrix a = Matrix::identity(2);
  const Matrix b(2, 1, 3.0);
  const Matrix c(1, 2, 4.0);
  const Matrix d(1, 1, 5.0);
  const Matrix m = from_blocks({{a, b}, {c, d}});
  ASSERT_EQ(m.rows(), 3u);
  ASSERT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(m(2, 0), 4.0);
  EXPECT_DOUBLE_EQ(m(2, 2), 5.0);
}

TEST(FromBlocks, EmptyBlocksAreZero) {
  const Matrix a = Matrix::identity(2);
  const Matrix m = from_blocks({{a, Matrix{}}, {Matrix{}, a}});
  ASSERT_EQ(m.rows(), 4u);
  EXPECT_DOUBLE_EQ(m(0, 2), 0.0);
  EXPECT_DOUBLE_EQ(m(3, 3), 1.0);
}

TEST(FromBlocks, InconsistentShapesThrow) {
  EXPECT_THROW(from_blocks({{Matrix(2, 2), Matrix(3, 2)}}), std::invalid_argument);
  // A block row with only empty blocks has no defined height.
  EXPECT_THROW(from_blocks({{Matrix{}, Matrix{}}, {Matrix(1, 1), Matrix(1, 1)}}),
               std::invalid_argument);
}

TEST(Matrix, StreamOutputIsReadable) {
  std::ostringstream os;
  os << Matrix{{1.0, 2.0}};
  EXPECT_EQ(os.str(), "[1, 2]");
}

}  // namespace
}  // namespace perfbg::linalg
