// Invariant tests on the solved model: conservation laws that must hold for
// any parameterization (mass = 1, flow balance, Little's law, metric ranges).
#include "core/model.hpp"

#include <gtest/gtest.h>

#include "traffic/processes.hpp"
#include "workloads/presets.hpp"

namespace perfbg::core {
namespace {

struct Point {
  const char* label;
  double util;
  double p;
  int buffer;
  double idle;
};

class ModelInvariants : public ::testing::TestWithParam<Point> {};

FgBgSolution solve_email_point(const Point& pt) {
  FgBgParams params{workloads::email().scaled_to_utilization(pt.util, 6.0)};
  params.bg_probability = pt.p;
  params.bg_buffer = pt.buffer;
  params.idle_wait_intensity = pt.idle;
  return FgBgModel(params).solve();
}

TEST_P(ModelInvariants, ProbabilityMassIsOne) {
  EXPECT_NEAR(solve_email_point(GetParam()).metrics().probability_mass, 1.0, 1e-8);
}

TEST_P(ModelInvariants, FgThroughputEqualsArrivalRate) {
  const FgBgSolution sol = solve_email_point(GetParam());
  EXPECT_NEAR(sol.metrics().fg_throughput, sol.params().arrivals.mean_rate(),
              1e-8 * sol.params().arrivals.mean_rate());
}

TEST_P(ModelInvariants, BgAcceptEqualsBgThroughput) {
  // Flow balance for the background class: everything admitted is served.
  const FgBgMetrics m = solve_email_point(GetParam()).metrics();
  EXPECT_NEAR(m.bg_accept_rate, m.bg_throughput, 1e-9);
}

TEST_P(ModelInvariants, RatesDecompose) {
  const FgBgMetrics m = solve_email_point(GetParam()).metrics();
  EXPECT_NEAR(m.bg_generation_rate, m.bg_accept_rate + m.bg_drop_rate, 1e-12);
  EXPECT_NEAR(m.busy_fraction, m.fg_busy_fraction + m.bg_busy_fraction, 1e-12);
  EXPECT_NEAR(m.busy_fraction + m.idle_fraction, 1.0, 1e-8);
}

TEST_P(ModelInvariants, MetricsAreInRange) {
  const FgBgMetrics m = solve_email_point(GetParam()).metrics();
  EXPECT_GE(m.fg_queue_length, 0.0);
  EXPECT_GE(m.bg_queue_length, 0.0);
  EXPECT_LE(m.bg_queue_length, GetParam().buffer + 1e-9);
  EXPECT_GE(m.bg_completion, 0.0);
  EXPECT_LE(m.bg_completion, 1.0 + 1e-12);
  EXPECT_GE(m.fg_delayed, 0.0);
  EXPECT_LE(m.fg_delayed, 1.0);
  EXPECT_GE(m.fg_delayed_arrivals, 0.0);
  EXPECT_LE(m.fg_delayed_arrivals, 1.0);
}

TEST_P(ModelInvariants, LittlesLawForForeground) {
  const FgBgSolution sol = solve_email_point(GetParam());
  const FgBgMetrics& m = sol.metrics();
  EXPECT_NEAR(m.fg_queue_length, m.fg_response_time * sol.params().arrivals.mean_rate(),
              1e-9 * std::max(1.0, m.fg_queue_length));
}

TEST_P(ModelInvariants, ServerUtilizationAccounts) {
  // P(FG in service) * mu = lambda, and P(BG in service) * mu = accepted
  // rate, so busy fraction = (lambda + accept) * E[S].
  const FgBgSolution sol = solve_email_point(GetParam());
  const FgBgMetrics& m = sol.metrics();
  const double lambda = sol.params().arrivals.mean_rate();
  EXPECT_NEAR(m.busy_fraction, (lambda + m.bg_accept_rate) * 6.0, 1e-7);
}

TEST_P(ModelInvariants, StateMassesMatchMetrics) {
  const FgBgSolution sol = solve_email_point(GetParam());
  // Re-derive the idle fraction from the per-state accessors.
  double idle = 0.0;
  for (int x = 0; x <= GetParam().buffer; ++x)
    idle += sol.boundary_mass(Activity::kIdle, x, 0);
  EXPECT_NEAR(idle, sol.metrics().idle_fraction, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelInvariants,
    ::testing::Values(Point{"low_load", 0.05, 0.3, 5, 1.0},
                      Point{"knee", 0.15, 0.3, 5, 1.0},
                      Point{"saturated", 0.40, 0.3, 5, 1.0},
                      Point{"high_p", 0.10, 0.9, 5, 1.0},
                      Point{"tiny_p", 0.10, 0.01, 5, 1.0},
                      Point{"small_buffer", 0.10, 0.5, 1, 1.0},
                      Point{"large_buffer", 0.10, 0.5, 12, 1.0},
                      Point{"short_idle", 0.10, 0.5, 5, 0.1},
                      Point{"long_idle", 0.10, 0.5, 5, 5.0},
                      Point{"deep_saturation", 0.85, 0.6, 5, 1.0}),
    [](const ::testing::TestParamInfo<Point>& info) { return info.param.label; });

TEST(ModelBasic, NoBackgroundReducesToMapM1) {
  FgBgParams params{workloads::email().scaled_to_utilization(0.3, 6.0)};
  params.bg_probability = 0.0;
  const FgBgMetrics m = FgBgModel(params).solve().metrics();
  EXPECT_DOUBLE_EQ(m.bg_queue_length, 0.0);
  EXPECT_DOUBLE_EQ(m.bg_generation_rate, 0.0);
  EXPECT_DOUBLE_EQ(m.bg_completion, 1.0);
  EXPECT_DOUBLE_EQ(m.fg_delayed, 0.0);
  EXPECT_NEAR(m.busy_fraction, 0.3, 1e-9);
}

TEST(ModelBasic, PoissonNoBackgroundIsExactlyMM1) {
  for (double rho : {0.2, 0.6, 0.9}) {
    FgBgParams params{traffic::poisson(rho / 6.0)};
    params.bg_probability = 0.0;
    const FgBgMetrics m = FgBgModel(params).solve().metrics();
    EXPECT_NEAR(m.fg_queue_length, rho / (1.0 - rho), 1e-7) << rho;
    EXPECT_NEAR(m.fg_response_time, 6.0 / (1.0 - rho), 1e-6) << rho;
  }
}

TEST(ModelBasic, TinyPApproachesNoBackgroundLimit) {
  FgBgParams with_bg{workloads::software_dev().scaled_to_utilization(0.3, 6.0)};
  with_bg.bg_probability = 1e-7;
  FgBgParams without{with_bg};
  without.bg_probability = 0.0;
  const double q_with = FgBgModel(with_bg).solve().metrics().fg_queue_length;
  const double q_without = FgBgModel(without).solve().metrics().fg_queue_length;
  EXPECT_NEAR(q_with, q_without, 1e-4 * q_without);
}

TEST(ModelBasic, UnstableLoadThrowsOnSolve) {
  FgBgParams params{traffic::poisson(1.2 / 6.0)};  // 120% offered load
  params.bg_probability = 0.3;
  const FgBgModel model(params);
  EXPECT_FALSE(model.is_stable());
  EXPECT_GT(model.drift_ratio(), 1.0);
  EXPECT_THROW(model.solve(), std::runtime_error);
}

TEST(ModelBasic, FgCountProbabilitiesSumToOne) {
  FgBgParams params{workloads::software_dev().scaled_to_utilization(0.2, 6.0)};
  params.bg_probability = 0.5;
  const FgBgSolution sol = FgBgModel(params).solve();
  double total = 0.0;
  for (int n = 0; n < 400; ++n) total += sol.fg_count_probability(n);
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(ModelBasic, TailDecayMatchesMm1ForPoissonNoBackground) {
  FgBgParams params{traffic::poisson(0.6 / 6.0)};
  params.bg_probability = 0.0;
  EXPECT_NEAR(FgBgModel(params).solve().tail_decay_rate(), 0.6, 1e-9);
}

TEST(ModelBasic, TailDecayGovernsCountDistribution) {
  FgBgParams params{workloads::software_dev().scaled_to_utilization(0.4, 6.0)};
  params.bg_probability = 0.5;
  const FgBgSolution sol = FgBgModel(params).solve();
  const double decay = sol.tail_decay_rate();
  // Far in the tail, successive count probabilities decay at sp(R).
  const double p40 = sol.fg_count_probability(40);
  const double p41 = sol.fg_count_probability(41);
  EXPECT_NEAR(p41 / p40, decay, 0.03 * decay);
  EXPECT_LT(decay, 1.0);
}

TEST(ModelBasic, FgCountProbabilitiesReproduceQueueLength) {
  FgBgParams params{workloads::software_dev().scaled_to_utilization(0.2, 6.0)};
  params.bg_probability = 0.5;
  const FgBgSolution sol = FgBgModel(params).solve();
  double qlen = 0.0;
  for (int n = 1; n < 600; ++n) qlen += n * sol.fg_count_probability(n);
  EXPECT_NEAR(qlen, sol.metrics().fg_queue_length, 1e-5);
}

}  // namespace
}  // namespace perfbg::core
