// Tests of the vacation-queue baseline and — the strongest of them — the
// corner-case equivalence with the full FG/BG model: with p = 1, a large
// buffer, and a vanishing idle wait, background jobs never run out, every
// idle period is a train of back-to-back background services, and the
// foreground queue becomes exactly an M/M/1 queue with multiple exponential
// vacations of one service time each.
#include "core/vacation.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/model.hpp"
#include "traffic/processes.hpp"

namespace perfbg::core {
namespace {

using traffic::PhaseType;

TEST(Vacation, MG1ReducesToMM1) {
  const double lambda = 0.1, mean_s = 6.0;
  const double rho = lambda * mean_s;
  EXPECT_NEAR(mg1_number_in_system(lambda, PhaseType::exponential(mean_s)),
              rho / (1.0 - rho), 1e-10);
}

TEST(Vacation, WaitingTimeDecomposition) {
  // The vacation term is exactly E[V^2] / (2 E[V]), independent of load.
  const PhaseType service = PhaseType::exponential(6.0);
  const PhaseType vacation = PhaseType::erlang(2, 10.0);
  for (double lambda : {0.01, 0.05, 0.1}) {
    const double gap = mg1_multiple_vacations_waiting_time(lambda, service, vacation) -
                       (lambda * service.moment(2) / (2.0 * (1.0 - lambda * 6.0)));
    EXPECT_NEAR(gap, vacation.moment(2) / (2.0 * vacation.mean()), 1e-10) << lambda;
  }
}

TEST(Vacation, ExponentialVacationAddsItsMean) {
  // For exponential V, E[V^2]/(2 E[V]) = E[V].
  const PhaseType service = PhaseType::exponential(6.0);
  const PhaseType vacation = PhaseType::exponential(9.0);
  const double w = mg1_multiple_vacations_waiting_time(0.05, service, vacation);
  const double w0 = mg1_multiple_vacations_waiting_time(0.05, service,
                                                        PhaseType::exponential(1e-9));
  EXPECT_NEAR(w - w0, 9.0, 1e-6);
}

TEST(Vacation, LowVariabilityVacationDelaysLess) {
  const PhaseType service = PhaseType::exponential(6.0);
  const double w_det = mg1_multiple_vacations_waiting_time(
      0.05, service, PhaseType::erlang(16, 6.0));
  const double w_exp = mg1_multiple_vacations_waiting_time(
      0.05, service, PhaseType::exponential(6.0));
  EXPECT_LT(w_det, w_exp);
}

TEST(Vacation, UnstableQueueThrows) {
  EXPECT_THROW(
      mg1_number_in_system(0.2, PhaseType::exponential(6.0)),  // rho = 1.2
      std::invalid_argument);
}

TEST(Vacation, FgBgModelDegeneratesToVacationQueue) {
  // p = 1 and a vanishing idle wait make every idle period a train of
  // background services — but the equivalence also needs the background
  // buffer to (almost) never empty, which requires the total offered work
  // lambda (1 + p) E[S] to exceed 1: above that, drops pin the buffer full.
  // There the QBD foreground queue must match the M/M/1-with-multiple-
  // vacations closed form with V = one service time.
  const PhaseType service = PhaseType::exponential(6.0);
  for (double rho : {0.7, 0.8, 0.9}) {
    FgBgParams params{traffic::poisson(rho / 6.0)};
    params.bg_probability = 1.0;
    params.bg_buffer = 40;
    params.idle_wait_intensity = 1e-4;
    const double qbd = FgBgModel(params).solve().metrics().fg_queue_length;
    const double vac =
        mg1_multiple_vacations_number_in_system(rho / 6.0, service, service);
    EXPECT_NEAR(qbd, vac, 0.005 * vac) << rho;
  }
}

TEST(Vacation, BufferDrainRegimeBeatsTheVacationBound) {
  // Below the pin-full threshold (lambda (1+p) E[S] < 1) the buffer drains,
  // the server sometimes has no vacation to take, and the true queue is
  // strictly below the multiple-vacation prediction.
  const PhaseType service = PhaseType::exponential(6.0);
  for (double rho : {0.2, 0.35}) {
    FgBgParams params{traffic::poisson(rho / 6.0)};
    params.bg_probability = 1.0;
    params.bg_buffer = 40;
    params.idle_wait_intensity = 1e-4;
    const double qbd = FgBgModel(params).solve().metrics().fg_queue_length;
    const double vac =
        mg1_multiple_vacations_number_in_system(rho / 6.0, service, service);
    EXPECT_LT(qbd, vac) << rho;
  }
}

TEST(Vacation, FgBgModelBeatsVacationBoundAtLowP) {
  // At small p the server often has no background work, so the true
  // foreground queue sits strictly between the no-vacation M/M/1 and the
  // always-on-vacation model — the gap the QBD model exists to close.
  const double rho = 0.4, lambda = rho / 6.0;
  const PhaseType service = PhaseType::exponential(6.0);
  FgBgParams params{traffic::poisson(lambda)};
  params.bg_probability = 0.1;
  params.idle_wait_intensity = 1e-3;
  const double qbd = FgBgModel(params).solve().metrics().fg_queue_length;
  const double mm1 = mg1_number_in_system(lambda, service);
  const double vac = mg1_multiple_vacations_number_in_system(lambda, service, service);
  EXPECT_GT(qbd, mm1);
  EXPECT_LT(qbd, vac);
}

}  // namespace
}  // namespace perfbg::core
