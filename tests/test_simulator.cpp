#include "sim/fgbg_simulator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "traffic/processes.hpp"

namespace perfbg::sim {
namespace {

core::FgBgParams mm1_params(double rho, double p = 0.0) {
  core::FgBgParams params{traffic::poisson(rho / 6.0)};
  params.mean_service_time = 6.0;
  params.bg_probability = p;
  params.bg_buffer = 5;
  return params;
}

SimConfig quick_config(std::uint64_t seed = 1) {
  SimConfig cfg;
  cfg.warmup_time = 1e5;
  cfg.batch_time = 5e5;
  cfg.batches = 10;
  cfg.seed = seed;
  return cfg;
}

TEST(Simulator, DeterministicGivenSeed) {
  const auto params = mm1_params(0.4, 0.5);
  const SimMetrics a = simulate_fgbg(params, quick_config(9));
  const SimMetrics b = simulate_fgbg(params, quick_config(9));
  EXPECT_DOUBLE_EQ(a.fg_queue_length.mean, b.fg_queue_length.mean);
  EXPECT_EQ(a.fg_arrivals, b.fg_arrivals);
  EXPECT_EQ(a.bg_completed, b.bg_completed);
}

TEST(Simulator, DifferentSeedsDiffer) {
  const auto params = mm1_params(0.4, 0.5);
  const SimMetrics a = simulate_fgbg(params, quick_config(1));
  const SimMetrics b = simulate_fgbg(params, quick_config(2));
  EXPECT_NE(a.fg_queue_length.mean, b.fg_queue_length.mean);
}

TEST(Simulator, MM1QueueLengthMatchesClosedForm) {
  const double rho = 0.5;
  const SimMetrics s = simulate_fgbg(mm1_params(rho), quick_config(3));
  EXPECT_NEAR(s.fg_queue_length.mean, rho / (1.0 - rho),
              3.0 * s.fg_queue_length.half_width + 0.05);
  EXPECT_NEAR(s.busy_fraction.mean, rho, 0.02);
}

TEST(Simulator, NoBackgroundMeansNoBgActivity) {
  const SimMetrics s = simulate_fgbg(mm1_params(0.5, 0.0), quick_config(4));
  EXPECT_EQ(s.bg_generated, 0u);
  EXPECT_EQ(s.bg_completed, 0u);
  EXPECT_DOUBLE_EQ(s.bg_queue_length.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.fg_delayed_arrivals.mean, 0.0);
}

TEST(Simulator, GenerationRateIsPTimesThroughput) {
  const SimMetrics s = simulate_fgbg(mm1_params(0.5, 0.6), quick_config(5));
  const double generated_per_completion =
      static_cast<double>(s.bg_generated) /
      static_cast<double>(s.fg_arrivals);  // arrivals ~ completions over a long run
  EXPECT_NEAR(generated_per_completion, 0.6, 0.02);
}

TEST(Simulator, AccountingIdentities) {
  const SimMetrics s = simulate_fgbg(mm1_params(0.6, 0.8), quick_config(6));
  EXPECT_LE(s.bg_dropped, s.bg_generated);
  // Completions can lag acceptances by at most the buffer content.
  EXPECT_LE(s.bg_completed, s.bg_generated - s.bg_dropped);
  EXPECT_GE(s.bg_completed + 10, s.bg_generated - s.bg_dropped);
  EXPECT_NEAR(s.busy_fraction.mean + s.idle_fraction.mean, 1.0, 1e-9);
}

TEST(Simulator, FractionsAreInRange) {
  const SimMetrics s = simulate_fgbg(mm1_params(0.7, 0.9), quick_config(7));
  EXPECT_GE(s.bg_completion.mean, 0.0);
  EXPECT_LE(s.bg_completion.mean, 1.0);
  EXPECT_GE(s.fg_delayed_arrivals.mean, 0.0);
  EXPECT_LE(s.fg_delayed_arrivals.mean, 1.0);
}

TEST(Simulator, ErlangIdleWaitRuns) {
  SimConfig cfg = quick_config(8);
  cfg.idle_wait = IdleWaitKind::kErlang2;
  const SimMetrics s = simulate_fgbg(mm1_params(0.4, 0.5), cfg);
  EXPECT_GT(s.bg_completed, 0u);
  cfg.idle_wait = IdleWaitKind::kDeterministicish;
  EXPECT_GT(simulate_fgbg(mm1_params(0.4, 0.5), cfg).bg_completed, 0u);
}

TEST(Simulator, ZeroWarmupIsAccepted) {
  SimConfig cfg = quick_config(10);
  cfg.warmup_time = 0.0;
  const SimMetrics s = simulate_fgbg(mm1_params(0.3, 0.3), cfg);
  EXPECT_GT(s.fg_arrivals, 0u);
}

TEST(Simulator, BadConfigThrows) {
  SimConfig cfg = quick_config();
  cfg.batches = 1;
  EXPECT_THROW(simulate_fgbg(mm1_params(0.3), cfg), std::invalid_argument);
  cfg = quick_config();
  cfg.batch_time = 0.0;
  EXPECT_THROW(simulate_fgbg(mm1_params(0.3), cfg), std::invalid_argument);
}

TEST(Simulator, ThroughputTracksArrivalRate) {
  const SimMetrics s = simulate_fgbg(mm1_params(0.5, 0.5), quick_config(11));
  EXPECT_NEAR(s.fg_throughput.mean, 0.5 / 6.0, 0.003);
}

}  // namespace
}  // namespace perfbg::sim
