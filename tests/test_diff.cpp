// Tests for cross-run regression diffing: diff_reports semantics on both
// supported schemas, the schema-mismatch hard failure, and — when the
// perfbg_report_diff binary path is compiled in — end-to-end exit codes,
// including the mandated non-zero exit on an injected synthetic regression.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#ifdef PERFBG_DIFF_BINARY
#include <sys/wait.h>
#endif

#include "obs/diff.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"

namespace {

using namespace perfbg;
using obs::JsonValue;

/// A minimal two-point baseline document with the given wall times.
JsonValue baseline_doc(double wall_a, double wall_b) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", JsonValue(obs::kBenchBaselineSchema));
  JsonValue points = JsonValue::array();
  auto point = [](const char* workload, double p, int x, double wall) {
    JsonValue v = JsonValue::object();
    v.set("workload", JsonValue(workload));
    v.set("bg_probability", JsonValue(p));
    v.set("bg_buffer", JsonValue(x));
    v.set("utilization", JsonValue(0.15));
    v.set("wall_ms", JsonValue(wall));
    v.set("iterations", JsonValue(7));
    return v;
  };
  points.push_back(point("email", 0.1, 5, wall_a));
  points.push_back(point("email", 0.9, 20, wall_b));
  doc.set("points", std::move(points));
  return doc;
}

TEST(DiffReports, IdenticalBaselinesHaveNoRegressions) {
  const JsonValue doc = baseline_doc(2.0, 40.0);
  const obs::DiffResult result = obs::diff_reports(doc, doc);
  EXPECT_EQ(result.schema, obs::kBenchBaselineSchema);
  ASSERT_EQ(result.entries.size(), 2u);
  EXPECT_FALSE(result.has_regressions());
  for (const obs::DiffEntry& e : result.entries) {
    EXPECT_DOUBLE_EQ(e.rel_change, 0.0);
    EXPECT_FALSE(e.regression);
  }
}

TEST(DiffReports, FlagsRegressionPastThreshold) {
  const JsonValue old_doc = baseline_doc(2.0, 40.0);
  const JsonValue new_doc = baseline_doc(2.0, 56.0);  // +40% on the second point
  const obs::DiffResult result = obs::diff_reports(old_doc, new_doc);
  ASSERT_EQ(result.entries.size(), 2u);
  EXPECT_EQ(result.regressions(), 1u);
  const obs::DiffEntry* slow = nullptr;
  for (const obs::DiffEntry& e : result.entries)
    if (e.regression) slow = &e;
  ASSERT_NE(slow, nullptr);
  EXPECT_NE(slow->key.find("X=20"), std::string::npos);
  EXPECT_NEAR(slow->rel_change, 0.4, 1e-12);

  // The same delta passes a looser threshold.
  obs::DiffOptions loose;
  loose.threshold = 0.5;
  EXPECT_FALSE(obs::diff_reports(old_doc, new_doc, loose).has_regressions());

  // Improvements are never regressions.
  EXPECT_FALSE(obs::diff_reports(new_doc, old_doc).has_regressions());
}

TEST(DiffReports, MinAbsoluteDeltaSuppressesNoise) {
  // +50% relative, but only 0.05 ms absolute: below the 0.1 ms floor.
  const JsonValue old_doc = baseline_doc(0.1, 40.0);
  const JsonValue new_doc = baseline_doc(0.15, 40.0);
  EXPECT_FALSE(obs::diff_reports(old_doc, new_doc).has_regressions());

  obs::DiffOptions strict;
  strict.min_abs_delta_ms = 0.01;
  EXPECT_TRUE(obs::diff_reports(old_doc, new_doc, strict).has_regressions());
}

TEST(DiffReports, OneSidedPointsAreReportedNotFlagged) {
  const JsonValue old_doc = baseline_doc(2.0, 40.0);
  // New document: the first point matches, the X=20 point failed (an "error"
  // field instead of wall_ms, as bench_suite emits), and one point is new.
  JsonValue new_doc = JsonValue::object();
  new_doc.set("schema", JsonValue(obs::kBenchBaselineSchema));
  JsonValue points = JsonValue::array();
  JsonValue same = JsonValue::object();
  same.set("workload", JsonValue("email"));
  same.set("bg_probability", JsonValue(0.1));
  same.set("bg_buffer", JsonValue(5));
  same.set("utilization", JsonValue(0.15));
  same.set("wall_ms", JsonValue(2.0));
  points.push_back(std::move(same));
  JsonValue failed = JsonValue::object();
  failed.set("workload", JsonValue("email"));
  failed.set("bg_probability", JsonValue(0.9));
  failed.set("bg_buffer", JsonValue(20));
  failed.set("utilization", JsonValue(0.15));
  failed.set("error", JsonValue("kUnstableQbd"));
  points.push_back(std::move(failed));
  JsonValue fresh = JsonValue::object();
  fresh.set("workload", JsonValue("email_ipp"));
  fresh.set("bg_probability", JsonValue(0.5));
  fresh.set("bg_buffer", JsonValue(5));
  fresh.set("utilization", JsonValue(0.15));
  fresh.set("wall_ms", JsonValue(1.0));
  points.push_back(std::move(fresh));
  new_doc.set("points", std::move(points));

  const obs::DiffResult result = obs::diff_reports(old_doc, new_doc);
  EXPECT_EQ(result.entries.size(), 1u);  // only the common point compares
  ASSERT_EQ(result.only_in_old.size(), 1u);
  EXPECT_NE(result.only_in_old[0].find("X=20"), std::string::npos);
  ASSERT_EQ(result.only_in_new.size(), 1u);
  EXPECT_NE(result.only_in_new[0].find("email_ipp"), std::string::npos);
  EXPECT_FALSE(result.has_regressions());
}

TEST(DiffReports, RunReportTimersDiffByTotalMs) {
  obs::RunReport old_report("unit"), new_report("unit");
  old_report.metrics().record_time("qbd.solve.r", 10.0);
  old_report.metrics().record_time("qbd.solve.boundary", 5.0);
  new_report.metrics().record_time("qbd.solve.r", 20.0);  // 2x slower
  new_report.metrics().record_time("qbd.solve.boundary", 5.0);

  const obs::DiffResult result =
      obs::diff_reports(old_report.to_json(), new_report.to_json());
  EXPECT_EQ(result.schema, obs::kRunReportSchema);
  EXPECT_EQ(result.regressions(), 1u);
  const std::string table = obs::format_diff(result, {});
  EXPECT_NE(table.find("qbd.solve.r"), std::string::npos);
  EXPECT_NE(table.find("REGRESSION"), std::string::npos);
}

TEST(DiffReports, SchemaMismatchThrows) {
  const JsonValue baseline = baseline_doc(1.0, 1.0);
  JsonValue other = JsonValue::object();
  other.set("schema", JsonValue("perfbg.other.v1"));
  EXPECT_THROW(obs::diff_reports(baseline, other), obs::SchemaMismatchError);
  EXPECT_THROW(obs::diff_reports(other, other), obs::SchemaMismatchError);
  EXPECT_THROW(obs::diff_reports(JsonValue::object(), baseline),
               obs::SchemaMismatchError);
  JsonValue no_points = JsonValue::object();
  no_points.set("schema", JsonValue(obs::kBenchBaselineSchema));
  EXPECT_THROW(obs::diff_reports(no_points, baseline), obs::SchemaMismatchError);
}

TEST(DiffReports, FormatDiffListsEveryEntry) {
  const obs::DiffResult result =
      obs::diff_reports(baseline_doc(2.0, 40.0), baseline_doc(2.0, 60.0));
  const std::string table = obs::format_diff(result, {});
  EXPECT_NE(table.find("old_ms"), std::string::npos);
  EXPECT_NE(table.find("<-- REGRESSION"), std::string::npos);
  EXPECT_NE(table.find("1 regression(s) across 2 compared entries"),
            std::string::npos);
}

#ifdef PERFBG_DIFF_BINARY

std::string write_temp(const std::string& name, const JsonValue& doc) {
  const std::string path = testing::TempDir() + name;
  std::ofstream out(path);
  doc.dump(out, 1);
  return path;
}

int run_diff(const std::string& args) {
  const std::string cmd =
      std::string(PERFBG_DIFF_BINARY) + " " + args + " >/dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(ReportDiffBinary, ExitCodesEndToEnd) {
  const std::string old_path = write_temp("diff_old.json", baseline_doc(2.0, 40.0));
  const std::string same_path = write_temp("diff_same.json", baseline_doc(2.0, 40.0));
  // Injected synthetic regression: the X=20 point slows down by 50%.
  const std::string slow_path = write_temp("diff_slow.json", baseline_doc(2.0, 60.0));
  JsonValue alien = JsonValue::object();
  alien.set("schema", JsonValue("perfbg.other.v1"));
  const std::string alien_path = write_temp("diff_alien.json", alien);

  EXPECT_EQ(run_diff(old_path + " " + same_path), 0);
  // The acceptance-criteria invocation: regression past --threshold 0.25
  // must exit non-zero.
  EXPECT_EQ(run_diff(old_path + " " + slow_path + " --threshold 0.25"), 1);
  // A looser gate lets the same pair pass.
  EXPECT_EQ(run_diff(old_path + " " + slow_path + " --threshold 0.6"), 0);
  // Schema mismatch is a hard failure, distinct from a regression.
  EXPECT_EQ(run_diff(old_path + " " + alien_path), 3);
  // Usage errors: missing file operand, unknown option, unreadable file.
  EXPECT_EQ(run_diff(old_path), 2);
  EXPECT_EQ(run_diff(old_path + " " + same_path + " --bogus"), 2);
  EXPECT_EQ(run_diff(old_path + " /nonexistent/missing.json"), 2);
  EXPECT_EQ(run_diff("--help"), 0);

  std::remove(old_path.c_str());
  std::remove(same_path.c_str());
  std::remove(slow_path.c_str());
  std::remove(alien_path.c_str());
}

#endif  // PERFBG_DIFF_BINARY

}  // namespace
