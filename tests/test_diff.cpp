// Tests for cross-run regression diffing: diff_reports semantics on both
// supported schemas, the schema-mismatch hard failure, and — when the
// perfbg_report_diff binary path is compiled in — end-to-end exit codes,
// including the mandated non-zero exit on an injected synthetic regression.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#ifdef PERFBG_DIFF_BINARY
#include <sys/wait.h>
#endif

#include "obs/diff.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"

namespace {

using namespace perfbg;
using obs::JsonValue;

/// A minimal two-point baseline document with the given wall times.
JsonValue baseline_doc(double wall_a, double wall_b) {
  JsonValue doc = JsonValue::object();
  doc.set("schema", JsonValue(obs::kBenchBaselineSchema));
  JsonValue points = JsonValue::array();
  auto point = [](const char* workload, double p, int x, double wall) {
    JsonValue v = JsonValue::object();
    v.set("workload", JsonValue(workload));
    v.set("bg_probability", JsonValue(p));
    v.set("bg_buffer", JsonValue(x));
    v.set("utilization", JsonValue(0.15));
    v.set("wall_ms", JsonValue(wall));
    v.set("iterations", JsonValue(7));
    return v;
  };
  points.push_back(point("email", 0.1, 5, wall_a));
  points.push_back(point("email", 0.9, 20, wall_b));
  doc.set("points", std::move(points));
  return doc;
}

/// A v2 document: the two points of baseline_doc plus a "spans" tail-stats
/// section with the given p99s (one budgeted solver span, one unbudgeted
/// bench-only span) and the default budgets.
JsonValue baseline_doc_v2(double wall_a, double wall_b, double solve_p99,
                          double other_p99) {
  JsonValue doc = baseline_doc(wall_a, wall_b);
  doc.set("schema", JsonValue(obs::kBenchBaselineSchemaV2));
  auto span = [](double p99) {
    JsonValue s = JsonValue::object();
    s.set("count", JsonValue(18));
    s.set("total_ms", JsonValue(40.0));
    s.set("p50_ms", JsonValue(p99 / 2.0));
    s.set("p99_ms", JsonValue(p99));
    s.set("max_ms", JsonValue(p99 * 1.1));
    return s;
  };
  JsonValue spans = JsonValue::object();
  spans.set("qbd.solve.r", span(solve_p99));
  spans.set("bench.table_render", span(other_p99));
  doc.set("spans", std::move(spans));
  doc.set("budgets", obs::budgets_to_json(obs::default_span_budgets()));
  return doc;
}

TEST(SpanBudgets, PatternMatching) {
  // Prefix glob: the prefix itself and dotted descendants, nothing else.
  EXPECT_TRUE(obs::span_budget_matches("qbd.solve.*", "qbd.solve"));
  EXPECT_TRUE(obs::span_budget_matches("qbd.solve.*", "qbd.solve.r"));
  EXPECT_TRUE(obs::span_budget_matches("qbd.solve.*", "qbd.solve.rung.lu"));
  EXPECT_FALSE(obs::span_budget_matches("qbd.solve.*", "qbd.solve_r"));
  EXPECT_FALSE(obs::span_budget_matches("qbd.solve.*", "qbd.solver"));
  EXPECT_FALSE(obs::span_budget_matches("qbd.solve.*", "markov.gth"));
  // Exact names match only themselves.
  EXPECT_TRUE(obs::span_budget_matches("markov.gth", "markov.gth"));
  EXPECT_FALSE(obs::span_budget_matches("markov.gth", "markov.gth.pivot"));
}

TEST(SpanBudgets, DefaultsCoverTheHotSolverSpans) {
  const std::vector<obs::SpanBudget>& budgets = obs::default_span_budgets();
  auto budgeted = [&budgets](const std::string& name) {
    for (const obs::SpanBudget& b : budgets)
      if (obs::span_budget_matches(b.pattern, name)) return true;
    return false;
  };
  for (const char* hot : {"qbd.solve", "qbd.solve.r", "qbd.solve.boundary",
                          "qbd.solve_r", "qbd.solve_g", "linalg.lu.factor",
                          "markov.gth", "sim.run"})
    EXPECT_TRUE(budgeted(hot)) << hot;
  for (const char* cold : {"bench.table_render", "runner.point", "qbd.preflight"})
    EXPECT_FALSE(budgeted(cold)) << cold;
}

TEST(SpanBudgets, JsonRoundTrip) {
  JsonValue doc = JsonValue::object();
  doc.set("budgets", obs::budgets_to_json(obs::default_span_budgets()));
  const std::vector<obs::SpanBudget> parsed = obs::budgets_from_json(doc);
  const std::vector<obs::SpanBudget>& defaults = obs::default_span_budgets();
  ASSERT_EQ(parsed.size(), defaults.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].pattern, defaults[i].pattern);
    EXPECT_DOUBLE_EQ(parsed[i].p99_regression, defaults[i].p99_regression);
    EXPECT_DOUBLE_EQ(parsed[i].max_p99_ms, defaults[i].max_p99_ms);
    EXPECT_DOUBLE_EQ(parsed[i].min_delta_ms, defaults[i].min_delta_ms);
  }
  // Absent key: fall back to the library defaults.
  EXPECT_EQ(obs::budgets_from_json(JsonValue::object()).size(), defaults.size());
}

TEST(DiffReports, V2IdenticalBaselinesAreClean) {
  const JsonValue doc = baseline_doc_v2(2.0, 40.0, 3.0, 5.0);
  const obs::DiffResult result = obs::diff_reports(doc, doc);
  EXPECT_EQ(result.schema, obs::kBenchBaselineSchemaV2);
  EXPECT_EQ(result.entries.size(), 2u);
  EXPECT_EQ(result.span_entries.size(), 2u);
  EXPECT_FALSE(result.has_regressions());
  EXPECT_FALSE(result.has_budget_violations());
}

TEST(DiffReports, BudgetedSpanP99RegressionIsAViolation) {
  const JsonValue old_doc = baseline_doc_v2(2.0, 40.0, 3.0, 5.0);
  const JsonValue new_doc = baseline_doc_v2(2.0, 40.0, 4.5, 5.0);  // +50% p99
  const obs::DiffResult result = obs::diff_reports(old_doc, new_doc);
  ASSERT_TRUE(result.has_budget_violations());
  ASSERT_EQ(result.budget_violations.size(), 1u);
  const obs::BudgetViolation& v = result.budget_violations[0];
  EXPECT_EQ(v.span, "qbd.solve.r");
  EXPECT_EQ(v.pattern, "qbd.solve.*");
  EXPECT_EQ(v.kind, "p99_regression");
  EXPECT_DOUBLE_EQ(v.old_p99_ms, 3.0);
  EXPECT_DOUBLE_EQ(v.new_p99_ms, 4.5);
  // Span drift is never a *soft* regression — points did not change.
  EXPECT_FALSE(result.has_regressions());
}

TEST(DiffReports, UnbudgetedSpanRegressionStaysSoft) {
  // The bench-only span doubles; no budget matches it, so the diff reports it
  // (span_entries) but raises neither a violation nor a regression.
  const JsonValue old_doc = baseline_doc_v2(2.0, 40.0, 3.0, 5.0);
  const JsonValue new_doc = baseline_doc_v2(2.0, 40.0, 3.0, 10.0);
  const obs::DiffResult result = obs::diff_reports(old_doc, new_doc);
  EXPECT_FALSE(result.has_budget_violations());
  EXPECT_FALSE(result.has_regressions());
  bool saw = false;
  for (const obs::DiffEntry& e : result.span_entries)
    if (e.key == "bench.table_render") {
      saw = true;
      EXPECT_NEAR(e.rel_change, 1.0, 1e-12);
    }
  EXPECT_TRUE(saw);
}

TEST(DiffReports, AllowlistSuppressesViolationsNotReporting) {
  const JsonValue old_doc = baseline_doc_v2(2.0, 40.0, 3.0, 5.0);
  const JsonValue new_doc = baseline_doc_v2(2.0, 40.0, 4.5, 5.0);
  obs::DiffOptions options;
  options.allowlist.push_back("qbd.solve.*");
  const obs::DiffResult result = obs::diff_reports(old_doc, new_doc, options);
  EXPECT_FALSE(result.has_budget_violations());
  EXPECT_EQ(result.span_entries.size(), 2u);  // still reported
}

TEST(DiffReports, BudgetNoiseFloorSuppressesTinyDeltas) {
  // +60% relative, but only 0.3 ms absolute: below qbd.solve.*'s 0.5 ms floor.
  const JsonValue old_doc = baseline_doc_v2(2.0, 40.0, 0.5, 5.0);
  const JsonValue new_doc = baseline_doc_v2(2.0, 40.0, 0.8, 5.0);
  EXPECT_FALSE(obs::diff_reports(old_doc, new_doc).has_budget_violations());
}

TEST(DiffReports, AbsoluteBudgetCeiling) {
  // Stamp a tight absolute ceiling on the old document; the new document's
  // p99 clears the relative gate (unchanged) but sits above the ceiling.
  JsonValue old_doc = baseline_doc_v2(2.0, 40.0, 3.0, 5.0);
  std::vector<obs::SpanBudget> budgets{{"qbd.solve.*", 0.25, 2.5, 0.1}};
  old_doc.set("budgets", obs::budgets_to_json(budgets));
  const JsonValue new_doc = baseline_doc_v2(2.0, 40.0, 3.0, 5.0);
  const obs::DiffResult result = obs::diff_reports(old_doc, new_doc);
  ASSERT_EQ(result.budget_violations.size(), 1u);
  EXPECT_EQ(result.budget_violations[0].kind, "absolute_budget");
  EXPECT_DOUBLE_EQ(result.budget_violations[0].limit, 2.5);
}

TEST(DiffReports, BudgetsComeFromTheOldDocument) {
  // The new document ships itself a fully relaxed budget set; the gate must
  // ignore it and judge by the committed (old) budgets.
  const JsonValue old_doc = baseline_doc_v2(2.0, 40.0, 3.0, 5.0);
  JsonValue new_doc = baseline_doc_v2(2.0, 40.0, 6.0, 5.0);  // +100% p99
  std::vector<obs::SpanBudget> relaxed{{"qbd.solve.*", 100.0, 0.0, 1000.0}};
  new_doc.set("budgets", obs::budgets_to_json(relaxed));
  EXPECT_TRUE(obs::diff_reports(old_doc, new_doc).has_budget_violations());
}

TEST(DiffReports, V2WithoutSpansIsASchemaMismatch) {
  JsonValue doc = baseline_doc(2.0, 40.0);
  doc.set("schema", JsonValue(obs::kBenchBaselineSchemaV2));
  EXPECT_THROW(obs::diff_reports(doc, doc), obs::SchemaMismatchError);
  // And v1-vs-v2 documents are not comparable at all.
  EXPECT_THROW(obs::diff_reports(baseline_doc(2.0, 40.0),
                                 baseline_doc_v2(2.0, 40.0, 3.0, 5.0)),
               obs::SchemaMismatchError);
}

TEST(DiffReports, FormatDiffRendersSpanTableAndBreaches) {
  const obs::DiffResult result =
      obs::diff_reports(baseline_doc_v2(2.0, 40.0, 3.0, 5.0),
                        baseline_doc_v2(2.0, 40.0, 4.5, 5.0));
  const std::string table = obs::format_diff(result, {});
  EXPECT_NE(table.find("span p99 tails:"), std::string::npos);
  EXPECT_NE(table.find("qbd.solve.r"), std::string::npos);
  EXPECT_NE(table.find("BUDGET BREACH: span qbd.solve.r (budget qbd.solve.*)"),
            std::string::npos);
  EXPECT_NE(table.find("1 budget breach(es) across 2 budget-checked span(s)"),
            std::string::npos);
}

TEST(DiffReports, IdenticalBaselinesHaveNoRegressions) {
  const JsonValue doc = baseline_doc(2.0, 40.0);
  const obs::DiffResult result = obs::diff_reports(doc, doc);
  EXPECT_EQ(result.schema, obs::kBenchBaselineSchema);
  ASSERT_EQ(result.entries.size(), 2u);
  EXPECT_FALSE(result.has_regressions());
  for (const obs::DiffEntry& e : result.entries) {
    EXPECT_DOUBLE_EQ(e.rel_change, 0.0);
    EXPECT_FALSE(e.regression);
  }
}

TEST(DiffReports, FlagsRegressionPastThreshold) {
  const JsonValue old_doc = baseline_doc(2.0, 40.0);
  const JsonValue new_doc = baseline_doc(2.0, 56.0);  // +40% on the second point
  const obs::DiffResult result = obs::diff_reports(old_doc, new_doc);
  ASSERT_EQ(result.entries.size(), 2u);
  EXPECT_EQ(result.regressions(), 1u);
  const obs::DiffEntry* slow = nullptr;
  for (const obs::DiffEntry& e : result.entries)
    if (e.regression) slow = &e;
  ASSERT_NE(slow, nullptr);
  EXPECT_NE(slow->key.find("X=20"), std::string::npos);
  EXPECT_NEAR(slow->rel_change, 0.4, 1e-12);

  // The same delta passes a looser threshold.
  obs::DiffOptions loose;
  loose.threshold = 0.5;
  EXPECT_FALSE(obs::diff_reports(old_doc, new_doc, loose).has_regressions());

  // Improvements are never regressions.
  EXPECT_FALSE(obs::diff_reports(new_doc, old_doc).has_regressions());
}

TEST(DiffReports, MinAbsoluteDeltaSuppressesNoise) {
  // +50% relative, but only 0.05 ms absolute: below the 0.1 ms floor.
  const JsonValue old_doc = baseline_doc(0.1, 40.0);
  const JsonValue new_doc = baseline_doc(0.15, 40.0);
  EXPECT_FALSE(obs::diff_reports(old_doc, new_doc).has_regressions());

  obs::DiffOptions strict;
  strict.min_abs_delta_ms = 0.01;
  EXPECT_TRUE(obs::diff_reports(old_doc, new_doc, strict).has_regressions());
}

TEST(DiffReports, OneSidedPointsAreReportedNotFlagged) {
  const JsonValue old_doc = baseline_doc(2.0, 40.0);
  // New document: the first point matches, the X=20 point failed (an "error"
  // field instead of wall_ms, as bench_suite emits), and one point is new.
  JsonValue new_doc = JsonValue::object();
  new_doc.set("schema", JsonValue(obs::kBenchBaselineSchema));
  JsonValue points = JsonValue::array();
  JsonValue same = JsonValue::object();
  same.set("workload", JsonValue("email"));
  same.set("bg_probability", JsonValue(0.1));
  same.set("bg_buffer", JsonValue(5));
  same.set("utilization", JsonValue(0.15));
  same.set("wall_ms", JsonValue(2.0));
  points.push_back(std::move(same));
  JsonValue failed = JsonValue::object();
  failed.set("workload", JsonValue("email"));
  failed.set("bg_probability", JsonValue(0.9));
  failed.set("bg_buffer", JsonValue(20));
  failed.set("utilization", JsonValue(0.15));
  failed.set("error", JsonValue("kUnstableQbd"));
  points.push_back(std::move(failed));
  JsonValue fresh = JsonValue::object();
  fresh.set("workload", JsonValue("email_ipp"));
  fresh.set("bg_probability", JsonValue(0.5));
  fresh.set("bg_buffer", JsonValue(5));
  fresh.set("utilization", JsonValue(0.15));
  fresh.set("wall_ms", JsonValue(1.0));
  points.push_back(std::move(fresh));
  new_doc.set("points", std::move(points));

  const obs::DiffResult result = obs::diff_reports(old_doc, new_doc);
  EXPECT_EQ(result.entries.size(), 1u);  // only the common point compares
  ASSERT_EQ(result.only_in_old.size(), 1u);
  EXPECT_NE(result.only_in_old[0].find("X=20"), std::string::npos);
  ASSERT_EQ(result.only_in_new.size(), 1u);
  EXPECT_NE(result.only_in_new[0].find("email_ipp"), std::string::npos);
  EXPECT_FALSE(result.has_regressions());
}

TEST(DiffReports, RunReportTimersDiffByTotalMs) {
  obs::RunReport old_report("unit"), new_report("unit");
  old_report.metrics().record_time("qbd.solve.r", 10.0);
  old_report.metrics().record_time("qbd.solve.boundary", 5.0);
  new_report.metrics().record_time("qbd.solve.r", 20.0);  // 2x slower
  new_report.metrics().record_time("qbd.solve.boundary", 5.0);

  const obs::DiffResult result =
      obs::diff_reports(old_report.to_json(), new_report.to_json());
  EXPECT_EQ(result.schema, obs::kRunReportSchema);
  EXPECT_EQ(result.regressions(), 1u);
  const std::string table = obs::format_diff(result, {});
  EXPECT_NE(table.find("qbd.solve.r"), std::string::npos);
  EXPECT_NE(table.find("REGRESSION"), std::string::npos);
}

TEST(DiffReports, SchemaMismatchThrows) {
  const JsonValue baseline = baseline_doc(1.0, 1.0);
  JsonValue other = JsonValue::object();
  other.set("schema", JsonValue("perfbg.other.v1"));
  EXPECT_THROW(obs::diff_reports(baseline, other), obs::SchemaMismatchError);
  EXPECT_THROW(obs::diff_reports(other, other), obs::SchemaMismatchError);
  EXPECT_THROW(obs::diff_reports(JsonValue::object(), baseline),
               obs::SchemaMismatchError);
  JsonValue no_points = JsonValue::object();
  no_points.set("schema", JsonValue(obs::kBenchBaselineSchema));
  EXPECT_THROW(obs::diff_reports(no_points, baseline), obs::SchemaMismatchError);
}

TEST(DiffReports, FormatDiffListsEveryEntry) {
  const obs::DiffResult result =
      obs::diff_reports(baseline_doc(2.0, 40.0), baseline_doc(2.0, 60.0));
  const std::string table = obs::format_diff(result, {});
  EXPECT_NE(table.find("old_ms"), std::string::npos);
  EXPECT_NE(table.find("<-- REGRESSION"), std::string::npos);
  EXPECT_NE(table.find("1 regression(s) across 2 compared entries"),
            std::string::npos);
}

#ifdef PERFBG_DIFF_BINARY

std::string write_temp(const std::string& name, const JsonValue& doc) {
  const std::string path = testing::TempDir() + name;
  std::ofstream out(path);
  doc.dump(out, 1);
  return path;
}

int run_diff(const std::string& args) {
  const std::string cmd =
      std::string(PERFBG_DIFF_BINARY) + " " + args + " >/dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(ReportDiffBinary, ExitCodesEndToEnd) {
  const std::string old_path = write_temp("diff_old.json", baseline_doc(2.0, 40.0));
  const std::string same_path = write_temp("diff_same.json", baseline_doc(2.0, 40.0));
  // Injected synthetic regression: the X=20 point slows down by 50%.
  const std::string slow_path = write_temp("diff_slow.json", baseline_doc(2.0, 60.0));
  JsonValue alien = JsonValue::object();
  alien.set("schema", JsonValue("perfbg.other.v1"));
  const std::string alien_path = write_temp("diff_alien.json", alien);

  EXPECT_EQ(run_diff(old_path + " " + same_path), 0);
  // The acceptance-criteria invocation: regression past --threshold 0.25
  // must exit non-zero.
  EXPECT_EQ(run_diff(old_path + " " + slow_path + " --threshold 0.25"), 1);
  // A looser gate lets the same pair pass.
  EXPECT_EQ(run_diff(old_path + " " + slow_path + " --threshold 0.6"), 0);
  // Schema mismatch is a hard failure, distinct from a regression.
  EXPECT_EQ(run_diff(old_path + " " + alien_path), 3);
  // Usage errors: missing file operand, unknown option, unreadable file.
  EXPECT_EQ(run_diff(old_path), 2);
  EXPECT_EQ(run_diff(old_path + " " + same_path + " --bogus"), 2);
  EXPECT_EQ(run_diff(old_path + " /nonexistent/missing.json"), 2);
  EXPECT_EQ(run_diff("--help"), 0);

  std::remove(old_path.c_str());
  std::remove(same_path.c_str());
  std::remove(slow_path.c_str());
  std::remove(alien_path.c_str());
}

TEST(ReportDiffBinary, BudgetGateExitCodesEndToEnd) {
  const std::string old_path =
      write_temp("gate_old.json", baseline_doc_v2(2.0, 40.0, 3.0, 5.0));
  // The acceptance-criteria injection: a budgeted qbd.solve.* span regresses
  // >= 25% at p99 (here +50%).
  const std::string breach_path =
      write_temp("gate_breach.json", baseline_doc_v2(2.0, 40.0, 4.5, 5.0));
  // An unbudgeted span doubles; nothing else moves.
  const std::string soft_path =
      write_temp("gate_soft.json", baseline_doc_v2(2.0, 40.0, 3.0, 10.0));
  // Both: a budget breach AND a soft point regression (40 -> 60 ms).
  const std::string both_path =
      write_temp("gate_both.json", baseline_doc_v2(2.0, 60.0, 4.5, 5.0));

  // Budget breach is the hard exit 4 ...
  EXPECT_EQ(run_diff(old_path + " " + breach_path), 4);
  // ... and takes precedence over the soft exit 1.
  EXPECT_EQ(run_diff(old_path + " " + both_path), 4);
  // An unbudgeted-span regression exits 0: span drift alone never soft-fails.
  EXPECT_EQ(run_diff(old_path + " " + soft_path), 0);
  // Allowlisting the breached span clears the gate.
  EXPECT_EQ(run_diff(old_path + " " + breach_path + " --allow-span qbd.solve.*"), 0);
  // --budgets-only suppresses the soft exit 1 but not the hard exit 4.
  const std::string slow_points_path =
      write_temp("gate_slow_points.json", baseline_doc_v2(2.0, 60.0, 3.0, 5.0));
  EXPECT_EQ(run_diff(old_path + " " + slow_points_path), 1);
  EXPECT_EQ(run_diff(old_path + " " + slow_points_path + " --budgets-only"), 0);
  EXPECT_EQ(run_diff(old_path + " " + breach_path + " --budgets-only"), 4);

  std::remove(old_path.c_str());
  std::remove(breach_path.c_str());
  std::remove(soft_path.c_str());
  std::remove(both_path.c_str());
  std::remove(slow_points_path.c_str());
}

TEST(ReportDiffBinary, UpdateBaselineIsByteDeterministic) {
  const std::string fresh_path =
      write_temp("update_fresh.json", baseline_doc_v2(2.0, 40.0, 4.5, 5.0));
  const std::string baseline_a = testing::TempDir() + "update_baseline_a.json";
  const std::string baseline_b = testing::TempDir() + "update_baseline_b.json";
  auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  };

  EXPECT_EQ(run_diff(baseline_a + " " + fresh_path + " --update-baseline"), 0);
  EXPECT_EQ(run_diff(baseline_b + " " + fresh_path + " --update-baseline"), 0);
  const std::string a = slurp(baseline_a);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, slurp(baseline_b));
  // Updating again from the same input is a fixed point.
  EXPECT_EQ(run_diff(baseline_a + " " + fresh_path + " --update-baseline"), 0);
  EXPECT_EQ(slurp(baseline_a), a);
  // And the rewritten baseline diffs clean against its own source.
  EXPECT_EQ(run_diff(baseline_a + " " + fresh_path), 0);

  std::remove(fresh_path.c_str());
  std::remove(baseline_a.c_str());
  std::remove(baseline_b.c_str());
}

#endif  // PERFBG_DIFF_BINARY

}  // namespace
