#include "traffic/sampler.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "traffic/processes.hpp"

namespace perfbg::traffic {
namespace {

double sample_mean(const std::vector<double>& xs) {
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double sample_scv(const std::vector<double>& xs) {
  const double mu = sample_mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - mu) * (x - mu);
  return ss / (static_cast<double>(xs.size()) * mu * mu);
}

TEST(Sampler, DeterministicGivenSeed) {
  const auto m = mmpp2(0.05, 0.02, 4.0, 0.2);
  MapSampler a(m, 99), b(m, 99);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.next_interarrival(), b.next_interarrival());
}

TEST(Sampler, DifferentSeedsDiffer) {
  const auto m = poisson(1.0);
  MapSampler a(m, 1), b(m, 2);
  EXPECT_NE(a.next_interarrival(), b.next_interarrival());
}

TEST(Sampler, AllSamplesPositive) {
  MapSampler s(mmpp2(0.05, 0.02, 4.0, 0.2), 5);
  for (double x : s.sample(10000)) EXPECT_GT(x, 0.0);
}

TEST(Sampler, PoissonMeanAndScv) {
  MapSampler s(poisson(0.5), 7);
  const auto xs = s.sample(200000);
  EXPECT_NEAR(sample_mean(xs), 2.0, 0.02);
  EXPECT_NEAR(sample_scv(xs), 1.0, 0.03);
}

TEST(Sampler, MmppMeanMatchesAnalytic) {
  const auto m = mmpp2(0.03, 0.01, 2.0, 0.1);
  MapSampler s(m, 11);
  const auto xs = s.sample(400000);
  EXPECT_NEAR(sample_mean(xs), m.mean_interarrival(), 0.02 * m.mean_interarrival());
}

TEST(Sampler, MmppScvMatchesAnalytic) {
  const auto m = mmpp2(0.03, 0.01, 2.0, 0.1);
  MapSampler s(m, 13);
  const auto xs = s.sample(400000);
  EXPECT_NEAR(sample_scv(xs), m.interarrival_scv(), 0.1 * m.interarrival_scv());
}

TEST(Sampler, ErlangMeanAndScv) {
  const auto m = erlang_renewal(4, 8.0);
  MapSampler s(m, 17);
  const auto xs = s.sample(200000);
  EXPECT_NEAR(sample_mean(xs), 8.0, 0.05);
  EXPECT_NEAR(sample_scv(xs), 0.25, 0.01);
}

TEST(Sampler, PhaseStaysInRange) {
  const auto m = mmpp2(0.5, 0.5, 2.0, 0.5);
  MapSampler s(m, 23);
  for (int i = 0; i < 1000; ++i) {
    s.next_interarrival();
    EXPECT_LT(s.phase(), m.phases());
  }
}

TEST(Sampler, SampleVectorHasRequestedLength) {
  MapSampler s(poisson(1.0), 3);
  EXPECT_EQ(s.sample(123).size(), 123u);
}

}  // namespace
}  // namespace perfbg::traffic
