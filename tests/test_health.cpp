// Tests for the numerical-health telemetry (obs/health.hpp, DESIGN.md §12):
// record construction from real solves (converged, fallback, non-convergent,
// cancelled), the decay-rate / budget-consumption arithmetic, JSON
// serialisation, and the RunReport "health" plumbing (thread-safe, sorted,
// deterministic).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/model.hpp"
#include "obs/health.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "qbd/rmatrix.hpp"
#include "util/error.hpp"
#include "workloads/presets.hpp"

namespace {

using namespace perfbg;
using obs::JsonValue;
using obs::SolveHealth;
using obs::SolveStatus;

core::FgBgParams small_params() {
  core::FgBgParams params{workloads::email_poisson().scaled_to_utilization(
      0.15, workloads::kMeanServiceTimeMs)};
  params.mean_service_time = workloads::kMeanServiceTimeMs;
  params.bg_probability = 0.3;
  params.bg_buffer = 5;
  params.idle_wait_intensity = 1.0;
  return params;
}

TEST(SolveHealth, ConvergedSolveRecordsFullTrajectory) {
  const core::FgBgSolution solution = core::FgBgModel(small_params()).solve();
  const SolveHealth h = solution.health();

  EXPECT_EQ(h.status, SolveStatus::kConverged);
  EXPECT_GT(h.iterations, 0);
  EXPECT_GE(h.max_iters, h.iterations);
  EXPECT_GT(h.final_residual, 0.0);
  EXPECT_LE(h.final_residual, h.tolerance_used);
  // Residual trajectory: both endpoints observed, contraction strictly < 1
  // (the solve converged) and > 0.
  EXPECT_GT(h.first_increment, 0.0);
  EXPECT_GT(h.last_increment, 0.0);
  EXPECT_LT(h.last_increment, h.first_increment);
  EXPECT_GT(h.decay_rate, 0.0);
  EXPECT_LT(h.decay_rate, 1.0);
  // Primary rung, first attempt.
  EXPECT_EQ(h.rung, 0);
  EXPECT_EQ(h.rung_name, "logarithmic reduction");
  EXPECT_EQ(h.rungs_attempted, 1);
  EXPECT_EQ(h.attempt, 1);
  // Stability proximity: a stable utilization-0.15 point sits well inside.
  EXPECT_GT(h.drift_ratio, 0.0);
  EXPECT_LT(h.drift_ratio, 1.0);
  EXPECT_GT(h.spectral_radius, 0.0);
  EXPECT_LT(h.spectral_radius, 1.0);
  // Budget: converged long before max_iters.
  EXPECT_GT(h.budget_consumed(), 0.0);
  EXPECT_LT(h.budget_consumed(), 1.0);
  EXPECT_TRUE(h.error_code.empty());
}

TEST(SolveHealth, FallbackSolveReportsTheWinningRung) {
  qbd::RSolverOptions opts;
  opts.inject_rung_failures = 1;  // deterministic: pretend the primary failed
  const core::FgBgSolution solution = core::FgBgModel(small_params()).solve(opts);
  const SolveHealth h = solution.health();

  EXPECT_EQ(h.status, SolveStatus::kFallback);
  EXPECT_GE(h.rung, 1);
  EXPECT_NE(h.rung_name, "primary");
  EXPECT_GE(h.rungs_attempted, 2);
  // Fallback rungs run under the 10x budget with the floored tolerance; the
  // record carries the rung's actual limits, not the caller's.
  EXPECT_EQ(h.max_iters, 10 * opts.max_iters);
  EXPECT_GT(h.iterations, 0);
  EXPECT_LE(h.final_residual, h.tolerance_used);
  EXPECT_GT(h.decay_rate, 0.0);
  EXPECT_LT(h.decay_rate, 1.0);
}

TEST(SolveHealth, NonConvergentSolveBecomesFailedRecord) {
  qbd::RSolverOptions opts;
  opts.max_iters = 1;  // nothing converges in one iteration
  opts.enable_fallback = false;
  try {
    core::FgBgModel(small_params()).solve(opts);
    FAIL() << "expected kNonConvergence";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNonConvergence);
    SolveHealth h = obs::failed_solve_health(error_code_name(e.code()), e.what());
    EXPECT_EQ(h.status, SolveStatus::kFailed);
    EXPECT_EQ(h.error_code, "kNonConvergence");
    EXPECT_FALSE(h.error_message.empty());
    EXPECT_EQ(h.rungs_attempted, 0);
    EXPECT_TRUE(h.rung_name.empty());
    EXPECT_LT(h.budget_consumed(), 0.0);  // no budget known
  }
}

TEST(SolveHealth, CancellationCodesClassifyAsCancelled) {
  EXPECT_EQ(obs::failed_solve_health("kDeadlineExceeded", "deadline").status,
            SolveStatus::kCancelled);
  EXPECT_EQ(obs::failed_solve_health("kInterrupted", "SIGINT").status,
            SolveStatus::kCancelled);
  EXPECT_EQ(obs::failed_solve_health("kUnstableQbd", "rho >= 1").status,
            SolveStatus::kFailed);
}

TEST(SolveHealth, StatusNames) {
  EXPECT_STREQ(obs::solve_status_name(SolveStatus::kConverged), "converged");
  EXPECT_STREQ(obs::solve_status_name(SolveStatus::kFallback), "fallback");
  EXPECT_STREQ(obs::solve_status_name(SolveStatus::kFailed), "failed");
  EXPECT_STREQ(obs::solve_status_name(SolveStatus::kCancelled), "cancelled");
}

TEST(SolveHealth, GeometricDecayRate) {
  // 1 -> 1e-8 over 9 iterations = 8 contraction steps of 0.1 each.
  EXPECT_NEAR(obs::geometric_decay_rate(1.0, 1e-8, 9), 0.1, 1e-12);
  // Exactly two iterations: one step, the ratio itself.
  EXPECT_NEAR(obs::geometric_decay_rate(0.5, 0.125, 2), 0.25, 1e-12);
  // Unknown: too few iterations or unobserved endpoints.
  EXPECT_LT(obs::geometric_decay_rate(1.0, 0.1, 1), 0.0);
  EXPECT_LT(obs::geometric_decay_rate(-1.0, 0.1, 5), 0.0);
  EXPECT_LT(obs::geometric_decay_rate(1.0, -1.0, 5), 0.0);
  EXPECT_LT(obs::geometric_decay_rate(0.0, 0.0, 5), 0.0);
}

TEST(SolveHealth, BudgetConsumed) {
  SolveHealth h;
  h.iterations = 25;
  h.max_iters = 100;
  EXPECT_NEAR(h.budget_consumed(), 0.25, 1e-12);
  h.max_iters = 0;
  EXPECT_LT(h.budget_consumed(), 0.0);
}

TEST(SolveHealth, ToJsonCarriesEveryField) {
  SolveHealth h;
  h.status = SolveStatus::kFallback;
  h.key = "email|u=0.15|p=0.3|X=5";
  h.iterations = 40;
  h.max_iters = 100000;
  h.final_residual = 3e-11;
  h.tolerance_used = 1e-10;
  h.first_increment = 0.5;
  h.last_increment = 5e-11;
  h.decay_rate = 0.56;
  h.rung = 1;
  h.rung_name = "functional-iteration";
  h.rungs_attempted = 2;
  h.attempt = 2;
  h.drift_ratio = 0.42;
  h.spectral_radius = 0.37;

  const JsonValue v = h.to_json();
  EXPECT_EQ(v.at("status").as_string(), "fallback");
  EXPECT_EQ(v.at("key").as_string(), h.key);
  EXPECT_EQ(v.at("iterations").as_int(), 40);
  EXPECT_EQ(v.at("max_iters").as_int(), 100000);
  EXPECT_DOUBLE_EQ(v.at("budget_consumed").as_double(), 40.0 / 100000.0);
  EXPECT_DOUBLE_EQ(v.at("final_residual").as_double(), 3e-11);
  EXPECT_DOUBLE_EQ(v.at("tolerance_used").as_double(), 1e-10);
  EXPECT_DOUBLE_EQ(v.at("first_increment").as_double(), 0.5);
  EXPECT_DOUBLE_EQ(v.at("last_increment").as_double(), 5e-11);
  EXPECT_DOUBLE_EQ(v.at("decay_rate").as_double(), 0.56);
  EXPECT_EQ(v.at("rung").as_int(), 1);
  EXPECT_EQ(v.at("rung_name").as_string(), "functional-iteration");
  EXPECT_EQ(v.at("rungs_attempted").as_int(), 2);
  EXPECT_EQ(v.at("attempt").as_int(), 2);
  EXPECT_DOUBLE_EQ(v.at("drift_ratio").as_double(), 0.42);
  EXPECT_DOUBLE_EQ(v.at("spectral_radius").as_double(), 0.37);
  EXPECT_EQ(v.at("error_code").as_string(), "");
  EXPECT_EQ(v.at("error_message").as_string(), "");
}

TEST(RunReportHealth, RecordsSortDeterministically) {
  SolveHealth a;
  a.key = "a|u=0.1";
  a.iterations = 10;
  SolveHealth b;
  b.key = "b|u=0.2";
  b.iterations = 20;
  SolveHealth c = obs::failed_solve_health("kNonConvergence", "rungs exhausted");
  c.key = "c|u=0.9";

  obs::RunReport forward("unit"), backward("unit");
  forward.add_health(a);
  forward.add_health(b);
  forward.add_health(c);
  backward.add_health(c);
  backward.add_health(b);
  backward.add_health(a);
  EXPECT_EQ(forward.health_count(), 3u);

  const JsonValue fj = forward.to_json();
  const JsonValue bj = backward.to_json();
  ASSERT_TRUE(fj.contains("health"));
  ASSERT_EQ(fj.at("health").as_array().size(), 3u);
  // Insertion order (= completion order under --jobs=N) must not leak into
  // the serialised report.
  EXPECT_EQ(fj.at("health").dump(), bj.at("health").dump());
  EXPECT_EQ(fj.at("health").as_array()[0].at("key").as_string(), "a|u=0.1");
  EXPECT_EQ(fj.at("health").as_array()[2].at("status").as_string(), "failed");
}

TEST(RunReportHealth, ConcurrentRecordingIsSafe) {
  obs::RunReport report("unit");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&report, t] {
      for (int i = 0; i < kPerThread; ++i) {
        SolveHealth h;
        h.key = "t" + std::to_string(t) + "|i=" + std::to_string(i);
        report.add_health(h);
      }
    });
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(report.health_count(),
            static_cast<std::size_t>(kThreads * kPerThread));
  EXPECT_EQ(report.to_json().at("health").as_array().size(),
            static_cast<std::size_t>(kThreads * kPerThread));
}

TEST(RunReportHealth, PrintSummaryCountsDegradedRecords) {
  obs::RunReport report("unit");
  SolveHealth ok;
  ok.key = "ok";
  report.add_health(ok);
  SolveHealth bad = obs::failed_solve_health("kNonConvergence", "exhausted");
  bad.key = "bad";
  report.add_health(bad);
  std::ostringstream os;
  report.print_summary(os);
  EXPECT_NE(os.str().find("health: 2 solve record(s), 1 degraded"),
            std::string::npos);
}

}  // namespace
