// Tests for the generic QBD machinery, anchored on queueing systems with
// known closed forms:
//  * M/M/1 as a QBD with scalar blocks (R = rho),
//  * MAP/M/1 with 2-phase arrivals against brute-force truncation,
//  * agreement between the two R solvers.
#include "qbd/qbd.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "linalg/lu.hpp"
#include "linalg/spectral.hpp"
#include "qbd/rmatrix.hpp"
#include "qbd/solution.hpp"
#include "traffic/processes.hpp"

namespace perfbg::qbd {
namespace {

/// M/M/1 as a QBD: one state per level.
QbdProcess mm1(double lambda, double mu) {
  QbdProcess q;
  q.b00 = Matrix{{-lambda}};
  q.b01 = Matrix{{lambda}};
  q.b10 = Matrix{{mu}};
  q.a0 = Matrix{{lambda}};
  q.a1 = Matrix{{-(lambda + mu)}};
  q.a2 = Matrix{{mu}};
  return q;
}

/// MAP/M/1 as a QBD: boundary = empty-system phases; repeating = phases.
QbdProcess map_m_1(const traffic::MarkovianArrivalProcess& map, double mu) {
  const std::size_t a = map.phases();
  QbdProcess q;
  q.b00 = map.d0();
  q.b01 = map.d1();
  q.b10 = Matrix::identity(a) * mu;
  q.a0 = map.d1();
  q.a1 = map.d0() - Matrix::identity(a) * mu;
  q.a2 = Matrix::identity(a) * mu;
  return q;
}

TEST(QbdValidate, AcceptsWellFormedProcess) { EXPECT_NO_THROW(mm1(0.3, 1.0).validate()); }

TEST(QbdValidate, RejectsBrokenRowSums) {
  QbdProcess q = mm1(0.3, 1.0);
  q.a0 = Matrix{{0.4}};  // breaks both repeating row sums
  EXPECT_THROW(q.validate(), std::invalid_argument);
}

TEST(QbdValidate, RejectsNegativeRates) {
  QbdProcess q = mm1(0.3, 1.0);
  q.a2 = Matrix{{-1.0}};
  EXPECT_THROW(q.validate(), std::invalid_argument);
}

TEST(QbdValidate, RejectsShapeMismatch) {
  QbdProcess q = mm1(0.3, 1.0);
  q.b01 = Matrix(1, 2, 0.1);
  EXPECT_THROW(q.validate(), std::invalid_argument);
}

TEST(QbdDrift, Mm1DriftIsRho) {
  EXPECT_NEAR(mm1(0.3, 1.0).drift_ratio(), 0.3, 1e-12);
  EXPECT_TRUE(mm1(0.3, 1.0).is_stable());
  EXPECT_FALSE(mm1(1.2, 1.0).is_stable());
}

TEST(QbdDrift, MapM1DriftIsUtilization) {
  const auto map = traffic::mmpp2(0.05, 0.02, 1.0, 0.1);
  const double mu = 2.0;
  EXPECT_NEAR(map_m_1(map, mu).drift_ratio(), map.mean_rate() / mu, 1e-10);
}

TEST(SolveR, Mm1RIsRho) {
  for (double rho : {0.1, 0.5, 0.9, 0.99}) {
    const QbdProcess q = mm1(rho, 1.0);
    const Matrix r = solve_r(q.a0, q.a1, q.a2);
    EXPECT_NEAR(r(0, 0), rho, 1e-10) << rho;
  }
}

TEST(SolveR, FunctionalIterationAgreesWithLogReduction) {
  const auto map = traffic::mmpp2(0.05, 0.02, 1.0, 0.1);
  const QbdProcess q = map_m_1(map, 1.0);
  RSolverOptions fi;
  fi.kind = RSolverKind::kFunctionalIteration;
  fi.max_iters = 1000000;
  const Matrix r_lr = solve_r(q.a0, q.a1, q.a2);
  const Matrix r_fi = solve_r(q.a0, q.a1, q.a2, fi);
  EXPECT_LT(r_lr.max_abs_diff(r_fi), 1e-9);
}

TEST(SolveR, ResidualIsTiny) {
  const auto map = traffic::mmpp2(0.05, 0.02, 1.5, 0.3);
  const QbdProcess q = map_m_1(map, 2.0);
  RSolverStats stats;
  const Matrix r = solve_r(q.a0, q.a1, q.a2, {}, &stats);
  EXPECT_LT(stats.final_residual, 1e-10);
  EXPECT_LT(r_equation_residual(r, q.a0, q.a1, q.a2), 1e-10);
  EXPECT_GT(stats.iterations, 0);
}

TEST(SolveR, NonnegativeWithSpectralRadiusBelowOne) {
  const auto map = traffic::mmpp2(0.01, 0.004, 3.0, 0.2);
  const QbdProcess q = map_m_1(map, 2.0);
  const Matrix r = solve_r(q.a0, q.a1, q.a2);
  for (std::size_t i = 0; i < r.rows(); ++i)
    for (std::size_t j = 0; j < r.cols(); ++j) EXPECT_GE(r(i, j), 0.0);
  EXPECT_LT(linalg::spectral_radius(r), 1.0);
}

TEST(SolveG, GIsStochasticForStableQbd) {
  const auto map = traffic::mmpp2(0.05, 0.02, 1.0, 0.1);
  const QbdProcess q = map_m_1(map, 1.0);
  const Matrix g = solve_g(q.a0, q.a1, q.a2);
  for (std::size_t i = 0; i < g.rows(); ++i) EXPECT_NEAR(g.row_sum(i), 1.0, 1e-9);
}

TEST(SolveG, SatisfiesItsEquation) {
  const auto map = traffic::mmpp2(0.05, 0.02, 1.0, 0.1);
  const QbdProcess q = map_m_1(map, 1.0);
  const Matrix g = solve_g(q.a0, q.a1, q.a2);
  EXPECT_LT((q.a2 + q.a1 * g + q.a0 * (g * g)).inf_norm(), 1e-9);
}

TEST(SolveG, BothSolversAgree) {
  const auto map = traffic::mmpp2(0.02, 0.05, 2.0, 0.4);
  const QbdProcess q = map_m_1(map, 1.5);
  RSolverOptions fi;
  fi.kind = RSolverKind::kFunctionalIteration;
  fi.max_iters = 1000000;
  EXPECT_LT(solve_g(q.a0, q.a1, q.a2).max_abs_diff(solve_g(q.a0, q.a1, q.a2, fi)), 1e-9);
}

TEST(Solution, Mm1QueueLengthClosedForm) {
  for (double rho : {0.2, 0.5, 0.8, 0.95}) {
    const QbdSolution sol(mm1(rho, 1.0));
    // pi_0 = 1 - rho; level k has pi = (1-rho) rho^k.
    EXPECT_NEAR(sol.boundary()[0], 1.0 - rho, 1e-10) << rho;
    EXPECT_NEAR(sol.first_repeating()[0], (1.0 - rho) * rho, 1e-10) << rho;
    // Mean queue length = rho / (1 - rho):
    // levels contribute 1 * P(level >= 1) via index 0 plus the index sum.
    const double qlen = sol.repeating_mass() + sol.mean_repeating_index();
    EXPECT_NEAR(qlen, rho / (1.0 - rho), 1e-8) << rho;
    EXPECT_NEAR(sol.total_mass(), 1.0, 1e-10);
  }
}

TEST(Solution, Mm1GeometricLevels) {
  const double rho = 0.6;
  const QbdSolution sol(mm1(rho, 1.0));
  for (int k = 0; k < 10; ++k)
    EXPECT_NEAR(sol.repeating_level(k)[0], (1.0 - rho) * std::pow(rho, k + 1), 1e-10) << k;
}

TEST(Solution, UnstableProcessThrows) {
  EXPECT_THROW(QbdSolution{mm1(1.5, 1.0)}, std::runtime_error);
}

TEST(Solution, MapM1MassAndThroughputBalance) {
  const auto map = traffic::mmpp2(0.05, 0.02, 1.0, 0.1);
  const double mu = 1.0;
  const QbdSolution sol(map_m_1(map, mu));
  EXPECT_NEAR(sol.total_mass(), 1.0, 1e-9);
  // P(busy) = repeating mass must equal lambda / mu.
  EXPECT_NEAR(sol.repeating_mass(), map.mean_rate() / mu, 1e-9);
}

TEST(Solution, MapM1AgainstBruteForceTruncation) {
  // Assemble the truncated generator for K levels and solve directly with
  // LU; compare level probabilities with the matrix-geometric solution.
  const auto map = traffic::mmpp2(0.05, 0.02, 1.0, 0.1);
  const double mu = 1.5;
  const QbdProcess q = map_m_1(map, mu);
  const QbdSolution sol(q);

  const std::size_t a = map.phases();
  const int levels = 80;  // plus boundary; tail mass ~ sp(R)^80
  const std::size_t n = a * static_cast<std::size_t>(levels + 1);
  Matrix full(n, n, 0.0);
  auto put = [&](int lr, int lc, const Matrix& b) {
    for (std::size_t i = 0; i < a; ++i)
      for (std::size_t j = 0; j < a; ++j)
        full(static_cast<std::size_t>(lr) * a + i, static_cast<std::size_t>(lc) * a + j) +=
            b(i, j);
  };
  put(0, 0, q.b00);
  put(0, 1, q.b01);
  put(1, 0, q.b10);
  for (int l = 1; l <= levels; ++l) {
    put(l, l, q.a1);
    if (l + 1 <= levels)
      put(l, l + 1, q.a0);
    else
      put(l, l, q.a0);  // reflect at the truncation boundary
    if (l >= 2) put(l, l - 1, q.a2);
  }
  const linalg::Vector pi = linalg::solve_stationary(full);

  for (int l = 0; l <= 10; ++l) {
    double truncated = 0.0;
    for (std::size_t i = 0; i < a; ++i)
      truncated += pi[static_cast<std::size_t>(l) * a + i];
    double exact = 0.0;
    if (l == 0) {
      exact = sol.boundary_mass();
    } else {
      for (double v : sol.repeating_level(l - 1)) exact += v;
    }
    EXPECT_NEAR(truncated, exact, 1e-8) << "level " << l;
  }
}

}  // namespace
}  // namespace perfbg::qbd
