// Unit tests for the observability layer: JSON model round-trips, metrics
// registry semantics (counters / gauges / timers / histograms, duplicate-name
// protection), trace sinks, and the R-solver convergence trace.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "qbd/rmatrix.hpp"
#include "qbd/solution.hpp"

namespace {

using namespace perfbg;
using obs::JsonValue;

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

TEST(Json, ScalarRoundTrip) {
  EXPECT_EQ(obs::parse_json("null").kind(), JsonValue::Kind::kNull);
  EXPECT_TRUE(obs::parse_json("true").as_bool());
  EXPECT_FALSE(obs::parse_json("false").as_bool());
  EXPECT_EQ(obs::parse_json("-42").as_int(), -42);
  EXPECT_DOUBLE_EQ(obs::parse_json("2.5e-3").as_double(), 2.5e-3);
  EXPECT_EQ(obs::parse_json("\"hi\\nthere\"").as_string(), "hi\nthere");
}

TEST(Json, DocumentRoundTripPreservesValuesAndOrder) {
  JsonValue doc = JsonValue::object();
  doc.set("zeta", JsonValue(1));
  doc.set("alpha", JsonValue(0.125));
  JsonValue arr = JsonValue::array();
  arr.push_back(JsonValue("quote\" and \\slash"));
  arr.push_back(JsonValue(nullptr));
  arr.push_back(JsonValue(true));
  doc.set("items", std::move(arr));
  JsonValue nested = JsonValue::object();
  nested.set("n", JsonValue(static_cast<std::int64_t>(1) << 40));
  doc.set("nested", std::move(nested));

  // Insertion order survives serialization (zeta before alpha).
  const std::string compact = doc.dump();
  EXPECT_LT(compact.find("zeta"), compact.find("alpha"));

  const JsonValue back = obs::parse_json(compact);
  EXPECT_EQ(back.dump(), compact);
  EXPECT_EQ(back.at("zeta").as_int(), 1);
  EXPECT_DOUBLE_EQ(back.at("alpha").as_double(), 0.125);
  EXPECT_EQ(back.at("items").as_array()[0].as_string(), "quote\" and \\slash");
  EXPECT_EQ(back.at("nested").at("n").as_int(), std::int64_t(1) << 40);

  // Pretty-printed form parses back to the same document.
  EXPECT_EQ(obs::parse_json(doc.dump(2)).dump(), compact);
}

TEST(Json, DoubleRoundTripIsExact) {
  for (double v : {0.1, 1.0 / 3.0, 1e-300, 12345.6789, 2.5156455016979093e-17}) {
    const JsonValue parsed = obs::parse_json(JsonValue(v).dump());
    EXPECT_EQ(parsed.as_double(), v);
  }
}

TEST(Json, ParseErrors) {
  EXPECT_THROW(obs::parse_json(""), std::invalid_argument);
  EXPECT_THROW(obs::parse_json("{\"a\":}"), std::invalid_argument);
  EXPECT_THROW(obs::parse_json("[1,2"), std::invalid_argument);
  EXPECT_THROW(obs::parse_json("12 34"), std::invalid_argument);
  EXPECT_THROW(obs::parse_json("\"unterminated"), std::invalid_argument);
  EXPECT_THROW(obs::parse_json("truthy"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, CounterSemantics) {
  obs::MetricsRegistry m;
  EXPECT_EQ(m.counter("qbd.rsolve.iterations"), 0u);  // absent reads as 0
  m.add("qbd.rsolve.iterations");
  m.add("qbd.rsolve.iterations", 41);
  EXPECT_EQ(m.counter("qbd.rsolve.iterations"), 42u);
}

TEST(MetricsRegistry, GaugeLastValueWins) {
  obs::MetricsRegistry m;
  m.set("sim.warmup.end_qlen_fg", 3.0);
  m.set("sim.warmup.end_qlen_fg", 1.5);
  EXPECT_DOUBLE_EQ(m.gauge("sim.warmup.end_qlen_fg"), 1.5);
}

TEST(MetricsRegistry, TimerAccumulates) {
  obs::MetricsRegistry m;
  m.record_time("core.solve.total", 2.0);
  m.record_time("core.solve.total", 5.0);
  const obs::TimerStat t = m.timer("core.solve.total");
  EXPECT_EQ(t.count, 2u);
  EXPECT_DOUBLE_EQ(t.total_ms, 7.0);
  EXPECT_DOUBLE_EQ(t.max_ms, 5.0);
  EXPECT_DOUBLE_EQ(t.min_ms, 2.0);
}

TEST(MetricsRegistry, TimerTracksMinimum) {
  obs::MetricsRegistry m;
  // An absent timer reads back with the +inf init so any sample lowers it.
  EXPECT_TRUE(std::isinf(m.timer("t").min_ms));
  m.record_time("t", 5.0);
  EXPECT_DOUBLE_EQ(m.timer("t").min_ms, 5.0);
  m.record_time("t", 2.0);
  m.record_time("t", 3.0);
  EXPECT_DOUBLE_EQ(m.timer("t").min_ms, 2.0);
  EXPECT_DOUBLE_EQ(m.timer("t").max_ms, 5.0);

  // JSON exposure: min_ms sits alongside the other timer fields (and an
  // inf would not be valid JSON, which is why empty timers dump min_ms 0).
  const JsonValue j = m.to_json();
  EXPECT_DOUBLE_EQ(j.at("timers").at("t").at("min_ms").as_double(), 2.0);
  EXPECT_LT(j.dump().find("\"min_ms\""), j.dump().find("\"max_ms\""));
}

TEST(MetricsRegistry, HistogramQuantileInterpolates) {
  obs::MetricsRegistry m;
  m.define_histogram("lat", {1.0, 10.0, 100.0});
  // Bucket occupancy: [<=1]: 2, (1,10]: 2, (10,100]: 0, overflow: 2.
  for (double v : {0.5, 1.0, 3.0, 7.0, 500.0, 1000.0}) m.observe("lat", v);
  const obs::HistogramStat h = m.histogram("lat");

  // Extremes clamp to the observed range, not the bucket edges.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.5);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
  // q = 0.5 -> target rank 3 of 6, reached mid-way through the second
  // bucket (1, 10]: 1 + 0.5 * 9 = 5.5.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.5);
  // First bucket's lower edge is the observed min: rank 1 of 6 lands at
  // 0.5 + 0.5 * (1 - 0.5).
  EXPECT_DOUBLE_EQ(h.quantile(1.0 / 6.0), 0.75);
  // Overflow bucket: upper edge is the observed max, so high quantiles
  // interpolate in (100, 1000] instead of diverging.
  const double p99 = h.quantile(0.99);
  EXPECT_GT(p99, 100.0);
  EXPECT_LE(p99, 1000.0);
  EXPECT_DOUBLE_EQ(h.quantile(5.0 / 6.0), 100.0 + (1.0 / 2.0) * 900.0);

  // Monotone in q.
  double prev = h.quantile(0.0);
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.999}) {
    const double cur = h.quantile(q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }

  EXPECT_THROW(h.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW(h.quantile(1.1), std::invalid_argument);
  EXPECT_THROW(obs::HistogramStat{}.quantile(0.5), std::invalid_argument);
}

TEST(MetricsRegistry, HistogramQuantileSingleBucket) {
  obs::MetricsRegistry m;
  m.define_histogram("one", {10.0});
  m.observe("one", 4.0);
  m.observe("one", 4.0);
  const obs::HistogramStat h = m.histogram("one");
  // Degenerate bucket (min == max after clamping): every quantile is 4.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 4.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 4.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
}

TEST(MetricsRegistry, QuantileOneIsTheExactMax) {
  // Regression guard for the tail accessors: q = 1.0 must return the tracked
  // maximum exactly, never an interpolated bucket edge. With a single huge
  // bucket, interpolation would land far from the largest observation.
  obs::MetricsRegistry m;
  m.define_histogram("wide", {1000.0});
  m.observe("wide", 3.0);
  m.observe("wide", 7.0);
  const obs::HistogramStat h = m.histogram("wide");
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 7.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 3.0);
  // The named tail accessors delegate to quantile().
  EXPECT_DOUBLE_EQ(h.p50(), h.quantile(0.5));
  EXPECT_DOUBLE_EQ(h.p99(), h.quantile(0.99));
  EXPECT_LE(h.p50(), h.p99());
  EXPECT_LE(h.p99(), h.max);
}

TEST(MetricsRegistry, LogBucketsGeometricLadder) {
  // 10 buckets per decade over 8 decades: ~5.9% geometric steps.
  const std::vector<double> b = obs::log_buckets(1e-4, 1e4, 10);
  ASSERT_FALSE(b.empty());
  EXPECT_DOUBLE_EQ(b.front(), 1e-4);
  EXPECT_GE(b.back(), 1e4);
  const double step = std::pow(10.0, 0.1);
  for (std::size_t i = 1; i < b.size(); ++i) {
    EXPECT_GT(b[i], b[i - 1]);
    EXPECT_NEAR(b[i] / b[i - 1], step, 1e-9);
  }
  EXPECT_EQ(b.size(), 81u);  // 8 decades x 10 + the closing bound

  EXPECT_THROW(obs::log_buckets(0.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(obs::log_buckets(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(obs::log_buckets(1.0, 10.0, 0), std::invalid_argument);
}

TEST(MetricsRegistry, StandaloneHistogramObserveValue) {
  obs::HistogramStat h = obs::make_histogram(obs::log_buckets(0.1, 10.0, 1));
  for (double v : {0.05, 0.5, 5.0, 50.0}) h.observe_value(v);
  EXPECT_EQ(h.count, 4u);
  EXPECT_DOUBLE_EQ(h.min, 0.05);
  EXPECT_DOUBLE_EQ(h.max, 50.0);
  EXPECT_DOUBLE_EQ(h.sum, 55.55);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 50.0);

  // A default-constructed stat has no buckets; observing into it is an error,
  // not a silent out-of-bounds write.
  obs::HistogramStat empty;
  EXPECT_THROW(empty.observe_value(1.0), std::invalid_argument);
  EXPECT_THROW(obs::make_histogram({}), std::invalid_argument);
}

TEST(MetricsRegistry, RenderTextPrometheusFormat) {
  obs::MetricsRegistry m;
  m.add("qbd.solve.count", 3);
  m.set("model.tail_decay", 0.25);
  m.record_time("qbd.solve", 12.5);
  m.record_time("qbd.solve", 2.5);
  m.define_histogram("point.wall", {1.0, 10.0});
  m.observe("point.wall", 0.5);
  m.observe("point.wall", 5.0);
  m.observe("point.wall", 500.0);

  const std::string text = m.render_text();
  // Names: perfbg_ prefix, dots to underscores; each family gets a TYPE line.
  EXPECT_NE(text.find("# TYPE perfbg_qbd_solve_count counter\n"
                      "perfbg_qbd_solve_count 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE perfbg_model_tail_decay gauge\n"
                      "perfbg_model_tail_decay 0.25\n"),
            std::string::npos);
  // Timers render as a quantile-less summary in milliseconds.
  EXPECT_NE(text.find("# TYPE perfbg_qbd_solve_ms summary\n"
                      "perfbg_qbd_solve_ms_sum 15\n"
                      "perfbg_qbd_solve_ms_count 2\n"),
            std::string::npos);
  // Histograms: cumulative buckets, the +Inf bucket equals the total count,
  // then _sum and _count.
  EXPECT_NE(text.find("# TYPE perfbg_point_wall histogram\n"
                      "perfbg_point_wall_bucket{le=\"1\"} 1\n"
                      "perfbg_point_wall_bucket{le=\"10\"} 2\n"
                      "perfbg_point_wall_bucket{le=\"+Inf\"} 3\n"
                      "perfbg_point_wall_sum 505.5\n"
                      "perfbg_point_wall_count 3\n"),
            std::string::npos);

  // Round-trip: every non-comment line is `name{labels}? value` with a value
  // that parses back to the original double.
  std::istringstream lines(text);
  std::string line;
  std::size_t series = 0;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string value = line.substr(space + 1);
    EXPECT_FALSE(value.empty()) << line;
    std::size_t used = 0;
    EXPECT_NO_THROW({
      (void)std::stod(value, &used);
      EXPECT_EQ(used, value.size()) << line;
    }) << line;
    ++series;
  }
  EXPECT_EQ(series, 9u);

  // Non-finite gauges use the spec spellings.
  m.set("weird", std::numeric_limits<double>::infinity());
  EXPECT_NE(m.render_text().find("perfbg_weird +Inf\n"), std::string::npos);
}

TEST(MetricsRegistry, ScopedTimerRecordsAndNullIsNoop) {
  obs::MetricsRegistry m;
  {
    obs::ScopedTimer t(&m, "phase");
  }
  EXPECT_EQ(m.timer("phase").count, 1u);
  EXPECT_GE(m.timer("phase").total_ms, 0.0);

  obs::ScopedTimer stopped(&m, "phase");
  stopped.stop();
  stopped.stop();  // disarmed: second stop must not double-record
  EXPECT_EQ(m.timer("phase").count, 2u);

  obs::ScopedTimer null_timer(nullptr, "phase");  // must not crash or record
  EXPECT_DOUBLE_EQ(null_timer.stop(), 0.0);
  EXPECT_EQ(m.timer("phase").count, 2u);
}

TEST(MetricsRegistry, HistogramBuckets) {
  obs::MetricsRegistry m;
  m.define_histogram("lat", {1.0, 10.0, 100.0});
  for (double v : {0.5, 1.0, 3.0, 50.0, 1000.0}) m.observe("lat", v);
  const obs::HistogramStat h = m.histogram("lat");
  ASSERT_EQ(h.counts.size(), 4u);
  EXPECT_EQ(h.counts[0], 2u);  // 0.5, 1.0 (bounds are inclusive upper edges)
  EXPECT_EQ(h.counts[1], 1u);  // 3.0
  EXPECT_EQ(h.counts[2], 1u);  // 50.0
  EXPECT_EQ(h.counts[3], 1u);  // 1000.0 overflows
  EXPECT_EQ(h.count, 5u);
  EXPECT_DOUBLE_EQ(h.sum, 1054.5);
  EXPECT_DOUBLE_EQ(h.min, 0.5);
  EXPECT_DOUBLE_EQ(h.max, 1000.0);

  // Redefinition with identical bounds is a no-op; different bounds throw.
  m.define_histogram("lat", {1.0, 10.0, 100.0});
  EXPECT_THROW(m.define_histogram("lat", {2.0}), std::invalid_argument);
  EXPECT_THROW(m.define_histogram("bad", {}), std::invalid_argument);
  EXPECT_THROW(m.define_histogram("bad", {3.0, 2.0}), std::invalid_argument);

  // Un-defined histograms auto-define on first observe.
  m.observe("auto", 4.2);
  EXPECT_EQ(m.histogram("auto").count, 1u);
}

TEST(MetricsRegistry, ExemplarsAnnotateBucketLinesOpenMetricsStyle) {
  obs::MetricsRegistry m;
  m.define_histogram("req.wall", {1.0, 10.0});
  m.observe("req.wall", 0.5);  // plain observation: no exemplar on its bucket
  m.observe("req.wall", 5.0, "00000000deadbeef");
  m.observe("req.wall", 500.0, "00000000cafef00d");  // lands in +Inf

  const std::string text = m.render_text();
  // Bucket lines carry an OpenMetrics exemplar suffix only where one was
  // recorded; the le="1" bucket stays a plain Prometheus 0.0.4 line.
  EXPECT_NE(text.find("perfbg_req_wall_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("perfbg_req_wall_bucket{le=\"10\"} 2 "
                      "# {trace_id=\"00000000deadbeef\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("perfbg_req_wall_bucket{le=\"+Inf\"} 3 "
                      "# {trace_id=\"00000000cafef00d\"} 500\n"),
            std::string::npos);

  // Last write wins per bucket; an empty label leaves exemplars untouched.
  m.observe("req.wall", 7.0, "00000000feedf00d");
  m.observe("req.wall", 8.0);
  EXPECT_NE(m.render_text().find("# {trace_id=\"00000000feedf00d\"} 7\n"),
            std::string::npos);

  // Exemplars stay out of the deterministic JSON report.
  EXPECT_EQ(m.to_json().dump().find("trace_id"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------------

obs::RequestTrace make_trace(std::uint64_t id, double wall_ms) {
  obs::RequestTrace t;
  t.trace_id = id;
  t.key = "k" + std::to_string(id);
  t.outcome = "ok";
  t.wall_ms = wall_ms;
  return t;
}

TEST(FlightRecorder, RingOverwritesOldestAndKeepsMonotonicSeq) {
  obs::FlightRecorder rec(3);
  EXPECT_EQ(rec.capacity(), 3u);
  EXPECT_EQ(rec.size(), 0u);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    EXPECT_EQ(rec.record(make_trace(i, 1.0 * static_cast<double>(i))), i);
  }
  EXPECT_EQ(rec.size(), 3u);
  EXPECT_EQ(rec.total(), 5u);
  const std::vector<obs::RequestTrace> got = rec.snapshot();
  ASSERT_EQ(got.size(), 3u);
  // Oldest-first: entries 3, 4, 5 survive with contiguous sequence numbers.
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].seq, 3u + i);
    EXPECT_EQ(got[i].trace_id, 3u + i);
  }

  const JsonValue v = rec.to_json();
  EXPECT_EQ(v.at("schema").as_string(), obs::kFlightRecorderSchema);
  EXPECT_EQ(v.at("capacity").as_int(), 3);
  EXPECT_EQ(v.at("total").as_int(), 5);
  EXPECT_EQ(v.at("entries").as_array().size(), 3u);
}

TEST(FlightRecorder, EntryJsonOmitsAbsentOptionalFields) {
  obs::RequestTrace t = make_trace(0xabcu, 2.5);
  JsonValue v = t.to_json();
  EXPECT_EQ(v.at("trace_id").as_string(), "0000000000000abc");
  EXPECT_EQ(v.at("outcome").as_string(), "ok");
  EXPECT_EQ(v.find("trace_leader"), nullptr);  // no coalescing
  EXPECT_EQ(v.find("id"), nullptr);
  EXPECT_EQ(v.find("queue_ms"), nullptr);  // never queued
  EXPECT_EQ(v.find("phases"), nullptr);
  EXPECT_EQ(v.find("health"), nullptr);

  t.leader_trace_id = 0x42;
  t.id = "req-1";
  t.queue_ms = 0.25;
  t.phases = JsonValue::object();
  t.phases.set("name", JsonValue("server.request"));
  v = t.to_json();
  EXPECT_EQ(v.at("trace_leader").as_string(), "0000000000000042");
  EXPECT_EQ(v.at("id").as_string(), "req-1");
  EXPECT_DOUBLE_EQ(v.at("queue_ms").as_double(), 0.25);
  EXPECT_EQ(v.at("phases").at("name").as_string(), "server.request");
}

TEST(SlowRequestLog, KeepsTopKSlowestFirst) {
  obs::SlowRequestLog slow(3);
  for (std::uint64_t i = 1; i <= 6; ++i) {
    // Offer in an order that exercises both insert paths: 3, 1, 4, 1, 5, 9.
    static const double walls[] = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0};
    slow.offer(make_trace(i, walls[i - 1]));
  }
  const std::vector<obs::RequestTrace> got = slow.snapshot();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_DOUBLE_EQ(got[0].wall_ms, 9.0);
  EXPECT_DOUBLE_EQ(got[1].wall_ms, 5.0);
  EXPECT_DOUBLE_EQ(got[2].wall_ms, 4.0);
  EXPECT_EQ(slow.to_json().as_array().size(), 3u);
}

TEST(FlightRecorder, DumpDocumentNamesItsTrigger) {
  obs::FlightRecorder rec(4);
  obs::SlowRequestLog slow(2);
  obs::RequestTrace t = make_trace(7, 12.0);
  t.outcome = "evicted";
  rec.record(t);
  slow.offer(t);
  const JsonValue dump = obs::recorder_dump_json("watchdog_eviction", rec, slow);
  EXPECT_EQ(dump.at("schema").as_string(), obs::kFlightRecorderSchema);
  EXPECT_EQ(dump.at("trigger").as_string(), "watchdog_eviction");
  EXPECT_EQ(dump.at("recorder").at("entries").as_array().size(), 1u);
  ASSERT_EQ(dump.at("slow").as_array().size(), 1u);
  EXPECT_EQ(dump.at("slow").as_array()[0].at("outcome").as_string(), "evicted");
}

TEST(MetricsRegistry, DuplicateNameAcrossKindsThrows) {
  obs::MetricsRegistry m;
  m.add("x");
  EXPECT_THROW(m.set("x", 1.0), std::invalid_argument);
  EXPECT_THROW(m.record_time("x", 1.0), std::invalid_argument);
  EXPECT_THROW(m.observe("x", 1.0), std::invalid_argument);
  m.set("g", 1.0);
  EXPECT_THROW(m.add("g"), std::invalid_argument);
  EXPECT_THROW(m.add(""), std::invalid_argument);
}

TEST(MetricsRegistry, ToJsonShape) {
  obs::MetricsRegistry m;
  m.add("c", 3);
  m.set("g", 1.25);
  m.record_time("t", 2.0);
  m.define_histogram("h", {1.0});
  m.observe("h", 0.5);

  const JsonValue full = m.to_json();
  EXPECT_EQ(full.at("counters").at("c").as_int(), 3);
  EXPECT_DOUBLE_EQ(full.at("gauges").at("g").as_double(), 1.25);
  EXPECT_EQ(full.at("timers").at("t").at("count").as_int(), 1);
  EXPECT_EQ(full.at("histograms").at("h").at("count").as_int(), 1);

  // include_timers=false drops the nondeterministic section entirely.
  EXPECT_FALSE(m.to_json(false).contains("timers"));
}

// ---------------------------------------------------------------------------
// Trace sinks
// ---------------------------------------------------------------------------

obs::TraceEvent sample_event(int i) {
  obs::TraceEvent e("unit.sample");
  e.with("index", JsonValue(i)).with("value", JsonValue(0.5 * i)).with("tag", JsonValue("a,b"));
  return e;
}

TEST(TraceSinks, JsonLinesRoundTrip) {
  std::ostringstream out;
  obs::JsonLinesSink sink(out);
  sink.record(sample_event(1));
  sink.record(sample_event(2));

  std::istringstream lines(out.str());
  std::string line;
  int i = 1;
  while (std::getline(lines, line)) {
    const JsonValue v = obs::parse_json(line);
    EXPECT_EQ(v.at("event").as_string(), "unit.sample");
    EXPECT_EQ(v.at("index").as_int(), i);
    EXPECT_DOUBLE_EQ(v.at("value").as_double(), 0.5 * i);
    EXPECT_EQ(v.at("tag").as_string(), "a,b");
    ++i;
  }
  EXPECT_EQ(i, 3);
}

TEST(TraceSinks, CsvHeaderAndQuoting) {
  std::ostringstream out;
  obs::CsvSink sink(out);
  sink.record(sample_event(1));
  sink.record(sample_event(2));
  const std::string csv = out.str();
  EXPECT_EQ(csv.substr(0, csv.find('\n')), "event,index,value,tag");
  EXPECT_NE(csv.find("unit.sample,1,0.5,\"a,b\""), std::string::npos);

  obs::TraceEvent other("unit.other");
  other.with("different", JsonValue(1));
  EXPECT_THROW(sink.record(other), std::invalid_argument);  // shape mismatch
}

TEST(TraceSinks, VectorSinkAndReplay) {
  obs::VectorSink buffer;
  buffer.record(sample_event(7));
  ASSERT_EQ(buffer.events().size(), 1u);
  EXPECT_EQ(buffer.events()[0].find("index")->as_int(), 7);

  std::ostringstream out;
  obs::JsonLinesSink lines(out);
  obs::replay(buffer.events(), lines);
  EXPECT_EQ(obs::parse_json(out.str()).at("index").as_int(), 7);
}

// ---------------------------------------------------------------------------
// R-solver convergence trace
// ---------------------------------------------------------------------------

// A small stable M/M/1-type QBD: lambda = 1, mu = 2.
struct Mm1Blocks {
  linalg::Matrix a0{1, 1, 1.0}, a1{1, 1, -3.0}, a2{1, 1, 2.0};
};

TEST(RSolverTrace, LogReductionRecordsIterations) {
  const Mm1Blocks b;
  qbd::RSolverOptions opts;
  opts.record_trace = true;
  qbd::RSolverStats stats;
  const linalg::Matrix r = qbd::solve_r(b.a0, b.a1, b.a2, opts, &stats);
  EXPECT_NEAR(r(0, 0), 0.5, 1e-12);  // R = rho for M/M/1

  ASSERT_FALSE(stats.trace.empty());
  EXPECT_EQ(static_cast<int>(stats.trace.size()), stats.iterations);
  for (std::size_t i = 0; i < stats.trace.size(); ++i) {
    EXPECT_EQ(stats.trace[i].iteration, static_cast<int>(i) + 1);
    EXPECT_GE(stats.trace[i].wall_ms, 0.0);
    EXPECT_GE(stats.trace[i].residual, 0.0);
  }
  // Quadratic convergence: the increment norm must fall below tolerance.
  EXPECT_LT(stats.trace.back().increment_norm, opts.tolerance);
  EXPECT_LE(stats.final_residual, 10.0 * opts.tolerance);
}

TEST(RSolverTrace, FunctionalIterationRecordsMonotoneResiduals) {
  const Mm1Blocks b;
  qbd::RSolverOptions opts;
  opts.kind = qbd::RSolverKind::kFunctionalIteration;
  opts.record_trace = true;
  qbd::RSolverStats stats;
  qbd::solve_r(b.a0, b.a1, b.a2, opts, &stats);
  ASSERT_GT(stats.trace.size(), 4u);
  // Linear convergence from below: residuals decrease along the iteration.
  EXPECT_LT(stats.trace.back().residual, stats.trace.front().residual);
  EXPECT_LE(stats.final_residual, 10.0 * opts.tolerance);
}

TEST(RSolverTrace, DisabledByDefault) {
  const Mm1Blocks b;
  qbd::RSolverStats stats;
  qbd::solve_r(b.a0, b.a1, b.a2, {}, &stats);
  EXPECT_TRUE(stats.trace.empty());
  EXPECT_GT(stats.iterations, 0);
}

TEST(RSolverTrace, ExportToSink) {
  const Mm1Blocks b;
  qbd::RSolverOptions opts;
  opts.record_trace = true;
  qbd::RSolverStats stats;
  qbd::solve_r(b.a0, b.a1, b.a2, opts, &stats);

  obs::VectorSink sink;
  qbd::export_convergence_trace(stats, sink);
  ASSERT_EQ(sink.events().size(), stats.trace.size());
  const obs::TraceEvent& first = sink.events().front();
  EXPECT_EQ(first.name(), "qbd.rsolve.convergence");
  EXPECT_EQ(first.find("iteration")->as_int(), 1);
  ASSERT_NE(first.find("increment_norm"), nullptr);
  ASSERT_NE(first.find("residual"), nullptr);
  ASSERT_NE(first.find("wall_ms"), nullptr);
}

// ---------------------------------------------------------------------------
// RunReport
// ---------------------------------------------------------------------------

TEST(RunReport, JsonShapeAndSummary) {
  obs::RunReport report("unit_test");
  report.set_config("p", JsonValue(0.3));
  report.metrics().add("events", 5);
  report.trace("tr").record(sample_event(1));

  const JsonValue j = report.to_json();
  EXPECT_EQ(j.at("schema").as_string(), obs::kRunReportSchema);
  EXPECT_EQ(j.at("tool").as_string(), "unit_test");
  EXPECT_DOUBLE_EQ(j.at("config").at("p").as_double(), 0.3);
  EXPECT_EQ(j.at("counters").at("events").as_int(), 5);
  ASSERT_TRUE(j.at("traces").contains("tr"));
  EXPECT_EQ(j.at("traces").at("tr").as_array().size(), 1u);

  // trace() returns the same buffer for the same name.
  report.trace("tr").record(sample_event(2));
  EXPECT_EQ(report.to_json().at("traces").at("tr").as_array().size(), 2u);

  std::ostringstream summary;
  report.print_summary(summary);
  EXPECT_NE(summary.str().find("unit_test"), std::string::npos);
  EXPECT_NE(summary.str().find("events = 5"), std::string::npos);
}

}  // namespace
