// Property tests: qualitative laws the paper's evaluation rests on must hold
// across parameter sweeps (monotonicities, orderings between workloads, and
// the insensitivity results highlighted in its Sections 5.1-5.4).
#include <gtest/gtest.h>

#include <vector>

#include "core/model.hpp"
#include "traffic/processes.hpp"
#include "workloads/presets.hpp"

namespace perfbg::core {
namespace {

FgBgMetrics solve(const traffic::MarkovianArrivalProcess& proc, double util, double p,
                  double idle = 1.0, int buffer = 5) {
  FgBgParams params{proc.scaled_to_utilization(util, 6.0)};
  params.bg_probability = p;
  params.bg_buffer = buffer;
  params.idle_wait_intensity = idle;
  return FgBgModel(params).solve().metrics();
}

class WorkloadProperty
    : public ::testing::TestWithParam<traffic::MarkovianArrivalProcess> {};

TEST_P(WorkloadProperty, FgQueueIncreasesWithLoad) {
  const auto& proc = GetParam();
  double prev = -1.0;
  for (double u : {0.05, 0.10, 0.20, 0.35, 0.55, 0.75}) {
    const double q = solve(proc, u, 0.3).fg_queue_length;
    EXPECT_GT(q, prev) << u;
    prev = q;
  }
}

TEST_P(WorkloadProperty, BgCompletionDecreasesWithLoad) {
  const auto& proc = GetParam();
  double prev = 2.0;
  for (double u : {0.05, 0.10, 0.20, 0.35, 0.55, 0.75}) {
    const double c = solve(proc, u, 0.6).bg_completion;
    EXPECT_LT(c, prev + 1e-12) << u;
    prev = c;
  }
}

TEST_P(WorkloadProperty, BgCompletionDecreasesWithP) {
  const auto& proc = GetParam();
  double prev = 2.0;
  for (double p : {0.1, 0.3, 0.6, 0.9}) {
    const double c = solve(proc, 0.2, p).bg_completion;
    EXPECT_LT(c, prev + 1e-12) << p;
    prev = c;
  }
}

TEST_P(WorkloadProperty, BgQueueIncreasesWithP) {
  const auto& proc = GetParam();
  double prev = -1.0;
  for (double p : {0.1, 0.3, 0.6, 0.9}) {
    const double q = solve(proc, 0.2, p).bg_queue_length;
    EXPECT_GT(q, prev) << p;
    prev = q;
  }
}

TEST_P(WorkloadProperty, FgDelayIncreasesWithP) {
  const auto& proc = GetParam();
  double prev = -1.0;
  for (double p : {0.1, 0.3, 0.6, 0.9}) {
    const double d = solve(proc, 0.1, p).fg_delayed_arrivals;
    EXPECT_GT(d, prev) << p;
    prev = d;
  }
}

TEST_P(WorkloadProperty, LongerIdleWaitHelpsFgHurtsBg) {
  // Paper §5.3: idle wait trades foreground queueing against background
  // completion, monotonically in both directions.
  const auto& proc = GetParam();
  double prev_q = 1e18, prev_c = 2.0;
  for (double idle : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    const FgBgMetrics m = solve(proc, 0.2, 0.6, idle);
    EXPECT_LE(m.fg_queue_length, prev_q + 1e-12) << idle;
    EXPECT_LE(m.bg_completion, prev_c + 1e-12) << idle;
    prev_q = m.fg_queue_length;
    prev_c = m.bg_completion;
  }
}

TEST_P(WorkloadProperty, LargerBufferImprovesCompletion) {
  const auto& proc = GetParam();
  double prev = -1.0;
  for (int x : {1, 2, 5, 10, 25}) {
    const double c = solve(proc, 0.25, 0.6, 1.0, x).bg_completion;
    EXPECT_GT(c, prev) << x;
    prev = c;
  }
}

TEST_P(WorkloadProperty, FgQueueNearlyInsensitiveToP) {
  // Paper §5.1 headline: foreground load, not background load, determines
  // foreground performance. Within a modest band (<= 25% here, and the gap
  // shrinks with load).
  const auto& proc = GetParam();
  for (double u : {0.1, 0.3, 0.6}) {
    const double q0 = solve(proc, u, 0.0).fg_queue_length;
    const double q9 = solve(proc, u, 0.9).fg_queue_length;
    EXPECT_LT((q9 - q0) / q0, 0.25) << u;
    EXPECT_GE(q9, q0) << u;  // background work can only hurt
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, WorkloadProperty,
    ::testing::Values(workloads::email_poisson(), workloads::email_ipp(),
                      workloads::software_dev(), workloads::email()),
    [](const ::testing::TestParamInfo<traffic::MarkovianArrivalProcess>& info) {
      std::string n = info.param.name();
      for (char& c : n)
        if (c == '-') c = '_';
      return n;
    });

TEST(PaperOrderings, DependenceOrdersQueueLengthAtModerateLoad) {
  // Fig. 11: at a load where the bursty workload is past its knee, the
  // queue-length ordering is HighACF >> LowACF ~ Expo, with IPP close to
  // the renewal pair.
  const double u = 0.25, p = 0.3;
  const double high = solve(workloads::email(), u, p).fg_queue_length;
  const double low = solve(workloads::email_low_acf(), u, p).fg_queue_length;
  const double ipp = solve(workloads::email_ipp(), u, p).fg_queue_length;
  const double expo = solve(workloads::email_poisson(), u, p).fg_queue_length;
  EXPECT_GT(high, 50.0 * low);
  EXPECT_GT(high, 50.0 * ipp);
  EXPECT_LT(low / expo, 1.3);
  EXPECT_LT(ipp / expo, 5.0);
}

TEST(PaperOrderings, CorrelatedArrivalsKillCompletionEarlier) {
  // Fig. 12: at moderate load the correlated workload's completion has
  // collapsed while the independent ones still complete nearly everything.
  const double u = 0.25, p = 0.3;
  EXPECT_LT(solve(workloads::email(), u, p).bg_completion, 0.5);
  EXPECT_GT(solve(workloads::email_poisson(), u, p).bg_completion, 0.95);
  EXPECT_GT(solve(workloads::email_ipp(), u, p).bg_completion, 0.9);
}

TEST(PaperOrderings, HighAcfSaturatesBeforeLowAcf) {
  // Fig. 5: the High-ACF workload reaches a given queue length at a far
  // lower utilization than the Low-ACF one.
  const double target = solve(workloads::email(), 0.19, 0.3).fg_queue_length;
  EXPECT_GT(target, solve(workloads::software_dev(), 0.80, 0.3).fg_queue_length);
}

TEST(PaperOrderings, DelayedFractionIsSmallAndNonMonotone) {
  // Fig. 6: the delayed portion is bounded by a small constant and
  // collapses once the system saturates (most foreground jobs keep their
  // expected performance even at p = 0.9).
  double peak = 0.0;
  double at_saturation = 0.0;
  for (double u : {0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 0.7}) {
    const double d = solve(workloads::email(), u, 0.9).fg_delayed;
    peak = std::max(peak, d);
    at_saturation = d;
  }
  EXPECT_LT(peak, 0.25);
  EXPECT_LT(at_saturation, 0.25 * peak);
}

TEST(PaperOrderings, IppMatchesPoissonShapeNotMagnitude) {
  // §5.4: variability alone (IPP vs Expo, same mean) does not produce the
  // dependence-driven explosion: the ratio stays within one order of
  // magnitude while HighACF is off by orders of magnitude.
  for (double u : {0.1, 0.3, 0.6}) {
    const double ipp = solve(workloads::email_ipp(), u, 0.3).fg_queue_length;
    const double expo = solve(workloads::email_poisson(), u, 0.3).fg_queue_length;
    EXPECT_LT(ipp / expo, 10.0) << u;
  }
}

TEST(PaperOrderings, BgQueueSaturatesTowardBuffer) {
  // Fig. 8: the background queue approaches (but never exceeds) the buffer
  // size as load grows.
  const double q_low = solve(workloads::software_dev(), 0.1, 0.9).bg_queue_length;
  const double q_high = solve(workloads::software_dev(), 0.9, 0.9).bg_queue_length;
  EXPECT_LT(q_low, 1.0);
  EXPECT_GT(q_high, 4.0);
  EXPECT_LE(q_high, 5.0);
}

TEST(PaperOrderings, LrdHoldsSmallerBgQueueThanSrdWhenSaturated) {
  // Fig. 8 commentary: the long-range-dependent workload keeps a smaller
  // background queue because it drops more jobs. The comparison point must
  // have meaningful background pressure on both workloads (high p, moderate
  // load): there the drop-rate gap dominates.
  const FgBgMetrics lrd = solve(workloads::email(), 0.35, 0.9);
  const FgBgMetrics srd = solve(workloads::software_dev(), 0.35, 0.9);
  EXPECT_LT(lrd.bg_queue_length, srd.bg_queue_length);
  EXPECT_LT(lrd.bg_completion, srd.bg_completion);  // ...because it drops more
}

}  // namespace
}  // namespace perfbg::core
