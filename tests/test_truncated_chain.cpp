#include "core/truncated_chain.hpp"

#include <gtest/gtest.h>

#include "core/model.hpp"
#include "markov/stationary.hpp"
#include "traffic/processes.hpp"
#include "workloads/presets.hpp"

namespace perfbg::core {
namespace {

FgBgParams base_params(double util = 0.3, double p = 0.4, int buffer = 2) {
  FgBgParams params{traffic::poisson(util / 6.0)};
  params.bg_probability = p;
  params.bg_buffer = buffer;
  return params;
}

TEST(TruncatedChain, GeneratorIsAGenerator) {
  const TruncatedFgBgChain chain(base_params(), 20);
  EXPECT_TRUE(markov::is_generator(chain.generator(), 1e-8));
}

TEST(TruncatedChain, EmptyStateIsADistributionOnTheIdleState) {
  const TruncatedFgBgChain chain(base_params(), 10);
  const linalg::Vector pi = chain.empty_state();
  EXPECT_NEAR(linalg::sum(pi), 1.0, 1e-12);
  EXPECT_NEAR(chain.mean_fg_jobs(pi), 0.0, 1e-15);
  EXPECT_NEAR(chain.mean_bg_jobs(pi), 0.0, 1e-15);
  EXPECT_NEAR(chain.bg_busy_probability(pi), 0.0, 1e-15);
}

TEST(TruncatedChain, StationaryMatchesQbdMetrics) {
  const FgBgParams params = base_params(0.35, 0.6, 2);
  const TruncatedFgBgChain chain(params, 80);
  const linalg::Vector pi = chain.stationary();
  const FgBgMetrics m = FgBgModel(params).solve().metrics();
  EXPECT_NEAR(chain.mean_fg_jobs(pi), m.fg_queue_length, 1e-6);
  EXPECT_NEAR(chain.mean_bg_jobs(pi), m.bg_queue_length, 1e-6);
  EXPECT_NEAR(chain.bg_busy_probability(pi), m.bg_busy_fraction, 1e-7);
  EXPECT_NEAR(chain.bg_completion_rate(pi), m.bg_throughput, 1e-8);
  EXPECT_NEAR(chain.bg_drop_rate(pi), m.bg_drop_rate, 1e-8);
  EXPECT_LT(chain.top_level_mass(pi), 1e-8);
}

TEST(TruncatedChain, TransientConvergesToStationary) {
  const FgBgParams params = base_params(0.3, 0.4, 2);
  const TruncatedFgBgChain chain(params, 40);
  const linalg::Vector limit = chain.transient(chain.empty_state(), 5e5);
  const linalg::Vector pi = chain.stationary();
  EXPECT_NEAR(chain.mean_fg_jobs(limit), chain.mean_fg_jobs(pi), 1e-6);
  EXPECT_NEAR(chain.bg_busy_probability(limit), chain.bg_busy_probability(pi), 1e-8);
}

TEST(TruncatedChain, TransientSweepRampsUpMonotonically) {
  const TruncatedFgBgChain chain(base_params(0.4, 0.5, 3), 40);
  const auto points = chain.transient_sweep(chain.empty_state(), 2000.0, 40);
  ASSERT_EQ(points.size(), 41u);
  // From empty, the expected queue ramps up (no overshoot for this system).
  for (std::size_t i = 1; i < points.size(); ++i) {
    EXPECT_GE(points[i].mean_fg, points[i - 1].mean_fg - 1e-9) << i;
    EXPECT_GE(points[i].bg_completed_so_far, points[i - 1].bg_completed_so_far) << i;
    EXPECT_GE(points[i].bg_dropped_so_far, points[i - 1].bg_dropped_so_far) << i;
  }
  EXPECT_DOUBLE_EQ(points.front().time, 0.0);
  EXPECT_NEAR(points.back().time, 2000.0, 1e-9);
}

TEST(TruncatedChain, LongRunCompletionCountMatchesSteadyRate) {
  const FgBgParams params = base_params(0.4, 0.5, 3);
  const TruncatedFgBgChain chain(params, 40);
  const double horizon = 2e5;
  const auto points = chain.transient_sweep(chain.empty_state(), horizon, 50);
  const double steady_rate = FgBgModel(params).solve().metrics().bg_throughput;
  // Completed work over a long horizon approaches steady rate x time.
  EXPECT_NEAR(points.back().bg_completed_so_far, steady_rate * horizon,
              0.02 * steady_rate * horizon);
}

TEST(TruncatedChain, DescribeExposesLevels) {
  const TruncatedFgBgChain chain(base_params(0.3, 0.4, 2), 5);
  // The first flat state belongs to the (0,0) idle macro state.
  EXPECT_EQ(chain.describe(0).kind, Activity::kIdle);
  // The last flat state is in the top repeating level.
  const StateDesc last = chain.describe(chain.state_count() - 1);
  EXPECT_EQ(last.x + last.y, chain.layout().first_repeating_level() + 4);
}

TEST(TruncatedChain, WorksWithMmppAndPhService) {
  FgBgParams params{workloads::software_dev().scaled_to_utilization(0.25, 6.0)};
  params.service_distribution = traffic::PhaseType::erlang(2, 6.0);
  params.bg_probability = 0.5;
  params.bg_buffer = 2;
  const TruncatedFgBgChain chain(params, 60);
  const linalg::Vector pi = chain.stationary();
  const FgBgMetrics m = FgBgModel(params).solve().metrics();
  EXPECT_NEAR(chain.mean_fg_jobs(pi), m.fg_queue_length, 1e-5);
  EXPECT_NEAR(chain.bg_completion_rate(pi), m.bg_throughput, 1e-8);
}

TEST(TruncatedChain, BadInputsThrow) {
  EXPECT_THROW(TruncatedFgBgChain(base_params(), 0), std::invalid_argument);
  const TruncatedFgBgChain chain(base_params(), 5);
  EXPECT_THROW(chain.mean_fg_jobs(linalg::Vector(3, 0.0)), std::invalid_argument);
  EXPECT_THROW(chain.describe(chain.state_count()), std::invalid_argument);
  EXPECT_THROW(chain.transient_sweep(chain.empty_state(), -1.0, 5), std::invalid_argument);
}

}  // namespace
}  // namespace perfbg::core
