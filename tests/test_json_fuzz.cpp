// Adversarial-input hardening tests for the obs/json recursive-descent parser
// (the perfbgd wire format). Every hostile input must produce a typed
// std::invalid_argument with a byte offset — never a crash, a stack overflow,
// an unbounded allocation, or a silent partial parse. Complements the
// round-trip coverage in test_report.
#include <gtest/gtest.h>

#include <limits>
#include <random>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace perfbg::obs {
namespace {

/// Parse under the daemon's wire-format bounds (1 MiB, 64 levels).
JsonValue parse_network(const std::string& text) {
  return parse_json(text, JsonLimits::network());
}

std::string nested_arrays(int depth) {
  return std::string(depth, '[') + std::string(depth, ']');
}

std::string nested_objects(int depth) {
  std::string doc;
  for (int i = 0; i < depth; ++i) doc += "{\"k\":";
  doc += "null";
  for (int i = 0; i < depth; ++i) doc += '}';
  return doc;
}

// ---------------------------------------------------------------------------

TEST(JsonFuzz, NestingIsBoundedAtTheConfiguredDepth) {
  // Exactly at the bound parses; one past it is a typed error, not a deeper
  // recursion (the whole point: "[[[[..." must never reach the guard page).
  EXPECT_NO_THROW(parse_network(nested_arrays(64)));
  EXPECT_THROW(parse_network(nested_arrays(65)), std::invalid_argument);
  EXPECT_NO_THROW(parse_network(nested_objects(64)));
  EXPECT_THROW(parse_network(nested_objects(65)), std::invalid_argument);

  // Default (trusted-file) limits still bound the stack, just higher.
  EXPECT_NO_THROW(parse_json(nested_arrays(128)));
  EXPECT_THROW(parse_json(nested_arrays(129)), std::invalid_argument);

  // Pathological depth: tens of thousands of brackets stay a cheap error.
  EXPECT_THROW(parse_network(nested_arrays(50000)), std::invalid_argument);
  EXPECT_THROW(parse_network(std::string(50000, '[')), std::invalid_argument);
}

TEST(JsonFuzz, OversizedDocumentsAreRejectedBeforeParsing) {
  const std::size_t limit = JsonLimits::network().max_bytes;
  // A valid JSON string just under the byte bound parses...
  const std::string small = '"' + std::string(limit - 16, 'a') + '"';
  EXPECT_NO_THROW(parse_network(small));
  // ...one byte over it does not, even though the content is valid JSON.
  const std::string big = '"' + std::string(limit - 1, 'a') + '"';
  ASSERT_GT(big.size(), limit);
  EXPECT_THROW(parse_network(big), std::invalid_argument);
  // The default trusted-file limits impose no byte bound.
  EXPECT_NO_THROW(parse_json(big));
}

TEST(JsonFuzz, UnterminatedStringsAndEscapes) {
  const char* cases[] = {
      "\"abc",              // string never closed
      "{\"a\": \"b",        // inside an object value
      "[\"a\", \"b",        // inside an array
      "\"trailing\\",       // escape at end of input
      "\"\\u12",            // truncated \u escape
      "\"\\uZZZZ\"",        // non-hex \u digits
      "\"\\x41\"",          // unknown escape
      "{\"a",               // key never closed
  };
  for (const char* doc : cases)
    EXPECT_THROW(parse_network(doc), std::invalid_argument) << doc;
}

TEST(JsonFuzz, NanAndInfinityLiteralsAreNamedErrors) {
  const char* cases[] = {
      "NaN", "Infinity", "-Infinity", "[NaN]", "{\"util\": NaN}",
      "{\"util\": Infinity}", "{\"util\": -Infinity}", "nan", "inf",
  };
  for (const char* doc : cases)
    EXPECT_THROW(parse_network(doc), std::invalid_argument) << doc;

  // The writer side stays closed under this rule: non-finite doubles are
  // serialized as null, so no emitted document can trip the reader.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(JsonValue(nan).dump(), "null");
  EXPECT_EQ(JsonValue(inf).dump(), "null");
  EXPECT_EQ(JsonValue(-inf).dump(), "null");
}

TEST(JsonFuzz, StructuralGarbageIsATypedError) {
  const char* cases[] = {
      "",                    // empty frame
      "   ",                 // whitespace only
      "{",  "}",  "[",  "]", // lone brackets
      "{,}",                 // object without a key
      "{\"a\" 1}",           // missing colon
      "{\"a\": 1,}",         // trailing comma (strict JSON)
      "[1,]",                // trailing comma in array
      "[1 2]",               // missing comma
      "{\"a\": }",           // missing value
      "tru", "falsee x", "nul",   // broken literals
      "{} {}", "1 2", "[] x",     // trailing characters
      "'single'",            // wrong quote character
      "-",                   // sign without digits
      "\x01\x02\x03",        // binary noise
      "9223372036854775808", // past INT64_MAX: overflow is an error, not UB
      "1e999",               // double overflow
  };
  for (const char* doc : cases)
    EXPECT_THROW(parse_network(doc), std::invalid_argument) << doc;
}

TEST(JsonFuzz, ErrorsCarryAByteOffset) {
  try {
    parse_network("{\"a\": \x01}");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("at byte"), std::string::npos) << e.what();
  }
}

TEST(JsonFuzz, EveryTornPrefixOfARequestFrameIsRejected) {
  // A torn frame — a request cut off mid-write at any byte — must never parse
  // as a smaller valid request. Object documents guarantee this: nothing
  // short of the final '}' closes them.
  const std::string frame =
      "{\"id\": \"planner-7/42\", \"kind\": \"solve\", \"util\": 0.15, "
      "\"utils\": [0.1, 0.2], \"note\": \"q\\\"e\\u0041\"}";
  ASSERT_NO_THROW(parse_network(frame));
  for (std::size_t cut = 0; cut < frame.size(); ++cut)
    EXPECT_THROW(parse_network(frame.substr(0, cut)), std::invalid_argument)
        << "prefix of length " << cut;
}

TEST(JsonFuzz, RandomByteMutationsNeverCrashAndSurvivorsRoundTrip) {
  const std::string seed_doc =
      "{\"id\": \"x\", \"kind\": \"sweep\", \"workload\": \"email\", "
      "\"util\": 0.15, \"p\": 0.3, \"buffer\": 5, \"utils\": [0.1, 0.2, 0.3], "
      "\"meta\": {\"tags\": [\"a\", \"b\"], \"depth\": [[1], [2, [3]]]}}";
  std::mt19937 rng(0xC0FFEE);  // deterministic corpus
  std::uniform_int_distribution<std::size_t> pos(0, seed_doc.size() - 1);
  std::uniform_int_distribution<int> byte(0, 255);

  int survivors = 0;
  for (int iter = 0; iter < 5000; ++iter) {
    std::string doc = seed_doc;
    const int mutations = 1 + (iter % 4);
    for (int m = 0; m < mutations; ++m)
      doc[pos(rng)] = static_cast<char>(byte(rng));
    try {
      const JsonValue v = parse_network(doc);
      // A mutation that still parses must serialize to a fixpoint: dumping
      // and reparsing yields the identical document.
      const std::string once = v.dump();
      EXPECT_EQ(parse_network(once).dump(), once);
      ++survivors;
    } catch (const std::invalid_argument&) {
      // Typed rejection is the expected outcome for most mutations.
    }
  }
  // Sanity: the corpus exercised both paths.
  EXPECT_GT(survivors, 0);
  EXPECT_LT(survivors, 5000);
}

TEST(JsonFuzz, RandomTruncationsOfNestedDocuments) {
  // Truncation fuzz over a deeply structured document: every cut point either
  // parses (top-level scalars can be legal prefixes of nothing here — the doc
  // is an object, so none are) or throws the typed error.
  std::string doc = "{\"levels\": ";
  doc += nested_arrays(60);
  doc += ", \"s\": \"" + std::string(512, 'x') + "\"}";
  ASSERT_NO_THROW(parse_network(doc));

  std::mt19937 rng(1234);
  std::uniform_int_distribution<std::size_t> cut(0, doc.size() - 1);
  for (int iter = 0; iter < 2000; ++iter)
    EXPECT_THROW(parse_network(doc.substr(0, cut(rng))), std::invalid_argument);
}

TEST(JsonFuzz, DeepStringsAndKeysDoNotAmplify) {
  // Long flat payloads (no nesting) are fine at any size under the bound:
  // the limits guard depth and total bytes, not legitimate breadth.
  std::string wide = "{";
  for (int i = 0; i < 2000; ++i) {
    if (i) wide += ',';
    wide += "\"k" + std::to_string(i) + "\": " + std::to_string(i);
  }
  wide += '}';
  const JsonValue v = parse_network(wide);
  EXPECT_EQ(v.as_object().size(), 2000u);
  EXPECT_EQ(v.at("k1999").as_int(), 1999);
}

}  // namespace
}  // namespace perfbg::obs
