// Tests for the chaos engine (src/chaos) and the failure seams it drives:
// deterministic fault schedules and their replay contract, spec parsing,
// allocation-failure injection at the cache/flight/recorder/journal seams,
// journal rotation and torn-tail crash recovery, clock-skew injection, the
// decorrelated-jitter backoff, and the soak driver's invariant checker.
#include <gtest/gtest.h>
#include <stdlib.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "chaos/backoff.hpp"
#include "chaos/fault_plan.hpp"
#include "chaos/invariants.hpp"
#include "chaos/scripted_faults.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "runner/journal.hpp"
#include "server/cache.hpp"
#include "util/cancellation.hpp"
#include "util/failpoint.hpp"

namespace {

using perfbg::chaos::DecorrelatedJitter;
using perfbg::chaos::FaultPlan;
using perfbg::chaos::FaultSpec;
using perfbg::chaos::FiredFault;
using perfbg::chaos::InvariantChecker;
using perfbg::chaos::PlannedIoFaults;
using perfbg::chaos::ScopedFaultPlan;
using perfbg::chaos::derive_seed;
using perfbg::chaos::splitmix64_next;
using perfbg::obs::JsonValue;

std::string make_temp_dir() {
  std::string tmpl =
      (std::filesystem::temp_directory_path() / "perfbg_chaos_XXXXXX").string();
  char* dir = ::mkdtemp(tmpl.data());
  EXPECT_NE(dir, nullptr);
  return dir != nullptr ? std::string(dir) : std::string();
}

// ---------------------------------------------------------------------------
// splitmix64 / seed derivation

TEST(ChaosSplitmix, MatchesReferenceVector) {
  // Vigna's reference outputs for state 0 — pins the generator so fault
  // schedules recorded by one build replay on every other build.
  std::uint64_t state = 0;
  EXPECT_EQ(splitmix64_next(state), 0xe220a8397b1dcdafull);
  EXPECT_EQ(splitmix64_next(state), 0x6e789e6aa1b965f4ull);
  EXPECT_EQ(splitmix64_next(state), 0x06c45d188009454full);
}

TEST(ChaosSplitmix, DeriveSeedIsPureAndStreamSeparated) {
  EXPECT_EQ(derive_seed(42, 0), derive_seed(42, 0));
  EXPECT_NE(derive_seed(42, 0), derive_seed(42, 1));
  EXPECT_NE(derive_seed(42, 0), derive_seed(43, 0));
}

// ---------------------------------------------------------------------------
// FaultPlan: spec parsing, determinism, gating

TEST(ChaosFaultPlan, ParseSpecs) {
  EXPECT_TRUE(FaultPlan::parse_specs("").empty());

  const std::vector<FaultSpec> specs =
      FaultPlan::parse_specs("server.cache.insert:0.5,io.write.delay_ms:0.1:250:100");
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].seam, "server.cache.insert");
  EXPECT_DOUBLE_EQ(specs[0].rate, 0.5);
  EXPECT_EQ(specs[0].value, 1);
  EXPECT_EQ(specs[0].after, 0u);
  EXPECT_EQ(specs[1].seam, "io.write.delay_ms");
  EXPECT_DOUBLE_EQ(specs[1].rate, 0.1);
  EXPECT_EQ(specs[1].value, 250);
  EXPECT_EQ(specs[1].after, 100u);

  EXPECT_THROW(FaultPlan::parse_specs("seamwithoutrate"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse_specs("seam:1.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse_specs("seam:-0.1"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse_specs("seam:abc"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse_specs(":0.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::parse_specs("a:0.1:1:2:3"), std::invalid_argument);
}

TEST(ChaosFaultPlan, SameSeedReplaysByteExactly) {
  const auto specs = FaultPlan::parse_specs("test.seam:0.25");
  FaultPlan a(7, specs);
  FaultPlan b(7, specs);
  std::vector<std::int64_t> fired_a, fired_b;
  for (int i = 0; i < 1000; ++i) fired_a.push_back(a.evaluate("test.seam"));
  for (int i = 0; i < 1000; ++i) fired_b.push_back(b.evaluate("test.seam"));
  EXPECT_EQ(fired_a, fired_b);
  EXPECT_EQ(a.fired_count(), b.fired_count());
  EXPECT_GT(a.fired_count(), 0u);
  EXPECT_LT(a.fired_count(), 1000u);

  // The fired logs match fault-for-fault: same crossings, same ordinals.
  const std::vector<FiredFault> log_a = a.fired_log();
  const std::vector<FiredFault> log_b = b.fired_log();
  ASSERT_EQ(log_a.size(), log_b.size());
  for (std::size_t i = 0; i < log_a.size(); ++i) {
    EXPECT_EQ(log_a[i].seam, "test.seam");
    EXPECT_EQ(log_a[i].call_index, log_b[i].call_index);
    EXPECT_EQ(log_a[i].schedule_index, i + 1);
  }

  // A different seed builds a different schedule.
  FaultPlan c(8, specs);
  std::vector<std::int64_t> fired_c;
  for (int i = 0; i < 1000; ++i) fired_c.push_back(c.evaluate("test.seam"));
  EXPECT_NE(fired_a, fired_c);
}

TEST(ChaosFaultPlan, AfterGateAndValue) {
  FaultPlan plan(1, FaultPlan::parse_specs("seam:1:7:10"));
  for (int i = 0; i < 10; ++i)
    EXPECT_EQ(plan.evaluate("seam"), 0) << "crossing " << i << " is gated";
  EXPECT_EQ(plan.evaluate("seam"), 7);
  EXPECT_EQ(plan.crossings("seam"), 11u);
}

TEST(ChaosFaultPlan, UnregisteredSeamsAndBareFailpointsNeverFire) {
  // No hook installed: the production fast path is one relaxed load -> 0.
  EXPECT_EQ(perfbg::failpoint("server.cache.insert"), 0);

  FaultPlan plan(1, FaultPlan::parse_specs("only.this:1"));
  ScopedFaultPlan installed(plan);
  EXPECT_EQ(perfbg::failpoint("some.other.seam"), 0);
  EXPECT_EQ(perfbg::failpoint("only.this"), 1);
  EXPECT_EQ(plan.crossings("some.other.seam"), 0u);
}

TEST(ChaosFaultPlan, LogJsonNamesSeedAndFaults) {
  FaultPlan plan(3, FaultPlan::parse_specs("s:1:5"));
  plan.evaluate("s");
  const JsonValue v = plan.log_json();
  ASSERT_NE(v.find("seed"), nullptr);
  EXPECT_EQ(v.find("fired")->as_int(), 1);
  ASSERT_NE(v.find("faults"), nullptr);
}

// ---------------------------------------------------------------------------
// Allocation-failure seams: cache insert, flight completion, recorder append

TEST(ChaosAllocFault, CacheInsertFailureDropsEntryWhole) {
  perfbg::obs::MetricsRegistry metrics;
  perfbg::server::SolutionCache cache(8, &metrics);
  const std::string key = "model|u=0.5";
  const std::uint64_t hash = perfbg::runner::fnv1a64(key);

  {
    FaultPlan plan(1, FaultPlan::parse_specs("server.cache.insert:1"));
    ScopedFaultPlan installed(plan);
    perfbg::server::Lookup lookup = cache.lookup(hash, key);
    ASSERT_EQ(lookup.outcome, perfbg::server::Lookup::Outcome::kLeader);
    lookup.flight->complete(perfbg::obs::parse_json("{\"a\":1}"), JsonValue(),
                            "", "", 1.0);
    cache.finish(hash, lookup.flight, /*cache_result=*/true);
    EXPECT_EQ(cache.size(), 0u) << "failed insert must not leave a torn slot";
    EXPECT_EQ(metrics.counter("server.cache.insert_failed"), 1u);
    EXPECT_EQ(cache.inflight_count(), 0u) << "the flight still retires";
  }

  // Hook gone: the same key re-solves and caches normally.
  perfbg::server::Lookup retry = cache.lookup(hash, key);
  ASSERT_EQ(retry.outcome, perfbg::server::Lookup::Outcome::kLeader);
  retry.flight->complete(perfbg::obs::parse_json("{\"a\":1}"), JsonValue(), "",
                         "", 1.0);
  cache.finish(hash, retry.flight, true);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.lookup(hash, key).outcome,
            perfbg::server::Lookup::Outcome::kHit);
}

TEST(ChaosAllocFault, FlightCompletionFailureIsTypedNeverAHang) {
  FaultPlan plan(1, FaultPlan::parse_specs("server.flight.complete:1"));
  ScopedFaultPlan installed(plan);
  perfbg::server::Flight flight("k");
  EXPECT_TRUE(flight.complete(perfbg::obs::parse_json("{\"a\":1}"), JsonValue(),
                              "", "", 1.0));
  // Waiters wake immediately with a typed error, not a torn success.
  EXPECT_TRUE(flight.done());
  EXPECT_FALSE(flight.ok());
  EXPECT_EQ(flight.error_code(), "kUnclassified");
  EXPECT_TRUE(flight.result().is_null());
}

TEST(ChaosAllocFault, RecorderAppendDropsRecordWhole) {
  perfbg::obs::FlightRecorder recorder(4);
  perfbg::obs::RequestTrace trace;
  trace.trace_id = 1;
  trace.outcome = "ok";
  EXPECT_NE(recorder.record(trace), 0u);
  EXPECT_EQ(recorder.size(), 1u);

  {
    FaultPlan plan(1, FaultPlan::parse_specs("obs.recorder.append:1"));
    ScopedFaultPlan installed(plan);
    EXPECT_EQ(recorder.record(trace), 0u) << "0 = dropped whole";
    EXPECT_EQ(recorder.size(), 1u) << "no torn ring entry";
    EXPECT_EQ(recorder.dropped(), 1u);
  }
  EXPECT_NE(recorder.record(trace), 0u);
  EXPECT_EQ(recorder.size(), 2u);
}

// ---------------------------------------------------------------------------
// Journal hardening: injected append failure, rotation, torn-tail recovery

perfbg::runner::JournalRecord make_record(const std::string& key, double x) {
  perfbg::runner::JournalRecord record;
  record.key = key;
  record.payload = JsonValue(x);
  record.wall_ms = 1.0;
  return record;
}

TEST(ChaosJournal, InjectedAppendFailureThrowsAndRecovers) {
  const std::string dir = make_temp_dir();
  const std::string path = dir + "/j.jsonl";
  perfbg::runner::JournalWriter writer(path, "t");
  writer.append(make_record("k0", 0.0));
  {
    FaultPlan plan(1, FaultPlan::parse_specs("runner.journal.append:1"));
    ScopedFaultPlan installed(plan);
    EXPECT_THROW(writer.append(make_record("k1", 1.0)), std::runtime_error);
  }
  writer.append(make_record("k2", 2.0));

  const auto index = perfbg::runner::JournalIndex::load(path, "t");
  EXPECT_NE(index.find("k0"), nullptr);
  EXPECT_EQ(index.find("k1"), nullptr) << "the failed append left no line";
  EXPECT_NE(index.find("k2"), nullptr);
}

TEST(ChaosJournal, RotationKeepsServingAndMergedLoadSeesBothFiles) {
  const std::string dir = make_temp_dir();
  const std::string path = dir + "/j.jsonl";
  perfbg::runner::JournalWriter writer(path, "t", /*max_bytes=*/400);
  const int n = 12;
  for (int i = 0; i < n; ++i)
    writer.append(make_record("k" + std::to_string(i), i));
  EXPECT_GE(writer.rotations(), 1u);
  EXPECT_TRUE(std::filesystem::exists(path + ".1"));

  // The merged view spans the current file and the newest rotated window;
  // the latest records are always present.
  const auto index = perfbg::runner::JournalIndex::load_with_rotation(path, "t");
  EXPECT_NE(index.find("k" + std::to_string(n - 1)), nullptr);
  EXPECT_GE(index.size(), 2u);
  // Both files independently carry a valid schema header.
  EXPECT_NO_THROW(perfbg::runner::JournalIndex::load(path, "t"));
  EXPECT_NO_THROW(perfbg::runner::JournalIndex::load(path + ".1", "t"));
}

TEST(ChaosJournal, TornTailIsTruncatedOnReopen) {
  const std::string dir = make_temp_dir();
  const std::string path = dir + "/j.jsonl";
  {
    perfbg::runner::JournalWriter writer(path, "t");
    writer.append(make_record("k0", 0.0));
    writer.append(make_record("k1", 1.0));
  }
  // A SIGKILL mid-append leaves a partial final line with no newline.
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char torn[] = "{\"key\": \"torn-rec";
    std::fwrite(torn, 1, sizeof(torn) - 1, f);
    std::fclose(f);
  }
  const auto before = std::filesystem::file_size(path);
  {
    // Reopening for append truncates the torn tail, so the next record is a
    // clean line instead of being glued onto the fragment.
    perfbg::runner::JournalWriter writer(path, "t");
    writer.append(make_record("k2", 2.0));
  }
  EXPECT_LT(std::filesystem::file_size(path), before + 200)
      << "torn bytes were dropped, not kept";
  const auto index = perfbg::runner::JournalIndex::load(path, "t");
  EXPECT_EQ(index.size(), 3u);
  EXPECT_NE(index.find("k0"), nullptr);
  EXPECT_NE(index.find("k1"), nullptr);
  EXPECT_NE(index.find("k2"), nullptr);
}

// ---------------------------------------------------------------------------
// Clock-skew injection

TEST(ChaosClock, SkewJumpsChaosNowAndFiresDeadlines) {
  perfbg::reset_clock_skew();
  const auto before = perfbg::chaos_now();
  perfbg::add_clock_skew_ms(5000.0);
  const auto after = perfbg::chaos_now();
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(after - before)
                .count(),
            5000);

  // A token with a one-minute budget fires the moment the clock jumps past
  // it — the watchdog-vs-clock-jump behaviour the chaos seam exists to test.
  perfbg::CancellationToken token;
  token.set_deadline_after_ms(60000.0);
  EXPECT_EQ(token.state(), perfbg::CancelReason::kNone);
  perfbg::add_clock_skew_ms(120000.0);
  EXPECT_EQ(token.state(), perfbg::CancelReason::kDeadline);

  perfbg::reset_clock_skew();
  EXPECT_EQ(perfbg::clock_skew_ns(), 0);
}

// ---------------------------------------------------------------------------
// Planned IO faults

TEST(ChaosIoFaults, PlannedSeamsDriveTheInjectorDeterministically) {
  {
    FaultPlan plan(1, FaultPlan::parse_specs("io.read.eof:1"));
    PlannedIoFaults faults(plan);
    std::size_t len = 100;
    ssize_t result = -42;
    int err = 0;
    EXPECT_TRUE(faults.on_read(0, len, result, err));
    EXPECT_EQ(result, 0) << "EOF injection";
  }
  {
    FaultPlan plan(1, FaultPlan::parse_specs("io.read.short:1:16"));
    PlannedIoFaults faults(plan);
    std::size_t len = 100;
    ssize_t result = 0;
    int err = 0;
    EXPECT_FALSE(faults.on_read(0, len, result, err)) << "real recv, capped";
    EXPECT_EQ(len, 16u);
  }
  // Same seed -> the same write-reset schedule, drawn through the injector.
  const auto specs = FaultPlan::parse_specs("io.write.reset:0.5");
  FaultPlan plan_a(9, specs), plan_b(9, specs);
  PlannedIoFaults faults_a(plan_a), faults_b(plan_b);
  for (int i = 0; i < 200; ++i) {
    std::size_t len = 10;
    ssize_t ra = 0, rb = 0;
    int ea = 0, eb = 0;
    EXPECT_EQ(faults_a.on_write(0, len, ra, ea), faults_b.on_write(0, len, rb, eb))
        << "write " << i;
  }
  EXPECT_GT(plan_a.fired_count(), 0u);
  EXPECT_EQ(plan_a.fired_count(), plan_b.fired_count());
}

// ---------------------------------------------------------------------------
// Backoff

TEST(ChaosBackoff, JitterIsBoundedAndSeedDeterministic) {
  DecorrelatedJitter a(10.0, 500.0, 42);
  DecorrelatedJitter b(10.0, 500.0, 42);
  DecorrelatedJitter c(10.0, 500.0, 43);
  bool any_diff_from_c = false;
  for (int i = 0; i < 100; ++i) {
    const double ms = a.next_ms();
    EXPECT_GE(ms, 10.0);
    EXPECT_LE(ms, 500.0);
    EXPECT_DOUBLE_EQ(ms, b.next_ms()) << "draw " << i;
    if (ms != c.next_ms()) any_diff_from_c = true;
  }
  EXPECT_TRUE(any_diff_from_c);
  EXPECT_EQ(a.draws(), 100u);
  // reset() cools the sequence back toward base without rewinding the PRNG.
  a.reset();
  EXPECT_LE(a.next_ms(), 3.0 * 10.0);
}

// ---------------------------------------------------------------------------
// InvariantChecker

TEST(ChaosInvariants, CleanRunHasNoViolations) {
  const std::string dir = make_temp_dir();
  const std::string path = dir + "/j.jsonl";
  const std::string payload = "{\"x\":1}";

  InvariantChecker checker;
  checker.on_response("k1", "aa", payload, true, false, false);  // leader ack
  checker.on_response("k1", "bb", payload, true, true, false);   // cache hit
  checker.on_response("k1", "cc", payload, true, false, true);   // coalesced
  checker.on_response("k2", "dd", "", false, false, false);      // typed error

  {
    perfbg::runner::JournalWriter writer(path, "t");
    perfbg::runner::JournalRecord record;
    record.key = "k1";
    record.payload = perfbg::obs::parse_json(payload);
    writer.append(record);
  }
  checker.check_journal(perfbg::runner::JournalIndex::load(path, "t"));
  checker.check_warm_start("k1", payload, /*cached=*/true);
  checker.check_counters(0, 10, 6, 4);
  EXPECT_EQ(checker.violation_count(), 0u);
  EXPECT_GT(checker.checks(), 0u);
}

TEST(ChaosInvariants, DetectsEveryContractBreak) {
  const std::string dir = make_temp_dir();
  const std::string path = dir + "/j.jsonl";
  { perfbg::runner::JournalWriter writer(path, "t"); }  // header only

  InvariantChecker checker;
  checker.on_response("k1", "aa", "{\"x\":1}", true, false, false);
  // divergent_payload: same key answered differently.
  checker.on_response("k1", "bb", "{\"x\":2}", true, true, false);
  // lost_ack: the acked leader execution is missing from the journal.
  checker.check_journal(perfbg::runner::JournalIndex::load(path, "t"));
  // warm_start: served cold, and served with the wrong bytes.
  checker.check_warm_start("k1", "{\"x\":1}", /*cached=*/false);
  checker.check_warm_start("k1", "{\"x\":3}", /*cached=*/true);
  // counter_conservation: a request vanished between the counters.
  checker.check_counters(3, 10, 5, 4);

  ASSERT_EQ(checker.violation_count(), 5u);
  const auto violations = checker.violations();
  ASSERT_EQ(violations.size(), 5u);
  EXPECT_EQ(violations[0].invariant, "divergent_payload");
  EXPECT_EQ(violations[1].invariant, "lost_ack");
  EXPECT_EQ(violations[2].invariant, "warm_start");
  EXPECT_EQ(violations[3].invariant, "warm_start");
  EXPECT_EQ(violations[4].invariant, "counter_conservation");

  const JsonValue report = checker.report_json();
  EXPECT_EQ(report.find("violations")->as_int(), 5);
}

TEST(ChaosInvariants, JournalDivergenceIsDetected) {
  const std::string dir = make_temp_dir();
  const std::string path = dir + "/j.jsonl";
  {
    perfbg::runner::JournalWriter writer(path, "t");
    perfbg::runner::JournalRecord record;
    record.key = "k1";
    record.payload = perfbg::obs::parse_json("{\"x\":999}");
    writer.append(record);
  }
  InvariantChecker checker;
  checker.on_response("k1", "aa", "{\"x\":1}", true, false, false);
  checker.check_journal(perfbg::runner::JournalIndex::load(path, "t"));
  ASSERT_EQ(checker.violation_count(), 1u);
  EXPECT_EQ(checker.violations()[0].invariant, "journal_divergence");
}

}  // namespace
