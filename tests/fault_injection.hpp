// Test-only fault-injection harness for the solve pipeline.
//
// Produces deliberately corrupted inputs — non-finite entries, broken row
// sums, singular blocks, past-saturation drift — so test_robustness can
// assert that every failure path yields a typed, actionable perfbg::Error
// instead of a max_iters hang or a bare runtime_error. Complemented by the
// in-solver hook RSolverOptions::inject_rung_failures, which fails fallback
// rungs without corrupting the input at all.
//
// Never link this into production code: the whole point of the corruptions
// is to violate the library's preconditions.
#pragma once

#include <errno.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "core/model.hpp"
#include "qbd/qbd.hpp"
#include "server/io.hpp"
#include "workloads/presets.hpp"

namespace perfbg::testing {

/// The supported input corruptions, one per failure mode of the taxonomy.
enum class Fault {
  kNanEntry,       ///< NaN planted in A1            -> kInvalidModel (preflight)
  kInfEntry,       ///< +Inf planted in A0           -> kInvalidModel (preflight)
  kBrokenRowSum,   ///< A0 entry bumped, diagonal not -> kInvalidModel (preflight)
  kSingularBlock,  ///< A1 row duplicated (singular)  -> kSingularMatrix (LU)
};

/// A small, well-formed, stable FG/BG QBD (MMPP2 arrivals at the given
/// foreground utilization) to corrupt or solve as a control.
inline qbd::QbdProcess reference_qbd(double utilization = 0.4) {
  core::FgBgParams params{workloads::email().scaled_to_utilization(
      utilization, workloads::kMeanServiceTimeMs)};
  params.mean_service_time = workloads::kMeanServiceTimeMs;
  params.bg_probability = 0.3;
  params.bg_buffer = 2;
  return core::FgBgModel(params).process();
}

/// A deliberately unstable preset: same chain, foreground utilization >= 1,
/// so the drift condition fails (rho ~ utilization).
inline qbd::QbdProcess unstable_qbd(double utilization = 1.07) {
  return reference_qbd(utilization);
}

/// Returns a copy of `p` with the requested corruption applied.
inline qbd::QbdProcess inject(qbd::QbdProcess p, Fault fault) {
  constexpr double nan = std::numeric_limits<double>::quiet_NaN();
  constexpr double inf = std::numeric_limits<double>::infinity();
  switch (fault) {
    case Fault::kNanEntry:
      p.a1(0, 0) = nan;
      break;
    case Fault::kInfEntry:
      p.a0(0, p.a0.cols() - 1) = inf;
      break;
    case Fault::kBrokenRowSum:
      // Extra off-diagonal rate without the compensating diagonal update.
      p.a0(0, 0) += 0.25;
      break;
    case Fault::kSingularBlock:
      // Duplicate row 0 of A1 into row 1: exactly singular, so the direct
      // functional R iteration's LU of A1 hits a zero pivot.
      for (std::size_t j = 0; j < p.a1.cols(); ++j) p.a1(1, j) = p.a1(0, j);
      break;
  }
  return p;
}

// ---------------------------------------------------------------------------
// Socket/IO fault hooks (server::IoFaultInjector seam).
//
// Install with install_io_fault_injector(&faults) before starting the daemon
// and clear (nullptr) after stopping it. All state is atomic: the injector is
// consulted concurrently from every connection/worker thread, and the suite
// runs under -fsanitize=thread in CI.

/// Scripted misbehaviour for the daemon's read/write paths:
///   - short reads: cap every recv at `max_read_chunk` bytes, so frames
///     arrive one sliver at a time and the LineReader must reassemble;
///   - EAGAIN storms: the first `read_eagain_storms` reads fail with EAGAIN
///     (io_read must absorb and retry, not error the connection);
///   - mid-frame disconnect: reads report EOF after `read_eof_after` read
///     calls have been admitted;
///   - write resets: writes fail with ECONNRESET after `write_reset_after`
///     write calls (a peer vanishing mid-response must drop one connection,
///     never the daemon).
class ScriptedIoFaults : public server::IoFaultInjector {
 public:
  static constexpr std::uint64_t kNever = UINT64_MAX;

  std::size_t max_read_chunk = 0;            ///< 0 = unlimited
  std::atomic<std::int64_t> read_eagain_storms{0};
  std::atomic<std::uint64_t> read_eof_after{kNever};
  std::atomic<std::uint64_t> write_reset_after{kNever};

  std::atomic<std::uint64_t> reads{0};   ///< read calls observed
  std::atomic<std::uint64_t> writes{0};  ///< write calls observed

  bool on_read(int, std::size_t& len, ssize_t& result, int& err) override {
    const std::uint64_t n = reads.fetch_add(1, std::memory_order_relaxed);
    if (read_eagain_storms.fetch_sub(1, std::memory_order_relaxed) > 0) {
      result = -1;
      err = EAGAIN;
      return true;
    }
    read_eagain_storms.store(0, std::memory_order_relaxed);
    if (n >= read_eof_after.load(std::memory_order_relaxed)) {
      result = 0;  // simulated orderly disconnect
      return true;
    }
    if (max_read_chunk > 0 && len > max_read_chunk) len = max_read_chunk;
    return false;  // real recv, possibly shortened
  }

  bool on_write(int, std::size_t&, ssize_t& result, int& err) override {
    const std::uint64_t n = writes.fetch_add(1, std::memory_order_relaxed);
    if (n >= write_reset_after.load(std::memory_order_relaxed)) {
      result = -1;
      err = ECONNRESET;
      return true;
    }
    return false;
  }
};

/// RAII installer so a throwing test cannot leave the process-global hook
/// pointing at a dead injector.
class ScopedIoFaults {
 public:
  explicit ScopedIoFaults(ScriptedIoFaults& faults) {
    server::install_io_fault_injector(&faults);
  }
  ~ScopedIoFaults() { server::install_io_fault_injector(nullptr); }
  ScopedIoFaults(const ScopedIoFaults&) = delete;
  ScopedIoFaults& operator=(const ScopedIoFaults&) = delete;
};

}  // namespace perfbg::testing
