// Test-only fault-injection harness for the solve pipeline.
//
// Produces deliberately corrupted inputs — non-finite entries, broken row
// sums, singular blocks, past-saturation drift — so test_robustness can
// assert that every failure path yields a typed, actionable perfbg::Error
// instead of a max_iters hang or a bare runtime_error. Complemented by the
// in-solver hook RSolverOptions::inject_rung_failures, which fails fallback
// rungs without corrupting the input at all.
//
// Never link this into production code: the whole point of the corruptions
// is to violate the library's preconditions.
#pragma once

#include <cstddef>
#include <limits>

#include "chaos/scripted_faults.hpp"
#include "core/model.hpp"
#include "qbd/qbd.hpp"
#include "workloads/presets.hpp"

namespace perfbg::testing {

/// The supported input corruptions, one per failure mode of the taxonomy.
enum class Fault {
  kNanEntry,       ///< NaN planted in A1            -> kInvalidModel (preflight)
  kInfEntry,       ///< +Inf planted in A0           -> kInvalidModel (preflight)
  kBrokenRowSum,   ///< A0 entry bumped, diagonal not -> kInvalidModel (preflight)
  kSingularBlock,  ///< A1 row duplicated (singular)  -> kSingularMatrix (LU)
};

/// A small, well-formed, stable FG/BG QBD (MMPP2 arrivals at the given
/// foreground utilization) to corrupt or solve as a control.
inline qbd::QbdProcess reference_qbd(double utilization = 0.4) {
  core::FgBgParams params{workloads::email().scaled_to_utilization(
      utilization, workloads::kMeanServiceTimeMs)};
  params.mean_service_time = workloads::kMeanServiceTimeMs;
  params.bg_probability = 0.3;
  params.bg_buffer = 2;
  return core::FgBgModel(params).process();
}

/// A deliberately unstable preset: same chain, foreground utilization >= 1,
/// so the drift condition fails (rho ~ utilization).
inline qbd::QbdProcess unstable_qbd(double utilization = 1.07) {
  return reference_qbd(utilization);
}

/// Returns a copy of `p` with the requested corruption applied.
inline qbd::QbdProcess inject(qbd::QbdProcess p, Fault fault) {
  // The corruption happens after the chain builder certified the matrices, so
  // the prevalidation shortcut no longer holds — preflight must re-check.
  p.prevalidated = false;
  constexpr double nan = std::numeric_limits<double>::quiet_NaN();
  constexpr double inf = std::numeric_limits<double>::infinity();
  switch (fault) {
    case Fault::kNanEntry:
      p.a1(0, 0) = nan;
      break;
    case Fault::kInfEntry:
      p.a0(0, p.a0.cols() - 1) = inf;
      break;
    case Fault::kBrokenRowSum:
      // Extra off-diagonal rate without the compensating diagonal update.
      p.a0(0, 0) += 0.25;
      break;
    case Fault::kSingularBlock:
      // Duplicate row 0 of A1 into row 1: exactly singular, so the direct
      // functional R iteration's LU of A1 hits a zero pivot.
      for (std::size_t j = 0; j < p.a1.cols(); ++j) p.a1(1, j) = p.a1(0, j);
      break;
  }
  return p;
}

// ---------------------------------------------------------------------------
// Socket/IO fault hooks: ScriptedIoFaults/ScopedIoFaults graduated into the
// linkable perfbg_faults library (chaos/scripted_faults.hpp) so examples and
// tests share one seam implementation. Aliased here so existing tests keep
// reading naturally.

using ScriptedIoFaults = chaos::ScriptedIoFaults;
using ScopedIoFaults = chaos::ScopedIoFaults;

}  // namespace perfbg::testing
