#include "markov/stationary.hpp"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>

#include "linalg/lu.hpp"

namespace perfbg::markov {
namespace {

TEST(IsGenerator, AcceptsValidGenerator) {
  EXPECT_TRUE(is_generator(Matrix{{-1.0, 1.0}, {2.0, -2.0}}));
}

TEST(IsGenerator, RejectsBadRowSum) {
  EXPECT_FALSE(is_generator(Matrix{{-1.0, 0.5}, {2.0, -2.0}}));
}

TEST(IsGenerator, RejectsNegativeOffDiagonal) {
  EXPECT_FALSE(is_generator(Matrix{{1.0, -1.0}, {2.0, -2.0}}));
}

TEST(IsGenerator, RejectsNonSquare) { EXPECT_FALSE(is_generator(Matrix(2, 3, 0.0))); }

TEST(IsStochastic, AcceptsAndRejects) {
  EXPECT_TRUE(is_stochastic(Matrix{{0.5, 0.5}, {0.0, 1.0}}));
  EXPECT_FALSE(is_stochastic(Matrix{{0.5, 0.6}, {0.0, 1.0}}));
  EXPECT_FALSE(is_stochastic(Matrix{{1.5, -0.5}, {0.0, 1.0}}));
}

TEST(StationaryCtmc, TwoStateClosedForm) {
  const Matrix q{{-3.0, 3.0}, {1.0, -1.0}};
  const Vector pi = stationary_ctmc(q);
  EXPECT_NEAR(pi[0], 0.25, 1e-14);
  EXPECT_NEAR(pi[1], 0.75, 1e-14);
}

TEST(StationaryCtmc, SingleState) {
  const Vector pi = stationary_ctmc(Matrix{{0.0}});
  ASSERT_EQ(pi.size(), 1u);
  EXPECT_DOUBLE_EQ(pi[0], 1.0);
}

TEST(StationaryCtmc, BirthDeathChainMatchesDetailedBalance) {
  // Birth rate 2, death rate 5, 4 states: pi_i ~ (2/5)^i.
  const std::size_t n = 4;
  Matrix q(n, n, 0.0);
  for (std::size_t i = 0; i + 1 < n; ++i) {
    q(i, i + 1) = 2.0;
    q(i + 1, i) = 5.0;
  }
  for (std::size_t i = 0; i < n; ++i) q(i, i) = -q.row_sum(i);
  const Vector pi = stationary_ctmc(q);
  for (std::size_t i = 0; i + 1 < n; ++i)
    EXPECT_NEAR(pi[i + 1] / pi[i], 0.4, 1e-12) << i;
}

TEST(StationaryCtmc, AgreesWithLuOnRandomChains) {
  std::mt19937_64 rng(42);
  std::uniform_real_distribution<double> u(0.1, 2.0);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 3 + static_cast<std::size_t>(trial % 5);
    Matrix q(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j)
        if (i != j) q(i, j) = u(rng);
      q(i, i) = -q.row_sum(i);
    }
    const Vector gth = stationary_ctmc(q);
    const Vector lu = linalg::solve_stationary(q);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(gth[i], lu[i], 1e-10);
  }
}

TEST(StationaryCtmc, StiffRatesStayAccurate) {
  // GTH is subtraction-free: 10 orders of magnitude between rates is fine.
  const Matrix q{{-1e-8, 1e-8}, {1e2, -1e2}};
  const Vector pi = stationary_ctmc(q);
  EXPECT_NEAR(pi[0], 1e2 / (1e2 + 1e-8), 1e-12);
  EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-14);
}

TEST(StationaryCtmc, NonGeneratorThrows) {
  EXPECT_THROW(stationary_ctmc(Matrix{{-1.0, 0.5}, {1.0, -1.0}}), std::invalid_argument);
}

TEST(StationaryCtmc, ReducibleChainThrows) {
  // Two absorbing states: no unique stationary distribution.
  const Matrix q{{0.0, 0.0}, {0.0, 0.0}};
  EXPECT_THROW(stationary_ctmc(q), std::runtime_error);
}

TEST(StationaryDtmc, TwoStateClosedForm) {
  const Matrix p{{0.9, 0.1}, {0.3, 0.7}};
  const Vector pi = stationary_dtmc(p);
  EXPECT_NEAR(pi[0], 0.75, 1e-13);
  EXPECT_NEAR(pi[1], 0.25, 1e-13);
}

TEST(StationaryDtmc, NonStochasticThrows) {
  EXPECT_THROW(stationary_dtmc(Matrix{{0.9, 0.2}, {0.3, 0.7}}), std::invalid_argument);
}

TEST(ClosedClass, IrreducibleChainIsOneClass) {
  const Matrix q{{-1.0, 1.0}, {1.0, -1.0}};
  const auto cls = closed_class(q);
  EXPECT_EQ(cls.size(), 2u);
}

TEST(ClosedClass, FindsAbsorbingClass) {
  // 0 -> 1 -> {2,3} cycle; {2,3} is the closed class.
  Matrix q(4, 4, 0.0);
  q(0, 1) = 1.0;
  q(1, 2) = 1.0;
  q(2, 3) = 1.0;
  q(3, 2) = 1.0;
  for (std::size_t i = 0; i < 4; ++i) q(i, i) = -q.row_sum(i);
  auto cls = closed_class(q);
  std::sort(cls.begin(), cls.end());
  ASSERT_EQ(cls.size(), 2u);
  EXPECT_EQ(cls[0], 2u);
  EXPECT_EQ(cls[1], 3u);
}

TEST(ClosedClass, MultipleClosedClassesThrow) {
  // 0 and 1 both absorbing.
  Matrix q(3, 3, 0.0);
  q(2, 0) = 1.0;
  q(2, 1) = 1.0;
  q(2, 2) = -2.0;
  EXPECT_THROW(closed_class(q), std::runtime_error);
}

TEST(StationaryUnichain, MatchesIrreducibleSolver) {
  const Matrix q{{-3.0, 3.0}, {1.0, -1.0}};
  const Vector a = stationary_unichain_ctmc(q);
  const Vector b = stationary_ctmc(q);
  EXPECT_NEAR(a[0], b[0], 1e-14);
  EXPECT_NEAR(a[1], b[1], 1e-14);
}

TEST(StationaryUnichain, TransientStatesGetZeroMass) {
  // 0 is transient (drains into the 1<->2 class).
  Matrix q(3, 3, 0.0);
  q(0, 1) = 2.0;
  q(1, 2) = 3.0;
  q(2, 1) = 1.0;
  for (std::size_t i = 0; i < 3; ++i) q(i, i) = -q.row_sum(i);
  const Vector pi = stationary_unichain_ctmc(q);
  EXPECT_DOUBLE_EQ(pi[0], 0.0);
  EXPECT_NEAR(pi[1], 0.25, 1e-13);
  EXPECT_NEAR(pi[2], 0.75, 1e-13);
}

TEST(StationaryUnichain, OrderingOfStatesDoesNotMatter) {
  // Same chain as above but with the transient state last.
  Matrix q(3, 3, 0.0);
  q(2, 1) = 2.0;   // transient 2 -> class {0,1}
  q(0, 1) = 3.0;
  q(1, 0) = 1.0;
  for (std::size_t i = 0; i < 3; ++i) q(i, i) = -q.row_sum(i);
  const Vector pi = stationary_unichain_ctmc(q);
  EXPECT_DOUBLE_EQ(pi[2], 0.0);
  EXPECT_NEAR(pi[0], 0.25, 1e-13);
  EXPECT_NEAR(pi[1], 0.75, 1e-13);
}

}  // namespace
}  // namespace perfbg::markov
