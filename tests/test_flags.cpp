#include "util/flags.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <stdexcept>
#include <string>

#ifdef PERFBG_BENCH_BINARY
#include <sys/wait.h>
#endif

namespace perfbg {
namespace {

Flags make_flags() {
  Flags f;
  f.define("util", "utilization");
  f.define("p", "spawn probability");
  f.define("buffer", "buffer size");
  f.define("name", "workload name");
  f.define("verbose", "verbosity");
  return f;
}

void parse(Flags& f, std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  f.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsForm) {
  Flags f = make_flags();
  parse(f, {"--util=0.25", "--name=email"});
  EXPECT_DOUBLE_EQ(f.get_double("util", 0.0), 0.25);
  EXPECT_EQ(f.get_string("name", ""), "email");
}

TEST(Flags, SpaceForm) {
  Flags f = make_flags();
  parse(f, {"--buffer", "7", "--p", "0.3"});
  EXPECT_EQ(f.get_int("buffer", 0), 7);
  EXPECT_DOUBLE_EQ(f.get_double("p", 0.0), 0.3);
}

TEST(Flags, DefaultsApplyWhenAbsent) {
  Flags f = make_flags();
  parse(f, {});
  EXPECT_FALSE(f.has("util"));
  EXPECT_DOUBLE_EQ(f.get_double("util", 0.5), 0.5);
  EXPECT_EQ(f.get_string("name", "fallback"), "fallback");
  EXPECT_TRUE(f.get_bool("verbose", true));
}

TEST(Flags, BoolForms) {
  Flags f = make_flags();
  parse(f, {"--verbose=true"});
  EXPECT_TRUE(f.get_bool("verbose", false));
  Flags g = make_flags();
  parse(g, {"--verbose=0"});
  EXPECT_FALSE(g.get_bool("verbose", true));
  Flags h = make_flags();
  parse(h, {"--verbose=maybe"});
  EXPECT_THROW(h.get_bool("verbose", false), std::invalid_argument);
}

TEST(Flags, UnknownFlagThrows) {
  Flags f = make_flags();
  EXPECT_THROW(parse(f, {"--nope=1"}), std::invalid_argument);
}

TEST(Flags, MissingValueThrows) {
  Flags f = make_flags();
  EXPECT_THROW(parse(f, {"--util"}), std::invalid_argument);
}

TEST(Flags, NonFlagArgumentThrows) {
  Flags f = make_flags();
  EXPECT_THROW(parse(f, {"util=0.3"}), std::invalid_argument);
}

TEST(Flags, MalformedNumbersThrow) {
  Flags f = make_flags();
  parse(f, {"--util=abc", "--buffer=2x"});
  EXPECT_THROW(f.get_double("util", 0.0), std::invalid_argument);
  EXPECT_THROW(f.get_int("buffer", 0), std::invalid_argument);
}

TEST(Flags, UndefinedAccessorThrows) {
  Flags f = make_flags();
  parse(f, {});
  EXPECT_THROW(f.get_double("undefined", 0.0), std::invalid_argument);
}

TEST(Flags, DuplicateDefinitionThrows) {
  Flags f;
  f.define("x", "one");
  EXPECT_THROW(f.define("x", "two"), std::invalid_argument);
}

TEST(Flags, HelpListsFlags) {
  Flags f = make_flags();
  const std::string h = f.help();
  EXPECT_NE(h.find("--util"), std::string::npos);
  EXPECT_NE(h.find("spawn probability"), std::string::npos);
}

TEST(Flags, LastValueWins) {
  Flags f = make_flags();
  parse(f, {"--util=0.1", "--util=0.9"});
  EXPECT_DOUBLE_EQ(f.get_double("util", 0.0), 0.9);
}

TEST(Flags, BareSwitchNeedsNoValue) {
  Flags f;
  f.define_switch("help", "print this help");
  f.define("util", "utilization");
  parse(f, {"--help"});
  EXPECT_TRUE(f.has("help"));
  EXPECT_TRUE(f.get_bool("help", false));
}

TEST(Flags, BareSwitchDoesNotConsumeTheNextArgument) {
  Flags f;
  f.define_switch("help", "print this help");
  f.define("util", "utilization");
  parse(f, {"--help", "--util", "0.25"});
  EXPECT_TRUE(f.get_bool("help", false));
  EXPECT_DOUBLE_EQ(f.get_double("util", 0.0), 0.25);
}

#ifdef PERFBG_BENCH_BINARY
// End-to-end exit-code checks against a real bench binary (the path is baked
// in by CMake): the documented contract is 0 for --help and 2 for any usage
// error, so sweep scripts can distinguish "asked for help" from "typo".
namespace e2e {

int run_bench(const std::string& args) {
  const std::string cmd =
      std::string(PERFBG_BENCH_BINARY) + " " + args + " >/dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(FlagsEndToEnd, HelpExitsZero) { EXPECT_EQ(run_bench("--help"), 0); }

TEST(FlagsEndToEnd, UnknownFlagExitsWithUsageError) {
  EXPECT_EQ(run_bench("--bogus=1"), 2);
}

TEST(FlagsEndToEnd, MissingValueExitsWithUsageError) {
  EXPECT_EQ(run_bench("--trace"), 2);
}

TEST(FlagsEndToEnd, NonFlagArgumentExitsWithUsageError) {
  EXPECT_EQ(run_bench("trace=x"), 2);
}

}  // namespace e2e
#endif  // PERFBG_BENCH_BINARY

}  // namespace
}  // namespace perfbg
