// Independent cross-check of the matrix-geometric solution and every metric
// formula: assemble the full (truncated) generator of the FG/BG chain, solve
// it directly with LU, re-derive all metrics from the raw stationary vector,
// and compare against FgBgSolution. The truncation level is chosen so the
// missing tail mass is far below the comparison tolerance.
#include <gtest/gtest.h>

#include <cmath>

#include "core/model.hpp"
#include "linalg/lu.hpp"
#include "traffic/processes.hpp"

namespace perfbg::core {
namespace {

struct TruncatedMetrics {
  double mass, qlen_fg, qlen_bg, p_fg, p_fg_cap, p_bg, p_bg_y0, p_idle, delayed_rate;
};

TruncatedMetrics brute_force(const FgBgParams& params, int extra_levels) {
  const FgBgLayout layout(params.background_disabled() ? 0 : params.bg_buffer,
                          params.arrivals.phases());
  const qbd::QbdProcess q = build_fgbg_qbd(params, layout);
  const std::size_t nb = q.boundary_size(), nr = q.level_size();
  const std::size_t n = nb + nr * static_cast<std::size_t>(extra_levels);
  linalg::Matrix full(n, n, 0.0);
  auto put = [&](std::size_t r0, std::size_t c0, const linalg::Matrix& b) {
    for (std::size_t i = 0; i < b.rows(); ++i)
      for (std::size_t j = 0; j < b.cols(); ++j) full(r0 + i, c0 + j) += b(i, j);
  };
  put(0, 0, q.b00);
  put(0, nb, q.b01);
  put(nb, 0, q.b10);
  for (int l = 0; l < extra_levels; ++l) {
    const std::size_t off = nb + nr * static_cast<std::size_t>(l);
    put(off, off, q.a1);
    if (l + 1 < extra_levels)
      put(off, off + nr, q.a0);
    else
      put(off, off, q.a0);  // reflect the top edge
    if (l >= 1) put(off, off - nr, q.a2);
  }
  const linalg::Vector pi = linalg::solve_stationary(full);

  // Re-derive the raw quantities straight from the state descriptors.
  const std::size_t a = layout.phases();
  linalg::Vector phase_rate(a);
  for (std::size_t k = 0; k < a; ++k) phase_rate[k] = params.arrivals.d1().row_sum(k);

  TruncatedMetrics out{};
  auto account = [&](const StateDesc& st, int y, double mass, double wrate) {
    out.mass += mass;
    out.qlen_fg += y * mass;
    out.qlen_bg += st.x * mass;
    switch (st.kind) {
      case Activity::kFgService:
        out.p_fg += mass;
        if (st.x == layout.bg_buffer()) out.p_fg_cap += mass;
        break;
      case Activity::kBgService:
        out.p_bg += mass;
        if (y == 0) out.p_bg_y0 += mass;
        out.delayed_rate += wrate;
        break;
      case Activity::kIdle:
        out.p_idle += mass;
        break;
    }
  };
  for (std::size_t s = 0; s < layout.boundary().size(); ++s) {
    double mass = 0.0, wrate = 0.0;
    for (std::size_t k = 0; k < a; ++k) {
      mass += pi[s * a + k];
      wrate += pi[s * a + k] * phase_rate[k];
    }
    account(layout.boundary()[s], layout.boundary()[s].y, mass, wrate);
  }
  for (int l = 0; l < extra_levels; ++l) {
    const std::size_t off = nb + nr * static_cast<std::size_t>(l);
    for (std::size_t s = 0; s < layout.repeating().size(); ++s) {
      double mass = 0.0, wrate = 0.0;
      for (std::size_t k = 0; k < a; ++k) {
        mass += pi[off + s * a + k];
        wrate += pi[off + s * a + k] * phase_rate[k];
      }
      const int level = layout.first_repeating_level() + l;
      account(layout.repeating()[s], level - layout.repeating()[s].x, mass, wrate);
    }
  }
  return out;
}

void compare(const FgBgParams& params, int extra_levels, double tol) {
  const TruncatedMetrics t = brute_force(params, extra_levels);
  const FgBgMetrics m = FgBgModel(params).solve().metrics();
  const double lambda = params.arrivals.mean_rate();
  const double mu = params.service_rate();
  const double p = params.bg_probability;

  EXPECT_NEAR(t.mass, 1.0, 1e-10);
  EXPECT_NEAR(m.fg_queue_length, t.qlen_fg, tol * std::max(1.0, t.qlen_fg));
  EXPECT_NEAR(m.bg_queue_length, t.qlen_bg, tol * std::max(1.0, t.qlen_bg));
  EXPECT_NEAR(m.fg_busy_fraction, t.p_fg, tol);
  EXPECT_NEAR(m.bg_busy_fraction, t.p_bg, tol);
  EXPECT_NEAR(m.idle_fraction, t.p_idle, tol);
  if (p > 0.0) {
    EXPECT_NEAR(m.bg_completion, 1.0 - t.p_fg_cap / t.p_fg, tol);
    EXPECT_NEAR(m.bg_drop_rate, p * mu * t.p_fg_cap, tol);
  }
  const double p_y0 = t.p_idle + t.p_bg_y0;
  EXPECT_NEAR(m.fg_delayed, (t.p_bg - t.p_bg_y0) / (1.0 - p_y0), tol);
  EXPECT_NEAR(m.fg_delayed_arrivals, t.delayed_rate / lambda, tol);
}

TEST(ModelExact, PoissonModerateLoad) {
  FgBgParams params{traffic::poisson(0.25 / 6.0)};
  params.bg_probability = 0.4;
  params.bg_buffer = 2;
  compare(params, 60, 1e-7);
}

TEST(ModelExact, PoissonHighP) {
  FgBgParams params{traffic::poisson(0.30 / 6.0)};
  params.bg_probability = 0.9;
  params.bg_buffer = 3;
  compare(params, 70, 1e-7);
}

TEST(ModelExact, MmppLowLoad) {
  FgBgParams params{traffic::mmpp2(0.002, 0.0008, 0.04, 0.004)};
  params.bg_probability = 0.5;
  params.bg_buffer = 2;
  // Bursty arrivals: needs more levels for the same tail mass.
  compare(params, 120, 1e-6);
}

TEST(ModelExact, ShortIdleWait) {
  FgBgParams params{traffic::poisson(0.2 / 6.0)};
  params.bg_probability = 0.6;
  params.bg_buffer = 2;
  params.idle_wait_intensity = 0.2;
  compare(params, 60, 1e-7);
}

TEST(ModelExact, LongIdleWait) {
  FgBgParams params{traffic::poisson(0.2 / 6.0)};
  params.bg_probability = 0.6;
  params.bg_buffer = 2;
  params.idle_wait_intensity = 4.0;
  compare(params, 60, 1e-7);
}

TEST(ModelExact, BufferOfOne) {
  FgBgParams params{traffic::poisson(0.25 / 6.0)};
  params.bg_probability = 0.7;
  params.bg_buffer = 1;
  compare(params, 60, 1e-7);
}

TEST(ModelExact, ErlangArrivalPhases) {
  FgBgParams params{traffic::erlang_renewal(3, 30.0)};  // util 0.2
  params.bg_probability = 0.4;
  params.bg_buffer = 2;
  compare(params, 60, 1e-7);
}

TEST(ModelExact, NoBackgroundDegenerate) {
  FgBgParams params{traffic::poisson(0.3 / 6.0)};
  params.bg_probability = 0.0;
  compare(params, 80, 1e-7);
}

}  // namespace
}  // namespace perfbg::core
