#include "core/state_space.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace perfbg::core {
namespace {

TEST(Layout, BoundaryCountMatchesClosedForm) {
  // Levels 0..X contribute 2j+1 macro states each: total (X+1)^2.
  for (int x : {1, 2, 5, 10}) {
    const FgBgLayout layout(x, 2);
    EXPECT_EQ(layout.boundary_macro_count(),
              static_cast<std::size_t>((x + 1) * (x + 1)))
        << x;
    EXPECT_EQ(layout.boundary_flat_size(), layout.boundary_macro_count() * 2) << x;
  }
}

TEST(Layout, RepeatingCountIs2XPlus1) {
  for (int x : {1, 2, 5, 10}) {
    const FgBgLayout layout(x, 3);
    EXPECT_EQ(layout.repeating_macro_count(), static_cast<std::size_t>(2 * x + 1));
    EXPECT_EQ(layout.repeating_flat_size(), static_cast<std::size_t>(2 * x + 1) * 3);
  }
}

TEST(Layout, BoundaryStatesAreExactlyTheLowLevels) {
  const int x_cap = 3;
  const FgBgLayout layout(x_cap, 1);
  std::set<std::tuple<int, int, int>> seen;  // (kind, x, y)
  for (const StateDesc& s : layout.boundary()) {
    EXPECT_LE(s.x + s.y, x_cap);
    EXPECT_GE(s.x, 0);
    EXPECT_GE(s.y, 0);
    switch (s.kind) {
      case Activity::kFgService:
        EXPECT_GE(s.y, 1);
        break;
      case Activity::kBgService:
        EXPECT_GE(s.x, 1);
        break;
      case Activity::kIdle:
        EXPECT_EQ(s.y, 0);
        break;
    }
    EXPECT_TRUE(seen.insert({static_cast<int>(s.kind), s.x, s.y}).second)
        << "duplicate state";
  }
  // Count each family: F states {x>=0, y>=1, x+y<=X}, B {x>=1, y>=0,
  // x+y<=X}, I {0..X}.
  int f = 0, b = 0, idle = 0;
  for (const StateDesc& s : layout.boundary()) {
    if (s.kind == Activity::kFgService) ++f;
    if (s.kind == Activity::kBgService) ++b;
    if (s.kind == Activity::kIdle) ++idle;
  }
  EXPECT_EQ(f, x_cap * (x_cap + 1) / 2);
  EXPECT_EQ(b, x_cap * (x_cap + 1) / 2);
  EXPECT_EQ(idle, x_cap + 1);
}

TEST(Layout, BoundaryIndexRoundTrips) {
  const FgBgLayout layout(4, 2);
  for (std::size_t i = 0; i < layout.boundary().size(); ++i) {
    const StateDesc& s = layout.boundary()[i];
    EXPECT_EQ(layout.boundary_index(s.kind, s.x, s.y), i);
  }
}

TEST(Layout, RepeatingIndexLayout) {
  const FgBgLayout layout(3, 2);
  EXPECT_EQ(layout.repeating_index(Activity::kFgService, 0), 0u);
  EXPECT_EQ(layout.repeating_index(Activity::kFgService, 1), 1u);
  EXPECT_EQ(layout.repeating_index(Activity::kBgService, 1), 2u);
  EXPECT_EQ(layout.repeating_index(Activity::kFgService, 3), 5u);
  EXPECT_EQ(layout.repeating_index(Activity::kBgService, 3), 6u);
}

TEST(Layout, RepeatingDescriptorsMatchIndices) {
  const FgBgLayout layout(5, 1);
  for (std::size_t i = 0; i < layout.repeating().size(); ++i) {
    const StateDesc& s = layout.repeating()[i];
    EXPECT_EQ(layout.repeating_index(s.kind, s.x), i);
  }
}

TEST(Layout, MissingStatesThrow) {
  const FgBgLayout layout(2, 1);
  EXPECT_THROW(layout.boundary_index(Activity::kFgService, 0, 0), std::invalid_argument);
  EXPECT_THROW(layout.boundary_index(Activity::kFgService, 2, 1), std::invalid_argument);
  EXPECT_THROW(layout.boundary_index(Activity::kIdle, 3, 0), std::invalid_argument);
  EXPECT_THROW(layout.repeating_index(Activity::kBgService, 0), std::invalid_argument);
  EXPECT_THROW(layout.repeating_index(Activity::kIdle, 1), std::invalid_argument);
  EXPECT_THROW(layout.repeating_index(Activity::kFgService, 3), std::invalid_argument);
}

TEST(Layout, DegenerateNoBackgroundSpace) {
  const FgBgLayout layout(0, 2);
  ASSERT_EQ(layout.boundary_macro_count(), 1u);
  EXPECT_EQ(layout.boundary()[0].kind, Activity::kIdle);
  ASSERT_EQ(layout.repeating_macro_count(), 1u);
  EXPECT_EQ(layout.repeating()[0].kind, Activity::kFgService);
  EXPECT_EQ(layout.first_repeating_level(), 1);
}

TEST(Layout, FirstRepeatingLevel) {
  EXPECT_EQ(FgBgLayout(5, 2).first_repeating_level(), 6);
}

TEST(Layout, InvalidArgsThrow) {
  EXPECT_THROW(FgBgLayout(-1, 2), std::invalid_argument);
  EXPECT_THROW(FgBgLayout(2, 0), std::invalid_argument);
}

}  // namespace
}  // namespace perfbg::core
