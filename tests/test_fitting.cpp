#include "traffic/fitting.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace perfbg::traffic {
namespace {

TEST(FitMmpp2, HitsFeasibleTargets) {
  // A point verified to lie on the MMPP(2) feasible surface: at SCV 4 and
  // decay 0.93 the implied lag-1 ACF is ~0.349.
  const Mmpp2FitTarget target{0.05, 4.0, 0.3487, 0.93};
  const FitResult r = fit_mmpp2(target, 1e-5);
  EXPECT_NEAR(r.process.mean_rate(), target.mean_rate, 1e-6);
  EXPECT_NEAR(r.process.interarrival_scv(), target.scv, 0.02);
  EXPECT_NEAR(r.process.acf(1), target.acf1, 0.01);
  EXPECT_NEAR(r.process.acf_decay_rate(), target.acf_decay, 0.02);
  EXPECT_LE(r.residual, 1e-5);
}

TEST(FitMmpp2, SlowDecayRidgePoint) {
  // On the slow-decay ridge ACF(1) approaches (1 - 1/SCV)/2.
  const Mmpp2FitTarget target{0.01, 2.5, 0.295, 0.995};
  const FitResult r = fit_mmpp2(target, 1e-4);
  EXPECT_NEAR(r.process.interarrival_scv(), 2.5, 0.05);
  EXPECT_GT(r.process.acf_decay_rate(), 0.98);
}

TEST(FitMmpp2, NamesTheResult) {
  const FitResult r = fit_mmpp2({0.05, 4.0, 0.3487, 0.93}, 1e-4, "custom-name");
  EXPECT_EQ(r.process.name(), "custom-name");
}

TEST(FitMmpp2, InfeasibleTargetsThrow) {
  // ACF(1) far above what SCV = 1.5 allows at slow decay.
  EXPECT_THROW(fit_mmpp2({0.05, 1.5, 0.45, 0.99}), std::runtime_error);
}

TEST(FitMmpp2, InvalidTargetsThrow) {
  EXPECT_THROW(fit_mmpp2({0.0, 4.0, 0.3, 0.9}), std::invalid_argument);   // rate
  EXPECT_THROW(fit_mmpp2({0.05, 0.9, 0.3, 0.9}), std::invalid_argument);  // scv <= 1
  EXPECT_THROW(fit_mmpp2({0.05, 4.0, 0.6, 0.9}), std::invalid_argument);  // acf1 >= 0.5
  EXPECT_THROW(fit_mmpp2({0.05, 4.0, 0.3, 1.5}), std::invalid_argument);  // decay >= 1
}

TEST(FitIpp, MatchesMeanAndScvExactly) {
  for (double scv : {2.0, 4.0, 10.0, 50.0}) {
    const FitResult r = fit_ipp(0.0133, scv, 0.1);
    EXPECT_NEAR(r.process.mean_rate(), 0.0133, 1e-8) << scv;
    EXPECT_NEAR(r.process.interarrival_scv(), scv, 1e-6 * scv) << scv;
  }
}

TEST(FitIpp, ResultIsUncorrelated) {
  const FitResult r = fit_ipp(0.02, 6.0, 0.2);
  for (double a : r.process.acf_series(10)) EXPECT_NEAR(a, 0.0, 1e-9);
}

TEST(FitIpp, OnFractionIsRespected) {
  const double f = 0.25;
  const FitResult r = fit_ipp(0.02, 6.0, f);
  // Stationary probability of the bursting phase equals f.
  EXPECT_NEAR(r.process.phase_stationary()[0], f, 1e-9);
}

TEST(FitIpp, InvalidArgsThrow) {
  EXPECT_THROW(fit_ipp(0.0, 4.0, 0.1), std::invalid_argument);
  EXPECT_THROW(fit_ipp(0.01, 0.5, 0.1), std::invalid_argument);
  EXPECT_THROW(fit_ipp(0.01, 4.0, 0.0), std::invalid_argument);
  EXPECT_THROW(fit_ipp(0.01, 4.0, 1.0), std::invalid_argument);
}

}  // namespace
}  // namespace perfbg::traffic
