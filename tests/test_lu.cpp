#include "linalg/lu.hpp"

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>

namespace perfbg::linalg {
namespace {

Matrix random_well_conditioned(std::size_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) m(i, j) = u(rng);
    m(i, i) += static_cast<double>(n);  // diagonal dominance
  }
  return m;
}

TEST(Lu, SolveMatchesHandExample) {
  const Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  const Vector x = LuDecomposition(a).solve(Vector{5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, SolveRoundTripsRandomSystems) {
  for (std::size_t n : {1u, 2u, 5u, 20u, 60u}) {
    const Matrix a = random_well_conditioned(n, 100 + n);
    std::mt19937_64 rng(n);
    std::uniform_real_distribution<double> u(-1.0, 1.0);
    Vector x_true(n);
    for (double& v : x_true) v = u(rng);
    const Vector b = mat_vec(a, x_true);
    const Vector x = LuDecomposition(a).solve(b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9) << "n=" << n;
  }
}

TEST(Lu, SolveLeftSolvesRowSystem) {
  const Matrix a = random_well_conditioned(8, 7);
  Vector x_true(8);
  for (std::size_t i = 0; i < 8; ++i) x_true[i] = static_cast<double>(i) - 3.0;
  const Vector b = vec_mat(x_true, a);
  const Vector x = LuDecomposition(a).solve_left(b);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(Lu, SolveLeftNeedsPivoting) {
  // First pivot is zero: partial pivoting must kick in for both solve paths.
  const Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const Vector x = LuDecomposition(a).solve_left(Vector{3.0, 4.0});
  EXPECT_NEAR(x[0], 4.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
  const Vector y = LuDecomposition(a).solve(Vector{3.0, 4.0});
  EXPECT_NEAR(y[0], 4.0, 1e-12);
  EXPECT_NEAR(y[1], 3.0, 1e-12);
}

TEST(Lu, MatrixRhsSolve) {
  const Matrix a = random_well_conditioned(5, 11);
  const Matrix b = random_well_conditioned(5, 12);
  const Matrix x = LuDecomposition(a).solve(b);
  EXPECT_LT((a * x).max_abs_diff(b), 1e-9);
}

TEST(Lu, InverseTimesOriginalIsIdentity) {
  const Matrix a = random_well_conditioned(12, 5);
  const Matrix inv = LuDecomposition(a).inverse();
  EXPECT_LT((a * inv).max_abs_diff(Matrix::identity(12)), 1e-9);
  EXPECT_LT((inv * a).max_abs_diff(Matrix::identity(12)), 1e-9);
}

TEST(Lu, DeterminantOfTriangularAndPermuted) {
  const Matrix t{{2.0, 1.0}, {0.0, 3.0}};
  EXPECT_NEAR(LuDecomposition(t).determinant(), 6.0, 1e-12);
  const Matrix p{{0.0, 1.0}, {1.0, 0.0}};  // det = -1
  EXPECT_NEAR(LuDecomposition(p).determinant(), -1.0, 1e-12);
}

TEST(Lu, SingularMatrixThrows) {
  const Matrix s{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(LuDecomposition{s}, std::runtime_error);
}

TEST(Lu, NonSquareThrows) { EXPECT_THROW(LuDecomposition{Matrix(2, 3)}, std::invalid_argument); }

TEST(Lu, RhsSizeMismatchThrows) {
  LuDecomposition lu(Matrix::identity(3));
  EXPECT_THROW(lu.solve(Vector{1.0}), std::invalid_argument);
  EXPECT_THROW(lu.solve_left(Vector{1.0, 2.0}), std::invalid_argument);
}

TEST(Lu, ConvenienceWrappers) {
  const Matrix a{{3.0, 0.0}, {0.0, 2.0}};
  const Vector x = solve(a, {6.0, 4.0});
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_LT(inverse(a).max_abs_diff(Matrix{{1.0 / 3.0, 0.0}, {0.0, 0.5}}), 1e-12);
}

TEST(SolveStationary, TwoStateChain) {
  // Rates 1 <-> 2: q01 = 2, q10 = 1; stationary = (1/3, 2/3).
  const Matrix q{{-2.0, 2.0}, {1.0, -1.0}};
  const Vector pi = solve_stationary(q);
  EXPECT_NEAR(pi[0], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(pi[1], 2.0 / 3.0, 1e-12);
}

TEST(SolveStationary, RingChain) {
  // 0 -> 1 -> 2 -> 0 with unit rates: uniform stationary distribution.
  const Matrix q{{-1.0, 1.0, 0.0}, {0.0, -1.0, 1.0}, {1.0, 0.0, -1.0}};
  const Vector pi = solve_stationary(q);
  for (double v : pi) EXPECT_NEAR(v, 1.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace perfbg::linalg
