// Property tests for the structured linear-algebra kernels (src/linalg) and
// their integration with the QBD solver:
//  * tiled GEMM / gemm_add / gemm_sub against a naive triple loop over sizes
//    spanning the dense-tile threshold, including degenerate 0/1-dim shapes;
//  * CSR SparseMatrix and BandedMatrix products against the same reference,
//    including fully dense operands (the "no useful structure" fallback);
//  * detect_structure classification, both on synthetic profiles and on the
//    real A-blocks the chain builder assembles for every preset workload;
//  * the structured block-tridiagonal boundary solve against the dense
//    censored-generator path on real models;
//  * RSeedCache LRU semantics and R warm-starting end to end (seed reuse,
//    bad-seed fallback, health/metrics propagation).
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <memory>
#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/chain_builder.hpp"
#include "core/model.hpp"
#include "linalg/banded.hpp"
#include "linalg/gemm.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "linalg/structure.hpp"
#include "obs/metrics.hpp"
#include "qbd/qbd.hpp"
#include "qbd/solution.hpp"
#include "qbd/warm_start.hpp"
#include "workloads/presets.hpp"

namespace perfbg {
namespace {

using linalg::Matrix;
using linalg::Vector;

Matrix random_matrix(std::size_t rows, std::size_t cols, std::mt19937& rng,
                     double density = 1.0) {
  std::uniform_real_distribution<double> value(-1.0, 1.0);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j)
      if (coin(rng) < density) m(i, j) = value(rng);
  return m;
}

/// Unblocked triple-loop reference the kernels are tested against.
Matrix naive_multiply(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double av = a(i, k);
      if (av == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) c(i, j) += av * b(k, j);
    }
  return c;
}

void expect_near(const Matrix& got, const Matrix& want, double tol,
                 const std::string& what) {
  ASSERT_EQ(got.rows(), want.rows()) << what;
  ASSERT_EQ(got.cols(), want.cols()) << what;
  for (std::size_t i = 0; i < got.rows(); ++i)
    for (std::size_t j = 0; j < got.cols(); ++j)
      ASSERT_NEAR(got(i, j), want(i, j), tol)
          << what << " at (" << i << ", " << j << ")";
}

TEST(GemmProperty, MatchesNaiveAcrossSizes) {
  std::mt19937 rng(7);
  // Shapes below, at, and above the kGemmTileThreshold crossover, plus
  // rectangles that exercise every micro-kernel tail combination.
  const std::size_t sizes[] = {1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 32, 33, 47, 64};
  for (std::size_t m : sizes)
    for (std::size_t k : {m, (m * 2) % 37 + 1})
      for (std::size_t n : {m, (m + 5) % 29 + 1}) {
        const Matrix a = random_matrix(m, k, rng);
        const Matrix b = random_matrix(k, n, rng);
        expect_near(linalg::multiply(a, b), naive_multiply(a, b), 1e-12 * static_cast<double>(k + 1),
                    "multiply " + std::to_string(m) + "x" + std::to_string(k) +
                        "x" + std::to_string(n));
      }
}

TEST(GemmProperty, DegenerateShapes) {
  const Matrix empty;
  const Matrix r0(0, 4);
  const Matrix c0(4, 0);
  EXPECT_EQ(linalg::multiply(empty, empty).rows(), 0u);
  const Matrix rc = linalg::multiply(c0, r0);  // (4x0)*(0x4) = 4x4 zeros
  ASSERT_EQ(rc.rows(), 4u);
  ASSERT_EQ(rc.cols(), 4u);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(rc(i, j), 0.0);

  std::mt19937 rng(11);
  const Matrix one = random_matrix(1, 1, rng);
  const Matrix row = random_matrix(1, 64, rng);
  const Matrix col = random_matrix(64, 1, rng);
  expect_near(linalg::multiply(one, row), naive_multiply(one, row), 1e-12, "1x1 * 1x64");
  expect_near(linalg::multiply(row, col), naive_multiply(row, col), 1e-11, "1x64 * 64x1");
  expect_near(linalg::multiply(col, row), naive_multiply(col, row), 1e-12, "64x1 * 1x64");
}

TEST(GemmProperty, AddAndSubAccumulate) {
  std::mt19937 rng(13);
  for (std::size_t n : {1u, 3u, 16u, 33u, 64u}) {
    const Matrix a = random_matrix(n, n, rng);
    const Matrix b = random_matrix(n, n, rng);
    const Matrix c0 = random_matrix(n, n, rng);
    const Matrix prod = naive_multiply(a, b);

    Matrix c_add = c0;
    linalg::gemm_add(a, b, c_add);
    Matrix want_add = c0;
    want_add += prod;
    expect_near(c_add, want_add, 1e-11, "gemm_add n=" + std::to_string(n));

    Matrix c_sub = c0;
    linalg::gemm_sub(a, b, c_sub);
    Matrix want_sub = c0;
    want_sub -= prod;
    expect_near(c_sub, want_sub, 1e-11, "gemm_sub n=" + std::to_string(n));
  }
}

TEST(TransposeProperty, MatchesElementwise) {
  std::mt19937 rng(17);
  for (std::size_t m : {1u, 5u, 31u, 33u, 64u, 100u}) {
    const std::size_t n = (m * 3) % 41 + 1;
    const Matrix a = random_matrix(m, n, rng);
    const Matrix t = a.transposed();
    ASSERT_EQ(t.rows(), n);
    ASSERT_EQ(t.cols(), m);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j) ASSERT_EQ(t(j, i), a(i, j));
  }
}

TEST(KronProperty, MatchesDefinition) {
  std::mt19937 rng(19);
  const Matrix a = random_matrix(3, 4, rng);
  const Matrix b = random_matrix(5, 2, rng);
  const Matrix k = linalg::kron(a, b);
  ASSERT_EQ(k.rows(), 15u);
  ASSERT_EQ(k.cols(), 8u);
  for (std::size_t i = 0; i < k.rows(); ++i)
    for (std::size_t j = 0; j < k.cols(); ++j)
      ASSERT_EQ(k(i, j), a(i / 5, j / 2) * b(i % 5, j % 2));
}

TEST(SparseProperty, RoundTripAndProducts) {
  std::mt19937 rng(23);
  for (std::size_t n : {1u, 2u, 8u, 33u, 64u})
    for (double density : {0.05, 0.3, 1.0}) {  // 1.0: dense-operand fallback
      const Matrix dense = random_matrix(n, n, rng, density);
      const linalg::SparseMatrix s = linalg::SparseMatrix::from_dense(dense);
      expect_near(s.to_dense(), dense, 0.0, "csr round trip");

      const Matrix b = random_matrix(n, (n * 2) % 19 + 1, rng);
      expect_near(s.multiply_dense(b), naive_multiply(dense, b), 1e-12,
                  "spmm n=" + std::to_string(n));

      const Matrix a = random_matrix((n + 3) % 17 + 1, n, rng);
      expect_near(s.left_multiply_dense(a), naive_multiply(a, dense), 1e-12,
                  "left spmm n=" + std::to_string(n));

      Matrix acc = random_matrix(a.rows(), n, rng);
      Matrix want = acc;
      want += naive_multiply(a, dense);
      s.add_left_multiply(a, acc);
      expect_near(acc, want, 1e-12, "add_left_multiply n=" + std::to_string(n));
    }
}

TEST(BandedProperty, RoundTripAndProduct) {
  std::mt19937 rng(29);
  for (std::size_t n : {1u, 4u, 22u, 64u})
    for (std::size_t hw : {std::size_t{0}, std::size_t{1}, std::size_t{3}, n}) {
      Matrix dense(n, n);
      std::uniform_real_distribution<double> value(-1.0, 1.0);
      for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
          if ((i >= j ? i - j : j - i) <= hw) dense(i, j) = value(rng);
      const linalg::BandedMatrix band = linalg::BandedMatrix::from_dense(dense);
      EXPECT_LE(band.lower(), std::min(hw, n > 0 ? n - 1 : 0));
      expect_near(band.to_dense(), dense, 0.0, "band round trip");
      const Matrix b = random_matrix(n, n, rng);
      expect_near(band.multiply_dense(b), naive_multiply(dense, b), 1e-12,
                  "banded*dense n=" + std::to_string(n) + " hw=" + std::to_string(hw));
    }
}

TEST(BandedProperty, SetOutsideBandThrows) {
  linalg::BandedMatrix band(6, 1, 1);
  band.set(2, 3, 1.0);
  EXPECT_EQ(band.at(2, 3), 1.0);
  EXPECT_EQ(band.at(0, 5), 0.0);
  EXPECT_THROW(band.set(0, 5, 1.0), std::invalid_argument);
}

TEST(StructureDetect, ClassifiesSyntheticProfiles) {
  using linalg::StructureKind;
  EXPECT_EQ(linalg::detect_structure(Matrix(8, 8)).kind(), StructureKind::kEmpty);
  EXPECT_EQ(linalg::detect_structure(Matrix::identity(8)).kind(),
            StructureKind::kDiagonal);

  Matrix tridiag(32, 32);
  for (std::size_t i = 0; i < 32; ++i) {
    tridiag(i, i) = -2.0;
    if (i > 0) tridiag(i, i - 1) = 1.0;
    if (i + 1 < 32) tridiag(i, i + 1) = 1.0;
  }
  const linalg::StructureInfo tri = linalg::detect_structure(tridiag);
  EXPECT_EQ(tri.kind(), StructureKind::kBanded);
  EXPECT_EQ(tri.lower_bandwidth, 1u);
  EXPECT_EQ(tri.upper_bandwidth, 1u);
  EXPECT_EQ(tri.nnz, 32u + 31u + 31u);

  // Low density with a far-off-diagonal entry: CSR, not banded.
  Matrix scattered(32, 32);
  scattered(0, 31) = 1.0;
  scattered(31, 0) = 1.0;
  scattered(16, 16) = 1.0;
  EXPECT_EQ(linalg::detect_structure(scattered).kind(), StructureKind::kSparse);

  std::mt19937 rng(31);
  EXPECT_EQ(linalg::detect_structure(random_matrix(32, 32, rng)).kind(),
            StructureKind::kDense);
}

TEST(StructureDetect, RealABlocksAreStructured) {
  // One FG or BG event per transition keeps every workload's repeating
  // blocks far from dense; the kernels must see that structure.
  for (const auto& arrivals : workloads::trace_workloads()) {
    core::FgBgParams p{arrivals.scaled_to_utilization(0.5, workloads::kMeanServiceTimeMs)};
    p.bg_probability = 0.3;
    p.bg_buffer = 5;
    const core::FgBgLayout layout(p.bg_buffer, p.arrivals.phases());
    const qbd::QbdProcess q = core::build_fgbg_qbd(p, layout);
    for (const Matrix* block : {&q.a0, &q.a1, &q.a2}) {
      const linalg::StructureInfo info = linalg::detect_structure(*block);
      EXPECT_EQ(info.rows, q.level_size());
      EXPECT_EQ(info.cols, q.level_size());
      EXPECT_GT(info.nnz, 0u);
      EXPECT_LT(info.density(), 0.5)
          << "dense A-block for workload " << arrivals.name();
      EXPECT_NE(info.kind(), linalg::StructureKind::kDense)
          << "unrouted A-block for workload " << arrivals.name();
    }
  }
}

TEST(LuKernels, SolveLeftMatrixMatchesEquation) {
  std::mt19937 rng(37);
  for (std::size_t n : {1u, 5u, 22u, 64u}) {
    Matrix a = random_matrix(n, n, rng);
    for (std::size_t i = 0; i < n; ++i) a(i, i) += 4.0;  // well-conditioned
    const linalg::LuDecomposition lu(a);
    const Matrix b = random_matrix((n + 2) % 13 + 1, n, rng);
    const Matrix x = lu.solve_left(b);
    expect_near(naive_multiply(x, a), b, 1e-9, "solve_left n=" + std::to_string(n));
  }
}

TEST(LuKernels, NullTailVectorOnSingularGenerator) {
  // A CTMC generator is singular with a one-dimensional left null space; the
  // allow-singular-tail factorization of Q^T must recover the null direction.
  Matrix q{{-2.0, 1.5, 0.5}, {1.0, -3.0, 2.0}, {0.5, 0.5, -1.0}};
  linalg::LuOptions opts;
  opts.allow_singular_tail = true;
  const linalg::LuDecomposition lu(q.transposed(), opts);
  const Vector v = lu.null_tail_vector();
  ASSERT_EQ(v.size(), 3u);
  const Vector res = linalg::vec_mat(v, q);
  for (double r : res) EXPECT_NEAR(r, 0.0, 1e-12);
}

qbd::QbdProcess email_process(int bg_buffer, double util) {
  core::FgBgParams p{
      workloads::email().scaled_to_utilization(util, workloads::kMeanServiceTimeMs)};
  p.bg_probability = 0.3;
  p.bg_buffer = bg_buffer;
  const core::FgBgLayout layout(p.bg_buffer, p.arrivals.phases());
  return core::build_fgbg_qbd(p, layout);
}

TEST(StructuredBoundary, AgreesWithDensePath) {
  for (int bg_buffer : {2, 5, 10}) {
    const qbd::QbdProcess q = email_process(bg_buffer, 0.5);
    ASSERT_FALSE(q.boundary_level_offsets.empty());
    const qbd::QbdSolution structured(q);

    qbd::QbdProcess stripped = q;
    stripped.boundary_level_offsets.clear();  // forces the dense fallback
    const qbd::QbdSolution dense(stripped);

    ASSERT_EQ(structured.boundary().size(), dense.boundary().size());
    for (std::size_t i = 0; i < structured.boundary().size(); ++i)
      EXPECT_NEAR(structured.boundary()[i], dense.boundary()[i], 1e-9)
          << "X=" << bg_buffer << " boundary state " << i;
    for (std::size_t i = 0; i < structured.first_repeating().size(); ++i)
      EXPECT_NEAR(structured.first_repeating()[i], dense.first_repeating()[i], 1e-9)
          << "X=" << bg_buffer << " repeating state " << i;
  }
}

TEST(RSeedCacheTest, HitMissAndCounters) {
  qbd::RSeedCache cache(4);
  EXPECT_EQ(cache.get("a"), nullptr);
  EXPECT_EQ(cache.misses(), 1u);
  cache.put("a", Matrix::identity(3), 12);
  EXPECT_EQ(cache.stores(), 1u);
  const auto hit = cache.get("a");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->iterations, 12);
  EXPECT_EQ(hit->r.rows(), 3u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(RSeedCacheTest, LruEvictionKeepsRecentlyUsed) {
  qbd::RSeedCache cache(2);
  cache.put("a", Matrix::identity(1), 1);
  cache.put("b", Matrix::identity(2), 2);
  ASSERT_NE(cache.get("a"), nullptr);  // touch: "b" is now least recent
  cache.put("c", Matrix::identity(3), 3);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.get("a"), nullptr);
  EXPECT_EQ(cache.get("b"), nullptr);
  EXPECT_NE(cache.get("c"), nullptr);
}

TEST(RSeedCacheTest, EvictedSeedStaysValidWhileHeld) {
  qbd::RSeedCache cache(1);
  cache.put("a", Matrix::identity(5), 7);
  const auto held = cache.get("a");
  cache.put("b", Matrix::identity(2), 2);  // evicts "a"
  EXPECT_EQ(cache.get("a"), nullptr);
  ASSERT_NE(held, nullptr);
  EXPECT_EQ(held->r.rows(), 5u);  // shared_ptr keeps the evicted seed alive
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(held->iterations, 7);
}

TEST(WarmStart, SeededRepeatSolveIsUsedAndAgrees) {
  const qbd::QbdProcess q = email_process(5, 0.5);
  const qbd::QbdSolution cold(q);
  EXPECT_FALSE(cold.solver_stats().warm_start_used);

  qbd::RSolverOptions opts;
  opts.warm_start = std::make_shared<qbd::RWarmStart>(
      qbd::RWarmStart{cold.r_matrix(), cold.solver_stats().iterations});
  obs::MetricsRegistry metrics;
  const qbd::QbdSolution warm(q, opts, &metrics);

  EXPECT_TRUE(warm.solver_stats().warm_start_used);
  EXPECT_GE(warm.solver_stats().warm_start_iterations_saved, 0);
  EXPECT_LT(warm.solver_stats().iterations, cold.solver_stats().iterations);
  EXPECT_EQ(metrics.counter("qbd.solve.warm_start_used"), 1u);
  EXPECT_NEAR(warm.r_matrix().max_abs_diff(cold.r_matrix()), 0.0, 1e-8);
  for (std::size_t i = 0; i < cold.boundary().size(); ++i)
    EXPECT_NEAR(warm.boundary()[i], cold.boundary()[i], 1e-9);
}

TEST(WarmStart, BadSeedFallsBackCold) {
  const qbd::QbdProcess q = email_process(5, 0.5);
  const qbd::QbdSolution cold(q);

  // A junk seed of the right shape: refinement cannot converge, so the solve
  // must quietly run the cold ladder and still produce the right answer.
  Matrix junk(q.level_size(), q.level_size(), 0.0);
  for (std::size_t i = 0; i < junk.rows(); ++i) junk(i, i) = 0.99;
  qbd::RSolverOptions opts;
  opts.warm_start =
      std::make_shared<qbd::RWarmStart>(qbd::RWarmStart{std::move(junk), 50});
  const qbd::QbdSolution solved(q, opts);

  EXPECT_FALSE(solved.solver_stats().warm_start_used);
  EXPECT_EQ(solved.solver_stats().warm_start_iterations_saved, 0);
  EXPECT_NEAR(solved.r_matrix().max_abs_diff(cold.r_matrix()), 0.0, 1e-8);
}

TEST(WarmStart, MismatchedShapeSeedIsIgnored) {
  const qbd::QbdProcess q = email_process(5, 0.5);
  qbd::RSolverOptions opts;
  opts.warm_start = std::make_shared<qbd::RWarmStart>(
      qbd::RWarmStart{Matrix::identity(3), 10});  // wrong dimension
  const qbd::QbdSolution solved(q, opts);
  EXPECT_FALSE(solved.solver_stats().warm_start_used);
}

TEST(WarmStart, HealthRecordCarriesWarmFields) {
  core::FgBgParams p{
      workloads::email().scaled_to_utilization(0.5, workloads::kMeanServiceTimeMs)};
  p.bg_probability = 0.3;
  p.bg_buffer = 5;
  const core::FgBgModel model(p);
  const core::FgBgSolution cold = model.solve();
  EXPECT_FALSE(cold.health().warm_start_used);

  qbd::RSolverOptions opts;
  opts.warm_start = std::make_shared<qbd::RWarmStart>(qbd::RWarmStart{
      cold.qbd().r_matrix(), cold.qbd().solver_stats().iterations});
  const core::FgBgSolution warm = model.solve(opts);
  EXPECT_TRUE(warm.health().warm_start_used);
  EXPECT_EQ(warm.health().warm_start_iterations_saved,
            warm.qbd().solver_stats().warm_start_iterations_saved);
  EXPECT_NEAR(warm.metrics().fg_queue_length, cold.metrics().fg_queue_length,
              1e-8 * (1.0 + std::abs(cold.metrics().fg_queue_length)));
}

}  // namespace
}  // namespace perfbg
