// Randomized validation sweep: draw random (but valid and stable) model
// configurations — arrival process, service and idle-wait distributions,
// buffer, p — and check that
//   (a) the QBD solution satisfies every conservation law, and
//   (b) it agrees with the independently-assembled truncated-chain oracle.
// Seeds are fixed, so failures reproduce deterministically.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <random>

#include "core/model.hpp"
#include "core/truncated_chain.hpp"
#include "traffic/processes.hpp"
#include "util/error.hpp"

namespace perfbg::core {
namespace {

FgBgParams random_params(std::mt19937_64& rng) {
  std::uniform_real_distribution<double> u(0.0, 1.0);

  // Arrival process: Poisson, MMPP2, or IPP, at a random sub-critical load.
  const double util = 0.05 + 0.5 * u(rng);
  const double rate = util / 6.0;
  traffic::MarkovianArrivalProcess arrivals = traffic::poisson(rate);
  const int arrival_kind = static_cast<int>(3.0 * u(rng));
  if (arrival_kind == 1) {
    const double l1 = rate * (2.0 + 8.0 * u(rng));
    const double l2 = rate * (0.05 + 0.4 * u(rng));
    const double v1 = rate * (0.01 + 0.2 * u(rng));
    const double v2 = rate * (0.01 + 0.2 * u(rng));
    arrivals = traffic::mmpp2(v1, v2, l1, l2).scaled_to_rate(rate);
  } else if (arrival_kind == 2) {
    arrivals = traffic::ipp(rate * 5.0, 0.08 * rate, 0.02 * rate).scaled_to_rate(rate);
  }

  FgBgParams params{arrivals};
  params.bg_probability = 0.05 + 0.9 * u(rng);
  params.bg_buffer = 1 + static_cast<int>(3.0 * u(rng));
  params.idle_wait_intensity = 0.25 + 2.0 * u(rng);

  const int service_kind = static_cast<int>(3.0 * u(rng));
  if (service_kind == 1)
    params.service_distribution = traffic::PhaseType::erlang(2, 6.0);
  else if (service_kind == 2)
    params.service_distribution =
        traffic::PhaseType::hyperexponential(0.3, 2.0, 6.0 + 10.0 * u(rng));
  if (params.service_distribution) {
    // Keep the offered load sub-critical after the service mean changed.
    params.service_distribution =
        params.service_distribution->scaled_to_mean(6.0);
  }

  if (u(rng) < 0.4) params.idle_wait_distribution = traffic::PhaseType::erlang(2, 9.0);
  return params;
}

class RandomSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomSweep, InvariantsAndOracleAgreement) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 7919u + 13u);
  const FgBgParams params = random_params(rng);
  SCOPED_TRACE("load " + std::to_string(params.fg_offered_load()) + " p " +
               std::to_string(params.bg_probability) + " X " +
               std::to_string(params.bg_buffer) + " svc " +
               params.effective_service().name() + " wait " +
               params.effective_idle_wait().name());

  const FgBgSolution sol = FgBgModel(params).solve();
  const FgBgMetrics& m = sol.metrics();

  // Conservation laws.
  EXPECT_NEAR(m.probability_mass, 1.0, 1e-7);
  EXPECT_NEAR(m.fg_throughput, params.arrivals.mean_rate(),
              1e-7 * params.arrivals.mean_rate());
  EXPECT_NEAR(m.bg_accept_rate, m.bg_throughput, 1e-8);
  EXPECT_NEAR(m.busy_fraction + m.idle_fraction, 1.0, 1e-7);
  EXPECT_GE(m.bg_completion, -1e-12);
  EXPECT_LE(m.bg_completion, 1.0 + 1e-12);
  EXPECT_LE(m.bg_queue_length, params.bg_buffer + 1e-9);

  // Oracle agreement, with the truncation depth chosen from the tail decay
  // rate sp(R): the neglected mass is ~ sp(R)^depth. Very bursty draws would
  // need a chain too large for a dense direct solve; for those the
  // invariants above are the check and the oracle step is skipped.
  const double decay = sol.tail_decay_rate();
  const int depth_needed =
      static_cast<int>(std::ceil(std::log(1e-9) / std::log(std::min(decay, 0.999)))) + 10;
  const int depth_affordable = static_cast<int>(
      2500 / sol.layout().repeating_flat_size());
  if (depth_needed > depth_affordable) {
    GTEST_SKIP() << "tail decay " << decay << " needs depth " << depth_needed
                 << ", affordable " << depth_affordable;
  }
  const TruncatedFgBgChain chain(params, depth_needed);
  const linalg::Vector pi = chain.stationary();
  ASSERT_LT(chain.top_level_mass(pi), 1e-7);
  EXPECT_NEAR(chain.mean_fg_jobs(pi), m.fg_queue_length,
              1e-5 * std::max(1.0, m.fg_queue_length));
  EXPECT_NEAR(chain.mean_bg_jobs(pi), m.bg_queue_length, 1e-5);
  EXPECT_NEAR(chain.bg_completion_rate(pi), m.bg_throughput, 1e-7);
  EXPECT_NEAR(chain.bg_drop_rate(pi), m.bg_drop_rate, 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSweep, ::testing::Range(0, 24));

// --- boundary sweep: rho -> 1^- must still solve, rho >= 1 must fail fast ---

FgBgParams boundary_params(std::mt19937_64& rng, double util) {
  std::uniform_real_distribution<double> u(0.0, 1.0);
  const double rate = util / 6.0;
  traffic::MarkovianArrivalProcess arrivals = traffic::poisson(rate);
  if (u(rng) < 0.5) {
    const double l1 = rate * (2.0 + 6.0 * u(rng));
    const double l2 = rate * (0.1 + 0.4 * u(rng));
    const double v1 = rate * (0.02 + 0.2 * u(rng));
    const double v2 = rate * (0.02 + 0.2 * u(rng));
    arrivals = traffic::mmpp2(v1, v2, l1, l2).scaled_to_rate(rate);
  }
  FgBgParams params{arrivals};
  params.bg_probability = 0.1 + 0.8 * u(rng);
  params.bg_buffer = 1 + static_cast<int>(3.0 * u(rng));
  return params;
}

class BoundarySweep : public ::testing::TestWithParam<int> {};

TEST_P(BoundarySweep, NearCriticalLoadsStillSolve) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 104729u + 5u);
  std::uniform_real_distribution<double> u(0.97, 0.995);
  const FgBgParams params = boundary_params(rng, u(rng));
  SCOPED_TRACE("load " + std::to_string(params.fg_offered_load()));
  const FgBgSolution sol = FgBgModel(params).solve();
  // Near saturation the geometric sums are ill-conditioned; the invariants
  // must still hold, just at a looser tolerance than the bulk sweep above.
  EXPECT_NEAR(sol.metrics().probability_mass, 1.0, 1e-5);
  EXPECT_GT(sol.metrics().fg_queue_length, 1.0);
  EXPECT_LT(sol.tail_decay_rate(), 1.0);
}

TEST_P(BoundarySweep, PastSaturationFailsFastWithTypedUnstableError) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 15485863u + 3u);
  std::uniform_real_distribution<double> u(1.0, 1.35);
  const double util = u(rng);
  const FgBgParams params = boundary_params(rng, util);
  SCOPED_TRACE("load " + std::to_string(params.fg_offered_load()));
  const auto t0 = std::chrono::steady_clock::now();
  try {
    FgBgModel(params).solve();
    FAIL() << "an unstable configuration solved";
  } catch (const Error& e) {
    // Typed, with the measured drift ratio — never a max_iters hang.
    EXPECT_EQ(e.code(), ErrorCode::kUnstableQbd);
    ASSERT_TRUE(e.context().has_drift_ratio());
    EXPECT_NEAR(e.context().drift_ratio, util, 0.05);
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  EXPECT_LT(seconds, 2.0);  // preflight fails in microseconds; bound is sanitizer-safe
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundarySweep, ::testing::Range(0, 8));

}  // namespace
}  // namespace perfbg::core
