// Tests for the resilient sweep runner (DESIGN.md §11): deterministic
// ordering at any parallelism, cooperative per-point deadlines reaching the
// qbd iteration loops, retry with ladder-resume, the checkpoint journal
// (including torn-line crash recovery), interrupt/drain/resume, and — when
// PERFBG_BENCH_SUITE_BINARY is defined — an end-to-end SIGKILL + --resume
// round trip through the real bench_suite binary.
#include "runner/sweep_runner.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fault_injection.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "qbd/rmatrix.hpp"
#include "runner/journal.hpp"
#include "util/error.hpp"

#if defined(PERFBG_BENCH_SUITE_BINARY)
#include <csignal>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace perfbg {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "perfbg_runner_" + name;
}

/// Sleeps, then returns {"i": index} — a cheap point with a tunable duration.
runner::PointFn sleepy_point(double ms) {
  return [ms](runner::PointContext& ctx) {
    if (ms > 0.0)
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(ms));
    obs::JsonValue v = obs::JsonValue::object();
    v.set("i", obs::JsonValue(static_cast<std::int64_t>(ctx.index())));
    return v;
  };
}

/// A real qbd solve (the fault suite's reference FG/BG chain) at a
/// per-index utilization; payload carries the solver's outputs so parallel
/// and sequential runs can be compared bit-for-bit.
obs::JsonValue solve_reference_point(runner::PointContext& ctx, double utilization) {
  const qbd::QbdProcess p = perfbg::testing::reference_qbd(utilization);
  qbd::RSolverOptions opts;
  opts.cancel = &ctx.token();
  opts.start_rung = ctx.attempt() - 1;
  qbd::RSolverStats stats;
  const qbd::Matrix r = qbd::solve_r(p.a0, p.a1, p.a2, opts, &stats);
  obs::JsonValue v = obs::JsonValue::object();
  v.set("iterations", obs::JsonValue(stats.iterations));
  v.set("r00", obs::JsonValue(r(0, 0)));
  v.set("residual",
        obs::JsonValue(qbd::r_equation_residual(r, p.a0, p.a1, p.a2)));
  return v;
}

class RunnerTest : public ::testing::Test {
 protected:
  void SetUp() override { runner::clear_interrupt(); }
  void TearDown() override { runner::clear_interrupt(); }
};

TEST_F(RunnerTest, EmitsInSubmissionOrderAtHighParallelism) {
  runner::RunnerOptions options;
  options.jobs = 8;
  runner::SweepRunner sweep(options);
  const int n = 32;
  // Early points sleep longest, so completion order is roughly the reverse
  // of submission order — the emission buffer has to do real reordering.
  for (int i = 0; i < n; ++i)
    sweep.add("p" + std::to_string(i), sleepy_point(2.0 * (n - i) / n));
  std::vector<std::string> emitted;
  const runner::SweepResult result =
      sweep.run([&emitted](const runner::PointOutcome& out) {
        emitted.push_back(out.key);
      });
  ASSERT_EQ(result.outcomes.size(), static_cast<std::size_t>(n));
  ASSERT_EQ(emitted.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(emitted[i], "p" + std::to_string(i));
    EXPECT_EQ(result.outcomes[i].index, static_cast<std::size_t>(i));
    ASSERT_TRUE(result.outcomes[i].ok());
    EXPECT_EQ(result.outcomes[i].payload.at("i").as_int(), i);
  }
  EXPECT_FALSE(result.interrupted);
  EXPECT_EQ(result.completed, static_cast<std::size_t>(n));
  EXPECT_EQ(result.exit_code(), 0);
}

// The TSan concurrency test: real solver work on 8 workers, output compared
// bit-for-bit against a sequential run of the same sweep.
TEST_F(RunnerTest, ParallelOutputMatchesSequential) {
  const std::vector<double> utils{0.05, 0.1, 0.15, 0.2, 0.25, 0.3,
                                  0.35, 0.4, 0.45, 0.5, 0.55, 0.6};
  auto run_with_jobs = [&utils](int jobs) {
    runner::RunnerOptions options;
    options.jobs = jobs;
    runner::SweepRunner sweep(options);
    for (std::size_t i = 0; i < utils.size(); ++i) {
      const double u = utils[i];
      sweep.add("u" + std::to_string(i), [u](runner::PointContext& ctx) {
        return solve_reference_point(ctx, u);
      });
    }
    std::vector<std::string> dumps;
    for (const runner::PointOutcome& out : sweep.run().outcomes) {
      EXPECT_TRUE(out.ok()) << out.error_message;
      dumps.push_back(out.payload.dump());
    }
    return dumps;
  };
  const std::vector<std::string> sequential = run_with_jobs(1);
  const std::vector<std::string> parallel = run_with_jobs(8);
  ASSERT_EQ(sequential.size(), parallel.size());
  for (std::size_t i = 0; i < sequential.size(); ++i)
    EXPECT_EQ(sequential[i], parallel[i]) << "point " << i;
}

// A wedged point (tolerance 0 never satisfies the solver's strict-< stop
// test, so only the token can end the loop) is cut by --point-timeout-ms;
// the other points complete and the sweep exits nonzero without hanging.
TEST_F(RunnerTest, DeadlineCutsWedgedPointOthersComplete) {
  runner::RunnerOptions options;
  options.jobs = 2;
  options.point_timeout_ms = 150.0;
  runner::SweepRunner sweep(options);
  sweep.add("ok-before", sleepy_point(1.0));
  sweep.add("wedged", [](runner::PointContext& ctx) {
    const qbd::QbdProcess p = perfbg::testing::reference_qbd(0.4);
    qbd::RSolverOptions opts;
    opts.tolerance = 0.0;  // unreachable: the iteration never stops on its own
    opts.max_iters = std::numeric_limits<int>::max();
    opts.enable_fallback = false;
    opts.cancel = &ctx.token();
    qbd::solve_r(p.a0, p.a1, p.a2, opts);
    return obs::JsonValue::object();
  });
  sweep.add("ok-after", sleepy_point(1.0));
  const runner::SweepResult result = sweep.run();
  ASSERT_EQ(result.outcomes.size(), 3u);
  EXPECT_TRUE(result.outcomes[0].ok());
  EXPECT_EQ(result.outcomes[1].error_code, "kDeadlineExceeded");
  EXPECT_TRUE(result.outcomes[2].ok());
  EXPECT_EQ(result.failed, 1u);
  EXPECT_FALSE(result.interrupted);
  EXPECT_EQ(result.exit_code(), 1);
}

// The cancellation hook inside the qbd loops: an already-expired deadline
// aborts the solve promptly with kDeadlineExceeded, and the fallback ladder
// propagates it instead of descending to the next rung.
TEST_F(RunnerTest, ExpiredDeadlineAbortsSolveThroughLadder) {
  CancellationToken token;
  // A budget <= 0 disarms by contract, so arm an already-elapsed deadline.
  token.set_deadline(std::chrono::steady_clock::now() - std::chrono::milliseconds(1));
  const qbd::QbdProcess p = perfbg::testing::reference_qbd(0.4);
  qbd::RSolverOptions opts;
  opts.cancel = &token;  // fallback stays enabled: the ladder must not retry
  qbd::RSolverStats stats;
  try {
    qbd::solve_r(p.a0, p.a1, p.a2, opts, &stats);
    FAIL() << "expected kDeadlineExceeded";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kDeadlineExceeded);
  }
  EXPECT_EQ(stats.outcome.rungs_attempted, 1);
}

TEST_F(RunnerTest, RetryRecoversOnSecondAttemptAndCountsIt) {
  obs::MetricsRegistry metrics;
  runner::RunnerOptions options;
  options.max_attempts = 3;
  options.backoff_base_ms = 1.0;
  options.metrics = &metrics;
  runner::SweepRunner sweep(options);
  std::atomic<int> calls{0};
  sweep.add("flaky", [&calls](runner::PointContext& ctx) {
    calls.fetch_add(1);
    if (ctx.attempt() == 1)
      throw Error(ErrorCode::kNonConvergence, "transient failure for the test");
    EXPECT_EQ(ctx.attempt(), 2);
    obs::JsonValue v = obs::JsonValue::object();
    v.set("attempt", obs::JsonValue(ctx.attempt()));
    return v;
  });
  const runner::SweepResult result = sweep.run();
  ASSERT_TRUE(result.outcomes[0].ok()) << result.outcomes[0].error_message;
  EXPECT_EQ(result.outcomes[0].attempts, 2);
  EXPECT_EQ(calls.load(), 2);
  EXPECT_EQ(metrics.counter("runner.retry.attempts"), 1);
  EXPECT_EQ(metrics.counter("runner.retry.recovered"), 1);
  EXPECT_EQ(result.exit_code(), 0);
}

TEST_F(RunnerTest, NonRetryableCodeFailsWithoutRetry) {
  runner::RunnerOptions options;
  options.max_attempts = 3;
  runner::SweepRunner sweep(options);
  std::atomic<int> calls{0};
  sweep.add("invalid", [&calls](runner::PointContext&) -> obs::JsonValue {
    calls.fetch_add(1);
    throw Error(ErrorCode::kInvalidModel, "structurally broken for the test");
  });
  const runner::SweepResult result = sweep.run();
  EXPECT_EQ(result.outcomes[0].error_code, "kInvalidModel");
  EXPECT_EQ(result.outcomes[0].attempts, 1);
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(result.exit_code(), 1);
}

TEST_F(RunnerTest, UntypedExceptionRecordedAsUnclassified) {
  runner::SweepRunner sweep({});
  sweep.add("boom", [](runner::PointContext&) -> obs::JsonValue {
    throw std::runtime_error("not a perfbg::Error");
  });
  const runner::SweepResult result = sweep.run();
  EXPECT_EQ(result.outcomes[0].error_code, "kUnclassified");
  EXPECT_EQ(result.outcomes[0].error_message, "not a perfbg::Error");
}

TEST_F(RunnerTest, SpeedupAndJobsGaugesRecorded) {
  obs::MetricsRegistry metrics;
  runner::RunnerOptions options;
  options.jobs = 4;
  options.metrics = &metrics;
  runner::SweepRunner sweep(options);
  for (int i = 0; i < 8; ++i) sweep.add("s" + std::to_string(i), sleepy_point(5.0));
  sweep.run();
  EXPECT_DOUBLE_EQ(metrics.gauge("runner.jobs"), 4.0);
  // 8 x 5 ms of compute on 4 workers: the measured speedup must at least
  // clear 1x by a safe margin (it is ~4 minus scheduling noise).
  EXPECT_GT(metrics.gauge("runner.speedup"), 1.2);
  EXPECT_EQ(metrics.counter("runner.points.ok"), 8);
}

// Interrupt mid-sweep, then resume from the journal: the merged outcome
// payloads are byte-identical to an uninterrupted run of the same sweep.
TEST_F(RunnerTest, InterruptDrainsThenJournalResumeMatchesCleanRun) {
  const std::string journal_path = temp_path("interrupt.journal");
  std::remove(journal_path.c_str());
  const int n = 12;
  auto add_points = [n](runner::SweepRunner& sweep, std::atomic<int>* solves,
                        int interrupt_at) {
    for (int i = 0; i < n; ++i) {
      const double u = 0.05 + 0.04 * i;
      sweep.add("u" + std::to_string(i),
                [u, i, solves, interrupt_at](runner::PointContext& ctx) {
                  if (solves) solves->fetch_add(1);
                  // A deterministic "crash": one point requests the same
                  // drain a SIGINT would, after its own solve finished.
                  obs::JsonValue v = solve_reference_point(ctx, u);
                  if (i == interrupt_at) runner::request_interrupt();
                  return v;
                });
    }
  };

  // Reference: the same sweep, uninterrupted and unjournaled.
  std::vector<std::string> reference;
  {
    runner::SweepRunner sweep({});
    add_points(sweep, nullptr, -1);
    for (const runner::PointOutcome& out : sweep.run().outcomes)
      reference.push_back(out.payload.dump());
  }

  // Pass 1: journaled, interrupted after point 4 completes.
  std::size_t first_pass_completed = 0;
  {
    runner::JournalWriter writer(journal_path, "test_sweep");
    runner::RunnerOptions options;
    options.jobs = 2;
    options.journal = &writer;
    runner::SweepRunner sweep(options);
    add_points(sweep, nullptr, 4);
    const runner::SweepResult result = sweep.run();
    EXPECT_TRUE(result.interrupted);
    EXPECT_EQ(result.exit_code(), 9);
    first_pass_completed = result.completed;
    EXPECT_LT(first_pass_completed, static_cast<std::size_t>(n));
    EXPECT_GE(first_pass_completed, 5u);  // points 0..4 at least
    // Unrun points are marked, not silently dropped.
    std::size_t unrun = 0;
    for (const runner::PointOutcome& out : result.outcomes)
      if (out.error_code == "kInterrupted") {
        ++unrun;
        EXPECT_EQ(out.attempts, 0);
      }
    EXPECT_EQ(unrun, n - first_pass_completed);
  }
  runner::clear_interrupt();

  // Pass 2: resume. Journaled points replay without re-solving.
  std::atomic<int> resumed_solves{0};
  {
    const runner::JournalIndex index =
        runner::JournalIndex::load(journal_path, "test_sweep");
    EXPECT_EQ(index.size(), first_pass_completed);
    runner::JournalWriter writer(journal_path, "test_sweep");
    runner::RunnerOptions options;
    options.jobs = 2;
    options.journal = &writer;
    options.resume = &index;
    runner::SweepRunner sweep(options);
    add_points(sweep, &resumed_solves, -1);
    const runner::SweepResult result = sweep.run();
    EXPECT_FALSE(result.interrupted);
    EXPECT_EQ(result.exit_code(), 0);
    EXPECT_EQ(result.resumed, first_pass_completed);
    EXPECT_EQ(resumed_solves.load(),
              static_cast<int>(n - first_pass_completed));
    ASSERT_EQ(result.outcomes.size(), reference.size());
    for (std::size_t i = 0; i < reference.size(); ++i)
      EXPECT_EQ(result.outcomes[i].payload.dump(), reference[i])
          << "point " << i << " diverged across interrupt+resume";
  }
  std::remove(journal_path.c_str());
}

TEST_F(RunnerTest, ResumeReplaysEverythingWithoutRecomputing) {
  const std::string journal_path = temp_path("replay.journal");
  std::remove(journal_path.c_str());
  std::atomic<int> solves{0};
  auto add_points = [&solves](runner::SweepRunner& sweep) {
    for (int i = 0; i < 5; ++i)
      sweep.add("k" + std::to_string(i), [i, &solves](runner::PointContext&) {
        solves.fetch_add(1);
        obs::JsonValue v = obs::JsonValue::object();
        v.set("value", obs::JsonValue(i * 1.5));
        return v;
      });
  };
  {
    runner::JournalWriter writer(journal_path, "replay_sweep");
    runner::RunnerOptions options;
    options.journal = &writer;
    runner::SweepRunner sweep(options);
    add_points(sweep);
    EXPECT_EQ(sweep.run().failed, 0u);
  }
  EXPECT_EQ(solves.load(), 5);
  {
    const runner::JournalIndex index =
        runner::JournalIndex::load(journal_path, "replay_sweep");
    runner::RunnerOptions options;
    options.resume = &index;
    runner::SweepRunner sweep(options);
    add_points(sweep);
    const runner::SweepResult result = sweep.run();
    EXPECT_EQ(solves.load(), 5) << "resume must not re-solve journaled points";
    EXPECT_EQ(result.resumed, 5u);
    for (const runner::PointOutcome& out : result.outcomes) {
      EXPECT_TRUE(out.resumed);
      EXPECT_TRUE(out.ok());
    }
  }
  std::remove(journal_path.c_str());
}

TEST_F(RunnerTest, JournalToleratesTornTrailingLine) {
  const std::string path = temp_path("torn.journal");
  {
    runner::JournalWriter writer(path, "torn_sweep");
    runner::JournalRecord record;
    record.key = "good";
    record.payload = obs::JsonValue(1.0);
    writer.append(record);
  }
  {
    // Simulate a crash mid-append: half a JSON object, no newline.
    std::ofstream out(path, std::ios::app);
    out << "{\"hash\": \"0x123\", \"key\": \"to";
  }
  const runner::JournalIndex index = runner::JournalIndex::load(path);
  EXPECT_EQ(index.size(), 1u);
  EXPECT_NE(index.find("good"), nullptr);
  EXPECT_EQ(index.find("torn"), nullptr);
  std::remove(path.c_str());
}

TEST_F(RunnerTest, JournalRejectsWrongSweepId) {
  const std::string path = temp_path("wrong_id.journal");
  { runner::JournalWriter writer(path, "sweep_a"); }
  EXPECT_NO_THROW(runner::JournalIndex::load(path, "sweep_a"));
  EXPECT_THROW(runner::JournalIndex::load(path, "sweep_b"), std::invalid_argument);
  EXPECT_THROW(runner::JournalIndex::load(temp_path("missing.journal")),
               std::invalid_argument);
  std::remove(path.c_str());
}

TEST_F(RunnerTest, JournalRecordRoundTripsBothForms) {
  runner::JournalRecord ok;
  ok.key = "point|u=0.15";
  obs::JsonValue payload = obs::JsonValue::object();
  payload.set("fg_queue_length", obs::JsonValue(0.123456789012345));
  ok.payload = payload;
  ok.attempts = 2;
  ok.wall_ms = 1.5;
  const runner::JournalRecord ok2 =
      runner::JournalRecord::from_json(obs::parse_json(ok.to_json().dump()));
  EXPECT_TRUE(ok2.ok());
  EXPECT_EQ(ok2.key, ok.key);
  EXPECT_EQ(ok2.attempts, 2);
  EXPECT_EQ(ok2.payload.dump(), ok.payload.dump());

  runner::JournalRecord bad;
  bad.key = "point|u=0.9";
  bad.error_code = "kNonConvergence";
  bad.error_message = "every rung failed";
  const runner::JournalRecord bad2 =
      runner::JournalRecord::from_json(obs::parse_json(bad.to_json().dump()));
  EXPECT_FALSE(bad2.ok());
  EXPECT_EQ(bad2.error_code, "kNonConvergence");
  EXPECT_EQ(bad2.error_message, "every rung failed");
}

TEST_F(RunnerTest, FailedPointsAreJournaledAndReplayedAsFailures) {
  const std::string path = temp_path("failures.journal");
  std::remove(path.c_str());
  {
    runner::JournalWriter writer(path, "fail_sweep");
    runner::RunnerOptions options;
    options.journal = &writer;
    runner::SweepRunner sweep(options);
    sweep.add("bad", [](runner::PointContext&) -> obs::JsonValue {
      throw Error(ErrorCode::kUnstableQbd, "drift >= 1 for the test");
    });
    EXPECT_EQ(sweep.run().failed, 1u);
  }
  const runner::JournalIndex index = runner::JournalIndex::load(path, "fail_sweep");
  ASSERT_NE(index.find("bad"), nullptr);
  EXPECT_EQ(index.find("bad")->error_code, "kUnstableQbd");
  {
    runner::RunnerOptions options;
    options.resume = &index;
    runner::SweepRunner sweep(options);
    std::atomic<int> calls{0};
    sweep.add("bad", [&calls](runner::PointContext&) {
      calls.fetch_add(1);
      return obs::JsonValue::object();
    });
    const runner::SweepResult result = sweep.run();
    EXPECT_EQ(calls.load(), 0) << "a journaled failure must not re-run";
    EXPECT_EQ(result.outcomes[0].error_code, "kUnstableQbd");
    EXPECT_TRUE(result.outcomes[0].resumed);
    EXPECT_EQ(result.exit_code(), 1);
  }
  std::remove(path.c_str());
}

#if defined(PERFBG_BENCH_SUITE_BINARY)

/// Reads the journal and counts completed-point records (lines with a key).
std::size_t journal_record_count(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  std::size_t count = 0;
  while (std::getline(in, line))
    if (line.find("\"key\"") != std::string::npos) ++count;
  return count;
}

/// Launches bench_suite with the given extra args; returns the child pid.
pid_t spawn_bench_suite(const std::vector<std::string>& extra) {
  std::vector<std::string> args{PERFBG_BENCH_SUITE_BINARY, "--quick"};
  args.insert(args.end(), extra.begin(), extra.end());
  const pid_t pid = fork();
  if (pid == 0) {
    std::vector<char*> argv;
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    // Quiet the child's stdout so test output stays readable.
    std::freopen("/dev/null", "w", stdout);
    execv(argv[0], argv.data());
    _exit(127);
  }
  return pid;
}

int run_bench_suite(const std::vector<std::string>& extra) {
  const pid_t pid = spawn_bench_suite(extra);
  int status = 0;
  waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// SIGKILL the suite mid-sweep, resume from the journal, and check the
/// resumed baseline agrees exactly (non-timing fields) with a clean run.
TEST_F(RunnerTest, EndToEndSigkillThenResumeReproducesBaseline) {
  const std::string journal = temp_path("e2e.journal");
  const std::string resumed_out = temp_path("e2e_resumed.json");
  const std::string clean_out = temp_path("e2e_clean.json");
  std::remove(journal.c_str());

  // Phase 1: slow the points down so the kill lands mid-sweep, then SIGKILL
  // once the journal proves at least 3 points were checkpointed.
  const pid_t pid = spawn_bench_suite(
      {"--point-sleep-ms=40", "--journal=" + journal, "--out=" + resumed_out});
  ASSERT_GT(pid, 0);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (journal_record_count(journal) < 3) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "journal never reached 3 records";
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, WNOHANG), 0) << "bench_suite exited early";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  kill(pid, SIGKILL);
  int status = 0;
  waitpid(pid, &status, 0);
  ASSERT_TRUE(WIFSIGNALED(status));
  const std::size_t checkpointed = journal_record_count(journal);
  ASSERT_GE(checkpointed, 3u);
  ASSERT_LT(checkpointed, 18u) << "the kill landed after the sweep finished";

  // Phase 2: resume to completion, and a clean run for reference.
  ASSERT_EQ(run_bench_suite({"--resume=" + journal, "--out=" + resumed_out}), 0);
  ASSERT_EQ(run_bench_suite({"--out=" + clean_out}), 0);

  auto load = [](const std::string& path) {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return obs::parse_json(ss.str());
  };
  const obs::JsonValue resumed = load(resumed_out);
  const obs::JsonValue clean = load(clean_out);
  const obs::JsonArray& rp = resumed.at("points").as_array();
  const obs::JsonArray& cp = clean.at("points").as_array();
  ASSERT_EQ(rp.size(), cp.size());
  for (std::size_t i = 0; i < rp.size(); ++i) {
    // Everything but wall_ms (timing) must match exactly — including the
    // solver outputs, which is what "resume reproduces the uninterrupted
    // result" means.
    for (const char* fieldname :
         {"workload", "bg_probability", "bg_buffer", "utilization"})
      EXPECT_EQ(rp[i].at(fieldname).dump(), cp[i].at(fieldname).dump())
          << "point " << i << " field " << fieldname;
    ASSERT_EQ(rp[i].find("error"), nullptr) << "point " << i;
    ASSERT_EQ(cp[i].find("error"), nullptr) << "point " << i;
    EXPECT_EQ(rp[i].at("iterations").as_int(), cp[i].at("iterations").as_int());
    EXPECT_EQ(rp[i].at("fg_queue_length").dump(),
              cp[i].at("fg_queue_length").dump());
  }

  std::remove(journal.c_str());
  std::remove(resumed_out.c_str());
  std::remove(clean_out.c_str());
}

/// SIGTERM triggers the graceful drain: the suite exits with the documented
/// resumable status (9) and the journal stays loadable.
TEST_F(RunnerTest, EndToEndSigtermDrainsAndExitsResumable) {
  const std::string journal = temp_path("e2e_term.journal");
  const std::string out = temp_path("e2e_term.json");
  std::remove(journal.c_str());
  const pid_t pid = spawn_bench_suite(
      {"--point-sleep-ms=40", "--journal=" + journal, "--out=" + out});
  ASSERT_GT(pid, 0);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (journal_record_count(journal) < 2) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, WNOHANG), 0) << "bench_suite exited early";
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  kill(pid, SIGTERM);
  int status = 0;
  waitpid(pid, &status, 0);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 9);  // kInterrupted: resumable
  EXPECT_NO_THROW(runner::JournalIndex::load(journal, "bench_suite"));
  // And the resumed run completes what the drain left over.
  EXPECT_EQ(run_bench_suite({"--resume=" + journal, "--out=" + out}), 0);
  std::remove(journal.c_str());
  std::remove(out.c_str());
}

#endif  // PERFBG_BENCH_SUITE_BINARY

}  // namespace
}  // namespace perfbg
