// Tests of the phase-type-service extension (paper footnote 3): the chain
// builder expands combined arrival x service phases via Kronecker products.
// Anchors: the exact M/G/1 Pollaczek-Khinchine formula (Poisson arrivals,
// no background), flow invariants, and simulation cross-checks.
#include <gtest/gtest.h>

#include <cmath>

#include "core/model.hpp"
#include "sim/fgbg_simulator.hpp"
#include "traffic/processes.hpp"

namespace perfbg::core {
namespace {

using traffic::PhaseType;

FgBgParams ph_params(PhaseType service, double rho, double p, int buffer = 5) {
  FgBgParams params{traffic::poisson(rho / service.mean())};
  params.service_distribution = std::move(service);
  params.bg_probability = p;
  params.bg_buffer = buffer;
  return params;
}

double pollaczek_khinchine_number_in_system(double rho, double scv) {
  return rho + rho * rho * (1.0 + scv) / (2.0 * (1.0 - rho));
}

TEST(ModelPh, MG1ErlangServiceMatchesPollaczekKhinchine) {
  for (double rho : {0.3, 0.6, 0.85}) {
    FgBgParams params = ph_params(PhaseType::erlang(3, 6.0), rho, 0.0);
    const double qlen = FgBgModel(params).solve().metrics().fg_queue_length;
    EXPECT_NEAR(qlen, pollaczek_khinchine_number_in_system(rho, 1.0 / 3.0), 1e-6) << rho;
  }
}

TEST(ModelPh, MG1HyperexpServiceMatchesPollaczekKhinchine) {
  const PhaseType h2 = PhaseType::hyperexponential(0.3, 2.0, 12.0);
  for (double rho : {0.3, 0.6, 0.85}) {
    FgBgParams params = ph_params(h2, rho, 0.0);
    const double qlen = FgBgModel(params).solve().metrics().fg_queue_length;
    EXPECT_NEAR(qlen, pollaczek_khinchine_number_in_system(rho, h2.scv()),
                1e-6 * std::max(1.0, qlen))
        << rho;
  }
}

TEST(ModelPh, MG1CoxianServiceMatchesPollaczekKhinchine) {
  const PhaseType cox = PhaseType::coxian2(0.4, 0.1, 0.5);
  const double rho = 0.5;
  FgBgParams params = ph_params(cox, rho, 0.0);
  const double qlen = FgBgModel(params).solve().metrics().fg_queue_length;
  EXPECT_NEAR(qlen, pollaczek_khinchine_number_in_system(rho, cox.scv()), 1e-6);
}

TEST(ModelPh, ExponentialDistributionObjectMatchesScalarPath) {
  // Supplying PhaseType::exponential must reproduce the default path bitwise
  // in spirit: same metrics to solver precision.
  FgBgParams scalar{traffic::poisson(0.25 / 6.0)};
  scalar.bg_probability = 0.4;
  FgBgParams ph = scalar;
  ph.service_distribution = PhaseType::exponential(6.0);
  const FgBgMetrics a = FgBgModel(scalar).solve().metrics();
  const FgBgMetrics b = FgBgModel(ph).solve().metrics();
  EXPECT_NEAR(a.fg_queue_length, b.fg_queue_length, 1e-10);
  EXPECT_NEAR(a.bg_completion, b.bg_completion, 1e-10);
  EXPECT_NEAR(a.fg_delayed, b.fg_delayed, 1e-10);
}

TEST(ModelPh, FlowInvariantsHoldWithPhService) {
  for (const PhaseType& service :
       {PhaseType::erlang(2, 6.0), PhaseType::hyperexponential(0.25, 2.0, 12.0)}) {
    FgBgParams params = ph_params(service, 0.3, 0.6);
    const FgBgSolution sol = FgBgModel(params).solve();
    const FgBgMetrics& m = sol.metrics();
    EXPECT_NEAR(m.probability_mass, 1.0, 1e-8) << service.name();
    EXPECT_NEAR(m.fg_throughput, params.arrivals.mean_rate(), 1e-8) << service.name();
    EXPECT_NEAR(m.bg_accept_rate, m.bg_throughput, 1e-9) << service.name();
    EXPECT_NEAR(m.busy_fraction,
                (params.arrivals.mean_rate() + m.bg_accept_rate) * service.mean(), 1e-7)
        << service.name();
  }
}

TEST(ModelPh, QueueGrowsWithServiceVariabilityUnderPoisson) {
  // Classic M/G/1 intuition must survive the background machinery: at equal
  // mean service and load, higher service SCV means longer foreground queue.
  const double rho = 0.5, p = 0.5;
  const double q_erlang =
      FgBgModel(ph_params(PhaseType::erlang(4, 6.0), rho, p)).solve().metrics()
          .fg_queue_length;
  const double q_expo =
      FgBgModel(ph_params(PhaseType::exponential(6.0), rho, p)).solve().metrics()
          .fg_queue_length;
  const double q_h2 =
      FgBgModel(ph_params(PhaseType::hyperexponential(0.25, 2.0, 12.0), rho, p))
          .solve()
          .metrics()
          .fg_queue_length;
  EXPECT_LT(q_erlang, q_expo);
  EXPECT_LT(q_expo, q_h2);
}

TEST(ModelPh, ErlangServiceAgreesWithSimulation) {
  FgBgParams params = ph_params(PhaseType::erlang(2, 6.0), 0.4, 0.6);
  const FgBgMetrics m = FgBgModel(params).solve().metrics();
  sim::SimConfig cfg;
  cfg.warmup_time = 2e5;
  cfg.batch_time = 1e6;
  cfg.batches = 10;
  const sim::SimMetrics s = sim::simulate_fgbg(params, cfg);
  EXPECT_NEAR(m.fg_queue_length, s.fg_queue_length.mean,
              3.0 * s.fg_queue_length.half_width + 0.02);
  EXPECT_NEAR(m.bg_completion, s.bg_completion.mean,
              3.0 * s.bg_completion.half_width + 0.02);
  EXPECT_NEAR(m.bg_queue_length, s.bg_queue_length.mean,
              3.0 * s.bg_queue_length.half_width + 0.03);
}

TEST(ModelPh, HyperexpServiceAgreesWithSimulation) {
  FgBgParams params = ph_params(PhaseType::hyperexponential(0.3, 2.0, 12.0), 0.35, 0.4);
  const FgBgMetrics m = FgBgModel(params).solve().metrics();
  sim::SimConfig cfg;
  cfg.warmup_time = 2e5;
  cfg.batch_time = 1e6;
  cfg.batches = 10;
  const sim::SimMetrics s = sim::simulate_fgbg(params, cfg);
  EXPECT_NEAR(m.fg_queue_length, s.fg_queue_length.mean,
              3.0 * s.fg_queue_length.half_width + 0.05);
  EXPECT_NEAR(m.fg_delayed_arrivals, s.fg_delayed_arrivals.mean,
              3.0 * s.fg_delayed_arrivals.half_width + 0.01);
}

TEST(ModelPh, MmppArrivalsWithErlangService) {
  // Combined 2x2 phase expansion; all structural invariants intact.
  FgBgParams params{traffic::mmpp2(0.002, 0.0008, 0.04, 0.004)};
  params.service_distribution = PhaseType::erlang(2, 6.0);
  params.bg_probability = 0.5;
  params.bg_buffer = 3;
  const FgBgSolution sol = FgBgModel(params).solve();
  EXPECT_NEAR(sol.metrics().probability_mass, 1.0, 1e-8);
  EXPECT_NEAR(sol.metrics().fg_throughput, params.arrivals.mean_rate(), 1e-8);
  EXPECT_EQ(sol.layout().phases(), 4u);
}

TEST(ModelPh, ServiceMeanDrivesLoadAccounting) {
  const PhaseType service = PhaseType::erlang(2, 12.0);  // 12 ms mean
  FgBgParams params{traffic::poisson(0.03)};             // 0.36 offered load
  params.service_distribution = service;
  params.bg_probability = 0.2;
  EXPECT_NEAR(params.fg_offered_load(), 0.36, 1e-12);
  EXPECT_NEAR(params.mean_service(), 12.0, 1e-12);
  const FgBgModel model(params);
  EXPECT_NEAR(model.drift_ratio(), 0.36, 1e-8);
}

}  // namespace
}  // namespace perfbg::core
