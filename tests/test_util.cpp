#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"
#include "util/optimize.hpp"
#include "util/table.hpp"

namespace perfbg {
namespace {

TEST(Check, RequireThrowsInvalidArgument) {
  EXPECT_THROW(PERFBG_REQUIRE(false, "boom"), std::invalid_argument);
  EXPECT_NO_THROW(PERFBG_REQUIRE(true, "fine"));
}

TEST(Check, AssertThrowsLogicError) {
  EXPECT_THROW(PERFBG_ASSERT(false, "bug"), std::logic_error);
}

TEST(Check, MessageContainsConditionAndLocation) {
  try {
    PERFBG_REQUIRE(1 == 2, "context info");
    FAIL();
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("1 == 2"), std::string::npos);
    EXPECT_NE(msg.find("context info"), std::string::npos);
    EXPECT_NE(msg.find("test_util.cpp"), std::string::npos);
  }
}

TEST(FormatNumber, TrimsAndUsesScientific) {
  EXPECT_EQ(format_number(0.3), "0.3");
  EXPECT_EQ(format_number(2.0), "2");
  EXPECT_EQ(format_number(1234.5), "1234.5");
  EXPECT_EQ(format_number(0.00001234, 3), "1.23e-05");
  EXPECT_EQ(format_number(std::nan("")), "nan");
  EXPECT_EQ(format_number(-1.0 / 0.0), "-inf");
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({std::string("alpha"), 1.5});
  t.add_row({std::string("b"), 22.0});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({1.0, std::string("x")});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,x\n");
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({1.0}), std::invalid_argument);
}

TEST(Table, PrecisionIsApplied) {
  Table t({"v"});
  t.set_precision(2);
  t.add_row({3.14159});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "v\n3.1\n");
  EXPECT_THROW(t.set_precision(0), std::invalid_argument);
}

TEST(Table, RowCount) {
  Table t({"x"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({1.0});
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(NelderMead, MinimizesQuadratic) {
  const auto r = nelder_mead(
      [](const std::vector<double>& x) {
        return (x[0] - 3.0) * (x[0] - 3.0) + (x[1] + 1.0) * (x[1] + 1.0);
      },
      {0.0, 0.0});
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(r.x[0], 3.0, 1e-5);
  EXPECT_NEAR(r.x[1], -1.0, 1e-5);
  EXPECT_NEAR(r.fx, 0.0, 1e-9);
}

TEST(NelderMead, MinimizesRosenbrock) {
  const auto r = nelder_mead(
      [](const std::vector<double>& x) {
        const double a = 1.0 - x[0];
        const double b = x[1] - x[0] * x[0];
        return a * a + 100.0 * b * b;
      },
      {-1.2, 1.0});
  EXPECT_NEAR(r.x[0], 1.0, 1e-3);
  EXPECT_NEAR(r.x[1], 1.0, 1e-3);
}

TEST(NelderMead, OneDimensional) {
  // 1-D Nelder-Mead contracts slowly on steep valleys; accept a loose
  // tolerance here (the library's fitters always refine in >= 3 dims).
  const auto r = nelder_mead(
      [](const std::vector<double>& x) { return std::cosh(x[0] - 2.0); }, {10.0});
  EXPECT_NEAR(r.x[0], 2.0, 1e-2);
}

TEST(NelderMead, RespectsIterationCap) {
  NelderMeadOptions opts;
  opts.max_iters = 3;
  const auto r = nelder_mead(
      [](const std::vector<double>& x) { return x[0] * x[0]; }, {100.0}, opts);
  EXPECT_LE(r.iterations, 3);
}

TEST(NelderMead, EmptyStartThrows) {
  EXPECT_THROW(nelder_mead([](const std::vector<double>&) { return 0.0; }, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace perfbg
