#include "core/chain_builder.hpp"

#include <gtest/gtest.h>

#include "markov/stationary.hpp"
#include "traffic/processes.hpp"

namespace perfbg::core {
namespace {

FgBgParams test_params(traffic::MarkovianArrivalProcess arrivals, double p = 0.3,
                       int buffer = 3, double idle = 1.0) {
  FgBgParams params{std::move(arrivals)};
  params.mean_service_time = 6.0;
  params.bg_probability = p;
  params.bg_buffer = buffer;
  params.idle_wait_intensity = idle;
  return params;
}

TEST(ChainBuilder, ProducesValidQbdForPoisson) {
  const FgBgParams params = test_params(traffic::poisson(0.02));
  const FgBgLayout layout(params.bg_buffer, 1);
  EXPECT_NO_THROW(build_fgbg_qbd(params, layout).validate(1e-10));
}

TEST(ChainBuilder, ProducesValidQbdForMmpp) {
  const FgBgParams params = test_params(traffic::mmpp2(0.01, 0.003, 0.05, 0.005));
  const FgBgLayout layout(params.bg_buffer, 2);
  EXPECT_NO_THROW(build_fgbg_qbd(params, layout).validate(1e-10));
}

TEST(ChainBuilder, ProducesValidQbdForErlangMap) {
  // 4-phase MAP exercises the general block plumbing.
  const FgBgParams params = test_params(traffic::erlang_renewal(4, 50.0));
  const FgBgLayout layout(params.bg_buffer, 4);
  EXPECT_NO_THROW(build_fgbg_qbd(params, layout).validate(1e-10));
}

TEST(ChainBuilder, BlockShapes) {
  const FgBgParams params = test_params(traffic::mmpp2(0.01, 0.003, 0.05, 0.005), 0.3, 5);
  const FgBgLayout layout(5, 2);
  const qbd::QbdProcess q = build_fgbg_qbd(params, layout);
  EXPECT_EQ(q.b00.rows(), 36u * 2u);  // (X+1)^2 macro states, 2 phases
  EXPECT_EQ(q.a1.rows(), 11u * 2u);   // 2X+1 macro states
  EXPECT_EQ(q.b01.cols(), q.a1.rows());
  EXPECT_EQ(q.b10.cols(), q.b00.rows());
}

TEST(ChainBuilder, DriftRatioEqualsOfferedLoad) {
  // At high levels the bg buffer is pinned full and the chain behaves like
  // MAP/M/1: stability boundary is exactly lambda * E[S] = 1.
  for (double util : {0.2, 0.7, 0.95}) {
    const FgBgParams params =
        test_params(traffic::poisson(util / 6.0), 0.5, 4);
    const FgBgLayout layout(4, 1);
    const qbd::QbdProcess q = build_fgbg_qbd(params, layout);
    EXPECT_NEAR(q.drift_ratio(), util, 1e-9) << util;
  }
}

TEST(ChainBuilder, ArrivalRatesAppearInA0) {
  const auto map = traffic::mmpp2(0.01, 0.003, 0.05, 0.005);
  const FgBgParams params = test_params(map);
  const FgBgLayout layout(3, 2);
  const qbd::QbdProcess q = build_fgbg_qbd(params, layout);
  // A0 is block-diagonal with D1 blocks.
  for (std::size_t s = 0; s < layout.repeating_macro_count(); ++s) {
    EXPECT_DOUBLE_EQ(q.a0(2 * s, 2 * s), map.d1()(0, 0));
    EXPECT_DOUBLE_EQ(q.a0(2 * s + 1, 2 * s + 1), map.d1()(1, 1));
    if (s + 1 < layout.repeating_macro_count()) {
      EXPECT_DOUBLE_EQ(q.a0(2 * s, 2 * (s + 1)), 0.0);
    }
  }
}

TEST(ChainBuilder, SpawnShiftsWithinLevel) {
  const FgBgParams params = test_params(traffic::poisson(0.02), 0.4, 3);
  const FgBgLayout layout(3, 1);
  const qbd::QbdProcess q = build_fgbg_qbd(params, layout);
  const double mu = params.service_rate();
  // F(0) -> F(1) at mu*p within the level.
  const std::size_t f0 = layout.repeating_index(Activity::kFgService, 0);
  const std::size_t f1 = layout.repeating_index(Activity::kFgService, 1);
  EXPECT_NEAR(q.a1(f0, f1), mu * 0.4, 1e-12);
  // F(X) has no spawn shift; its full mu goes down a level to itself.
  const std::size_t fx = layout.repeating_index(Activity::kFgService, 3);
  EXPECT_NEAR(q.a2(fx, fx), mu, 1e-12);
  // F(x < X) sends mu (1 - p) down.
  EXPECT_NEAR(q.a2(f0, f0), mu * 0.6, 1e-12);
}

TEST(ChainBuilder, BgCompletionDropsIntoFgSlot) {
  const FgBgParams params = test_params(traffic::poisson(0.02), 0.4, 3);
  const FgBgLayout layout(3, 1);
  const qbd::QbdProcess q = build_fgbg_qbd(params, layout);
  const double mu = params.service_rate();
  const std::size_t b2 = layout.repeating_index(Activity::kBgService, 2);
  const std::size_t f1 = layout.repeating_index(Activity::kFgService, 1);
  EXPECT_NEAR(q.a2(b2, f1), mu, 1e-12);
}

TEST(ChainBuilder, IdleExpiryConnectsIdleToBgService) {
  const FgBgParams params = test_params(traffic::poisson(0.02), 0.4, 2, 2.0);
  const FgBgLayout layout(2, 1);
  const qbd::QbdProcess q = build_fgbg_qbd(params, layout);
  const double alpha = params.idle_wait_rate();
  EXPECT_NEAR(alpha, params.service_rate() / 2.0, 1e-15);
  const std::size_t i1 = layout.boundary_index(Activity::kIdle, 1, 0);
  const std::size_t b1 = layout.boundary_index(Activity::kBgService, 1, 0);
  EXPECT_NEAR(q.b00(i1, b1), alpha, 1e-12);
  // The empty state has no idle-wait transition.
  const std::size_t i0 = layout.boundary_index(Activity::kIdle, 0, 0);
  for (std::size_t j = 0; j < q.b00.cols(); ++j) {
    if (j == layout.boundary_index(Activity::kFgService, 0, 1) || j == i0) continue;
    EXPECT_DOUBLE_EQ(q.b00(i0, j), 0.0) << j;
  }
}

TEST(ChainBuilder, FullChainIsUnichainAtLowTruncation) {
  // Assemble boundary + first repeating level with reflected upper edge and
  // check a unique closed class exists (the chain is well-formed).
  const FgBgParams params = test_params(traffic::mmpp2(0.01, 0.003, 0.05, 0.005), 0.3, 2);
  const FgBgLayout layout(2, 2);
  const qbd::QbdProcess q = build_fgbg_qbd(params, layout);
  const std::size_t nb = q.boundary_size(), nr = q.level_size();
  linalg::Matrix full(nb + nr, nb + nr, 0.0);
  for (std::size_t i = 0; i < nb; ++i) {
    for (std::size_t j = 0; j < nb; ++j) full(i, j) = q.b00(i, j);
    for (std::size_t j = 0; j < nr; ++j) full(i, nb + j) = q.b01(i, j);
  }
  const linalg::Matrix corner = q.a1 + q.a0;  // reflect arrivals at the top
  for (std::size_t i = 0; i < nr; ++i) {
    for (std::size_t j = 0; j < nb; ++j) full(nb + i, j) = q.b10(i, j);
    for (std::size_t j = 0; j < nr; ++j) full(nb + i, nb + j) = corner(i, j);
  }
  EXPECT_TRUE(markov::is_generator(full, 1e-8));
  const linalg::Vector pi = markov::stationary_unichain_ctmc(full);
  double mass = 0.0;
  for (double v : pi) {
    EXPECT_GE(v, -1e-15);
    mass += v;
  }
  EXPECT_NEAR(mass, 1.0, 1e-10);
}

TEST(ChainBuilder, MismatchedLayoutThrows) {
  const FgBgParams params = test_params(traffic::poisson(0.02), 0.3, 3);
  EXPECT_THROW(build_fgbg_qbd(params, FgBgLayout(2, 1)), std::invalid_argument);
  EXPECT_THROW(build_fgbg_qbd(params, FgBgLayout(3, 2)), std::invalid_argument);
}

TEST(ChainBuilder, DegenerateNoBackgroundIsMapM1) {
  FgBgParams params = test_params(traffic::poisson(0.05), 0.0, 5);
  const FgBgLayout layout(0, 1);
  const qbd::QbdProcess q = build_fgbg_qbd(params, layout);
  EXPECT_EQ(q.boundary_size(), 1u);
  EXPECT_EQ(q.level_size(), 1u);
  EXPECT_NEAR(q.a0(0, 0), 0.05, 1e-15);
  EXPECT_NEAR(q.a2(0, 0), params.service_rate(), 1e-15);
}

TEST(FgBgParams, ValidationCatchesBadInputs) {
  FgBgParams p = test_params(traffic::poisson(0.02));
  p.mean_service_time = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = test_params(traffic::poisson(0.02));
  p.bg_probability = 1.5;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = test_params(traffic::poisson(0.02));
  p.bg_probability = 0.5;
  p.bg_buffer = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = test_params(traffic::poisson(0.02));
  p.idle_wait_intensity = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace perfbg::core
