#include "linalg/spectral.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace perfbg::linalg {
namespace {

TEST(SpectralRadius, DiagonalMatrix) {
  EXPECT_NEAR(spectral_radius(Matrix::diagonal({0.2, 0.7, 0.5})), 0.7, 1e-9);
}

TEST(SpectralRadius, StochasticMatrixIsOne) {
  const Matrix p{{0.3, 0.7}, {0.6, 0.4}};
  EXPECT_NEAR(spectral_radius(p), 1.0, 1e-9);
}

TEST(SpectralRadius, SubstochasticBelowOne) {
  const Matrix p{{0.3, 0.3}, {0.1, 0.4}};
  const double r = spectral_radius(p);
  EXPECT_LT(r, 1.0);
  // Exact: eigenvalues of [[.3,.3],[.1,.4]] are (0.7 +/- sqrt(0.01+0.12))/2.
  EXPECT_NEAR(r, (0.7 + std::sqrt(0.13)) / 2.0, 1e-9);
}

TEST(SpectralRadius, ZeroMatrix) { EXPECT_DOUBLE_EQ(spectral_radius(Matrix(3, 3, 0.0)), 0.0); }

TEST(SpectralRadius, EmptyMatrixIsZero) { EXPECT_DOUBLE_EQ(spectral_radius(Matrix{}), 0.0); }

TEST(SpectralRadius, NegativeEntryThrows) {
  EXPECT_THROW(spectral_radius(Matrix{{1.0, -0.1}, {0.0, 1.0}}), std::invalid_argument);
}

TEST(SpectralRadius, NonSquareThrows) {
  EXPECT_THROW(spectral_radius(Matrix(2, 3, 0.1)), std::invalid_argument);
}

TEST(Eigenvalues2x2, RealPair) {
  const auto ev = eigenvalues_2x2(Matrix{{2.0, 0.0}, {0.0, 5.0}});
  ASSERT_TRUE(ev.has_value());
  EXPECT_NEAR(std::max((*ev)[0], (*ev)[1]), 5.0, 1e-12);
  EXPECT_NEAR(std::min((*ev)[0], (*ev)[1]), 2.0, 1e-12);
}

TEST(Eigenvalues2x2, ComplexPairReturnsNullopt) {
  // Rotation matrix: eigenvalues are complex.
  EXPECT_FALSE(eigenvalues_2x2(Matrix{{0.0, -1.0}, {1.0, 0.0}}).has_value());
}

TEST(Eigenvalues2x2, StochasticSecondEigenvalueIsTraceMinusOne) {
  const Matrix p{{0.9, 0.1}, {0.2, 0.8}};
  const auto ev = eigenvalues_2x2(p);
  ASSERT_TRUE(ev.has_value());
  EXPECT_NEAR(std::max((*ev)[0], (*ev)[1]), 1.0, 1e-12);
  EXPECT_NEAR(std::min((*ev)[0], (*ev)[1]), 0.7, 1e-12);
}

TEST(Eigenvalues2x2, WrongShapeThrows) {
  EXPECT_THROW(eigenvalues_2x2(Matrix(3, 3, 0.0)), std::invalid_argument);
}

}  // namespace
}  // namespace perfbg::linalg
