// Tests of the two-class background extension (the paper's stated future
// work). Anchors: reduction to the single-class model when one class is
// disabled via p2 -> 0, strict-priority orderings, invariants, and a
// simulation cross-check.
#include "core/multiclass.hpp"

#include <gtest/gtest.h>

#include "core/model.hpp"
#include "sim/multiclass_simulator.hpp"
#include "traffic/processes.hpp"
#include "workloads/presets.hpp"

namespace perfbg::core {
namespace {

McParams mc_params(traffic::MarkovianArrivalProcess arrivals, double p1, double p2,
                   int b1 = 3, int b2 = 3) {
  McParams params{std::move(arrivals)};
  params.p1 = p1;
  params.p2 = p2;
  params.buffer1 = b1;
  params.buffer2 = b2;
  return params;
}

TEST(McLayout, BoundaryStatesAreUniqueAndComplete) {
  const McLayout layout(2, 3, 1);
  // F: {x1<=2, x2<=3, y>=1, x1+x2+y<=5}; I: one per (x1,x2);
  // B1: x1>=1; B2: x2>=1 with the same level constraint.
  int f = 0, b1 = 0, b2 = 0, idle = 0;
  for (const McStateDesc& s : layout.boundary()) {
    EXPECT_LE(s.x1 + s.x2 + s.y, 5);
    EXPECT_LE(s.x1, 2);
    EXPECT_LE(s.x2, 3);
    switch (s.kind) {
      case McActivity::kFgService:
        EXPECT_GE(s.y, 1);
        ++f;
        break;
      case McActivity::kBg1Service:
        EXPECT_GE(s.x1, 1);
        ++b1;
        break;
      case McActivity::kBg2Service:
        EXPECT_GE(s.x2, 1);
        ++b2;
        break;
      case McActivity::kIdle:
        EXPECT_EQ(s.y, 0);
        ++idle;
        break;
    }
  }
  EXPECT_EQ(idle, 12);  // all (x1, x2) pairs
  EXPECT_GT(f, 0);
  EXPECT_GT(b1, 0);
  EXPECT_GT(b2, 0);
  // Round-trip every index.
  for (std::size_t i = 0; i < layout.boundary().size(); ++i) {
    const McStateDesc& s = layout.boundary()[i];
    EXPECT_EQ(layout.boundary_index(s.kind, s.x1, s.x2, s.y), i);
  }
}

TEST(McLayout, RepeatingSlotCount) {
  const McLayout layout(2, 3, 1);
  // F: 3*4 = 12; B1: 2*4 = 8; B2: 3*3 = 9.
  EXPECT_EQ(layout.repeating().size(), 12u + 8u + 9u);
  for (std::size_t i = 0; i < layout.repeating().size(); ++i) {
    const McStateDesc& s = layout.repeating()[i];
    EXPECT_EQ(layout.repeating_index(s.kind, s.x1, s.x2), i);
  }
}

TEST(McModel, BuildsValidQbd) {
  const McParams params = mc_params(traffic::poisson(0.03), 0.2, 0.3);
  EXPECT_NO_THROW(McModel{params});
}

TEST(McModel, MassAndFlowInvariants) {
  const McParams params = mc_params(workloads::software_dev().scaled_to_utilization(0.2, 6.0),
                                    0.3, 0.3);
  const McMetrics m = McModel(params).solve();
  EXPECT_NEAR(m.probability_mass, 1.0, 1e-8);
  EXPECT_NEAR(m.fg_throughput, params.arrivals.mean_rate(), 1e-8);
  EXPECT_NEAR(m.busy_fraction + m.idle_fraction, 1.0, 1e-8);
  EXPECT_LE(m.bg1_queue_length, params.buffer1 + 1e-9);
  EXPECT_LE(m.bg2_queue_length, params.buffer2 + 1e-9);
}

TEST(McModel, DriftRatioIsOfferedLoad) {
  const McParams params = mc_params(traffic::poisson(0.4 / 6.0), 0.3, 0.3);
  EXPECT_NEAR(McModel(params).drift_ratio(), 0.4, 1e-8);
}

TEST(McModel, TinyClass2ReducesToSingleClassModel) {
  // With p2 -> 0 the class-2 dimension carries no probability mass and the
  // two-class model must agree with FgBgModel on every shared metric.
  const auto arrivals = traffic::poisson(0.25 / 6.0);
  McParams mc = mc_params(arrivals, 0.4, 1e-9, 3, 1);
  const McMetrics a = McModel(mc).solve();

  FgBgParams single{arrivals};
  single.bg_probability = 0.4;
  single.bg_buffer = 3;
  const FgBgMetrics b = FgBgModel(single).solve().metrics();

  EXPECT_NEAR(a.fg_queue_length, b.fg_queue_length, 1e-6);
  EXPECT_NEAR(a.bg1_queue_length, b.bg_queue_length, 1e-6);
  EXPECT_NEAR(a.bg1_completion, b.bg_completion, 1e-6);
  EXPECT_NEAR(a.fg_delayed, b.fg_delayed, 1e-6);
  EXPECT_NEAR(a.busy_fraction, b.busy_fraction, 1e-6);
  EXPECT_LT(a.bg2_queue_length, 1e-6);
}

TEST(McModel, SymmetricClassesAreSymmetricExceptPriority) {
  // Equal spawn probabilities and buffers: class 1 (served first) must do at
  // least as well as class 2 on completion, and hold a shorter queue.
  const McParams params = mc_params(traffic::poisson(0.35 / 6.0), 0.3, 0.3, 3, 3);
  const McMetrics m = McModel(params).solve();
  EXPECT_GE(m.bg1_completion, m.bg2_completion - 1e-12);
  EXPECT_LE(m.bg1_queue_length, m.bg2_queue_length + 1e-12);
}

TEST(McModel, PriorityGapWidensWithLoad) {
  double prev_gap = -1.0;
  for (double u : {0.2, 0.4, 0.6}) {
    const McParams params = mc_params(traffic::poisson(u / 6.0), 0.3, 0.3, 2, 2);
    const McMetrics m = McModel(params).solve();
    const double gap = m.bg2_queue_length - m.bg1_queue_length;
    EXPECT_GT(gap, prev_gap) << u;
    prev_gap = gap;
  }
}

TEST(McModel, CompletionDecreasesWithLoadForBothClasses) {
  double prev1 = 2.0, prev2 = 2.0;
  for (double u : {0.1, 0.3, 0.5, 0.7}) {
    const McParams params = mc_params(traffic::poisson(u / 6.0), 0.2, 0.4, 2, 2);
    const McMetrics m = McModel(params).solve();
    EXPECT_LT(m.bg1_completion, prev1 + 1e-12) << u;
    EXPECT_LT(m.bg2_completion, prev2 + 1e-12) << u;
    prev1 = m.bg1_completion;
    prev2 = m.bg2_completion;
  }
}

TEST(McModel, CorrelatedArrivalsHurtBothClassesEarlier) {
  const double u = 0.25;
  const McParams bursty =
      mc_params(workloads::email().scaled_to_utilization(u, 6.0), 0.3, 0.3);
  const McParams smooth = mc_params(traffic::poisson(u / 6.0), 0.3, 0.3);
  const McMetrics mb = McModel(bursty).solve();
  const McMetrics ms = McModel(smooth).solve();
  EXPECT_LT(mb.bg1_completion, ms.bg1_completion);
  EXPECT_LT(mb.bg2_completion, ms.bg2_completion);
}

TEST(McModel, AgreesWithSimulation) {
  const McParams params = mc_params(traffic::poisson(0.4 / 6.0), 0.3, 0.4, 2, 2);
  const McMetrics m = McModel(params).solve();
  sim::McSimConfig cfg;
  cfg.warmup_time = 2e5;
  cfg.batch_time = 1e6;
  cfg.batches = 10;
  const sim::McSimMetrics s = sim::simulate_multiclass(params, cfg);
  EXPECT_NEAR(m.fg_queue_length, s.fg_queue_length.mean,
              3.0 * s.fg_queue_length.half_width + 0.02);
  EXPECT_NEAR(m.bg1_queue_length, s.bg1_queue_length.mean,
              3.0 * s.bg1_queue_length.half_width + 0.02);
  EXPECT_NEAR(m.bg2_queue_length, s.bg2_queue_length.mean,
              3.0 * s.bg2_queue_length.half_width + 0.02);
  EXPECT_NEAR(m.bg1_completion, s.bg1_completion.mean,
              3.0 * s.bg1_completion.half_width + 0.02);
  EXPECT_NEAR(m.bg2_completion, s.bg2_completion.mean,
              3.0 * s.bg2_completion.half_width + 0.02);
  EXPECT_NEAR(m.busy_fraction, s.busy_fraction.mean,
              3.0 * s.busy_fraction.half_width + 0.02);
}

TEST(McModel, MmppArrivalsWork) {
  const McParams params =
      mc_params(traffic::mmpp2(0.002, 0.0008, 0.04, 0.004), 0.25, 0.25, 2, 2);
  const McMetrics m = McModel(params).solve();
  EXPECT_NEAR(m.probability_mass, 1.0, 1e-8);
  EXPECT_GE(m.bg1_completion, m.bg2_completion - 1e-12);
}

TEST(McParams, ValidationCatchesBadInputs) {
  McParams p = mc_params(traffic::poisson(0.02), 0.5, 0.6);
  EXPECT_THROW(p.validate(), std::invalid_argument);  // p1 + p2 > 1
  p = mc_params(traffic::poisson(0.02), 0.0, 0.0);
  EXPECT_THROW(p.validate(), std::invalid_argument);  // nothing spawns
  p = mc_params(traffic::poisson(0.02), 0.3, 0.3, 0, 2);
  EXPECT_THROW(p.validate(), std::invalid_argument);  // buffer1 < 1
}

TEST(McSimulator, DeterministicAndConsistent) {
  const McParams params = mc_params(traffic::poisson(0.3 / 6.0), 0.2, 0.3, 2, 2);
  sim::McSimConfig cfg;
  cfg.warmup_time = 1e5;
  cfg.batch_time = 3e5;
  cfg.batches = 8;
  const sim::McSimMetrics a = sim::simulate_multiclass(params, cfg);
  const sim::McSimMetrics b = sim::simulate_multiclass(params, cfg);
  EXPECT_DOUBLE_EQ(a.fg_queue_length.mean, b.fg_queue_length.mean);
  EXPECT_EQ(a.bg1_generated, b.bg1_generated);
  EXPECT_LE(a.bg1_dropped, a.bg1_generated);
  EXPECT_LE(a.bg2_dropped, a.bg2_generated);
}

}  // namespace
}  // namespace perfbg::core
