#include "markov/transient.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "markov/stationary.hpp"

namespace perfbg::markov {
namespace {

TEST(Uniformize, ProducesStochasticMatrix) {
  const Matrix q{{-2.0, 2.0}, {3.0, -3.0}};
  const Matrix p = uniformize(q, 4.0);
  EXPECT_TRUE(is_stochastic(p));
  EXPECT_NEAR(p(0, 0), 0.5, 1e-14);
  EXPECT_NEAR(p(1, 0), 0.75, 1e-14);
}

TEST(Uniformize, RateTooSmallThrows) {
  const Matrix q{{-2.0, 2.0}, {3.0, -3.0}};
  EXPECT_THROW(uniformize(q, 2.5), std::invalid_argument);
}

TEST(Transient, TimeZeroIsInitialVector) {
  const Matrix q{{-1.0, 1.0}, {1.0, -1.0}};
  const Vector pi = transient_ctmc(q, {1.0, 0.0}, 0.0);
  EXPECT_DOUBLE_EQ(pi[0], 1.0);
}

TEST(Transient, TwoStateClosedForm) {
  // Symmetric 2-state chain with rate a: P(0->0, t) = (1 + exp(-2at)) / 2.
  const double a = 1.5, t = 0.8;
  const Matrix q{{-a, a}, {a, -a}};
  const Vector pi = transient_ctmc(q, {1.0, 0.0}, t);
  EXPECT_NEAR(pi[0], 0.5 * (1.0 + std::exp(-2.0 * a * t)), 1e-10);
  EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-12);
}

TEST(Transient, ConvergesToStationary) {
  const Matrix q{{-2.0, 1.0, 1.0}, {0.5, -1.0, 0.5}, {3.0, 1.0, -4.0}};
  const Vector limit = transient_ctmc(q, {1.0, 0.0, 0.0}, 200.0);
  const Vector pi = stationary_ctmc(q);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(limit[i], pi[i], 1e-9);
}

TEST(Transient, SemigroupProperty) {
  // pi(t1 + t2) == (pi(t1))(t2).
  const Matrix q{{-1.0, 0.7, 0.3}, {0.2, -0.5, 0.3}, {0.9, 0.1, -1.0}};
  const Vector one_hop = transient_ctmc(q, {0.2, 0.5, 0.3}, 3.0);
  const Vector two_hop = transient_ctmc(q, transient_ctmc(q, {0.2, 0.5, 0.3}, 1.2), 1.8);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(one_hop[i], two_hop[i], 1e-9);
}

TEST(Transient, StaysAProbabilityVector) {
  const Matrix q{{-5.0, 5.0}, {0.01, -0.01}};  // stiff
  for (double t : {0.01, 0.1, 1.0, 10.0, 1000.0}) {
    const Vector pi = transient_ctmc(q, {0.0, 1.0}, t);
    EXPECT_NEAR(pi[0] + pi[1], 1.0, 1e-12) << t;
    EXPECT_GE(pi[0], 0.0);
    EXPECT_GE(pi[1], 0.0);
  }
}

TEST(Transient, AbsorbingEverywhereChainIsConstant) {
  const Matrix q(2, 2, 0.0);
  const Vector pi = transient_ctmc(q, {0.3, 0.7}, 5.0);
  EXPECT_DOUBLE_EQ(pi[0], 0.3);
  EXPECT_DOUBLE_EQ(pi[1], 0.7);
}

TEST(Transient, BadInputsThrow) {
  const Matrix q{{-1.0, 1.0}, {1.0, -1.0}};
  EXPECT_THROW(transient_ctmc(q, {1.0, 0.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(transient_ctmc(q, {0.7, 0.7}, 1.0), std::invalid_argument);
  EXPECT_THROW(transient_ctmc(q, {1.0}, 1.0), std::invalid_argument);
  EXPECT_THROW(transient_ctmc(Matrix{{-1.0, 0.5}, {1.0, -1.0}}, {1.0, 0.0}, 1.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace perfbg::markov
