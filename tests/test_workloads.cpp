#include "workloads/presets.hpp"

#include <gtest/gtest.h>

#include "workloads/trace.hpp"

namespace perfbg::workloads {
namespace {

// ---- preset regression pins (see presets.cpp: branch ambiguity note) ----

TEST(Presets, EmailStatisticsPinned) {
  const auto m = email();
  EXPECT_NEAR(m.mean_rate(), 0.08 / 6.0, 1e-10);
  EXPECT_NEAR(m.interarrival_scv(), 4.0, 0.01);
  EXPECT_NEAR(m.acf(1), 0.3748, 0.002);
  EXPECT_NEAR(m.acf_decay_rate(), 0.99938, 2e-4);
}

TEST(Presets, SoftwareDevStatisticsPinned) {
  const auto m = software_dev();
  EXPECT_NEAR(m.mean_rate(), 0.06 / 6.0, 1e-10);
  EXPECT_NEAR(m.interarrival_scv(), 3.0, 0.01);
  EXPECT_NEAR(m.acf(1), 0.31, 0.002);
  EXPECT_NEAR(m.acf_decay_rate(), 0.93, 0.002);
  // Short-range dependence: the ACF is negligible by lag 100.
  EXPECT_LT(m.acf(100), 0.001);
}

TEST(Presets, UserAccountsIsTheVerbatimFig2Row) {
  const auto m = user_accounts();
  EXPECT_NEAR(m.d0()(0, 1), 0.36e-4, 1e-12);
  EXPECT_NEAR(m.d1()(1, 1), 0.49e-3, 1e-12);
  EXPECT_GT(m.acf(1), 0.2);               // strong ACF structure
  EXPECT_GT(m.acf_decay_rate(), 0.99);
}

TEST(Presets, DependenceFamilySharesMeanRate) {
  const auto family = dependence_family();
  ASSERT_EQ(family.size(), 4u);
  for (const auto& m : family) EXPECT_NEAR(m.mean_rate(), 0.08 / 6.0, 1e-9) << m.name();
}

TEST(Presets, DependenceFamilySharesCvExceptPoisson) {
  const auto family = dependence_family();
  const double scv = family[0].interarrival_scv();
  EXPECT_NEAR(family[1].interarrival_scv(), scv, 0.02 * scv);  // low-acf
  EXPECT_NEAR(family[2].interarrival_scv(), scv, 0.02 * scv);  // ipp
  EXPECT_NEAR(family[3].interarrival_scv(), 1.0, 1e-9);        // expo
}

TEST(Presets, DependenceFamilyOrdersAcf) {
  const auto family = dependence_family();
  // high-acf persists; low-acf decays fast; ipp and expo are renewal.
  EXPECT_GT(family[0].acf(50), 0.3);
  EXPECT_LT(family[1].acf(50), 0.01);
  EXPECT_NEAR(family[2].acf(1), 0.0, 1e-9);
  EXPECT_NEAR(family[3].acf(1), 0.0, 1e-12);
}

TEST(Presets, HighAcfDecaySlowerThanLowAcf) {
  EXPECT_GT(email().acf_decay_rate(), software_dev().acf_decay_rate());
  EXPECT_GT(software_dev().acf_decay_rate(), email_low_acf().acf_decay_rate());
}

TEST(Presets, VerbatimSoftDevRowIsAvailableButDistinct) {
  const auto v = software_dev_fig2_verbatim();
  EXPECT_NEAR(v.d1()(1, 1), 0.35e-1, 1e-12);
  EXPECT_GT(v.interarrival_cv(), 10.0);  // the corruption signature
}

TEST(Presets, TraceWorkloadsUtilizationsMatchPaperDescriptions) {
  const auto procs = trace_workloads();
  EXPECT_NEAR(procs[0].mean_rate() * kMeanServiceTimeMs, 0.08, 1e-9);   // E-mail 8%
  EXPECT_NEAR(procs[1].mean_rate() * kMeanServiceTimeMs, 0.06, 1e-9);   // SoftDev 6%
  EXPECT_LT(procs[2].mean_rate() * kMeanServiceTimeMs, 0.03);           // UserAcc light
}

// ---- synthetic traces and estimators ----

TEST(Trace, GeneratorIsDeterministicPerSeed) {
  const auto a = generate_interarrival_trace(email(), 1000, 5);
  const auto b = generate_interarrival_trace(email(), 1000, 5);
  EXPECT_EQ(a, b);
  const auto c = generate_interarrival_trace(email(), 1000, 6);
  EXPECT_NE(a, c);
}

TEST(Trace, EmpiricalMeanMatchesAnalytic) {
  const auto m = software_dev();
  const auto trace = generate_interarrival_trace(m, 400000, 11);
  EXPECT_NEAR(series_mean(trace), m.mean_interarrival(),
              0.05 * m.mean_interarrival());
}

TEST(Trace, EmpiricalCvMatchesAnalytic) {
  const auto m = software_dev();
  const auto trace = generate_interarrival_trace(m, 400000, 12);
  EXPECT_NEAR(series_cv(trace), m.interarrival_cv(), 0.1 * m.interarrival_cv());
}

TEST(Trace, EmpiricalAcfMatchesAnalyticShape) {
  const auto m = software_dev();
  const auto trace = generate_interarrival_trace(m, 400000, 13);
  const auto emp = series_acf(trace, 20);
  const auto ana = m.acf_series(20);
  for (int k : {0, 4, 9, 19}) {
    EXPECT_NEAR(emp[static_cast<std::size_t>(k)], ana[static_cast<std::size_t>(k)], 0.05)
        << "lag " << k + 1;
  }
}

TEST(Trace, PoissonTraceHasNoCorrelation) {
  const auto trace = generate_interarrival_trace(email_poisson(), 200000, 14);
  for (double a : series_acf(trace, 5)) EXPECT_NEAR(a, 0.0, 0.02);
}

TEST(Trace, ServiceTraceMatchesExponential) {
  const auto svc = generate_service_trace(6.0, 200000, 15);
  EXPECT_NEAR(series_mean(svc), 6.0, 0.1);
  EXPECT_NEAR(series_cv(svc), 1.0, 0.02);
}

TEST(Trace, EstimatorEdgeCasesThrow) {
  EXPECT_THROW(series_mean({}), std::invalid_argument);
  EXPECT_THROW(series_cv({1.0}), std::invalid_argument);
  EXPECT_THROW(series_acf({1.0, 2.0}, 5), std::invalid_argument);
  EXPECT_THROW(generate_service_trace(0.0, 10, 1), std::invalid_argument);
}

TEST(Trace, AcfOfConstantSeriesIsZeroByConvention) {
  const std::vector<double> xs(100, 3.0);
  for (double a : series_acf(xs, 3)) EXPECT_DOUBLE_EQ(a, 0.0);
}

}  // namespace
}  // namespace perfbg::workloads
