#include "traffic/processes.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace perfbg::traffic {
namespace {

TEST(Erlang, MeanAndScv) {
  for (int k : {1, 2, 4, 10}) {
    const auto m = erlang_renewal(k, 5.0);
    EXPECT_NEAR(m.mean_rate(), 0.2, 1e-10) << k;
    EXPECT_NEAR(m.interarrival_scv(), 1.0 / k, 1e-10) << k;
  }
}

TEST(Erlang, IsRenewal) {
  const auto m = erlang_renewal(3, 2.0);
  for (double a : m.acf_series(8)) EXPECT_NEAR(a, 0.0, 1e-10);
}

TEST(Erlang, OrderOneIsPoisson) {
  const auto m = erlang_renewal(1, 4.0);
  EXPECT_EQ(m.phases(), 1u);
  EXPECT_NEAR(m.interarrival_scv(), 1.0, 1e-12);
}

TEST(Erlang, BadArgsThrow) {
  EXPECT_THROW(erlang_renewal(0, 1.0), std::invalid_argument);
  EXPECT_THROW(erlang_renewal(2, 0.0), std::invalid_argument);
}

TEST(HyperExp, MeanAndScv) {
  const double p1 = 0.3, r1 = 4.0, r2 = 0.5;
  const auto m = hyperexp2_renewal(p1, r1, r2);
  const double mean = p1 / r1 + (1.0 - p1) / r2;
  EXPECT_NEAR(m.mean_interarrival(), mean, 1e-10);
  const double ex2 = 2.0 * (p1 / (r1 * r1) + (1.0 - p1) / (r2 * r2));
  EXPECT_NEAR(m.interarrival_scv(), ex2 / (mean * mean) - 1.0, 1e-10);
  EXPECT_GE(m.interarrival_scv(), 1.0);
}

TEST(HyperExp, IsRenewal) {
  const auto m = hyperexp2_renewal(0.2, 3.0, 0.4);
  for (double a : m.acf_series(8)) EXPECT_NEAR(a, 0.0, 1e-10);
}

TEST(HyperExp, BadArgsThrow) {
  EXPECT_THROW(hyperexp2_renewal(0.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(hyperexp2_renewal(1.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(hyperexp2_renewal(0.5, 0.0, 1.0), std::invalid_argument);
}

TEST(Superpose, RatesAdd) {
  const auto a = poisson(0.3);
  const auto b = mmpp2(0.1, 0.2, 2.0, 0.5);
  const auto s = superpose(a, b);
  EXPECT_EQ(s.phases(), 2u);
  EXPECT_NEAR(s.mean_rate(), a.mean_rate() + b.mean_rate(), 1e-10);
}

TEST(Superpose, TwoPoissonsArePoisson) {
  const auto s = superpose(poisson(0.3), poisson(0.7));
  EXPECT_NEAR(s.mean_rate(), 1.0, 1e-12);
  EXPECT_NEAR(s.interarrival_scv(), 1.0, 1e-10);
  for (double a : s.acf_series(5)) EXPECT_NEAR(a, 0.0, 1e-10);
}

TEST(Superpose, PreservesGeneratorStructure) {
  const auto s = superpose(mmpp2(0.1, 0.2, 2.0, 0.5), mmpp2(0.3, 0.4, 1.0, 3.0));
  EXPECT_EQ(s.phases(), 4u);
  for (std::size_t i = 0; i < 4; ++i)
    EXPECT_NEAR(s.d0().row_sum(i) + s.d1().row_sum(i), 0.0, 1e-12);
}

TEST(Mmpp2Factory, BadArgsThrow) {
  EXPECT_THROW(mmpp2(0.0, 0.1, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(mmpp2(0.1, 0.1, 0.0, 0.0), std::invalid_argument);
  EXPECT_THROW(mmpp2(0.1, 0.1, -1.0, 1.0), std::invalid_argument);
}

TEST(PoissonFactory, BadArgsThrow) { EXPECT_THROW(poisson(0.0), std::invalid_argument); }

}  // namespace
}  // namespace perfbg::traffic
