// Fault-injection suite for the hardened solve pipeline: every corruption the
// harness can produce (fault_injection.hpp) must surface as a typed
// perfbg::Error with the right code and context, in bounded time — never as a
// max_iters hang, a silent NaN result, or an untyped exception. Also covers
// the solver fallback ladder (via RSolverOptions::inject_rung_failures) and
// the per-point graceful degradation used by the figure sweeps.
#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "bench_common.hpp"
#include "fault_injection.hpp"
#include "markov/stationary.hpp"
#include "obs/metrics.hpp"
#include "qbd/preflight.hpp"
#include "qbd/rmatrix.hpp"
#include "qbd/solution.hpp"
#include "util/error.hpp"
#include "workloads/presets.hpp"

namespace perfbg {
namespace {

using testing::Fault;
using testing::inject;
using testing::reference_qbd;
using testing::unstable_qbd;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// ---------------------------------------------------------------- taxonomy --

TEST(ErrorTaxonomy, CodeNamesAndExitCodesAreStable) {
  EXPECT_STREQ(error_code_name(ErrorCode::kInvalidModel), "kInvalidModel");
  EXPECT_STREQ(error_code_name(ErrorCode::kUnstableQbd), "kUnstableQbd");
  EXPECT_STREQ(error_code_name(ErrorCode::kSingularMatrix), "kSingularMatrix");
  EXPECT_STREQ(error_code_name(ErrorCode::kNonConvergence), "kNonConvergence");
  EXPECT_STREQ(error_code_name(ErrorCode::kNumericalBreakdown), "kNumericalBreakdown");
  EXPECT_STREQ(error_code_name(ErrorCode::kDeadlineExceeded), "kDeadlineExceeded");
  EXPECT_STREQ(error_code_name(ErrorCode::kInterrupted), "kInterrupted");
  EXPECT_STREQ(error_code_name(ErrorCode::kOverloaded), "kOverloaded");
  EXPECT_STREQ(error_code_name(ErrorCode::kCircuitOpen), "kCircuitOpen");
  EXPECT_EQ(error_exit_code(ErrorCode::kInvalidModel), 3);
  EXPECT_EQ(error_exit_code(ErrorCode::kUnstableQbd), 4);
  EXPECT_EQ(error_exit_code(ErrorCode::kSingularMatrix), 5);
  EXPECT_EQ(error_exit_code(ErrorCode::kNonConvergence), 6);
  EXPECT_EQ(error_exit_code(ErrorCode::kNumericalBreakdown), 7);
  EXPECT_EQ(error_exit_code(ErrorCode::kDeadlineExceeded), 8);
  EXPECT_EQ(error_exit_code(ErrorCode::kInterrupted), 9);
  EXPECT_EQ(error_exit_code(ErrorCode::kOverloaded), 10);
  EXPECT_EQ(error_exit_code(ErrorCode::kCircuitOpen), 11);
}

TEST(ErrorTaxonomy, ServiceCodesAreDistinctAndTyped) {
  // The daemon's degraded-mode answers are first-class taxonomy members: a
  // shed request (kOverloaded) and a fast-failed class (kCircuitOpen) must
  // never alias each other or any solver failure.
  const Error shed(ErrorCode::kOverloaded, "queue full");
  const Error open(ErrorCode::kCircuitOpen, "class tripped");
  EXPECT_NE(shed.code(), open.code());
  EXPECT_NE(error_exit_code(shed.code()), error_exit_code(open.code()));
  EXPECT_NE(std::string(shed.what()).find("kOverloaded"), std::string::npos);
  EXPECT_NE(std::string(open.what()).find("kCircuitOpen"), std::string::npos);
}

TEST(ErrorTaxonomy, WhatCarriesCodeAndContext) {
  ErrorContext ctx;
  ctx.drift_ratio = 1.07;
  ctx.iterations = 42;
  const Error e(ErrorCode::kUnstableQbd, "boom", ctx);
  const std::string what = e.what();
  EXPECT_NE(what.find("[kUnstableQbd]"), std::string::npos) << what;
  EXPECT_NE(what.find("boom"), std::string::npos) << what;
  EXPECT_NE(what.find("1.07"), std::string::npos) << what;
  EXPECT_NE(what.find("42"), std::string::npos) << what;
  EXPECT_EQ(e.message(), "boom");
  // Error is a runtime_error, so pre-taxonomy catch sites keep working.
  EXPECT_THROW(throw Error(ErrorCode::kInvalidModel, "x"), std::runtime_error);
}

// --------------------------------------------------------------- preflight --

TEST(Preflight, AcceptsTheReferenceProcess) {
  const qbd::PreflightReport report = qbd::preflight(reference_qbd());
  EXPECT_GT(report.level_size, 0u);
  EXPECT_GE(report.closed_classes, 1u);
  EXPECT_GT(report.drift_ratio, 0.0);
  EXPECT_LT(report.drift_ratio, 1.0);
}

TEST(Preflight, NanEntryIsInvalidModel) {
  try {
    qbd::preflight(inject(reference_qbd(), Fault::kNanEntry));
    FAIL() << "preflight accepted a NaN entry";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidModel);
    EXPECT_NE(std::string(e.what()).find("A1"), std::string::npos) << e.what();
    EXPECT_TRUE(e.context().has_matrix_size());
  }
}

TEST(Preflight, InfEntryIsInvalidModel) {
  try {
    qbd::preflight(inject(reference_qbd(), Fault::kInfEntry));
    FAIL() << "preflight accepted an Inf entry";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidModel);
    EXPECT_NE(std::string(e.what()).find("A0"), std::string::npos) << e.what();
  }
}

TEST(Preflight, BrokenRowSumIsInvalidModel) {
  try {
    qbd::preflight(inject(reference_qbd(), Fault::kBrokenRowSum));
    FAIL() << "preflight accepted broken row sums";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidModel);
  }
}

TEST(Preflight, UnstableDriftIsDiagnosedQuicklyWithTheRatio) {
  const qbd::QbdProcess p = unstable_qbd(1.2);
  const auto t0 = std::chrono::steady_clock::now();
  try {
    qbd::preflight(p);
    FAIL() << "preflight accepted an unstable process";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnstableQbd);
    ASSERT_TRUE(e.context().has_drift_ratio());
    EXPECT_NEAR(e.context().drift_ratio, 1.2, 0.05);
    EXPECT_NE(std::string(e.what()).find(">= 1"), std::string::npos) << e.what();
  }
  // Microseconds in practice; the bound is generous for sanitizer builds.
  EXPECT_LT(seconds_since(t0), 1.0);
}

TEST(Preflight, StabilityMarginRejectsNearCriticalPoints) {
  qbd::PreflightOptions opts;
  opts.stability_margin = 0.1;
  try {
    qbd::preflight(unstable_qbd(0.95), opts);
    FAIL() << "margin 0.1 should reject rho ~ 0.95";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnstableQbd);
  }
  // The same point passes with the default margin.
  EXPECT_NO_THROW(qbd::preflight(unstable_qbd(0.95)));
}

TEST(Preflight, SolutionConstructorRunsPreflightBeforeIterating) {
  const auto t0 = std::chrono::steady_clock::now();
  try {
    const qbd::QbdSolution sol(unstable_qbd(1.3));
    FAIL() << "QbdSolution accepted an unstable process";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnstableQbd);
    EXPECT_NEAR(e.context().drift_ratio, 1.3, 0.05);
  }
  // Fail-fast: no solver iterations were spent on the unstable process.
  EXPECT_LT(seconds_since(t0), 1.0);
}

// ------------------------------------------------------- singular matrices --

TEST(SingularInputs, SingularA1FailsTypedInTheDirectRIteration) {
  const qbd::QbdProcess p = inject(reference_qbd(), Fault::kSingularBlock);
  qbd::RSolverOptions opts;
  opts.kind = qbd::RSolverKind::kFunctionalIteration;
  opts.enable_fallback = false;  // single-algorithm semantics: the LU error survives
  try {
    qbd::solve_r(p.a0, p.a1, p.a2, opts);
    FAIL() << "solve_r accepted a singular A1";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kSingularMatrix);
    EXPECT_NE(std::string(e.what()).find("singular"), std::string::npos) << e.what();
    EXPECT_TRUE(e.context().has_matrix_size());
  }
}

TEST(SingularInputs, GthZeroPivotNamesTheFoldedState) {
  // Two disconnected 2-state chains: a valid generator, but reducible, so GTH
  // hits a state with zero total rate toward lower-numbered states.
  const linalg::Matrix q{{-1.0, 1.0, 0.0, 0.0},
                         {1.0, -1.0, 0.0, 0.0},
                         {0.0, 0.0, -2.0, 2.0},
                         {0.0, 0.0, 2.0, -2.0}};
  try {
    markov::stationary_ctmc(q);
    FAIL() << "stationary_ctmc accepted a reducible chain";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kSingularMatrix);
    const std::string what = e.what();
    EXPECT_NE(what.find("GTH"), std::string::npos) << what;
    EXPECT_NE(what.find("irreducible"), std::string::npos) << what;
  }
}

// ----------------------------------------------------------- breakdown -----

TEST(NumericalBreakdown, NonFiniteIterateAbortsTheRungImmediately) {
  // Inf in A0 with A1 clean: the direct R iteration starts, its first iterate
  // turns non-finite, and the rung must abort typed instead of "converging"
  // on garbage (NaN is invisible to max-based norms).
  const qbd::QbdProcess p = inject(reference_qbd(), Fault::kInfEntry);
  qbd::RSolverOptions opts;
  opts.kind = qbd::RSolverKind::kFunctionalIteration;
  opts.enable_fallback = false;
  try {
    qbd::solve_r(p.a0, p.a1, p.a2, opts);
    FAIL() << "solve_r returned a result from non-finite inputs";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNumericalBreakdown);
    EXPECT_TRUE(e.context().has_iterations());
    EXPECT_LE(e.context().iterations, 2);
  }
}

TEST(NumericalBreakdown, LadderAggregatesWhenEveryRungBreaksDown) {
  // With fallback on, each rung breaks down in turn and the exhausted ladder
  // reports kNonConvergence listing every rung's diagnosis.
  const qbd::QbdProcess p = inject(reference_qbd(), Fault::kInfEntry);
  qbd::RSolverStats stats;
  try {
    qbd::solve_r(p.a0, p.a1, p.a2, {}, &stats);
    FAIL() << "the whole ladder accepted non-finite inputs";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNonConvergence);
    EXPECT_NE(std::string(e.what()).find("fallback ladder"), std::string::npos);
    EXPECT_EQ(stats.outcome.rungs_attempted, 3);
    EXPECT_EQ(stats.outcome.failures.size(), 3u);
  }
}

// ------------------------------------------------------------ the ladder ---

TEST(FallbackLadder, PrimaryRungWinsOnCleanInput) {
  const qbd::QbdProcess p = reference_qbd();
  qbd::RSolverStats stats;
  const linalg::Matrix r = qbd::solve_r(p.a0, p.a1, p.a2, {}, &stats);
  EXPECT_EQ(stats.outcome.rung, qbd::SolveRung::kPrimary);
  EXPECT_EQ(stats.outcome.rungs_attempted, 1);
  EXPECT_TRUE(stats.outcome.failures.empty());
  EXPECT_FALSE(stats.outcome.fallback_used());
  EXPECT_EQ(stats.tolerance_used, qbd::RSolverOptions{}.tolerance);
  EXPECT_LT(qbd::r_equation_residual(r, p.a0, p.a1, p.a2), 1e-8);
}

TEST(FallbackLadder, InjectedPrimaryFailureFallsBackToTheAlternate) {
  const qbd::QbdProcess p = reference_qbd();
  qbd::RSolverOptions opts;
  opts.inject_rung_failures = 1;
  qbd::RSolverStats stats;
  const linalg::Matrix r = qbd::solve_r(p.a0, p.a1, p.a2, opts, &stats);
  EXPECT_EQ(stats.outcome.rung, qbd::SolveRung::kAlternateAlgorithm);
  EXPECT_EQ(stats.outcome.rungs_attempted, 2);
  ASSERT_EQ(stats.outcome.failures.size(), 1u);
  EXPECT_NE(stats.outcome.failures[0].find("injected fault"), std::string::npos);
  EXPECT_TRUE(stats.outcome.fallback_used());
  // Fallback rungs run with the floored tolerance; residual-bound checks
  // (e.g. QbdSolution's dcheck) must use this, not the caller's 1e-13.
  EXPECT_GE(stats.tolerance_used, 1e-10);
  // The fallback result is a real solution, not a best-effort stand-in.
  EXPECT_LT(qbd::r_equation_residual(r, p.a0, p.a1, p.a2), 1e-8);
}

TEST(FallbackLadder, LastRungIsTheRelaxedUniformization) {
  const qbd::QbdProcess p = reference_qbd();
  qbd::RSolverOptions opts;
  opts.inject_rung_failures = 2;
  qbd::RSolverStats stats;
  const linalg::Matrix r = qbd::solve_r(p.a0, p.a1, p.a2, opts, &stats);
  EXPECT_EQ(stats.outcome.rung, qbd::SolveRung::kRelaxedUniformization);
  EXPECT_EQ(stats.outcome.rungs_attempted, 3);
  EXPECT_EQ(stats.outcome.failures.size(), 2u);
  EXPECT_LT(qbd::r_equation_residual(r, p.a0, p.a1, p.a2), 1e-8);
}

TEST(FallbackLadder, ExhaustedLadderThrowsAggregatedNonConvergence) {
  const qbd::QbdProcess p = reference_qbd();
  qbd::RSolverOptions opts;
  opts.inject_rung_failures = 3;
  qbd::RSolverStats stats;
  try {
    qbd::solve_r(p.a0, p.a1, p.a2, opts, &stats);
    FAIL() << "an all-failed ladder returned a result";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNonConvergence);
    const std::string what = e.what();
    EXPECT_NE(what.find("fallback ladder"), std::string::npos) << what;
    EXPECT_NE(what.find("injected fault"), std::string::npos) << what;
    EXPECT_EQ(stats.outcome.rungs_attempted, 3);
    EXPECT_EQ(stats.outcome.failures.size(), 3u);
  }
}

TEST(FallbackLadder, DisabledFallbackPropagatesTheOriginalError) {
  const qbd::QbdProcess p = reference_qbd();
  qbd::RSolverOptions opts;
  opts.max_iters = 2;  // far too few for convergence from scratch
  opts.enable_fallback = false;
  try {
    qbd::solve_r(p.a0, p.a1, p.a2, opts);
    FAIL() << "2 iterations cannot converge";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNonConvergence);
    EXPECT_EQ(e.context().iterations, 2);
    // The single-rung error, not the aggregated ladder message.
    EXPECT_EQ(std::string(e.what()).find("fallback ladder"), std::string::npos);
  }
}

TEST(FallbackLadder, SolutionRecordsTheFallbackCounter) {
  const qbd::QbdProcess p = reference_qbd();
  qbd::RSolverOptions opts;
  opts.inject_rung_failures = 1;
  obs::MetricsRegistry metrics;
  const qbd::QbdSolution sol(p, opts, &metrics);
  EXPECT_EQ(metrics.counter("qbd.solve.fallback_used"), 1u);
  EXPECT_TRUE(sol.solver_stats().outcome.fallback_used());
  // A clean solve materializes the counter at 0 (schema stability).
  obs::MetricsRegistry clean;
  const qbd::QbdSolution ok(p, {}, &clean);
  EXPECT_EQ(clean.counter("qbd.solve.fallback_used"), 0u);
}

// ------------------------------------------------- per-point degradation ---

TEST(SweepDegradation, TrySolvePointSurvivesUnstablePoints) {
  const auto workload = workloads::email_poisson();
  const bench::PointResult bad = bench::try_solve_point(workload, 1.15, 0.3);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error->code, "kUnstableQbd");
  EXPECT_GE(bad.error->drift_ratio, 1.0);
  // The sweep continues: the next point solves normally.
  const bench::PointResult good = bench::try_solve_point(workload, 0.3, 0.3);
  ASSERT_TRUE(good.ok());
  EXPECT_GT(good.metrics->fg_queue_length, 0.0);
}

TEST(SweepDegradation, ActiveBenchRunRecordsTheErrorInTheReport) {
  const char* argv[] = {"test_robustness"};
  bench::BenchRun run(1, argv, "test.robustness");
  const auto workload = workloads::email_poisson();
  EXPECT_TRUE(bench::try_solve_point(workload, 0.3, 0.3).ok());
  EXPECT_FALSE(bench::try_solve_point(workload, 1.15, 0.3).ok());
  EXPECT_EQ(run.report().error_count(), 1u);
  EXPECT_EQ(run.metrics().counter("bench.solve_errors"), 1u);
  EXPECT_EQ(run.metrics().counter("bench.solve_points"), 2u);
}

}  // namespace
}  // namespace perfbg
