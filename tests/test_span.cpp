// Unit tests for the span-profiling subsystem: ScopedSpan nesting and
// attributes, the chrome-trace export shape (an array of complete events
// chrome://tracing can load), profile-tree aggregation, and the no-collector
// fast path.
#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json.hpp"
#include "obs/span.hpp"

namespace {

using namespace perfbg;
using obs::JsonValue;

/// Opens a three-deep span stack: outer -> middle -> inner, plus a second
/// top-level sibling after the stack unwinds.
void record_sample_spans() {
  {
    obs::ScopedSpan outer("unit.outer");
    outer.attr("matrix_size", JsonValue(std::int64_t{64}));
    {
      obs::ScopedSpan middle("unit.middle");
      {
        obs::ScopedSpan inner("unit.inner");
        inner.attr("iteration", JsonValue(std::int64_t{3}))
            .attr("residual", JsonValue(1e-9));
      }
      obs::ScopedSpan inner2("unit.inner");  // second instance, same name
    }
  }
  obs::ScopedSpan sibling("unit.sibling");
}

TEST(ScopedSpan, NoopWithoutCollector) {
  ASSERT_EQ(obs::SpanCollector::current(), nullptr);
  obs::ScopedSpan span("unit.orphan");
  EXPECT_FALSE(span.active());
  span.attr("ignored", JsonValue(1));  // must not allocate into a collector
  span.end();
  // Still no collector to receive anything; nothing to assert beyond "no
  // crash", which is the contract of the disabled path.
  EXPECT_EQ(obs::SpanCollector::current(), nullptr);
}

TEST(ScopedSpan, RecordsNestingAndAttributes) {
  obs::SpanCollector collector;
  {
    obs::SpanSession session(collector);
    EXPECT_EQ(obs::SpanCollector::current(), &collector);
    record_sample_spans();
  }
  EXPECT_EQ(obs::SpanCollector::current(), nullptr);

  const std::vector<obs::SpanRecord> spans = collector.snapshot();
  ASSERT_EQ(spans.size(), 5u);

  // Records land in close order: inner, inner2, middle, outer, sibling.
  auto find = [&](const std::string& name) {
    std::vector<const obs::SpanRecord*> found;
    for (const obs::SpanRecord& s : spans)
      if (s.name == name) found.push_back(&s);
    return found;
  };
  const obs::SpanRecord& outer = *find("unit.outer").at(0);
  const obs::SpanRecord& middle = *find("unit.middle").at(0);
  ASSERT_EQ(find("unit.inner").size(), 2u);
  const obs::SpanRecord& inner = *find("unit.inner").at(0);
  const obs::SpanRecord& sibling = *find("unit.sibling").at(0);

  EXPECT_EQ(outer.parent, -1);
  EXPECT_EQ(outer.depth, 0);
  EXPECT_EQ(middle.parent, outer.id);
  EXPECT_EQ(middle.depth, 1);
  EXPECT_EQ(inner.parent, middle.id);
  EXPECT_EQ(inner.depth, 2);
  EXPECT_EQ(sibling.parent, -1);

  // Containment: children start no earlier and end no later than parents.
  EXPECT_GE(inner.start_us, middle.start_us);
  EXPECT_LE(inner.start_us + inner.dur_us, middle.start_us + middle.dur_us + 1e-6);
  EXPECT_GE(middle.start_us, outer.start_us);
  EXPECT_LE(middle.start_us + middle.dur_us, outer.start_us + outer.dur_us + 1e-6);
  EXPECT_GE(sibling.start_us, outer.start_us + outer.dur_us - 1e-6);

  // Attributes survive in insertion order.
  ASSERT_EQ(outer.args.size(), 1u);
  EXPECT_EQ(outer.args[0].first, "matrix_size");
  EXPECT_EQ(outer.args[0].second.as_int(), 64);
  ASSERT_EQ(inner.args.size(), 2u);
  EXPECT_EQ(inner.args[0].first, "iteration");
  EXPECT_DOUBLE_EQ(inner.args[1].second.as_double(), 1e-9);
}

TEST(ScopedSpan, EndIsIdempotentAndInstallIsExclusive) {
  obs::SpanCollector collector;
  collector.install();
  {
    obs::ScopedSpan span("unit.once");
    span.end();
    span.end();  // second end must not double-record
  }
  EXPECT_EQ(collector.size(), 1u);

  obs::SpanCollector second;
  EXPECT_THROW(second.install(), std::invalid_argument);
  collector.uninstall();
  second.install();   // slot freed: now installable
  second.uninstall();
}

TEST(ChromeTrace, EventShapeIsLoadable) {
  obs::SpanCollector collector;
  {
    obs::SpanSession session(collector);
    record_sample_spans();
  }

  // The export must be a JSON *array* of complete events — the exact layout
  // chrome://tracing and Perfetto accept without a wrapper object.
  std::ostringstream out;
  collector.write_chrome_trace(out);
  const JsonValue doc = obs::parse_json(out.str());
  ASSERT_TRUE(doc.is_array());
  ASSERT_EQ(doc.as_array().size(), 5u);

  for (const JsonValue& event : doc.as_array()) {
    ASSERT_TRUE(event.is_object());
    for (const char* key : {"name", "ph", "ts", "dur", "pid", "tid", "args"})
      ASSERT_TRUE(event.contains(key)) << "missing chrome event field " << key;
    EXPECT_EQ(event.at("ph").as_string(), "X");  // complete event
    EXPECT_GE(event.at("ts").as_double(), 0.0);
    EXPECT_GE(event.at("dur").as_double(), 0.0);
    EXPECT_EQ(event.at("pid").as_int(), 1);
    ASSERT_TRUE(event.at("args").is_object());
  }

  // Timestamps of nested events are contained in their parents' window.
  auto window = [&](const std::string& name) {
    for (const JsonValue& e : doc.as_array())
      if (e.at("name").as_string() == name)
        return std::pair<double, double>(
            e.at("ts").as_double(), e.at("ts").as_double() + e.at("dur").as_double());
    ADD_FAILURE() << "no event named " << name;
    return std::pair<double, double>(0.0, 0.0);
  };
  const auto [outer_start, outer_end] = window("unit.outer");
  const auto [middle_start, middle_end] = window("unit.middle");
  const auto [inner_start, inner_end] = window("unit.inner");
  EXPECT_GE(middle_start, outer_start);
  EXPECT_LE(middle_end, outer_end + 1e-6);
  EXPECT_GE(inner_start, middle_start);
  EXPECT_LE(inner_end, middle_end + 1e-6);

  // Attributes ride along under "args".
  bool found_attr = false;
  for (const JsonValue& e : doc.as_array())
    if (e.at("name").as_string() == "unit.outer")
      found_attr = e.at("args").contains("matrix_size");
  EXPECT_TRUE(found_attr);
}

TEST(ChromeTrace, FileExportRoundTrips) {
  obs::SpanCollector collector;
  {
    obs::SpanSession session(collector);
    obs::ScopedSpan span("unit.file");
  }
  const std::string path = testing::TempDir() + "perfbg_spans.json";
  collector.write_chrome_trace(path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::remove(path.c_str());
  const JsonValue doc = obs::parse_json(buffer.str());
  ASSERT_EQ(doc.as_array().size(), 1u);
  EXPECT_EQ(doc.as_array()[0].at("name").as_string(), "unit.file");

  EXPECT_THROW(collector.write_chrome_trace("/nonexistent-dir/x.json"),
               std::runtime_error);
}

TEST(ProfileTree, AggregatesByNamePath) {
  obs::SpanCollector collector;
  {
    obs::SpanSession session(collector);
    record_sample_spans();
    record_sample_spans();  // second pass doubles every count
  }

  const obs::ProfileNode root = collector.profile_tree();
  EXPECT_EQ(root.name, "<root>");
  ASSERT_EQ(root.children.size(), 2u);  // unit.outer and unit.sibling

  const obs::ProfileNode* outer = root.find("unit.outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 2u);
  const obs::ProfileNode* middle = outer->find("unit.middle");
  ASSERT_NE(middle, nullptr);
  EXPECT_EQ(middle->count, 2u);
  // Both unit.inner instances merged into one node with count 4 (2 per pass).
  const obs::ProfileNode* inner = middle->find("unit.inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 4u);
  EXPECT_TRUE(inner->children.empty());

  // self + children == total at every level (within clock noise).
  double child_total = 0.0;
  for (const obs::ProfileNode& c : outer->children) child_total += c.total_ms;
  EXPECT_NEAR(outer->self_ms + child_total, outer->total_ms, 1e-6);
  EXPECT_GE(outer->self_ms, 0.0);

  // JSON projections.
  const JsonValue tree = obs::profile_to_json(root);
  EXPECT_EQ(tree.at("name").as_string(), "<root>");
  ASSERT_TRUE(tree.at("children").is_array());

  const JsonValue top = obs::top_spans_json(root, 3);
  ASSERT_TRUE(top.is_array());
  ASSERT_LE(top.as_array().size(), 3u);
  for (const JsonValue& row : top.as_array())
    for (const char* key : {"name", "count", "total_ms", "self_ms"})
      ASSERT_TRUE(row.contains(key)) << "missing top-span field " << key;
  // Sorted by self time, descending.
  for (std::size_t i = 1; i < top.as_array().size(); ++i)
    EXPECT_GE(top.as_array()[i - 1].at("self_ms").as_double(),
              top.as_array()[i].at("self_ms").as_double());
}

TEST(ScopedSpan, ThreadsGetIndependentStacks) {
  obs::SpanCollector collector;
  {
    obs::SpanSession session(collector);
    obs::ScopedSpan main_span("unit.main");
    std::thread worker([] {
      obs::ScopedSpan worker_span("unit.worker");
      obs::ScopedSpan nested("unit.worker.nested");
    });
    worker.join();
  }
  const std::vector<obs::SpanRecord> spans = collector.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  const obs::SpanRecord* worker_root = nullptr;
  const obs::SpanRecord* worker_nested = nullptr;
  const obs::SpanRecord* main_span = nullptr;
  for (const obs::SpanRecord& s : spans) {
    if (s.name == "unit.worker") worker_root = &s;
    if (s.name == "unit.worker.nested") worker_nested = &s;
    if (s.name == "unit.main") main_span = &s;
  }
  ASSERT_NE(worker_root, nullptr);
  ASSERT_NE(worker_nested, nullptr);
  ASSERT_NE(main_span, nullptr);
  // The worker's root span does NOT nest under the main thread's open span —
  // span stacks are per thread.
  EXPECT_EQ(worker_root->parent, -1);
  EXPECT_EQ(worker_nested->parent, worker_root->id);
  EXPECT_NE(worker_root->tid, main_span->tid);
}

TEST(TraceContext, HexRoundTripAndParsing) {
  EXPECT_EQ(obs::trace_id_hex(0), "0000000000000000");
  EXPECT_EQ(obs::trace_id_hex(0xabcdefull), "0000000000abcdef");
  EXPECT_EQ(obs::trace_id_hex(~0ull), "ffffffffffffffff");

  std::uint64_t out = 99;
  EXPECT_TRUE(obs::parse_trace_id_hex("abcdef", out));
  EXPECT_EQ(out, 0xabcdefull);
  EXPECT_TRUE(obs::parse_trace_id_hex("0xABCDEF", out));
  EXPECT_EQ(out, 0xabcdefull);
  EXPECT_TRUE(obs::parse_trace_id_hex(obs::trace_id_hex(0x1234u), out));
  EXPECT_EQ(out, 0x1234u);
  EXPECT_TRUE(obs::parse_trace_id_hex("0", out));
  EXPECT_EQ(out, 0u);

  EXPECT_FALSE(obs::parse_trace_id_hex("", out));
  EXPECT_FALSE(obs::parse_trace_id_hex("0x", out));
  EXPECT_FALSE(obs::parse_trace_id_hex("xyz", out));
  EXPECT_FALSE(obs::parse_trace_id_hex("12 34", out));
  EXPECT_FALSE(obs::parse_trace_id_hex("00000000000000001", out));  // 17 digits
}

TEST(TraceContext, CrossThreadSpansFormOneConnectedTree) {
  obs::SpanCollector collector;
  {
    obs::SpanSession session(collector);
    obs::TraceContext link;
    {
      obs::ScopedSpan request("unit.request", obs::TraceContext{0x42, -1});
      link = request.context();
      EXPECT_EQ(link.trace_id, 0x42u);
      std::thread worker([link] {
        obs::ScopedSpan wspan("unit.worker", link);
        obs::ScopedSpan solve("unit.solve");  // thread-local nesting continues
      });
      worker.join();
    }
    obs::ScopedSpan after("unit.after");  // main thread's own state, untraced
  }

  const std::vector<obs::SpanRecord> spans = collector.snapshot();
  const obs::SpanRecord *request = nullptr, *worker = nullptr, *solve = nullptr,
                        *after = nullptr;
  for (const obs::SpanRecord& s : spans) {
    if (s.name == "unit.request") request = &s;
    if (s.name == "unit.worker") worker = &s;
    if (s.name == "unit.solve") solve = &s;
    if (s.name == "unit.after") after = &s;
  }
  ASSERT_NE(request, nullptr);
  ASSERT_NE(worker, nullptr);
  ASSERT_NE(solve, nullptr);
  ASSERT_NE(after, nullptr);

  // One connected tree across threads: request -> worker -> solve, all
  // stamped with the request's trace id.
  EXPECT_EQ(request->parent, -1);
  EXPECT_EQ(request->trace_id, 0x42u);
  EXPECT_EQ(worker->parent, request->id);
  EXPECT_EQ(worker->trace_id, 0x42u);
  EXPECT_EQ(solve->parent, worker->id);
  EXPECT_EQ(solve->trace_id, 0x42u);
  EXPECT_NE(worker->tid, request->tid);

  // The main thread's nesting state survived the explicit-parent span.
  EXPECT_EQ(after->parent, -1);
  EXPECT_EQ(after->trace_id, 0u);
}

TEST(TraceContext, ExplicitParentRestoresThreadStateForTheNextRequest) {
  obs::SpanCollector collector;
  {
    obs::SpanSession session(collector);
    obs::ScopedSpan outer("unit.outer");
    {
      // A worker thread serving request A under an explicit foreign parent...
      obs::ScopedSpan a("unit.a", obs::TraceContext{7, outer.context().parent_span});
    }
    // ...must not leak request A's linkage into request B on the same thread.
    obs::ScopedSpan b("unit.b");
    b.end();
    EXPECT_EQ(b.context().trace_id, 0u);
  }

  const std::vector<obs::SpanRecord> spans = collector.snapshot();
  const obs::SpanRecord *a = nullptr, *b = nullptr, *outer = nullptr;
  for (const obs::SpanRecord& s : spans) {
    if (s.name == "unit.a") a = &s;
    if (s.name == "unit.b") b = &s;
    if (s.name == "unit.outer") outer = &s;
  }
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(a->parent, outer->id);
  EXPECT_EQ(a->trace_id, 7u);
  EXPECT_EQ(b->parent, outer->id);  // natural nesting resumed
  EXPECT_EQ(b->trace_id, 0u);
}

TEST(ChromeTrace, TraceIdSurfacesInArgs) {
  obs::SpanCollector collector;
  {
    obs::SpanSession session(collector);
    obs::ScopedSpan span("unit.traced", obs::TraceContext{0xbeef, -1});
  }
  const JsonValue events = collector.chrome_trace_json();
  ASSERT_EQ(events.as_array().size(), 1u);
  const JsonValue& args = events.as_array()[0].at("args");
  ASSERT_NE(args.find("trace_id"), nullptr);
  EXPECT_EQ(args.at("trace_id").as_string(), obs::trace_id_hex(0xbeef));
}

TEST(SpanCollector, ClearResets) {
  obs::SpanCollector collector;
  {
    obs::SpanSession session(collector);
    obs::ScopedSpan span("unit.cleared");
  }
  EXPECT_EQ(collector.size(), 1u);
  collector.clear();
  EXPECT_EQ(collector.size(), 0u);
  EXPECT_TRUE(collector.profile_tree().children.empty());
}

}  // namespace
