// End-to-end checks of the structured run report: the instrumented
// model-solve + simulation pipeline (the same assembly perfbg_cli and the
// benches perform behind --metrics-json) must emit a parseable JSON document
// with the documented keys, and identical simulator runs must produce
// identical metric values.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/model.hpp"
#include "obs/json.hpp"
#include "obs/report.hpp"
#include "qbd/solution.hpp"
#include "sim/fgbg_simulator.hpp"
#include "workloads/presets.hpp"

namespace {

using namespace perfbg;
using obs::JsonValue;

core::FgBgParams test_params() {
  core::FgBgParams params{workloads::email_poisson()};
  params.bg_probability = 0.3;
  params.bg_buffer = 5;
  return params;
}

sim::SimConfig short_sim_config() {
  sim::SimConfig cfg;
  cfg.warmup_time = 1.0e3;
  cfg.batch_time = 1.0e4;
  cfg.batches = 5;
  return cfg;
}

/// The report assembly the CLI runs behind --metrics-json: instrumented model
/// solve with a recorded convergence trace, plus an instrumented simulation.
/// (RunReport owns a mutex-guarded registry, so it is filled in place.)
void assemble_run_report(obs::RunReport& report) {
  report.set_config("workload", JsonValue("poisson"));

  qbd::RSolverOptions opts;
  opts.record_trace = true;
  const core::FgBgModel model(test_params(), &report.metrics());
  const core::FgBgSolution solution = model.solve(opts);
  export_convergence_trace(solution.qbd().solver_stats(),
                           report.trace("qbd.rsolve.convergence"));

  sim::SimConfig cfg = short_sim_config();
  cfg.metrics = &report.metrics();
  cfg.batch_trace = &report.trace("sim.batch");
  sim::simulate_fgbg(test_params(), cfg);
}

TEST(RunReportSchema, RequiredKeysPresentAfterFileRoundTrip) {
  obs::RunReport report("test_report_schema");
  assemble_run_report(report);
  const std::string path = testing::TempDir() + "perfbg_run_report.json";
  report.write_json(path);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const JsonValue doc = obs::parse_json(buffer.str());
  std::remove(path.c_str());

  EXPECT_EQ(doc.at("schema").as_string(), obs::kRunReportSchema);
  EXPECT_EQ(doc.at("tool").as_string(), "test_report_schema");
  EXPECT_EQ(doc.at("config").at("workload").as_string(), "poisson");

  // Solver phase timings.
  const JsonValue& timers = doc.at("timers");
  for (const char* key : {"core.chain_build", "core.solve.total",
                          "core.solve.metrics_eval", "qbd.preflight",
                          "qbd.solve.r", "qbd.solve.boundary", "qbd.solve.tail",
                          "sim.run"}) {
    ASSERT_TRUE(timers.contains(key)) << "missing timer " << key;
    EXPECT_GE(timers.at(key).at("total_ms").as_double(), 0.0);
    EXPECT_GE(timers.at(key).at("count").as_int(), 1);
  }

  // Solver and simulator counters. qbd.solve.fallback_used is always
  // materialized (0 on a clean solve) so harvesters need no key probing.
  const JsonValue& counters = doc.at("counters");
  for (const char* key :
       {"qbd.rsolve.iterations", "qbd.solve.count", "qbd.solve.fallback_used",
        "sim.batches", "sim.events.fg_arrival", "sim.events.fg_completion",
        "sim.events.bg_generated", "sim.events.bg_completion",
        "sim.events.bg_dropped", "sim.events.idle_expiry"}) {
    ASSERT_TRUE(counters.contains(key)) << "missing counter " << key;
  }
  EXPECT_GT(counters.at("sim.events.fg_arrival").as_int(), 0);
  EXPECT_GT(counters.at("qbd.rsolve.iterations").as_int(), 0);
  EXPECT_EQ(counters.at("qbd.solve.fallback_used").as_int(), 0);

  // Warmup diagnostics and the preflight drift gauge.
  const JsonValue& gauges = doc.at("gauges");
  for (const char* key : {"qbd.preflight.drift_ratio", "qbd.rsolve.final_residual",
                          "qbd.r.spectral_radius", "sim.warmup.time",
                          "sim.warmup.fg_arrivals", "sim.warmup.end_qlen_fg",
                          "sim.warmup.end_qlen_bg"}) {
    ASSERT_TRUE(gauges.contains(key)) << "missing gauge " << key;
  }
  EXPECT_GT(gauges.at("qbd.preflight.drift_ratio").as_double(), 0.0);
  EXPECT_LT(gauges.at("qbd.preflight.drift_ratio").as_double(), 1.0);

  // The errors array is always present; empty on a clean run.
  ASSERT_TRUE(doc.contains("errors"));
  EXPECT_EQ(doc.at("errors").as_array().size(), 0u);

  // Per-iteration R-solver convergence trace.
  const JsonValue& convergence = doc.at("traces").at("qbd.rsolve.convergence");
  ASSERT_GT(convergence.as_array().size(), 0u);
  EXPECT_EQ(static_cast<std::int64_t>(convergence.as_array().size()),
            counters.at("qbd.rsolve.iterations").as_int());
  for (const JsonValue& row : convergence.as_array()) {
    for (const char* key : {"iteration", "increment_norm", "residual", "wall_ms"})
      ASSERT_TRUE(row.contains(key)) << "missing trace field " << key;
  }

  // Per-batch simulator estimates.
  const JsonValue& batches = doc.at("traces").at("sim.batch");
  ASSERT_EQ(batches.as_array().size(), 5u);
  for (const JsonValue& row : batches.as_array()) {
    for (const char* key : {"batch", "qlen_fg", "qlen_bg", "busy_fraction",
                            "fg_throughput", "fg_arrivals"})
      ASSERT_TRUE(row.contains(key)) << "missing batch field " << key;
  }
}

TEST(RunReportSchema, TracesKeyAlwaysPresent) {
  // "traces" is part of the schema even when nothing was traced: an empty
  // object, not an absent key, so harvesters can index it unconditionally.
  obs::RunReport report("test_report_schema");
  const JsonValue empty = obs::parse_json(report.to_json().dump());
  ASSERT_TRUE(empty.contains("traces"));
  ASSERT_TRUE(empty.at("traces").is_object());
  EXPECT_EQ(empty.at("traces").as_object().size(), 0u);

  // An empty-but-created trace buffer still materializes its key.
  report.trace("never.recorded");
  const JsonValue doc = obs::parse_json(report.to_json().dump());
  ASSERT_TRUE(doc.at("traces").contains("never.recorded"));
  EXPECT_EQ(doc.at("traces").at("never.recorded").as_array().size(), 0u);
}

TEST(RunReportSchema, ErrorRecordsRoundTripThroughTheErrorsArray) {
  obs::RunReport report("test_report_schema");
  JsonValue record = JsonValue::object();
  record.set("code", JsonValue(std::string("kUnstableQbd")));
  record.set("message", JsonValue(std::string("drift ratio rho = 1.2 >= 1")));
  record.set("drift_ratio", JsonValue(1.2));
  report.add_error(std::move(record));
  ASSERT_EQ(report.error_count(), 1u);

  const JsonValue doc = obs::parse_json(report.to_json().dump());
  const auto& errors = doc.at("errors").as_array();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors[0].at("code").as_string(), "kUnstableQbd");
  EXPECT_DOUBLE_EQ(errors[0].at("drift_ratio").as_double(), 1.2);
}

TEST(RunReportSchema, TraceJsonlExportParsesLineByLine) {
  obs::RunReport report("test_report_schema");
  assemble_run_report(report);
  const std::string path = testing::TempDir() + "perfbg_run_trace.jsonl";
  report.write_trace_jsonl(path);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0, convergence_rows = 0, batch_rows = 0;
  while (std::getline(in, line)) {
    const JsonValue v = obs::parse_json(line);
    const std::string& event = v.at("event").as_string();
    if (event == "qbd.rsolve.convergence") ++convergence_rows;
    if (event == "sim.batch") ++batch_rows;
    ++lines;
  }
  std::remove(path.c_str());
  EXPECT_GT(convergence_rows, 0u);
  EXPECT_EQ(batch_rows, 5u);
  EXPECT_EQ(lines, convergence_rows + batch_rows);
}

TEST(RunReportSchema, IdenticalSimRunsProduceIdenticalMetrics) {
  auto run = [](obs::MetricsRegistry& registry, obs::VectorSink& batches) {
    sim::SimConfig cfg = short_sim_config();
    cfg.metrics = &registry;
    cfg.batch_trace = &batches;
    return sim::simulate_fgbg(test_params(), cfg);
  };
  obs::MetricsRegistry m1, m2;
  obs::VectorSink t1, t2;
  const sim::SimMetrics a = run(m1, t1);
  const sim::SimMetrics b = run(m2, t2);

  // Point estimates agree exactly (same seed, same event sequence).
  EXPECT_EQ(a.fg_queue_length.mean, b.fg_queue_length.mean);
  EXPECT_EQ(a.fg_arrivals, b.fg_arrivals);
  EXPECT_EQ(a.bg_generated, b.bg_generated);
  EXPECT_EQ(a.bg_completed, b.bg_completed);

  // The full registries match modulo wall-clock timers, as do the traces.
  EXPECT_EQ(m1.to_json(false).dump(), m2.to_json(false).dump());
  ASSERT_EQ(t1.events().size(), t2.events().size());
  for (std::size_t i = 0; i < t1.events().size(); ++i)
    EXPECT_EQ(t1.events()[i].to_json().dump(), t2.events()[i].to_json().dump());
}

TEST(RunReportSchema, InstrumentedSolveMatchesUninstrumented) {
  // Observability must not perturb the numbers.
  const core::FgBgMetrics plain = core::FgBgModel(test_params()).solve().metrics();
  obs::MetricsRegistry registry;
  qbd::RSolverOptions opts;
  opts.record_trace = true;
  const core::FgBgMetrics instrumented =
      core::FgBgModel(test_params(), &registry).solve(opts).metrics();
  EXPECT_EQ(plain.fg_queue_length, instrumented.fg_queue_length);
  EXPECT_EQ(plain.bg_completion, instrumented.bg_completion);
  EXPECT_EQ(plain.fg_delayed, instrumented.fg_delayed);
  EXPECT_EQ(registry.timer("qbd.solve.r").count, 1u);
}

}  // namespace
