// End-to-end stochastic validation: the analytic metrics must land inside
// (slightly widened) simulation confidence intervals across a parameter grid.
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/model.hpp"
#include "sim/fgbg_simulator.hpp"
#include "traffic/processes.hpp"
#include "workloads/presets.hpp"

namespace perfbg {
namespace {

struct SimPoint {
  const char* label;
  const char* workload;  // "poisson", "softdev", "ipp"
  double util;
  double p;
  int buffer;
  double idle;
};

traffic::MarkovianArrivalProcess process_for(const std::string& name, double util) {
  if (name == "poisson") return traffic::poisson(util / 6.0);
  if (name == "softdev") return workloads::software_dev().scaled_to_utilization(util, 6.0);
  if (name == "ipp") return workloads::email_ipp().scaled_to_utilization(util, 6.0);
  throw std::logic_error("unknown workload");
}

class ModelVsSim : public ::testing::TestWithParam<SimPoint> {};

void expect_close(const char* what, double analytic, const sim::Estimate& e) {
  // 3x the half-width plus a small absolute slack absorbs the CI
  // undercoverage that batch means exhibit under correlated input.
  const double slack = 3.0 * e.half_width + 0.02 * std::max(1.0, std::abs(e.mean)) + 1e-3;
  EXPECT_NEAR(analytic, e.mean, slack) << what;
}

TEST_P(ModelVsSim, MetricsAgree) {
  const SimPoint pt = GetParam();
  core::FgBgParams params{process_for(pt.workload, pt.util)};
  params.bg_probability = pt.p;
  params.bg_buffer = pt.buffer;
  params.idle_wait_intensity = pt.idle;

  const core::FgBgMetrics m = core::FgBgModel(params).solve().metrics();

  sim::SimConfig cfg;
  cfg.warmup_time = 3e5;
  cfg.batch_time = 1.5e6;
  cfg.batches = 10;
  cfg.seed = 0xC0FFEE ^ static_cast<std::uint64_t>(pt.util * 1000.0);
  const sim::SimMetrics s = sim::simulate_fgbg(params, cfg);

  expect_close("fg_queue_length", m.fg_queue_length, s.fg_queue_length);
  expect_close("bg_queue_length", m.bg_queue_length, s.bg_queue_length);
  expect_close("bg_completion", m.bg_completion, s.bg_completion);
  expect_close("fg_delayed_arrivals", m.fg_delayed_arrivals, s.fg_delayed_arrivals);
  expect_close("fg_response_time", m.fg_response_time, s.fg_response_time);
  expect_close("busy_fraction", m.busy_fraction, s.busy_fraction);
  expect_close("bg_busy_fraction", m.bg_busy_fraction, s.bg_busy_fraction);
  expect_close("idle_fraction", m.idle_fraction, s.idle_fraction);
  expect_close("fg_throughput", m.fg_throughput, s.fg_throughput);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelVsSim,
    ::testing::Values(
        SimPoint{"poisson_low", "poisson", 0.15, 0.3, 5, 1.0},
        SimPoint{"poisson_mid", "poisson", 0.50, 0.6, 5, 1.0},
        SimPoint{"poisson_high", "poisson", 0.80, 0.3, 5, 1.0},
        SimPoint{"poisson_smallbuf", "poisson", 0.40, 0.9, 1, 1.0},
        SimPoint{"poisson_longidle", "poisson", 0.30, 0.6, 5, 3.0},
        SimPoint{"poisson_shortidle", "poisson", 0.30, 0.6, 5, 0.25},
        SimPoint{"softdev_low", "softdev", 0.15, 0.3, 5, 1.0},
        SimPoint{"softdev_mid", "softdev", 0.35, 0.6, 5, 1.0},
        SimPoint{"softdev_bigbuf", "softdev", 0.25, 0.9, 10, 1.0},
        SimPoint{"ipp_mid", "ipp", 0.40, 0.6, 5, 1.0}),
    [](const ::testing::TestParamInfo<SimPoint>& info) { return info.param.label; });

}  // namespace
}  // namespace perfbg
