// perfbgd_loadgen — multi-threaded load and chaos client for perfbgd.
//
// Modes:
//   herd   Every client pipelines `--requests` *identical* solve requests, so
//          a run with C clients x R requests is a C*R-strong thundering herd
//          on one cache key: the daemon must answer every frame while
//          executing the solve exactly once (single-flight coalescing). CI
//          asserts exactly that from the daemon's metricsz counters.
//   mix    Requests round-robin over `--distinct` different model points:
//          steady-state traffic with a bounded working set (cache + LRU
//          coverage; solves executed == distinct models).
//   chaos  Each client interleaves valid requests with adversarial frames:
//          malformed JSON, NaN payloads, 200-deep nesting, oversized frames,
//          mid-frame disconnects, and request-then-vanish kills. The daemon
//          must answer the valid requests and the well-formed attacks with
//          typed errors and survive the rest. Deterministic per-client RNG.
//
// Recovery discipline: connects retry under decorrelated-jitter backoff
// (seeded per client, so a chaos run's reconnect timing replays with the
// run), and kOverloaded / kCircuitOpen responses are backoff-then-retry
// signals, not failures — the daemon is telling a well-behaved client to
// come back later, and a client herd that instead hammers or gives up turns
// every overload into an outage. Attempt counts land in the JSON summary.
//
// Output: one compact JSON summary line on stdout, then (with --scrape) the
// daemon's healthz JSON or metricsz Prometheus text. Exit 0 iff every
// response the protocol owes us arrived (deliberate kills excluded) and no
// response frame was unparseable.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "chaos/backoff.hpp"
#include "chaos/fault_plan.hpp"
#include "obs/json.hpp"
#include "obs/span.hpp"
#include "server/client.hpp"
#include "server/io.hpp"
#include "util/flags.hpp"

namespace {

using perfbg::obs::JsonValue;
using perfbg::server::Client;

struct Totals {
  std::mutex mu;
  std::uint64_t sent = 0;        // frames that expect a response
  std::uint64_t responses = 0;   // parseable response frames received
  std::uint64_t ok = 0;
  std::uint64_t cached = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t killed = 0;      // frames deliberately abandoned (chaos)
  std::uint64_t attacks = 0;     // adversarial frames sent (chaos)
  std::uint64_t trace_echoed = 0;    // responses echoing the trace id we sent
  std::uint64_t trace_mismatch = 0;  // responses with a wrong/missing echo
  std::uint64_t protocol_failures = 0;  // owed responses that never arrived
  std::uint64_t connect_failures = 0;   // clients that never got a connection
  std::uint64_t connect_attempts = 0;   // connect() calls, including retries
  std::uint64_t reconnect_backoffs = 0; // backoff sleeps before a re-connect
  std::uint64_t request_retries = 0;    // frames re-issued after kOverloaded/kCircuitOpen
  std::uint64_t retry_ok = 0;           // retried frames that ended ok
  double backoff_ms_total = 0.0;        // total time spent backing off
  std::map<std::string, std::uint64_t> errors;  // code -> count
};

struct Config {
  std::string socket;
  std::string mode = "herd";
  int clients = 8;
  int requests = 4;
  int distinct = 4;
  std::string workload = "email";
  double util = 0.15;
  double p = 0.3;
  int buffer = 5;
  double deadline_ms = 0.0;
  double test_sleep_ms = 0.0;
  bool trace = false;  // attach a client-minted trace_id to every request
  int connect_retries = 5;   // connection attempts before a client gives up
  int request_retries = 3;   // re-issues per kOverloaded/kCircuitOpen refusal
  double backoff_base_ms = 10.0;
  double backoff_cap_ms = 2000.0;
  std::uint64_t seed = 1;    // backoff jitter seed (per-client derived)
};

/// Error codes that mean "come back later", never "give up".
bool is_backoff_signal(const std::string& code) {
  return code == "kOverloaded" || code == "kCircuitOpen";
}

/// The error code of a response ("" when ok or uncoded).
std::string response_error_code(const JsonValue& response) {
  if (const JsonValue* err = response.find("error"); err && err->is_object())
    if (const JsonValue* code = err->find("code"); code && code->is_string())
      return code->as_string();
  return "";
}

/// Connects with decorrelated-jitter retries. Throws the last failure once
/// `cfg.connect_retries` attempts are spent.
std::unique_ptr<Client> connect_with_backoff(const Config& cfg, Totals& totals,
                                             perfbg::chaos::DecorrelatedJitter& jitter) {
  for (int attempt = 1;; ++attempt) {
    {
      std::lock_guard<std::mutex> lock(totals.mu);
      ++totals.connect_attempts;
    }
    try {
      return std::make_unique<Client>(cfg.socket);
    } catch (const std::exception&) {
      if (attempt >= std::max(1, cfg.connect_retries)) throw;
      const double sleep_ms = jitter.next_ms();
      {
        std::lock_guard<std::mutex> lock(totals.mu);
        ++totals.reconnect_backoffs;
        totals.backoff_ms_total += sleep_ms;
      }
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(sleep_ms));
    }
  }
}

/// Deterministic client-side trace id for (client, request) — nonzero, unique
/// within a run, so --trace runs are reproducible and the echo is checkable.
std::uint64_t client_trace_id(int client_index, int request_index) {
  return (static_cast<std::uint64_t>(client_index + 1) << 32) |
         static_cast<std::uint64_t>(request_index + 1);
}

JsonValue model_request(const Config& cfg, const std::string& id, int variant) {
  // variant < 0: the herd's single shared point; otherwise one of `distinct`
  // well-spaced stable utilizations.
  double util = cfg.util;
  if (variant >= 0 && cfg.distinct > 0)
    util = 0.10 + 0.70 * static_cast<double>(variant % cfg.distinct) /
                      static_cast<double>(cfg.distinct);
  JsonValue v = perfbg::server::solve_request(id, cfg.workload, util, cfg.p,
                                              cfg.buffer, cfg.deadline_ms);
  if (cfg.test_sleep_ms > 0.0) v.set("test_sleep_ms", cfg.test_sleep_ms);
  return v;
}

void tally_response(Totals& totals, const JsonValue& response) {
  std::lock_guard<std::mutex> lock(totals.mu);
  ++totals.responses;
  const JsonValue* ok = response.find("ok");
  if (ok && ok->is_bool() && ok->as_bool()) {
    ++totals.ok;
    if (const JsonValue* c = response.find("cached"); c && c->is_bool() && c->as_bool())
      ++totals.cached;
    if (const JsonValue* c = response.find("coalesced"); c && c->is_bool() && c->as_bool())
      ++totals.coalesced;
  } else if (const JsonValue* err = response.find("error"); err && err->is_object()) {
    if (const JsonValue* code = err->find("code"); code && code->is_string())
      ++totals.errors[code->as_string()];
    else
      ++totals.errors["(uncoded)"];
  } else {
    ++totals.errors["(malformed response)"];
  }
}

/// herd / mix: pipeline `requests` frames, collect every response, then
/// retry (synchronously, under backoff) the ones the daemon refused with a
/// backoff signal.
void run_load_client(const Config& cfg, int client_index, Totals& totals) {
  perfbg::chaos::DecorrelatedJitter jitter(
      cfg.backoff_base_ms, cfg.backoff_cap_ms,
      perfbg::chaos::derive_seed(cfg.seed, static_cast<std::uint64_t>(client_index)));
  try {
    std::unique_ptr<Client> client = connect_with_backoff(cfg, totals, jitter);
    int sent = 0;
    std::vector<std::string> expected_traces;
    for (int r = 0; r < cfg.requests; ++r) {
      const std::string id =
          "c" + std::to_string(client_index) + "/" + std::to_string(r);
      const int variant =
          cfg.mode == "mix" ? client_index * cfg.requests + r : -1;
      JsonValue request = model_request(cfg, id, variant);
      if (cfg.trace) {
        const std::string hex =
            perfbg::obs::trace_id_hex(client_trace_id(client_index, r));
        request.set("trace_id", hex);
        expected_traces.push_back(hex);
      }
      if (!client->send_line(request.dump())) break;
      ++sent;
    }
    {
      std::lock_guard<std::mutex> lock(totals.mu);
      totals.sent += static_cast<std::uint64_t>(sent);
    }
    int received = 0;
    std::string line;
    std::vector<int> refused;  ///< request indices refused with a backoff signal
    for (; received < sent; ++received) {
      if (!client->recv_line(line)) break;
      const JsonValue response = perfbg::obs::parse_json(line);
      if (cfg.trace) {
        // Responses arrive in request order per connection, so the echo at
        // index `received` must be the trace id sent at index `received`.
        const JsonValue* echo = response.find("trace_id");
        const bool match = echo && echo->is_string() &&
                           echo->as_string() == expected_traces[static_cast<std::size_t>(received)];
        std::lock_guard<std::mutex> lock(totals.mu);
        match ? ++totals.trace_echoed : ++totals.trace_mismatch;
      }
      tally_response(totals, response);
      if (is_backoff_signal(response_error_code(response))) refused.push_back(received);
    }
    if (received < sent) {
      std::lock_guard<std::mutex> lock(totals.mu);
      totals.protocol_failures += static_cast<std::uint64_t>(sent - received);
    }

    // Backoff-and-retry pass: the daemon said "later", so this is later.
    // Synchronous (one frame in flight) — a refused herd must trickle back,
    // not re-stampede.
    for (const int index : refused) {
      for (int attempt = 1; attempt <= std::max(0, cfg.request_retries); ++attempt) {
        const double sleep_ms = jitter.next_ms();
        {
          std::lock_guard<std::mutex> lock(totals.mu);
          ++totals.request_retries;
          totals.backoff_ms_total += sleep_ms;
        }
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(sleep_ms));
        const std::string id = "c" + std::to_string(client_index) + "/" +
                               std::to_string(index) + "~r" + std::to_string(attempt);
        const int variant =
            cfg.mode == "mix" ? client_index * cfg.requests + index : -1;
        JsonValue request = model_request(cfg, id, variant);
        std::string expected_hex;
        if (cfg.trace) {
          // A fresh id per attempt keeps trace ids unique within the run.
          expected_hex = perfbg::obs::trace_id_hex(
              client_trace_id(client_index, cfg.requests + index) + attempt);
          request.set("trace_id", expected_hex);
        }
        if (!client->send_line(request.dump())) {
          // Connection died (daemon restart, reset): reconnect and re-send on
          // the next attempt.
          client = connect_with_backoff(cfg, totals, jitter);
          continue;
        }
        {
          std::lock_guard<std::mutex> lock(totals.mu);
          ++totals.sent;
        }
        if (!client->recv_line(line)) {
          std::lock_guard<std::mutex> lock(totals.mu);
          ++totals.protocol_failures;
          break;
        }
        const JsonValue response = perfbg::obs::parse_json(line);
        if (cfg.trace) {
          const JsonValue* echo = response.find("trace_id");
          const bool match =
              echo && echo->is_string() && echo->as_string() == expected_hex;
          std::lock_guard<std::mutex> lock(totals.mu);
          match ? ++totals.trace_echoed : ++totals.trace_mismatch;
        }
        tally_response(totals, response);
        const std::string code = response_error_code(response);
        if (!is_backoff_signal(code)) {
          if (code.empty()) {
            std::lock_guard<std::mutex> lock(totals.mu);
            ++totals.retry_ok;
          }
          break;  // a definitive answer, success or typed failure
        }
      }
    }
  } catch (const std::exception&) {
    std::lock_guard<std::mutex> lock(totals.mu);
    ++totals.connect_failures;
    ++totals.protocol_failures;
  }
}

/// chaos: deterministic per-client attack mix. Every well-formed frame we
/// wait on must be answered; kills and mid-frame disconnects are expected to
/// cost us the connection, never the daemon.
void run_chaos_client(const Config& cfg, int client_index, Totals& totals) {
  std::mt19937 rng(0x9e3779b9u + static_cast<unsigned>(client_index));
  perfbg::chaos::DecorrelatedJitter jitter(
      cfg.backoff_base_ms, cfg.backoff_cap_ms,
      perfbg::chaos::derive_seed(cfg.seed, 0x10000u + static_cast<std::uint64_t>(client_index)));
  for (int r = 0; r < cfg.requests; ++r) {
    const int attack = static_cast<int>(rng() % 6);
    try {
      std::unique_ptr<Client> client_ptr = connect_with_backoff(cfg, totals, jitter);
      Client& client = *client_ptr;
      const std::string id =
          "x" + std::to_string(client_index) + "/" + std::to_string(r);
      switch (attack) {
        case 0: {  // valid request, answered
          {
            std::lock_guard<std::mutex> lock(totals.mu);
            ++totals.sent;
          }
          tally_response(totals, client.request(model_request(cfg, id, r)));
          break;
        }
        case 1: {  // malformed JSON -> typed error, connection survives
          {
            std::lock_guard<std::mutex> lock(totals.mu);
            ++totals.attacks;
            ++totals.sent;
          }
          if (!client.send_line("{\"kind\": \"solve\", ")) throw std::runtime_error("send");
          tally_response(totals, client.read_response());
          break;
        }
        case 2: {  // NaN / deep nesting -> typed error
          {
            std::lock_guard<std::mutex> lock(totals.mu);
            ++totals.attacks;
            ++totals.sent;
          }
          std::string frame = (rng() % 2) ? "{\"kind\": \"solve\", \"util\": NaN}"
                                          : std::string(200, '[') + std::string(200, ']');
          if (!client.send_line(frame)) throw std::runtime_error("send");
          tally_response(totals, client.read_response());
          break;
        }
        case 3: {  // oversized frame: the daemon answers if it can, but it is
                   // allowed to cut us off mid-upload (our send then fails
                   // with a reset), so the response is best-effort.
          {
            std::lock_guard<std::mutex> lock(totals.mu);
            ++totals.attacks;
            ++totals.killed;
          }
          std::string frame(2u << 20, 'x');
          if (client.send_line(frame)) {
            std::string line;
            if (client.recv_line(line)) tally_response(totals, perfbg::obs::parse_json(line));
          }
          break;
        }
        case 4: {  // request then vanish before reading (deliberate kill)
          {
            std::lock_guard<std::mutex> lock(totals.mu);
            ++totals.attacks;
            ++totals.killed;
          }
          client.send_line(model_request(cfg, id, r).dump());
          break;  // destructor closes mid-conversation
        }
        default: {  // mid-frame disconnect: half a request, no newline
          {
            std::lock_guard<std::mutex> lock(totals.mu);
            ++totals.attacks;
            ++totals.killed;
          }
          perfbg::server::write_all(client.fd(), "{\"kind\": \"sol", 13);
          break;
        }
      }
    } catch (const std::exception&) {
      // A dropped connection after an answered-or-abandoned attack is fine;
      // an unanswered *owed* frame is counted where it was sent.
      std::lock_guard<std::mutex> lock(totals.mu);
      if (attack <= 2) ++totals.protocol_failures;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  perfbg::Flags flags;
  flags.define("socket", "perfbgd socket path (required)");
  flags.define("mode", "herd | mix | chaos (default herd)");
  flags.define("clients", "client threads (default 8)");
  flags.define("requests", "requests per client (default 4)");
  flags.define("distinct", "mix: distinct model points (default 4)");
  flags.define("workload", "workload name (default email)");
  flags.define("util", "herd utilization (default 0.15)");
  flags.define("p", "background spawn probability (default 0.3)");
  flags.define("buffer", "background buffer size (default 5)");
  flags.define("deadline-ms", "per-request deadline (default 0 = server default)");
  flags.define("test-sleep-ms",
               "attach a test_sleep_ms hook to every model request (needs a daemon "
               "with --enable-test-hooks)");
  flags.define("connect-retries",
               "connection attempts per client, decorrelated-jitter spaced "
               "(default 5)");
  flags.define("request-retries",
               "re-issues per kOverloaded/kCircuitOpen refusal (default 3)");
  flags.define("backoff-base-ms", "backoff floor in ms (default 10)");
  flags.define("backoff-cap-ms", "backoff ceiling in ms (default 2000)");
  flags.define("seed", "backoff jitter seed; per-client streams derive from it "
                       "(default 1)");
  flags.define("scrape",
               "after the run: healthz | metricsz | tracez | statusz, printed after "
               "the summary");
  flags.define_switch("trace",
                      "attach a deterministic client trace_id to every model request "
                      "and verify the response echoes it");
  flags.define_switch("help", "print usage");
  try {
    flags.parse(argc, argv);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "perfbgd_loadgen: %s\n%s", e.what(), flags.help().c_str());
    return 2;
  }
  if (flags.get_bool("help", false)) {
    std::fprintf(stdout, "%s", flags.help().c_str());
    return 0;
  }

  Config cfg;
  cfg.socket = flags.get_string("socket", "");
  cfg.mode = flags.get_string("mode", "herd");
  cfg.clients = flags.get_int("clients", 8);
  cfg.requests = flags.get_int("requests", 4);
  cfg.distinct = flags.get_int("distinct", 4);
  cfg.workload = flags.get_string("workload", "email");
  cfg.util = flags.get_double("util", 0.15);
  cfg.p = flags.get_double("p", 0.3);
  cfg.buffer = flags.get_int("buffer", 5);
  cfg.deadline_ms = flags.get_double("deadline-ms", 0.0);
  cfg.test_sleep_ms = flags.get_double("test-sleep-ms", 0.0);
  cfg.trace = flags.get_bool("trace", false);
  cfg.connect_retries = flags.get_int("connect-retries", 5);
  cfg.request_retries = flags.get_int("request-retries", 3);
  cfg.backoff_base_ms = flags.get_double("backoff-base-ms", 10.0);
  cfg.backoff_cap_ms = flags.get_double("backoff-cap-ms", 2000.0);
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  if (cfg.socket.empty() ||
      (cfg.mode != "herd" && cfg.mode != "mix" && cfg.mode != "chaos")) {
    std::fprintf(stderr, "perfbgd_loadgen: --socket required, --mode must be "
                         "herd|mix|chaos\n%s",
                 flags.help().c_str());
    return 2;
  }

  Totals totals;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(cfg.clients));
  for (int c = 0; c < cfg.clients; ++c) {
    if (cfg.mode == "chaos")
      threads.emplace_back(run_chaos_client, std::cref(cfg), c, std::ref(totals));
    else
      threads.emplace_back(run_load_client, std::cref(cfg), c, std::ref(totals));
  }
  for (std::thread& t : threads) t.join();
  const double wall_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();

  JsonValue summary = JsonValue::object();
  summary.set("mode", cfg.mode);
  summary.set("clients", cfg.clients);
  summary.set("requests_per_client", cfg.requests);
  summary.set("sent", static_cast<std::int64_t>(totals.sent));
  summary.set("responses", static_cast<std::int64_t>(totals.responses));
  summary.set("ok", static_cast<std::int64_t>(totals.ok));
  summary.set("cached", static_cast<std::int64_t>(totals.cached));
  summary.set("coalesced", static_cast<std::int64_t>(totals.coalesced));
  summary.set("killed", static_cast<std::int64_t>(totals.killed));
  summary.set("attacks", static_cast<std::int64_t>(totals.attacks));
  summary.set("protocol_failures", static_cast<std::int64_t>(totals.protocol_failures));
  summary.set("connect_failures", static_cast<std::int64_t>(totals.connect_failures));
  summary.set("connect_attempts", static_cast<std::int64_t>(totals.connect_attempts));
  summary.set("reconnect_backoffs",
              static_cast<std::int64_t>(totals.reconnect_backoffs));
  summary.set("request_retries", static_cast<std::int64_t>(totals.request_retries));
  summary.set("retry_ok", static_cast<std::int64_t>(totals.retry_ok));
  summary.set("backoff_ms_total", totals.backoff_ms_total);
  if (cfg.trace) {
    summary.set("trace_echoed", static_cast<std::int64_t>(totals.trace_echoed));
    summary.set("trace_mismatch", static_cast<std::int64_t>(totals.trace_mismatch));
  }
  JsonValue errors = JsonValue::object();
  for (const auto& [code, count] : totals.errors)
    errors.set(code, static_cast<std::int64_t>(count));
  summary.set("errors", std::move(errors));
  summary.set("wall_ms", wall_ms);
  std::fprintf(stdout, "%s\n", summary.dump().c_str());

  const std::string scrape = flags.get_string("scrape", "");
  if (scrape == "healthz" || scrape == "metricsz" || scrape == "tracez" ||
      scrape == "statusz") {
    try {
      Client client(cfg.socket);
      const JsonValue response =
          client.request(perfbg::server::control_request("loadgen-scrape", scrape));
      if (const JsonValue* result = response.find("result")) {
        if (scrape == "metricsz" && result->is_object()) {
          if (const JsonValue* text = result->find("text"); text && text->is_string())
            std::fprintf(stdout, "%s", text->as_string().c_str());
        } else {
          std::fprintf(stdout, "%s\n", result->dump().c_str());
        }
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "perfbgd_loadgen: scrape failed: %s\n", e.what());
      return 1;
    }
  }

  return totals.protocol_failures == 0 && totals.trace_mismatch == 0 ? 0 : 1;
}
