// perfbg_report_diff: compare two perfbg JSON documents — bench baselines
// (schema perfbg.bench_baseline.v1, as written by bench_suite) or run
// reports (schema perfbg.run_report.v1, as written by --metrics-json) — and
// flag wall-time regressions. CI runs it against the committed
// BENCH_solver.json as a soft gate (DESIGN.md §10).
//
//   $ perfbg_report_diff old.json new.json
//   $ perfbg_report_diff old.json new.json --threshold 0.10 --min-delta-ms 0.5
//
// Exit codes: 0 no regressions, 1 at least one regression past the
// threshold, 2 usage or file error, 3 schema mismatch (documents are not
// comparable — different or unknown schemas).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/diff.hpp"
#include "obs/json.hpp"

namespace {

constexpr const char* kUsage =
    "usage: perfbg_report_diff <old.json> <new.json> [--threshold <rel>]\n"
    "                          [--min-delta-ms <ms>]\n"
    "\n"
    "Compares two perfbg.bench_baseline.v1 or perfbg.run_report.v1 documents\n"
    "and reports wall-time regressions: entries where new/old - 1 exceeds the\n"
    "threshold (default 0.25) AND the absolute growth exceeds --min-delta-ms\n"
    "(default 0.1 ms, so microsecond noise on fast phases never trips the\n"
    "gate).\n"
    "\n"
    "exit codes: 0 no regressions, 1 regressions found, 2 usage/file error,\n"
    "            3 schema mismatch\n";

perfbg::obs::JsonValue load_document(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("perfbg_report_diff: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return perfbg::obs::parse_json(buffer.str());
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error("perfbg_report_diff: " + path + ": " + e.what());
  }
}

/// Parses the numeric value following a flag; throws on absent/garbage input.
double parse_value(const std::vector<std::string>& args, std::size_t& i,
                   const std::string& flag) {
  if (i + 1 >= args.size())
    throw std::invalid_argument("perfbg_report_diff: " + flag + " needs a value");
  const std::string& text = args[++i];
  std::size_t used = 0;
  const double v = std::stod(text, &used);
  if (used != text.size())
    throw std::invalid_argument("perfbg_report_diff: bad value for " + flag + ": '" +
                                text + "'");
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  // Positional file arguments rule out util::Flags (which is flag-only), so
  // the argv walk is manual: two paths in order, options anywhere.
  std::vector<std::string> args(argv + 1, argv + argc);
  std::vector<std::string> paths;
  perfbg::obs::DiffOptions options;
  try {
    for (std::size_t i = 0; i < args.size(); ++i) {
      const std::string& a = args[i];
      if (a == "--help" || a == "-h") {
        std::cout << kUsage;
        return 0;
      }
      if (a == "--threshold") {
        options.threshold = parse_value(args, i, a);
      } else if (a == "--min-delta-ms") {
        options.min_abs_delta_ms = parse_value(args, i, a);
      } else if (!a.empty() && a[0] == '-') {
        throw std::invalid_argument("perfbg_report_diff: unknown option '" + a + "'");
      } else {
        paths.push_back(a);
      }
    }
    if (paths.size() != 2)
      throw std::invalid_argument(
          "perfbg_report_diff: expected exactly two input files, got " +
          std::to_string(paths.size()));
    if (options.threshold < 0.0)
      throw std::invalid_argument("perfbg_report_diff: --threshold must be >= 0");
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\n" << kUsage;
    return 2;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  try {
    const perfbg::obs::JsonValue old_doc = load_document(paths[0]);
    const perfbg::obs::JsonValue new_doc = load_document(paths[1]);
    const perfbg::obs::DiffResult result =
        perfbg::obs::diff_reports(old_doc, new_doc, options);
    std::cout << perfbg::obs::format_diff(result, options);
    return result.has_regressions() ? 1 : 0;
  } catch (const perfbg::obs::SchemaMismatchError& e) {
    std::cerr << e.what() << "\n";
    return 3;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
