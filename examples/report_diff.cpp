// perfbg_report_diff: compare two perfbg JSON documents — bench baselines
// (schema perfbg.bench_baseline.v1 or .v2, as written by bench_suite) or run
// reports (schema perfbg.run_report.v1, as written by --metrics-json) — and
// flag wall-time regressions. For v2 baselines it is also the perf-sentinel
// hard gate: per-span p99 tails are compared against the OLD document's
// budgets, and any breach is a hard failure (exit 4), while unbudgeted span
// drift stays warn-only. CI runs it against the committed BENCH_solver.json
// (DESIGN.md §10, §12).
//
//   $ perfbg_report_diff old.json new.json
//   $ perfbg_report_diff old.json new.json --threshold 0.10 --min-delta-ms 0.5
//   $ perfbg_report_diff old.json new.json --budgets-only      # hard gate only
//   $ perfbg_report_diff old.json new.json --allow-span 'sim.*'
//   $ perfbg_report_diff BENCH_solver.json fresh.json --update-baseline
//
// Exit codes: 0 no regressions, 1 at least one soft regression past the
// threshold, 2 usage or file error, 3 schema mismatch (documents are not
// comparable — different or unknown schemas), 4 budget breach (a budgeted
// span regressed at p99 or exceeded its absolute ceiling; takes precedence
// over 1).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/diff.hpp"
#include "obs/json.hpp"

namespace {

constexpr const char* kUsage =
    "usage: perfbg_report_diff <old.json> <new.json> [--threshold <rel>]\n"
    "                          [--min-delta-ms <ms>] [--allow-span <pattern>]\n"
    "                          [--budgets-only] [--update-baseline]\n"
    "\n"
    "Compares two perfbg.bench_baseline.v1/.v2 or perfbg.run_report.v1\n"
    "documents and reports wall-time regressions: entries where new/old - 1\n"
    "exceeds the threshold (default 0.25) AND the absolute growth exceeds\n"
    "--min-delta-ms (default 0.1 ms, so microsecond noise on fast phases never\n"
    "trips the gate).\n"
    "\n"
    "v2 baselines additionally carry per-span p50/p99/max tail statistics and\n"
    "span budgets; budgeted spans are gated HARD on their p99 tails (exit 4),\n"
    "using the budgets of the OLD document. Options:\n"
    "  --allow-span <pattern>  allowlist a known-noisy span (exact name or\n"
    "                          'prefix.*'); repeatable; allowlisted spans are\n"
    "                          still reported but never breach a budget\n"
    "  --budgets-only          gate on budget breaches only: soft regressions\n"
    "                          are still printed but exit 0 (CI uses this for\n"
    "                          the hard step of the split bench-baseline job)\n"
    "  --update-baseline       rewrite <old.json> with the contents of\n"
    "                          <new.json>, normalised to the canonical\n"
    "                          two-space dump (byte-deterministic), and exit 0\n"
    "                          without diffing\n"
    "\n"
    "exit codes: 0 no regressions, 1 soft regressions found, 2 usage/file\n"
    "            error, 3 schema mismatch, 4 budget breach\n";

perfbg::obs::JsonValue load_document(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("perfbg_report_diff: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  try {
    return perfbg::obs::parse_json(buffer.str());
  } catch (const std::invalid_argument& e) {
    throw std::runtime_error("perfbg_report_diff: " + path + ": " + e.what());
  }
}

/// Parses the numeric value following a flag; throws on absent/garbage input.
double parse_value(const std::vector<std::string>& args, std::size_t& i,
                   const std::string& flag) {
  if (i + 1 >= args.size())
    throw std::invalid_argument("perfbg_report_diff: " + flag + " needs a value");
  const std::string& text = args[++i];
  std::size_t used = 0;
  const double v = std::stod(text, &used);
  if (used != text.size())
    throw std::invalid_argument("perfbg_report_diff: bad value for " + flag + ": '" +
                                text + "'");
  return v;
}

/// --update-baseline: parse the new document and rewrite the old path with
/// its canonical two-space dump (the exact format bench_suite writes), so
/// regenerating a baseline is a parse + dump round-trip — byte-deterministic,
/// independent of the input file's incidental formatting.
int update_baseline(const std::string& old_path, const std::string& new_path) {
  const perfbg::obs::JsonValue doc = load_document(new_path);
  std::ofstream out(old_path);
  if (!out)
    throw std::runtime_error("perfbg_report_diff: cannot open " + old_path +
                             " for writing");
  doc.dump(out, 2);
  out << "\n";
  out.flush();
  if (!out)
    throw std::runtime_error("perfbg_report_diff: write failed for " + old_path);
  std::cout << "updated baseline " << old_path << " from " << new_path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Positional file arguments rule out util::Flags (which is flag-only), so
  // the argv walk is manual: two paths in order, options anywhere.
  std::vector<std::string> args(argv + 1, argv + argc);
  std::vector<std::string> paths;
  perfbg::obs::DiffOptions options;
  bool budgets_only = false;
  bool do_update = false;
  try {
    for (std::size_t i = 0; i < args.size(); ++i) {
      const std::string& a = args[i];
      if (a == "--help" || a == "-h") {
        std::cout << kUsage;
        return 0;
      }
      if (a == "--threshold") {
        options.threshold = parse_value(args, i, a);
      } else if (a == "--min-delta-ms") {
        options.min_abs_delta_ms = parse_value(args, i, a);
      } else if (a == "--allow-span") {
        if (i + 1 >= args.size())
          throw std::invalid_argument("perfbg_report_diff: --allow-span needs a value");
        options.allowlist.push_back(args[++i]);
      } else if (a == "--budgets-only") {
        budgets_only = true;
      } else if (a == "--update-baseline") {
        do_update = true;
      } else if (!a.empty() && a[0] == '-') {
        throw std::invalid_argument("perfbg_report_diff: unknown option '" + a + "'");
      } else {
        paths.push_back(a);
      }
    }
    if (paths.size() != 2)
      throw std::invalid_argument(
          "perfbg_report_diff: expected exactly two input files, got " +
          std::to_string(paths.size()));
    if (options.threshold < 0.0)
      throw std::invalid_argument("perfbg_report_diff: --threshold must be >= 0");
  } catch (const std::invalid_argument& e) {
    std::cerr << e.what() << "\n" << kUsage;
    return 2;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  try {
    if (do_update) return update_baseline(paths[0], paths[1]);
    const perfbg::obs::JsonValue old_doc = load_document(paths[0]);
    const perfbg::obs::JsonValue new_doc = load_document(paths[1]);
    const perfbg::obs::DiffResult result =
        perfbg::obs::diff_reports(old_doc, new_doc, options);
    std::cout << perfbg::obs::format_diff(result, options);
    if (result.has_budget_violations()) return 4;
    if (budgets_only) return 0;
    return result.has_regressions() ? 1 : 0;
  } catch (const perfbg::obs::SchemaMismatchError& e) {
    std::cerr << e.what() << "\n";
    return 3;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }
}
