// Scenario: splitting background work across two priority classes
// (the paper's §6 future work, implemented in core/multiclass.hpp).
//
// A drive runs two kinds of background maintenance: WRITE verification
// (reliability-critical — class 1) and readahead-cache repopulation
// (performance-helping — class 2). This example shows how strict priority
// shields the critical class as load grows, and how the two-class model
// degenerates to the single-class one when class 2 is disabled.
#include <iostream>

#include "core/model.hpp"
#include "core/multiclass.hpp"
#include "util/table.hpp"
#include "workloads/presets.hpp"

int main() {
  using namespace perfbg;
  std::cout << "Two-class background maintenance: verification (class 1, p1=0.2)\n"
               "over cache repopulation (class 2, p2=0.4), buffers 5/5\n\n";

  const auto arrivals = workloads::email_poisson();
  Table t({"fg load", "verify completion", "cache completion", "verify qlen",
           "cache qlen", "fg qlen"});
  t.set_precision(4);
  for (double u : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8}) {
    core::McParams params{arrivals.scaled_to_utilization(u, workloads::kMeanServiceTimeMs)};
    params.p1 = 0.2;
    params.p2 = 0.4;
    params.buffer1 = 5;
    params.buffer2 = 5;
    const core::McMetrics m = core::McModel(params).solve();
    t.add_row({u, m.bg1_completion, m.bg2_completion, m.bg1_queue_length,
               m.bg2_queue_length, m.fg_queue_length});
  }
  t.print(std::cout);

  // Single-class consistency check, visible to the reader: p2 ~ 0 recovers
  // the FgBgModel numbers.
  core::McParams degenerate{arrivals.scaled_to_utilization(0.4, workloads::kMeanServiceTimeMs)};
  degenerate.p1 = 0.2;
  degenerate.p2 = 1e-9;
  degenerate.buffer1 = 5;
  const core::McMetrics two = core::McModel(degenerate).solve();
  core::FgBgParams single{arrivals.scaled_to_utilization(0.4, workloads::kMeanServiceTimeMs)};
  single.bg_probability = 0.2;
  single.bg_buffer = 5;
  const core::FgBgMetrics one = core::FgBgModel(single).solve().metrics();
  std::cout << "\nconsistency: with p2 -> 0, two-class verify completion "
            << two.bg1_completion << " vs single-class " << one.bg_completion
            << " (difference " << std::abs(two.bg1_completion - one.bg_completion)
            << ")\n\n"
            << "Reading: under strict priority the verification class keeps a high\n"
               "completion rate deep into the load range while the cache class\n"
               "degrades first — the designer can protect the reliability-critical\n"
               "background work simply by ordering the idle-time queue, without\n"
               "touching buffers or the idle-wait policy.\n";
  return 0;
}
