// Cross-validation walkthrough: solve one configuration analytically, then
// reproduce every metric with the discrete-event simulator, including the
// Erlang idle-wait extension the Markov chain cannot express directly.
#include <iostream>

#include "core/model.hpp"
#include "sim/fgbg_simulator.hpp"
#include "util/table.hpp"
#include "workloads/presets.hpp"

int main() {
  using namespace perfbg;

  core::FgBgParams params{
      workloads::software_dev().scaled_to_utilization(0.30, workloads::kMeanServiceTimeMs)};
  params.bg_probability = 0.6;
  params.bg_buffer = 5;
  params.idle_wait_intensity = 1.0;

  std::cout << "Configuration: software-dev at 30% load, p=0.6, X=5, idle wait 1x\n\n";
  const core::FgBgMetrics m = core::FgBgModel(params).solve().metrics();

  // Long batches: the arrival process is autocorrelated, so short batches
  // would under-estimate the batch-means variance and produce CIs that are
  // too tight (classic output-analysis pitfall).
  sim::SimConfig cfg;
  cfg.warmup_time = 1e6;
  cfg.batch_time = 1.2e7;
  cfg.batches = 16;
  const sim::SimMetrics s = sim::simulate_fgbg(params, cfg);

  Table t({"metric", "analytic", "sim mean", "sim 95% hw", "inside CI"});
  t.set_precision(4);
  auto row = [&](const char* name, double a, const sim::Estimate& e) {
    t.add_row({std::string(name), a, e.mean, e.half_width,
               std::string(e.contains(a) ? "yes" : "no")});
  };
  row("fg queue length", m.fg_queue_length, s.fg_queue_length);
  row("bg queue length", m.bg_queue_length, s.bg_queue_length);
  row("bg completion", m.bg_completion, s.bg_completion);
  row("fg delayed (arrivals)", m.fg_delayed_arrivals, s.fg_delayed_arrivals);
  row("fg response time", m.fg_response_time, s.fg_response_time);
  row("busy fraction", m.busy_fraction, s.busy_fraction);
  row("bg busy fraction", m.bg_busy_fraction, s.bg_busy_fraction);
  row("idle fraction", m.idle_fraction, s.idle_fraction);
  row("fg throughput", m.fg_throughput, s.fg_throughput);
  t.print(std::cout);

  // Extension: Erlang-2 idle wait (same mean, half the variance). The
  // analytic chain models an exponential wait; the simulator shows how much
  // that assumption matters.
  cfg.idle_wait = sim::IdleWaitKind::kErlang2;
  const sim::SimMetrics s2 = sim::simulate_fgbg(params, cfg);
  std::cout << "\nErlang-2 idle wait (simulation-only extension):\n"
            << "  bg completion " << s2.bg_completion.mean << " (exponential: "
            << s.bg_completion.mean << ")\n"
            << "  fg queue      " << s2.fg_queue_length.mean << " (exponential: "
            << s.fg_queue_length.mean << ")\n"
            << "The idle-wait distribution's shape barely matters at equal mean —\n"
            << "evidence that the exponential assumption in the chain is benign.\n";
  return 0;
}
