// Scenario: provisioning a WRITE-verification campaign.
//
// A drive starts cold (empty, idle) and must complete a target amount of
// background verification work while serving foreground traffic. This
// example uses the transient ("performability") machinery to answer two
// provisioning questions the steady-state figures cannot:
//   1. how long does the system take to reach its steady verification
//      throughput after a cold start, and
//   2. how much verification work completes within a fixed window, under
//      independent vs strongly correlated foreground arrivals?
#include <iostream>

#include "core/model.hpp"
#include "core/truncated_chain.hpp"
#include "util/table.hpp"
#include "workloads/presets.hpp"

int main() {
  using namespace perfbg;
  constexpr double kUtil = 0.12;  // below the bursty workload's saturation knee,
                                  // so the truncated chain stays accurate
  constexpr double kP = 0.6;
  std::cout << "WRITE-verification campaign planner (load " << kUtil << ", p = " << kP
            << ", buffer 5)\n\n";

  for (const auto& proc : {workloads::email_poisson().renamed("expo"),
                           workloads::email().renamed("high-acf")}) {
    core::FgBgParams params{proc.scaled_to_utilization(kUtil, workloads::kMeanServiceTimeMs)};
    params.bg_probability = kP;

    const core::FgBgMetrics steady = core::FgBgModel(params).solve().metrics();
    const core::TruncatedFgBgChain chain(params, 120);
    const double horizon = 3.0e4;  // 30 seconds of drive time
    const auto sweep = chain.transient_sweep(chain.empty_state(), horizon, 60);

    std::cout << "=== arrivals: " << proc.name() << " ===\n";
    Table t({"time (ms)", "E[fg jobs]", "E[bg jobs]", "verify done", "verify dropped"});
    t.set_precision(4);
    for (std::size_t i = 0; i < sweep.size(); i += 10) {
      const auto& pt = sweep[i];
      t.add_row({pt.time, pt.mean_fg, pt.mean_bg, pt.bg_completed_so_far,
                 pt.bg_dropped_so_far});
    }
    t.print(std::cout);

    const auto& last = sweep.back();
    const double steady_volume = steady.bg_throughput * horizon;
    std::cout << "steady verification throughput: " << 1000.0 * steady.bg_throughput
              << " jobs/s; completion ratio " << steady.bg_completion << "\n"
              << "work done in the 30 s window: " << last.bg_completed_so_far << " (steady-state equivalent "
              << steady_volume << ")\n"
              << "truncation check (top-level mass): "
              << chain.top_level_mass(chain.transient(chain.empty_state(), horizon)) << "\n\n";
  }

  std::cout << "Reading: at equal utilization the correlated workload completes a\n"
               "fraction of the verification volume of the independent one — burst\n"
               "periods starve the background class long before the disk looks\n"
               "'busy' on average, so campaign deadlines must be budgeted against\n"
               "the dependence structure, not the mean load.\n";
  return 0;
}
