// Scenario: tuning the idle-wait before background media scrubbing starts.
//
// The idle wait is the knob that trades foreground latency against
// background progress (paper §5.3): waiting longer before starting a scrub
// protects foreground arrivals from landing behind a non-preemptive
// background job, but starves the scrubber. This example sweeps the idle
// wait for a drive-like configuration and reports both sides of the trade,
// plus a simple "efficiency" score, echoing the paper's conclusion that an
// idle wait near one service time is the sweet spot.
#include <iostream>

#include "core/model.hpp"
#include "util/table.hpp"
#include "workloads/presets.hpp"

int main() {
  using namespace perfbg;
  std::cout << "Idle-wait tuning for background scrubbing\n"
            << "workload: E-mail (High ACF) at 12% utilization, p = 0.6\n"
            << "(12% is just below this workload's burst-saturation knee — the\n"
            << " regime where the idle-wait knob actually moves both metrics)\n\n";

  const auto arrivals =
      workloads::email().scaled_to_utilization(0.12, workloads::kMeanServiceTimeMs);

  Table t({"idle wait (x svc)", "fg qlen", "fg resp (ms)", "bg completion",
           "fg delayed %", "bg tput (/s)"});
  t.set_precision(4);

  double base_qlen = 0.0;
  double base_completion = 0.0;
  for (double intensity : {0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    core::FgBgParams params{arrivals};
    params.bg_probability = 0.6;
    params.idle_wait_intensity = intensity;
    const core::FgBgMetrics m = core::FgBgModel(params).solve().metrics();
    if (intensity == 0.5) {
      base_qlen = m.fg_queue_length;
      base_completion = m.bg_completion;
    }
    t.add_row({intensity, m.fg_queue_length, m.fg_response_time, m.bg_completion,
               100.0 * m.fg_delayed_arrivals, 1000.0 * m.bg_throughput});
  }
  t.print(std::cout);

  // The paper's §5.3 comparison, restated for this configuration.
  core::FgBgParams at2{arrivals};
  at2.bg_probability = 0.6;
  at2.idle_wait_intensity = 2.0;
  const core::FgBgMetrics m2 = core::FgBgModel(at2).solve().metrics();
  std::cout << "\nGoing from idle wait 0.5x to 2x the service time:\n"
            << "  foreground queue improves by "
            << 100.0 * (base_qlen - m2.fg_queue_length) / base_qlen << "% (paper: ~6.5%)\n"
            << "  scrub completion drops by "
            << 100.0 * (base_completion - m2.bg_completion) / base_completion
            << "% — the long-term reliability cost dominates, so keep the idle\n"
            << "  wait near one service time.\n";
  return 0;
}
