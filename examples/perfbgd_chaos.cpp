// perfbgd_chaos — the crash-recovery soak driver (DESIGN.md §15).
//
// Repeatedly boots a REAL perfbgd (fork/exec of the same binary operators
// run), drives it with in-process client herds, then kills it — SIGKILL,
// SIGTERM, or a seeded mix — mid-traffic, and audits the journal that
// survives.  One InvariantChecker (src/chaos/invariants.hpp) accumulates
// every response across every life and asserts the crash-recovery contract:
//
//   lost_ack             an OK response served by a leader execution must be
//                        in the journal that survives the kill (the daemon
//                        fsyncs the journal entry *before* completing the
//                        flight, so an acked solve can never be lost);
//   divergent_payload    a key answered twice is answered byte-identically;
//   journal_divergence   the journal byte-matches what clients were told;
//   warm_start           after a restart with --warm-start, journaled keys
//                        are served cached:true with the pre-kill payload;
//   counter_conservation statusz requests.total == ok + error at quiescence.
//
// Each life runs three phases: warm-start probes (lives > 0), a quiescent
// herd pass (ends with the counter-conservation scrape), and an overlap herd
// that is still issuing requests when the signal lands — the window where a
// torn journal tail, a lost ack, or a half-written cache seed would show up.
//
// Everything is replayable: herd schedules, kill choices, and the per-life
// daemon fault plans (--chaos-faults is forwarded with a per-life seed
// derived from --chaos-seed) are pure functions of --chaos-seed.  A failing
// soak reprints the exact command line that reproduces it.
//
//   ./perfbgd_chaos --perfbgd=./perfbgd --dir=/tmp/soak --cycles=20
//       --clients=4 --requests=40 --kill=mix --chaos-seed=7
//
// Exit codes: 0 all invariants held across all cycles; 1 violations or
// driver-level failures (boot timeout, unexpected daemon exit); 2 usage.
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "chaos/backoff.hpp"
#include "chaos/fault_plan.hpp"
#include "chaos/invariants.hpp"
#include "obs/json.hpp"
#include "runner/journal.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "util/flags.hpp"

namespace {

using perfbg::chaos::DecorrelatedJitter;
using perfbg::chaos::InvariantChecker;
using perfbg::chaos::derive_seed;
using perfbg::obs::JsonValue;

constexpr const char* kSweepId = "perfbgd";

struct Config {
  std::string perfbgd;       ///< path of the daemon binary to soak
  std::string dir;           ///< scratch dir: socket, journal, per-life logs
  int cycles = 20;
  int clients = 4;           ///< herd threads per phase
  int requests = 40;         ///< requests per herd thread (quiescent phase)
  int distinct = 16;         ///< distinct model points the quiescent herd cycles
  std::uint64_t seed = 1;    ///< master seed; everything derives from it
  std::string kill = "mix";  ///< sigkill | sigterm | mix
  double overlap_ms = 75.0;  ///< how long the overlap herd runs before the kill
  double solve_sleep_ms = 0.0;  ///< test-hook solve delay (widens kill windows)
  int workers = 4;
  std::string chaos_faults;  ///< forwarded to the daemon (per-life seed)
  double boot_timeout_ms = 15000.0;
  std::string report;        ///< also write the JSON report here
};

std::string socket_path(const Config& cfg) { return cfg.dir + "/perfbgd.sock"; }
std::string journal_path(const Config& cfg) { return cfg.dir + "/served.jsonl"; }

// ---------------------------------------------------------------------------
// Variants: the model points the herds request.  The frame is round-tripped
// through the wire encoding before the key is computed, so the canonical key
// comes from exactly the double bits the daemon will parse.  Utilizations are
// quantized to 3 decimals: 850 x 6 possible points, well under the cache
// capacity the driver gives the daemon, so warm-start probes never race LRU
// eviction.

struct Variant {
  std::string key;  ///< daemon-canonical cache/journal identity
  JsonValue frame;  ///< request template; the sender stamps "id" per send
};

Variant make_variant(const Config& cfg, std::uint64_t index) {
  const std::uint64_t h = derive_seed(cfg.seed ^ 0x5eed5eedull, index);
  const double util = 0.05 + 0.001 * static_cast<double>(h % 850);
  const int buffer = 3 + static_cast<int>((h >> 10) % 6);
  JsonValue frame = perfbg::server::solve_request("", "email", util, 0.3, buffer);
  if (cfg.solve_sleep_ms > 0.0)
    frame.set("test_sleep_ms", JsonValue(cfg.solve_sleep_ms));
  JsonValue wire = perfbg::obs::parse_json(frame.dump());
  const perfbg::server::Request req = perfbg::server::parse_request(wire, true);
  return Variant{perfbg::server::canonical_key(req), std::move(wire)};
}

/// Every frame any herd ever sent, keyed by canonical key — the warm-start
/// probe pool.  Thread-safe: overlap herd threads add while running.
class VariantBook {
 public:
  void add(const Variant& v) {
    std::lock_guard<std::mutex> lock(mu_);
    frames_.emplace(v.key, v.frame);
  }
  std::map<std::string, JsonValue> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return frames_;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, JsonValue> frames_;
};

// ---------------------------------------------------------------------------
// Herd bookkeeping

struct LifeStats {
  std::atomic<std::uint64_t> responses{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> errors{0};
  std::atomic<std::uint64_t> cached{0};
  std::atomic<std::uint64_t> coalesced{0};
  std::atomic<std::uint64_t> reconnects{0};
};

bool response_bool(const JsonValue& response, const char* field) {
  const JsonValue* v = response.find(field);
  return v != nullptr && v->is_bool() && v->as_bool();
}

/// Records one received response with the checker and the per-life stats.
void feed(InvariantChecker& checker, LifeStats& stats, const std::string& key,
          const JsonValue& response) {
  const bool ok = response_bool(response, "ok");
  const bool cached = response_bool(response, "cached");
  const bool coalesced = response_bool(response, "coalesced");
  std::string trace;
  if (const JsonValue* t = response.find("trace_id"); t && t->is_string())
    trace = t->as_string();
  std::string payload;
  if (ok) {
    if (const JsonValue* result = response.find("result")) payload = result->dump();
  }
  stats.responses.fetch_add(1, std::memory_order_relaxed);
  (ok ? stats.ok : stats.errors).fetch_add(1, std::memory_order_relaxed);
  if (cached) stats.cached.fetch_add(1, std::memory_order_relaxed);
  if (coalesced) stats.coalesced.fetch_add(1, std::memory_order_relaxed);
  checker.on_response(key, trace, payload, ok, cached, coalesced);
}

/// Quiescent-phase herd thread: cycles the shared variant pool, reconnecting
/// with decorrelated jitter on connection failure.  The daemon is alive for
/// the whole phase, so every request gets an answer within a few attempts.
void run_herd(const Config& cfg, int life, int client_index,
              const std::vector<Variant>& variants, InvariantChecker& checker,
              LifeStats& stats) {
  DecorrelatedJitter jitter(
      5.0, 250.0,
      derive_seed(cfg.seed, 0xA000u + static_cast<std::uint64_t>(life) * 1000u +
                                static_cast<std::uint64_t>(client_index)));
  std::unique_ptr<perfbg::server::Client> client;
  for (int r = 0; r < cfg.requests; ++r) {
    const Variant& v = variants[static_cast<std::size_t>(client_index + r) %
                                variants.size()];
    for (int attempt = 0; attempt < 8; ++attempt) {
      try {
        if (!client) {
          client = std::make_unique<perfbg::server::Client>(socket_path(cfg));
          if (attempt > 0) stats.reconnects.fetch_add(1, std::memory_order_relaxed);
        }
        JsonValue frame = v.frame;
        frame.set("id", JsonValue("l" + std::to_string(life) + "a" +
                                  std::to_string(client_index) + "/" +
                                  std::to_string(r)));
        const JsonValue response = client->request(frame);
        feed(checker, stats, v.key, response);
        break;
      } catch (const std::exception&) {
        client.reset();
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(jitter.next_ms()));
      }
    }
  }
}

/// Overlap herd thread: issues *fresh* model points (never-seen keys, so each
/// is a leader execution the daemon must journal before acking) until the
/// daemon dies under it.  Every response collected before the kill is an ack
/// the journal audit will demand back.
void run_overlap(const Config& cfg, int life, int client_index,
                 VariantBook& book, InvariantChecker& checker, LifeStats& stats,
                 const std::atomic<bool>& stop) {
  std::unique_ptr<perfbg::server::Client> client;
  std::uint64_t seq = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    const std::uint64_t index = (1ull << 32) |
                                (static_cast<std::uint64_t>(life) << 20) |
                                (static_cast<std::uint64_t>(client_index) << 14) |
                                (seq & 0x3fffu);
    const Variant v = make_variant(cfg, index);
    book.add(v);
    try {
      if (!client)
        client = std::make_unique<perfbg::server::Client>(socket_path(cfg));
      JsonValue frame = v.frame;
      frame.set("id", JsonValue("l" + std::to_string(life) + "b" +
                                std::to_string(client_index) + "/" +
                                std::to_string(seq)));
      const JsonValue response = client->request(frame);
      feed(checker, stats, v.key, response);
      ++seq;
    } catch (const std::exception&) {
      // The kill landed (or an injected IO fault broke the connection):
      // nothing was acked for this request, so nothing is owed.
      client.reset();
      if (stop.load(std::memory_order_relaxed)) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
}

// ---------------------------------------------------------------------------
// Daemon lifecycle

pid_t spawn_daemon(const Config& cfg, int life, std::string& error) {
  std::vector<std::string> args;
  args.push_back(cfg.perfbgd);
  args.push_back("--socket=" + socket_path(cfg));
  args.push_back("--workers=" + std::to_string(cfg.workers));
  args.push_back("--journal=" + journal_path(cfg));
  // Big enough that no soak key is ever LRU-evicted: warm-start probes must
  // only ever miss because recovery broke, not because the cache filled.
  args.push_back("--cache-capacity=65536");
  args.push_back("--enable-test-hooks");
  if (life > 0) args.push_back("--warm-start=" + journal_path(cfg));
  if (!cfg.chaos_faults.empty()) {
    args.push_back("--chaos-faults=" + cfg.chaos_faults);
    // Masked to int range: the daemon's flag parser reads integers.
    args.push_back("--chaos-seed=" +
                   std::to_string(derive_seed(cfg.seed, 0xC0u + static_cast<std::uint64_t>(life)) &
                                  0x7fffffffu));
  }

  const std::string log = cfg.dir + "/perfbgd.life" + std::to_string(life) + ".log";
  const pid_t pid = ::fork();
  if (pid < 0) {
    error = "fork failed";
    return -1;
  }
  if (pid == 0) {
    const int fd = ::open(log.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
    if (fd >= 0) {
      ::dup2(fd, STDOUT_FILENO);
      ::dup2(fd, STDERR_FILENO);
      ::close(fd);
    }
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(argv[0], argv.data());
    std::perror("perfbgd_chaos: execv");
    _exit(127);
  }
  return pid;
}

bool wait_ready(const Config& cfg, pid_t pid, std::string& error) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double, std::milli>(cfg.boot_timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    int status = 0;
    if (::waitpid(pid, &status, WNOHANG) == pid) {
      error = "perfbgd exited during boot (status " + std::to_string(status) + ")";
      return false;
    }
    try {
      perfbg::server::Client probe(socket_path(cfg));
      const JsonValue response =
          probe.request(perfbg::server::control_request("boot", "healthz"));
      if (response_bool(response, "ok")) return true;
    } catch (const std::exception&) {
      // Not listening yet.
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  error = "perfbgd not ready within " + std::to_string(cfg.boot_timeout_ms) + " ms";
  return false;
}

/// Reaps the daemon within `timeout_ms`; escalates to SIGKILL on timeout.
bool wait_exit(pid_t pid, double timeout_ms, int& status) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double, std::milli>(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (::waitpid(pid, &status, WNOHANG) == pid) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ::kill(pid, SIGKILL);
  ::waitpid(pid, &status, 0);
  return false;
}

int choose_signal(const Config& cfg, int life) {
  if (cfg.kill == "sigkill") return SIGKILL;
  if (cfg.kill == "sigterm") return SIGTERM;
  return (derive_seed(cfg.seed, 0xD000u + static_cast<std::uint64_t>(life)) & 1u)
             ? SIGKILL
             : SIGTERM;
}

// ---------------------------------------------------------------------------
// Audits

/// Counter conservation at quiescence.  The statusz frame that takes the
/// snapshot is itself mid-flight — its requests.total increment has fired but
/// its outcome counter has not — so the quiescent expectation is
/// total - 1 == ok + error.
void scrape_counters(const Config& cfg, int life, InvariantChecker& checker,
                     std::vector<std::string>& driver_errors) {
  // Injected io.* faults can cut any one scrape connection; retry with fresh
  // connections like the warm-start probes do. The `total - 1` adjustment
  // stays valid across retries: the daemon counts an outcome for every frame
  // it accepted (outcome counters fire before the response write), so only
  // the in-flight statusz frame itself is total-but-not-yet-outcome.
  constexpr int kAttempts = 5;
  std::string last_error;
  for (int attempt = 0; attempt < kAttempts; ++attempt) {
    try {
      perfbg::server::Client client(socket_path(cfg));
      const JsonValue response =
          client.request(perfbg::server::control_request("audit", "statusz"));
      const JsonValue* result = response.find("result");
      const JsonValue* counters = result ? result->find("counters") : nullptr;
      if (counters == nullptr)
        throw std::runtime_error("statusz response has no counters");
      const auto counter = [&](const char* name) -> std::uint64_t {
        const JsonValue* v = counters->find(name);
        return v ? static_cast<std::uint64_t>(v->as_int()) : 0u;
      };
      checker.check_counters(life, counter("server.requests.total") - 1,
                             counter("server.requests.ok"),
                             counter("server.requests.error"));
      return;
    } catch (const std::exception& e) {
      last_error = e.what();
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  driver_errors.push_back("life " + std::to_string(life) +
                          ": statusz scrape failed: " + last_error);
}

/// Warm-start probes: every key the previous life's journal holds must come
/// back cached:true with the pre-kill payload.
void probe_warm_start(const Config& cfg, int life,
                      const std::map<std::string, JsonValue>& journaled,
                      InvariantChecker& checker, LifeStats& stats,
                      std::vector<std::string>& driver_errors) {
  constexpr std::size_t kMaxProbes = 64;
  constexpr int kAttemptsPerKey = 5;
  std::unique_ptr<perfbg::server::Client> client;
  std::size_t probed = 0;
  for (const auto& [key, frame] : journaled) {
    if (++probed > kMaxProbes) break;
    // Injected io.* faults can break any one connection; a probe only gives
    // up on a key after several fresh-connection attempts.
    bool answered = false;
    for (int attempt = 0; attempt < kAttemptsPerKey && !answered; ++attempt) {
      try {
        if (!client)
          client = std::make_unique<perfbg::server::Client>(socket_path(cfg));
        JsonValue f = frame;
        f.set("id", JsonValue("warm" + std::to_string(life) + "/" +
                              std::to_string(probed)));
        const JsonValue response = client->request(f);
        const bool ok = response_bool(response, "ok");
        const bool cached = response_bool(response, "cached");
        std::string payload;
        if (ok) {
          if (const JsonValue* result = response.find("result"))
            payload = result->dump();
        }
        // A non-OK answer for a journaled key is also a recovery break: the
        // cache seed should have made this a hit, which cannot fail.
        checker.check_warm_start(key, payload, ok && cached);
        feed(checker, stats, key, response);
        answered = true;
      } catch (const std::exception&) {
        client.reset();
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    if (!answered)
      driver_errors.push_back("life " + std::to_string(life) +
                              ": warm-start probe for key '" + key +
                              "' got no answer after " +
                              std::to_string(kAttemptsPerKey) + " attempts");
  }
}

std::string describe_status(int status) {
  if (WIFEXITED(status)) return "exit " + std::to_string(WEXITSTATUS(status));
  if (WIFSIGNALED(status)) return "signal " + std::to_string(WTERMSIG(status));
  return "status " + std::to_string(status);
}

perfbg::Flags make_flags() {
  perfbg::Flags flags;
  flags.define("perfbgd", "path of the perfbgd binary to soak (required)");
  flags.define("dir",
               "scratch directory for the socket, journal, and per-life "
               "daemon logs (required; keep the path short — Unix socket "
               "paths are length-limited)");
  flags.define("cycles", "kill/restart cycles to run (default 20)");
  flags.define("clients", "herd threads per phase (default 4)");
  flags.define("requests", "requests per herd thread in the quiescent phase (default 40)");
  flags.define("distinct", "distinct model points the quiescent herd cycles (default 16)");
  flags.define("chaos-seed",
               "master seed: herd schedules, kill choices, and per-life "
               "daemon fault plans all derive from it (default 1)");
  flags.define("kill", "kill mode: sigkill | sigterm | mix (default mix)");
  flags.define("overlap-ms",
               "how long the overlap herd runs before the signal lands (default 75)");
  flags.define("solve-sleep-ms",
               "test-hook solve delay per request, widens the kill window "
               "(default 0)");
  flags.define("workers", "daemon worker threads (default 4)");
  flags.define("chaos-faults",
               "fault-plan spec forwarded to every daemon life with a "
               "per-life derived --chaos-seed (see perfbgd --help)");
  flags.define("boot-timeout-ms", "per-life readiness budget (default 15000)");
  flags.define("report", "also write the soak report JSON here");
  flags.define_switch("help", "print usage");
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  perfbg::Flags flags = make_flags();
  try {
    flags.parse(argc, argv);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "perfbgd_chaos: %s\n%s", e.what(), flags.help().c_str());
    return 2;
  }
  if (flags.get_bool("help", false)) {
    std::fprintf(stdout, "%s", flags.help().c_str());
    return 0;
  }

  Config cfg;
  cfg.perfbgd = flags.get_string("perfbgd", "");
  cfg.dir = flags.get_string("dir", "");
  cfg.cycles = flags.get_int("cycles", 20);
  cfg.clients = flags.get_int("clients", 4);
  cfg.requests = flags.get_int("requests", 40);
  cfg.distinct = std::max(1, flags.get_int("distinct", 16));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("chaos-seed", 1));
  cfg.kill = flags.get_string("kill", "mix");
  cfg.overlap_ms = flags.get_double("overlap-ms", 75.0);
  cfg.solve_sleep_ms = flags.get_double("solve-sleep-ms", 0.0);
  cfg.workers = flags.get_int("workers", 4);
  cfg.chaos_faults = flags.get_string("chaos-faults", "");
  cfg.boot_timeout_ms = flags.get_double("boot-timeout-ms", 15000.0);
  cfg.report = flags.get_string("report", "");
  if (cfg.perfbgd.empty() || cfg.dir.empty()) {
    std::fprintf(stderr, "perfbgd_chaos: --perfbgd and --dir are required\n%s",
                 flags.help().c_str());
    return 2;
  }
  if (cfg.kill != "sigkill" && cfg.kill != "sigterm" && cfg.kill != "mix") {
    std::fprintf(stderr, "perfbgd_chaos: --kill must be sigkill|sigterm|mix\n");
    return 2;
  }
  if (!cfg.chaos_faults.empty()) {
    try {
      perfbg::chaos::FaultPlan::parse_specs(cfg.chaos_faults);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "perfbgd_chaos: %s\n", e.what());
      return 2;
    }
  }
  std::error_code ec;
  std::filesystem::create_directories(cfg.dir, ec);
  // Stale state from a previous soak in the same dir would contaminate the
  // journal audit; start from nothing.
  std::filesystem::remove(journal_path(cfg), ec);
  std::filesystem::remove(journal_path(cfg) + ".1", ec);
  ::signal(SIGPIPE, SIG_IGN);

  InvariantChecker checker;
  VariantBook book;
  std::vector<Variant> base;
  base.reserve(static_cast<std::size_t>(cfg.distinct));
  for (int i = 0; i < cfg.distinct; ++i) {
    base.push_back(make_variant(cfg, static_cast<std::uint64_t>(i)));
    book.add(base.back());
  }

  std::vector<std::string> driver_errors;
  std::map<std::string, JsonValue> journaled;  // key -> frame, grows per life
  JsonValue lives = JsonValue::array();

  for (int life = 0; life < cfg.cycles; ++life) {
    std::string boot_error;
    const pid_t pid = spawn_daemon(cfg, life, boot_error);
    if (pid < 0) {
      driver_errors.push_back("life " + std::to_string(life) + ": " + boot_error);
      break;
    }
    if (!wait_ready(cfg, pid, boot_error)) {
      driver_errors.push_back("life " + std::to_string(life) + ": " + boot_error);
      ::kill(pid, SIGKILL);
      int status = 0;
      ::waitpid(pid, &status, 0);
      break;
    }

    LifeStats stats;
    if (life > 0)
      probe_warm_start(cfg, life, journaled, checker, stats, driver_errors);

    // Phase A: quiescent herd, then the conservation scrape.
    {
      std::vector<std::thread> herd;
      herd.reserve(static_cast<std::size_t>(cfg.clients));
      for (int c = 0; c < cfg.clients; ++c)
        herd.emplace_back(run_herd, std::cref(cfg), life, c, std::cref(base),
                          std::ref(checker), std::ref(stats));
      for (std::thread& t : herd) t.join();
    }
    scrape_counters(cfg, life, checker, driver_errors);

    // Phase B: fresh-key herd still running when the signal lands.
    std::atomic<bool> stop{false};
    std::vector<std::thread> overlap;
    overlap.reserve(static_cast<std::size_t>(cfg.clients));
    for (int c = 0; c < cfg.clients; ++c)
      overlap.emplace_back(run_overlap, std::cref(cfg), life, c, std::ref(book),
                           std::ref(checker), std::ref(stats), std::cref(stop));
    const double overlap_jitter_ms =
        static_cast<double>(derive_seed(cfg.seed, 0xE000u + static_cast<std::uint64_t>(life)) % 50u);
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
        cfg.overlap_ms + overlap_jitter_ms));
    const int sig = choose_signal(cfg, life);
    ::kill(pid, sig);
    int status = 0;
    const bool reaped = wait_exit(pid, 30000.0, status);
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& t : overlap) t.join();

    if (!reaped) {
      driver_errors.push_back("life " + std::to_string(life) +
                              ": daemon did not exit within 30 s of " +
                              (sig == SIGKILL ? "SIGKILL" : "SIGTERM") +
                              "; escalated to SIGKILL");
    } else if (sig == SIGKILL) {
      if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL)
        driver_errors.push_back("life " + std::to_string(life) +
                                ": unexpected exit after SIGKILL: " +
                                describe_status(status));
    } else {
      // Two-level drain: 0 = clean, 9 = forced (watchdog escalation).
      if (!WIFEXITED(status) ||
          (WEXITSTATUS(status) != 0 && WEXITSTATUS(status) != 9))
        driver_errors.push_back("life " + std::to_string(life) +
                                ": unexpected exit after SIGTERM: " +
                                describe_status(status));
    }

    // The journal audit: every ack collected so far must have survived.
    std::uint64_t journal_size = 0;
    try {
      const perfbg::runner::JournalIndex index =
          perfbg::runner::JournalIndex::load_with_rotation(journal_path(cfg),
                                                           kSweepId);
      journal_size = index.size();
      checker.check_journal(index);
      for (const auto& [key, frame] : book.snapshot()) {
        const perfbg::runner::JournalRecord* record = index.find(key);
        if (record != nullptr && record->ok()) journaled.emplace(key, frame);
      }
    } catch (const std::exception& e) {
      driver_errors.push_back("life " + std::to_string(life) +
                              ": journal audit failed: " + e.what());
    }

    JsonValue entry = JsonValue::object();
    entry.set("life", JsonValue(static_cast<std::int64_t>(life)));
    entry.set("signal", JsonValue(sig == SIGKILL ? "SIGKILL" : "SIGTERM"));
    entry.set("exit", JsonValue(describe_status(status)));
    entry.set("responses", JsonValue(stats.responses.load()));
    entry.set("ok", JsonValue(stats.ok.load()));
    entry.set("errors", JsonValue(stats.errors.load()));
    entry.set("cached", JsonValue(stats.cached.load()));
    entry.set("coalesced", JsonValue(stats.coalesced.load()));
    entry.set("reconnects", JsonValue(stats.reconnects.load()));
    entry.set("journal_records", JsonValue(journal_size));
    lives.push_back(std::move(entry));

    std::fprintf(stderr,
                 "perfbgd_chaos: life %d/%d %s -> %s responses=%llu ok=%llu "
                 "cached=%llu journal=%llu violations=%llu\n",
                 life + 1, cfg.cycles, sig == SIGKILL ? "SIGKILL" : "SIGTERM",
                 describe_status(status).c_str(),
                 static_cast<unsigned long long>(stats.responses.load()),
                 static_cast<unsigned long long>(stats.ok.load()),
                 static_cast<unsigned long long>(stats.cached.load()),
                 static_cast<unsigned long long>(journal_size),
                 static_cast<unsigned long long>(checker.violation_count()));
  }

  JsonValue report = JsonValue::object();
  report.set("schema", JsonValue("perfbg.chaos_soak.v1"));
  report.set("cycles", JsonValue(static_cast<std::int64_t>(cfg.cycles)));
  report.set("clients", JsonValue(static_cast<std::int64_t>(cfg.clients)));
  report.set("kill", JsonValue(cfg.kill));
  report.set("chaos_seed", JsonValue(static_cast<std::int64_t>(cfg.seed)));
  report.set("chaos_faults", JsonValue(cfg.chaos_faults));
  report.set("lives", std::move(lives));
  JsonValue errors = JsonValue::array();
  for (const std::string& e : driver_errors) errors.push_back(JsonValue(e));
  report.set("driver_errors", std::move(errors));
  report.set("invariants", checker.report_json());

  const std::string dumped = report.dump();
  std::fprintf(stdout, "%s\n", dumped.c_str());
  if (!cfg.report.empty()) {
    if (std::FILE* f = std::fopen(cfg.report.c_str(), "w"); f != nullptr) {
      std::fwrite(dumped.data(), 1, dumped.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
    } else {
      std::fprintf(stderr, "perfbgd_chaos: cannot write --report=%s\n",
                   cfg.report.c_str());
    }
  }

  const bool failed = checker.violation_count() != 0 || !driver_errors.empty();
  if (failed) {
    std::fprintf(stderr,
                 "perfbgd_chaos: FAILED (%llu violations, %zu driver errors); "
                 "replay with --chaos-seed=%llu (same cycles/clients/kill); "
                 "per-life daemon logs are in %s\n",
                 static_cast<unsigned long long>(checker.violation_count()),
                 driver_errors.size(),
                 static_cast<unsigned long long>(cfg.seed), cfg.dir.c_str());
    return 1;
  }
  std::fprintf(stderr,
               "perfbgd_chaos: PASS — %d cycles, %llu checks, 0 violations\n",
               cfg.cycles, static_cast<unsigned long long>(checker.checks()));
  return 0;
}
