// Quickstart: build the paper's model for one workload, solve it, and print
// the headline metrics next to a simulation cross-check.
//
//   $ ./examples/quickstart
//
// Walks through the three public-API steps: (1) pick/scale an arrival
// process, (2) describe the FG/BG system, (3) solve and read metrics.
#include <iostream>

#include "core/model.hpp"
#include "sim/fgbg_simulator.hpp"
#include "util/table.hpp"
#include "workloads/presets.hpp"

int main() {
  using namespace perfbg;

  // 1. Arrival process: the paper's "E-mail" MMPP, scaled to 15% foreground
  //    utilization (the paper sweeps utilization by rescaling the MMPP mean).
  const traffic::MarkovianArrivalProcess arrivals =
      workloads::email().scaled_to_utilization(0.15, workloads::kMeanServiceTimeMs);
  std::cout << "Arrival process '" << arrivals.name() << "': rate " << arrivals.mean_rate()
            << "/ms, CV " << arrivals.interarrival_cv() << ", ACF(1) " << arrivals.acf(1)
            << ", ACF decay " << arrivals.acf_decay_rate() << "\n\n";

  // 2. System: 6 ms exponential service, background spawn probability p=0.3,
  //    background buffer of 5, idle wait = 1 service time.
  core::FgBgParams params{arrivals};
  params.mean_service_time = workloads::kMeanServiceTimeMs;
  params.bg_probability = 0.3;
  params.bg_buffer = 5;
  params.idle_wait_intensity = 1.0;

  // 3. Solve the QBD and read the metrics.
  const core::FgBgModel model(params);
  const core::FgBgSolution solution = model.solve();
  const core::FgBgMetrics& m = solution.metrics();

  // Simulation cross-check (a few million simulated milliseconds).
  sim::SimConfig cfg;
  const sim::SimMetrics s = sim::simulate_fgbg(params, cfg);

  Table t({"metric", "analytic", "simulated", "sim 95% ci"});
  auto row = [&](const char* name, double a, const sim::Estimate& e) {
    t.add_row({std::string(name), a, e.mean, std::string("+/- ") + format_number(e.half_width, 3)});
  };
  row("FG mean queue length", m.fg_queue_length, s.fg_queue_length);
  row("BG mean queue length", m.bg_queue_length, s.bg_queue_length);
  row("BG completion rate", m.bg_completion, s.bg_completion);
  row("FG delayed by BG (arrivals)", m.fg_delayed_arrivals, s.fg_delayed_arrivals);
  row("FG response time (ms)", m.fg_response_time, s.fg_response_time);
  row("server busy fraction", m.busy_fraction, s.busy_fraction);
  t.print(std::cout);

  std::cout << "\nPaper-style WaitP_FG ratio: " << m.fg_delayed
            << "   drift ratio: " << model.drift_ratio()
            << "   probability mass: " << m.probability_mass << "\n";
  return 0;
}
