// perfbgd — the long-running capacity-planning daemon (DESIGN.md §13).
//
// Serves newline-delimited JSON solve/sweep requests over a Unix-domain
// socket, executing on a bounded solver pool with single-flight memo caching,
// admission control, per-request deadlines, a per-model-class circuit
// breaker, and two-level SIGINT/SIGTERM graceful drain. See README
// "Running perfbgd" for a walkthrough.
//
//   ./perfbgd --socket=/tmp/perfbgd.sock --workers=4
//       --journal=served.jsonl --metrics-json=perfbgd_report.json
//
// Exit codes: 0 clean drain; 9 forced drain (second signal, kInterrupted);
// 2 usage error; 1 startup failure (socket bind, journal I/O).
#include <algorithm>
#include <cstdio>
#include <exception>
#include <memory>
#include <string>

#include "chaos/fault_plan.hpp"
#include "chaos/scripted_faults.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "runner/journal.hpp"
#include "runner/sweep_runner.hpp"
#include "server/daemon.hpp"
#include "server/io.hpp"
#include "util/failpoint.hpp"
#include "util/flags.hpp"

namespace {

// One journal namespace for every daemon life, so --warm-start can replay any
// previous served-request journal.
constexpr const char* kSweepId = "perfbgd";

perfbg::Flags make_flags() {
  perfbg::Flags flags;
  flags.define("socket", "path of the Unix-domain listening socket (required)");
  flags.define("workers", "solver worker threads (default 4)");
  flags.define("sweep-jobs", "SweepRunner threads per sweep request (default 1)");
  flags.define("max-connections", "concurrent client connections (default 256)");
  flags.define("max-queue", "admitted-but-unstarted solve bound (default 64)");
  flags.define("default-deadline-ms",
               "per-request budget when the request names none (default 30000; 0 = none)");
  flags.define("watchdog-interval-ms", "watchdog scan period (default 20)");
  flags.define("watchdog-grace-ms",
               "eviction slack past the deadline before the watchdog answers the "
               "waiters itself (default 100)");
  flags.define("write-timeout-ms", "slow-reader budget per response (default 5000)");
  flags.define("cache-capacity", "memo-cache entries, LRU-bounded (default 4096)");
  flags.define("breaker-threshold",
               "consecutive numerical failures that trip a model class (default 3; "
               "0 disables the breaker)");
  flags.define("breaker-cooldown-ms", "open -> half-open probe delay (default 2000)");
  flags.define("max-frame-bytes", "request frame bound (default 1048576)");
  flags.define("journal", "append every served solve to this perfbg.sweep_journal.v1 file");
  flags.define("journal-max-bytes",
               "rotate the journal (atomic rename to <path>.1) when an append "
               "would cross this size (default 0 = unlimited)");
  flags.define("warm-start",
               "seed the cache from a previous life's served-request journal "
               "(rotation-aware: <path>.1 is merged when present)");
  flags.define_switch("warm-start-r",
                      "seed each solve's R iteration from the last R solved for "
                      "the same model class (faster repeat/sweep solves; warm "
                      "solves report different iteration counts, so leave off "
                      "when byte-comparing daemon runs)");
  flags.define("chaos-seed",
               "install a deterministic fault plan seeded here; faults replay "
               "byte-exactly from the same seed (needs --chaos-faults)");
  flags.define("chaos-faults",
               "fault plan spec: seam:rate[:value[:after]],... — seams are the "
               "failpoint registry (util/failpoint.hpp) plus io.read.eof, "
               "io.read.eagain, io.read.short, io.write.reset, io.write.delay_ms");
  flags.define("metrics-json", "write the run report here (periodically and at shutdown)");
  flags.define("report-interval-ms",
               "rewrite --metrics-json every this many ms while serving (default 0 = "
               "shutdown only)");
  flags.define("recorder-capacity",
               "flight-recorder ring entries, the last-N completed request traces "
               "served by tracez (default 256)");
  flags.define("slow-log", "slow-request log size, top-K by wall time (default 16)");
  flags.define("recorder-dump",
               "write the flight-recorder JSON dump here on watchdog evictions, "
               "overload bursts, and drain");
  flags.define("recorder-dump-interval-ms",
               "minimum ms between automatic recorder dumps (default 1000)");
  flags.define("trace-chrome",
               "record request/solve spans and write a Chrome trace-event JSON "
               "file here at shutdown (chrome://tracing, Perfetto)");
  flags.define_switch("enable-test-hooks",
                      "parse the test_* request fields (tests/chaos loadgen only)");
  flags.define_switch("help", "print usage");
  return flags;
}

}  // namespace

int main(int argc, char** argv) {
  perfbg::Flags flags = make_flags();
  try {
    flags.parse(argc, argv);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "perfbgd: %s\n%s", e.what(), flags.help().c_str());
    return 2;
  }
  if (flags.get_bool("help", false)) {
    std::fprintf(stdout, "%s", flags.help().c_str());
    return 0;
  }
  const std::string socket_path = flags.get_string("socket", "");
  if (socket_path.empty()) {
    std::fprintf(stderr, "perfbgd: --socket is required\n%s", flags.help().c_str());
    return 2;
  }

  perfbg::obs::RunReport report("perfbgd");
  perfbg::server::DaemonOptions options;
  options.socket_path = socket_path;
  options.workers = flags.get_int("workers", 4);
  options.sweep_jobs = flags.get_int("sweep-jobs", 1);
  options.max_connections = flags.get_int("max-connections", 256);
  options.max_queue = static_cast<std::size_t>(flags.get_int("max-queue", 64));
  options.default_deadline_ms = flags.get_double("default-deadline-ms", 30000.0);
  options.watchdog_interval_ms = flags.get_double("watchdog-interval-ms", 20.0);
  options.watchdog_grace_ms = flags.get_double("watchdog-grace-ms", 100.0);
  options.write_timeout_ms = flags.get_double("write-timeout-ms", 5000.0);
  options.cache_capacity = static_cast<std::size_t>(flags.get_int("cache-capacity", 4096));
  options.breaker_threshold = flags.get_int("breaker-threshold", 3);
  options.breaker_cooldown_ms = flags.get_double("breaker-cooldown-ms", 2000.0);
  options.max_frame_bytes =
      static_cast<std::size_t>(flags.get_int("max-frame-bytes", 1 << 20));
  options.enable_test_hooks = flags.get_bool("enable-test-hooks", false);
  options.warm_start_r = flags.has("warm-start-r");
  options.report_path = flags.get_string("metrics-json", "");
  options.report_interval_ms = flags.get_double("report-interval-ms", 0.0);
  options.recorder_capacity =
      static_cast<std::size_t>(flags.get_int("recorder-capacity", 256));
  options.slow_log_capacity = static_cast<std::size_t>(flags.get_int("slow-log", 16));
  options.recorder_dump_path = flags.get_string("recorder-dump", "");
  options.recorder_dump_min_interval_ms =
      flags.get_double("recorder-dump-interval-ms", 1000.0);

  report.set_config("socket", socket_path);
  report.set_config("workers", options.workers);
  report.set_config("max_queue", static_cast<std::int64_t>(options.max_queue));
  report.set_config("max_connections", options.max_connections);
  report.set_config("cache_capacity", static_cast<std::int64_t>(options.cache_capacity));
  report.set_config("breaker_threshold", options.breaker_threshold);
  report.set_config("default_deadline_ms", options.default_deadline_ms);

  std::unique_ptr<perfbg::runner::JournalWriter> journal;
  std::unique_ptr<perfbg::runner::JournalIndex> warm;
  try {
    if (const std::string path = flags.get_string("warm-start", ""); !path.empty()) {
      warm = std::make_unique<perfbg::runner::JournalIndex>(
          perfbg::runner::JournalIndex::load_with_rotation(path, kSweepId));
      options.warm_start = warm.get();
    }
    if (const std::string path = flags.get_string("journal", ""); !path.empty()) {
      journal = std::make_unique<perfbg::runner::JournalWriter>(
          path, kSweepId,
          static_cast<std::uint64_t>(
              std::max(0, flags.get_int("journal-max-bytes", 0))));
      options.journal = journal.get();
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perfbgd: %s\n", e.what());
    return 2;
  }

  // In-daemon chaos: a seeded FaultPlan installed as the process failpoint
  // hook (and, for the io.* seams, as the IO fault injector). The fired-fault
  // schedule prints at drain so any failure names the seed that replays it.
  std::unique_ptr<perfbg::chaos::FaultPlan> chaos_plan;
  std::unique_ptr<perfbg::chaos::PlannedIoFaults> chaos_io;
  const std::string chaos_faults = flags.get_string("chaos-faults", "");
  if (!chaos_faults.empty()) {
    try {
      chaos_plan = std::make_unique<perfbg::chaos::FaultPlan>(
          static_cast<std::uint64_t>(flags.get_int("chaos-seed", 1)),
          perfbg::chaos::FaultPlan::parse_specs(chaos_faults));
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "perfbgd: %s\n%s", e.what(), flags.help().c_str());
      return 2;
    }
    chaos_io = std::make_unique<perfbg::chaos::PlannedIoFaults>(*chaos_plan);
    perfbg::install_failpoint_hook(chaos_plan.get());
    perfbg::server::install_io_fault_injector(chaos_io.get());
  }

  // First signal: drain (stop accepting, finish accepted work). Second:
  // cancel in-flight solves and exit 9. The watchdog polls the level.
  perfbg::runner::install_signal_handlers();

  // Opt-in span collection: with a collector installed every request opens a
  // server.request span and the trace exports as one connected tree per
  // request (accept -> queue -> worker -> qbd.solve.*).
  const std::string trace_path = flags.get_string("trace-chrome", "");
  std::unique_ptr<perfbg::obs::SpanCollector> collector;
  std::unique_ptr<perfbg::obs::SpanSession> session;
  if (!trace_path.empty()) {
    collector = std::make_unique<perfbg::obs::SpanCollector>();
    session = std::make_unique<perfbg::obs::SpanSession>(*collector);
  }

  perfbg::server::Daemon daemon(std::move(options), report);
  try {
    daemon.start();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perfbgd: startup failed: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "perfbgd: listening on %s (%d workers)\n", socket_path.c_str(),
               flags.get_int("workers", 4));
  // Readiness line on stdout so scripts can wait for it.
  std::fprintf(stdout, "READY %s\n", socket_path.c_str());
  std::fflush(stdout);

  const int rc = daemon.run();
  if (chaos_plan) {
    // Every thread that crosses a seam has stopped: safe to clear the hooks.
    perfbg::server::install_io_fault_injector(nullptr);
    perfbg::install_failpoint_hook(nullptr);
    // The replay record: seed + every fired fault with its schedule index.
    std::fprintf(stdout, "CHAOS %s\n", chaos_plan->log_json().dump().c_str());
    std::fflush(stdout);
  }
  std::fprintf(stderr,
               "perfbgd: drained (%s); served=%llu cache_hits=%llu coalesced=%llu "
               "solves=%llu shed=%llu\n",
               rc == 0 ? "clean" : "forced",
               static_cast<unsigned long long>(report.metrics().counter("server.requests.total")),
               static_cast<unsigned long long>(report.metrics().counter("server.cache.hit")),
               static_cast<unsigned long long>(report.metrics().counter("server.cache.coalesced")),
               static_cast<unsigned long long>(report.metrics().counter("server.solve.executed")),
               static_cast<unsigned long long>(report.metrics().counter("server.queue.shed")));
  if (session) {
    session.reset();  // uninstall before exporting
    try {
      collector->write_chrome_trace(trace_path);
      std::fprintf(stderr, "perfbgd: wrote %zu spans to %s\n", collector->size(),
                   trace_path.c_str());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "perfbgd: trace export failed: %s\n", e.what());
    }
  }
  return rc;
}
