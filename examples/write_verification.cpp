// Scenario: WRITE verification (READ-after-WRITE) as background work.
//
// The paper's motivating example: every WRITE should be re-read in the
// background to detect media errors, so p equals the WRITE fraction of the
// workload. A drive vendor must decide how much verification traffic a drive
// can sustain: verification that is generated but dropped (buffer overflow)
// silently erodes the reliability benefit.
//
// This example is a capacity planner: for each workload and foreground load
// it finds the largest verification probability p such that at least 95% of
// generated verification jobs still complete, and prints the residual
// foreground cost at that operating point.
#include <iostream>
#include <optional>

#include "core/model.hpp"
#include "util/table.hpp"
#include "workloads/presets.hpp"

namespace {

using namespace perfbg;

core::FgBgMetrics solve(const traffic::MarkovianArrivalProcess& proc, double load, double p) {
  core::FgBgParams params{proc.scaled_to_utilization(load, workloads::kMeanServiceTimeMs)};
  params.bg_probability = p;
  return core::FgBgModel(params).solve().metrics();
}

/// Largest p in (0, 1] with completion >= target, by bisection (completion
/// is decreasing in p at fixed load). Returns nullopt when even p = 0.01
/// misses the target.
std::optional<double> max_sustainable_p(const traffic::MarkovianArrivalProcess& proc,
                                        double load, double target_completion) {
  if (solve(proc, load, 0.01).bg_completion < target_completion) return std::nullopt;
  if (solve(proc, load, 1.0).bg_completion >= target_completion) return 1.0;
  double lo = 0.01, hi = 1.0;
  for (int i = 0; i < 40; ++i) {
    const double mid = 0.5 * (lo + hi);
    (solve(proc, load, mid).bg_completion >= target_completion ? lo : hi) = mid;
  }
  return lo;
}

}  // namespace

int main() {
  using namespace perfbg;
  constexpr double kTarget = 0.95;
  std::cout << "WRITE-verification capacity planner\n"
            << "deepest verification load p with >= " << 100 * kTarget
            << "% of verification jobs completing\n\n";

  Table t({"workload", "fg load", "max p", "fg qlen @ max p", "fg qlen @ p=0",
           "fg cost %", "verify drop rate (/s)"});
  t.set_precision(4);
  for (const auto& proc : {workloads::email(), workloads::software_dev(),
                           workloads::email_poisson()}) {
    for (double load : {0.05, 0.10, 0.15, 0.20, 0.30, 0.50}) {
      const auto p = max_sustainable_p(proc, load, kTarget);
      if (!p) {
        t.add_row({proc.name(), load, std::string("none"), std::string("-"),
                   std::string("-"), std::string("-"), std::string("-")});
        continue;
      }
      const core::FgBgMetrics with_bg = solve(proc, load, *p);
      const core::FgBgMetrics no_bg = solve(proc, load, 0.0);
      t.add_row({proc.name(), load, *p, with_bg.fg_queue_length, no_bg.fg_queue_length,
                 100.0 * (with_bg.fg_queue_length / no_bg.fg_queue_length - 1.0),
                 1000.0 * with_bg.bg_drop_rate});
    }
  }
  t.print(std::cout);

  std::cout << "\nReading: under independent arrivals the drive sustains full\n"
               "verification (p near 1) through mid loads; under strongly correlated\n"
               "arrivals the sustainable verification load collapses at a small\n"
               "fraction of the utilization — the paper's central design message.\n";
  return 0;
}
