// Command-line front end: evaluate the FG/BG model for one configuration
// without writing any code.
//
//   $ ./examples/perfbg_cli --workload email --util 0.15 --p 0.3
//   $ ./examples/perfbg_cli --workload poisson --util 0.5 --p 0.9
//       --buffer 10 --idle-wait 2.0 --service erlang2 --simulate true
//   $ ./examples/perfbg_cli --metrics-json=/tmp/run.json --trace=/tmp/run.jsonl
//   $ ./examples/perfbg_cli --trace-chrome=/tmp/spans.json
//   $ ./examples/perfbg_cli --workload email --sweep-util 0.05,0.1,0.15,0.2
//       --jobs 4 --journal /tmp/cli.journal       # resumable parallel sweep
//
// Workloads: email | softdev | useraccounts | lowacf | ipp | poisson
// Service:   expo | erlang2 | erlang4 | h2   (mean fixed by --service-mean)
//
// --sweep-util=<u1,u2,...> switches to sweep mode: one model solve per listed
// foreground utilization, executed through the sweep runner (DESIGN.md §11),
// so --jobs, --point-timeout-ms, --retries, --journal, and --resume all
// apply. The table is printed in list order regardless of parallelism; a
// point that fails with a classified error renders as its error code and the
// sweep continues (exit 1). An interrupted sweep exits 9, resumable via
// --resume=<journal>.
//
// --metrics-json writes a structured run report (schema
// perfbg.run_report.v1): solver phase timings, the per-iteration R-solver
// convergence trace, simulator event counters (a short validation
// simulation runs automatically when --simulate was not given), and one
// numerical-health record per solve under "health" — convergence status,
// residual trajectory, fallback rung, drift proximity (DESIGN.md §12).
//
// --metrics-prom writes the final metrics snapshot in Prometheus text
// exposition format 0.0.4, for scraping into a time-series store.
//
// --trace-chrome writes the run's hierarchical span profile in Chrome
// trace-event format — open the file in chrome://tracing or Perfetto to see
// the nested solve → R-iteration → LU flame view (DESIGN.md §10).
//
// Exit codes (see README "Exit codes" and DESIGN.md §9): 0 success, 1
// unexpected error (or a sweep with failed points), 2 usage error, and one
// code per perfbg::ErrorCode for classified pipeline failures — 3 invalid
// model, 4 unstable QBD (drift >= 1), 5 singular matrix, 6 non-convergence,
// 7 numerical breakdown, 8 point deadline exceeded, 9 interrupted (sweep is
// resumable). A classified failure is also recorded in the run report's
// "errors" array when --metrics-json was given, so sweep drivers can harvest
// failed points from the report.
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "qbd/solution.hpp"
#include "qbd/warm_start.hpp"
#include "runner/sweep_runner.hpp"
#include "sim/fgbg_simulator.hpp"
#include "util/error.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "workloads/presets.hpp"

namespace {

using namespace perfbg;

traffic::MarkovianArrivalProcess pick_workload(const std::string& name) {
  if (name == "email") return workloads::email();
  if (name == "softdev") return workloads::software_dev();
  if (name == "useraccounts") return workloads::user_accounts();
  if (name == "lowacf") return workloads::email_low_acf();
  if (name == "ipp") return workloads::email_ipp();
  if (name == "poisson") return workloads::email_poisson();
  throw std::invalid_argument("unknown workload '" + name +
                              "' (email|softdev|useraccounts|lowacf|ipp|poisson)");
}

traffic::PhaseType pick_service(const std::string& name, double mean) {
  if (name == "expo") return traffic::PhaseType::exponential(mean);
  if (name == "erlang2") return traffic::PhaseType::erlang(2, mean);
  if (name == "erlang4") return traffic::PhaseType::erlang(4, mean);
  if (name == "h2")  // balanced 2-branch, SCV = 2 at any mean
    return traffic::PhaseType::hyperexponential(0.5, mean * 1.7071068, mean * 0.2928932);
  throw std::invalid_argument("unknown service '" + name + "' (expo|erlang2|erlang4|h2)");
}

std::vector<double> parse_util_list(const std::string& csv) {
  std::vector<double> utils;
  std::stringstream ss(csv);
  std::string token;
  while (std::getline(ss, token, ',')) {
    if (token.find_first_not_of(" \t") == std::string::npos) continue;
    try {
      utils.push_back(std::stod(token));
    } catch (const std::exception&) {
      throw std::invalid_argument("--sweep-util: '" + token + "' is not a number");
    }
  }
  if (utils.empty())
    throw std::invalid_argument(
        "--sweep-util needs a comma-separated list of utilizations");
  return utils;
}

/// Deterministic identity of one solved point for health records: workload
/// plus model coordinates (same convention as bench_common's
/// point_health_key, which examples cannot include).
std::string health_key(const std::string& workload, double utilization, double p,
                       int bg_buffer) {
  return workload + "|u=" + format_number(utilization, 6) +
         "|p=" + format_number(p, 6) + "|X=" + std::to_string(bg_buffer);
}

/// Writes the registry snapshot in Prometheus text format 0.0.4; throws
/// std::runtime_error on I/O failure.
void write_prometheus(const obs::MetricsRegistry& metrics, const std::string& path) {
  std::ofstream out(path);
  if (!out)
    throw std::runtime_error("perfbg: cannot open '" + path + "' for writing");
  out << metrics.render_text();
  out.flush();
  if (!out)
    throw std::runtime_error("perfbg: failed writing metrics to '" + path + "'");
}

/// Sweep mode: one solve per listed utilization through the sweep runner.
/// Returns the process exit code (0 ok, 1 some points failed, 9 interrupted).
int run_util_sweep(const std::vector<double>& utils,
                   const traffic::MarkovianArrivalProcess& base,
                   const core::FgBgParams& base_params, double mean_s,
                   const Flags& flags, obs::RunReport& report, bool observing) {
  runner::RunnerOptions options = runner::runner_options_from_flags(flags);
  // open_journal_session throws std::invalid_argument on a bad/mismatched
  // journal; the caller's usage-error handler turns that into exit 2.
  runner::JournalSession journal = runner::open_journal_session(flags, "perfbg_cli");
  options.journal = journal.writer.get();
  options.resume = journal.resume.get();
  if (observing) options.metrics = &report.metrics();

  runner::SweepRunner sweep(options);
  // --warm-start: sequential sweeps seed each point's R from the previous
  // point of the same model class (the whole CLI sweep is one class — the
  // utilization is the stepped axis). Retries stay on the cold ladder.
  const auto seeds = std::make_shared<qbd::RSeedCache>();
  const bool warm_sweep = options.warm_start && options.jobs <= 1;
  const std::string seed_class =
      base.name() + "|p=" + format_number(base_params.bg_probability, 6) +
      "|idle=" + format_number(base_params.idle_wait_intensity, 6) +
      "|X=" + std::to_string(base_params.bg_buffer);
  for (const double u : utils) {
    // Stable journal identity: workload + full parameter tuple.
    const std::string key =
        base.name() + "|u=" + format_number(u, 6) +
        "|p=" + format_number(base_params.bg_probability, 6) +
        "|X=" + format_number(static_cast<double>(base_params.bg_buffer), 0) +
        "|iw=" + format_number(base_params.idle_wait_intensity, 6);
    sweep.add(key, [&base, &base_params, mean_s, u, &report, observing, seeds,
                    warm_sweep, seed_class](runner::PointContext& ctx) {
      core::FgBgParams params = base_params;
      params.arrivals = base.scaled_to_utilization(u, mean_s);
      qbd::RSolverOptions solver_opts;
      solver_opts.cancel = &ctx.token();
      solver_opts.start_rung = ctx.attempt() - 1;
      const bool warm = warm_sweep && solver_opts.start_rung == 0;
      if (warm) solver_opts.warm_start = seeds->get(seed_class);
      const core::FgBgSolution solution = core::FgBgModel(params).solve(solver_opts);
      if (warm)
        seeds->put(seed_class, solution.qbd().r_matrix(),
                   solution.qbd().solver_stats().iterations);
      if (observing) {
        // add_health is thread-safe; sweep workers record concurrently.
        obs::SolveHealth health = solution.health();
        health.key = health_key(base.name(), u, params.bg_probability,
                                params.bg_buffer);
        health.attempt = ctx.attempt();
        report.add_health(health);
      }
      const core::FgBgMetrics m = solution.metrics();
      obs::JsonValue payload = obs::JsonValue::object();
      payload.set("fg_queue_length", obs::JsonValue(m.fg_queue_length));
      payload.set("fg_response_time", obs::JsonValue(m.fg_response_time));
      payload.set("fg_delayed", obs::JsonValue(m.fg_delayed));
      payload.set("bg_completion", obs::JsonValue(m.bg_completion));
      payload.set("bg_queue_length", obs::JsonValue(m.bg_queue_length));
      payload.set("busy_fraction", obs::JsonValue(m.busy_fraction));
      return payload;
    });
  }
  const runner::SweepResult result = sweep.run();

  Table t({"fg_util", "fg_qlen", "fg_resp_ms", "fg_delayed", "bg_completion",
           "bg_qlen", "busy"});
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    const runner::PointOutcome& out = result.outcomes[i];
    std::vector<TableCell> row;
    row.emplace_back(std::in_place_type<double>, utils[i]);
    if (out.ok()) {
      for (const char* name : {"fg_queue_length", "fg_response_time", "fg_delayed",
                               "bg_completion", "bg_queue_length", "busy_fraction"})
        row.emplace_back(std::in_place_type<double>, out.payload.at(name).as_double());
    } else {
      row.emplace_back(std::in_place_type<std::string>, out.error_code);
      for (int pad = 0; pad < 5; ++pad)
        row.emplace_back(std::in_place_type<std::string>, "-");
      if (observing && out.error_code != "kInterrupted") {
        obs::JsonValue record = obs::JsonValue::object();
        record.set("code", obs::JsonValue(out.error_code));
        record.set("message", obs::JsonValue(out.error_message));
        record.set("workload", obs::JsonValue(base.name()));
        record.set("utilization", obs::JsonValue(utils[i]));
        record.set("bg_probability", obs::JsonValue(base_params.bg_probability));
        record.set("idle_wait_intensity",
                   obs::JsonValue(base_params.idle_wait_intensity));
        record.set("bg_buffer", obs::JsonValue(base_params.bg_buffer));
        record.set("attempts",
                   obs::JsonValue(out.attempts > 0 ? out.attempts : 1));
        report.add_error(std::move(record));
        // The solve threw inside the worker before the lambda could record a
        // converged health entry; record the failed one here.
        obs::SolveHealth health =
            obs::failed_solve_health(out.error_code, out.error_message);
        health.key = health_key(base.name(), utils[i], base_params.bg_probability,
                                base_params.bg_buffer);
        health.attempt = out.attempts > 0 ? out.attempts : 1;
        report.add_health(health);
      }
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);

  if (result.interrupted) {
    std::cout << "\nsweep interrupted: " << result.completed << "/"
              << result.outcomes.size() << " points completed";
    if (journal.writer)
      std::cout << "; resume with --resume=" << journal.writer->path();
    else
      std::cout << " (re-run with --journal=<path> to make sweeps resumable)";
    std::cout << "\n";
  }
  return result.exit_code();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define("workload", "arrival process: email|softdev|useraccounts|lowacf|ipp|poisson");
  flags.define("util", "foreground utilization in (0,1); default: workload's native load");
  flags.define("p", "background spawn probability [0,1], default 0.3");
  flags.define("buffer", "background buffer size X >= 1, default 5");
  flags.define("idle-wait", "idle wait in multiples of the service time, default 1.0");
  flags.define("service", "service distribution: expo|erlang2|erlang4|h2, default expo");
  flags.define("service-mean", "mean service time in ms, default 6");
  flags.define("simulate", "true to cross-check with the simulator, default false");
  flags.define("sweep-util",
               "comma-separated utilizations: solve one point per value "
               "through the sweep runner (enables --jobs/--journal/--resume)");
  perfbg::runner::define_runner_flags(flags);
  flags.define("metrics-json", "write a structured JSON run report to this path");
  flags.define("metrics-prom",
               "write a Prometheus text-format metrics snapshot to this path");
  flags.define("trace", "write all trace events as JSON lines to this path");
  flags.define("trace-chrome",
               "write a Chrome trace-event JSON span profile to this path");
  flags.define_switch("help", "print this help");

  obs::RunReport report("perfbg_cli");
  std::string metrics_json, prom_path, trace_path, chrome_path;
  std::optional<obs::SpanCollector> span_collector;
  // Closes the profiling session and writes the chrome trace; safe to call on
  // both the success and the classified-error path.
  auto flush_chrome_trace = [&](std::ostream& out) {
    if (!span_collector) return;
    span_collector->uninstall();
    try {
      span_collector->write_chrome_trace(chrome_path);
      out << "wrote chrome trace (" << span_collector->size() << " spans) to "
          << chrome_path << "\n";
    } catch (const std::exception& io) {
      std::cerr << io.what() << "\n";
    }
    span_collector.reset();
  };
  try {
    flags.parse(argc, argv);
    if (flags.has("help")) {
      std::cout << flags.help();
      return 0;
    }

    auto arrivals = pick_workload(flags.get_string("workload", "email"));
    const double mean_s = flags.get_double("service-mean", 6.0);
    if (flags.has("util"))
      arrivals = arrivals.scaled_to_utilization(flags.get_double("util", 0.1), mean_s);

    core::FgBgParams params{arrivals};
    params.service_distribution = pick_service(flags.get_string("service", "expo"), mean_s);
    params.bg_probability = flags.get_double("p", 0.3);
    params.bg_buffer = flags.get_int("buffer", 5);
    params.idle_wait_intensity = flags.get_double("idle-wait", 1.0);

    metrics_json = flags.get_string("metrics-json", "");
    prom_path = flags.get_string("metrics-prom", "");
    trace_path = flags.get_string("trace", "");
    chrome_path = flags.get_string("trace-chrome", "");
    if (!chrome_path.empty()) {
      span_collector.emplace();
      span_collector->install();
    }
    const bool observing =
        !metrics_json.empty() || !prom_path.empty() || !trace_path.empty();
    const bool simulate = flags.get_bool("simulate", false);

    obs::MetricsRegistry* metrics = observing ? &report.metrics() : nullptr;
    if (observing) {
      report.set_config("workload", obs::JsonValue(arrivals.name()));
      report.set_config("bg_probability", obs::JsonValue(params.bg_probability));
      report.set_config("bg_buffer", obs::JsonValue(params.bg_buffer));
      report.set_config("idle_wait_intensity", obs::JsonValue(params.idle_wait_intensity));
      report.set_config("mean_service_time", obs::JsonValue(mean_s));
      report.set_config("offered_load", obs::JsonValue(params.fg_offered_load()));
    }

    std::cout << "workload " << arrivals.name() << ": rate " << arrivals.mean_rate()
              << "/ms, CV " << arrivals.interarrival_cv() << ", ACF(1) "
              << (arrivals.phases() > 1 ? arrivals.acf(1) : 0.0) << ", offered load "
              << params.fg_offered_load() << "\n\n";

    if (flags.has("sweep-util")) {
      const std::vector<double> utils =
          parse_util_list(flags.get_string("sweep-util", ""));
      const int code =
          run_util_sweep(utils, arrivals, params, mean_s, flags, report, observing);
      if (!metrics_json.empty()) {
        report.write_json(metrics_json);
        std::cout << "\nwrote run report to " << metrics_json << "\n";
      }
      if (!prom_path.empty()) {
        write_prometheus(report.metrics(), prom_path);
        std::cout << "wrote Prometheus metrics to " << prom_path << "\n";
      }
      if (!trace_path.empty()) {
        report.write_trace_jsonl(trace_path);
        std::cout << "wrote trace events to " << trace_path << "\n";
      }
      flush_chrome_trace(std::cout);
      return code;
    }

    qbd::RSolverOptions solver_opts;
    solver_opts.record_trace = observing;
    const core::FgBgModel model(params, metrics);
    const core::FgBgSolution solution = model.solve(solver_opts);
    const core::FgBgMetrics m = solution.metrics();
    if (observing) {
      obs::SolveHealth health = solution.health();
      health.key = health_key(arrivals.name(), params.fg_offered_load(),
                              params.bg_probability, params.bg_buffer);
      report.add_health(health);
      export_convergence_trace(solution.qbd().solver_stats(),
                               report.trace("qbd.rsolve.convergence"));
      report.metrics().set("model.fg_queue_length", m.fg_queue_length);
      report.metrics().set("model.bg_completion", m.bg_completion);
      report.metrics().set("model.fg_delayed", m.fg_delayed);
      report.metrics().set("model.tail_decay_rate", solution.tail_decay_rate());
    }
    Table t({"metric", "value"});
    t.add_row({std::string("FG mean queue length"), m.fg_queue_length});
    t.add_row({std::string("FG mean response time (ms)"), m.fg_response_time});
    t.add_row({std::string("FG delayed behind BG (WaitP)"), m.fg_delayed});
    t.add_row({std::string("FG delayed (arrival-weighted)"), m.fg_delayed_arrivals});
    t.add_row({std::string("BG completion rate"), m.bg_completion});
    t.add_row({std::string("BG mean queue length"), m.bg_queue_length});
    t.add_row({std::string("BG throughput (/s)"), 1000.0 * m.bg_throughput});
    t.add_row({std::string("BG drop rate (/s)"), 1000.0 * m.bg_drop_rate});
    t.add_row({std::string("server busy fraction"), m.busy_fraction});
    t.print(std::cout);

    if (simulate || observing) {
      sim::SimConfig cfg;
      if (!simulate) {
        // Report-only mode: a shorter deterministic run is enough to fill the
        // event counters and batch trace without a multi-second simulation.
        cfg.warmup_time = 2.0e4;
        cfg.batch_time = 1.0e5;
        cfg.batches = 10;
      }
      if (observing) {
        cfg.metrics = metrics;
        cfg.batch_trace = &report.trace("sim.batch");
      }
      const sim::SimMetrics s = sim::simulate_fgbg(params, cfg);
      if (simulate)
        std::cout << "\nsimulation cross-check (95% CI):\n"
                  << "  FG queue length " << s.fg_queue_length.mean << " +/- "
                  << s.fg_queue_length.half_width << "\n"
                  << "  BG completion   " << s.bg_completion.mean << " +/- "
                  << s.bg_completion.half_width << "\n";
    }

    if (!metrics_json.empty()) {
      report.write_json(metrics_json);
      std::cout << "\nwrote run report to " << metrics_json << "\n";
    }
    if (!prom_path.empty()) {
      write_prometheus(report.metrics(), prom_path);
      std::cout << "wrote Prometheus metrics to " << prom_path << "\n";
    }
    if (!trace_path.empty()) {
      report.write_trace_jsonl(trace_path);
      std::cout << "wrote trace events to " << trace_path << "\n";
    }
    flush_chrome_trace(std::cout);
    if (observing) {
      std::cout << "\n";
      report.print_summary(std::cout);
    }
  } catch (const Error& e) {
    // Classified pipeline failure: report it with its code, record it in the
    // structured report (so sweep drivers see the failed point), and exit
    // with the code's documented status.
    std::cerr << e.what() << "\n";
    obs::JsonValue record = obs::JsonValue::object();
    record.set("code", obs::JsonValue(error_code_name(e.code())));
    record.set("message", obs::JsonValue(std::string(e.what())));
    if (e.context().has_drift_ratio())
      record.set("drift_ratio", obs::JsonValue(e.context().drift_ratio));
    if (e.context().has_iterations())
      record.set("iterations", obs::JsonValue(e.context().iterations));
    report.add_error(std::move(record));
    // The failed solve still gets a health record (status kFailed/kCancelled,
    // with whatever trajectory the error context salvaged).
    obs::SolveHealth health = obs::failed_solve_health(
        error_code_name(e.code()), std::string(e.what()));
    if (e.context().has_drift_ratio()) health.drift_ratio = e.context().drift_ratio;
    if (e.context().has_iterations()) health.iterations = e.context().iterations;
    if (e.context().has_last_residual())
      health.final_residual = e.context().last_residual;
    report.add_health(health);
    if (!metrics_json.empty()) {
      try {
        report.write_json(metrics_json);
        std::cerr << "wrote run report (with error record) to " << metrics_json << "\n";
      } catch (const std::exception& io) {
        std::cerr << io.what() << "\n";
      }
    }
    if (!prom_path.empty()) {
      try {
        write_prometheus(report.metrics(), prom_path);
      } catch (const std::exception& io) {
        std::cerr << io.what() << "\n";
      }
    }
    // Spans recorded up to the failure are still useful for diagnosing it.
    flush_chrome_trace(std::cerr);
    return error_exit_code(e.code());
  } catch (const std::invalid_argument& e) {
    // Usage error: bad flag, unknown workload/service name, invalid value.
    std::cerr << e.what() << "\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  return 0;
}
