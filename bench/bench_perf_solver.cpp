// google-benchmark microbenchmarks of the numeric core: chain construction,
// R-matrix solution, and the end-to-end model solve, as functions of the
// background buffer size X (level size 2X+1 per phase) and of load.
//
// BM_FullModelSolve runs with a live MetricsRegistry and reports the
// per-phase breakdown (chain build, R solve, boundary solve, tail sums,
// metric evaluation) as benchmark counters; BM_FullModelSolve_NoMetrics is
// the uninstrumented baseline, so the diff between the two is the
// instrumentation overhead (budget: < 5%). BM_FullModelSolve_WithSpans adds
// an installed SpanCollector on top (the --trace-chrome path), and the
// NoMetrics variant doubles as the disabled-span baseline — every ScopedSpan
// in the hot path costs one relaxed atomic load there.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/chain_builder.hpp"
#include "core/model.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "qbd/rmatrix.hpp"
#include "qbd/solution.hpp"
#include "workloads/presets.hpp"

namespace {

using namespace perfbg;

core::FgBgParams params_for(int bg_buffer, double load) {
  core::FgBgParams p{
      workloads::email().scaled_to_utilization(load, workloads::kMeanServiceTimeMs)};
  p.bg_probability = 0.3;
  p.bg_buffer = bg_buffer;
  return p;
}

void BM_ChainBuild(benchmark::State& state) {
  const core::FgBgParams p = params_for(static_cast<int>(state.range(0)), 0.3);
  const core::FgBgLayout layout(p.bg_buffer, p.arrivals.phases());
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_fgbg_qbd(p, layout));
  }
}
BENCHMARK(BM_ChainBuild)->Arg(5)->Arg(10)->Arg(25)->Arg(50);

void BM_SolveR_LogReduction(benchmark::State& state) {
  const core::FgBgModel model(params_for(static_cast<int>(state.range(0)), 0.3));
  const auto& q = model.process();
  qbd::RSolverOptions opts;
  for (auto _ : state) {
    benchmark::DoNotOptimize(qbd::solve_r(q.a0, q.a1, q.a2, opts));
  }
}
BENCHMARK(BM_SolveR_LogReduction)->Arg(5)->Arg(10)->Arg(25)->Arg(50);

void BM_SolveR_FunctionalIteration(benchmark::State& state) {
  const core::FgBgModel model(params_for(5, static_cast<double>(state.range(0)) / 100.0));
  const auto& q = model.process();
  qbd::RSolverOptions opts;
  opts.kind = qbd::RSolverKind::kFunctionalIteration;
  opts.max_iters = 2000000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(qbd::solve_r(q.a0, q.a1, q.a2, opts));
  }
}
BENCHMARK(BM_SolveR_FunctionalIteration)->Arg(10)->Arg(50)->Arg(90);

void BM_FullModelSolve(benchmark::State& state) {
  obs::MetricsRegistry registry;
  const core::FgBgModel model(params_for(static_cast<int>(state.range(0)), 0.3),
                              &registry);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.solve().metrics());
  }
  // Per-phase wall-time breakdown, averaged over the iterations (plus the
  // one-off chain build from the constructor).
  for (const auto& [name, t] : registry.timers())
    state.counters[name + "_ms"] =
        benchmark::Counter(t.count ? t.total_ms / static_cast<double>(t.count) : 0.0);
  state.counters["rsolve_iters"] = benchmark::Counter(
      static_cast<double>(registry.counter("qbd.rsolve.iterations")) /
      static_cast<double>(registry.counter("qbd.solve.count")));
}
BENCHMARK(BM_FullModelSolve)->Arg(5)->Arg(10)->Arg(20)->Arg(25);

void BM_FullModelSolve_WarmRepeat(benchmark::State& state) {
  // Repeat-solve latency with an R seed from a previous solve of the same
  // model class (--warm-start / --warm-start-r semantics): functional
  // refinement of the seed replaces the cold log-reduction ladder. This is
  // what the second and later solves of a sweep or a server's repeat queries
  // actually cost, i.e. the flattened side of the bg_buffer cliff.
  const core::FgBgModel model(params_for(static_cast<int>(state.range(0)), 0.3));
  const core::FgBgSolution cold = model.solve();
  qbd::RSolverOptions opts;
  opts.warm_start = std::make_shared<qbd::RWarmStart>(
      qbd::RWarmStart{cold.qbd().r_matrix(), cold.qbd().solver_stats().iterations});
  int saved = 0;
  for (auto _ : state) {
    const core::FgBgSolution s = model.solve(opts);
    saved = s.qbd().solver_stats().warm_start_iterations_saved;
    benchmark::DoNotOptimize(s.metrics());
  }
  state.counters["iters_saved"] = benchmark::Counter(static_cast<double>(saved));
}
BENCHMARK(BM_FullModelSolve_WarmRepeat)->Arg(5)->Arg(10)->Arg(20)->Arg(25);

void BM_FullModelSolve_NoMetrics(benchmark::State& state) {
  const core::FgBgModel model(params_for(static_cast<int>(state.range(0)), 0.3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.solve().metrics());
  }
}
BENCHMARK(BM_FullModelSolve_NoMetrics)->Arg(5)->Arg(10)->Arg(20)->Arg(25);

void BM_FullModelSolve_WithSpans(benchmark::State& state) {
  // Full solve with a live SpanCollector: every instrumented scope records a
  // SpanRecord (clock reads, mutex push). Compare against
  // BM_FullModelSolve_NoMetrics for the enabled-profiling cost; the
  // collector is cleared each iteration so memory stays bounded.
  const core::FgBgModel model(params_for(static_cast<int>(state.range(0)), 0.3));
  obs::SpanCollector collector;
  obs::SpanSession session(collector);
  std::size_t spans = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.solve().metrics());
    spans = collector.size();
    collector.clear();
  }
  state.counters["spans_per_solve"] = benchmark::Counter(static_cast<double>(spans));
}
BENCHMARK(BM_FullModelSolve_WithSpans)->Arg(5)->Arg(10)->Arg(25);

void BM_SolveR_WithConvergenceTrace(benchmark::State& state) {
  // Cost of the opt-in per-iteration trace (increment norm + residual +
  // timestamps) on top of the plain R solve.
  const core::FgBgModel model(params_for(static_cast<int>(state.range(0)), 0.3));
  const auto& q = model.process();
  qbd::RSolverOptions opts;
  opts.record_trace = true;
  qbd::RSolverStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(qbd::solve_r(q.a0, q.a1, q.a2, opts, &stats));
  }
  state.counters["trace_rows"] = benchmark::Counter(static_cast<double>(stats.trace.size()));
}
BENCHMARK(BM_SolveR_WithConvergenceTrace)->Arg(5)->Arg(10)->Arg(25);

void BM_LoadSweepPoint(benchmark::State& state) {
  // One point of a Figs. 5-8 sweep, end to end (scale + build + solve).
  const auto base = workloads::email();
  const double load = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    core::FgBgParams p{base.scaled_to_utilization(load, workloads::kMeanServiceTimeMs)};
    p.bg_probability = 0.3;
    benchmark::DoNotOptimize(core::FgBgModel(p).solve().metrics().fg_queue_length);
  }
}
BENCHMARK(BM_LoadSweepPoint)->Arg(10)->Arg(50)->Arg(90);

}  // namespace

BENCHMARK_MAIN();
