// google-benchmark microbenchmarks of the numeric core: chain construction,
// R-matrix solution, and the end-to-end model solve, as functions of the
// background buffer size X (level size 2X+1 per phase) and of load.
#include <benchmark/benchmark.h>

#include "core/chain_builder.hpp"
#include "core/model.hpp"
#include "qbd/rmatrix.hpp"
#include "qbd/solution.hpp"
#include "workloads/presets.hpp"

namespace {

using namespace perfbg;

core::FgBgParams params_for(int bg_buffer, double load) {
  core::FgBgParams p{
      workloads::email().scaled_to_utilization(load, workloads::kMeanServiceTimeMs)};
  p.bg_probability = 0.3;
  p.bg_buffer = bg_buffer;
  return p;
}

void BM_ChainBuild(benchmark::State& state) {
  const core::FgBgParams p = params_for(static_cast<int>(state.range(0)), 0.3);
  const core::FgBgLayout layout(p.bg_buffer, p.arrivals.phases());
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::build_fgbg_qbd(p, layout));
  }
}
BENCHMARK(BM_ChainBuild)->Arg(5)->Arg(10)->Arg(25)->Arg(50);

void BM_SolveR_LogReduction(benchmark::State& state) {
  const core::FgBgModel model(params_for(static_cast<int>(state.range(0)), 0.3));
  const auto& q = model.process();
  qbd::RSolverOptions opts;
  for (auto _ : state) {
    benchmark::DoNotOptimize(qbd::solve_r(q.a0, q.a1, q.a2, opts));
  }
}
BENCHMARK(BM_SolveR_LogReduction)->Arg(5)->Arg(10)->Arg(25)->Arg(50);

void BM_SolveR_FunctionalIteration(benchmark::State& state) {
  const core::FgBgModel model(params_for(5, static_cast<double>(state.range(0)) / 100.0));
  const auto& q = model.process();
  qbd::RSolverOptions opts;
  opts.kind = qbd::RSolverKind::kFunctionalIteration;
  opts.max_iters = 2000000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(qbd::solve_r(q.a0, q.a1, q.a2, opts));
  }
}
BENCHMARK(BM_SolveR_FunctionalIteration)->Arg(10)->Arg(50)->Arg(90);

void BM_FullModelSolve(benchmark::State& state) {
  const core::FgBgModel model(params_for(static_cast<int>(state.range(0)), 0.3));
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.solve().metrics());
  }
}
BENCHMARK(BM_FullModelSolve)->Arg(5)->Arg(10)->Arg(25);

void BM_LoadSweepPoint(benchmark::State& state) {
  // One point of a Figs. 5-8 sweep, end to end (scale + build + solve).
  const auto base = workloads::email();
  const double load = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    core::FgBgParams p{base.scaled_to_utilization(load, workloads::kMeanServiceTimeMs)};
    p.bg_probability = 0.3;
    benchmark::DoNotOptimize(core::FgBgModel(p).solve().metrics().fg_queue_length);
  }
}
BENCHMARK(BM_LoadSweepPoint)->Arg(10)->Arg(50)->Arg(90);

}  // namespace

BENCHMARK_MAIN();
