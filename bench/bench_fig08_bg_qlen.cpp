// Regenerates the paper's Figure 8: average queue length of background jobs
// vs foreground load for p in {.1, .3, .6, .9}.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace perfbg;
  bench::BenchRun run(argc, argv, "fig08_bg_qlen");
  bench::banner("Figure 8", "background mean queue length vs foreground load");
  const std::vector<double> ps{0.1, 0.3, 0.6, 0.9};
  bench::print_load_sweep_panel("(a) E-mail (High ACF)", workloads::email(),
                                bench::high_acf_load_grid(), ps,
                                &core::FgBgMetrics::bg_queue_length);
  bench::print_load_sweep_panel("(b) Software Dev. (Low ACF)", workloads::software_dev(),
                                bench::low_acf_load_grid(), ps,
                                &core::FgBgMetrics::bg_queue_length);
  return 0;
}
