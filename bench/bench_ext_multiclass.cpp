// Extension study (the paper's §6 future work, implemented): two background
// priority classes. Sweeps foreground load and shows how strict priority
// differentiates the classes — the high-priority class (e.g. WRITE
// verification) keeps completing long after the low-priority class (e.g.
// scrubbing) has starved.
#include <iostream>

#include "bench_common.hpp"
#include "core/multiclass.hpp"

int main(int argc, char** argv) {
  using namespace perfbg;
  bench::BenchRun run(argc, argv, "ext_multiclass");
  bench::banner("Extension: multi-class background",
                "two priority classes, p1 = p2 = 0.3, X1 = X2 = 5");

  for (const auto& proc : {workloads::email_poisson().renamed("expo"),
                           workloads::email().renamed("high-acf")}) {
    bench::subhead("arrivals: " + proc.name());
    Table t({"fg_load", "comp class1", "comp class2", "qlen1", "qlen2", "fg_qlen",
             "fg_delayed"});
    for (double u : {0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.55, 0.70, 0.85}) {
      if (proc.name() == "high-acf" && u > 0.4) continue;  // deep saturation
      core::McParams params{proc.scaled_to_utilization(u, workloads::kMeanServiceTimeMs)};
      params.p1 = 0.3;
      params.p2 = 0.3;
      params.buffer1 = 5;
      params.buffer2 = 5;
      const core::McMetrics m = core::McModel(params).solve();
      t.add_row({u, m.bg1_completion, m.bg2_completion, m.bg1_queue_length,
                 m.bg2_queue_length, m.fg_queue_length, m.fg_delayed});
    }
    t.print(std::cout);
  }

  // Asymmetric split: how to budget a fixed total background probability.
  bench::subhead("splitting a fixed total p = 0.6 across classes (expo, load 0.5)");
  Table t({"p1", "p2", "comp class1", "comp class2", "weighted completion"});
  for (double p1 : {0.0001, 0.1, 0.2, 0.3, 0.4, 0.5, 0.5999}) {
    core::McParams params{
        workloads::email_poisson().scaled_to_utilization(0.5, workloads::kMeanServiceTimeMs)};
    params.p1 = p1;
    params.p2 = 0.6 - p1;
    const core::McMetrics m = core::McModel(params).solve();
    const double weighted =
        (p1 * m.bg1_completion + (0.6 - p1) * m.bg2_completion) / 0.6;
    t.add_row({p1, 0.6 - p1, m.bg1_completion, m.bg2_completion, weighted});
  }
  t.print(std::cout);
  std::cout << "\nReading: strict priority protects class 1 (its completion stays\n"
               "high) while class 2 absorbs most of the drop. The work-weighted\n"
               "total completion varies only mildly with the split and peaks for\n"
               "a balanced-to-class-1-heavy allocation: splitting work across two\n"
               "buffers adds a little capacity, but the priority knob mainly\n"
               "redistributes reliability benefit rather than creating it.\n";
  return 0;
}
