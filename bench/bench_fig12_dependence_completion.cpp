// Regenerates the paper's Figure 12: background completion rate vs load for
// the four dependence-structure comparators.
#include "bench_common.hpp"

namespace {

void panel(double p) {
  using namespace perfbg;
  const auto family = workloads::dependence_family();
  bench::subhead("p = " + format_number(p, 2));
  std::vector<std::string> headers{"fg_load"};
  for (const auto& m : family) headers.push_back(m.name());
  Table t(headers);
  for (double u : {0.02, 0.05, 0.08, 0.11, 0.15, 0.19, 0.25, 0.30, 0.35,
                   0.45, 0.55, 0.65, 0.75, 0.85, 0.90, 0.95}) {
    std::vector<TableCell> row{u};
    for (const auto& m : family)
      row.push_back(bench::solve_point(m, u, p).bg_completion);
    t.add_row(std::move(row));
  }
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  perfbg::bench::BenchRun run(argc, argv, "fig12_dependence_completion");
  perfbg::bench::banner("Figure 12",
                        "background completion rate vs load across dependence structures");
  panel(0.3);
  panel(0.9);
  return 0;
}
