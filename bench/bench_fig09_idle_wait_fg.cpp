// Regenerates the paper's Figure 9: foreground mean queue length as a
// function of the idle-wait duration (in multiples of the mean service
// time), for p in {.1, .3, .6, .9}.
//
// Operating points: each workload at the pre-saturation load where the
// idle-wait knob is visible (E-mail 12%, Software-Dev 25%) — the regime of
// the paper's §5.3 example (E-mail, p=0.6, queue length ~6.5% better at
// idle wait 2x than at 0.5x the service time). See EXPERIMENTS.md.
#include <iostream>

#include "bench_common.hpp"

namespace {
constexpr double kEmailLoad = 0.12;
constexpr double kSoftDevLoad = 0.25;
}  // namespace

int main(int argc, char** argv) {
  using namespace perfbg;
  bench::BenchRun run(argc, argv, "fig09_idle_wait_fg");
  bench::banner("Figure 9", "foreground queue length vs idle-wait intensity");
  const std::vector<double> intensities{0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0};
  const std::vector<double> ps{0.1, 0.3, 0.6, 0.9};

  for (const auto& [proc, load] :
       {std::pair{workloads::email(), kEmailLoad},
        std::pair{workloads::software_dev(), kSoftDevLoad}}) {
    bench::subhead(proc.name() + " at " + format_number(100 * load, 3) +
                   "% foreground utilization");
    std::vector<std::string> headers{"idle_wait (x service time)"};
    for (double p : ps) headers.push_back("p=" + format_number(p, 2));
    Table t(headers);
    for (double intensity : intensities) {
      std::vector<TableCell> row{intensity};
      for (double p : ps)
        row.push_back(bench::solve_point(proc, load, p, intensity).fg_queue_length);
      t.add_row(std::move(row));
    }
    t.print(std::cout);
  }

  // The paper's §5.3 quoted comparison, printed explicitly.
  {
    bench::subhead("paper §5.3 quote check: E-mail, p=0.6, idle wait 0.5x vs 2x");
    const double q_half = bench::solve_point(workloads::email(), kEmailLoad, 0.6, 0.5)
                              .fg_queue_length;
    const double q_twice = bench::solve_point(workloads::email(), kEmailLoad, 0.6, 2.0)
                               .fg_queue_length;
    std::cout << "qlen(0.5x) = " << q_half << ", qlen(2x) = " << q_twice
              << ", foreground gain = " << 100.0 * (q_half - q_twice) / q_half
              << "%  (paper: ~6.5%)\n";
  }
  return 0;
}
