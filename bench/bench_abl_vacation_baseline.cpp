// Baseline comparison: the classical M/G/1-with-multiple-vacations analysis
// (the paper's related-work approach, refs [2, 20]) against the explicit
// FG/BG QBD model. Shows (a) the corner where they coincide, (b) the bias of
// the vacation bound at realistic background loads, and (c) its inability to
// see arrival dependence — the paper's core argument for the QBD model.
#include <iostream>

#include "bench_common.hpp"
#include "core/vacation.hpp"
#include "traffic/phase_type.hpp"
#include "traffic/processes.hpp"

int main(int argc, char** argv) {
  using namespace perfbg;
  bench::BenchRun run(argc, argv, "abl_vacation_baseline");
  using traffic::PhaseType;
  bench::banner("Baseline: vacation queue",
                "M/G/1 multiple vacations vs the explicit FG/BG QBD model");
  const PhaseType service = PhaseType::exponential(workloads::kMeanServiceTimeMs);

  {
    bench::subhead(
        "agreement regime (buffer pinned full, lambda(1+p)E[S] > 1): p=1, X=40, idle->0");
    Table t({"fg_load", "QBD fg_qlen", "vacation model", "rel diff %"});
    for (double u : {0.3, 0.5, 0.6, 0.7, 0.8, 0.9}) {
      const double lambda = u / workloads::kMeanServiceTimeMs;
      core::FgBgParams params{traffic::poisson(lambda)};
      params.bg_probability = 1.0;
      params.bg_buffer = 40;
      params.idle_wait_intensity = 1e-4;
      const double qbd = core::FgBgModel(params).solve().metrics().fg_queue_length;
      const double vac =
          core::mg1_multiple_vacations_number_in_system(lambda, service, service);
      t.add_row({u, qbd, vac, 100.0 * (qbd - vac) / vac});
    }
    t.print(std::cout);
  }

  {
    bench::subhead("paper operating point: p=0.3, X=5, idle wait 1x (Poisson)");
    Table t({"fg_load", "QBD fg_qlen", "M/M/1 (no bg)", "vacation model",
             "vacation error %"});
    for (double u : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      const double lambda = u / workloads::kMeanServiceTimeMs;
      const core::FgBgMetrics m = bench::solve_point(workloads::email_poisson(), u, 0.3);
      const double mm1 = core::mg1_number_in_system(lambda, service);
      const double vac =
          core::mg1_multiple_vacations_number_in_system(lambda, service, service);
      t.add_row({u, m.fg_queue_length, mm1, vac,
                 100.0 * (vac - m.fg_queue_length) / m.fg_queue_length});
    }
    t.print(std::cout);
  }

  {
    bench::subhead("dependence blindness: high-ACF arrivals, p=0.3, X=5");
    Table t({"fg_load", "QBD fg_qlen (MMPP)", "vacation model (Poisson fit)",
             "underestimate factor"});
    for (double u : {0.05, 0.10, 0.15, 0.19, 0.25}) {
      const double lambda = u / workloads::kMeanServiceTimeMs;
      const core::FgBgMetrics m = bench::solve_point(workloads::email(), u, 0.3);
      const double vac =
          core::mg1_multiple_vacations_number_in_system(lambda, service, service);
      t.add_row({u, m.fg_queue_length, vac, m.fg_queue_length / vac});
    }
    t.print(std::cout);
  }
  std::cout << "\nReading: the vacation analysis is exact only when background work\n"
               "never runs out; at the paper's operating points it overestimates\n"
               "foreground queueing by assuming permanent vacations, and under\n"
               "autocorrelated arrivals it underestimates by orders of magnitude —\n"
               "both gaps motivate the explicit QBD model.\n";
  return 0;
}
