// Ablation: the two R-matrix solvers (logarithmic reduction vs functional
// iteration) across loads. Reports iteration counts, residuals, and the
// max elementwise disagreement of R — log-reduction's quadratic convergence
// is what makes the near-saturation sweeps of Figs. 5/11 cheap.
#include <iostream>

#include "bench_common.hpp"
#include "core/chain_builder.hpp"
#include "qbd/rmatrix.hpp"

int main(int argc, char** argv) {
  using namespace perfbg;
  bench::BenchRun run(argc, argv, "abl_rsolver");
  bench::banner("Ablation: R solver", "logarithmic reduction vs functional iteration");

  Table t({"workload", "fg_load", "LR iters", "LR residual", "FI iters", "FI residual",
           "max |R_LR - R_FI|"});
  for (const auto& proc : {workloads::email(), workloads::email_poisson()}) {
    for (double u : {0.10, 0.30, 0.60, 0.90, 0.97}) {
      core::FgBgParams params{
          proc.scaled_to_utilization(u, workloads::kMeanServiceTimeMs)};
      params.bg_probability = 0.3;
      const core::FgBgModel model(params);

      qbd::RSolverOptions lr;
      lr.kind = qbd::RSolverKind::kLogarithmicReduction;
      qbd::RSolverStats lr_stats;
      const auto r_lr = qbd::solve_r(model.process().a0, model.process().a1,
                                     model.process().a2, lr, &lr_stats);

      qbd::RSolverOptions fi;
      fi.kind = qbd::RSolverKind::kFunctionalIteration;
      fi.max_iters = 2000000;
      qbd::RSolverStats fi_stats;
      const auto r_fi = qbd::solve_r(model.process().a0, model.process().a1,
                                     model.process().a2, fi, &fi_stats);

      t.add_row({proc.name(), u, static_cast<double>(lr_stats.iterations),
                 lr_stats.final_residual, static_cast<double>(fi_stats.iterations),
                 fi_stats.final_residual, r_lr.max_abs_diff(r_fi)});
    }
  }
  t.set_precision(3);
  t.print(std::cout);
  return 0;
}
