// Regenerates the paper's Figure 5: average queue length of foreground jobs
// as a function of foreground load for p in {0, .1, .3, .6, .9}, for the
// (a) E-mail / High-ACF and (b) Software-Dev / Low-ACF workloads.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace perfbg;
  bench::BenchRun run(argc, argv, "fig05_fg_qlen");
  bench::banner("Figure 5", "foreground mean queue length vs foreground load");
  bench::print_load_sweep_panel("(a) E-mail (High ACF)", workloads::email(),
                                bench::high_acf_load_grid(), bench::paper_p_values(),
                                &core::FgBgMetrics::fg_queue_length);
  bench::print_load_sweep_panel("(b) Software Dev. (Low ACF)", workloads::software_dev(),
                                bench::low_acf_load_grid(), bench::paper_p_values(),
                                &core::FgBgMetrics::fg_queue_length);
  return 0;
}
