// Regenerates the paper's Figure 2: the analytic ACF of the three fitted
// 2-state MMPP workload models and their (v1, v2, l1, l2) parameter table.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace perfbg;
  bench::BenchRun run(argc, argv, "fig02_mmpp_acf");
  bench::banner("Figure 2", "fitted 2-state MMPP models: ACF and parameters");

  const auto procs = workloads::trace_workloads();

  {
    bench::subhead("MMPP parameters (rates per ms) and analytic statistics");
    Table t({"workload", "v1", "v2", "l1", "l2", "rate", "CV", "ACF(1)", "ACF decay"});
    t.set_precision(4);
    for (const auto& m : procs) {
      t.add_row({m.name(), m.d0()(0, 1), m.d0()(1, 0), m.d1()(0, 0), m.d1()(1, 1),
                 m.mean_rate(), m.interarrival_cv(), m.acf(1), m.acf_decay_rate()});
    }
    t.print(std::cout);
  }

  {
    bench::subhead("analytic ACF of MMPP inter-arrival times (lags 1..100)");
    Table t({"lag", procs[0].name(), procs[1].name(), procs[2].name()});
    std::vector<std::vector<double>> acfs;
    for (const auto& m : procs) acfs.push_back(m.acf_series(100));
    for (int lag : {1, 2, 3, 5, 8, 12, 20, 30, 40, 60, 80, 100}) {
      const auto k = static_cast<std::size_t>(lag - 1);
      t.add_row({static_cast<double>(lag), acfs[0][k], acfs[1][k], acfs[2][k]});
    }
    t.print(std::cout);
  }
  return 0;
}
