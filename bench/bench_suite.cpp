// Perf-baseline orchestrator: solves a pinned grid of model points and emits
// a machine-readable baseline (schema perfbg.bench_baseline.v1) that
// perfbg_report_diff compares across runs to catch solver performance
// regressions. The committed reference baseline lives at the repo root as
// BENCH_solver.json; CI regenerates a fresh one and diffs it (DESIGN.md §10).
//
//   $ ./bench/bench_suite --out=BENCH_solver.json
//   $ ./bench/bench_suite --quick --out=/tmp/bench.json   # 1 rep, CI-sized
//
// The grid covers the paper's axes: three arrival processes with identical
// mean rate but very different dependence structure (MMPP High-ACF email, its
// IPP refit, and the Poisson comparator), spawn probabilities p in {0.1, 0.5,
// 0.9}, and background buffers X in {5, 20}. Utilization is pinned at 0.15 —
// within the High-ACF workload's stable region (it saturates above ~0.25).
//
// Timing protocol: each point is solved `reps` times without a span
// collector installed (so the timed path is the uninstrumented cost) and the
// minimum wall time is kept; a final profiled pass per point then feeds the
// aggregated top_spans table embedded in the baseline. The baseline contains
// no timestamps, so regenerating it on identical hardware produces a
// diff-friendly document.
#include <chrono>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/model.hpp"
#include "obs/diff.hpp"
#include "obs/json.hpp"
#include "obs/span.hpp"
#include "util/error.hpp"
#include "util/flags.hpp"
#include "workloads/presets.hpp"

namespace {

using namespace perfbg;

struct GridPoint {
  const char* workload;
  double p;
  int bg_buffer;
};

struct PointOutcome {
  double wall_ms = -1.0;   ///< min over reps; < 0 when the point failed
  int iterations = 0;
  double fg_queue_length = 0.0;
  std::string error;       ///< ErrorCode name when the solve failed
};

traffic::MarkovianArrivalProcess pick(const std::string& name) {
  if (name == "email") return workloads::email();
  if (name == "email_ipp") return workloads::email_ipp();
  if (name == "email_poisson") return workloads::email_poisson();
  throw std::invalid_argument("bench_suite: unknown grid workload '" + name + "'");
}

constexpr double kUtilization = 0.15;

core::FgBgParams point_params(const GridPoint& g) {
  const traffic::MarkovianArrivalProcess process = pick(g.workload);
  core::FgBgParams params{
      process.scaled_to_utilization(kUtilization, workloads::kMeanServiceTimeMs)};
  params.mean_service_time = workloads::kMeanServiceTimeMs;
  params.bg_probability = g.p;
  params.bg_buffer = g.bg_buffer;
  params.idle_wait_intensity = 1.0;
  return params;
}

/// One full model build + solve; returns the solver iteration count and the
/// headline metric through the out-params.
void solve_once(const core::FgBgParams& params, int& iterations, double& qlen) {
  const core::FgBgModel model(params);
  const core::FgBgSolution solution = model.solve();
  iterations = solution.qbd().solver_stats().iterations;
  qlen = solution.metrics().fg_queue_length;
}

PointOutcome run_point(const GridPoint& g, int reps) {
  PointOutcome out;
  try {
    const core::FgBgParams params = point_params(g);
    for (int r = 0; r < reps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      solve_once(params, out.iterations, out.fg_queue_length);
      const auto t1 = std::chrono::steady_clock::now();
      const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
      if (out.wall_ms < 0.0 || ms < out.wall_ms) out.wall_ms = ms;
    }
  } catch (const Error& e) {
    out.error = error_code_name(e.code());
    out.wall_ms = -1.0;
  }
  return out;
}

obs::JsonValue machine_info() {
  obs::JsonValue m = obs::JsonValue::object();
#if defined(__clang__)
  m.set("compiler", obs::JsonValue(std::string("clang ") + __clang_version__));
#elif defined(__GNUC__)
  m.set("compiler", obs::JsonValue(std::string("gcc ") + __VERSION__));
#else
  m.set("compiler", obs::JsonValue("unknown"));
#endif
#if defined(NDEBUG)
  m.set("build", obs::JsonValue("release"));
#else
  m.set("build", obs::JsonValue("debug"));
#endif
  m.set("hardware_concurrency",
        obs::JsonValue(static_cast<std::int64_t>(std::thread::hardware_concurrency())));
  m.set("pointer_bits", obs::JsonValue(static_cast<std::int64_t>(8 * sizeof(void*))));
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  flags.define("out", "baseline output path, default BENCH_solver.json");
  flags.define("reps", "timed repetitions per point (min is kept), default 3");
  flags.define_switch("quick", "CI mode: a single repetition per point");
  flags.define_switch("help", "print this help");
  try {
    flags.parse(argc, argv);
  } catch (const std::exception& e) {
    const std::string what = e.what();
    std::cerr << what << "\n";
    if (what.find("flags:") == std::string::npos) std::cerr << flags.help();
    return 2;
  }
  if (flags.has("help")) {
    std::cout << flags.help();
    return 0;
  }
  const std::string out_path = flags.get_string("out", "BENCH_solver.json");
  const int reps = flags.has("quick") ? 1 : flags.get_int("reps", 3);
  if (reps < 1) {
    std::cerr << "bench_suite: --reps must be >= 1\n";
    return 2;
  }

  std::vector<GridPoint> grid;
  for (const char* w : {"email", "email_ipp", "email_poisson"})
    for (double p : {0.1, 0.5, 0.9})
      for (int x : {5, 20}) grid.push_back({w, p, x});

  std::cout << "bench_suite: " << grid.size() << " points, " << reps
            << " rep(s) each\n";

  obs::JsonValue points = obs::JsonValue::array();
  std::size_t failed = 0;
  for (const GridPoint& g : grid) {
    const PointOutcome r = run_point(g, reps);
    obs::JsonValue point = obs::JsonValue::object();
    point.set("workload", obs::JsonValue(g.workload));
    point.set("bg_probability", obs::JsonValue(g.p));
    point.set("bg_buffer", obs::JsonValue(g.bg_buffer));
    point.set("utilization", obs::JsonValue(kUtilization));
    if (r.error.empty()) {
      point.set("wall_ms", obs::JsonValue(r.wall_ms));
      point.set("iterations", obs::JsonValue(r.iterations));
      point.set("fg_queue_length", obs::JsonValue(r.fg_queue_length));
      std::cout << "  " << g.workload << " p=" << g.p << " X=" << g.bg_buffer
                << ": " << r.wall_ms << " ms, " << r.iterations << " iterations\n";
    } else {
      ++failed;
      point.set("error", obs::JsonValue(r.error));
      std::cout << "  " << g.workload << " p=" << g.p << " X=" << g.bg_buffer
                << ": FAILED (" << r.error << ")\n";
    }
    points.push_back(std::move(point));
  }

  // Profiled pass: one solve per point under a span collector; the resulting
  // profile tree (aggregated over the whole grid) names the hot spans so a
  // regression diff can be traced to a phase without rerunning anything.
  obs::SpanCollector collector;
  {
    obs::SpanSession session(collector);
    for (const GridPoint& g : grid) {
      try {
        int iterations = 0;
        double qlen = 0.0;
        solve_once(point_params(g), iterations, qlen);
      } catch (const Error&) {
        // Already recorded as a failed point in the timed pass.
      }
    }
  }

  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("schema", obs::JsonValue(obs::kBenchBaselineSchema));
  doc.set("tool", obs::JsonValue("bench_suite"));
  doc.set("machine", machine_info());
  obs::JsonValue config = obs::JsonValue::object();
  config.set("utilization", obs::JsonValue(kUtilization));
  config.set("reps", obs::JsonValue(reps));
  config.set("quick", obs::JsonValue(flags.has("quick")));
  doc.set("config", std::move(config));
  doc.set("points", std::move(points));
  doc.set("top_spans", obs::top_spans_json(collector.profile_tree(), 12));

  try {
    std::ofstream out(out_path);
    if (!out) throw std::runtime_error("bench_suite: cannot open " + out_path);
    doc.dump(out, 2);
    out << "\n";
    if (!out) throw std::runtime_error("bench_suite: write failed for " + out_path);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  std::cout << "wrote baseline (" << grid.size() - failed << "/" << grid.size()
            << " points) to " << out_path << "\n";
  return failed == 0 ? 0 : 1;
}
