// Perf-baseline orchestrator: solves a pinned grid of model points and emits
// a machine-readable baseline (schema perfbg.bench_baseline.v2) that
// perfbg_report_diff compares across runs to catch solver performance
// regressions. The committed reference baseline lives at the repo root as
// BENCH_solver.json; CI regenerates a fresh one and diffs it (DESIGN.md §10,
// §12). Beyond the per-point minimum wall times, a v2 baseline embeds
// per-span p50/p99/max tail statistics ("spans", from the profiled pass) and
// the span budgets ("budgets") that the perfbg_report_diff gate hard-fails
// against.
//
//   $ ./bench/bench_suite --out=BENCH_solver.json
//   $ ./bench/bench_suite --quick --out=/tmp/bench.json   # 1 rep, CI-sized
//   $ ./bench/bench_suite --jobs=4 --journal=/tmp/bench.journal
//   $ ./bench/bench_suite --resume=/tmp/bench.journal     # after a crash
//
// The grid covers the paper's axes: three arrival processes with identical
// mean rate but very different dependence structure (MMPP High-ACF email, its
// IPP refit, and the Poisson comparator), spawn probabilities p in {0.1, 0.5,
// 0.9}, and background buffers X in {5, 20}. Utilization is pinned at 0.15 —
// within the High-ACF workload's stable region (it saturates above ~0.25).
//
// The grid executes through the sweep runner (DESIGN.md §11): --jobs fans
// points across workers with results emitted in submission order, so the
// baseline's "points" array is identical at any parallelism (wall_ms aside);
// --journal/--resume checkpoint the sweep across crashes and interrupts.
//
// Timing protocol: each point is solved `reps` times without a span
// collector installed (so the timed path is the uninstrumented cost) and the
// minimum wall time is kept; a final profiled pass per point then feeds the
// aggregated top_spans table embedded in the baseline. The baseline contains
// no timestamps, so regenerating it on identical hardware produces a
// diff-friendly document.
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "core/model.hpp"
#include "obs/diff.hpp"
#include "obs/json.hpp"
#include "obs/span.hpp"
#include "runner/sweep_runner.hpp"
#include "util/error.hpp"
#include "util/flags.hpp"
#include "workloads/presets.hpp"

namespace {

using namespace perfbg;

struct GridPoint {
  const char* workload;
  double p;
  int bg_buffer;
};

traffic::MarkovianArrivalProcess pick(const std::string& name) {
  if (name == "email") return workloads::email();
  if (name == "email_ipp") return workloads::email_ipp();
  if (name == "email_poisson") return workloads::email_poisson();
  throw std::invalid_argument("bench_suite: unknown grid workload '" + name + "'");
}

constexpr double kUtilization = 0.15;

core::FgBgParams point_params(const GridPoint& g) {
  const traffic::MarkovianArrivalProcess process = pick(g.workload);
  core::FgBgParams params{
      process.scaled_to_utilization(kUtilization, workloads::kMeanServiceTimeMs)};
  params.mean_service_time = workloads::kMeanServiceTimeMs;
  params.bg_probability = g.p;
  params.bg_buffer = g.bg_buffer;
  params.idle_wait_intensity = 1.0;
  return params;
}

/// Stable journal identity of a grid point.
std::string point_key(const GridPoint& g) {
  return std::string(g.workload) + "|p=" + format_number(g.p, 6) +
         "|X=" + format_number(static_cast<double>(g.bg_buffer), 0) +
         "|u=" + format_number(kUtilization, 6);
}

/// One full model build + solve; returns the solver iteration count and the
/// headline metric through the out-params. Every solve — timed rep or
/// profiled pass — records one numerical-health record under `health_key`
/// (without --warm-start the records are deterministic, so repetitions are
/// identical entries; warm reps report their own, smaller iteration counts).
/// When `seed_out` is given the solved R is exported for the next rep's
/// RSolverOptions::warm_start.
void solve_once(const core::FgBgParams& params, const qbd::RSolverOptions& opts,
                const std::string& health_key, int& iterations, double& qlen,
                std::shared_ptr<const qbd::RWarmStart>* seed_out = nullptr) {
  const core::FgBgModel model(params);
  const core::FgBgSolution solution = model.solve(opts);
  iterations = solution.qbd().solver_stats().iterations;
  qlen = solution.metrics().fg_queue_length;
  if (seed_out)
    *seed_out = std::make_shared<qbd::RWarmStart>(
        qbd::RWarmStart{solution.qbd().r_matrix(), iterations});
  if (obs::RunReport* report = bench::BenchRun::active_report()) {
    obs::SolveHealth health = solution.health();
    health.key = health_key;
    health.attempt = opts.start_rung + 1;
    report->add_health(health);
  }
}

/// Health-record identity of a grid point (bench_common key convention).
std::string health_key(const GridPoint& g) {
  return bench::point_health_key(g.workload, kUtilization, g.p, g.bg_buffer);
}

/// Runs one grid point under the sweep runner: `reps` timed solves (min
/// kept), returning the journaled payload. Throws perfbg::Error on solver
/// failure — the runner classifies, retries, and journals it. `sleep_ms` is
/// test support (--point-sleep-ms): it stretches the sweep so the crash/kill
/// tests can interrupt it at a deterministic phase.
obs::JsonValue run_point(const GridPoint& g, int reps, double sleep_ms,
                         runner::PointContext& ctx) {
  if (sleep_ms > 0.0)
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(sleep_ms));
  const qbd::RSolverOptions opts = bench::point_solver_options(ctx);
  const core::FgBgParams params = point_params(g);
  // --warm-start: reps 2+ refine rep 1's R instead of re-solving cold, so the
  // kept minimum measures the warm repeat-solve latency (what a server hit on
  // the same model class costs). Retried points (start_rung > 0) stay cold —
  // a retry must re-run the fallback ladder from its assigned rung.
  const bool warm = bench::BenchRun::active_runner_options().warm_start &&
                    opts.start_rung == 0;
  std::shared_ptr<const qbd::RWarmStart> seed;
  double wall_ms = -1.0;
  int iterations = 0;
  double qlen = 0.0;
  for (int r = 0; r < reps; ++r) {
    qbd::RSolverOptions rep_opts = opts;
    if (warm && r > 0) rep_opts.warm_start = seed;
    const auto t0 = std::chrono::steady_clock::now();
    solve_once(params, rep_opts, health_key(g), iterations, qlen,
               warm ? &seed : nullptr);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (wall_ms < 0.0 || ms < wall_ms) wall_ms = ms;
  }
  obs::JsonValue payload = obs::JsonValue::object();
  payload.set("wall_ms", obs::JsonValue(wall_ms));
  payload.set("iterations", obs::JsonValue(iterations));
  payload.set("fg_queue_length", obs::JsonValue(qlen));
  return payload;
}

obs::JsonValue machine_info() {
  obs::JsonValue m = obs::JsonValue::object();
#if defined(__clang__)
  m.set("compiler", obs::JsonValue(std::string("clang ") + __clang_version__));
#elif defined(__GNUC__)
  m.set("compiler", obs::JsonValue(std::string("gcc ") + __VERSION__));
#else
  m.set("compiler", obs::JsonValue("unknown"));
#endif
#if defined(NDEBUG)
  m.set("build", obs::JsonValue("release"));
#else
  m.set("build", obs::JsonValue("debug"));
#endif
  m.set("hardware_concurrency",
        obs::JsonValue(static_cast<std::int64_t>(std::thread::hardware_concurrency())));
  m.set("pointer_bits", obs::JsonValue(static_cast<std::int64_t>(8 * sizeof(void*))));
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchRun run(argc, argv, "bench_suite", [](Flags& flags) {
    flags.define("out", "baseline output path, default BENCH_solver.json");
    flags.define("reps", "timed repetitions per point (min is kept), default 3");
    flags.define_switch("quick", "CI mode: a single repetition per point");
    flags.define("point-sleep-ms",
                 "test support: sleep this long inside every point");
  });
  const Flags& flags = run.flags();
  const std::string out_path = flags.get_string("out", "BENCH_solver.json");
  const int reps = flags.has("quick") ? 1 : flags.get_int("reps", 3);
  if (reps < 1) {
    std::cerr << "bench_suite: --reps must be >= 1\n";
    return 2;
  }
  const double sleep_ms = flags.get_double("point-sleep-ms", 0.0);

  std::vector<GridPoint> grid;
  for (const char* w : {"email", "email_ipp", "email_poisson"})
    for (double p : {0.1, 0.5, 0.9})
      for (int x : {5, 20}) grid.push_back({w, p, x});

  std::cout << "bench_suite: " << grid.size() << " points, " << reps
            << " rep(s) each\n";

  runner::SweepRunner sweep(bench::BenchRun::active_runner_options());
  for (const GridPoint& g : grid)
    sweep.add(point_key(g), [g, reps, sleep_ms](runner::PointContext& ctx) {
      return run_point(g, reps, sleep_ms, ctx);
    });
  const runner::SweepResult result =
      sweep.run([&grid](const runner::PointOutcome& out) {
        const GridPoint& g = grid[out.index];
        std::cout << "  " << g.workload << " p=" << g.p << " X=" << g.bg_buffer;
        if (out.ok()) {
          std::cout << ": " << out.payload.at("wall_ms").as_double() << " ms, "
                    << out.payload.at("iterations").as_int() << " iterations";
          if (out.resumed) std::cout << " (resumed)";
          std::cout << "\n";
        } else {
          std::cout << ": FAILED (" << out.error_code << ")\n";
        }
      });

  // Per-point failure records, with the full parameter tuple, for the run
  // report's "errors" array; interrupt placeholders are not failures.
  for (const runner::PointOutcome& out : result.outcomes) {
    if (out.ok() || out.error_code == "kInterrupted") continue;
    const GridPoint& g = grid[out.index];
    bench::record_point_error({out.error_code, out.error_message, -1.0},
                              g.workload, kUtilization, g.p, 1.0, g.bg_buffer,
                              out.attempts > 0 ? out.attempts : 1);
    // The solve threw inside the worker, so solve_once never recorded a
    // health entry for this point; record the failed one here.
    if (obs::RunReport* report = bench::BenchRun::active_report()) {
      obs::SolveHealth health =
          obs::failed_solve_health(out.error_code, out.error_message);
      health.key = health_key(g);
      health.attempt = out.attempts > 0 ? out.attempts : 1;
      report->add_health(health);
    }
  }

  if (result.interrupted) {
    std::cout << "sweep interrupted: " << result.completed << "/" << grid.size()
              << " points completed; no baseline written";
    const std::string journal = bench::BenchRun::active_journal_path();
    if (!journal.empty())
      std::cout << "; resume with --resume=" << journal;
    else
      std::cout << " (re-run with --journal=<path> to make sweeps resumable)";
    std::cout << "\n";
    bench::BenchRun::exit_interrupted();
  }

  obs::JsonValue points = obs::JsonValue::array();
  for (const runner::PointOutcome& out : result.outcomes) {
    const GridPoint& g = grid[out.index];
    obs::JsonValue point = obs::JsonValue::object();
    point.set("workload", obs::JsonValue(g.workload));
    point.set("bg_probability", obs::JsonValue(g.p));
    point.set("bg_buffer", obs::JsonValue(g.bg_buffer));
    point.set("utilization", obs::JsonValue(kUtilization));
    if (out.ok()) {
      point.set("wall_ms", out.payload.at("wall_ms"));
      point.set("iterations", out.payload.at("iterations"));
      point.set("fg_queue_length", out.payload.at("fg_queue_length"));
    } else {
      point.set("error", obs::JsonValue(out.error_code));
    }
    points.push_back(std::move(point));
  }

  // Profiled pass: one solve per point under a span collector; the resulting
  // profile tree (aggregated over the whole grid) names the hot spans so a
  // regression diff can be traced to a phase without rerunning anything.
  // Deliberately sequential — a profile interleaved across workers would
  // attribute time to the wrong spans.
  obs::SpanCollector collector;
  {
    obs::SpanSession session(collector);
    for (const GridPoint& g : grid) {
      try {
        int iterations = 0;
        double qlen = 0.0;
        solve_once(point_params(g), qbd::RSolverOptions{}, health_key(g),
                   iterations, qlen);
      } catch (const Error&) {
        // Already recorded as a failed point in the timed pass.
      }
    }
  }

  obs::JsonValue doc = obs::JsonValue::object();
  doc.set("schema", obs::JsonValue(obs::kBenchBaselineSchemaV2));
  doc.set("tool", obs::JsonValue("bench_suite"));
  doc.set("machine", machine_info());
  obs::JsonValue config = obs::JsonValue::object();
  config.set("utilization", obs::JsonValue(kUtilization));
  config.set("reps", obs::JsonValue(reps));
  config.set("quick", obs::JsonValue(flags.has("quick")));
  doc.set("config", std::move(config));
  doc.set("points", std::move(points));
  // v2 payload: per-span tail statistics from the sequential profiled pass
  // (log-bucketed histograms, DESIGN.md §12) and the budgets the diff gate
  // enforces. Budgets are stamped from the library defaults so the committed
  // baseline carries the gate it is judged by.
  doc.set("spans", obs::span_tail_stats_json(collector.snapshot()));
  doc.set("budgets", obs::budgets_to_json(obs::default_span_budgets()));
  doc.set("top_spans", obs::top_spans_json(collector.profile_tree(), 12));

  try {
    std::ofstream out(out_path);
    if (!out) throw std::runtime_error("bench_suite: cannot open " + out_path);
    doc.dump(out, 2);
    out << "\n";
    if (!out) throw std::runtime_error("bench_suite: write failed for " + out_path);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 1;
  }
  std::cout << "wrote baseline (" << grid.size() - result.failed << "/"
            << grid.size() << " points) to " << out_path << "\n";
  return result.exit_code();
}
