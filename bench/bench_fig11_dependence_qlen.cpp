// Regenerates the paper's Figure 11: foreground mean queue length vs load
// for four arrival processes with the same mean (and, except Poisson, the
// same CV) but different dependence: High ACF, Low ACF, IPP, Exponential.
// The paper plots the correlated processes on a short load axis and the
// independent ones up to ~95%; we print one combined table per p.
#include "bench_common.hpp"

namespace {

void panel(double p) {
  using namespace perfbg;
  const auto family = workloads::dependence_family();
  bench::subhead("p = " + format_number(p, 2));
  std::vector<std::string> headers{"fg_load"};
  for (const auto& m : family) headers.push_back(m.name());
  Table t(headers);
  for (double u : {0.02, 0.05, 0.08, 0.11, 0.15, 0.19, 0.25, 0.30, 0.35,
                   0.45, 0.55, 0.65, 0.75, 0.85, 0.90, 0.95}) {
    std::vector<TableCell> row{u};
    for (const auto& m : family)
      row.push_back(bench::solve_point(m, u, p).fg_queue_length);
    t.add_row(std::move(row));
  }
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  perfbg::bench::BenchRun run(argc, argv, "fig11_dependence_qlen");
  perfbg::bench::banner("Figure 11",
                        "foreground queue length vs load across dependence structures");
  panel(0.3);
  panel(0.9);
  return 0;
}
