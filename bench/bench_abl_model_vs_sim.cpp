// Ablation / validation: analytic model vs discrete-event simulation across
// workloads and parameters. Every analytic value should land inside (or very
// near) the simulator's 95% confidence interval.
#include <iostream>

#include "bench_common.hpp"
#include "sim/fgbg_simulator.hpp"

int main(int argc, char** argv) {
  using namespace perfbg;
  bench::BenchRun run(argc, argv, "abl_model_vs_sim");
  bench::banner("Validation", "analytic QBD solution vs discrete-event simulation");

  Table t({"workload", "load", "p", "metric", "analytic", "sim mean", "sim 95% hw",
           "inside CI"});
  t.set_precision(4);

  auto compare = [&](const std::string& wl, double load, double p, const char* name,
                     double analytic, const sim::Estimate& e) {
    // Allow a small absolute slack for near-zero metrics where the CI itself
    // is at the resolution of the batch counts.
    const bool ok = e.contains(analytic) || std::abs(analytic - e.mean) < 5e-3 ||
                    std::abs(analytic - e.mean) < 2.0 * e.half_width;
    t.add_row({wl, load, p, std::string(name), analytic, e.mean, e.half_width,
               std::string(ok ? "yes" : "NO")});
  };

  for (const auto& proc :
       {workloads::email(), workloads::software_dev(), workloads::email_poisson()}) {
    for (double u : {0.10, 0.30}) {
      for (double p : {0.3, 0.9}) {
        core::FgBgParams params{
            proc.scaled_to_utilization(u, workloads::kMeanServiceTimeMs)};
        params.bg_probability = p;
        const core::FgBgMetrics m = core::FgBgModel(params).solve().metrics();
        sim::SimConfig cfg;
        cfg.warmup_time = 5e5;
        cfg.batch_time = 2e6;
        cfg.batches = 12;
        const sim::SimMetrics s = sim::simulate_fgbg(params, cfg);
        compare(proc.name(), u, p, "fg_qlen", m.fg_queue_length, s.fg_queue_length);
        compare(proc.name(), u, p, "bg_qlen", m.bg_queue_length, s.bg_queue_length);
        compare(proc.name(), u, p, "bg_completion", m.bg_completion, s.bg_completion);
        compare(proc.name(), u, p, "fg_delayed_arr", m.fg_delayed_arrivals,
                s.fg_delayed_arrivals);
        compare(proc.name(), u, p, "busy_fraction", m.busy_fraction, s.busy_fraction);
      }
    }
  }
  t.print(std::cout);
  return 0;
}
