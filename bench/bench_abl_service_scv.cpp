// Ablation (footnote-3 extension): sensitivity of the FG/BG trade-off to the
// service-time distribution. The paper fixes exponential service (its
// measured service CVs are < 1); this bench quantifies how much that
// assumption matters by sweeping the service SCV at fixed mean.
#include <iostream>

#include "bench_common.hpp"
#include "traffic/phase_type.hpp"
#include "traffic/processes.hpp"

int main(int argc, char** argv) {
  using namespace perfbg;
  bench::BenchRun run(argc, argv, "abl_service_scv");
  bench::banner("Ablation: service variability",
                "metrics vs service-time SCV at fixed mean (6 ms)");

  const std::vector<std::pair<std::string, traffic::PhaseType>> services{
      {"erlang4 (scv 0.25)", traffic::PhaseType::erlang(4, 6.0)},
      {"erlang2 (scv 0.5)", traffic::PhaseType::erlang(2, 6.0)},
      {"expo (scv 1)", traffic::PhaseType::exponential(6.0)},
      {"h2 (scv 2)", traffic::PhaseType::hyperexponential(0.5, 10.242641, 1.757359)},
      {"h2 (scv 4)", traffic::PhaseType::hyperexponential(0.25, 18.727922, 1.757359)},
  };

  for (const auto& [wl_name, proc] :
       {std::pair{std::string("expo arrivals"), workloads::email_poisson()},
        std::pair{std::string("high-acf arrivals"), workloads::email()}}) {
    for (double load : {0.25, 0.6}) {
      if (wl_name == "high-acf arrivals" && load > 0.3) continue;  // deep saturation
      bench::subhead(wl_name + " at load " + format_number(load, 2) + ", p = 0.6");
      Table t({"service", "scv", "fg_qlen", "bg_completion", "fg_delayed",
               "bg_qlen"});
      for (const auto& [name, service] : services) {
        core::FgBgParams params{
            proc.scaled_to_utilization(load, service.mean())};
        params.service_distribution = service;
        params.bg_probability = 0.6;
        const core::FgBgMetrics m = core::FgBgModel(params).solve().metrics();
        t.add_row({name, service.scv(), m.fg_queue_length, m.bg_completion,
                   m.fg_delayed, m.bg_queue_length});
      }
      t.print(std::cout);
    }
  }
  std::cout << "\nReading: service variability shifts queue lengths exactly as\n"
               "M/G/1 intuition predicts, but the dependence-driven effects the\n"
               "paper reports (completion collapse, knee location) are governed\n"
               "by the arrival process — supporting the paper's exponential-\n"
               "service simplification.\n";
  return 0;
}
