// google-benchmark microbenchmarks of the structured linear-algebra kernels
// (src/linalg): tiled dense GEMM vs matrix size, the cache-blocked transpose
// and Kronecker product, CSR sparse·dense and banded·dense products on
// QBD-shaped sparsity, and the extent-aware LU factor/solve. These are the
// primitives the solver-level numbers in bench_perf_solver decompose into;
// CI runs this binary warn-only so a kernel regression is visible next to
// the solver baseline without gating merges on microbench noise.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstddef>

#include "linalg/banded.hpp"
#include "linalg/gemm.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"

namespace {

using perfbg::linalg::Matrix;
using perfbg::linalg::Vector;

/// Deterministic pseudo-random fill (splitmix64): benchmarks must not depend
/// on run-to-run RNG state.
double next_value(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) / static_cast<double>(1ull << 53) - 0.5;
}

Matrix random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Matrix m(rows, cols);
  std::uint64_t s = seed;
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < cols; ++j) m(i, j) = next_value(s);
  return m;
}

/// Square matrix with the QBD A-block shape: a dense diagonal band of the
/// given half-width, strongly diagonally dominant (so LU never pivots into
/// pathological growth).
Matrix banded_matrix(std::size_t n, std::size_t half_width, std::uint64_t seed) {
  Matrix m(n, n);
  std::uint64_t s = seed;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i >= half_width ? i - half_width : 0;
    const std::size_t hi = i + half_width + 1 < n ? i + half_width + 1 : n;
    for (std::size_t j = lo; j < hi; ++j) m(i, j) = next_value(s);
    m(i, i) += 4.0 * static_cast<double>(half_width + 1);
  }
  return m;
}

void BM_Transpose(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Matrix m = random_matrix(n, n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.transposed());
  }
}
BENCHMARK(BM_Transpose)->Arg(32)->Arg(128)->Arg(512);

void BM_Kron(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(n, n, 2);
  const Matrix b = random_matrix(n, n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(perfbg::linalg::kron(a, b));
  }
}
BENCHMARK(BM_Kron)->Arg(8)->Arg(16)->Arg(32);

void BM_Gemm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(n, n, 4);
  const Matrix b = random_matrix(n, n, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(perfbg::linalg::multiply(a, b));
  }
  state.counters["flops"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * static_cast<double>(n) * static_cast<double>(n),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Gemm)->Arg(16)->Arg(31)->Arg(64)->Arg(82)->Arg(128)->Arg(256);

void BM_GemmAdd(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Matrix a = random_matrix(n, n, 6);
  const Matrix b = random_matrix(n, n, 7);
  Matrix c = random_matrix(n, n, 8);
  for (auto _ : state) {
    perfbg::linalg::gemm_add(a, b, c);
    benchmark::DoNotOptimize(c.row_data(0));
  }
}
BENCHMARK(BM_GemmAdd)->Arg(64)->Arg(128)->Arg(256);

void BM_SparseLeftMultiply(benchmark::State& state) {
  // C += A·S with S in CSR — the corner assembly A1 + R·A2 does exactly
  // this, with S an A-block whose density is a thin band.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const perfbg::linalg::SparseMatrix s =
      perfbg::linalg::SparseMatrix::from_dense(banded_matrix(n, 3, 9));
  const Matrix a = random_matrix(n, n, 10);
  Matrix c = random_matrix(n, n, 11);
  for (auto _ : state) {
    s.add_left_multiply(a, c);
    benchmark::DoNotOptimize(c.row_data(0));
  }
  state.counters["nnz"] = benchmark::Counter(static_cast<double>(s.nnz()));
}
BENCHMARK(BM_SparseLeftMultiply)->Arg(64)->Arg(128)->Arg(256);

void BM_SparseMultiplyDense(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const perfbg::linalg::SparseMatrix s =
      perfbg::linalg::SparseMatrix::from_dense(banded_matrix(n, 3, 12));
  const Matrix b = random_matrix(n, n, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.multiply_dense(b));
  }
}
BENCHMARK(BM_SparseMultiplyDense)->Arg(64)->Arg(128)->Arg(256);

void BM_BandedMultiplyDense(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const perfbg::linalg::BandedMatrix band =
      perfbg::linalg::BandedMatrix::from_dense(banded_matrix(n, 3, 14));
  const Matrix b = random_matrix(n, n, 15);
  for (auto _ : state) {
    benchmark::DoNotOptimize(band.multiply_dense(b));
  }
  state.counters["bandwidth"] = benchmark::Counter(static_cast<double>(band.band_width()));
}
BENCHMARK(BM_BandedMultiplyDense)->Arg(64)->Arg(128)->Arg(256);

void BM_LuFactor(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const Matrix m = banded_matrix(n, 5, 16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(perfbg::linalg::LuDecomposition(m));
  }
}
BENCHMARK(BM_LuFactor)->Arg(22)->Arg(82)->Arg(256);

void BM_LuSolveLeftMatrix(benchmark::State& state) {
  // Multi-RHS X A = B — the shape of the C_l = L_l Dt^{-1} step in the
  // structured boundary recursion and of the A1-solve in functional
  // iteration.
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const perfbg::linalg::LuDecomposition lu(banded_matrix(n, 5, 17));
  const Matrix b = random_matrix(n, n, 18);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lu.solve_left(b));
  }
}
BENCHMARK(BM_LuSolveLeftMatrix)->Arg(22)->Arg(82)->Arg(256);

}  // namespace

BENCHMARK_MAIN();
