// Shared plumbing for the figure-regeneration harnesses: each bench binary
// prints a banner naming the paper artifact it regenerates, then one table
// per sub-figure, in a diff-friendly format. No arguments, deterministic.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "traffic/map_process.hpp"
#include "util/table.hpp"
#include "workloads/presets.hpp"

namespace perfbg::bench {

inline void banner(const std::string& experiment_id, const std::string& what) {
  std::cout << "==============================================================\n"
            << experiment_id << ": " << what << "\n"
            << "==============================================================\n";
}

inline void subhead(const std::string& s) { std::cout << "\n--- " << s << " ---\n"; }

/// The p sweep used by the paper's Figs. 5-8.
inline const std::vector<double>& paper_p_values() {
  static const std::vector<double> v{0.0, 0.1, 0.3, 0.6, 0.9};
  return v;
}

/// Foreground-utilization grids. The paper plots each workload over the load
/// range where its behaviour is interesting (the High-ACF workload saturates
/// far earlier, hence its shorter axis — compare its Figs. 5a vs 5b).
inline const std::vector<double>& high_acf_load_grid() {
  static const std::vector<double> v{0.02, 0.04, 0.06, 0.08, 0.10, 0.12,
                                     0.14, 0.16, 0.19, 0.22, 0.25};
  return v;
}
inline const std::vector<double>& low_acf_load_grid() {
  static const std::vector<double> v{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35,
                                     0.40, 0.50, 0.60, 0.70, 0.80, 0.90};
  return v;
}

/// Solves the model at one (process, utilization, p, idle-wait) point.
inline core::FgBgMetrics solve_point(const traffic::MarkovianArrivalProcess& process,
                                     double utilization, double p,
                                     double idle_wait_intensity = 1.0, int bg_buffer = 5) {
  core::FgBgParams params{
      process.scaled_to_utilization(utilization, workloads::kMeanServiceTimeMs)};
  params.mean_service_time = workloads::kMeanServiceTimeMs;
  params.bg_probability = p;
  params.bg_buffer = bg_buffer;
  params.idle_wait_intensity = idle_wait_intensity;
  return core::FgBgModel(params).solve().metrics();
}

/// Emits one "figure panel": the chosen metric as a function of load, one
/// column per p value.
inline void print_load_sweep_panel(const std::string& title,
                                   const traffic::MarkovianArrivalProcess& process,
                                   const std::vector<double>& loads,
                                   const std::vector<double>& ps,
                                   double core::FgBgMetrics::*field) {
  subhead(title);
  std::vector<std::string> headers{"fg_load"};
  for (double p : ps) headers.push_back("p=" + format_number(p, 2));
  Table t(std::move(headers));
  for (double u : loads) {
    std::vector<TableCell> row;
    row.reserve(ps.size() + 1);
    row.emplace_back(std::in_place_type<double>, u);
    for (double p : ps)
      row.emplace_back(std::in_place_type<double>, solve_point(process, u, p).*field);
    t.add_row(std::move(row));
  }
  t.print(std::cout);
}

}  // namespace perfbg::bench
