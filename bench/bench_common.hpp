// Shared plumbing for the figure-regeneration harnesses: each bench binary
// prints a banner naming the paper artifact it regenerates, then one table
// per sub-figure, in a diff-friendly format. Deterministic; the only
// arguments are the shared observability flags (--metrics-json, --trace)
// and the sweep-runner flags (--jobs, --point-timeout-ms, --retries,
// --retry-backoff-ms, --journal, --resume) handled by BenchRun below.
#pragma once

#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "qbd/warm_start.hpp"
#include "runner/sweep_runner.hpp"
#include "traffic/map_process.hpp"
#include "util/error.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "workloads/presets.hpp"

namespace perfbg::bench {

/// Per-binary observability session. Construct first thing in main(); every
/// solve_point() call then feeds phase timings, solver counters, and one
/// numerical-health record per solve into the run's report, and the
/// destructor writes the structured outputs the user asked for:
///   --metrics-json=<path>  full run report (schema perfbg.run_report.v1)
///   --metrics-prom=<path>  metrics snapshot, Prometheus text format 0.0.4
///   --trace=<path>         all buffered trace events as JSON lines
///   --trace-chrome=<path>  hierarchical span profile as Chrome trace JSON
/// Without flags the bench output is byte-identical to the flag-less days.
///
/// BenchRun also owns the binary's sweep-runner configuration: the runner
/// flags above are parsed here, and print_load_sweep_panel() executes its
/// grid through a SweepRunner built from runner_options() — so every bench
/// binary inherits parallelism, per-point deadlines, retries, and
/// checkpoint/resume without touching its main().
class BenchRun {
 public:
  /// `define_extra`, when given, registers the binary's own flags (bench_suite
  /// adds --out/--reps/--quick this way); read them back through flags().
  BenchRun(int argc, const char* const* argv, const std::string& bench_id,
           const std::function<void(Flags&)>& define_extra = {})
      : report_(bench_id) {
    Flags& flags = flags_;
    if (define_extra) define_extra(flags);
    flags.define("metrics-json", "write a structured JSON run report to this path");
    flags.define("metrics-prom",
                 "write a Prometheus text-format metrics snapshot to this path");
    flags.define("trace", "write all trace events as JSON lines to this path");
    flags.define("trace-chrome",
                 "write a Chrome trace-event JSON span profile to this path");
    runner::define_runner_flags(flags);
    flags.define_switch("help", "print this help");
    try {
      flags.parse(argc, argv);
    } catch (const std::exception& e) {
      // Unknown-flag errors already embed the help text; don't print it twice.
      const std::string what = e.what();
      std::cerr << what << "\n";
      if (what.find("flags:") == std::string::npos) std::cerr << flags.help();
      std::exit(2);
    }
    if (flags.has("help")) {
      std::cout << flags.help();
      std::exit(0);
    }
    metrics_json_ = flags.get_string("metrics-json", "");
    prom_path_ = flags.get_string("metrics-prom", "");
    trace_path_ = flags.get_string("trace", "");
    chrome_path_ = flags.get_string("trace-chrome", "");
    if (!chrome_path_.empty()) {
      span_collector_.emplace();
      span_collector_->install();
    }
    runner_options_ = runner::runner_options_from_flags(flags);
    try {
      journal_ = runner::open_journal_session(flags, bench_id);
    } catch (const std::exception& e) {
      // A missing or mismatched journal is a usage error, same as a bad flag.
      std::cerr << e.what() << "\n";
      std::exit(2);
    }
    report_.set_config("bench", obs::JsonValue(bench_id));
    active_ = this;
  }

  ~BenchRun() {
    flush_outputs();
    active_ = nullptr;
  }

  BenchRun(const BenchRun&) = delete;
  BenchRun& operator=(const BenchRun&) = delete;

  obs::RunReport& report() { return report_; }
  obs::MetricsRegistry& metrics() { return report_.metrics(); }
  /// The parsed flag set (standard + extra); for binaries that registered
  /// their own flags through `define_extra`.
  const Flags& flags() const { return flags_; }

  /// The registry of the live BenchRun (nullptr outside one); solve_point()
  /// uses it so the existing table helpers need no extra parameter.
  static obs::MetricsRegistry* active_metrics() {
    return active_ ? &active_->report_.metrics() : nullptr;
  }

  /// The run report of the live BenchRun (nullptr outside one);
  /// try_solve_point() records per-point error records into it.
  static obs::RunReport* active_report() {
    return active_ ? &active_->report_ : nullptr;
  }

  /// Sweep-runner configuration of the live BenchRun, with the journal
  /// writer, resume index, and metrics registry wired in. Outside a BenchRun
  /// (unit tests using the helpers directly) this is the sequential default.
  static runner::RunnerOptions active_runner_options() {
    if (!active_) return {};
    runner::RunnerOptions options = active_->runner_options_;
    options.journal = active_->journal_.writer.get();
    options.resume = active_->journal_.resume.get();
    options.metrics = &active_->report_.metrics();
    return options;
  }

  /// Path of the active checkpoint journal ("" when none): sweeps print it
  /// in their "resume with --resume=..." hint.
  static std::string active_journal_path() {
    return active_ && active_->journal_.writer ? active_->journal_.writer->path() : "";
  }

  /// Graceful-shutdown exit: flushes the run report, trace, and chrome spans
  /// of the live BenchRun (the journal is already fsync'd per record), then
  /// exits with the resumable-interrupt status (9, kInterrupted). Sweeps
  /// call this after draining; std::exit would skip the flush otherwise.
  [[noreturn]] static void exit_interrupted() {
    if (active_) {
      active_->flush_outputs();
      active_ = nullptr;
    }
    std::exit(error_exit_code(ErrorCode::kInterrupted));
  }

 private:
  void flush_outputs() {
    if (flushed_) return;
    flushed_ = true;
    try {
      if (span_collector_) {
        span_collector_->uninstall();
        span_collector_->write_chrome_trace(chrome_path_);
      }
      if (!metrics_json_.empty()) report_.write_json(metrics_json_);
      if (!prom_path_.empty()) {
        std::ofstream out(prom_path_);
        if (!out)
          throw std::runtime_error("perfbg: cannot open '" + prom_path_ +
                                   "' for writing");
        out << report_.metrics().render_text();
        out.flush();
        if (!out)
          throw std::runtime_error("perfbg: failed writing metrics to '" +
                                   prom_path_ + "'");
      }
      if (!trace_path_.empty()) report_.write_trace_jsonl(trace_path_);
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
    }
  }

  static inline BenchRun* active_ = nullptr;
  Flags flags_;
  obs::RunReport report_;
  std::string metrics_json_;
  std::string prom_path_;
  std::string trace_path_;
  std::string chrome_path_;
  std::optional<obs::SpanCollector> span_collector_;
  runner::RunnerOptions runner_options_;
  runner::JournalSession journal_;
  bool flushed_ = false;
};

inline void banner(const std::string& experiment_id, const std::string& what) {
  std::cout << "==============================================================\n"
            << experiment_id << ": " << what << "\n"
            << "==============================================================\n";
}

inline void subhead(const std::string& s) { std::cout << "\n--- " << s << " ---\n"; }

/// The p sweep used by the paper's Figs. 5-8.
inline const std::vector<double>& paper_p_values() {
  static const std::vector<double> v{0.0, 0.1, 0.3, 0.6, 0.9};
  return v;
}

/// Foreground-utilization grids. The paper plots each workload over the load
/// range where its behaviour is interesting (the High-ACF workload saturates
/// far earlier, hence its shorter axis — compare its Figs. 5a vs 5b).
inline const std::vector<double>& high_acf_load_grid() {
  static const std::vector<double> v{0.02, 0.04, 0.06, 0.08, 0.10, 0.12,
                                     0.14, 0.16, 0.19, 0.22, 0.25};
  return v;
}
inline const std::vector<double>& low_acf_load_grid() {
  static const std::vector<double> v{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35,
                                     0.40, 0.50, 0.60, 0.70, 0.80, 0.90};
  return v;
}

/// Name -> field table for (de)serializing FgBgMetrics through sweep-point
/// payloads. Journal replay rebuilds the struct from JSON, and the obs JSON
/// writer round-trips doubles exactly, so resumed tables stay byte-identical.
inline const std::vector<std::pair<const char*, double core::FgBgMetrics::*>>&
fgbg_metric_fields() {
  static const std::vector<std::pair<const char*, double core::FgBgMetrics::*>> v{
      {"fg_queue_length", &core::FgBgMetrics::fg_queue_length},
      {"bg_queue_length", &core::FgBgMetrics::bg_queue_length},
      {"bg_completion", &core::FgBgMetrics::bg_completion},
      {"fg_delayed", &core::FgBgMetrics::fg_delayed},
      {"fg_delayed_arrivals", &core::FgBgMetrics::fg_delayed_arrivals},
      {"fg_offered_load", &core::FgBgMetrics::fg_offered_load},
      {"busy_fraction", &core::FgBgMetrics::busy_fraction},
      {"fg_busy_fraction", &core::FgBgMetrics::fg_busy_fraction},
      {"bg_busy_fraction", &core::FgBgMetrics::bg_busy_fraction},
      {"idle_fraction", &core::FgBgMetrics::idle_fraction},
      {"fg_throughput", &core::FgBgMetrics::fg_throughput},
      {"fg_response_time", &core::FgBgMetrics::fg_response_time},
      {"bg_generation_rate", &core::FgBgMetrics::bg_generation_rate},
      {"bg_accept_rate", &core::FgBgMetrics::bg_accept_rate},
      {"bg_drop_rate", &core::FgBgMetrics::bg_drop_rate},
      {"bg_throughput", &core::FgBgMetrics::bg_throughput},
      {"bg_response_time", &core::FgBgMetrics::bg_response_time},
      {"probability_mass", &core::FgBgMetrics::probability_mass},
  };
  return v;
}

inline obs::JsonValue fgbg_metrics_to_json(const core::FgBgMetrics& m) {
  obs::JsonValue v = obs::JsonValue::object();
  for (const auto& [name, field] : fgbg_metric_fields())
    v.set(name, obs::JsonValue(m.*field));
  return v;
}

inline core::FgBgMetrics fgbg_metrics_from_json(const obs::JsonValue& v) {
  core::FgBgMetrics m;
  for (const auto& [name, field] : fgbg_metric_fields())
    if (const obs::JsonValue* entry = v.find(name)) m.*field = entry->as_double();
  return m;
}

/// Solver options for one runner attempt: the attempt's cancellation token
/// (so --point-timeout-ms reaches the qbd iteration loops) and, on retries,
/// the fallback-ladder rung after the ones the previous attempt burned.
inline qbd::RSolverOptions point_solver_options(const runner::PointContext& ctx) {
  qbd::RSolverOptions opts;
  opts.cancel = &ctx.token();
  opts.start_rung = ctx.attempt() - 1;
  return opts;
}

/// Process-wide R-seed cache backing --warm-start sweeps: one entry per model
/// class, refreshed after every successful solve of that class.
inline qbd::RSeedCache& sweep_seed_cache() {
  static qbd::RSeedCache cache;
  return cache;
}

/// Warm-start model-class key: every sweep coordinate except the load axis.
/// Adjacent utilization points of one panel share the key, so each solve
/// seeds the next one along the load grid.
inline std::string warm_start_class_key(const std::string& workload, double p,
                                        double idle_wait_intensity, int bg_buffer) {
  return workload + "|p=" + format_number(p, 6) + "|idle=" +
         format_number(idle_wait_intensity, 6) + "|X=" + std::to_string(bg_buffer);
}

/// Deterministic identity of one sweep point for health records: matches the
/// journal-key style but carries only model coordinates (no panel title), so
/// the same point solved by different panels sorts together.
inline std::string point_health_key(const std::string& workload, double utilization,
                                    double p, int bg_buffer) {
  return workload + "|u=" + format_number(utilization, 6) + "|p=" +
         format_number(p, 6) + "|X=" + std::to_string(bg_buffer);
}

/// One classified point failure from a sweep.
struct PointError {
  std::string code;     ///< ErrorCode name, e.g. "kUnstableQbd"
  std::string message;  ///< full what() of the typed error
  double drift_ratio = -1.0;  ///< rho estimate when the error carried one, else < 0
};

/// Result of one sweep point: either the metrics or a classified error.
struct PointResult {
  std::optional<core::FgBgMetrics> metrics;
  std::optional<PointError> error;
  bool ok() const { return metrics.has_value(); }
};

/// Records one failed sweep point in the active run report's "errors" array
/// with its full parameter tuple — (workload, utilization, p, X, idle-wait)
/// plus the drift estimate when the error carried one and the attempt count —
/// so a failure can be localized (and resumed around) straight from the
/// report. No-op outside a BenchRun.
inline void record_point_error(const PointError& err, const std::string& workload,
                               double utilization, double p,
                               double idle_wait_intensity, int bg_buffer,
                               int attempts = 1) {
  obs::RunReport* report = BenchRun::active_report();
  if (!report) return;
  report->metrics().add("bench.solve_errors");
  obs::JsonValue record = obs::JsonValue::object();
  record.set("code", obs::JsonValue(err.code));
  record.set("message", obs::JsonValue(err.message));
  record.set("workload", obs::JsonValue(workload));
  record.set("utilization", obs::JsonValue(utilization));
  record.set("bg_probability", obs::JsonValue(p));
  record.set("idle_wait_intensity", obs::JsonValue(idle_wait_intensity));
  record.set("bg_buffer", obs::JsonValue(bg_buffer));
  record.set("attempts", obs::JsonValue(attempts));
  if (err.drift_ratio >= 0.0)
    record.set("drift_ratio", obs::JsonValue(err.drift_ratio));
  report->add_error(std::move(record));
}

/// Solves the model at one (process, utilization, p, idle-wait) point.
/// Inside a BenchRun, phase timings and solver counters accumulate into the
/// run's registry across every point of the sweep. `solver_opts`, when given,
/// carries the sweep runner's cancellation token and retry rung
/// (point_solver_options()).
/// Throws perfbg::Error on failure; sweeps that must survive bad points use
/// try_solve_point() below.
inline core::FgBgMetrics solve_point(const traffic::MarkovianArrivalProcess& process,
                                     double utilization, double p,
                                     double idle_wait_intensity = 1.0, int bg_buffer = 5,
                                     const qbd::RSolverOptions* solver_opts = nullptr) {
  core::FgBgParams params{
      process.scaled_to_utilization(utilization, workloads::kMeanServiceTimeMs)};
  params.mean_service_time = workloads::kMeanServiceTimeMs;
  params.bg_probability = p;
  params.bg_buffer = bg_buffer;
  params.idle_wait_intensity = idle_wait_intensity;
  obs::MetricsRegistry* metrics = BenchRun::active_metrics();
  if (metrics) metrics->add("bench.solve_points");
  qbd::RSolverOptions opts = solver_opts ? *solver_opts : qbd::RSolverOptions{};
  // --warm-start: seed this point's R iteration from the previous solve of
  // the same model class. Sequential sweeps only — with --jobs > 1 the solve
  // order (and so each point's seed and iteration count) would depend on
  // scheduling, breaking the byte-stable parallel reports. A retry attempt
  // never warm-starts: it is descending the fallback ladder on purpose.
  const runner::RunnerOptions runner_opts = BenchRun::active_runner_options();
  const bool warm =
      runner_opts.warm_start && runner_opts.jobs <= 1 && opts.start_rung == 0;
  std::string class_key;
  if (warm) {
    class_key = warm_start_class_key(process.name(), p, idle_wait_intensity, bg_buffer);
    opts.warm_start = sweep_seed_cache().get(class_key);
  }
  const core::FgBgSolution solution = core::FgBgModel(params, metrics).solve(opts);
  if (warm)
    sweep_seed_cache().put(class_key, solution.qbd().r_matrix(),
                           solution.qbd().solver_stats().iterations);
  if (obs::RunReport* report = BenchRun::active_report()) {
    obs::SolveHealth health = solution.health();
    health.key = point_health_key(process.name(), utilization, p, bg_buffer);
    health.attempt = opts.start_rung + 1;
    report->add_health(health);
  }
  return solution.metrics();
}

/// Graceful-degradation wrapper around solve_point(): a typed pipeline error
/// (unstable point, non-convergence, ...) is captured as a PointError — and,
/// inside a BenchRun, recorded in the run report's "errors" array (with the
/// full parameter tuple) and counted as bench.solve_errors — instead of
/// aborting the whole sweep. `ctx`, when given, wires the sweep runner's
/// cancellation token and attempt number through to the solver.
inline PointResult try_solve_point(const traffic::MarkovianArrivalProcess& process,
                                   double utilization, double p,
                                   double idle_wait_intensity = 1.0, int bg_buffer = 5,
                                   const runner::PointContext* ctx = nullptr) {
  try {
    qbd::RSolverOptions opts;
    if (ctx) opts = point_solver_options(*ctx);
    return {solve_point(process, utilization, p, idle_wait_intensity, bg_buffer,
                        ctx ? &opts : nullptr),
            {}};
  } catch (const Error& e) {
    PointError err{error_code_name(e.code()), e.what(),
                   e.context().has_drift_ratio() ? e.context().drift_ratio : -1.0};
    record_point_error(err, process.name(), utilization, p, idle_wait_intensity,
                       bg_buffer, ctx ? ctx->attempt() : 1);
    if (obs::RunReport* report = BenchRun::active_report()) {
      obs::SolveHealth health = obs::failed_solve_health(err.code, err.message);
      health.key = point_health_key(process.name(), utilization, p, bg_buffer);
      health.attempt = ctx ? ctx->attempt() : 1;
      health.drift_ratio = err.drift_ratio;
      if (e.context().has_iterations()) health.iterations = e.context().iterations;
      if (e.context().has_last_residual())
        health.final_residual = e.context().last_residual;
      report->add_health(health);
    }
    return {std::nullopt, std::move(err)};
  }
}

/// Emits one "figure panel": the chosen metric as a function of load, one
/// column per p value. The grid executes on a SweepRunner configured from
/// the BenchRun's --jobs / --point-timeout-ms / --retries / --journal /
/// --resume flags; results are assembled in submission order, so the table
/// is byte-identical at any parallelism. A point that fails with a typed
/// error renders as its error code (e.g. "kUnstableQbd") and the sweep
/// continues; the failure is recorded in the run report when one is active.
/// An interrupted (SIGINT/SIGTERM) sweep prints the completed table, names
/// the journal to resume from, and exits with the resumable status (9).
inline void print_load_sweep_panel(const std::string& title,
                                   const traffic::MarkovianArrivalProcess& process,
                                   const std::vector<double>& loads,
                                   const std::vector<double>& ps,
                                   double core::FgBgMetrics::*field) {
  subhead(title);
  std::vector<std::string> headers{"fg_load"};
  for (double p : ps) headers.push_back("p=" + format_number(p, 2));

  runner::SweepRunner sweep(BenchRun::active_runner_options());
  for (double u : loads) {
    for (double p : ps) {
      // Stable journal identity: panel title + workload + exact coordinates.
      const std::string key = title + "|" + process.name() + "|u=" +
                              format_number(u, 6) + "|p=" + format_number(p, 6);
      sweep.add(key, [&process, u, p](runner::PointContext& ctx) {
        const qbd::RSolverOptions opts = point_solver_options(ctx);
        return fgbg_metrics_to_json(solve_point(process, u, p, 1.0, 5, &opts));
      });
    }
  }
  const runner::SweepResult result = sweep.run();

  Table t(std::move(headers));
  for (std::size_t row = 0; row < loads.size(); ++row) {
    std::vector<TableCell> cells;
    cells.reserve(ps.size() + 1);
    cells.emplace_back(std::in_place_type<double>, loads[row]);
    for (std::size_t col = 0; col < ps.size(); ++col) {
      const runner::PointOutcome& out = result.outcomes[row * ps.size() + col];
      if (out.ok()) {
        const core::FgBgMetrics m = fgbg_metrics_from_json(out.payload);
        cells.emplace_back(std::in_place_type<double>, m.*field);
      } else {
        cells.emplace_back(std::in_place_type<std::string>, out.error_code);
        // Interrupt placeholders (points the drain never started) are not
        // solver failures; they re-run on resume and don't belong in "errors".
        if (out.error_code != "kInterrupted") {
          record_point_error({out.error_code, out.error_message, -1.0},
                             process.name(), loads[row], ps[col], 1.0, 5,
                             out.attempts > 0 ? out.attempts : 1);
          // The solve threw inside the worker before solve_point could record
          // a converged health record; record the failed one here so every
          // attempted solve shows up under "health".
          if (obs::RunReport* report = BenchRun::active_report()) {
            obs::SolveHealth health =
                obs::failed_solve_health(out.error_code, out.error_message);
            health.key =
                point_health_key(process.name(), loads[row], ps[col], 5);
            health.attempt = out.attempts > 0 ? out.attempts : 1;
            report->add_health(health);
          }
        }
      }
    }
    t.add_row(std::move(cells));
  }
  t.print(std::cout);

  if (result.interrupted) {
    std::cout << "\nsweep interrupted: " << result.completed << "/"
              << result.outcomes.size() << " points completed";
    const std::string journal = BenchRun::active_journal_path();
    if (!journal.empty())
      std::cout << "; resume with --resume=" << journal;
    else
      std::cout << " (re-run with --journal=<path> to make sweeps resumable)";
    std::cout << "\n";
    BenchRun::exit_interrupted();
  }
}

}  // namespace perfbg::bench
