// Shared plumbing for the figure-regeneration harnesses: each bench binary
// prints a banner naming the paper artifact it regenerates, then one table
// per sub-figure, in a diff-friendly format. Deterministic; the only
// arguments are the shared observability flags (--metrics-json, --trace)
// handled by BenchRun below.
#pragma once

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "obs/report.hpp"
#include "obs/span.hpp"
#include "traffic/map_process.hpp"
#include "util/error.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"
#include "workloads/presets.hpp"

namespace perfbg::bench {

/// Per-binary observability session. Construct first thing in main(); every
/// solve_point() call then feeds phase timings and solver counters into the
/// run's MetricsRegistry, and the destructor writes the structured outputs
/// the user asked for:
///   --metrics-json=<path>  full run report (schema perfbg.run_report.v1)
///   --trace=<path>         all buffered trace events as JSON lines
///   --trace-chrome=<path>  hierarchical span profile as Chrome trace JSON
/// Without flags the bench output is byte-identical to the flag-less days.
class BenchRun {
 public:
  BenchRun(int argc, const char* const* argv, const std::string& bench_id)
      : report_(bench_id) {
    Flags flags;
    flags.define("metrics-json", "write a structured JSON run report to this path");
    flags.define("trace", "write all trace events as JSON lines to this path");
    flags.define("trace-chrome",
                 "write a Chrome trace-event JSON span profile to this path");
    flags.define_switch("help", "print this help");
    try {
      flags.parse(argc, argv);
    } catch (const std::exception& e) {
      // Unknown-flag errors already embed the help text; don't print it twice.
      const std::string what = e.what();
      std::cerr << what << "\n";
      if (what.find("flags:") == std::string::npos) std::cerr << flags.help();
      std::exit(2);
    }
    if (flags.has("help")) {
      std::cout << flags.help();
      std::exit(0);
    }
    metrics_json_ = flags.get_string("metrics-json", "");
    trace_path_ = flags.get_string("trace", "");
    chrome_path_ = flags.get_string("trace-chrome", "");
    if (!chrome_path_.empty()) {
      span_collector_.emplace();
      span_collector_->install();
    }
    report_.set_config("bench", obs::JsonValue(bench_id));
    active_ = this;
  }

  ~BenchRun() {
    active_ = nullptr;
    try {
      if (span_collector_) {
        span_collector_->uninstall();
        span_collector_->write_chrome_trace(chrome_path_);
      }
      if (!metrics_json_.empty()) report_.write_json(metrics_json_);
      if (!trace_path_.empty()) report_.write_trace_jsonl(trace_path_);
    } catch (const std::exception& e) {
      std::cerr << e.what() << "\n";
    }
  }

  BenchRun(const BenchRun&) = delete;
  BenchRun& operator=(const BenchRun&) = delete;

  obs::RunReport& report() { return report_; }
  obs::MetricsRegistry& metrics() { return report_.metrics(); }

  /// The registry of the live BenchRun (nullptr outside one); solve_point()
  /// uses it so the existing table helpers need no extra parameter.
  static obs::MetricsRegistry* active_metrics() {
    return active_ ? &active_->report_.metrics() : nullptr;
  }

  /// The run report of the live BenchRun (nullptr outside one);
  /// try_solve_point() records per-point error records into it.
  static obs::RunReport* active_report() {
    return active_ ? &active_->report_ : nullptr;
  }

 private:
  static inline BenchRun* active_ = nullptr;
  obs::RunReport report_;
  std::string metrics_json_;
  std::string trace_path_;
  std::string chrome_path_;
  std::optional<obs::SpanCollector> span_collector_;
};

inline void banner(const std::string& experiment_id, const std::string& what) {
  std::cout << "==============================================================\n"
            << experiment_id << ": " << what << "\n"
            << "==============================================================\n";
}

inline void subhead(const std::string& s) { std::cout << "\n--- " << s << " ---\n"; }

/// The p sweep used by the paper's Figs. 5-8.
inline const std::vector<double>& paper_p_values() {
  static const std::vector<double> v{0.0, 0.1, 0.3, 0.6, 0.9};
  return v;
}

/// Foreground-utilization grids. The paper plots each workload over the load
/// range where its behaviour is interesting (the High-ACF workload saturates
/// far earlier, hence its shorter axis — compare its Figs. 5a vs 5b).
inline const std::vector<double>& high_acf_load_grid() {
  static const std::vector<double> v{0.02, 0.04, 0.06, 0.08, 0.10, 0.12,
                                     0.14, 0.16, 0.19, 0.22, 0.25};
  return v;
}
inline const std::vector<double>& low_acf_load_grid() {
  static const std::vector<double> v{0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35,
                                     0.40, 0.50, 0.60, 0.70, 0.80, 0.90};
  return v;
}

/// One classified point failure from a sweep.
struct PointError {
  std::string code;     ///< ErrorCode name, e.g. "kUnstableQbd"
  std::string message;  ///< full what() of the typed error
  double drift_ratio = -1.0;  ///< rho estimate when the error carried one, else < 0
};

/// Result of one sweep point: either the metrics or a classified error.
struct PointResult {
  std::optional<core::FgBgMetrics> metrics;
  std::optional<PointError> error;
  bool ok() const { return metrics.has_value(); }
};

/// Solves the model at one (process, utilization, p, idle-wait) point.
/// Inside a BenchRun, phase timings and solver counters accumulate into the
/// run's registry across every point of the sweep.
/// Throws perfbg::Error on failure; sweeps that must survive bad points use
/// try_solve_point() below.
inline core::FgBgMetrics solve_point(const traffic::MarkovianArrivalProcess& process,
                                     double utilization, double p,
                                     double idle_wait_intensity = 1.0, int bg_buffer = 5) {
  core::FgBgParams params{
      process.scaled_to_utilization(utilization, workloads::kMeanServiceTimeMs)};
  params.mean_service_time = workloads::kMeanServiceTimeMs;
  params.bg_probability = p;
  params.bg_buffer = bg_buffer;
  params.idle_wait_intensity = idle_wait_intensity;
  obs::MetricsRegistry* metrics = BenchRun::active_metrics();
  if (metrics) metrics->add("bench.solve_points");
  return core::FgBgModel(params, metrics).solve().metrics();
}

/// Graceful-degradation wrapper around solve_point(): a typed pipeline error
/// (unstable point, non-convergence, ...) is captured as a PointError — and,
/// inside a BenchRun, recorded in the run report's "errors" array and counted
/// as bench.solve_errors — instead of aborting the whole sweep.
inline PointResult try_solve_point(const traffic::MarkovianArrivalProcess& process,
                                   double utilization, double p,
                                   double idle_wait_intensity = 1.0, int bg_buffer = 5) {
  try {
    return {solve_point(process, utilization, p, idle_wait_intensity, bg_buffer), {}};
  } catch (const Error& e) {
    PointError err{error_code_name(e.code()), e.what(),
                   e.context().has_drift_ratio() ? e.context().drift_ratio : -1.0};
    if (obs::RunReport* report = BenchRun::active_report()) {
      report->metrics().add("bench.solve_errors");
      obs::JsonValue record = obs::JsonValue::object();
      record.set("code", obs::JsonValue(err.code));
      record.set("message", obs::JsonValue(err.message));
      record.set("workload", obs::JsonValue(process.name()));
      record.set("utilization", obs::JsonValue(utilization));
      record.set("bg_probability", obs::JsonValue(p));
      record.set("idle_wait_intensity", obs::JsonValue(idle_wait_intensity));
      record.set("bg_buffer", obs::JsonValue(bg_buffer));
      if (err.drift_ratio >= 0.0)
        record.set("drift_ratio", obs::JsonValue(err.drift_ratio));
      report->add_error(std::move(record));
    }
    return {std::nullopt, std::move(err)};
  }
}

/// Emits one "figure panel": the chosen metric as a function of load, one
/// column per p value. A point that fails with a typed error renders as its
/// error code (e.g. "kUnstableQbd") and the sweep continues; the failure is
/// recorded in the run report when one is active.
inline void print_load_sweep_panel(const std::string& title,
                                   const traffic::MarkovianArrivalProcess& process,
                                   const std::vector<double>& loads,
                                   const std::vector<double>& ps,
                                   double core::FgBgMetrics::*field) {
  subhead(title);
  std::vector<std::string> headers{"fg_load"};
  for (double p : ps) headers.push_back("p=" + format_number(p, 2));
  Table t(std::move(headers));
  for (double u : loads) {
    std::vector<TableCell> row;
    row.reserve(ps.size() + 1);
    row.emplace_back(std::in_place_type<double>, u);
    for (double p : ps) {
      const PointResult point = try_solve_point(process, u, p);
      if (point.ok())
        row.emplace_back(std::in_place_type<double>, (*point.metrics).*field);
      else
        row.emplace_back(std::in_place_type<std::string>, point.error->code);
    }
    t.add_row(std::move(row));
  }
  t.print(std::cout);
}

}  // namespace perfbg::bench
