// Regenerates the paper's Figure 6: the portion of foreground jobs delayed by
// a background job, vs foreground load. The paper's WaitP_FG ratio is shown;
// the arrival-weighted variant is printed as a second pair of panels.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace perfbg;
  bench::BenchRun run(argc, argv, "fig06_fg_delayed");
  bench::banner("Figure 6", "portion of foreground jobs delayed behind background jobs");
  const std::vector<double> ps{0.1, 0.3, 0.6, 0.9};
  bench::print_load_sweep_panel("(a) E-mail (High ACF) — WaitP_FG", workloads::email(),
                                bench::high_acf_load_grid(), ps,
                                &core::FgBgMetrics::fg_delayed);
  bench::print_load_sweep_panel("(b) Software Dev. (Low ACF) — WaitP_FG",
                                workloads::software_dev(), bench::low_acf_load_grid(), ps,
                                &core::FgBgMetrics::fg_delayed);
  bench::print_load_sweep_panel("(a') E-mail — arrival-weighted delayed fraction",
                                workloads::email(), bench::high_acf_load_grid(), ps,
                                &core::FgBgMetrics::fg_delayed_arrivals);
  bench::print_load_sweep_panel("(b') Software Dev. — arrival-weighted delayed fraction",
                                workloads::software_dev(), bench::low_acf_load_grid(), ps,
                                &core::FgBgMetrics::fg_delayed_arrivals);
  return 0;
}
