// Regenerates the paper's Figure 10: background completion rate as a
// function of the idle-wait duration, same setup as Figure 9.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace perfbg;
  bench::BenchRun run(argc, argv, "fig10_idle_wait_bg");
  bench::banner("Figure 10", "background completion rate vs idle-wait intensity");
  const std::vector<double> intensities{0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0};
  const std::vector<double> ps{0.1, 0.3, 0.6, 0.9};
  constexpr double kEmailLoad = 0.12;
  constexpr double kSoftDevLoad = 0.25;

  for (const auto& [proc, load] :
       {std::pair{workloads::email(), kEmailLoad},
        std::pair{workloads::software_dev(), kSoftDevLoad}}) {
    bench::subhead(proc.name() + " at " + format_number(100 * load, 3) +
                   "% foreground utilization");
    std::vector<std::string> headers{"idle_wait (x service time)"};
    for (double p : ps) headers.push_back("p=" + format_number(p, 2));
    Table t(headers);
    for (double intensity : intensities) {
      std::vector<TableCell> row{intensity};
      for (double p : ps)
        row.push_back(bench::solve_point(proc, load, p, intensity).bg_completion);
      t.add_row(std::move(row));
    }
    t.print(std::cout);
  }

  {
    bench::subhead("paper §5.3 quote check: E-mail, p=0.6, completion drop 0.5x -> 2x");
    const double c_half = bench::solve_point(workloads::email(), kEmailLoad, 0.6, 0.5)
                              .bg_completion;
    const double c_twice = bench::solve_point(workloads::email(), kEmailLoad, 0.6, 2.0)
                               .bg_completion;
    std::cout << "completion(0.5x) = " << c_half << ", completion(2x) = " << c_twice
              << ", drop = " << 100.0 * (c_half - c_twice) / c_half
              << "%  (paper: a considerable drop, dwarfing the ~6.5% FG gain)\n";
  }
  return 0;
}
