// Regenerates the paper's Figure 1: the ACF of the inter-arrival times of the
// three (here: synthetic, see DESIGN.md §2) traces, plus the table of mean,
// CV and utilization for inter-arrival and service times.
#include <cstdint>
#include <iostream>

#include "bench_common.hpp"
#include "workloads/trace.hpp"

int main(int argc, char** argv) {
  using namespace perfbg;
  bench::BenchRun run(argc, argv, "fig01_trace_acf");
  bench::banner("Figure 1", "trace inter-arrival ACF and summary statistics");

  constexpr std::size_t kTraceLength = 300000;  // "a few hundred thousand entries"
  constexpr std::uint64_t kSeed = 17;
  const auto procs = workloads::trace_workloads();

  // Summary table (the table embedded in the paper's Figure 1).
  {
    bench::subhead("summary: inter-arrival and service statistics");
    Table t({"workload", "arr mean (ms)", "arr CV", "svc mean (ms)", "svc CV",
             "utilization %"});
    for (std::size_t i = 0; i < procs.size(); ++i) {
      const auto trace = workloads::generate_interarrival_trace(procs[i], kTraceLength,
                                                                kSeed + i);
      const auto svc = workloads::generate_service_trace(workloads::kMeanServiceTimeMs,
                                                         kTraceLength, kSeed + 100 + i);
      const double arr_mean = workloads::series_mean(trace);
      t.add_row({procs[i].name(), arr_mean, workloads::series_cv(trace),
                 workloads::series_mean(svc), workloads::series_cv(svc),
                 100.0 * workloads::kMeanServiceTimeMs / arr_mean});
    }
    t.print(std::cout);
  }

  // ACF curves (empirical, from the synthetic traces).
  {
    bench::subhead("empirical ACF of inter-arrival times (lags 1..100)");
    Table t({"lag", procs[0].name(), procs[1].name(), procs[2].name()});
    std::vector<std::vector<double>> acfs;
    for (std::size_t i = 0; i < procs.size(); ++i) {
      const auto trace = workloads::generate_interarrival_trace(procs[i], kTraceLength,
                                                                kSeed + i);
      acfs.push_back(workloads::series_acf(trace, 100));
    }
    for (int lag : {1, 2, 3, 5, 8, 12, 20, 30, 40, 60, 80, 100}) {
      const auto k = static_cast<std::size_t>(lag - 1);
      t.add_row({static_cast<double>(lag), acfs[0][k], acfs[1][k], acfs[2][k]});
    }
    t.print(std::cout);
  }
  return 0;
}
