// Regenerates the paper's Figure 7: completion rate of background jobs vs
// foreground load.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace perfbg;
  bench::BenchRun run(argc, argv, "fig07_bg_completion");
  bench::banner("Figure 7", "background job completion rate vs foreground load");
  bench::print_load_sweep_panel("(a) E-mail (High ACF)", workloads::email(),
                                bench::high_acf_load_grid(), bench::paper_p_values(),
                                &core::FgBgMetrics::bg_completion);
  bench::print_load_sweep_panel("(b) Software Dev. (Low ACF)", workloads::software_dev(),
                                bench::low_acf_load_grid(), bench::paper_p_values(),
                                &core::FgBgMetrics::bg_completion);
  return 0;
}
