// Extension study (footnote 3, second half): does the *shape* of the idle
// wait matter, or only its mean? The paper models an exponential wait; this
// bench solves the chain with phase-type waits of equal mean and different
// variability, at the Figs. 9/10 operating points.
#include <iostream>

#include "bench_common.hpp"
#include "traffic/phase_type.hpp"

int main(int argc, char** argv) {
  using namespace perfbg;
  bench::BenchRun run(argc, argv, "ext_idle_wait_shape");
  using traffic::PhaseType;
  bench::banner("Extension: idle-wait shape",
                "PH idle waits of equal mean, different variability");

  const double mean_wait = workloads::kMeanServiceTimeMs;  // 1x service time
  const std::vector<std::pair<std::string, PhaseType>> waits{
      {"erlang8 (scv 0.125)", PhaseType::erlang(8, mean_wait)},
      {"erlang2 (scv 0.5)", PhaseType::erlang(2, mean_wait)},
      {"expo (scv 1)", PhaseType::exponential(mean_wait)},
      {"h2 (scv 2)", PhaseType::hyperexponential(0.5, mean_wait * 1.7071068,
                                                 mean_wait * 0.2928932)},
  };

  for (const auto& [wl, load] : {std::pair{workloads::email(), 0.12},
                                 std::pair{workloads::software_dev(), 0.25}}) {
    bench::subhead(wl.name() + " at load " + format_number(load, 3) + ", p = 0.6");
    Table t({"idle wait", "scv", "fg_qlen", "bg_completion", "fg_delayed(arr)"});
    for (const auto& [name, wait] : waits) {
      core::FgBgParams params{
          wl.scaled_to_utilization(load, workloads::kMeanServiceTimeMs)};
      params.bg_probability = 0.6;
      params.idle_wait_distribution = wait;
      const core::FgBgMetrics m = core::FgBgModel(params).solve().metrics();
      t.add_row({name, wait.scv(), m.fg_queue_length, m.bg_completion,
                 m.fg_delayed_arrivals});
    }
    t.print(std::cout);
  }
  std::cout << "\nReading: at equal mean the idle-wait shape moves completion and\n"
               "delay by only a few percent (lower variability = slightly fewer\n"
               "foreground jobs caught behind background work). The mean — the\n"
               "knob the paper sweeps in its Figs. 9-10 — is what matters, which\n"
               "justifies the exponential-wait simplification in the chain.\n";
  return 0;
}
