// Ablation: background buffer size X in {1, 2, 5, 10, 25}. The paper states
// (§3.2) that results with buffers up to 25 are qualitatively the same as
// with the default of 5; this bench makes that claim checkable.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace perfbg;
  bench::BenchRun run(argc, argv, "abl_buffer_size");
  bench::banner("Ablation: buffer size",
                "metrics vs background buffer capacity (paper §3.2 claim)");
  const std::vector<int> buffers{1, 2, 5, 10, 25};

  for (const auto& proc : {workloads::email(), workloads::software_dev()}) {
    for (double u : {0.10, 0.25}) {
      bench::subhead(proc.name() + " at load " + format_number(u, 2) + ", p = 0.3");
      Table t({"bg_buffer X", "fg_qlen", "bg_qlen", "bg_completion", "fg_delayed",
               "bg_qlen / X"});
      for (int x : buffers) {
        const core::FgBgMetrics m = bench::solve_point(proc, u, 0.3, 1.0, x);
        t.add_row({static_cast<double>(x), m.fg_queue_length, m.bg_queue_length,
                   m.bg_completion, m.fg_delayed, m.bg_queue_length / x});
      }
      t.print(std::cout);
    }
  }
  return 0;
}
