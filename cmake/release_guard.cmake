# Release-build guard (DESIGN.md §12): proves by symbol scan that no
# PERFBG_DCHECK survived into the hot solver libraries in an NDEBUG build.
#
# Mechanism: an enabled PERFBG_DCHECK calls the out-of-line funnel
# perfbg::detail::dcheck_failed (src/util/check.cpp), so every object file
# with a live debug check carries an undefined reference whose mangled name
# contains "dcheck_failed". In Release/RelWithDebInfo the macro compiles to
# nothing, so scanning the hot static libraries for any "dcheck" symbol must
# come up empty. perfbg_util is deliberately NOT scanned — it defines the
# funnel itself.
#
# Usage (registered as the release_dcheck_guard ctest by the root
# CMakeLists, and run directly by the CI release job):
#   cmake -DNM=<path-to-nm> "-DLIBS=<lib1.a;lib2.a;...>" \
#         -P cmake/release_guard.cmake
#
# Exits fatally (non-zero) when a library is missing, nm fails, or a dcheck
# symbol is found.
cmake_minimum_required(VERSION 3.16)

if(NOT NM)
  message(FATAL_ERROR "release_guard: pass -DNM=<path-to-nm>")
endif()
if(NOT LIBS)
  message(FATAL_ERROR "release_guard: pass -DLIBS=<semicolon-separated archives>")
endif()

set(clean_count 0)
foreach(lib IN LISTS LIBS)
  if(NOT EXISTS "${lib}")
    message(FATAL_ERROR "release_guard: library not found: ${lib}")
  endif()
  execute_process(
    COMMAND "${NM}" "${lib}"
    OUTPUT_VARIABLE symbols
    ERROR_VARIABLE nm_err
    RESULT_VARIABLE nm_status)
  if(NOT nm_status EQUAL 0)
    message(FATAL_ERROR "release_guard: ${NM} failed on ${lib}: ${nm_err}")
  endif()
  string(TOLOWER "${symbols}" symbols_lower)
  string(FIND "${symbols_lower}" "dcheck" hit)
  if(NOT hit EQUAL -1)
    # Reconstruct the offending lines for the error message.
    string(REPLACE ";" "\\;" escaped "${symbols}")
    string(REPLACE "\n" ";" lines "${escaped}")
    set(offending "")
    foreach(line IN LISTS lines)
      string(TOLOWER "${line}" line_lower)
      string(FIND "${line_lower}" "dcheck" line_hit)
      if(NOT line_hit EQUAL -1)
        string(APPEND offending "  ${line}\n")
      endif()
    endforeach()
    message(FATAL_ERROR
      "release_guard: debug checks compiled into ${lib} — a PERFBG_DCHECK "
      "(or a call to perfbg::detail::dcheck_failed) is live in a hot solver "
      "library of an NDEBUG build. Offending symbols:\n${offending}"
      "Hot-loop invariants must stay behind PERFBG_DCHECK so Release builds "
      "pay nothing for them (src/util/check.hpp).")
  endif()
  math(EXPR clean_count "${clean_count} + 1")
endforeach()

message(STATUS "release_guard: ${clean_count} hot librar(ies) clean of dcheck symbols")
