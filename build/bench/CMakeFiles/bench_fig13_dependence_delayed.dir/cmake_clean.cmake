file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_dependence_delayed.dir/bench_fig13_dependence_delayed.cpp.o"
  "CMakeFiles/bench_fig13_dependence_delayed.dir/bench_fig13_dependence_delayed.cpp.o.d"
  "bench_fig13_dependence_delayed"
  "bench_fig13_dependence_delayed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_dependence_delayed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
