# Empty dependencies file for bench_fig13_dependence_delayed.
# This may be replaced when dependencies are built.
