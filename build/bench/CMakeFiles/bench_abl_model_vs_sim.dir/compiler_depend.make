# Empty compiler generated dependencies file for bench_abl_model_vs_sim.
# This may be replaced when dependencies are built.
