file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multiclass.dir/bench_ext_multiclass.cpp.o"
  "CMakeFiles/bench_ext_multiclass.dir/bench_ext_multiclass.cpp.o.d"
  "bench_ext_multiclass"
  "bench_ext_multiclass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multiclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
