# Empty compiler generated dependencies file for bench_ext_multiclass.
# This may be replaced when dependencies are built.
