# Empty dependencies file for bench_fig07_bg_completion.
# This may be replaced when dependencies are built.
