file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_fg_qlen.dir/bench_fig05_fg_qlen.cpp.o"
  "CMakeFiles/bench_fig05_fg_qlen.dir/bench_fig05_fg_qlen.cpp.o.d"
  "bench_fig05_fg_qlen"
  "bench_fig05_fg_qlen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_fg_qlen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
