# Empty dependencies file for bench_fig05_fg_qlen.
# This may be replaced when dependencies are built.
