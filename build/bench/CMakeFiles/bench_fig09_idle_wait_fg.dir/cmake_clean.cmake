file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_idle_wait_fg.dir/bench_fig09_idle_wait_fg.cpp.o"
  "CMakeFiles/bench_fig09_idle_wait_fg.dir/bench_fig09_idle_wait_fg.cpp.o.d"
  "bench_fig09_idle_wait_fg"
  "bench_fig09_idle_wait_fg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_idle_wait_fg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
