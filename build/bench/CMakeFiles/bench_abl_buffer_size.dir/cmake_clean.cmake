file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_buffer_size.dir/bench_abl_buffer_size.cpp.o"
  "CMakeFiles/bench_abl_buffer_size.dir/bench_abl_buffer_size.cpp.o.d"
  "bench_abl_buffer_size"
  "bench_abl_buffer_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_buffer_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
