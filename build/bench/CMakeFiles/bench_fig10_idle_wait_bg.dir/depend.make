# Empty dependencies file for bench_fig10_idle_wait_bg.
# This may be replaced when dependencies are built.
