file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_idle_wait_bg.dir/bench_fig10_idle_wait_bg.cpp.o"
  "CMakeFiles/bench_fig10_idle_wait_bg.dir/bench_fig10_idle_wait_bg.cpp.o.d"
  "bench_fig10_idle_wait_bg"
  "bench_fig10_idle_wait_bg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_idle_wait_bg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
