file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_vacation_baseline.dir/bench_abl_vacation_baseline.cpp.o"
  "CMakeFiles/bench_abl_vacation_baseline.dir/bench_abl_vacation_baseline.cpp.o.d"
  "bench_abl_vacation_baseline"
  "bench_abl_vacation_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_vacation_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
