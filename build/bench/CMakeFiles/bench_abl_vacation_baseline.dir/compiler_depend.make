# Empty compiler generated dependencies file for bench_abl_vacation_baseline.
# This may be replaced when dependencies are built.
