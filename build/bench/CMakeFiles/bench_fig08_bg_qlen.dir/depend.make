# Empty dependencies file for bench_fig08_bg_qlen.
# This may be replaced when dependencies are built.
