file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_bg_qlen.dir/bench_fig08_bg_qlen.cpp.o"
  "CMakeFiles/bench_fig08_bg_qlen.dir/bench_fig08_bg_qlen.cpp.o.d"
  "bench_fig08_bg_qlen"
  "bench_fig08_bg_qlen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_bg_qlen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
