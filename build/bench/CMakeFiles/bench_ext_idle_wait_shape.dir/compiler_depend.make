# Empty compiler generated dependencies file for bench_ext_idle_wait_shape.
# This may be replaced when dependencies are built.
