file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_idle_wait_shape.dir/bench_ext_idle_wait_shape.cpp.o"
  "CMakeFiles/bench_ext_idle_wait_shape.dir/bench_ext_idle_wait_shape.cpp.o.d"
  "bench_ext_idle_wait_shape"
  "bench_ext_idle_wait_shape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_idle_wait_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
