# Empty compiler generated dependencies file for bench_fig06_fg_delayed.
# This may be replaced when dependencies are built.
