# Empty compiler generated dependencies file for bench_abl_rsolver.
# This may be replaced when dependencies are built.
