file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_rsolver.dir/bench_abl_rsolver.cpp.o"
  "CMakeFiles/bench_abl_rsolver.dir/bench_abl_rsolver.cpp.o.d"
  "bench_abl_rsolver"
  "bench_abl_rsolver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_rsolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
