file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_trace_acf.dir/bench_fig01_trace_acf.cpp.o"
  "CMakeFiles/bench_fig01_trace_acf.dir/bench_fig01_trace_acf.cpp.o.d"
  "bench_fig01_trace_acf"
  "bench_fig01_trace_acf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_trace_acf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
