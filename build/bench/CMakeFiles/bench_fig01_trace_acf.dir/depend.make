# Empty dependencies file for bench_fig01_trace_acf.
# This may be replaced when dependencies are built.
