# Empty dependencies file for bench_fig02_mmpp_acf.
# This may be replaced when dependencies are built.
