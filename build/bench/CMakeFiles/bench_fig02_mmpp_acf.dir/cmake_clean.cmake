file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_mmpp_acf.dir/bench_fig02_mmpp_acf.cpp.o"
  "CMakeFiles/bench_fig02_mmpp_acf.dir/bench_fig02_mmpp_acf.cpp.o.d"
  "bench_fig02_mmpp_acf"
  "bench_fig02_mmpp_acf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_mmpp_acf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
