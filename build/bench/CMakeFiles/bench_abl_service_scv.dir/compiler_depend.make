# Empty compiler generated dependencies file for bench_abl_service_scv.
# This may be replaced when dependencies are built.
