file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_service_scv.dir/bench_abl_service_scv.cpp.o"
  "CMakeFiles/bench_abl_service_scv.dir/bench_abl_service_scv.cpp.o.d"
  "bench_abl_service_scv"
  "bench_abl_service_scv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_service_scv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
