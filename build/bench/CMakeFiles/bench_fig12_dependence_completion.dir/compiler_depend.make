# Empty compiler generated dependencies file for bench_fig12_dependence_completion.
# This may be replaced when dependencies are built.
