file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_dependence_completion.dir/bench_fig12_dependence_completion.cpp.o"
  "CMakeFiles/bench_fig12_dependence_completion.dir/bench_fig12_dependence_completion.cpp.o.d"
  "bench_fig12_dependence_completion"
  "bench_fig12_dependence_completion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_dependence_completion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
