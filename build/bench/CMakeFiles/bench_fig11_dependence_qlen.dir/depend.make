# Empty dependencies file for bench_fig11_dependence_qlen.
# This may be replaced when dependencies are built.
