file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_dependence_qlen.dir/bench_fig11_dependence_qlen.cpp.o"
  "CMakeFiles/bench_fig11_dependence_qlen.dir/bench_fig11_dependence_qlen.cpp.o.d"
  "bench_fig11_dependence_qlen"
  "bench_fig11_dependence_qlen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_dependence_qlen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
