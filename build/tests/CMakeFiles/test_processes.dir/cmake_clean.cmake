file(REMOVE_RECURSE
  "CMakeFiles/test_processes.dir/test_processes.cpp.o"
  "CMakeFiles/test_processes.dir/test_processes.cpp.o.d"
  "test_processes"
  "test_processes.pdb"
  "test_processes[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_processes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
