# Empty dependencies file for test_processes.
# This may be replaced when dependencies are built.
