# Empty dependencies file for test_model_ph_idle.
# This may be replaced when dependencies are built.
