file(REMOVE_RECURSE
  "CMakeFiles/test_model_ph_idle.dir/test_model_ph_idle.cpp.o"
  "CMakeFiles/test_model_ph_idle.dir/test_model_ph_idle.cpp.o.d"
  "test_model_ph_idle"
  "test_model_ph_idle.pdb"
  "test_model_ph_idle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_ph_idle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
