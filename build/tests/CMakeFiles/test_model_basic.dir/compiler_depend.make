# Empty compiler generated dependencies file for test_model_basic.
# This may be replaced when dependencies are built.
