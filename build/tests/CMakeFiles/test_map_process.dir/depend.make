# Empty dependencies file for test_map_process.
# This may be replaced when dependencies are built.
