file(REMOVE_RECURSE
  "CMakeFiles/test_map_process.dir/test_map_process.cpp.o"
  "CMakeFiles/test_map_process.dir/test_map_process.cpp.o.d"
  "test_map_process"
  "test_map_process.pdb"
  "test_map_process[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_map_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
