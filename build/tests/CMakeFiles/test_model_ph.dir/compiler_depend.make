# Empty compiler generated dependencies file for test_model_ph.
# This may be replaced when dependencies are built.
