file(REMOVE_RECURSE
  "CMakeFiles/test_model_ph.dir/test_model_ph.cpp.o"
  "CMakeFiles/test_model_ph.dir/test_model_ph.cpp.o.d"
  "test_model_ph"
  "test_model_ph.pdb"
  "test_model_ph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_ph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
