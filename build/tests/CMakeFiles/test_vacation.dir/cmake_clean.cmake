file(REMOVE_RECURSE
  "CMakeFiles/test_vacation.dir/test_vacation.cpp.o"
  "CMakeFiles/test_vacation.dir/test_vacation.cpp.o.d"
  "test_vacation"
  "test_vacation.pdb"
  "test_vacation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vacation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
