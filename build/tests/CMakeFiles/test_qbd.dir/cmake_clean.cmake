file(REMOVE_RECURSE
  "CMakeFiles/test_qbd.dir/test_qbd.cpp.o"
  "CMakeFiles/test_qbd.dir/test_qbd.cpp.o.d"
  "test_qbd"
  "test_qbd.pdb"
  "test_qbd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_qbd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
