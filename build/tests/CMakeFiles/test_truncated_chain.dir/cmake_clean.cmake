file(REMOVE_RECURSE
  "CMakeFiles/test_truncated_chain.dir/test_truncated_chain.cpp.o"
  "CMakeFiles/test_truncated_chain.dir/test_truncated_chain.cpp.o.d"
  "test_truncated_chain"
  "test_truncated_chain.pdb"
  "test_truncated_chain[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_truncated_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
