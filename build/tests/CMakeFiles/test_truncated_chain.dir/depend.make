# Empty dependencies file for test_truncated_chain.
# This may be replaced when dependencies are built.
