file(REMOVE_RECURSE
  "CMakeFiles/test_phase_type.dir/test_phase_type.cpp.o"
  "CMakeFiles/test_phase_type.dir/test_phase_type.cpp.o.d"
  "test_phase_type"
  "test_phase_type.pdb"
  "test_phase_type[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phase_type.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
