file(REMOVE_RECURSE
  "CMakeFiles/test_quantiles_and_tracefit.dir/test_quantiles_and_tracefit.cpp.o"
  "CMakeFiles/test_quantiles_and_tracefit.dir/test_quantiles_and_tracefit.cpp.o.d"
  "test_quantiles_and_tracefit"
  "test_quantiles_and_tracefit.pdb"
  "test_quantiles_and_tracefit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quantiles_and_tracefit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
