# Empty compiler generated dependencies file for test_quantiles_and_tracefit.
# This may be replaced when dependencies are built.
