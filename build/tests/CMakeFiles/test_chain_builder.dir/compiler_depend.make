# Empty compiler generated dependencies file for test_chain_builder.
# This may be replaced when dependencies are built.
