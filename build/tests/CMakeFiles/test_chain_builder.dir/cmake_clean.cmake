file(REMOVE_RECURSE
  "CMakeFiles/test_chain_builder.dir/test_chain_builder.cpp.o"
  "CMakeFiles/test_chain_builder.dir/test_chain_builder.cpp.o.d"
  "test_chain_builder"
  "test_chain_builder.pdb"
  "test_chain_builder[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_chain_builder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
