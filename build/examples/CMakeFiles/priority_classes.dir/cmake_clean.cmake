file(REMOVE_RECURSE
  "CMakeFiles/priority_classes.dir/priority_classes.cpp.o"
  "CMakeFiles/priority_classes.dir/priority_classes.cpp.o.d"
  "priority_classes"
  "priority_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priority_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
