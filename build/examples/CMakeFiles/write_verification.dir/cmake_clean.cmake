file(REMOVE_RECURSE
  "CMakeFiles/write_verification.dir/write_verification.cpp.o"
  "CMakeFiles/write_verification.dir/write_verification.cpp.o.d"
  "write_verification"
  "write_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/write_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
