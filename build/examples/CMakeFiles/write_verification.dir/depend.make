# Empty dependencies file for write_verification.
# This may be replaced when dependencies are built.
