# Empty compiler generated dependencies file for perfbg_cli.
# This may be replaced when dependencies are built.
