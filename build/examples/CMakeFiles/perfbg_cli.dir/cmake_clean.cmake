file(REMOVE_RECURSE
  "CMakeFiles/perfbg_cli.dir/perfbg_cli.cpp.o"
  "CMakeFiles/perfbg_cli.dir/perfbg_cli.cpp.o.d"
  "perfbg_cli"
  "perfbg_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfbg_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
