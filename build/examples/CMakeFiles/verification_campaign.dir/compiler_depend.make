# Empty compiler generated dependencies file for verification_campaign.
# This may be replaced when dependencies are built.
