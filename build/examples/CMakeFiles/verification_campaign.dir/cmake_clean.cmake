file(REMOVE_RECURSE
  "CMakeFiles/verification_campaign.dir/verification_campaign.cpp.o"
  "CMakeFiles/verification_campaign.dir/verification_campaign.cpp.o.d"
  "verification_campaign"
  "verification_campaign.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/verification_campaign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
