# Empty compiler generated dependencies file for scrubbing_idle_wait.
# This may be replaced when dependencies are built.
