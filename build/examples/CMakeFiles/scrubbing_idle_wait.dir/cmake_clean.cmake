file(REMOVE_RECURSE
  "CMakeFiles/scrubbing_idle_wait.dir/scrubbing_idle_wait.cpp.o"
  "CMakeFiles/scrubbing_idle_wait.dir/scrubbing_idle_wait.cpp.o.d"
  "scrubbing_idle_wait"
  "scrubbing_idle_wait.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scrubbing_idle_wait.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
