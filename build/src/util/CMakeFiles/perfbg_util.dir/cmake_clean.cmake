file(REMOVE_RECURSE
  "CMakeFiles/perfbg_util.dir/flags.cpp.o"
  "CMakeFiles/perfbg_util.dir/flags.cpp.o.d"
  "CMakeFiles/perfbg_util.dir/optimize.cpp.o"
  "CMakeFiles/perfbg_util.dir/optimize.cpp.o.d"
  "CMakeFiles/perfbg_util.dir/table.cpp.o"
  "CMakeFiles/perfbg_util.dir/table.cpp.o.d"
  "libperfbg_util.a"
  "libperfbg_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfbg_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
