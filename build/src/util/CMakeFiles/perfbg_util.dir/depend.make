# Empty dependencies file for perfbg_util.
# This may be replaced when dependencies are built.
