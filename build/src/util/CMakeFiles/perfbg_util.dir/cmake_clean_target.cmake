file(REMOVE_RECURSE
  "libperfbg_util.a"
)
