file(REMOVE_RECURSE
  "libperfbg_workloads.a"
)
