file(REMOVE_RECURSE
  "CMakeFiles/perfbg_workloads.dir/presets.cpp.o"
  "CMakeFiles/perfbg_workloads.dir/presets.cpp.o.d"
  "CMakeFiles/perfbg_workloads.dir/trace.cpp.o"
  "CMakeFiles/perfbg_workloads.dir/trace.cpp.o.d"
  "libperfbg_workloads.a"
  "libperfbg_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfbg_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
