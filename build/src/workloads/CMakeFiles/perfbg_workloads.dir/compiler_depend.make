# Empty compiler generated dependencies file for perfbg_workloads.
# This may be replaced when dependencies are built.
