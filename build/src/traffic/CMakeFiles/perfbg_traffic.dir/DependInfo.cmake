
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/traffic/fitting.cpp" "src/traffic/CMakeFiles/perfbg_traffic.dir/fitting.cpp.o" "gcc" "src/traffic/CMakeFiles/perfbg_traffic.dir/fitting.cpp.o.d"
  "/root/repo/src/traffic/map_process.cpp" "src/traffic/CMakeFiles/perfbg_traffic.dir/map_process.cpp.o" "gcc" "src/traffic/CMakeFiles/perfbg_traffic.dir/map_process.cpp.o.d"
  "/root/repo/src/traffic/phase_type.cpp" "src/traffic/CMakeFiles/perfbg_traffic.dir/phase_type.cpp.o" "gcc" "src/traffic/CMakeFiles/perfbg_traffic.dir/phase_type.cpp.o.d"
  "/root/repo/src/traffic/processes.cpp" "src/traffic/CMakeFiles/perfbg_traffic.dir/processes.cpp.o" "gcc" "src/traffic/CMakeFiles/perfbg_traffic.dir/processes.cpp.o.d"
  "/root/repo/src/traffic/sampler.cpp" "src/traffic/CMakeFiles/perfbg_traffic.dir/sampler.cpp.o" "gcc" "src/traffic/CMakeFiles/perfbg_traffic.dir/sampler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/perfbg_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/markov/CMakeFiles/perfbg_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/perfbg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
