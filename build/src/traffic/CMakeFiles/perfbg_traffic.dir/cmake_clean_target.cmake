file(REMOVE_RECURSE
  "libperfbg_traffic.a"
)
