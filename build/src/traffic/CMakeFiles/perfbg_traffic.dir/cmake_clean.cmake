file(REMOVE_RECURSE
  "CMakeFiles/perfbg_traffic.dir/fitting.cpp.o"
  "CMakeFiles/perfbg_traffic.dir/fitting.cpp.o.d"
  "CMakeFiles/perfbg_traffic.dir/map_process.cpp.o"
  "CMakeFiles/perfbg_traffic.dir/map_process.cpp.o.d"
  "CMakeFiles/perfbg_traffic.dir/phase_type.cpp.o"
  "CMakeFiles/perfbg_traffic.dir/phase_type.cpp.o.d"
  "CMakeFiles/perfbg_traffic.dir/processes.cpp.o"
  "CMakeFiles/perfbg_traffic.dir/processes.cpp.o.d"
  "CMakeFiles/perfbg_traffic.dir/sampler.cpp.o"
  "CMakeFiles/perfbg_traffic.dir/sampler.cpp.o.d"
  "libperfbg_traffic.a"
  "libperfbg_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfbg_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
