# Empty compiler generated dependencies file for perfbg_traffic.
# This may be replaced when dependencies are built.
