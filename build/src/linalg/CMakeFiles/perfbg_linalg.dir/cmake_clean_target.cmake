file(REMOVE_RECURSE
  "libperfbg_linalg.a"
)
