# Empty dependencies file for perfbg_linalg.
# This may be replaced when dependencies are built.
