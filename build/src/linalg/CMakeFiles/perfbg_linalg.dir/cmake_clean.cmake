file(REMOVE_RECURSE
  "CMakeFiles/perfbg_linalg.dir/lu.cpp.o"
  "CMakeFiles/perfbg_linalg.dir/lu.cpp.o.d"
  "CMakeFiles/perfbg_linalg.dir/matrix.cpp.o"
  "CMakeFiles/perfbg_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/perfbg_linalg.dir/spectral.cpp.o"
  "CMakeFiles/perfbg_linalg.dir/spectral.cpp.o.d"
  "libperfbg_linalg.a"
  "libperfbg_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfbg_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
