# Empty dependencies file for perfbg_markov.
# This may be replaced when dependencies are built.
