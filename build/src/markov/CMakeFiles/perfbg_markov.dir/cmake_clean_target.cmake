file(REMOVE_RECURSE
  "libperfbg_markov.a"
)
