file(REMOVE_RECURSE
  "CMakeFiles/perfbg_markov.dir/stationary.cpp.o"
  "CMakeFiles/perfbg_markov.dir/stationary.cpp.o.d"
  "CMakeFiles/perfbg_markov.dir/transient.cpp.o"
  "CMakeFiles/perfbg_markov.dir/transient.cpp.o.d"
  "libperfbg_markov.a"
  "libperfbg_markov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfbg_markov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
