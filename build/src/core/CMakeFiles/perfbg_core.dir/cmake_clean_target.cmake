file(REMOVE_RECURSE
  "libperfbg_core.a"
)
