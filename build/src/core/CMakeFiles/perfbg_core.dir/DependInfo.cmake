
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/chain_builder.cpp" "src/core/CMakeFiles/perfbg_core.dir/chain_builder.cpp.o" "gcc" "src/core/CMakeFiles/perfbg_core.dir/chain_builder.cpp.o.d"
  "/root/repo/src/core/model.cpp" "src/core/CMakeFiles/perfbg_core.dir/model.cpp.o" "gcc" "src/core/CMakeFiles/perfbg_core.dir/model.cpp.o.d"
  "/root/repo/src/core/multiclass.cpp" "src/core/CMakeFiles/perfbg_core.dir/multiclass.cpp.o" "gcc" "src/core/CMakeFiles/perfbg_core.dir/multiclass.cpp.o.d"
  "/root/repo/src/core/state_space.cpp" "src/core/CMakeFiles/perfbg_core.dir/state_space.cpp.o" "gcc" "src/core/CMakeFiles/perfbg_core.dir/state_space.cpp.o.d"
  "/root/repo/src/core/truncated_chain.cpp" "src/core/CMakeFiles/perfbg_core.dir/truncated_chain.cpp.o" "gcc" "src/core/CMakeFiles/perfbg_core.dir/truncated_chain.cpp.o.d"
  "/root/repo/src/core/vacation.cpp" "src/core/CMakeFiles/perfbg_core.dir/vacation.cpp.o" "gcc" "src/core/CMakeFiles/perfbg_core.dir/vacation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/qbd/CMakeFiles/perfbg_qbd.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/perfbg_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/markov/CMakeFiles/perfbg_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/perfbg_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/perfbg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
