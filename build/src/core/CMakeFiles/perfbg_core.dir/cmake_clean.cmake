file(REMOVE_RECURSE
  "CMakeFiles/perfbg_core.dir/chain_builder.cpp.o"
  "CMakeFiles/perfbg_core.dir/chain_builder.cpp.o.d"
  "CMakeFiles/perfbg_core.dir/model.cpp.o"
  "CMakeFiles/perfbg_core.dir/model.cpp.o.d"
  "CMakeFiles/perfbg_core.dir/multiclass.cpp.o"
  "CMakeFiles/perfbg_core.dir/multiclass.cpp.o.d"
  "CMakeFiles/perfbg_core.dir/state_space.cpp.o"
  "CMakeFiles/perfbg_core.dir/state_space.cpp.o.d"
  "CMakeFiles/perfbg_core.dir/truncated_chain.cpp.o"
  "CMakeFiles/perfbg_core.dir/truncated_chain.cpp.o.d"
  "CMakeFiles/perfbg_core.dir/vacation.cpp.o"
  "CMakeFiles/perfbg_core.dir/vacation.cpp.o.d"
  "libperfbg_core.a"
  "libperfbg_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfbg_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
