# Empty compiler generated dependencies file for perfbg_core.
# This may be replaced when dependencies are built.
