file(REMOVE_RECURSE
  "libperfbg_qbd.a"
)
