
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qbd/qbd.cpp" "src/qbd/CMakeFiles/perfbg_qbd.dir/qbd.cpp.o" "gcc" "src/qbd/CMakeFiles/perfbg_qbd.dir/qbd.cpp.o.d"
  "/root/repo/src/qbd/rmatrix.cpp" "src/qbd/CMakeFiles/perfbg_qbd.dir/rmatrix.cpp.o" "gcc" "src/qbd/CMakeFiles/perfbg_qbd.dir/rmatrix.cpp.o.d"
  "/root/repo/src/qbd/solution.cpp" "src/qbd/CMakeFiles/perfbg_qbd.dir/solution.cpp.o" "gcc" "src/qbd/CMakeFiles/perfbg_qbd.dir/solution.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/perfbg_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/markov/CMakeFiles/perfbg_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/perfbg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
