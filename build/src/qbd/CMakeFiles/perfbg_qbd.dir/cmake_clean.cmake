file(REMOVE_RECURSE
  "CMakeFiles/perfbg_qbd.dir/qbd.cpp.o"
  "CMakeFiles/perfbg_qbd.dir/qbd.cpp.o.d"
  "CMakeFiles/perfbg_qbd.dir/rmatrix.cpp.o"
  "CMakeFiles/perfbg_qbd.dir/rmatrix.cpp.o.d"
  "CMakeFiles/perfbg_qbd.dir/solution.cpp.o"
  "CMakeFiles/perfbg_qbd.dir/solution.cpp.o.d"
  "libperfbg_qbd.a"
  "libperfbg_qbd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfbg_qbd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
