# Empty dependencies file for perfbg_qbd.
# This may be replaced when dependencies are built.
