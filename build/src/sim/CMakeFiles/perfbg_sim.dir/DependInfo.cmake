
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/fgbg_simulator.cpp" "src/sim/CMakeFiles/perfbg_sim.dir/fgbg_simulator.cpp.o" "gcc" "src/sim/CMakeFiles/perfbg_sim.dir/fgbg_simulator.cpp.o.d"
  "/root/repo/src/sim/multiclass_simulator.cpp" "src/sim/CMakeFiles/perfbg_sim.dir/multiclass_simulator.cpp.o" "gcc" "src/sim/CMakeFiles/perfbg_sim.dir/multiclass_simulator.cpp.o.d"
  "/root/repo/src/sim/statistics.cpp" "src/sim/CMakeFiles/perfbg_sim.dir/statistics.cpp.o" "gcc" "src/sim/CMakeFiles/perfbg_sim.dir/statistics.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/perfbg_core.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/perfbg_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/qbd/CMakeFiles/perfbg_qbd.dir/DependInfo.cmake"
  "/root/repo/build/src/markov/CMakeFiles/perfbg_markov.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/perfbg_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/perfbg_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
