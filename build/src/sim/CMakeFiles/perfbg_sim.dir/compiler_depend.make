# Empty compiler generated dependencies file for perfbg_sim.
# This may be replaced when dependencies are built.
