file(REMOVE_RECURSE
  "CMakeFiles/perfbg_sim.dir/fgbg_simulator.cpp.o"
  "CMakeFiles/perfbg_sim.dir/fgbg_simulator.cpp.o.d"
  "CMakeFiles/perfbg_sim.dir/multiclass_simulator.cpp.o"
  "CMakeFiles/perfbg_sim.dir/multiclass_simulator.cpp.o.d"
  "CMakeFiles/perfbg_sim.dir/statistics.cpp.o"
  "CMakeFiles/perfbg_sim.dir/statistics.cpp.o.d"
  "libperfbg_sim.a"
  "libperfbg_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfbg_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
