file(REMOVE_RECURSE
  "libperfbg_sim.a"
)
