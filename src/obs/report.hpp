// Structured run report: one JSON document per tool run bundling the run
// configuration, the full metrics registry dump, and any named event traces
// (solver convergence, per-batch simulator estimates, ...). Every bench and
// the CLI emit this schema behind --metrics-json so downstream tooling can
// track runs over time.
#pragma once

#include <deque>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace perfbg::obs {

/// Schema identifier stamped into every report; bump on breaking layout
/// changes so consumers can dispatch.
inline constexpr const char* kRunReportSchema = "perfbg.run_report.v1";

class RunReport {
 public:
  explicit RunReport(std::string tool) : tool_(std::move(tool)) {}

  const std::string& tool() const { return tool_; }

  /// The registry instrumented code writes into; pass `&report.metrics()`
  /// down the stack.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Records one run-configuration entry (workload name, p, buffer, ...).
  void set_config(const std::string& key, JsonValue value);

  /// Appends one per-point error record to the report's "errors" array.
  /// Sweeps that degrade gracefully (bench::try_solve_point, perfbg_cli)
  /// call this with {"code", "message", point coordinates, ...} objects so a
  /// failed point is visible in the report instead of aborting the run.
  void add_error(JsonValue record);
  /// Number of error records accumulated so far.
  std::size_t error_count() const;

  /// Appends one per-solve numerical-health record to the report's "health"
  /// array. Thread-safe: sweep workers record concurrently; serialisation
  /// sorts records by (key, content) so parallel runs stay byte-identical to
  /// sequential ones.
  void add_health(const SolveHealth& health);
  /// Number of health records accumulated so far.
  std::size_t health_count() const;

  /// Named in-memory trace; created on first use. Instrumented code records
  /// TraceEvents into it, the report serializes them under "traces".<name>.
  VectorSink& trace(const std::string& name);
  const std::deque<std::pair<std::string, VectorSink>>& traces() const {
    return traces_;
  }

  /// {"schema", "tool", "config", "counters", "gauges", "timers",
  ///  "histograms", "errors", "health", "traces"}.
  JsonValue to_json(bool include_timers = true) const;

  /// Writes the pretty-printed report; throws std::runtime_error on I/O
  /// failure.
  void write_json(const std::string& path) const;

  /// Appends every trace event (all traces, in order) as JSON lines; throws
  /// std::runtime_error on I/O failure.
  void write_trace_jsonl(const std::string& path) const;

  /// Human-readable digest: config, metric summary, trace sizes.
  void print_summary(std::ostream& out) const;

 private:
  std::string tool_;
  JsonValue config_ = JsonValue::object();
  // Guards errors_ and health_: both are fed from sweep worker threads.
  mutable std::mutex mu_;
  JsonValue errors_ = JsonValue::array();
  std::vector<SolveHealth> health_;
  MetricsRegistry metrics_;
  // deque: callers hold VectorSink& across later trace() calls, so the
  // container must not relocate elements when it grows.
  std::deque<std::pair<std::string, VectorSink>> traces_;
};

}  // namespace perfbg::obs
