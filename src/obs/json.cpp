#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace perfbg::obs {

namespace {

[[noreturn]] void kind_error(const char* wanted) {
  throw std::logic_error(std::string("perfbg: JsonValue is not a ") + wanted);
}

void dump_double(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    // JSON has no inf/nan; emit null so the document stays parseable.
    out << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Round-trip at the shortest precision that preserves the value.
  for (int prec = 1; prec < 17; ++prec) {
    char probe[32];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(probe, "%lf", &back);
    if (back == v) {
      out << probe;
      return;
    }
  }
  out << buf;
}

}  // namespace

bool JsonValue::as_bool() const {
  if (const bool* b = std::get_if<bool>(&value_)) return *b;
  kind_error("bool");
}

std::int64_t JsonValue::as_int() const {
  if (const std::int64_t* i = std::get_if<std::int64_t>(&value_)) return *i;
  kind_error("integer");
}

double JsonValue::as_double() const {
  if (const double* d = std::get_if<double>(&value_)) return *d;
  if (const std::int64_t* i = std::get_if<std::int64_t>(&value_))
    return static_cast<double>(*i);
  kind_error("number");
}

const std::string& JsonValue::as_string() const {
  if (const std::string* s = std::get_if<std::string>(&value_)) return *s;
  kind_error("string");
}

const JsonArray& JsonValue::as_array() const {
  if (const JsonArray* a = std::get_if<JsonArray>(&value_)) return *a;
  kind_error("array");
}

JsonArray& JsonValue::as_array() {
  if (JsonArray* a = std::get_if<JsonArray>(&value_)) return *a;
  kind_error("array");
}

const JsonObjectEntries& JsonValue::as_object() const {
  if (const JsonObjectEntries* o = std::get_if<JsonObjectEntries>(&value_)) return *o;
  kind_error("object");
}

JsonValue& JsonValue::set(const std::string& key, JsonValue value) {
  JsonObjectEntries* o = std::get_if<JsonObjectEntries>(&value_);
  if (!o) kind_error("object");
  for (auto& [k, v] : *o) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  o->emplace_back(key, std::move(value));
  return *this;
}

bool JsonValue::contains(const std::string& key) const { return find(key) != nullptr; }

const JsonValue* JsonValue::find(const std::string& key) const {
  const JsonObjectEntries* o = std::get_if<JsonObjectEntries>(&value_);
  if (!o) kind_error("object");
  for (const auto& [k, v] : *o)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const JsonValue* v = find(key);
  if (!v) throw std::out_of_range("perfbg: JSON object has no key '" + key + "'");
  return *v;
}

void JsonValue::push_back(JsonValue value) { as_array().push_back(std::move(value)); }

void json_escape(std::ostream& out, const std::string& s) {
  out << '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\b': out << "\\b"; break;
      case '\f': out << "\\f"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out << buf;
        } else {
          out << static_cast<char>(c);
        }
    }
  }
  out << '"';
}

void JsonValue::dump(std::ostream& out, int indent) const { dump_impl(out, indent, 0); }

std::string JsonValue::dump(int indent) const {
  std::ostringstream os;
  dump(os, indent);
  return os.str();
}

void JsonValue::dump_impl(std::ostream& out, int indent, int depth) const {
  const auto newline_pad = [&](int d) {
    if (indent < 0) return;
    out << '\n';
    for (int i = 0; i < indent * d; ++i) out << ' ';
  };
  switch (kind()) {
    case Kind::kNull: out << "null"; break;
    case Kind::kBool: out << (std::get<bool>(value_) ? "true" : "false"); break;
    case Kind::kInt: out << std::get<std::int64_t>(value_); break;
    case Kind::kDouble: dump_double(out, std::get<double>(value_)); break;
    case Kind::kString: json_escape(out, std::get<std::string>(value_)); break;
    case Kind::kArray: {
      const JsonArray& a = std::get<JsonArray>(value_);
      if (a.empty()) {
        out << "[]";
        break;
      }
      out << '[';
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i) out << (indent < 0 ? "," : ",");
        newline_pad(depth + 1);
        a[i].dump_impl(out, indent, depth + 1);
      }
      newline_pad(depth);
      out << ']';
      break;
    }
    case Kind::kObject: {
      const JsonObjectEntries& o = std::get<JsonObjectEntries>(value_);
      if (o.empty()) {
        out << "{}";
        break;
      }
      out << '{';
      bool first = true;
      for (const auto& [k, v] : o) {
        if (!first) out << ',';
        first = false;
        newline_pad(depth + 1);
        json_escape(out, k);
        out << (indent < 0 ? ":" : ": ");
        v.dump_impl(out, indent, depth + 1);
      }
      newline_pad(depth);
      out << '}';
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(const std::string& text, const JsonLimits& limits)
      : text_(text), limits_(limits) {}

  JsonValue parse_document() {
    if (limits_.max_bytes > 0 && text_.size() > limits_.max_bytes)
      throw std::invalid_argument(
          "perfbg: JSON document of " + std::to_string(text_.size()) +
          " bytes exceeds the " + std::to_string(limits_.max_bytes) +
          "-byte limit");
    skip_ws();
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::invalid_argument("perfbg: JSON parse error at byte " +
                                std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n]) ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue parse_value() {
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue(nullptr);
        fail("bad literal");
      // JSON has no NaN/Infinity literals; name them so a frame produced by a
      // printf-style writer gets an actionable diagnosis.
      case 'N':
      case 'I':
        fail("NaN/Infinity literals are not valid JSON");
      default: return parse_number();
    }
  }

  /// RAII depth guard: each nested object/array costs one recursive
  /// parse_value frame, so the bound is what stands between an adversarial
  /// "[[[[..." frame and a stack overflow.
  struct DepthGuard {
    Parser& p;
    explicit DepthGuard(Parser& parser) : p(parser) {
      if (++p.depth_ > p.limits_.max_depth)
        p.fail("nesting deeper than " + std::to_string(p.limits_.max_depth) +
               " levels");
    }
    ~DepthGuard() { --p.depth_; }
  };

  JsonValue parse_object() {
    DepthGuard depth(*this);
    expect('{');
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      obj.set(key, parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  JsonValue parse_array() {
    DepthGuard depth(*this);
    expect('[');
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      skip_ws();
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs unsupported —
          // reports only emit ASCII \u escapes for control characters).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (pos_ < text_.size() && (text_[pos_] == 'I' || text_[pos_] == 'N'))
      fail("NaN/Infinity literals are not valid JSON");
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-'))
      fail("expected a number");
    const std::string token = text_.substr(start, pos_ - start);
    try {
      if (!is_double) return JsonValue(static_cast<std::int64_t>(std::stoll(token)));
      return JsonValue(std::stod(token));
    } catch (const std::exception&) {
      pos_ = start;
      fail("malformed number '" + token + "'");
    }
  }

  const std::string& text_;
  const JsonLimits& limits_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

JsonValue parse_json(const std::string& text, const JsonLimits& limits) {
  return Parser(text, limits).parse_document();
}

}  // namespace perfbg::obs
