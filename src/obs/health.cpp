#include "obs/health.hpp"

#include <cmath>

namespace perfbg::obs {

const char* solve_status_name(SolveStatus status) {
  switch (status) {
    case SolveStatus::kConverged: return "converged";
    case SolveStatus::kFallback: return "fallback";
    case SolveStatus::kFailed: return "failed";
    case SolveStatus::kCancelled: return "cancelled";
  }
  return "?";
}

double SolveHealth::budget_consumed() const {
  if (max_iters <= 0 || iterations < 0) return -1.0;
  return static_cast<double>(iterations) / static_cast<double>(max_iters);
}

JsonValue SolveHealth::to_json() const {
  JsonValue v = JsonValue::object();
  v.set("status", JsonValue(solve_status_name(status)));
  v.set("key", JsonValue(key));
  v.set("iterations", JsonValue(iterations));
  v.set("max_iters", JsonValue(max_iters));
  v.set("budget_consumed", JsonValue(budget_consumed()));
  v.set("final_residual", JsonValue(final_residual));
  v.set("tolerance_used", JsonValue(tolerance_used));
  v.set("first_increment", JsonValue(first_increment));
  v.set("last_increment", JsonValue(last_increment));
  v.set("decay_rate", JsonValue(decay_rate));
  v.set("rung", JsonValue(rung));
  v.set("rung_name", JsonValue(rung_name));
  v.set("rungs_attempted", JsonValue(rungs_attempted));
  v.set("attempt", JsonValue(attempt));
  v.set("warm_start_used", JsonValue(warm_start_used));
  v.set("warm_start_iterations_saved", JsonValue(warm_start_iterations_saved));
  v.set("drift_ratio", JsonValue(drift_ratio));
  v.set("spectral_radius", JsonValue(spectral_radius));
  v.set("error_code", JsonValue(error_code));
  v.set("error_message", JsonValue(error_message));
  return v;
}

double geometric_decay_rate(double first_increment, double last_increment,
                            int iterations) {
  if (iterations < 2 || first_increment <= 0.0 || last_increment <= 0.0)
    return -1.0;
  const double rate = std::pow(last_increment / first_increment,
                               1.0 / static_cast<double>(iterations - 1));
  return std::isfinite(rate) ? rate : -1.0;
}

SolveHealth failed_solve_health(const std::string& error_code,
                                const std::string& error_message) {
  SolveHealth h;
  h.status = (error_code == "kDeadlineExceeded" || error_code == "kInterrupted")
                 ? SolveStatus::kCancelled
                 : SolveStatus::kFailed;
  h.error_code = error_code;
  h.error_message = error_message;
  h.rung_name.clear();
  h.rungs_attempted = 0;
  return h;
}

}  // namespace perfbg::obs
