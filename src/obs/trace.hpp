// Structured event traces: a TraceEvent is a named, ordered bag of JSON
// scalar fields; sinks serialize events as JSON-lines or CSV, or buffer them
// in memory for report assembly and tests.
#pragma once

#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace perfbg::obs {

/// One trace record. Fields keep insertion order so exporters emit stable
/// column/key layouts.
class TraceEvent {
 public:
  explicit TraceEvent(std::string name) : name_(std::move(name)) {}

  /// Adds (or overwrites) one field; chainable.
  TraceEvent& with(const std::string& key, JsonValue value);

  const std::string& name() const { return name_; }
  const JsonObjectEntries& fields() const { return fields_; }
  const JsonValue* find(const std::string& key) const;

  /// {"event": name, <fields...>}.
  JsonValue to_json() const;

 private:
  std::string name_;
  JsonObjectEntries fields_;
};

/// Receiver interface for trace events.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void record(const TraceEvent& event) = 0;
  virtual void flush() {}
};

/// Buffers events in memory (report assembly, tests).
class VectorSink : public TraceSink {
 public:
  void record(const TraceEvent& event) override { events_.push_back(event); }
  const std::vector<TraceEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

 private:
  std::vector<TraceEvent> events_;
};

/// One compact JSON object per line: {"event": "...", ...}. The stream is
/// borrowed; the caller keeps it alive for the sink's lifetime.
class JsonLinesSink : public TraceSink {
 public:
  explicit JsonLinesSink(std::ostream& out) : out_(out) {}
  void record(const TraceEvent& event) override;
  void flush() override { out_.flush(); }

 private:
  std::ostream& out_;
};

/// CSV with a header derived from the first event (column "event" plus that
/// event's field keys, in order). Later events must carry exactly the same
/// field keys; mixing event shapes in one CSV throws.
class CsvSink : public TraceSink {
 public:
  explicit CsvSink(std::ostream& out) : out_(out) {}
  void record(const TraceEvent& event) override;
  void flush() override { out_.flush(); }

 private:
  std::ostream& out_;
  std::vector<std::string> columns_;  // empty until the first event
};

/// Replays a buffered trace into another sink (e.g. VectorSink -> file).
void replay(const std::vector<TraceEvent>& events, TraceSink& into);

}  // namespace perfbg::obs
