#include "obs/span.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <stdexcept>
#include <unordered_map>

#include "util/check.hpp"

namespace perfbg::obs {

namespace {

/// The process-wide current collector; nullptr almost always.
std::atomic<SpanCollector*> g_current{nullptr};

/// Per-thread nesting state: the innermost open span, its depth, and the
/// trace id it belongs to. Restored by each ScopedSpan as it closes, so the
/// stack discipline needs no heap.
struct ThreadSpanState {
  std::int64_t current_parent = -1;
  int depth = 0;
  std::uint64_t trace_id = 0;
};
thread_local ThreadSpanState t_span_state;

std::uint32_t this_thread_index() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace

std::string trace_id_hex(std::uint64_t trace_id) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i, trace_id >>= 4) out[static_cast<std::size_t>(i)] = digits[trace_id & 0xf];
  return out;
}

bool parse_trace_id_hex(const std::string& text, std::uint64_t& out) {
  std::size_t start = 0;
  if (text.size() > 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) start = 2;
  const std::size_t n = text.size() - start;
  if (n == 0 || n > 16) return false;
  std::uint64_t value = 0;
  for (std::size_t i = start; i < text.size(); ++i) {
    const char c = text[i];
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else return false;
    value = (value << 4) | static_cast<std::uint64_t>(digit);
  }
  out = value;
  return true;
}

// ---------------------------------------------------------------------------
// SpanCollector
// ---------------------------------------------------------------------------

SpanCollector::SpanCollector() : epoch_(std::chrono::steady_clock::now()) {}

SpanCollector::~SpanCollector() { uninstall(); }

void SpanCollector::install() {
  SpanCollector* expected = nullptr;
  PERFBG_REQUIRE(g_current.compare_exchange_strong(expected, this) || expected == this,
                 "a SpanCollector is already installed");
}

void SpanCollector::uninstall() {
  SpanCollector* expected = this;
  g_current.compare_exchange_strong(expected, nullptr);
}

SpanCollector* SpanCollector::current() {
  return g_current.load(std::memory_order_relaxed);
}

double SpanCollector::now_us() const {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                   epoch_)
      .count();
}

void SpanCollector::record(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(std::move(record));
}

std::vector<SpanRecord> SpanCollector::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

std::size_t SpanCollector::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

void SpanCollector::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
}

JsonValue SpanCollector::chrome_trace_json() const {
  const std::vector<SpanRecord> records = snapshot();
  JsonValue events = JsonValue::array();
  for (const SpanRecord& r : records) {
    JsonValue e = JsonValue::object();
    e.set("name", JsonValue(r.name));
    e.set("ph", JsonValue("X"));
    e.set("ts", JsonValue(r.start_us));
    e.set("dur", JsonValue(r.dur_us));
    e.set("pid", JsonValue(1));
    e.set("tid", JsonValue(static_cast<std::int64_t>(r.tid)));
    JsonValue args = JsonValue::object();
    // The request linkage rides in args so a chrome/Perfetto search for the
    // wire trace id lands on every span of that request, across threads.
    if (r.trace_id != 0) args.set("trace_id", JsonValue(trace_id_hex(r.trace_id)));
    for (const auto& [k, v] : r.args) args.set(k, v);
    e.set("args", std::move(args));
    events.push_back(std::move(e));
  }
  return events;
}

void SpanCollector::write_chrome_trace(std::ostream& out) const {
  chrome_trace_json().dump(out, 1);
  out << '\n';
}

void SpanCollector::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("perfbg: cannot open '" + path + "' for writing");
  write_chrome_trace(out);
  out.flush();
  if (!out) throw std::runtime_error("perfbg: failed writing chrome trace to '" + path + "'");
}

const ProfileNode* ProfileNode::find(const std::string& child_name) const {
  for (const ProfileNode& c : children)
    if (c.name == child_name) return &c;
  return nullptr;
}

namespace {

ProfileNode& find_or_add_child(ProfileNode& node, const std::string& name) {
  for (ProfileNode& c : node.children)
    if (c.name == name) return c;
  node.children.push_back(ProfileNode{name, 0, 0.0, 0.0, {}});
  return node.children.back();
}

void finalize_profile(ProfileNode& node) {
  double child_total = 0.0;
  for (ProfileNode& c : node.children) {
    finalize_profile(c);
    child_total += c.total_ms;
  }
  node.self_ms = std::max(0.0, node.total_ms - child_total);
  std::sort(node.children.begin(), node.children.end(),
            [](const ProfileNode& a, const ProfileNode& b) {
              return a.total_ms > b.total_ms;
            });
}

}  // namespace

ProfileNode SpanCollector::profile_tree() const {
  const std::vector<SpanRecord> records = snapshot();
  std::unordered_map<std::int64_t, const SpanRecord*> by_id;
  by_id.reserve(records.size());
  for (const SpanRecord& r : records) by_id.emplace(r.id, &r);

  ProfileNode root{"<root>", 0, 0.0, 0.0, {}};
  std::vector<const SpanRecord*> chain;
  for (const SpanRecord& r : records) {
    // Ancestor name chain, outermost first. A parent id without a record
    // (span still open at snapshot time) truncates the chain there, making
    // the orphan a root — depth information is preserved in the record.
    chain.clear();
    chain.push_back(&r);
    std::int64_t parent = r.parent;
    while (parent >= 0) {
      const auto it = by_id.find(parent);
      if (it == by_id.end()) break;
      chain.push_back(it->second);
      parent = it->second->parent;
    }
    ProfileNode* node = &root;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it)
      node = &find_or_add_child(*node, (*it)->name);
    node->count += 1;
    node->total_ms += r.dur_us / 1000.0;
  }
  for (const ProfileNode& c : root.children) root.total_ms += c.total_ms;
  finalize_profile(root);
  return root;
}

JsonValue profile_to_json(const ProfileNode& node) {
  JsonValue v = JsonValue::object();
  v.set("name", JsonValue(node.name));
  v.set("count", JsonValue(node.count));
  v.set("total_ms", JsonValue(node.total_ms));
  v.set("self_ms", JsonValue(node.self_ms));
  JsonValue children = JsonValue::array();
  for (const ProfileNode& c : node.children) children.push_back(profile_to_json(c));
  v.set("children", std::move(children));
  return v;
}

JsonValue top_spans_json(const ProfileNode& root, std::size_t limit) {
  struct Flat {
    std::uint64_t count = 0;
    double total_ms = 0.0;
    double self_ms = 0.0;
  };
  std::map<std::string, Flat> by_name;
  // Iterative walk; the synthetic root itself is excluded.
  std::vector<const ProfileNode*> stack;
  for (const ProfileNode& c : root.children) stack.push_back(&c);
  while (!stack.empty()) {
    const ProfileNode* n = stack.back();
    stack.pop_back();
    Flat& f = by_name[n->name];
    f.count += n->count;
    f.total_ms += n->total_ms;
    f.self_ms += n->self_ms;
    for (const ProfileNode& c : n->children) stack.push_back(&c);
  }
  std::vector<std::pair<std::string, Flat>> rows(by_name.begin(), by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.self_ms > b.second.self_ms;
  });
  if (rows.size() > limit) rows.resize(limit);
  JsonValue out = JsonValue::array();
  for (const auto& [name, f] : rows) {
    JsonValue row = JsonValue::object();
    row.set("name", JsonValue(name));
    row.set("count", JsonValue(f.count));
    row.set("total_ms", JsonValue(f.total_ms));
    row.set("self_ms", JsonValue(f.self_ms));
    out.push_back(std::move(row));
  }
  return out;
}

std::map<std::string, HistogramStat> span_duration_stats(
    const std::vector<SpanRecord>& records) {
  // One shared layout keeps every span comparable and the baseline compact:
  // 0.1 us .. 10 s in ~5.9% geometric steps.
  static const std::vector<double> kBounds = log_buckets(1e-4, 1e4, 10);
  std::map<std::string, HistogramStat> stats;
  for (const SpanRecord& r : records) {
    auto it = stats.find(r.name);
    if (it == stats.end()) it = stats.emplace(r.name, make_histogram(kBounds)).first;
    it->second.observe_value(r.dur_us / 1000.0);
  }
  return stats;
}

JsonValue span_tail_stats_json(const std::vector<SpanRecord>& records) {
  JsonValue out = JsonValue::object();
  for (const auto& [name, h] : span_duration_stats(records)) {
    JsonValue row = JsonValue::object();
    row.set("count", JsonValue(h.count));
    row.set("total_ms", JsonValue(h.sum));
    row.set("p50_ms", JsonValue(h.p50()));
    row.set("p99_ms", JsonValue(h.p99()));
    row.set("max_ms", JsonValue(h.max));
    out.set(name, std::move(row));
  }
  return out;
}

// ---------------------------------------------------------------------------
// ScopedSpan
// ---------------------------------------------------------------------------

ScopedSpan::ScopedSpan(const char* name) : collector_(SpanCollector::current()) {
  if (!collector_) return;
  const ThreadSpanState& st = t_span_state;
  open(name, st.current_parent, st.depth, st.trace_id);
}

ScopedSpan::ScopedSpan(const char* name, const TraceContext& link)
    : collector_(SpanCollector::current()) {
  if (!collector_) return;
  // The explicit parent lives on another thread (or is -1 for a request
  // root), so its depth is unknowable here; depth restarts at 0 and readers
  // follow the parent ids, which stay exact.
  open(name, link.parent_span, 0, link.trace_id);
}

void ScopedSpan::open(const char* name, std::int64_t parent, int depth,
                      std::uint64_t trace_id) {
  name_ = name;
  id_ = collector_->next_id();
  parent_ = parent;
  depth_ = depth;
  trace_id_ = trace_id;
  ThreadSpanState& st = t_span_state;
  saved_parent_ = st.current_parent;
  saved_depth_ = st.depth;
  saved_trace_id_ = st.trace_id;
  st.current_parent = id_;
  st.depth = depth + 1;
  st.trace_id = trace_id;
  start_us_ = collector_->now_us();
}

void ScopedSpan::end() {
  if (!collector_) return;
  const double dur_us = collector_->now_us() - start_us_;
  ThreadSpanState& st = t_span_state;
  st.current_parent = saved_parent_;
  st.depth = saved_depth_;
  st.trace_id = saved_trace_id_;
  SpanRecord r;
  r.name = name_;
  r.start_us = start_us_;
  r.dur_us = dur_us;
  r.id = id_;
  r.parent = parent_;
  r.depth = depth_;
  r.tid = this_thread_index();
  r.trace_id = trace_id_;
  r.args = std::move(args_);
  collector_->record(std::move(r));
  collector_ = nullptr;
}

}  // namespace perfbg::obs
