#include "obs/recorder.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "obs/span.hpp"
#include "util/failpoint.hpp"

namespace perfbg::obs {

JsonValue RequestTrace::to_json() const {
  JsonValue v = JsonValue::object();
  v.set("seq", JsonValue(seq));
  v.set("trace_id", JsonValue(trace_id_hex(trace_id)));
  if (leader_trace_id != 0)
    v.set("trace_leader", JsonValue(trace_id_hex(leader_trace_id)));
  if (!id.empty()) v.set("id", JsonValue(id));
  v.set("key", JsonValue(key));
  if (!model_class.empty()) v.set("model_class", JsonValue(model_class));
  v.set("outcome", JsonValue(outcome));
  if (queue_ms >= 0.0) v.set("queue_ms", JsonValue(queue_ms));
  v.set("wall_ms", JsonValue(wall_ms));
  if (!phases.is_null()) v.set("phases", phases);
  if (!health.is_null()) v.set("health", health);
  return v;
}

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(capacity_);
}

std::uint64_t FlightRecorder::record(RequestTrace trace) {
  std::lock_guard<std::mutex> lock(mu_);
  if (failpoint("obs.recorder.append") != 0) {
    // Injected allocation failure: drop the record whole — a lossy ring is
    // fine, a ring holding a half-moved entry is not.
    ++dropped_;
    return 0;
  }
  trace.seq = ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(trace));
  } else {
    ring_[next_] = std::move(trace);
  }
  next_ = (next_ + 1) % capacity_;
  return total_;
}

std::size_t FlightRecorder::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ring_.size();
}

std::uint64_t FlightRecorder::total() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::uint64_t FlightRecorder::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::vector<RequestTrace> FlightRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RequestTrace> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // next_ is the oldest entry once the ring has wrapped.
    for (std::size_t i = 0; i < ring_.size(); ++i)
      out.push_back(ring_[(next_ + i) % capacity_]);
  }
  return out;
}

JsonValue FlightRecorder::to_json() const {
  const std::vector<RequestTrace> entries = snapshot();
  JsonValue v = JsonValue::object();
  v.set("schema", JsonValue(kFlightRecorderSchema));
  v.set("capacity", JsonValue(static_cast<std::int64_t>(capacity_)));
  v.set("total", JsonValue(total()));
  JsonValue arr = JsonValue::array();
  for (const RequestTrace& t : entries) arr.push_back(t.to_json());
  v.set("entries", std::move(arr));
  return v;
}

SlowRequestLog::SlowRequestLog(std::size_t k) : k_(std::max<std::size_t>(1, k)) {}

void SlowRequestLog::offer(const RequestTrace& trace) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.size() >= k_ && trace.wall_ms <= entries_.back().wall_ms) return;
  const auto pos = std::upper_bound(
      entries_.begin(), entries_.end(), trace,
      [](const RequestTrace& a, const RequestTrace& b) { return a.wall_ms > b.wall_ms; });
  entries_.insert(pos, trace);
  if (entries_.size() > k_) entries_.pop_back();
}

std::size_t SlowRequestLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::vector<RequestTrace> SlowRequestLog::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

JsonValue SlowRequestLog::to_json() const {
  JsonValue arr = JsonValue::array();
  for (const RequestTrace& t : snapshot()) arr.push_back(t.to_json());
  return arr;
}

JsonValue recorder_dump_json(const std::string& trigger, const FlightRecorder& recorder,
                             const SlowRequestLog& slow) {
  JsonValue v = JsonValue::object();
  v.set("schema", JsonValue(kFlightRecorderSchema));
  v.set("trigger", JsonValue(trigger));
  v.set("recorder", recorder.to_json());
  v.set("slow", slow.to_json());
  return v;
}

void write_recorder_dump(const std::string& path, const std::string& trigger,
                         const FlightRecorder& recorder, const SlowRequestLog& slow) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("perfbg: cannot open '" + path + "' for writing");
  recorder_dump_json(trigger, recorder, slow).dump(out, 1);
  out << '\n';
  out.flush();
  if (!out)
    throw std::runtime_error("perfbg: failed writing recorder dump to '" + path + "'");
}

}  // namespace perfbg::obs
