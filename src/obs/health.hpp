// Numerical-health telemetry: one structured record per solve, promoting what
// previously lived only in opt-in debug traces (residual trajectory, fallback
// rungs, stability margins) into first-class report data.
//
// The obs layer cannot see qbd types (qbd depends on obs), so SolveHealth is a
// plain value struct: the qbd/core layers fill it from their solver stats, the
// bench/CLI layers stamp the point identity and retry count, and RunReport
// serialises it under the "health" key. Records deliberately carry no
// wall-clock fields — a health record of a deterministic solve is itself
// deterministic, which keeps parallel (--jobs=N) report output byte-stable.
#pragma once

#include <string>

#include "obs/json.hpp"

namespace perfbg::obs {

/// Classification of how a solve ended.
enum class SolveStatus {
  kConverged,  ///< primary algorithm met its tolerance
  kFallback,   ///< converged, but only after descending the fallback ladder
  kFailed,     ///< no rung converged (or the model was rejected outright)
  kCancelled,  ///< deadline or interrupt fired mid-solve
};

/// Lower-case wire name: "converged" / "fallback" / "failed" / "cancelled".
const char* solve_status_name(SolveStatus status);

/// Per-solve numerical-health record. Fields that do not apply to a given
/// solve stay at their defaults and are serialised as-is (negative sentinel =
/// "not observed"), so consumers can distinguish "zero" from "unknown".
struct SolveHealth {
  SolveStatus status = SolveStatus::kConverged;
  /// Deterministic identity of the solved point, e.g.
  /// "email|p=0.5|X=20|util=0.15"; empty for ad-hoc solves.
  std::string key;

  // --- convergence ---
  int iterations = 0;          ///< iterations spent by the winning rung
  int max_iters = 0;           ///< iteration budget that rung ran under
  double final_residual = -1.0;
  double tolerance_used = 0.0;

  // --- residual trajectory summary ---
  double first_increment = -1.0;  ///< inf-norm of the first iteration's update
  double last_increment = -1.0;   ///< inf-norm of the final iteration's update
  /// Geometric mean contraction per iteration,
  /// (last/first)^(1/(iterations-1)); < 1 means converging, -> 1 flags the
  /// near-saturation regimes (rho -> 1) where convergence stalls. Negative
  /// when the trajectory is too short to estimate.
  double decay_rate = -1.0;

  // --- fallback ladder / retries ---
  int rung = 0;                ///< winning SolveRung index (0 = primary)
  std::string rung_name = "primary";
  int rungs_attempted = 1;
  int attempt = 1;             ///< sweep-runner attempt number (1 = first try)

  // --- warm starting ---
  bool warm_start_used = false;       ///< result came from refining a seed R
  int warm_start_iterations_saved = 0;  ///< seed's cost minus refinement cost

  // --- stability proximity ---
  double drift_ratio = -1.0;      ///< preflight rho; -> 1 means near-unstable
  double spectral_radius = -1.0;  ///< sp(R) of the solved process

  // --- failure path ---
  std::string error_code;     ///< ErrorCode name when status is failed/cancelled
  std::string error_message;  ///< empty on success

  /// Fraction of the winning rung's iteration budget consumed, in [0, 1];
  /// negative when no budget is known.
  double budget_consumed() const;

  /// Serialises every field (fixed key order) for the report's "health" array.
  JsonValue to_json() const;
};

/// Geometric mean contraction per iteration from the first/last increment
/// norms; negative (unknown) unless both norms are positive and at least two
/// iterations ran.
double geometric_decay_rate(double first_increment, double last_increment,
                            int iterations);

/// Builds the record of a solve that threw: status is kCancelled for deadline
/// or interrupt error codes ("kDeadlineExceeded" / "kInterrupted"), kFailed
/// otherwise. The caller stamps key/attempt and any stats it salvaged.
SolveHealth failed_solve_health(const std::string& error_code,
                                const std::string& error_message);

}  // namespace perfbg::obs
