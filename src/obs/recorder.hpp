// Flight recorder for request-serving processes (DESIGN.md §14): an
// always-on, bounded ring buffer holding the last N completed request traces
// — trace id, canonical key, outcome, queue age, per-phase timing tree, and
// the solve's health record — plus a top-K slow-request log.
//
// The point is post-mortems: when the watchdog evicts a wedged flight or an
// overload burst sheds work, the daemon dumps the recorder to JSON and the
// evicted/slow requests are *there*, with their phase breakdowns, instead of
// having vanished with the response. Unlike the SpanCollector (opt-in,
// unbounded, profiling-grade), the recorder is designed to run forever:
// fixed memory, one short mutex hold per request, no allocation beyond the
// entry being stored.
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace perfbg::obs {

inline constexpr const char* kFlightRecorderSchema = "perfbg.flight_recorder.v1";

/// One completed (or force-completed) request, as the recorder stores it.
struct RequestTrace {
  std::uint64_t trace_id = 0;         ///< request trace id (wire hex form)
  std::uint64_t leader_trace_id = 0;  ///< set when this request coalesced
                                      ///< onto another request's flight
  std::string id;           ///< client-supplied request id ("" when absent)
  std::string key;          ///< canonical request key
  std::string model_class;  ///< breaker granularity class
  /// "ok" / "cached" / "coalesced" / "evicted" / an ErrorCode name.
  std::string outcome;
  double queue_ms = -1.0;  ///< admission -> execution start; -1 = never queued
  double wall_ms = 0.0;    ///< request wall time as the server saw it
  JsonValue phases;        ///< per-phase span tree {"name","ms","children"}
  JsonValue health;        ///< SolveHealth record (null when none applies)
  std::uint64_t seq = 0;   ///< recorder-assigned, 1-based, monotonic

  JsonValue to_json() const;
};

/// Fixed-capacity ring of the last N request traces. Thread-safe; writers
/// pay one mutex acquisition and one move per record (the ring never
/// reallocates after construction), so recording stays cheap enough to be
/// always-on in the daemon's request path.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity);

  /// Stores one completed request, overwriting the oldest entry when full.
  /// Assigns and returns the entry's sequence number — or 0 (seq is 1-based)
  /// when the `obs.recorder.append` failpoint dropped the record whole: the
  /// ring never holds a torn entry, recording just becomes lossy.
  std::uint64_t record(RequestTrace trace);

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const;
  /// Requests recorded over the recorder's lifetime (>= size()).
  std::uint64_t total() const;
  /// Records dropped by the `obs.recorder.append` failpoint (0 in production).
  std::uint64_t dropped() const;

  /// Entries oldest-first.
  std::vector<RequestTrace> snapshot() const;

  /// {"schema", "capacity", "total", "entries": [...]} — entries oldest-first.
  JsonValue to_json() const;

 private:
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<RequestTrace> ring_;  ///< reserved to capacity_ up front
  std::size_t next_ = 0;            ///< ring index the next record lands in
  std::uint64_t total_ = 0;
  std::uint64_t dropped_ = 0;
};

/// Top-K requests by wall time, the "slow-request log" surfaced by tracez.
/// offer() is O(K) under one mutex — K is small (default 16) and most
/// requests fail the cheap threshold check without scanning.
class SlowRequestLog {
 public:
  explicit SlowRequestLog(std::size_t k);

  void offer(const RequestTrace& trace);

  std::size_t size() const;
  /// Entries slowest-first, each in RequestTrace::to_json() form.
  JsonValue to_json() const;
  std::vector<RequestTrace> snapshot() const;  ///< slowest-first

 private:
  std::size_t k_;
  mutable std::mutex mu_;
  std::vector<RequestTrace> entries_;  ///< sorted slowest-first
};

/// Writes a recorder dump document:
/// {"schema", "trigger", "recorder": {...}, "slow": [...]}. The trigger names
/// why the dump happened ("watchdog_eviction" / "overload_burst" / "drain" /
/// "manual"). Throws std::runtime_error on I/O failure.
void write_recorder_dump(const std::string& path, const std::string& trigger,
                         const FlightRecorder& recorder, const SlowRequestLog& slow);
JsonValue recorder_dump_json(const std::string& trigger, const FlightRecorder& recorder,
                             const SlowRequestLog& slow);

}  // namespace perfbg::obs
