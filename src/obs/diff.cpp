#include "obs/diff.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <map>
#include <sstream>

#include "obs/report.hpp"

namespace perfbg::obs {

namespace {

std::string schema_of(const JsonValue& doc, const char* which) {
  if (!doc.is_object() || !doc.contains("schema") || !doc.at("schema").is_string())
    throw SchemaMismatchError(std::string("perfbg: the ") + which +
                              " document has no \"schema\" string — not a perfbg "
                              "baseline or run report");
  return doc.at("schema").as_string();
}

std::string format_point_key(const JsonValue& point) {
  std::ostringstream os;
  os << (point.contains("workload") ? point.at("workload").as_string() : "?");
  os << std::setprecision(6);
  if (const JsonValue* p = point.find("bg_probability")) os << " p=" << p->as_double();
  if (const JsonValue* x = point.find("bg_buffer")) os << " X=" << x->as_int();
  if (const JsonValue* u = point.find("utilization")) os << " util=" << u->as_double();
  return os.str();
}

/// key -> milliseconds, extracted per schema.
std::map<std::string, double> extract_times(const JsonValue& doc,
                                            const std::string& schema,
                                            const char* which) {
  std::map<std::string, double> out;
  if (schema == kBenchBaselineSchema || schema == kBenchBaselineSchemaV2) {
    if (!doc.contains("points") || !doc.at("points").is_array())
      throw SchemaMismatchError(std::string("perfbg: the ") + which +
                                " baseline has no \"points\" array");
    for (const JsonValue& point : doc.at("points").as_array()) {
      const JsonValue* wall = point.find("wall_ms");
      if (!wall) continue;  // a failed point carries an "error" instead
      out[format_point_key(point)] = wall->as_double();
    }
    return out;
  }
  // Run report: compare the per-phase wall timers.
  if (const JsonValue* timers = doc.find("timers")) {
    for (const auto& [name, stat] : timers->as_object())
      if (const JsonValue* total = stat.find("total_ms")) out[name] = total->as_double();
  }
  return out;
}

/// span name -> p99 milliseconds from a v2 "spans" section; the section is
/// mandatory in v2 (the tail statistics are the point of the schema bump).
std::map<std::string, double> extract_span_p99(const JsonValue& doc,
                                               const char* which) {
  if (!doc.contains("spans") || !doc.at("spans").is_object())
    throw SchemaMismatchError(std::string("perfbg: the ") + which +
                              " v2 baseline has no \"spans\" object");
  std::map<std::string, double> out;
  for (const auto& [name, stats] : doc.at("spans").as_object())
    if (const JsonValue* p99 = stats.find("p99_ms")) out[name] = p99->as_double();
  return out;
}

bool matches_any(const std::vector<std::string>& patterns, const std::string& name) {
  for (const std::string& p : patterns)
    if (span_budget_matches(p, name)) return true;
  return false;
}

}  // namespace

const std::vector<SpanBudget>& default_span_budgets() {
  // Order: most specific first, for readability only — every matching budget
  // is evaluated. qbd.solve_r / qbd.solve_g are separate entries because the
  // "qbd.solve.*" prefix glob does not cover them (solve_r is not a child
  // path of solve).
  static const std::vector<SpanBudget> kBudgets = {
      {"qbd.solve.*", 0.25, 0.0, 0.5},
      {"qbd.solve_r", 0.25, 0.0, 0.5},
      {"qbd.solve_g", 0.25, 0.0, 0.5},
      {"linalg.gemm", 0.25, 0.0, 0.25},
      {"linalg.spmm", 0.25, 0.0, 0.25},
      {"linalg.*", 0.25, 0.0, 0.25},
      {"markov.gth", 0.30, 0.0, 0.25},
      {"sim.run", 0.30, 0.0, 1.0},
  };
  return kBudgets;
}

bool span_budget_matches(const std::string& pattern, const std::string& name) {
  if (pattern.size() >= 2 && pattern.compare(pattern.size() - 2, 2, ".*") == 0) {
    const std::string prefix = pattern.substr(0, pattern.size() - 2);
    if (name == prefix) return true;
    return name.size() > prefix.size() + 1 &&
           name.compare(0, prefix.size(), prefix) == 0 &&
           name[prefix.size()] == '.';
  }
  return name == pattern;
}

JsonValue budgets_to_json(const std::vector<SpanBudget>& budgets) {
  JsonValue out = JsonValue::array();
  for (const SpanBudget& b : budgets) {
    JsonValue row = JsonValue::object();
    row.set("pattern", JsonValue(b.pattern));
    row.set("p99_regression", JsonValue(b.p99_regression));
    row.set("max_p99_ms", JsonValue(b.max_p99_ms));
    row.set("min_delta_ms", JsonValue(b.min_delta_ms));
    out.push_back(std::move(row));
  }
  return out;
}

std::vector<SpanBudget> budgets_from_json(const JsonValue& doc) {
  const JsonValue* arr = doc.find("budgets");
  if (!arr || !arr->is_array()) return default_span_budgets();
  std::vector<SpanBudget> budgets;
  for (const JsonValue& row : arr->as_array()) {
    SpanBudget b;
    if (const JsonValue* p = row.find("pattern")) b.pattern = p->as_string();
    if (b.pattern.empty()) continue;
    if (const JsonValue* v = row.find("p99_regression")) b.p99_regression = v->as_double();
    if (const JsonValue* v = row.find("max_p99_ms")) b.max_p99_ms = v->as_double();
    if (const JsonValue* v = row.find("min_delta_ms")) b.min_delta_ms = v->as_double();
    budgets.push_back(std::move(b));
  }
  return budgets;
}

std::size_t DiffResult::regressions() const {
  return static_cast<std::size_t>(
      std::count_if(entries.begin(), entries.end(),
                    [](const DiffEntry& e) { return e.regression; }));
}

DiffResult diff_reports(const JsonValue& old_doc, const JsonValue& new_doc,
                        const DiffOptions& options) {
  const std::string old_schema = schema_of(old_doc, "old");
  const std::string new_schema = schema_of(new_doc, "new");
  if (old_schema != new_schema)
    throw SchemaMismatchError("perfbg: schema mismatch: old is '" + old_schema +
                              "', new is '" + new_schema + "'");
  if (old_schema != kBenchBaselineSchema && old_schema != kBenchBaselineSchemaV2 &&
      old_schema != kRunReportSchema)
    throw SchemaMismatchError("perfbg: unsupported schema '" + old_schema +
                              "' (can diff " + kBenchBaselineSchema + ", " +
                              kBenchBaselineSchemaV2 + " and " + kRunReportSchema +
                              ")");

  const std::map<std::string, double> old_times =
      extract_times(old_doc, old_schema, "old");
  const std::map<std::string, double> new_times =
      extract_times(new_doc, new_schema, "new");

  DiffResult result;
  result.schema = old_schema;
  for (const auto& [key, old_ms] : old_times) {
    const auto it = new_times.find(key);
    if (it == new_times.end()) {
      result.only_in_old.push_back(key);
      continue;
    }
    DiffEntry e;
    e.key = key;
    e.old_ms = old_ms;
    e.new_ms = it->second;
    e.rel_change = old_ms > 0.0 ? e.new_ms / old_ms - 1.0
                                : (e.new_ms > 0.0
                                       ? std::numeric_limits<double>::infinity()
                                       : 0.0);
    e.regression = e.rel_change > options.threshold &&
                   e.new_ms - e.old_ms > options.min_abs_delta_ms;
    result.entries.push_back(std::move(e));
  }
  for (const auto& [key, ms] : new_times) {
    (void)ms;
    if (old_times.find(key) == old_times.end()) result.only_in_new.push_back(key);
  }

  if (old_schema == kBenchBaselineSchemaV2) {
    // Budgets come from the OLD (committed) document: a PR that wants a
    // looser gate has to change the committed baseline, which reviewers see.
    const std::vector<SpanBudget> budgets = budgets_from_json(old_doc);
    const std::map<std::string, double> old_p99 = extract_span_p99(old_doc, "old");
    const std::map<std::string, double> new_p99 = extract_span_p99(new_doc, "new");
    for (const auto& [name, old_ms] : old_p99) {
      const auto it = new_p99.find(name);
      if (it == new_p99.end()) {
        result.only_in_old.push_back("span " + name);
        continue;
      }
      DiffEntry e;
      e.key = name;
      e.old_ms = old_ms;
      e.new_ms = it->second;
      e.rel_change = old_ms > 0.0 ? e.new_ms / old_ms - 1.0
                                  : (e.new_ms > 0.0
                                         ? std::numeric_limits<double>::infinity()
                                         : 0.0);
      const bool allowlisted = matches_any(options.allowlist, name);
      if (!allowlisted) {
        for (const SpanBudget& b : budgets) {
          if (!span_budget_matches(b.pattern, name)) continue;
          const bool relative_breach =
              e.rel_change > b.p99_regression &&
              e.new_ms - e.old_ms > b.min_delta_ms;
          if (relative_breach)
            result.budget_violations.push_back(
                {name, b.pattern, "p99_regression", e.old_ms, e.new_ms,
                 b.p99_regression});
          if (b.max_p99_ms > 0.0 && e.new_ms > b.max_p99_ms)
            result.budget_violations.push_back(
                {name, b.pattern, "absolute_budget", e.old_ms, e.new_ms,
                 b.max_p99_ms});
        }
      }
      result.span_entries.push_back(std::move(e));
    }
    for (const auto& [name, ms] : new_p99) {
      (void)ms;
      if (old_p99.find(name) == old_p99.end())
        result.only_in_new.push_back("span " + name);
    }
  }
  return result;
}

std::string format_diff(const DiffResult& result, const DiffOptions& options) {
  std::ostringstream os;
  os << "comparing " << result.schema << " documents (regression threshold "
     << std::setprecision(3) << 100.0 * options.threshold << "%, min delta "
     << options.min_abs_delta_ms << " ms)\n";
  std::size_t key_width = 4;
  for (const DiffEntry& e : result.entries) key_width = std::max(key_width, e.key.size());
  os << std::left << std::setw(static_cast<int>(key_width)) << "key" << std::right
     << std::setw(12) << "old_ms" << std::setw(12) << "new_ms" << std::setw(10)
     << "change" << "\n";
  for (const DiffEntry& e : result.entries) {
    os << std::left << std::setw(static_cast<int>(key_width)) << e.key << std::right
       << std::fixed << std::setprecision(3) << std::setw(12) << e.old_ms
       << std::setw(12) << e.new_ms << std::defaultfloat << std::setprecision(3);
    if (std::isinf(e.rel_change))
      os << std::setw(10) << "new";
    else
      os << std::setw(9) << 100.0 * e.rel_change << "%";
    if (e.regression) os << "  <-- REGRESSION";
    os << "\n";
  }
  if (!result.span_entries.empty()) {
    os << "span p99 tails:\n";
    std::size_t span_width = 4;
    for (const DiffEntry& e : result.span_entries)
      span_width = std::max(span_width, e.key.size());
    for (const DiffEntry& e : result.span_entries) {
      os << "  " << std::left << std::setw(static_cast<int>(span_width)) << e.key
         << std::right << std::fixed << std::setprecision(3) << std::setw(12)
         << e.old_ms << std::setw(12) << e.new_ms << std::defaultfloat
         << std::setprecision(3);
      if (std::isinf(e.rel_change))
        os << std::setw(10) << "new";
      else
        os << std::setw(9) << 100.0 * e.rel_change << "%";
      os << "\n";
    }
  }
  for (const BudgetViolation& v : result.budget_violations) {
    os << "BUDGET BREACH: span " << v.span << " (budget " << v.pattern << "): ";
    if (v.kind == "p99_regression")
      os << "p99 " << std::fixed << std::setprecision(3) << v.old_p99_ms << " -> "
         << v.new_p99_ms << " ms exceeds +" << std::defaultfloat
         << std::setprecision(3) << 100.0 * v.limit << "%";
    else
      os << "p99 " << std::fixed << std::setprecision(3) << v.new_p99_ms
         << " ms exceeds absolute budget " << v.limit << " ms"
         << std::defaultfloat << std::setprecision(3);
    os << "\n";
  }
  for (const std::string& key : result.only_in_old)
    os << "only in old: " << key << "\n";
  for (const std::string& key : result.only_in_new)
    os << "only in new: " << key << "\n";
  const std::size_t n = result.regressions();
  os << (n == 0 ? "no regressions" : std::to_string(n) + " regression(s)") << " across "
     << result.entries.size() << " compared entr" << (result.entries.size() == 1 ? "y" : "ies");
  if (!result.span_entries.empty())
    os << ", " << result.budget_violations.size() << " budget breach(es) across "
       << result.span_entries.size() << " budget-checked span(s)";
  os << "\n";
  return os.str();
}

}  // namespace perfbg::obs
