#include "obs/diff.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <limits>
#include <map>
#include <sstream>

#include "obs/report.hpp"

namespace perfbg::obs {

namespace {

std::string schema_of(const JsonValue& doc, const char* which) {
  if (!doc.is_object() || !doc.contains("schema") || !doc.at("schema").is_string())
    throw SchemaMismatchError(std::string("perfbg: the ") + which +
                              " document has no \"schema\" string — not a perfbg "
                              "baseline or run report");
  return doc.at("schema").as_string();
}

std::string format_point_key(const JsonValue& point) {
  std::ostringstream os;
  os << (point.contains("workload") ? point.at("workload").as_string() : "?");
  os << std::setprecision(6);
  if (const JsonValue* p = point.find("bg_probability")) os << " p=" << p->as_double();
  if (const JsonValue* x = point.find("bg_buffer")) os << " X=" << x->as_int();
  if (const JsonValue* u = point.find("utilization")) os << " util=" << u->as_double();
  return os.str();
}

/// key -> milliseconds, extracted per schema.
std::map<std::string, double> extract_times(const JsonValue& doc,
                                            const std::string& schema,
                                            const char* which) {
  std::map<std::string, double> out;
  if (schema == kBenchBaselineSchema) {
    if (!doc.contains("points") || !doc.at("points").is_array())
      throw SchemaMismatchError(std::string("perfbg: the ") + which +
                                " baseline has no \"points\" array");
    for (const JsonValue& point : doc.at("points").as_array()) {
      const JsonValue* wall = point.find("wall_ms");
      if (!wall) continue;  // a failed point carries an "error" instead
      out[format_point_key(point)] = wall->as_double();
    }
    return out;
  }
  // Run report: compare the per-phase wall timers.
  if (const JsonValue* timers = doc.find("timers")) {
    for (const auto& [name, stat] : timers->as_object())
      if (const JsonValue* total = stat.find("total_ms")) out[name] = total->as_double();
  }
  return out;
}

}  // namespace

std::size_t DiffResult::regressions() const {
  return static_cast<std::size_t>(
      std::count_if(entries.begin(), entries.end(),
                    [](const DiffEntry& e) { return e.regression; }));
}

DiffResult diff_reports(const JsonValue& old_doc, const JsonValue& new_doc,
                        const DiffOptions& options) {
  const std::string old_schema = schema_of(old_doc, "old");
  const std::string new_schema = schema_of(new_doc, "new");
  if (old_schema != new_schema)
    throw SchemaMismatchError("perfbg: schema mismatch: old is '" + old_schema +
                              "', new is '" + new_schema + "'");
  if (old_schema != kBenchBaselineSchema && old_schema != kRunReportSchema)
    throw SchemaMismatchError("perfbg: unsupported schema '" + old_schema +
                              "' (can diff " + kBenchBaselineSchema + " and " +
                              kRunReportSchema + ")");

  const std::map<std::string, double> old_times =
      extract_times(old_doc, old_schema, "old");
  const std::map<std::string, double> new_times =
      extract_times(new_doc, new_schema, "new");

  DiffResult result;
  result.schema = old_schema;
  for (const auto& [key, old_ms] : old_times) {
    const auto it = new_times.find(key);
    if (it == new_times.end()) {
      result.only_in_old.push_back(key);
      continue;
    }
    DiffEntry e;
    e.key = key;
    e.old_ms = old_ms;
    e.new_ms = it->second;
    e.rel_change = old_ms > 0.0 ? e.new_ms / old_ms - 1.0
                                : (e.new_ms > 0.0
                                       ? std::numeric_limits<double>::infinity()
                                       : 0.0);
    e.regression = e.rel_change > options.threshold &&
                   e.new_ms - e.old_ms > options.min_abs_delta_ms;
    result.entries.push_back(std::move(e));
  }
  for (const auto& [key, ms] : new_times) {
    (void)ms;
    if (old_times.find(key) == old_times.end()) result.only_in_new.push_back(key);
  }
  return result;
}

std::string format_diff(const DiffResult& result, const DiffOptions& options) {
  std::ostringstream os;
  os << "comparing " << result.schema << " documents (regression threshold "
     << std::setprecision(3) << 100.0 * options.threshold << "%, min delta "
     << options.min_abs_delta_ms << " ms)\n";
  std::size_t key_width = 4;
  for (const DiffEntry& e : result.entries) key_width = std::max(key_width, e.key.size());
  os << std::left << std::setw(static_cast<int>(key_width)) << "key" << std::right
     << std::setw(12) << "old_ms" << std::setw(12) << "new_ms" << std::setw(10)
     << "change" << "\n";
  for (const DiffEntry& e : result.entries) {
    os << std::left << std::setw(static_cast<int>(key_width)) << e.key << std::right
       << std::fixed << std::setprecision(3) << std::setw(12) << e.old_ms
       << std::setw(12) << e.new_ms << std::defaultfloat << std::setprecision(3);
    if (std::isinf(e.rel_change))
      os << std::setw(10) << "new";
    else
      os << std::setw(9) << 100.0 * e.rel_change << "%";
    if (e.regression) os << "  <-- REGRESSION";
    os << "\n";
  }
  for (const std::string& key : result.only_in_old)
    os << "only in old: " << key << "\n";
  for (const std::string& key : result.only_in_new)
    os << "only in new: " << key << "\n";
  const std::size_t n = result.regressions();
  os << (n == 0 ? "no regressions" : std::to_string(n) + " regression(s)") << " across "
     << result.entries.size() << " compared entr" << (result.entries.size() == 1 ? "y" : "ies")
     << "\n";
  return os.str();
}

}  // namespace perfbg::obs
