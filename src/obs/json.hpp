// Minimal JSON document model for the observability layer: a value tree with
// deterministic serialization (object keys kept in insertion order) and a
// strict recursive-descent parser. Self-contained so report writing and the
// round-trip tests need no external dependency.
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace perfbg::obs {

class JsonValue;

/// Object members preserve insertion order so emitted reports are stable and
/// diff-friendly across runs.
using JsonArray = std::vector<JsonValue>;
using JsonObjectEntries = std::vector<std::pair<std::string, JsonValue>>;

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(int v) : value_(static_cast<std::int64_t>(v)) {}
  JsonValue(std::int64_t v) : value_(v) {}
  JsonValue(std::uint64_t v) : value_(static_cast<std::int64_t>(v)) {}
  JsonValue(double v) : value_(v) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(JsonArray a) : value_(std::move(a)) {}

  static JsonValue object() {
    JsonValue v;
    v.value_ = JsonObjectEntries{};
    return v;
  }
  static JsonValue array() { return JsonValue(JsonArray{}); }

  Kind kind() const { return static_cast<Kind>(value_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }
  bool is_bool() const { return kind() == Kind::kBool; }
  bool is_number() const { return kind() == Kind::kInt || kind() == Kind::kDouble; }
  bool is_string() const { return kind() == Kind::kString; }
  bool is_array() const { return kind() == Kind::kArray; }
  bool is_object() const { return kind() == Kind::kObject; }

  /// Typed accessors; throw std::logic_error on a kind mismatch.
  bool as_bool() const;
  std::int64_t as_int() const;
  /// Numeric accessor accepting both integer and double payloads.
  double as_double() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  JsonArray& as_array();
  const JsonObjectEntries& as_object() const;

  /// Object helpers. set() replaces an existing key in place (keeping its
  /// position) or appends; at()/find() look a key up.
  JsonValue& set(const std::string& key, JsonValue value);
  bool contains(const std::string& key) const;
  const JsonValue* find(const std::string& key) const;
  /// Throws std::out_of_range when the key is absent.
  const JsonValue& at(const std::string& key) const;

  /// Array helper; throws on non-arrays.
  void push_back(JsonValue value);

  /// Serializes the value. indent < 0 emits the compact single-line form;
  /// indent >= 0 pretty-prints with that many spaces per depth level.
  void dump(std::ostream& out, int indent = -1) const;
  std::string dump(int indent = -1) const;

 private:
  void dump_impl(std::ostream& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, JsonArray,
               JsonObjectEntries>
      value_;
};

/// Writes a string with JSON escaping (quotes included).
void json_escape(std::ostream& out, const std::string& s);

/// Resource bounds enforced while parsing. The defaults keep trusted
/// documents (reports, journals, baselines) working unchanged while still
/// guarding the recursive-descent parser's stack: nesting is always bounded.
/// Network-facing readers (the perfbgd request framing) tighten both knobs so
/// an adversarial frame is a typed parse error, never a stack overflow or an
/// unbounded allocation.
struct JsonLimits {
  /// Maximum input size in bytes; 0 means unlimited (trusted local files).
  std::size_t max_bytes = 0;
  /// Maximum container nesting depth (objects + arrays). Each level costs one
  /// recursive parser frame, so this bound is what keeps "[[[[..." from
  /// smashing the stack.
  int max_depth = 128;

  /// The daemon's wire-format bounds: 1 MiB frames, 64 levels.
  static JsonLimits network() { return JsonLimits{1u << 20, 64}; }
};

/// Parses one JSON document; trailing non-whitespace is an error. Throws
/// std::invalid_argument with a byte offset on malformed input — including
/// NaN/Infinity literals (not JSON), over-deep nesting, and inputs larger
/// than limits.max_bytes. Never asserts or crashes on malformed input.
JsonValue parse_json(const std::string& text, const JsonLimits& limits = {});

}  // namespace perfbg::obs
