// Cross-run regression diffing and the perf-sentinel budget gate: compares
// two structured perf documents — bench_suite baselines (schema
// perfbg.bench_baseline.v1 or .v2) or run reports (perfbg.run_report.v1) —
// and flags entries whose wall time grew beyond a configurable relative
// threshold. v2 baselines additionally carry per-span p50/p99/max tail
// statistics and per-span budgets; a budgeted span that regresses at p99 (or
// breaches its absolute ceiling) is a HARD failure, everything else stays a
// soft warning. The perfbg_report_diff tool (examples/report_diff.cpp) is the
// CLI wrapper; CI runs the budget gate against the committed
// BENCH_solver.json.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace perfbg::obs {

/// Schema identifiers stamped into bench_suite baselines (BENCH_solver.json);
/// bump on breaking layout changes so perfbg_report_diff can hard-fail
/// instead of comparing apples to oranges. v1 carries only per-point min wall
/// times; v2 adds per-span tail statistics ("spans") and budgets ("budgets").
inline constexpr const char* kBenchBaselineSchema = "perfbg.bench_baseline.v1";
inline constexpr const char* kBenchBaselineSchemaV2 = "perfbg.bench_baseline.v2";

/// One per-span perf budget. `pattern` is either an exact span name or a
/// prefix glob "x.*", which matches "x" itself and every descendant "x.…" —
/// so "qbd.solve.*" covers qbd.solve, qbd.solve.rung, qbd.solve.boundary, …
struct SpanBudget {
  std::string pattern;
  /// Relative p99 growth past which the gate hard-fails: new p99 must stay
  /// within old * (1 + p99_regression).
  double p99_regression = 0.25;
  /// Absolute p99 ceiling in milliseconds; 0 disables the absolute check.
  /// Relative budgets travel across machines, absolute ones do not — the
  /// committed defaults leave this off and CI relies on the relative gate.
  double max_p99_ms = 0.0;
  /// Deltas below this many milliseconds never breach the relative budget —
  /// the noise floor for sub-millisecond spans.
  double min_delta_ms = 0.25;
};

/// The budgeted hot spans of the solver pipeline (ROADMAP item 5): the
/// qbd.solve subtree plus the R/G entry points, all of linalg, the GTH
/// elimination, and the simulator run loop. Stamped into v2 baselines by
/// bench_suite; the gate reads budgets from the committed (old) document so a
/// PR cannot relax its own gate by editing defaults without touching the
/// baseline visibly.
const std::vector<SpanBudget>& default_span_budgets();

/// Budget pattern matching (see SpanBudget::pattern).
bool span_budget_matches(const std::string& pattern, const std::string& name);

/// Serialises budgets as the "budgets" array of a v2 baseline document.
JsonValue budgets_to_json(const std::vector<SpanBudget>& budgets);

/// Reads the "budgets" array of a v2 document; falls back to
/// default_span_budgets() when the key is absent.
std::vector<SpanBudget> budgets_from_json(const JsonValue& doc);

struct DiffOptions {
  /// Relative wall-time increase that counts as a regression: new time must
  /// exceed old * (1 + threshold). 0.25 = 25%.
  double threshold = 0.25;
  /// Entries whose absolute delta is below this many milliseconds are never
  /// flagged, whatever the ratio — sub-tenth-millisecond timings are clock
  /// noise, not regressions.
  double min_abs_delta_ms = 0.1;
  /// Known-noisy span allowlist: span names matching any of these patterns
  /// (SpanBudget::pattern syntax) are still reported but never raise a
  /// budget violation.
  std::vector<std::string> allowlist;
};

/// One compared entry (a baseline point or a named timer).
struct DiffEntry {
  std::string key;
  double old_ms = 0.0;
  double new_ms = 0.0;
  /// Relative change: new/old - 1 (positive = slower). +inf when old == 0.
  double rel_change = 0.0;
  bool regression = false;
};

/// One hard budget breach: a budgeted, non-allowlisted span regressed at p99
/// beyond its budget or exceeded its absolute ceiling.
struct BudgetViolation {
  std::string span;     ///< span name
  std::string pattern;  ///< the budget pattern that matched
  std::string kind;     ///< "p99_regression" or "absolute_budget"
  double old_p99_ms = 0.0;
  double new_p99_ms = 0.0;
  /// The breached limit: the relative budget (e.g. 0.25) for p99_regression,
  /// the ceiling in ms for absolute_budget.
  double limit = 0.0;
};

struct DiffResult {
  std::string schema;  ///< the (common) schema of the two documents
  std::vector<DiffEntry> entries;
  std::vector<std::string> only_in_old;  ///< keys missing from the new document
  std::vector<std::string> only_in_new;  ///< keys absent from the old document
  /// v2 only: per-span p99 comparisons. Informational — span noise on shared
  /// runners makes unbudgeted span regressions warn-only; only
  /// budget_violations gate.
  std::vector<DiffEntry> span_entries;
  /// v2 only: hard failures against the old document's budgets.
  std::vector<BudgetViolation> budget_violations;
  std::size_t regressions() const;
  bool has_regressions() const { return regressions() > 0; }
  bool has_budget_violations() const { return !budget_violations.empty(); }
};

/// Raised when the two documents cannot be compared: a "schema" key is
/// missing, the schemas differ, or the (common) schema is not one this
/// version knows how to diff. Distinct from std::invalid_argument so the CLI
/// can map it to its own exit code (hard failure, unlike a soft regression).
class SchemaMismatchError : public std::runtime_error {
 public:
  explicit SchemaMismatchError(const std::string& what) : std::runtime_error(what) {}
};

/// Compares two parsed documents. Baselines are matched point-by-point on
/// (workload, bg_probability, bg_buffer, utilization) and compared on
/// "wall_ms"; run reports are matched timer-by-timer and compared on
/// "total_ms". v2 baselines additionally compare the "spans" tail statistics
/// on p99_ms and evaluate the old document's budgets (see SpanBudget) into
/// budget_violations. Throws SchemaMismatchError per above; tolerant of
/// points/spans present on one side only (reported, never a regression).
DiffResult diff_reports(const JsonValue& old_doc, const JsonValue& new_doc,
                        const DiffOptions& options = {});

/// Human-readable table of the comparison: one line per entry, regressions
/// marked, one-sided keys listed at the end.
std::string format_diff(const DiffResult& result, const DiffOptions& options = {});

}  // namespace perfbg::obs
