// Cross-run regression diffing: compares two structured perf documents — two
// bench_suite baselines (schema perfbg.bench_baseline.v1) or two run reports
// (schema perfbg.run_report.v1) — and flags entries whose wall time grew
// beyond a configurable relative threshold. The perfbg_report_diff tool
// (examples/report_diff.cpp) is the CLI wrapper; CI runs it as a soft gate
// against the committed BENCH_solver.json.
#pragma once

#include <stdexcept>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace perfbg::obs {

/// Schema identifier stamped into bench_suite baselines (BENCH_solver.json);
/// bump on breaking layout changes so perfbg_report_diff can hard-fail
/// instead of comparing apples to oranges.
inline constexpr const char* kBenchBaselineSchema = "perfbg.bench_baseline.v1";

struct DiffOptions {
  /// Relative wall-time increase that counts as a regression: new time must
  /// exceed old * (1 + threshold). 0.25 = 25%.
  double threshold = 0.25;
  /// Entries whose absolute delta is below this many milliseconds are never
  /// flagged, whatever the ratio — sub-tenth-millisecond timings are clock
  /// noise, not regressions.
  double min_abs_delta_ms = 0.1;
};

/// One compared entry (a baseline point or a named timer).
struct DiffEntry {
  std::string key;
  double old_ms = 0.0;
  double new_ms = 0.0;
  /// Relative change: new/old - 1 (positive = slower). +inf when old == 0.
  double rel_change = 0.0;
  bool regression = false;
};

struct DiffResult {
  std::string schema;  ///< the (common) schema of the two documents
  std::vector<DiffEntry> entries;
  std::vector<std::string> only_in_old;  ///< keys missing from the new document
  std::vector<std::string> only_in_new;  ///< keys absent from the old document
  std::size_t regressions() const;
  bool has_regressions() const { return regressions() > 0; }
};

/// Raised when the two documents cannot be compared: a "schema" key is
/// missing, the schemas differ, or the (common) schema is not one this
/// version knows how to diff. Distinct from std::invalid_argument so the CLI
/// can map it to its own exit code (hard failure, unlike a soft regression).
class SchemaMismatchError : public std::runtime_error {
 public:
  explicit SchemaMismatchError(const std::string& what) : std::runtime_error(what) {}
};

/// Compares two parsed documents. Baselines are matched point-by-point on
/// (workload, bg_probability, bg_buffer, utilization) and compared on
/// "wall_ms"; run reports are matched timer-by-timer and compared on
/// "total_ms". Throws SchemaMismatchError per above; tolerant of points
/// present on one side only (reported, never a regression).
DiffResult diff_reports(const JsonValue& old_doc, const JsonValue& new_doc,
                        const DiffOptions& options = {});

/// Human-readable table of the comparison: one line per entry, regressions
/// marked, one-sided keys listed at the end.
std::string format_diff(const DiffResult& result, const DiffOptions& options = {});

}  // namespace perfbg::obs
