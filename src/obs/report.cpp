#include "obs/report.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace perfbg::obs {

void RunReport::set_config(const std::string& key, JsonValue value) {
  config_.set(key, std::move(value));
}

void RunReport::add_error(JsonValue record) {
  std::lock_guard<std::mutex> lock(mu_);
  errors_.push_back(std::move(record));
}

std::size_t RunReport::error_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return errors_.as_array().size();
}

void RunReport::add_health(const SolveHealth& health) {
  std::lock_guard<std::mutex> lock(mu_);
  health_.push_back(health);
}

std::size_t RunReport::health_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return health_.size();
}

VectorSink& RunReport::trace(const std::string& name) {
  for (auto& [n, sink] : traces_)
    if (n == name) return sink;
  traces_.emplace_back(name, VectorSink{});
  return traces_.back().second;
}

JsonValue RunReport::to_json(bool include_timers) const {
  JsonValue root = JsonValue::object();
  root.set("schema", JsonValue(kRunReportSchema));
  root.set("tool", JsonValue(tool_));
  root.set("config", config_);
  // Splice the registry dump in at top level so consumers address
  // report.counters / report.timers directly.
  const JsonValue m = metrics_.to_json(include_timers);
  for (const auto& [k, v] : m.as_object()) root.set(k, v);
  {
    std::lock_guard<std::mutex> lock(mu_);
    root.set("errors", errors_);
    // Sort health records by (key, serialised content): workers append in
    // completion order, which varies with --jobs, but the records themselves
    // are deterministic — sorting restores byte-stable output.
    std::vector<std::pair<std::string, JsonValue>> health;
    health.reserve(health_.size());
    for (const SolveHealth& h : health_) {
      JsonValue v = h.to_json();
      std::ostringstream sort_key;
      sort_key << h.key << '\x1f';
      v.dump(sort_key);
      health.emplace_back(sort_key.str(), std::move(v));
    }
    std::sort(health.begin(), health.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    JsonValue health_arr = JsonValue::array();
    for (auto& [k, v] : health) health_arr.push_back(std::move(v));
    root.set("health", std::move(health_arr));
  }
  JsonValue traces = JsonValue::object();
  for (const auto& [name, sink] : traces_) {
    JsonValue events = JsonValue::array();
    for (const TraceEvent& e : sink.events()) {
      // Inside a named trace the event name is redundant; keep the fields.
      JsonValue obj = JsonValue::object();
      for (const auto& [k, v] : e.fields()) obj.set(k, v);
      events.push_back(std::move(obj));
    }
    traces.set(name, std::move(events));
  }
  root.set("traces", std::move(traces));
  return root;
}

void RunReport::write_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("perfbg: cannot open '" + path + "' for writing");
  to_json().dump(out, 2);
  out << '\n';
  out.flush();
  if (!out) throw std::runtime_error("perfbg: failed writing report to '" + path + "'");
}

void RunReport::write_trace_jsonl(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("perfbg: cannot open '" + path + "' for writing");
  JsonLinesSink sink(out);
  for (const auto& [name, buffered] : traces_) {
    (void)name;
    replay(buffered.events(), sink);
  }
  sink.flush();
  if (!out) throw std::runtime_error("perfbg: failed writing trace to '" + path + "'");
}

void RunReport::print_summary(std::ostream& out) const {
  out << "run report (" << tool_ << ")\n";
  if (!config_.as_object().empty()) {
    out << "  config: ";
    config_.dump(out);
    out << "\n";
  }
  std::string metric_lines = metrics_.summary();
  // Indent the registry summary under the report banner.
  std::size_t start = 0;
  while (start < metric_lines.size()) {
    const std::size_t end = metric_lines.find('\n', start);
    out << "  " << metric_lines.substr(start, end - start) << "\n";
    if (end == std::string::npos) break;
    start = end + 1;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!errors_.as_array().empty())
      out << "  errors: " << errors_.as_array().size() << " failed point(s)\n";
    if (!health_.empty()) {
      std::size_t degraded = 0;
      for (const SolveHealth& h : health_)
        if (h.status != SolveStatus::kConverged) ++degraded;
      out << "  health: " << health_.size() << " solve record(s), " << degraded
          << " degraded\n";
    }
  }
  for (const auto& [name, sink] : traces_)
    out << "  trace " << name << ": " << sink.events().size() << " events\n";
}

}  // namespace perfbg::obs
