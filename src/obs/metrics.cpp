#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace perfbg::obs {

namespace {

enum MetricKind { kCounter = 0, kGauge = 1, kTimer = 2, kHistogram = 3 };

const char* kind_name(int kind) {
  switch (kind) {
    case kCounter: return "counter";
    case kGauge: return "gauge";
    case kTimer: return "timer";
    case kHistogram: return "histogram";
  }
  return "?";
}

std::vector<double> default_buckets() {
  // Decades from 1e-3 to 1e3 with a 1-2-5 subdivision: wide enough for both
  // millisecond timings and iteration-scale counts.
  std::vector<double> b;
  for (double decade = 1e-3; decade < 2e3; decade *= 10.0)
    for (double m : {1.0, 2.0, 5.0}) b.push_back(decade * m);
  return b;
}

}  // namespace

void HistogramStat::observe_value(double value) {
  PERFBG_REQUIRE(counts.size() == upper_bounds.size() + 1,
                 "histogram buckets not initialised; use make_histogram()");
  const auto bucket = std::lower_bound(upper_bounds.begin(), upper_bounds.end(), value);
  ++counts[static_cast<std::size_t>(bucket - upper_bounds.begin())];
  ++count;
  sum += value;
  min = std::min(min, value);
  max = std::max(max, value);
}

double HistogramStat::quantile(double q) const {
  PERFBG_REQUIRE(q >= 0.0 && q <= 1.0, "quantile order must be in [0, 1]");
  PERFBG_REQUIRE(count > 0, "quantile of an empty histogram");
  // The extremes are tracked exactly — return them without interpolation so
  // the tail never depends on bucket placement.
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  // Rank of the target observation (1-based, continuous).
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const std::uint64_t next = cumulative + counts[i];
    if (static_cast<double>(next) >= target) {
      // Bucket edges, tightened by the observed extremes: bucket 0 has no
      // lower bound and the overflow bucket no upper bound.
      double lo = i == 0 ? min : upper_bounds[i - 1];
      double hi = i == upper_bounds.size() ? max : upper_bounds[i];
      lo = std::max(lo, min);
      hi = std::min(hi, max);
      if (hi <= lo) return lo;
      const double fraction =
          (target - static_cast<double>(cumulative)) / static_cast<double>(counts[i]);
      return lo + std::min(1.0, std::max(0.0, fraction)) * (hi - lo);
    }
    cumulative = next;
  }
  return max;  // rounding left a residue past the last non-empty bucket
}

std::vector<double> log_buckets(double lo, double hi, int per_decade) {
  PERFBG_REQUIRE(lo > 0.0 && hi > lo, "log_buckets needs 0 < lo < hi");
  PERFBG_REQUIRE(per_decade >= 1, "log_buckets needs per_decade >= 1");
  const double step = std::pow(10.0, 1.0 / per_decade);
  std::vector<double> bounds;
  // Generate multiplicatively from lo; regenerate each decade from a fresh
  // power of ten so float drift cannot accumulate across many decades.
  double decade = lo;
  while (true) {
    for (int i = 0; i < per_decade; ++i) {
      const double b = decade * std::pow(step, i);
      bounds.push_back(b);
      if (b >= hi) return bounds;
    }
    decade *= 10.0;
  }
}

HistogramStat make_histogram(std::vector<double> upper_bounds) {
  PERFBG_REQUIRE(!upper_bounds.empty(), "histogram needs at least one bucket bound");
  HistogramStat h;
  h.counts.assign(upper_bounds.size() + 1, 0);
  h.upper_bounds = std::move(upper_bounds);
  return h;
}

void MetricsRegistry::check_kind(const std::string& name, int kind) const {
  PERFBG_REQUIRE(!name.empty(), "metric name must be non-empty");
  const bool taken[4] = {
      counters_.count(name) > 0,
      gauges_.count(name) > 0,
      timers_.count(name) > 0,
      histograms_.count(name) > 0,
  };
  for (int k = 0; k < 4; ++k) {
    if (k == kind || !taken[k]) continue;
    PERFBG_REQUIRE(false, "metric '" + name + "' already registered as a " +
                              kind_name(k) + ", cannot reuse as a " + kind_name(kind));
  }
}

void MetricsRegistry::add(const std::string& name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  check_kind(name, kCounter);
  counters_[name] += delta;
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::set(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  check_kind(name, kGauge);
  gauges_[name] = value;
}

double MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

void MetricsRegistry::record_time(const std::string& name, double ms) {
  std::lock_guard<std::mutex> lock(mu_);
  check_kind(name, kTimer);
  TimerStat& t = timers_[name];
  ++t.count;
  t.total_ms += ms;
  t.min_ms = std::min(t.min_ms, ms);
  t.max_ms = std::max(t.max_ms, ms);
}

TimerStat MetricsRegistry::timer(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = timers_.find(name);
  return it == timers_.end() ? TimerStat{} : it->second;
}

void MetricsRegistry::define_histogram(const std::string& name,
                                       std::vector<double> upper_bounds) {
  PERFBG_REQUIRE(!upper_bounds.empty(), "histogram needs at least one bucket bound");
  PERFBG_REQUIRE(std::is_sorted(upper_bounds.begin(), upper_bounds.end()) &&
                     std::adjacent_find(upper_bounds.begin(), upper_bounds.end()) ==
                         upper_bounds.end(),
                 "histogram bounds must be strictly increasing");
  std::lock_guard<std::mutex> lock(mu_);
  check_kind(name, kHistogram);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    PERFBG_REQUIRE(it->second.upper_bounds == upper_bounds,
                   "histogram '" + name + "' redefined with different bounds");
    return;
  }
  HistogramStat h;
  h.counts.assign(upper_bounds.size() + 1, 0);
  h.upper_bounds = std::move(upper_bounds);
  histograms_.emplace(name, std::move(h));
}

void MetricsRegistry::observe(const std::string& name, double value) {
  observe(name, value, std::string());
}

void MetricsRegistry::observe(const std::string& name, double value,
                              const std::string& exemplar_label) {
  std::lock_guard<std::mutex> lock(mu_);
  check_kind(name, kHistogram);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    HistogramStat h;
    h.upper_bounds = default_buckets();
    h.counts.assign(h.upper_bounds.size() + 1, 0);
    it = histograms_.emplace(name, std::move(h)).first;
  }
  HistogramStat& h = it->second;
  const auto bucket = std::lower_bound(h.upper_bounds.begin(), h.upper_bounds.end(), value);
  const auto index = static_cast<std::size_t>(bucket - h.upper_bounds.begin());
  ++h.counts[index];
  ++h.count;
  h.sum += value;
  h.min = std::min(h.min, value);
  h.max = std::max(h.max, value);
  if (!exemplar_label.empty()) {
    if (h.exemplars.empty()) h.exemplars.resize(h.counts.size());
    h.exemplars[index] = HistogramStat::Exemplar{value, exemplar_label};
  }
}

HistogramStat MetricsRegistry::histogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? HistogramStat{} : it->second;
}

std::map<std::string, std::uint64_t> MetricsRegistry::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::map<std::string, double> MetricsRegistry::gauges() const {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_;
}

std::map<std::string, TimerStat> MetricsRegistry::timers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return timers_;
}

std::map<std::string, HistogramStat> MetricsRegistry::histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return histograms_;
}

JsonValue MetricsRegistry::to_json(bool include_timers) const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonValue root = JsonValue::object();

  JsonValue counters = JsonValue::object();
  for (const auto& [name, v] : counters_) counters.set(name, JsonValue(v));
  root.set("counters", std::move(counters));

  JsonValue gauges = JsonValue::object();
  for (const auto& [name, v] : gauges_) gauges.set(name, JsonValue(v));
  root.set("gauges", std::move(gauges));

  if (include_timers) {
    JsonValue timers = JsonValue::object();
    for (const auto& [name, t] : timers_) {
      JsonValue entry = JsonValue::object();
      entry.set("count", JsonValue(t.count));
      entry.set("total_ms", JsonValue(t.total_ms));
      entry.set("mean_ms", JsonValue(t.count ? t.total_ms / static_cast<double>(t.count)
                                             : 0.0));
      // A map entry only exists after a record_time, so min_ms is finite here
      // (JSON has no representation for the +inf initial value anyway).
      entry.set("min_ms", JsonValue(t.count ? t.min_ms : 0.0));
      entry.set("max_ms", JsonValue(t.max_ms));
      timers.set(name, std::move(entry));
    }
    root.set("timers", std::move(timers));
  }

  JsonValue histograms = JsonValue::object();
  for (const auto& [name, h] : histograms_) {
    JsonValue entry = JsonValue::object();
    entry.set("count", JsonValue(h.count));
    entry.set("sum", JsonValue(h.sum));
    if (h.count) {
      entry.set("min", JsonValue(h.min));
      entry.set("max", JsonValue(h.max));
    }
    JsonValue bounds = JsonValue::array();
    for (double b : h.upper_bounds) bounds.push_back(JsonValue(b));
    entry.set("upper_bounds", std::move(bounds));
    JsonValue counts = JsonValue::array();
    for (std::uint64_t c : h.counts) counts.push_back(JsonValue(c));
    entry.set("bucket_counts", std::move(counts));
    histograms.set(name, std::move(entry));
  }
  root.set("histograms", std::move(histograms));
  return root;
}

std::string MetricsRegistry::summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, v] : counters_) os << name << " = " << v << "\n";
  for (const auto& [name, v] : gauges_) os << name << " = " << v << "\n";
  for (const auto& [name, t] : timers_) {
    os << name << " = " << t.total_ms << " ms";
    if (t.count > 1)
      os << " over " << t.count << " calls (mean "
         << t.total_ms / static_cast<double>(t.count) << " ms)";
    os << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    os << name << " = histogram n=" << h.count;
    if (h.count)
      os << " sum=" << h.sum << " min=" << h.min << " max=" << h.max
         << " mean=" << h.sum / static_cast<double>(h.count);
    os << "\n";
  }
  return os.str();
}

namespace {

/// `qbd.rsolve.iterations` -> `perfbg_qbd_rsolve_iterations`; any character
/// outside [a-zA-Z0-9_] becomes '_' per the Prometheus data model.
std::string prom_name(const std::string& name) {
  std::string out = "perfbg_";
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Prometheus floats: shortest round-trip decimal, with the spec's spellings
/// for non-finite values.
void prom_value(std::ostream& os, double v) {
  if (std::isnan(v)) {
    os << "NaN";
    return;
  }
  if (std::isinf(v)) {
    os << (v > 0 ? "+Inf" : "-Inf");
    return;
  }
  // Integral values print as plain integers — "%.*g" probing would render 10
  // as "1e+01", which round-trips but reads badly in bucket labels.
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    char ibuf[32];
    std::snprintf(ibuf, sizeof(ibuf), "%.0f", v);
    os << ibuf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  for (int prec = 1; prec < 17; ++prec) {
    char probe[32];
    std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
    double back = 0.0;
    std::sscanf(probe, "%lf", &back);
    if (back == v) {
      os << probe;
      return;
    }
  }
  os << buf;
}

}  // namespace

std::string MetricsRegistry::render_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream os;
  for (const auto& [name, v] : counters_) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " counter\n" << n << " " << v << "\n";
  }
  for (const auto& [name, v] : gauges_) {
    const std::string n = prom_name(name);
    os << "# TYPE " << n << " gauge\n" << n << " ";
    prom_value(os, v);
    os << "\n";
  }
  for (const auto& [name, t] : timers_) {
    // A summary family without quantile series: _sum/_count only, which the
    // exposition format explicitly allows.
    const std::string n = prom_name(name) + "_ms";
    os << "# TYPE " << n << " summary\n";
    os << n << "_sum ";
    prom_value(os, t.total_ms);
    os << "\n" << n << "_count " << t.count << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string n = prom_name(name);
    // OpenMetrics-style exemplar suffix on a bucket's own sample line; a
    // histogram that never recorded one renders byte-identically to before.
    const auto exemplar = [&](std::size_t i) {
      if (i >= h.exemplars.size() || h.exemplars[i].label.empty()) return;
      os << " # {trace_id=\"" << h.exemplars[i].label << "\"} ";
      prom_value(os, h.exemplars[i].value);
    };
    os << "# TYPE " << n << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.upper_bounds.size(); ++i) {
      cumulative += h.counts[i];
      os << n << "_bucket{le=\"";
      prom_value(os, h.upper_bounds[i]);
      os << "\"} " << cumulative;
      exemplar(i);
      os << "\n";
    }
    os << n << "_bucket{le=\"+Inf\"} " << h.count;
    exemplar(h.upper_bounds.size());
    os << "\n";
    os << n << "_sum ";
    prom_value(os, h.sum);
    os << "\n" << n << "_count " << h.count << "\n";
  }
  return os.str();
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  timers_.clear();
  histograms_.clear();
}

}  // namespace perfbg::obs
