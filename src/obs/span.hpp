// Hierarchical span profiling for the perfbg stack: RAII ScopedSpan with
// thread-local nesting, per-span attributes (level index, matrix size,
// iteration count, ...), aggregation into a self/total-time profile tree, and
// export as Chrome trace-event JSON (loadable in chrome://tracing and
// Perfetto).
//
// Activation model: instrumented code creates ScopedSpans unconditionally;
// every span is a no-op — one relaxed atomic load, no clock read, no
// allocation — unless a SpanCollector is installed as the process-wide
// current collector. Tools install one behind an explicit flag
// (--trace-chrome on perfbg_cli and every bench binary), so the solver and
// simulator hot paths pay nothing in normal runs. The flat MetricsRegistry
// (obs/metrics.hpp) stays the always-on aggregate layer; spans are the
// opt-in, time-ordered, navigable view on top of it.
//
// Span naming follows the metric convention: lowercase dot-separated paths
// grouped by subsystem, e.g.
//   qbd.solve.r    qbd.rsolve.iteration    linalg.lu.factor    sim.batch
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace perfbg::obs {

/// Request-scoped trace identity: a 64-bit trace id shared by every span a
/// request touches, plus the span id the next span should parent to. The
/// thread-local nesting in ScopedSpan can only follow a request while it
/// stays on one thread; a TraceContext is the explicit cross-thread link —
/// capture it from the open span (ScopedSpan::context()), hand it to the
/// worker/joiner thread, and construct the next span with it so the exported
/// trace is one connected tree per request instead of disjoint per-thread
/// roots.
struct TraceContext {
  std::uint64_t trace_id = 0;    ///< 0 = untraced
  std::int64_t parent_span = -1; ///< span id to parent under; -1 = root
};

/// "0000000000000000"-style 16-digit lowercase hex, the wire form of a trace
/// id (JSON int64 cannot carry a full uint64).
std::string trace_id_hex(std::uint64_t trace_id);
/// Parses 1..16 hex digits (optionally "0x"-prefixed); returns false on
/// anything else. A parsed value of 0 is valid input ("untraced").
bool parse_trace_id_hex(const std::string& text, std::uint64_t& out);

/// One completed span, as stored by the collector. Timestamps are
/// microseconds relative to the collector's construction (chrome trace ts
/// units), so traces start near zero and survive JSON double precision.
struct SpanRecord {
  std::string name;
  double start_us = 0.0;
  double dur_us = 0.0;
  std::int64_t id = 0;       ///< unique per collector, 1-based
  std::int64_t parent = -1;  ///< id of the enclosing span; -1 for roots
  int depth = 0;             ///< 0 for roots; parent depth + 1 otherwise
  std::uint32_t tid = 0;     ///< small per-thread index (first-use order)
  std::uint64_t trace_id = 0;  ///< request trace this span belongs to; 0 = none
  JsonObjectEntries args;    ///< span attributes, insertion order preserved
};

/// Aggregated profile tree: spans merged by name path, children sorted by
/// total time descending. self_ms is total_ms minus the children's total
/// (clamped at 0 against clock noise).
struct ProfileNode {
  std::string name;
  std::uint64_t count = 0;
  double total_ms = 0.0;
  double self_ms = 0.0;
  std::vector<ProfileNode> children;

  /// Direct child by name; nullptr when absent.
  const ProfileNode* find(const std::string& child_name) const;
};

/// Thread-safe store of completed spans. Create one, install() it, run the
/// instrumented code, then export: write_chrome_trace() for the flame view,
/// profile_tree() for the aggregated self/total breakdown.
class SpanCollector {
 public:
  SpanCollector();
  ~SpanCollector();
  SpanCollector(const SpanCollector&) = delete;
  SpanCollector& operator=(const SpanCollector&) = delete;

  /// Makes this collector the process-wide receiver of ScopedSpans.
  /// Installing a second collector while one is active throws (nested
  /// profiling sessions would interleave incoherently).
  void install();
  /// Detaches this collector if it is the current one; no-op otherwise.
  void uninstall();
  /// The installed collector, or nullptr (the common, zero-cost case).
  static SpanCollector* current();

  std::vector<SpanRecord> snapshot() const;
  std::size_t size() const;
  void clear();

  /// Chrome trace-event format: a JSON array of complete ("ph": "X") events
  /// {"name", "ph", "ts", "dur", "pid", "tid", "args"}, ts/dur in
  /// microseconds. Loadable as-is by chrome://tracing and Perfetto.
  JsonValue chrome_trace_json() const;
  void write_chrome_trace(std::ostream& out) const;
  /// Throws std::runtime_error on I/O failure.
  void write_chrome_trace(const std::string& path) const;

  /// Aggregates all recorded spans into a profile tree rooted at a synthetic
  /// "<root>" node (its total is the sum of root spans).
  ProfileNode profile_tree() const;

  // --- ScopedSpan plumbing (public for the RAII type, not for call sites) ---
  double now_us() const;
  std::int64_t next_id() { return next_id_.fetch_add(1, std::memory_order_relaxed); }
  void record(SpanRecord record);

 private:
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::int64_t> next_id_{1};
  mutable std::mutex mu_;
  std::vector<SpanRecord> records_;
};

/// {"name", "count", "total_ms", "self_ms", "children": [...]} recursively.
JsonValue profile_to_json(const ProfileNode& node);

/// Flattens a profile tree into per-name totals and returns the `limit`
/// heaviest entries by self time, as a JSON array of
/// {"name", "count", "total_ms", "self_ms"}. Used by bench_suite to embed
/// the hot spans in the committed perf baseline.
JsonValue top_spans_json(const ProfileNode& root, std::size_t limit);

/// Aggregates span durations by name into log-bucketed histograms
/// (obs::log_buckets(1e-4, 1e4, 10), milliseconds): the reservoir-free feed
/// for per-span tail statistics. Names are sorted (std::map iteration), so
/// downstream serialisation is deterministic.
std::map<std::string, HistogramStat> span_duration_stats(
    const std::vector<SpanRecord>& records);

/// The "spans" section of the v2 perf baseline: an object keyed by span name
/// with {"count", "total_ms", "p50_ms", "p99_ms", "max_ms"} per entry,
/// computed via span_duration_stats().
JsonValue span_tail_stats_json(const std::vector<SpanRecord>& records);

/// RAII span. With no collector installed, construction is one relaxed
/// atomic load and attr() is a single branch; nothing else happens. With a
/// collector, the span opens at construction, closes (and is recorded) at
/// destruction or end(), and nests under the thread's innermost open span.
///
///   ScopedSpan span("qbd.solve.r");
///   span.attr("matrix_size", obs::JsonValue(n));
///
/// Spans must close in LIFO order per thread — guaranteed by scoping; do not
/// heap-allocate ScopedSpans or move them across threads.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  /// Cross-thread / cross-request parenting: opens the span under
  /// `link.parent_span` (instead of this thread's innermost open span) and
  /// stamps `link.trace_id` on it and on every span nested inside it on this
  /// thread. The thread's previous nesting state is restored at end(), so a
  /// worker can serve many requests through one thread without leaking one
  /// request's linkage into the next.
  ScopedSpan(const char* name, const TraceContext& link);
  ~ScopedSpan() { end(); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// The link a spawned thread (or a joiner) should open its spans with:
  /// this span's trace id and id. Inactive spans return a default (untraced)
  /// context, which keeps the no-collector path zero-cost.
  TraceContext context() const {
    return collector_ ? TraceContext{trace_id_, id_} : TraceContext{};
  }

  /// Attaches one attribute; chainable. Later keys with the same name
  /// overwrite is NOT performed — attributes are append-only (cheap), and
  /// exporters keep the last occurrence visible.
  ScopedSpan& attr(const char* key, JsonValue value) {
    if (collector_) args_.emplace_back(key, std::move(value));
    return *this;
  }

  /// True when a collector is installed and this span is live (lets call
  /// sites skip computing expensive attribute values).
  bool active() const { return collector_ != nullptr; }

  /// Closes and records the span now; idempotent.
  void end();

 private:
  void open(const char* name, std::int64_t parent, int depth, std::uint64_t trace_id);

  SpanCollector* collector_;
  const char* name_ = nullptr;
  double start_us_ = 0.0;
  std::int64_t id_ = 0;
  std::int64_t parent_ = -1;
  int depth_ = 0;
  std::uint64_t trace_id_ = 0;
  // Thread nesting state to restore at end(); differs from parent_/depth_
  // when the span was opened with an explicit cross-thread TraceContext.
  std::int64_t saved_parent_ = -1;
  int saved_depth_ = 0;
  std::uint64_t saved_trace_id_ = 0;
  JsonObjectEntries args_;
};

/// Scope guard pairing install()/uninstall() for tool main()s.
class SpanSession {
 public:
  explicit SpanSession(SpanCollector& collector) : collector_(collector) {
    collector_.install();
  }
  ~SpanSession() { collector_.uninstall(); }
  SpanSession(const SpanSession&) = delete;
  SpanSession& operator=(const SpanSession&) = delete;

 private:
  SpanCollector& collector_;
};

}  // namespace perfbg::obs
