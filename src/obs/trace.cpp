#include "obs/trace.hpp"

#include "util/check.hpp"

namespace perfbg::obs {

TraceEvent& TraceEvent::with(const std::string& key, JsonValue value) {
  for (auto& [k, v] : fields_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  fields_.emplace_back(key, std::move(value));
  return *this;
}

const JsonValue* TraceEvent::find(const std::string& key) const {
  for (const auto& [k, v] : fields_)
    if (k == key) return &v;
  return nullptr;
}

JsonValue TraceEvent::to_json() const {
  JsonValue obj = JsonValue::object();
  obj.set("event", JsonValue(name_));
  for (const auto& [k, v] : fields_) obj.set(k, v);
  return obj;
}

void JsonLinesSink::record(const TraceEvent& event) {
  event.to_json().dump(out_);
  out_ << '\n';
}

void CsvSink::record(const TraceEvent& event) {
  const auto write_cell = [&](const JsonValue& v) {
    if (v.is_string()) {
      // CSV-quote strings that need it; numbers and bools go bare.
      const std::string& s = v.as_string();
      if (s.find_first_of(",\"\n") == std::string::npos) {
        out_ << s;
      } else {
        out_ << '"';
        for (char c : s) {
          if (c == '"') out_ << '"';
          out_ << c;
        }
        out_ << '"';
      }
    } else {
      v.dump(out_);
    }
  };

  if (columns_.empty()) {
    columns_.reserve(event.fields().size());
    out_ << "event";
    for (const auto& [k, v] : event.fields()) {
      (void)v;
      columns_.push_back(k);
      out_ << ',' << k;
    }
    out_ << '\n';
  } else {
    PERFBG_REQUIRE(event.fields().size() == columns_.size(),
                   "CSV sink: event '" + event.name() +
                       "' has a different field count than the header");
  }
  out_ << event.name();
  for (const std::string& col : columns_) {
    const JsonValue* v = event.find(col);
    PERFBG_REQUIRE(v != nullptr, "CSV sink: event '" + event.name() +
                                     "' is missing header field '" + col + "'");
    out_ << ',';
    write_cell(*v);
  }
  out_ << '\n';
}

void replay(const std::vector<TraceEvent>& events, TraceSink& into) {
  for (const TraceEvent& e : events) into.record(e);
}

}  // namespace perfbg::obs
