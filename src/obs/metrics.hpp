// Metrics registry for the perfbg stack: hierarchically named counters,
// gauges, wall-clock timers and fixed-bucket histograms, with a thread-safe
// core so future parallel sweeps can share one registry.
//
// Naming convention: lowercase dot-separated paths grouped by subsystem, e.g.
//   qbd.rsolve.iterations      core.chain_build      sim.events.fg_arrival
// A name is permanently bound to the kind that first used it; re-using it as
// a different kind throws (duplicate-name protection).
//
// Instrumented code takes a `MetricsRegistry*` that may be null; every hook is
// a no-op on a null registry, so un-instrumented callers pay one branch.
#pragma once

#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace perfbg::obs {

/// Aggregate of all observations recorded under one timer name.
struct TimerStat {
  std::uint64_t count = 0;
  double total_ms = 0.0;
  double min_ms = std::numeric_limits<double>::infinity();  ///< +inf until the first record
  double max_ms = 0.0;
};

/// Fixed-bucket histogram: counts[i] counts observations <= upper_bounds[i];
/// counts.back() is the overflow bucket (> the last bound).
struct HistogramStat {
  /// One exemplar per bucket: the most recent labelled observation that
  /// landed there, so a tail bucket of a latency histogram links straight to
  /// a concrete trace id. Populated only by the exemplar-carrying observe()
  /// overload; exemplars stay out of the deterministic JSON report (trace
  /// ids are per-run) and surface via render_text() / statusz instead.
  struct Exemplar {
    double value = 0.0;
    std::string label;  ///< empty = no exemplar recorded for this bucket
  };

  std::vector<double> upper_bounds;
  std::vector<std::uint64_t> counts;  ///< size upper_bounds.size() + 1
  std::vector<Exemplar> exemplars;    ///< counts-aligned; empty until first use
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  /// Records one observation directly on the struct (registry-free use:
  /// per-span tail statistics aggregate SpanRecord durations this way).
  /// The bucket layout must have been assigned first (counts sized
  /// upper_bounds.size() + 1); obs::log_buckets() builds log-spaced bounds.
  void observe_value(double value);

  /// Linear-interpolation quantile estimate, q in [0, 1]. Walks the
  /// cumulative bucket counts to the bucket holding the q-th observation and
  /// interpolates within its edges; the first bucket's lower edge is the
  /// observed min, the overflow bucket's upper edge the observed max (so the
  /// estimate is always inside [min, max]). The extremes are exact, never
  /// interpolated: q = 0 returns the observed min and q = 1 the observed max
  /// regardless of bucket resolution — tail budgets compare against real
  /// extremes, not bucket-edge artifacts. Throws std::invalid_argument on an
  /// empty histogram or q outside [0, 1].
  double quantile(double q) const;

  /// Median and tail conveniences for the baseline writer and budget gate.
  double p50() const { return quantile(0.5); }
  double p99() const { return quantile(0.99); }
};

/// Log-spaced bucket upper bounds: `per_decade` geometric steps per decade,
/// from `lo` up to the first bound >= `hi` (both must be positive, lo < hi,
/// per_decade >= 1). The workhorse layout for reservoir-free timer tails:
/// log_buckets(1e-4, 1e4, 10) spans 0.1 us .. 10 s in 5.9% steps, so a p99
/// interpolated within one bucket is off by at most ~6% — tight enough for a
/// 25% regression gate with no per-sample storage.
std::vector<double> log_buckets(double lo, double hi, int per_decade);

/// Builds an empty HistogramStat with the given bucket bounds (counts sized
/// and zeroed), ready for observe_value().
HistogramStat make_histogram(std::vector<double> upper_bounds);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // --- counters (monotonic) ---
  void add(const std::string& name, std::uint64_t delta = 1);
  std::uint64_t counter(const std::string& name) const;

  // --- gauges (last value wins) ---
  void set(const std::string& name, double value);
  double gauge(const std::string& name) const;

  // --- timers ---
  /// Records one duration under `name`; ScopedTimer is the usual entry point.
  void record_time(const std::string& name, double ms);
  TimerStat timer(const std::string& name) const;

  // --- histograms ---
  /// Defines the bucket layout; bounds must be strictly increasing and
  /// non-empty. Redefining with identical bounds is a no-op; with different
  /// bounds it throws.
  void define_histogram(const std::string& name, std::vector<double> upper_bounds);
  /// Records one observation; auto-defines decade buckets 1e-3..1e3 when the
  /// histogram was not explicitly defined.
  void observe(const std::string& name, double value);
  /// Like observe(), additionally stamping `exemplar_label` (e.g. a trace id)
  /// as the exemplar of the bucket the value lands in — last write wins per
  /// bucket. An empty label records the value without touching exemplars.
  void observe(const std::string& name, double value, const std::string& exemplar_label);
  HistogramStat histogram(const std::string& name) const;

  // --- snapshots ---
  std::map<std::string, std::uint64_t> counters() const;
  std::map<std::string, double> gauges() const;
  std::map<std::string, TimerStat> timers() const;
  std::map<std::string, HistogramStat> histograms() const;

  /// Full dump: {"counters": {...}, "gauges": {...}, "timers": {...},
  /// "histograms": {...}}. Timers carry wall-clock noise; pass
  /// include_timers=false for deterministic comparisons.
  JsonValue to_json(bool include_timers = true) const;

  /// Multi-line human-readable summary (one metric per line, sorted).
  std::string summary() const;

  /// Prometheus text exposition format 0.0.4 snapshot. Metric families are
  /// prefixed `perfbg_` with dots mapped to underscores; counters and gauges
  /// keep their kind, timers become summaries (`<name>_ms_sum` /
  /// `<name>_ms_count`), histograms become native Prometheus histograms with
  /// cumulative `_bucket{le="..."}` series plus the mandatory `le="+Inf"`,
  /// `_sum` and `_count`. Non-finite gauge values are emitted as Prometheus
  /// `NaN`/`+Inf`/`-Inf` literals. This is the scrape surface the future
  /// perfbgd service will serve verbatim.
  std::string render_text() const;

  void clear();

 private:
  /// Throws when `name` is already bound to a kind other than `kind`.
  void check_kind(const std::string& name, int kind) const;

  mutable std::mutex mu_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, TimerStat> timers_;
  std::map<std::string, HistogramStat> histograms_;
};

/// RAII wall-clock timer: records the elapsed time under `name` on
/// destruction (or at stop()). Null-registry construction makes it a no-op,
/// so call sites need no branching.
class ScopedTimer {
 public:
  ScopedTimer(MetricsRegistry* registry, std::string name)
      : registry_(registry),
        name_(std::move(name)),
        start_(registry ? std::chrono::steady_clock::now()
                        : std::chrono::steady_clock::time_point{}) {}
  ~ScopedTimer() { stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Records now and disarms; returns the elapsed milliseconds (0 if no-op).
  double stop() {
    if (!registry_) return 0.0;
    const auto end = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(end - start_).count();
    registry_->record_time(name_, ms);
    registry_ = nullptr;
    return ms;
  }

 private:
  MetricsRegistry* registry_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace perfbg::obs
