#include "workloads/presets.hpp"

#include "traffic/processes.hpp"

namespace perfbg::workloads {

namespace {

// All fitted workloads are pinned as explicit (v1, v2, l1, l2) MMPP
// parameters (rates per ms). Pinning matters: a 2-state MMPP is NOT uniquely
// determined by (mean rate, SCV, ACF(1), ACF decay) — distinct parameter
// branches share all four statistics yet differ in higher-order structure
// (e.g. whether the burst phase is locally overloaded), which changes queue
// lengths by orders of magnitude. The values below were produced once by
// traffic::fit_mmpp2 / fit_ipp against the documented targets and then
// validated against the discrete-event simulator; the unit tests pin their
// statistics as a regression guard.

// E-mail ("High ACF"): targets mean rate 0.08/6 per ms (8% utilization at
// 6 ms service), SCV 4 (CV 2), ACF(1) 0.375, ACF decay 0.9994. Burst phase
// becomes overloaded once the process is scaled to ~16% utilization, which
// reproduces the paper's Fig. 11 contrast (queue at 19% load matching what
// Poisson reaches only near 95%).
constexpr double kEmailV1 = 1.6646563e-05;
constexpr double kEmailV2 = 2.022357e-06;
constexpr double kEmailL1 = 0.083682569;
constexpr double kEmailL2 = 0.0047867482;

// Software Development ("Low ACF"): targets mean rate 0.06/6 per ms (6%
// utilization), SCV 3, ACF(1) 0.31, ACF decay 0.93 — the ACF is negligible
// past lag ~40, the paper's short-range-dependent comparator. The legible
// Fig. 2 row is kept as software_dev_fig2_verbatim() below; its statistics
// (CV 12.3, ACF(1) 0.49, decay 0.991) contradict the paper's own Low-ACF
// labeling, so that row is treated as corrupted.
constexpr double kSoftDevV1 = 5.980218871e-05;
constexpr double kSoftDevV2 = 0.0001376369405;
constexpr double kSoftDevL1 = 0.01350072845;
constexpr double kSoftDevL2 = 0.001942944512;

// E-mail "Low ACF" comparator (Figs. 11-13): same mean and SCV as E-mail,
// ACF(1) 0.206 with decay 0.55 (gone within a few lags).
constexpr double kLowAcfV1 = 4.881836481e-06;
constexpr double kLowAcfV2 = 0.0001355699734;
constexpr double kLowAcfL1 = 0.01380749211;
constexpr double kLowAcfL2 = 0.000165810578;

// E-mail "IPP" comparator: same mean and SCV as E-mail, zero ACF, 10% of
// time in the bursting phase (from fit_ipp's closed-form bisection).
constexpr double kIppLambdaOn = 0.1333333333;
constexpr double kIppV1 = 0.072;
constexpr double kIppV2 = 0.008;

constexpr double kEmailRate = 0.08 / kMeanServiceTimeMs;

}  // namespace

traffic::MarkovianArrivalProcess email() {
  return traffic::mmpp2(kEmailV1, kEmailV2, kEmailL1, kEmailL2, "email")
      .scaled_to_rate(kEmailRate);
}

traffic::MarkovianArrivalProcess software_dev() {
  return traffic::mmpp2(kSoftDevV1, kSoftDevV2, kSoftDevL1, kSoftDevL2, "software-dev")
      .scaled_to_rate(0.06 / kMeanServiceTimeMs);
}

traffic::MarkovianArrivalProcess software_dev_fig2_verbatim() {
  // Paper Fig. 2, "Soft. Dev." row exactly as printed (rates per ms).
  return traffic::mmpp2(0.9e-6, 0.19e-5, 0.1e-3, 0.35e-1, "software-dev-fig2");
}

traffic::MarkovianArrivalProcess user_accounts() {
  // Paper Fig. 2, "User Accs." row verbatim (rates per ms). Its statistics
  // (CV 1.5, ACF(1) 0.27, decay 0.994) match the paper's description of a
  // lightly loaded system with a strong ACF structure.
  return traffic::mmpp2(0.36e-4, 0.13e-5, 0.1e-1, 0.49e-3, "user-accounts");
}

traffic::MarkovianArrivalProcess email_low_acf() {
  return traffic::mmpp2(kLowAcfV1, kLowAcfV2, kLowAcfL1, kLowAcfL2, "email-low-acf")
      .scaled_to_rate(kEmailRate);
}

traffic::MarkovianArrivalProcess email_ipp() {
  return traffic::ipp(kIppLambdaOn, kIppV1, kIppV2, "email-ipp").scaled_to_rate(kEmailRate);
}

traffic::MarkovianArrivalProcess email_poisson() {
  return traffic::poisson(kEmailRate).renamed("email-poisson");
}

std::vector<traffic::MarkovianArrivalProcess> trace_workloads() {
  return {email(), software_dev(), user_accounts()};
}

std::vector<traffic::MarkovianArrivalProcess> dependence_family() {
  return {email().renamed("high-acf"), email_low_acf().renamed("low-acf"),
          email_ipp().renamed("ipp"), email_poisson().renamed("expo")};
}

}  // namespace perfbg::workloads
