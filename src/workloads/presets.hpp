// The paper's workload family (its Figs. 1-2), reconstructed as documented in
// DESIGN.md §2:
//  * software_dev() and user_accounts() use the paper's Fig. 2 MMPP rows
//    verbatim (rates in 1/ms);
//  * email() is re-fitted to the constraints the paper states for the
//    corrupted E-mail row (8% utilization at 6 ms service, high CV, strong
//    slowly-decaying ACF — the "High ACF" workload);
//  * email_low_acf(), email_ipp() and email_poisson() are the Figs. 11-13
//    comparators: same mean (and, except Poisson, same CV) as email(), with
//    progressively weaker dependence.
#pragma once

#include <vector>

#include "traffic/map_process.hpp"

namespace perfbg::workloads {

/// Mean service time used throughout the paper: 6 ms, exponential.
inline constexpr double kMeanServiceTimeMs = 6.0;

/// "E-mail" workload: High ACF (strong, slowly decaying dependence), 8%
/// native utilization.
traffic::MarkovianArrivalProcess email();

/// "Software Development" workload: Low ACF (short-range dependence, ACF
/// negligible past lag ~40), 6% native utilization.
traffic::MarkovianArrivalProcess software_dev();

/// The paper's Fig. 2 "Soft. Dev." row exactly as printed. Kept for
/// reference only: its statistics contradict the paper's own "Low ACF"
/// labeling (see DESIGN.md §2), so software_dev() uses a re-fit instead.
traffic::MarkovianArrivalProcess software_dev_fig2_verbatim();

/// "User Accounts" workload: strong ACF, lightly loaded system.
/// Paper Fig. 2 parameters verbatim.
traffic::MarkovianArrivalProcess user_accounts();

/// Same mean and CV as email(), weak fast-decaying ACF ("Low ACF" curve of
/// Figs. 11-13).
traffic::MarkovianArrivalProcess email_low_acf();

/// Same mean and CV as email(), zero ACF (the "IPP" curve).
traffic::MarkovianArrivalProcess email_ipp();

/// Same mean as email(), CV = 1, zero ACF (the "Expo" curve).
traffic::MarkovianArrivalProcess email_poisson();

/// All three trace workloads, in the paper's presentation order.
std::vector<traffic::MarkovianArrivalProcess> trace_workloads();

/// The Figs. 11-13 comparator family: {High ACF, Low ACF, IPP, Expo}.
std::vector<traffic::MarkovianArrivalProcess> dependence_family();

}  // namespace perfbg::workloads
