// Synthetic trace generation and empirical time-series statistics — the
// stand-in for the paper's measured disk-level traces (see DESIGN.md §2).
// The estimators regenerate the contents of the paper's Fig. 1: mean, CV and
// ACF(k) of interarrival and service times.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "traffic/map_process.hpp"

namespace perfbg::workloads {

/// Samples n successive interarrival times from the process.
std::vector<double> generate_interarrival_trace(const traffic::MarkovianArrivalProcess& process,
                                                std::size_t n, std::uint64_t seed);

/// Samples n i.i.d. exponential service times with the given mean (the
/// paper's service process).
std::vector<double> generate_service_trace(double mean, std::size_t n, std::uint64_t seed);

/// Sample mean.
double series_mean(const std::vector<double>& xs);

/// Sample coefficient of variation (std dev / mean).
double series_cv(const std::vector<double>& xs);

/// Empirical autocorrelation at lags 1..max_lag (biased divisor n, the
/// standard choice for ACF plots).
std::vector<double> series_acf(const std::vector<double>& xs, int max_lag);

/// The full paper workflow, trace -> model: estimates mean, SCV, ACF(1) and
/// the geometric ACF decay from an interarrival trace and fits a 2-state
/// MMPP to them (traffic::fit_mmpp2). `decay_fit_lags` controls how many
/// leading lags enter the least-squares decay estimate.
///
/// Caveat inherited from the fitter: a 2-state MMPP is not identified by
/// these four statistics alone (see workloads/presets.cpp), so round-trips
/// recover the statistics, not necessarily the generating parameters.
traffic::MarkovianArrivalProcess fit_mmpp2_from_trace(const std::vector<double>& interarrivals,
                                                      int decay_fit_lags = 40,
                                                      std::string name = "trace-fit");

}  // namespace perfbg::workloads
