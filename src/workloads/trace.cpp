#include "workloads/trace.hpp"

#include <cmath>
#include <random>

#include "traffic/fitting.hpp"
#include "traffic/sampler.hpp"
#include "util/check.hpp"

namespace perfbg::workloads {

std::vector<double> generate_interarrival_trace(const traffic::MarkovianArrivalProcess& process,
                                                std::size_t n, std::uint64_t seed) {
  traffic::MapSampler sampler(process, seed);
  return sampler.sample(n);
}

std::vector<double> generate_service_trace(double mean, std::size_t n, std::uint64_t seed) {
  PERFBG_REQUIRE(mean > 0.0, "mean service time must be positive");
  std::mt19937_64 rng(seed);
  std::exponential_distribution<double> d(1.0 / mean);
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(d(rng));
  return out;
}

double series_mean(const std::vector<double>& xs) {
  PERFBG_REQUIRE(!xs.empty(), "empty series");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double series_cv(const std::vector<double>& xs) {
  PERFBG_REQUIRE(xs.size() >= 2, "need at least two samples for a CV");
  const double mu = series_mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - mu) * (x - mu);
  const double var = ss / static_cast<double>(xs.size() - 1);
  return std::sqrt(var) / mu;
}

std::vector<double> series_acf(const std::vector<double>& xs, int max_lag) {
  PERFBG_REQUIRE(max_lag >= 1, "max_lag must be >= 1");
  PERFBG_REQUIRE(xs.size() > static_cast<std::size_t>(max_lag) + 1,
                 "series too short for the requested lag");
  const std::size_t n = xs.size();
  const double mu = series_mean(xs);
  double denom = 0.0;
  for (double x : xs) denom += (x - mu) * (x - mu);
  std::vector<double> acf;
  acf.reserve(static_cast<std::size_t>(max_lag));
  for (int k = 1; k <= max_lag; ++k) {
    double num = 0.0;
    for (std::size_t t = 0; t + static_cast<std::size_t>(k) < n; ++t)
      num += (xs[t] - mu) * (xs[t + static_cast<std::size_t>(k)] - mu);
    acf.push_back(denom > 0.0 ? num / denom : 0.0);
  }
  return acf;
}

traffic::MarkovianArrivalProcess fit_mmpp2_from_trace(const std::vector<double>& interarrivals,
                                                      int decay_fit_lags, std::string name) {
  PERFBG_REQUIRE(decay_fit_lags >= 2, "need at least two lags for the decay estimate");
  PERFBG_REQUIRE(interarrivals.size() > 10u * static_cast<std::size_t>(decay_fit_lags),
                 "trace too short to estimate the requested lags reliably");
  const double mean = series_mean(interarrivals);
  const double cv = series_cv(interarrivals);
  const std::vector<double> acf = series_acf(interarrivals, decay_fit_lags);

  // Geometric decay: least-squares slope of log |ACF(k)| over the lags whose
  // estimate is clearly above the noise floor.
  const double floor = 3.0 / std::sqrt(static_cast<double>(interarrivals.size()));
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  int n = 0;
  for (int k = 1; k <= decay_fit_lags; ++k) {
    const double a = acf[static_cast<std::size_t>(k - 1)];
    if (a <= floor) break;  // stop at the first lag that is noise
    const double x = k, y = std::log(a);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  PERFBG_REQUIRE(n >= 2, "trace shows no autocorrelation above the noise floor; "
                         "fit a renewal process (e.g. fit_ipp or poisson) instead");
  const double slope = (static_cast<double>(n) * sxy - sx * sy) /
                       (static_cast<double>(n) * sxx - sx * sx);
  const double decay = std::exp(slope);

  traffic::Mmpp2FitTarget target;
  target.mean_rate = 1.0 / mean;
  target.scv = cv * cv;
  target.acf1 = acf[0];
  target.acf_decay = std::min(std::max(decay, 1e-6), 1.0 - 1e-9);
  // Empirical targets rarely sit exactly on the MMPP(2) feasible surface
  // (the paper's own fits don't either); accept the best 2-state match.
  return traffic::fit_mmpp2(target, 0.25, std::move(name)).process;
}

}  // namespace perfbg::workloads
