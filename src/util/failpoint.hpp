// Failpoints: named fault-injection seams compiled into production code.
//
// A failpoint is one call — `failpoint("server.cache.insert")` — placed where
// a rare failure (allocation, write error, scheduler stall) is possible in
// production but nearly impossible to provoke in a test. With no hook
// installed the call is a single relaxed atomic load returning 0, cheap
// enough to leave in every hot path. A chaos run installs a FailpointHook
// (src/chaos/fault_plan.hpp drives one from a seeded schedule) and the seams
// start firing deterministically; the code around each seam must then degrade
// the way its comments promise — drop the cache entry, surface a typed error,
// count the failure — instead of corrupting state or hanging.
//
// The same header owns the chaos clock: `chaos_now()` is steady_clock::now()
// plus an injectable skew, used by the daemon watchdog and the cancellation
// token's deadline latch so clock-jump faults can age deadlines without
// waiting wall-clock time. Production pays one relaxed load; the skew is only
// ever written by chaos drivers and tests.
//
// Registered seams (grep for the literal to find the degrade path):
//   server.cache.insert        memo-cache node allocation (entry dropped)
//   server.flight.complete     storing a flight outcome (typed error to waiters)
//   obs.recorder.append        flight-recorder ring store (record dropped whole)
//   runner.journal.append      journal line write (typed failure to the caller)
//   server.worker.stall_ms     worker stalls for the returned ms before solving
//   server.worker.abort        worker aborts the solve with a typed error
//   server.watchdog.clock_jump_ms  watchdog applies the returned ms as skew
#pragma once

#include <chrono>
#include <cstdint>

namespace perfbg {

/// Decides whether a named seam fires. evaluate() is called concurrently from
/// every thread that crosses a seam; implementations must be thread-safe and
/// must not throw (a failpoint that itself fails defeats the experiment).
class FailpointHook {
 public:
  virtual ~FailpointHook() = default;
  /// Nonzero = the seam fires; the magnitude is seam-specific (a stall
  /// duration in ms, a skew in ms, or just 1 for yes/no seams).
  virtual std::int64_t evaluate(const char* name) noexcept = 0;
};

/// Installs (or, with nullptr, clears) the process-global hook. Chaos/test
/// only; not safe against in-flight evaluate() calls of a *different* hook,
/// so install before the threads that cross seams start and clear after they
/// stop (same contract as server::install_io_fault_injector).
void install_failpoint_hook(FailpointHook* hook);

/// The seam call: 0 when no hook is installed (one relaxed atomic load),
/// otherwise whatever the hook decides for `name`.
std::int64_t failpoint(const char* name);

/// RAII installer so a throwing test cannot leave the global hook pointing at
/// a dead object.
class ScopedFailpointHook {
 public:
  explicit ScopedFailpointHook(FailpointHook& hook) { install_failpoint_hook(&hook); }
  ~ScopedFailpointHook() { install_failpoint_hook(nullptr); }
  ScopedFailpointHook(const ScopedFailpointHook&) = delete;
  ScopedFailpointHook& operator=(const ScopedFailpointHook&) = delete;
};

// ---------------------------------------------------------------------------
// Chaos clock

/// steady_clock::now() shifted by the injected skew. Deadline *comparisons*
/// (watchdog eviction, cancellation-token latching) read this clock so a
/// chaos run can jump time forward and age every armed deadline at once;
/// durations and telemetry keep using the real clock.
std::chrono::steady_clock::time_point chaos_now();

/// Adds `ms` to the injected skew (negative jumps backwards). Chaos/test only.
void add_clock_skew_ms(double ms);
/// Clears the skew back to real time.
void reset_clock_skew();
/// Current skew in nanoseconds (0 in production).
std::int64_t clock_skew_ns();

}  // namespace perfbg
