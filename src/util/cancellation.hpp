// Cooperative cancellation for long-running solves.
//
// A CancellationToken carries two independent stop signals:
//   - a deadline (steady-clock time point) armed by the owner before the work
//     starts, enforcing a per-point wall-clock budget, and
//   - an explicit cancel() flag, flipped from another thread (e.g. the sweep
//     runner draining after a second SIGINT).
//
// The solve-side contract is a single call, `token->check()`, placed inside
// every unbounded iteration loop (the qbd R/G solvers; see RSolverOptions::
// cancel). check() throws perfbg::Error{kDeadlineExceeded} or {kInterrupted}
// — both non-recoverable codes the fallback ladder propagates instead of
// descending — so a wedged point unwinds out of the solver in at most one
// iteration instead of hanging the run.
//
// Cost when armed: one relaxed atomic load per check, plus a clock read only
// when a deadline is set. Instrumented code takes a `const CancellationToken*`
// that may be null; a null token is a no-op.
//
// Thread model: arm (set_deadline) and reset() belong to the worker that owns
// the point; cancel() may be called from any thread at any time. All shared
// state is atomic, so the token is safe under -fsanitize=thread.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace perfbg {

/// Why a token fired; kNone means "keep going".
enum class CancelReason : int { kNone = 0, kDeadline = 1, kInterrupt = 2 };

class CancellationToken {
 public:
  CancellationToken() = default;
  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Arms the wall-clock deadline; the token fires once now() passes it.
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ns_.store(deadline.time_since_epoch().count(), std::memory_order_relaxed);
  }
  /// Convenience: deadline = now + budget_ms. A budget <= 0 disarms.
  void set_deadline_after_ms(double budget_ms);

  /// Requests a stop from any thread (idempotent; the first reason wins so a
  /// deadline that already fired is not re-labelled as an interrupt).
  void cancel(CancelReason reason = CancelReason::kInterrupt) {
    int expected = static_cast<int>(CancelReason::kNone);
    reason_.compare_exchange_strong(expected, static_cast<int>(reason),
                                    std::memory_order_relaxed);
  }

  /// Disarms both signals, making the token reusable for the next attempt.
  void reset() {
    reason_.store(static_cast<int>(CancelReason::kNone), std::memory_order_relaxed);
    deadline_ns_.store(kNoDeadline, std::memory_order_relaxed);
  }

  /// Current stop state; latches an elapsed deadline into the cancel flag so
  /// later checks are a flag read, not a clock read.
  CancelReason state() const;

  bool cancelled() const { return state() != CancelReason::kNone; }

  /// Throws perfbg::Error{kDeadlineExceeded} or {kInterrupted} when the token
  /// has fired; returns otherwise. The solver-side cancellation point.
  void check() const;

 private:
  static constexpr std::int64_t kNoDeadline = INT64_MAX;

  // mutable: state() latches a fired deadline from const readers.
  mutable std::atomic<int> reason_{static_cast<int>(CancelReason::kNone)};
  std::atomic<std::int64_t> deadline_ns_{kNoDeadline};
};

}  // namespace perfbg
