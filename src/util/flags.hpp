// Minimal command-line flag parsing for the example/tool binaries:
// --name=value and --name value forms, typed accessors with defaults, and
// error reporting that lists the registered flags.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace perfbg {

class Flags {
 public:
  /// Registers a flag with its help text; call before parse().
  void define(const std::string& name, const std::string& help);

  /// Registers a valueless switch (e.g. --help): a bare occurrence sets it to
  /// "true" without consuming the next argument.
  void define_switch(const std::string& name, const std::string& help);

  /// Parses argv. Throws std::invalid_argument on unknown flags, malformed
  /// arguments, or a non-switch flag without a value.
  void parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  /// Typed accessors; throw std::invalid_argument on conversion failure.
  std::string get_string(const std::string& name, const std::string& fallback) const;
  double get_double(const std::string& name, double fallback) const;
  int get_int(const std::string& name, int fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// One line per registered flag, for --help output.
  std::string help() const;

 private:
  std::map<std::string, std::string> defined_;  // name -> help
  std::map<std::string, bool> is_switch_;       // name -> valueless?
  std::map<std::string, std::string> values_;
  std::optional<std::string> raw(const std::string& name) const;
};

}  // namespace perfbg
