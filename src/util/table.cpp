#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace perfbg {

std::string format_number(double v, int significant_digits) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  std::ostringstream os;
  const double a = std::abs(v);
  if (v != 0.0 && (a >= 1e7 || a < 1e-4)) {
    os << std::scientific << std::setprecision(std::max(0, significant_digits - 1)) << v;
    return os.str();
  }
  os << std::setprecision(significant_digits) << v;
  std::string s = os.str();
  // std::setprecision in default float format already trims trailing zeros.
  return s;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  PERFBG_REQUIRE(!headers_.empty(), "a table needs at least one column");
}

void Table::set_precision(int digits) {
  PERFBG_REQUIRE(digits >= 1 && digits <= 17, "precision out of range");
  precision_ = digits;
}

void Table::add_row(std::vector<TableCell> cells) {
  PERFBG_REQUIRE(cells.size() == headers_.size(), "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string Table::render_cell(const TableCell& c) const {
  if (std::holds_alternative<std::string>(c)) return std::get<std::string>(c);
  return format_number(std::get<double>(c), precision_);
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t j = 0; j < headers_.size(); ++j) widths[j] = headers_[j].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (std::size_t j = 0; j < row.size(); ++j) {
      r.push_back(render_cell(row[j]));
      widths[j] = std::max(widths[j], r.back().size());
    }
    rendered.push_back(std::move(r));
  }
  auto print_row = [&](const std::vector<std::string>& r) {
    for (std::size_t j = 0; j < r.size(); ++j) {
      os << std::left << std::setw(static_cast<int>(widths[j]) + 2) << r[j];
    }
    os << '\n';
  };
  print_row(headers_);
  std::string rule;
  for (std::size_t j = 0; j < widths.size(); ++j) rule += std::string(widths[j] + 2, '-');
  os << rule << '\n';
  for (const auto& r : rendered) print_row(r);
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& r) {
    for (std::size_t j = 0; j < r.size(); ++j) {
      if (j) os << ',';
      os << r[j];
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) {
    std::vector<std::string> r;
    r.reserve(row.size());
    for (const auto& c : row) r.push_back(render_cell(c));
    print_row(r);
  }
}

}  // namespace perfbg
