// Derivative-free minimization (Nelder–Mead simplex), used by the traffic
// fitters to match MMPP parameters to workload statistics.
#pragma once

#include <functional>
#include <vector>

namespace perfbg {

struct NelderMeadOptions {
  int max_iters = 20000;
  double f_tol = 1e-13;     ///< stop when simplex f-spread falls below this
  double x_tol = 1e-12;     ///< ... or the simplex diameter falls below this
  double initial_step = 0.5;  ///< per-coordinate initial simplex offset
};

struct NelderMeadResult {
  std::vector<double> x;
  double fx = 0.0;
  int iterations = 0;
  bool converged = false;
};

/// Minimizes f over R^n starting from x0 with the Nelder–Mead simplex method
/// (standard reflection/expansion/contraction/shrink coefficients).
NelderMeadResult nelder_mead(const std::function<double(const std::vector<double>&)>& f,
                             std::vector<double> x0, const NelderMeadOptions& opts = {});

}  // namespace perfbg
