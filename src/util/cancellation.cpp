#include "util/cancellation.hpp"

#include "util/error.hpp"
#include "util/failpoint.hpp"

namespace perfbg {

void CancellationToken::set_deadline_after_ms(double budget_ms) {
  if (budget_ms <= 0.0) {
    deadline_ns_.store(kNoDeadline, std::memory_order_relaxed);
    return;
  }
  const auto budget = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double, std::milli>(budget_ms));
  set_deadline(std::chrono::steady_clock::now() + budget);
}

CancelReason CancellationToken::state() const {
  const int r = reason_.load(std::memory_order_relaxed);
  if (r != static_cast<int>(CancelReason::kNone)) return static_cast<CancelReason>(r);
  const std::int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
  // chaos_now(): the deadline comparison honours injected clock jumps, so a
  // chaos run can age an armed deadline without waiting it out in wall time.
  if (deadline != kNoDeadline && chaos_now().time_since_epoch().count() >= deadline) {
    // Latch so every subsequent check is a plain flag read.
    int expected = static_cast<int>(CancelReason::kNone);
    reason_.compare_exchange_strong(expected, static_cast<int>(CancelReason::kDeadline),
                                    std::memory_order_relaxed);
    return static_cast<CancelReason>(reason_.load(std::memory_order_relaxed));
  }
  return CancelReason::kNone;
}

void CancellationToken::check() const {
  switch (state()) {
    case CancelReason::kNone:
      return;
    case CancelReason::kDeadline:
      throw Error(ErrorCode::kDeadlineExceeded,
                  "solve abandoned: the point's wall-clock deadline elapsed "
                  "(--point-timeout-ms)");
    case CancelReason::kInterrupt:
      throw Error(ErrorCode::kInterrupted,
                  "solve abandoned: the run was interrupted and is draining");
  }
}

}  // namespace perfbg
