#include "util/check.hpp"

namespace perfbg::detail {

void dcheck_failed(const char* cond, const char* file, int line,
                   const std::string& msg) {
  throw_logic_error(cond, file, line, msg);
}

}  // namespace perfbg::detail
