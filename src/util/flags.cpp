#include "util/flags.hpp"

#include <sstream>
#include <stdexcept>

#include "util/check.hpp"

namespace perfbg {

void Flags::define(const std::string& name, const std::string& help) {
  PERFBG_REQUIRE(!name.empty() && name.find('=') == std::string::npos,
                 "flag names must be non-empty and contain no '='");
  PERFBG_REQUIRE(defined_.emplace(name, help).second, "duplicate flag definition");
  is_switch_[name] = false;
}

void Flags::define_switch(const std::string& name, const std::string& help) {
  define(name, help);
  is_switch_[name] = true;
}

void Flags::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0)
      throw std::invalid_argument("perfbg: expected --flag, got '" + arg + "'");
    arg = arg.substr(2);
    std::string name, value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      if (defined_.count(name) == 0)
        throw std::invalid_argument("perfbg: unknown flag --" + name + "\n" + help());
      if (is_switch_.at(name)) {
        value = "true";  // bare switch: --help
      } else {
        if (i + 1 >= argc)
          throw std::invalid_argument("perfbg: flag --" + name + " needs a value");
        value = argv[++i];
      }
    }
    if (defined_.count(name) == 0)
      throw std::invalid_argument("perfbg: unknown flag --" + name + "\n" + help());
    values_[name] = value;
  }
}

bool Flags::has(const std::string& name) const { return values_.count(name) > 0; }

std::optional<std::string> Flags::raw(const std::string& name) const {
  PERFBG_REQUIRE(defined_.count(name) > 0, "flag was never defined");
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Flags::get_string(const std::string& name, const std::string& fallback) const {
  return raw(name).value_or(fallback);
}

double Flags::get_double(const std::string& name, double fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  std::size_t pos = 0;
  double out = 0.0;
  try {
    out = std::stod(*v, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("perfbg: flag --" + name + " expects a number, got '" + *v +
                                "'");
  }
  if (pos != v->size())
    throw std::invalid_argument("perfbg: flag --" + name + " expects a number, got '" + *v +
                                "'");
  return out;
}

int Flags::get_int(const std::string& name, int fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  std::size_t pos = 0;
  int out = 0;
  try {
    out = std::stoi(*v, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("perfbg: flag --" + name + " expects an integer, got '" + *v +
                                "'");
  }
  if (pos != v->size())
    throw std::invalid_argument("perfbg: flag --" + name + " expects an integer, got '" + *v +
                                "'");
  return out;
}

bool Flags::get_bool(const std::string& name, bool fallback) const {
  const auto v = raw(name);
  if (!v) return fallback;
  if (*v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  throw std::invalid_argument("perfbg: flag --" + name + " expects true/false, got '" + *v +
                              "'");
}

std::string Flags::help() const {
  std::ostringstream os;
  os << "flags:\n";
  for (const auto& [name, text] : defined_) os << "  --" << name << "  " << text << "\n";
  return os.str();
}

}  // namespace perfbg
