#include "util/error.hpp"

#include <sstream>

namespace perfbg {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidModel: return "kInvalidModel";
    case ErrorCode::kUnstableQbd: return "kUnstableQbd";
    case ErrorCode::kSingularMatrix: return "kSingularMatrix";
    case ErrorCode::kNonConvergence: return "kNonConvergence";
    case ErrorCode::kNumericalBreakdown: return "kNumericalBreakdown";
    case ErrorCode::kDeadlineExceeded: return "kDeadlineExceeded";
    case ErrorCode::kInterrupted: return "kInterrupted";
    case ErrorCode::kOverloaded: return "kOverloaded";
    case ErrorCode::kCircuitOpen: return "kCircuitOpen";
  }
  return "kUnknown";
}

int error_exit_code(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidModel: return 3;
    case ErrorCode::kUnstableQbd: return 4;
    case ErrorCode::kSingularMatrix: return 5;
    case ErrorCode::kNonConvergence: return 6;
    case ErrorCode::kNumericalBreakdown: return 7;
    case ErrorCode::kDeadlineExceeded: return 8;
    case ErrorCode::kInterrupted: return 9;
    case ErrorCode::kOverloaded: return 10;
    case ErrorCode::kCircuitOpen: return 11;
  }
  return 1;
}

namespace {

std::string render(ErrorCode code, const std::string& message, const ErrorContext& ctx) {
  std::ostringstream os;
  os << "perfbg: [" << error_code_name(code) << "] " << message;
  const char* sep = " (";
  const char* close = "";
  if (ctx.has_drift_ratio()) {
    os << sep << "drift ratio " << ctx.drift_ratio;
    sep = ", ";
    close = ")";
  }
  if (ctx.has_iterations()) {
    os << sep << "after " << ctx.iterations << " iterations";
    sep = ", ";
    close = ")";
  }
  if (ctx.has_last_residual()) {
    os << sep << "last residual " << ctx.last_residual;
    sep = ", ";
    close = ")";
  }
  if (ctx.has_matrix_size()) {
    os << sep << "matrix size " << ctx.matrix_size;
    sep = ", ";
    close = ")";
  }
  os << close;
  return os.str();
}

}  // namespace

Error::Error(ErrorCode code, const std::string& message, ErrorContext context)
    : std::runtime_error(render(code, message, context)),
      code_(code),
      context_(context),
      message_(message) {}

}  // namespace perfbg
