// Precondition / argument checking helpers shared by all perfbg libraries.
//
// Public API functions validate their inputs with PERFBG_REQUIRE (throws
// std::invalid_argument) so misuse is reported at the call boundary; internal
// invariants use PERFBG_ASSERT (throws std::logic_error) so a violated
// invariant is never silently ignored, even in release builds.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace perfbg {

namespace detail {

[[noreturn]] inline void throw_invalid_argument(const char* cond, const char* file, int line,
                                                const std::string& msg) {
  std::ostringstream os;
  os << "perfbg: precondition failed: " << cond;
  if (!msg.empty()) os << " (" << msg << ")";
  os << " at " << file << ":" << line;
  throw std::invalid_argument(os.str());
}

[[noreturn]] inline void throw_logic_error(const char* cond, const char* file, int line,
                                           const std::string& msg) {
  std::ostringstream os;
  os << "perfbg: internal invariant violated: " << cond;
  if (!msg.empty()) os << " (" << msg << ")";
  os << " at " << file << ":" << line;
  throw std::logic_error(os.str());
}

/// Failure funnel for enabled PERFBG_DCHECKs. Deliberately out-of-line
/// (defined in check.cpp): every translation unit with a live DCHECK carries
/// an undefined reference to this symbol, so the release-build guard
/// (cmake/release_guard.cmake, the CI release job) can prove by symbol scan
/// that no debug check survived into the hot solver libraries in Release.
[[noreturn]] void dcheck_failed(const char* cond, const char* file, int line,
                                const std::string& msg);

}  // namespace detail

}  // namespace perfbg

#define PERFBG_REQUIRE(cond, msg)                                                  \
  do {                                                                             \
    if (!(cond)) ::perfbg::detail::throw_invalid_argument(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

#define PERFBG_ASSERT(cond, msg)                                                   \
  do {                                                                             \
    if (!(cond)) ::perfbg::detail::throw_logic_error(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

// Debug-only invariant check: compiled to nothing in NDEBUG builds (the
// default RelWithDebInfo), so it may guard conditions that are expensive to
// evaluate or numerically tight. Define PERFBG_FORCE_DCHECKS to keep the
// checks in optimized builds (the sanitizer CI job does).
#if !defined(NDEBUG) || defined(PERFBG_FORCE_DCHECKS)
#define PERFBG_DCHECK(cond, msg)                                                   \
  do {                                                                             \
    if (!(cond)) ::perfbg::detail::dcheck_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)
#else
#define PERFBG_DCHECK(cond, msg) \
  do {                           \
  } while (false)
#endif
