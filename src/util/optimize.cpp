#include "util/optimize.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace perfbg {

NelderMeadResult nelder_mead(const std::function<double(const std::vector<double>&)>& f,
                             std::vector<double> x0, const NelderMeadOptions& opts) {
  PERFBG_REQUIRE(!x0.empty(), "nelder_mead needs at least one dimension");
  const std::size_t n = x0.size();

  std::vector<std::vector<double>> simplex(n + 1, x0);
  for (std::size_t i = 0; i < n; ++i) simplex[i + 1][i] += opts.initial_step;
  std::vector<double> fv(n + 1);
  for (std::size_t i = 0; i <= n; ++i) fv[i] = f(simplex[i]);

  NelderMeadResult res;
  int it = 0;
  for (; it < opts.max_iters; ++it) {
    // Order vertices by function value.
    std::vector<std::size_t> idx(n + 1);
    for (std::size_t i = 0; i <= n; ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) { return fv[a] < fv[b]; });
    const std::size_t best = idx[0], worst = idx[n], second_worst = idx[n - 1];

    // Convergence: f-spread and simplex diameter.
    double diam = 0.0;
    for (std::size_t i = 1; i <= n; ++i)
      for (std::size_t j = 0; j < n; ++j)
        diam = std::max(diam, std::abs(simplex[idx[i]][j] - simplex[best][j]));
    // Require BOTH a small f-spread and a small simplex: an f-spread of zero
    // alone can be a symmetric straddle (e.g. two points mirrored around a
    // 1-D minimum), from which contraction still makes progress.
    if (std::abs(fv[worst] - fv[best]) < opts.f_tol && diam < std::sqrt(opts.x_tol)) {
      res.converged = true;
      break;
    }
    if (diam < opts.x_tol) {
      res.converged = true;
      break;
    }

    // Centroid of all but the worst vertex.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == worst) continue;
      for (std::size_t j = 0; j < n; ++j) centroid[j] += simplex[i][j];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    auto blend = [&](double t) {
      std::vector<double> p(n);
      for (std::size_t j = 0; j < n; ++j)
        p[j] = centroid[j] + t * (centroid[j] - simplex[worst][j]);
      return p;
    };

    const std::vector<double> xr = blend(1.0);  // reflection
    const double fr = f(xr);
    if (fr < fv[best]) {
      const std::vector<double> xe = blend(2.0);  // expansion
      const double fe = f(xe);
      if (fe < fr) {
        simplex[worst] = xe;
        fv[worst] = fe;
      } else {
        simplex[worst] = xr;
        fv[worst] = fr;
      }
    } else if (fr < fv[second_worst]) {
      simplex[worst] = xr;
      fv[worst] = fr;
    } else {
      const bool outside = fr < fv[worst];
      const std::vector<double> xc = blend(outside ? 0.5 : -0.5);  // contraction
      const double fc = f(xc);
      if (fc < std::min(fr, fv[worst])) {
        simplex[worst] = xc;
        fv[worst] = fc;
      } else {
        // Shrink toward the best vertex.
        for (std::size_t i = 0; i <= n; ++i) {
          if (i == best) continue;
          for (std::size_t j = 0; j < n; ++j)
            simplex[i][j] = simplex[best][j] + 0.5 * (simplex[i][j] - simplex[best][j]);
          fv[i] = f(simplex[i]);
        }
      }
    }
  }

  std::size_t best = 0;
  for (std::size_t i = 1; i <= n; ++i)
    if (fv[i] < fv[best]) best = i;
  res.x = simplex[best];
  res.fx = fv[best];
  res.iterations = it;
  return res;
}

}  // namespace perfbg
