// Lightweight aligned-text / CSV table writer used by the benchmark harnesses
// to print figure and table series in a uniform, diff-friendly format.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace perfbg {

/// A cell is either text or a number (numbers get consistent formatting).
using TableCell = std::variant<std::string, double>;

/// Accumulates rows and renders them either as an aligned text table or CSV.
///
/// Usage:
///   Table t({"load", "p", "qlen_fg"});
///   t.add_row({0.1, 0.3, 0.0521});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; the cell count must match the header count.
  void add_row(std::vector<TableCell> cells);

  /// Number of data rows added so far.
  std::size_t row_count() const { return rows_.size(); }

  /// Renders an aligned, human-readable table.
  void print(std::ostream& os) const;

  /// Renders RFC-4180-ish CSV (no quoting needed for our content).
  void print_csv(std::ostream& os) const;

  /// Number formatting: significant digits for numeric cells (default 6).
  void set_precision(int digits);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<TableCell>> rows_;
  int precision_ = 6;

  std::string render_cell(const TableCell& c) const;
};

/// Formats a double with the given significant digits, trimming trailing
/// zeros ("0.3" not "0.300000"), using scientific notation when warranted.
std::string format_number(double v, int significant_digits = 6);

}  // namespace perfbg
