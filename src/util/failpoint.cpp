#include "util/failpoint.hpp"

#include <atomic>

namespace perfbg {

namespace {

std::atomic<FailpointHook*> g_hook{nullptr};
std::atomic<std::int64_t> g_skew_ns{0};

}  // namespace

void install_failpoint_hook(FailpointHook* hook) {
  g_hook.store(hook, std::memory_order_release);
}

std::int64_t failpoint(const char* name) {
  FailpointHook* hook = g_hook.load(std::memory_order_acquire);
  return hook ? hook->evaluate(name) : 0;
}

std::chrono::steady_clock::time_point chaos_now() {
  const std::int64_t skew = g_skew_ns.load(std::memory_order_relaxed);
  const auto now = std::chrono::steady_clock::now();
  return skew == 0 ? now : now + std::chrono::nanoseconds(skew);
}

void add_clock_skew_ms(double ms) {
  g_skew_ns.fetch_add(static_cast<std::int64_t>(ms * 1e6), std::memory_order_relaxed);
}

void reset_clock_skew() { g_skew_ns.store(0, std::memory_order_relaxed); }

std::int64_t clock_skew_ns() { return g_skew_ns.load(std::memory_order_relaxed); }

}  // namespace perfbg
