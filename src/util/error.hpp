// Typed error taxonomy for the solve pipeline.
//
// Every failure the analytic pipeline can produce is classified by an
// ErrorCode and carries machine-readable context (drift estimate, iteration
// count, last residual, matrix size) so callers can degrade gracefully:
// a figure sweep records the point as failed and moves on, the CLI maps the
// code to a documented exit status, and tests assert the exact failure class
// instead of grepping message strings.
//
// Error derives from std::runtime_error, so pre-taxonomy call sites that
// catch (or EXPECT_THROW) std::runtime_error keep working unchanged.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace perfbg {

enum class ErrorCode {
  kInvalidModel,        ///< malformed input: NaN/Inf entries, broken row sums,
                        ///< wrong shapes, non-generator structure
  kUnstableQbd,         ///< drift condition violated (rho >= 1); diagnosed by
                        ///< preflight before any iteration is spent
  kSingularMatrix,      ///< exact zero pivot in LU or GTH elimination
  kNonConvergence,      ///< an iterative solver burned max_iters on every
                        ///< rung of its fallback ladder
  kNumericalBreakdown,  ///< an iterate turned non-finite mid-solve
  kDeadlineExceeded,    ///< a cooperative cancellation token's deadline fired
                        ///< mid-solve (sweep runner --point-timeout-ms)
  kInterrupted,         ///< the run was interrupted (SIGINT/SIGTERM) and
                        ///< drained; journaled sweeps are resumable
  kOverloaded,          ///< admission control shed the request: the daemon's
                        ///< accept/work queues or in-flight budget were full
                        ///< (retry later against a less loaded server)
  kCircuitOpen,         ///< the per-model-class circuit breaker is open after
                        ///< repeated solver failures; fast-failed with the
                        ///< cached error until a cool-down probe succeeds
};

/// Stable identifier string for a code ("kUnstableQbd", ...), used in error
/// records, run reports, and log lines.
const char* error_code_name(ErrorCode code);

/// Process exit status the CLI maps each code to (documented in DESIGN.md §9
/// and the README exit-code table): kInvalidModel=3, kUnstableQbd=4,
/// kSingularMatrix=5, kNonConvergence=6, kNumericalBreakdown=7,
/// kDeadlineExceeded=8, kInterrupted=9, kOverloaded=10, kCircuitOpen=11.
/// Exit 9 means "interrupted but resumable": a journaled sweep can be
/// continued with --resume.
int error_exit_code(ErrorCode code);

/// Machine-readable failure context. Fields default to "unknown" sentinels;
/// producers fill in whatever they measured before failing.
struct ErrorContext {
  double drift_ratio = -1.0;    ///< rho estimate of the repeating part (< 0: unknown)
  int iterations = -1;          ///< iterations spent before giving up (< 0: n/a)
  double last_residual = -1.0;  ///< last iteration increment / residual (< 0: n/a)
  std::size_t matrix_size = 0;  ///< offending matrix dimension (0: n/a)

  bool has_drift_ratio() const { return drift_ratio >= 0.0; }
  bool has_iterations() const { return iterations >= 0; }
  bool has_last_residual() const { return last_residual >= 0.0; }
  bool has_matrix_size() const { return matrix_size > 0; }
};

/// A classified pipeline failure. what() is "perfbg: [<code>] <message>" plus
/// a rendering of the non-empty context fields, so logs stay actionable even
/// where only the string survives.
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& message, ErrorContext context = {});

  ErrorCode code() const { return code_; }
  const ErrorContext& context() const { return context_; }
  /// The message passed to the constructor, without the code/context framing.
  const std::string& message() const { return message_; }

 private:
  ErrorCode code_;
  ErrorContext context_;
  std::string message_;
};

}  // namespace perfbg
