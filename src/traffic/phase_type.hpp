// Phase-type (PH) distributions: absorbing-CTMC representations of service
// and wait times. The paper models service as exponential but notes (its
// footnote 3) that the same Kronecker construction supports MAP/PH service
// and idle-wait processes; the chain builder uses this class to implement
// that extension.
//
// A PH distribution is (alpha, S): alpha is the initial phase distribution
// over m transient phases and S the m x m subgenerator (negative diagonal,
// nonnegative off-diagonal, row sums <= 0); absorption from phase i occurs
// at rate s0_i = -sum_j S_ij.
#pragma once

#include <string>

#include "linalg/matrix.hpp"

namespace perfbg::traffic {

class PhaseType {
 public:
  using Matrix = linalg::Matrix;
  using Vector = linalg::Vector;

  /// Validates (alpha, S). Throws std::invalid_argument for malformed input
  /// (alpha not a distribution, S not a subgenerator, or no absorption).
  PhaseType(Vector alpha, Matrix s, std::string name = "ph");

  // ---- common named distributions, parameterized by their mean ----
  /// Exponential with the given mean (1 phase, SCV = 1).
  static PhaseType exponential(double mean);
  /// Erlang-k with the given mean (k phases, SCV = 1/k).
  static PhaseType erlang(int k, double mean);
  /// Two-branch hyperexponential: mean `mean1` w.p. p1, else `mean2`
  /// (2 phases, SCV >= 1).
  static PhaseType hyperexponential(double p1, double mean1, double mean2);
  /// 2-phase Coxian: Exp(mu1), then with probability q an Exp(mu2) stage.
  static PhaseType coxian2(double mu1, double mu2, double q);

  const Vector& alpha() const { return alpha_; }
  const Matrix& subgenerator() const { return s_; }
  /// Absorption (completion) rate vector s0 = -S 1.
  const Vector& exit_rates() const { return exit_; }
  const std::string& name() const { return name_; }
  std::size_t phases() const { return alpha_.size(); }

  /// k-th raw moment E[T^k] = k! alpha (-S)^{-k} 1.
  double moment(int k) const;
  double mean() const { return moment(1); }
  double variance() const;
  /// Squared coefficient of variation.
  double scv() const;

  /// Copy rescaled to a new mean (time scaling of S).
  PhaseType scaled_to_mean(double target_mean) const;

 private:
  Vector alpha_;
  Matrix s_;
  Vector exit_;
  Matrix neg_s_inv_;  // (-S)^{-1}, cached for moments
  std::string name_;
};

}  // namespace perfbg::traffic
