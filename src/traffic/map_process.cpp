#include "traffic/map_process.hpp"

#include <cmath>

#include "linalg/lu.hpp"
#include "linalg/spectral.hpp"
#include "markov/stationary.hpp"
#include "util/check.hpp"

namespace perfbg::traffic {

MarkovianArrivalProcess::MarkovianArrivalProcess(Matrix d0, Matrix d1, std::string name)
    : d0_(std::move(d0)), d1_(std::move(d1)), name_(std::move(name)) {
  PERFBG_REQUIRE(d0_.is_square() && !d0_.empty(), "D0 must be square and non-empty");
  PERFBG_REQUIRE(d1_.rows() == d0_.rows() && d1_.cols() == d0_.cols(),
                 "D0 and D1 must have the same shape");
  const std::size_t n = d0_.rows();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      PERFBG_REQUIRE(d1_(i, j) >= 0.0, "D1 must be nonnegative");
      if (i != j) PERFBG_REQUIRE(d0_(i, j) >= 0.0, "off-diagonal D0 must be nonnegative");
    }
    PERFBG_REQUIRE(d0_(i, i) < 0.0, "diagonal of D0 must be strictly negative");
  }
  const Matrix gen = d0_ + d1_;
  PERFBG_REQUIRE(markov::is_generator(gen, 1e-8), "D0 + D1 must be a CTMC generator");

  pi_ = markov::stationary_ctmc(gen);
  rate_ = linalg::dot(linalg::vec_mat(pi_, d1_), Vector(n, 1.0));
  PERFBG_REQUIRE(rate_ > 0.0, "the MAP must produce arrivals (pi D1 1 > 0)");

  Matrix neg_d0 = d0_;
  neg_d0 *= -1.0;
  neg_d0_inv_ = linalg::inverse(neg_d0);
  embedded_p_ = neg_d0_inv_ * d1_;

  pi_embedded_ = linalg::scaled(linalg::vec_mat(pi_, d1_), 1.0 / rate_);
}

double MarkovianArrivalProcess::interarrival_scv() const {
  // CV^2 = 2 lambda pi (-D0)^{-1} 1 - 1  (paper Eq. 2).
  const Vector v = linalg::vec_mat(pi_, neg_d0_inv_);
  return 2.0 * rate_ * linalg::sum(v) - 1.0;
}

double MarkovianArrivalProcess::interarrival_cv() const { return std::sqrt(interarrival_scv()); }

std::vector<double> MarkovianArrivalProcess::acf_series(int max_lag) const {
  PERFBG_REQUIRE(max_lag >= 1, "max_lag must be >= 1");
  // ACF(k) = (lambda pi P^k (-D0)^{-1} 1 - 1) / (2 lambda pi (-D0)^{-1} 1 - 1)
  // (paper Eq. 3), with P the arrival-embedded transition matrix.
  const Vector ones(phases(), 1.0);
  const Vector m1 = mat_vec(neg_d0_inv_, ones);  // (-D0)^{-1} 1
  const double denom = 2.0 * rate_ * linalg::dot(pi_, m1) - 1.0;
  std::vector<double> out;
  out.reserve(static_cast<std::size_t>(max_lag));
  Vector v = pi_;
  for (int k = 1; k <= max_lag; ++k) {
    v = linalg::vec_mat(v, embedded_p_);
    if (denom == 0.0) {
      out.push_back(0.0);  // deterministic interarrivals: ACF undefined; report 0
      continue;
    }
    out.push_back((rate_ * linalg::dot(v, m1) - 1.0) / denom);
  }
  return out;
}

double MarkovianArrivalProcess::acf(int lag) const {
  PERFBG_REQUIRE(lag >= 1, "lag must be >= 1");
  return acf_series(lag).back();
}

double MarkovianArrivalProcess::acf_decay_rate() const {
  if (phases() == 1) return 0.0;
  if (phases() == 2) {
    // P is stochastic, so its eigenvalues are 1 and trace(P) - 1.
    return std::abs(embedded_p_(0, 0) + embedded_p_(1, 1) - 1.0);
  }
  // General case: deflate the Perron direction (eigenvalue 1, eigenvector 1)
  // and take the spectral radius of the remainder via |ACF| ratios.
  const std::vector<double> a = acf_series(64);
  for (int k = 62; k >= 0; --k) {
    if (std::abs(a[static_cast<std::size_t>(k)]) > 1e-12)
      return std::min(1.0, std::abs(a[static_cast<std::size_t>(k) + 1] /
                                    a[static_cast<std::size_t>(k)]));
  }
  return 0.0;
}

bool MarkovianArrivalProcess::is_renewal(double tol) const {
  for (double a : acf_series(16))
    if (std::abs(a) > tol) return false;
  return true;
}

MarkovianArrivalProcess MarkovianArrivalProcess::scaled_by(double c) const {
  PERFBG_REQUIRE(c > 0.0, "scale factor must be positive");
  Matrix a = d0_, b = d1_;
  a *= c;
  b *= c;
  return MarkovianArrivalProcess(std::move(a), std::move(b), name_);
}

MarkovianArrivalProcess MarkovianArrivalProcess::scaled_to_rate(double target_rate) const {
  PERFBG_REQUIRE(target_rate > 0.0, "target rate must be positive");
  return scaled_by(target_rate / rate_);
}

MarkovianArrivalProcess MarkovianArrivalProcess::scaled_to_utilization(
    double target_utilization, double mean_service_time) const {
  // Utilizations >= 1 are deliberately allowed: a MAP scaled past saturation
  // is a well-defined arrival process, and the solve pipeline's preflight is
  // where the resulting unstable *queue* is diagnosed (typed kUnstableQbd
  // with the drift estimate) — so sweeps can probe across the boundary.
  PERFBG_REQUIRE(target_utilization > 0.0, "utilization must be positive");
  PERFBG_REQUIRE(mean_service_time > 0.0, "mean service time must be positive");
  return scaled_to_rate(target_utilization / mean_service_time);
}

MarkovianArrivalProcess MarkovianArrivalProcess::renamed(std::string name) const {
  MarkovianArrivalProcess copy = *this;
  copy.name_ = std::move(name);
  return copy;
}

}  // namespace perfbg::traffic
