#include "traffic/phase_type.hpp"

#include <cmath>

#include "linalg/lu.hpp"
#include "util/check.hpp"

namespace perfbg::traffic {

PhaseType::PhaseType(Vector alpha, Matrix s, std::string name)
    : alpha_(std::move(alpha)), s_(std::move(s)), name_(std::move(name)) {
  PERFBG_REQUIRE(!alpha_.empty(), "PH needs at least one phase");
  PERFBG_REQUIRE(s_.is_square() && s_.rows() == alpha_.size(),
                 "subgenerator shape must match alpha");
  double mass = 0.0;
  for (double a : alpha_) {
    PERFBG_REQUIRE(a >= 0.0, "alpha must be nonnegative");
    mass += a;
  }
  PERFBG_REQUIRE(std::abs(mass - 1.0) < 1e-9, "alpha must sum to 1");
  const std::size_t m = phases();
  exit_.assign(m, 0.0);
  bool any_exit = false;
  for (std::size_t i = 0; i < m; ++i) {
    PERFBG_REQUIRE(s_(i, i) < 0.0, "subgenerator diagonal must be negative");
    for (std::size_t j = 0; j < m; ++j)
      if (i != j) PERFBG_REQUIRE(s_(i, j) >= 0.0, "off-diagonal rates must be nonnegative");
    exit_[i] = -s_.row_sum(i);
    PERFBG_REQUIRE(exit_[i] > -1e-12, "subgenerator rows must sum to <= 0");
    if (exit_[i] < 0.0) exit_[i] = 0.0;
    if (exit_[i] > 0.0) any_exit = true;
  }
  PERFBG_REQUIRE(any_exit, "PH distribution must be able to absorb");
  Matrix neg_s = s_;
  neg_s *= -1.0;
  neg_s_inv_ = linalg::inverse(neg_s);  // throws if S is singular (defective PH)
}

PhaseType PhaseType::exponential(double mean) {
  PERFBG_REQUIRE(mean > 0.0, "mean must be positive");
  return PhaseType({1.0}, Matrix{{-1.0 / mean}}, "exponential");
}

PhaseType PhaseType::erlang(int k, double mean) {
  PERFBG_REQUIRE(k >= 1, "Erlang order must be >= 1");
  PERFBG_REQUIRE(mean > 0.0, "mean must be positive");
  const auto m = static_cast<std::size_t>(k);
  const double r = static_cast<double>(k) / mean;
  Matrix s(m, m, 0.0);
  Vector alpha(m, 0.0);
  alpha[0] = 1.0;
  for (std::size_t i = 0; i < m; ++i) {
    s(i, i) = -r;
    if (i + 1 < m) s(i, i + 1) = r;
  }
  return PhaseType(std::move(alpha), std::move(s), "erlang" + std::to_string(k));
}

PhaseType PhaseType::hyperexponential(double p1, double mean1, double mean2) {
  PERFBG_REQUIRE(p1 > 0.0 && p1 < 1.0, "branch probability must be in (0,1)");
  PERFBG_REQUIRE(mean1 > 0.0 && mean2 > 0.0, "branch means must be positive");
  return PhaseType({p1, 1.0 - p1},
                   Matrix{{-1.0 / mean1, 0.0}, {0.0, -1.0 / mean2}}, "hyperexp2");
}

PhaseType PhaseType::coxian2(double mu1, double mu2, double q) {
  PERFBG_REQUIRE(mu1 > 0.0 && mu2 > 0.0, "stage rates must be positive");
  PERFBG_REQUIRE(q >= 0.0 && q <= 1.0, "continuation probability must be in [0,1]");
  return PhaseType({1.0, 0.0}, Matrix{{-mu1, q * mu1}, {0.0, -mu2}}, "coxian2");
}

double PhaseType::moment(int k) const {
  PERFBG_REQUIRE(k >= 1, "moment order must be >= 1");
  Vector v = alpha_;
  double factorial = 1.0;
  for (int i = 1; i <= k; ++i) {
    v = linalg::vec_mat(v, neg_s_inv_);
    factorial *= i;
  }
  return factorial * linalg::sum(v);
}

double PhaseType::variance() const {
  const double m1 = moment(1);
  return moment(2) - m1 * m1;
}

double PhaseType::scv() const {
  const double m1 = moment(1);
  return variance() / (m1 * m1);
}

PhaseType PhaseType::scaled_to_mean(double target_mean) const {
  PERFBG_REQUIRE(target_mean > 0.0, "target mean must be positive");
  Matrix s = s_;
  s *= mean() / target_mean;
  return PhaseType(alpha_, std::move(s), name_);
}

}  // namespace perfbg::traffic
