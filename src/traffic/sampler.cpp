#include "traffic/sampler.hpp"

#include "util/check.hpp"

namespace perfbg::traffic {

PhaseTypeSampler::PhaseTypeSampler(PhaseType distribution) : ph_(std::move(distribution)) {
  const std::size_t m = ph_.phases();
  const Matrix& s = ph_.subgenerator();
  total_rate_.resize(m);
  branches_.resize(m);
  for (std::size_t i = 0; i < m; ++i) {
    const double rate = -s(i, i);
    total_rate_[i] = rate;
    double cum = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      if (j != i && s(i, j) > 0.0) {
        cum += s(i, j) / rate;
        branches_[i].push_back({cum, j});
      }
    }
    if (ph_.exit_rates()[i] > 0.0) {
      cum += ph_.exit_rates()[i] / rate;
      branches_[i].push_back({cum, m});
    }
    PERFBG_ASSERT(!branches_[i].empty(), "PH phase with no outgoing transition");
    branches_[i].back().cum_prob = 1.0;  // absorb rounding
  }
}

double PhaseTypeSampler::sample(std::mt19937_64& rng) const {
  std::uniform_real_distribution<double> u(0.0, 1.0);
  // Draw the starting phase from alpha.
  const std::size_t m = ph_.phases();
  std::size_t phase = m - 1;
  {
    double r = u(rng), cum = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      cum += ph_.alpha()[i];
      if (r <= cum) {
        phase = i;
        break;
      }
    }
  }
  double t = 0.0;
  for (;;) {
    std::exponential_distribution<double> hold(total_rate_[phase]);
    t += hold(rng);
    const double r = u(rng);
    const auto& br = branches_[phase];
    std::size_t pick = br.size() - 1;
    for (std::size_t k = 0; k < br.size(); ++k) {
      if (r <= br[k].cum_prob) {
        pick = k;
        break;
      }
    }
    if (br[pick].target == m) return t;  // absorbed: service complete
    phase = br[pick].target;
  }
}

MapSampler::MapSampler(MarkovianArrivalProcess process, std::uint64_t seed)
    : process_(std::move(process)), rng_(seed) {
  const std::size_t n = process_.phases();
  const Matrix& d0 = process_.d0();
  const Matrix& d1 = process_.d1();
  exit_rate_.resize(n);
  branches_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double rate = -d0(i, i);
    exit_rate_[i] = rate;
    double cum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i && d0(i, j) > 0.0) {
        cum += d0(i, j) / rate;
        branches_[i].push_back({cum, j, false});
      }
      if (d1(i, j) > 0.0) {
        cum += d1(i, j) / rate;
        branches_[i].push_back({cum, j, true});
      }
    }
    PERFBG_ASSERT(!branches_[i].empty(), "phase with no outgoing transition");
    branches_[i].back().cum_prob = 1.0;  // absorb rounding
  }

  // Stationary start: draw the initial phase from the time-stationary
  // distribution of the modulating chain.
  const Vector& pi = process_.phase_stationary();
  std::uniform_real_distribution<double> u(0.0, 1.0);
  double r = u(rng_), cum = 0.0;
  phase_ = n - 1;
  for (std::size_t i = 0; i < n; ++i) {
    cum += pi[i];
    if (r <= cum) {
      phase_ = i;
      break;
    }
  }
}

double MapSampler::next_interarrival() {
  std::uniform_real_distribution<double> u(0.0, 1.0);
  double t = 0.0;
  for (;;) {
    std::exponential_distribution<double> hold(exit_rate_[phase_]);
    t += hold(rng_);
    const double r = u(rng_);
    const auto& br = branches_[phase_];
    // Linear scan: phase counts here are tiny (<= 8).
    std::size_t pick = br.size() - 1;
    for (std::size_t k = 0; k < br.size(); ++k) {
      if (r <= br[k].cum_prob) {
        pick = k;
        break;
      }
    }
    phase_ = br[pick].target;
    if (br[pick].arrival) return t;
  }
}

std::vector<double> MapSampler::sample(std::size_t n) {
  std::vector<double> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next_interarrival());
  return out;
}

}  // namespace perfbg::traffic
