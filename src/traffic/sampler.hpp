// Random-variate generation from a MAP: produces the interarrival-time
// sequence of the process, used by the discrete-event simulator and by the
// synthetic trace generator that replaces the paper's measured traces.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "traffic/map_process.hpp"
#include "traffic/phase_type.hpp"

namespace perfbg::traffic {

/// Samples absorption times of a phase-type distribution by simulating its
/// absorbing CTMC. Stateless between draws (each draw restarts from alpha);
/// the caller owns the RNG so several samplers can share one stream.
class PhaseTypeSampler {
 public:
  explicit PhaseTypeSampler(PhaseType distribution);

  /// One absorption time.
  double sample(std::mt19937_64& rng) const;

 private:
  PhaseType ph_;
  std::vector<double> total_rate_;  // per phase: -S(i,i)
  struct Branch {
    double cum_prob;
    std::size_t target;  // == phases() means absorption
  };
  std::vector<std::vector<Branch>> branches_;
};

/// Samples successive interarrival times from a MAP by simulating the
/// underlying phase process: in phase i the sojourn is Exp(-D0(i,i) + row
/// rates of D1), and the next transition is chosen among D0 (silent) and D1
/// (arrival) targets proportionally to their rates.
class MapSampler {
 public:
  /// Starts the phase in the time-stationary distribution (a stationary
  /// stream from time 0), drawn with the given seed.
  MapSampler(MarkovianArrivalProcess process, std::uint64_t seed);

  /// Time from the previous arrival (or from time 0) to the next arrival.
  double next_interarrival();

  /// Current modulating phase (mainly for tests).
  std::size_t phase() const { return phase_; }

  /// Convenience: the first n interarrival times as a vector.
  std::vector<double> sample(std::size_t n);

 private:
  struct Branch {
    double cum_prob;     // cumulative selection probability within the phase
    std::size_t target;  // next phase
    bool arrival;        // true when this branch fires an arrival
  };

  MarkovianArrivalProcess process_;
  std::mt19937_64 rng_;
  std::vector<double> exit_rate_;            // per phase
  std::vector<std::vector<Branch>> branches_;  // per phase
  std::size_t phase_ = 0;
};

}  // namespace perfbg::traffic
