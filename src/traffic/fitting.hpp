// Moment/correlation-matching fitters.
//
// The paper parameterizes its three workload MMPPs by matching the first two
// moments of measured interarrival times and shaping the ACF ("our moment
// matching technique has one degree of freedom ... these MMPP models do not
// represent an exact fitting"). We implement the same idea as an explicit
// four-target fit: mean rate, CV^2, lag-1 ACF, and the geometric ACF decay
// rate gamma (ACF(k) ~ ACF(1) * gamma^{k-1} for a 2-state MMPP). Small gamma
// = short-range dependence; gamma near 1 mimics long-range dependence over
// the lag window of interest.
#pragma once

#include "traffic/map_process.hpp"

namespace perfbg::traffic {

/// Target statistics for a 2-state MMPP fit.
struct Mmpp2FitTarget {
  double mean_rate = 0.0;  ///< arrivals per unit time (e.g. per ms)
  double scv = 0.0;        ///< squared coefficient of variation, must be > 1
  double acf1 = 0.0;       ///< lag-1 autocorrelation, in (0, 0.5)
  double acf_decay = 0.0;  ///< geometric decay rate gamma, in (0, 1)
};

struct FitResult {
  MarkovianArrivalProcess process;
  double residual = 0.0;  ///< weighted squared relative error at the optimum
};

/// Fits a 2-state MMPP to the four targets with a Nelder–Mead search over
/// log-parameters (v1, v2, l1, l2). Throws std::invalid_argument for
/// infeasible targets (scv <= 1, acf1 outside (0, 0.5), decay outside (0,1))
/// and std::runtime_error when the search cannot reach `max_residual`.
FitResult fit_mmpp2(const Mmpp2FitTarget& target, double max_residual = 1e-6,
                    std::string name = "mmpp2-fit");

/// Fits an IPP (2-state MMPP with a silent phase) to a mean rate and CV^2 > 1.
/// The remaining degree of freedom is `on_fraction`, the stationary
/// probability of the bursting phase (paper's comparator has the same mean
/// and CV as the E-mail MMPP but zero autocorrelation).
FitResult fit_ipp(double mean_rate, double scv, double on_fraction = 0.1,
                  std::string name = "ipp-fit");

}  // namespace perfbg::traffic
