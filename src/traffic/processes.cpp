#include "traffic/processes.hpp"

#include "util/check.hpp"

namespace perfbg::traffic {

MarkovianArrivalProcess poisson(double lambda) {
  PERFBG_REQUIRE(lambda > 0.0, "Poisson rate must be positive");
  return MarkovianArrivalProcess(Matrix{{-lambda}}, Matrix{{lambda}}, "poisson");
}

MarkovianArrivalProcess mmpp2(double v1, double v2, double l1, double l2, std::string name) {
  PERFBG_REQUIRE(v1 > 0.0 && v2 > 0.0, "MMPP modulation rates must be positive");
  PERFBG_REQUIRE(l1 >= 0.0 && l2 >= 0.0 && l1 + l2 > 0.0,
                 "MMPP arrival rates must be nonnegative with at least one positive");
  const Matrix d0{{-(l1 + v1), v1}, {v2, -(l2 + v2)}};
  const Matrix d1{{l1, 0.0}, {0.0, l2}};
  return MarkovianArrivalProcess(d0, d1, std::move(name));
}

MarkovianArrivalProcess ipp(double lambda_on, double v_on_to_off, double v_off_to_on,
                            std::string name) {
  PERFBG_REQUIRE(lambda_on > 0.0, "IPP on-rate must be positive");
  return mmpp2(v_on_to_off, v_off_to_on, lambda_on, 0.0, std::move(name));
}

MarkovianArrivalProcess erlang_renewal(int k, double mean) {
  PERFBG_REQUIRE(k >= 1, "Erlang order must be >= 1");
  PERFBG_REQUIRE(mean > 0.0, "mean interarrival must be positive");
  const auto n = static_cast<std::size_t>(k);
  const double r = static_cast<double>(k) / mean;  // per-stage rate
  Matrix d0(n, n, 0.0), d1(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    d0(i, i) = -r;
    if (i + 1 < n)
      d0(i, i + 1) = r;
    else
      d1(i, 0) = r;  // last stage fires the arrival and restarts
  }
  return MarkovianArrivalProcess(std::move(d0), std::move(d1), "erlang" + std::to_string(k));
}

MarkovianArrivalProcess hyperexp2_renewal(double p1, double r1, double r2) {
  PERFBG_REQUIRE(p1 > 0.0 && p1 < 1.0, "branch probability must be in (0,1)");
  PERFBG_REQUIRE(r1 > 0.0 && r2 > 0.0, "branch rates must be positive");
  // Phase = current branch; on arrival, re-draw the branch.
  const double p2 = 1.0 - p1;
  const Matrix d0{{-r1, 0.0}, {0.0, -r2}};
  const Matrix d1{{r1 * p1, r1 * p2}, {r2 * p1, r2 * p2}};
  return MarkovianArrivalProcess(d0, d1, "hyperexp2");
}

MarkovianArrivalProcess superpose(const MarkovianArrivalProcess& a,
                                  const MarkovianArrivalProcess& b) {
  const Matrix ia = Matrix::identity(a.phases());
  const Matrix ib = Matrix::identity(b.phases());
  const Matrix d0 = linalg::kron(a.d0(), ib) + linalg::kron(ia, b.d0());
  const Matrix d1 = linalg::kron(a.d1(), ib) + linalg::kron(ia, b.d1());
  return MarkovianArrivalProcess(d0, d1, a.name() + "+" + b.name());
}

}  // namespace perfbg::traffic
