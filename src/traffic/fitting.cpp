#include "traffic/fitting.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "traffic/processes.hpp"
#include "util/check.hpp"
#include "util/optimize.hpp"

namespace perfbg::traffic {

namespace {

// Shape statistics (scale-free): rescaling time changes the mean rate but
// leaves all three of these invariant, so the fit can search shape first and
// scale to the target rate afterward.
struct Shape {
  double scv, acf1, decay;
};

Shape shape_of(const MarkovianArrivalProcess& m) {
  return Shape{m.interarrival_scv(), m.acf(1), m.acf_decay_rate()};
}

double shape_objective(const Shape& got, const Mmpp2FitTarget& t) {
  auto rel = [](double g, double want) {
    const double d = (g - want) / want;
    return d * d;
  };
  return rel(got.scv, t.scv) + rel(got.acf1, t.acf1) + rel(got.decay, t.acf_decay);
}

}  // namespace

FitResult fit_mmpp2(const Mmpp2FitTarget& target, double max_residual, std::string name) {
  PERFBG_REQUIRE(target.mean_rate > 0.0, "target mean rate must be positive");
  PERFBG_REQUIRE(target.scv > 1.0, "a 2-state MMPP requires SCV > 1");
  PERFBG_REQUIRE(target.acf1 > 0.0 && target.acf1 < 0.5,
                 "2-state MMPP lag-1 ACF is limited to (0, 0.5)");
  PERFBG_REQUIRE(target.acf_decay > 0.0 && target.acf_decay < 1.0,
                 "ACF decay rate must be in (0, 1)");

  // Search over shape parameters with l2 fixed to 1 (time scale is free);
  // x = (log v1, log v2, log l1).
  auto objective = [&](const std::vector<double>& x) {
    for (double xi : x)
      if (!std::isfinite(xi) || std::abs(xi) > 60.0) return 1e12;
    const double v1 = std::exp(x[0]), v2 = std::exp(x[1]), l1 = std::exp(x[2]);
    try {
      const MarkovianArrivalProcess m = mmpp2(v1, v2, l1, 1.0);
      return shape_objective(shape_of(m), target);
    } catch (const std::exception&) {
      return 1e12;
    }
  };

  NelderMeadOptions opts;
  opts.max_iters = 40000;
  opts.initial_step = 1.0;

  double best_f = std::numeric_limits<double>::infinity();
  std::vector<double> best_x;
  // Multi-start over burst-rate ratios and modulation speeds: bursty MMPPs
  // live in the corner v << l, and the decay target mostly fixes v1 + v2.
  for (const double l1_guess : {3.0, 10.0, 40.0, 150.0}) {
    for (const double v_guess : {1e-4, 1e-3, 1e-2, 1e-1}) {
      const std::vector<double> x0{std::log(v_guess), std::log(v_guess * 0.3),
                                   std::log(l1_guess)};
      const NelderMeadResult r = nelder_mead(objective, x0, opts);
      if (r.fx < best_f) {
        best_f = r.fx;
        best_x = r.x;
      }
      if (best_f < max_residual * 1e-3) break;
    }
    if (best_f < max_residual * 1e-3) break;
  }
  if (best_f > max_residual)
    throw std::runtime_error("perfbg: fit_mmpp2: targets not reachable by a 2-state MMPP "
                             "(residual " + std::to_string(best_f) + ")");

  const MarkovianArrivalProcess shape_fit =
      mmpp2(std::exp(best_x[0]), std::exp(best_x[1]), std::exp(best_x[2]), 1.0);
  return FitResult{shape_fit.scaled_to_rate(target.mean_rate).renamed(std::move(name)), best_f};
}

FitResult fit_ipp(double mean_rate, double scv, double on_fraction, std::string name) {
  PERFBG_REQUIRE(mean_rate > 0.0, "mean rate must be positive");
  PERFBG_REQUIRE(scv > 1.0, "an IPP requires SCV > 1");
  PERFBG_REQUIRE(on_fraction > 0.0 && on_fraction < 1.0, "on_fraction must be in (0, 1)");

  // Exact relations: the stationary on-probability is f = v2/(v1+v2), so the
  // on-rate l1 = mean_rate / f matches the mean exactly. The remaining free
  // scale s = v1 + v2 moves the SCV monotonically between the slow-modulation
  // limit (large SCV) and the Poisson limit (SCV -> 1): bisect on log s.
  const double f = on_fraction;
  const double l1 = mean_rate / f;
  auto scv_at = [&](double s) {
    const double v1 = (1.0 - f) * s, v2 = f * s;
    return ipp(l1, v1, v2).interarrival_scv();
  };

  double lo = std::log(l1) - 40.0, hi = std::log(l1) + 10.0;
  // SCV is decreasing in s; make sure the bracket actually straddles `scv`.
  if (scv_at(std::exp(lo)) < scv)
    throw std::runtime_error("perfbg: fit_ipp: requested SCV too large for this on_fraction");
  if (scv_at(std::exp(hi)) > scv)
    throw std::runtime_error("perfbg: fit_ipp: requested SCV too close to 1 for the bracket");
  for (int it = 0; it < 200; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (scv_at(std::exp(mid)) > scv)
      lo = mid;
    else
      hi = mid;
  }
  const double s = std::exp(0.5 * (lo + hi));
  const MarkovianArrivalProcess m = ipp(l1, (1.0 - f) * s, f * s, std::move(name));
  const double resid = std::abs(m.interarrival_scv() - scv) / scv;
  return FitResult{m, resid * resid};
}

}  // namespace perfbg::traffic
