// Markovian Arrival Processes (MAPs) — the arrival-stream abstraction of the
// paper. An A-phase MAP is described by two A x A matrices:
//
//   D0 — phase transitions without an arrival (off-diagonal >= 0) plus the
//        negative total-rate diagonal,
//   D1 — phase transitions that fire an arrival (all entries >= 0),
//
// with D0 + D1 an irreducible CTMC generator. The paper's MMPP is the special
// case where D1 is diagonal; Poisson is the 1-phase case; IPP is a 2-phase
// MMPP with one silent phase.
//
// This class exposes exactly the statistics the paper uses for workload
// characterization (its Eqs. 1-3): mean arrival rate, squared coefficient of
// variation of interarrival times, and the lag-k autocorrelation function of
// interarrival times, plus the geometric ACF decay rate that separates SRD
// from LRD-like behaviour.
#pragma once

#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace perfbg::traffic {

using linalg::Matrix;
using linalg::Vector;

class MarkovianArrivalProcess {
 public:
  /// Validates and stores (D0, D1). Throws std::invalid_argument when the
  /// pair is not a proper MAP description (shape mismatch, negative rates,
  /// rows of D0+D1 not summing to zero, or zero total arrival rate).
  MarkovianArrivalProcess(Matrix d0, Matrix d1, std::string name = "map");

  const Matrix& d0() const { return d0_; }
  const Matrix& d1() const { return d1_; }
  const std::string& name() const { return name_; }
  std::size_t phases() const { return d0_.rows(); }

  /// Stationary phase distribution of the modulating CTMC: pi (D0+D1) = 0.
  const Vector& phase_stationary() const { return pi_; }

  /// Mean arrival rate lambda = pi D1 1 (paper Eq. 1).
  double mean_rate() const { return rate_; }
  /// Mean interarrival time 1/lambda.
  double mean_interarrival() const { return 1.0 / rate_; }

  /// Squared coefficient of variation of interarrival times (paper Eq. 2):
  /// CV^2 = 2 lambda pi (-D0)^{-1} 1 - 1.
  double interarrival_scv() const;
  /// CV = sqrt(SCV).
  double interarrival_cv() const;

  /// Lag-k autocorrelation of interarrival times (paper Eq. 3), k >= 1.
  double acf(int lag) const;
  /// acf(1..max_lag) in one sweep (reuses the embedded-chain power).
  std::vector<double> acf_series(int max_lag) const;

  /// Geometric decay rate of the ACF: the modulus of the subdominant
  /// eigenvalue of the embedded transition matrix P = (-D0)^{-1} D1.
  /// 0 for renewal processes (ACF identically 0), close to 1 for
  /// long-range-dependent-looking streams.
  double acf_decay_rate() const;

  /// Embedded (arrival-instant) phase transition matrix P = (-D0)^{-1} D1.
  const Matrix& embedded_transition_matrix() const { return embedded_p_; }
  /// Stationary distribution of the embedded chain (phase just after an
  /// arrival): pi_e = pi D1 / lambda.
  const Vector& embedded_stationary() const { return pi_embedded_; }

  /// True when every arrival regenerates the phase distribution, i.e. the
  /// interarrival times are i.i.d. (ACF == 0 at every lag within tol).
  bool is_renewal(double tol = 1e-12) const;

  /// Time-rescaled copy: both D0 and D1 multiplied by c > 0. Multiplies the
  /// mean rate by c and leaves CV and ACF exactly unchanged — this is the
  /// paper's "we scale the mean of the MMPPs to obtain different foreground
  /// utilizations".
  MarkovianArrivalProcess scaled_by(double c) const;
  /// Rescaled copy with the given mean arrival rate.
  MarkovianArrivalProcess scaled_to_rate(double target_rate) const;
  /// Rescaled copy such that target_utilization = rate * mean_service_time.
  /// Utilizations >= 1 are allowed (sweeps probe across the stability
  /// boundary); the solve pipeline's preflight diagnoses the unstable queue.
  MarkovianArrivalProcess scaled_to_utilization(double target_utilization,
                                                double mean_service_time) const;

  /// Copy with a different display name.
  MarkovianArrivalProcess renamed(std::string name) const;

 private:
  Matrix d0_, d1_;
  std::string name_;
  Vector pi_;           // time-stationary phase distribution
  Vector pi_embedded_;  // arrival-embedded phase distribution
  Matrix neg_d0_inv_;   // (-D0)^{-1}
  Matrix embedded_p_;   // (-D0)^{-1} D1
  double rate_ = 0.0;
};

}  // namespace perfbg::traffic
