// Factories for the concrete arrival processes used in the paper's
// evaluation, plus a few extra renewal MAPs used for testing.
#pragma once

#include "traffic/map_process.hpp"

namespace perfbg::traffic {

/// Poisson process with rate lambda (1-phase MAP).
MarkovianArrivalProcess poisson(double lambda);

/// 2-state MMPP in the paper's (v1, v2, l1, l2) parameterization (its Eq. 4):
///   D0 = [ -(l1+v1)   v1     ]    D1 = [ l1  0  ]
///        [   v2     -(l2+v2) ]         [ 0   l2 ]
/// l1, l2 are the per-phase Poisson rates; v1, v2 the modulation rates.
MarkovianArrivalProcess mmpp2(double v1, double v2, double l1, double l2,
                              std::string name = "mmpp2");

/// Interrupted Poisson Process: a 2-state MMPP whose second phase is silent
/// (l2 = 0). Interarrival times are hyperexponential -> high CV, zero ACF.
MarkovianArrivalProcess ipp(double lambda_on, double v_on_to_off, double v_off_to_on,
                            std::string name = "ipp");

/// Erlang-k renewal process with mean interarrival time `mean` (CV^2 = 1/k).
MarkovianArrivalProcess erlang_renewal(int k, double mean);

/// Two-branch hyperexponential renewal process: with probability p1 the
/// interarrival is Exp(r1), otherwise Exp(r2). CV^2 >= 1, zero ACF.
MarkovianArrivalProcess hyperexp2_renewal(double p1, double r1, double r2);

/// Superposition of two independent MAPs (Kronecker-sum construction):
/// D0 = D0a (+) D0b, D1 = D1a (+) D1b. Rate adds; used to compose workloads.
MarkovianArrivalProcess superpose(const MarkovianArrivalProcess& a,
                                  const MarkovianArrivalProcess& b);

}  // namespace perfbg::traffic
