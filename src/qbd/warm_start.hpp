// Cross-solve R-matrix seed cache for warm starting.
//
// Adjacent points of a parameter sweep (same workload / bg probability /
// buffer size, stepping utilization) produce R matrices that differ by a few
// percent, so the previous point's R is an excellent functional-iteration
// seed for the next one. The cache maps a *model-class* key — the sweep
// coordinates minus the stepped axis — to the most recently stored solve, and
// callers pass the hit into RSolverOptions::warm_start. solve_r verifies the
// refined residual before trusting a seed, so a stale or mismatched entry can
// cost a bounded number of iterations but never a wrong answer.
//
// Seeds are held behind shared_ptr<const RWarmStart>: a get() result stays
// valid while in use even if the entry is evicted or overwritten concurrently.
// All methods are thread safe; hit/miss/store counters feed statusz.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "qbd/rmatrix.hpp"

namespace perfbg::qbd {

class RSeedCache {
 public:
  /// `capacity` bounds the number of distinct model-class keys kept (least
  /// recently used beyond that is evicted); sweeps rarely interleave more
  /// than a handful of classes.
  explicit RSeedCache(std::size_t capacity = 64);

  /// Stores (or replaces) the seed for `key`, marking it most recently used.
  void put(const std::string& key, Matrix r, int iterations);

  /// Returns the seed for `key`, or nullptr on a miss. A hit is marked most
  /// recently used.
  std::shared_ptr<const RWarmStart> get(const std::string& key);

  void clear();

  std::size_t size() const;
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::uint64_t stores() const;

 private:
  struct Entry {
    std::string key;
    std::shared_ptr<const RWarmStart> seed;
  };

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t stores_ = 0;
};

}  // namespace perfbg::qbd
