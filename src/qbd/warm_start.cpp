#include "qbd/warm_start.hpp"

#include <utility>

namespace perfbg::qbd {

RSeedCache::RSeedCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void RSeedCache::put(const std::string& key, Matrix r, int iterations) {
  auto seed = std::make_shared<RWarmStart>();
  seed->r = std::move(r);
  seed->iterations = iterations;
  std::lock_guard<std::mutex> lock(mu_);
  ++stores_;
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->seed = std::move(seed);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(seed)});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

std::shared_ptr<const RWarmStart> RSeedCache::get(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->seed;
}

void RSeedCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

std::size_t RSeedCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::uint64_t RSeedCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t RSeedCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::uint64_t RSeedCache::stores() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stores_;
}

}  // namespace perfbg::qbd
