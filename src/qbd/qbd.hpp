// Quasi-Birth-Death process description.
//
// A (continuous-time) QBD with a flattened boundary has generator
//
//        |  B00  B01   0    0   ...
//   Q =  |  B10  A1    A0   0   ...
//        |   0   A2    A1   A0  ...
//        |   0    0    A2   A1  ...
//
// where the boundary collects all irregular levels (for the paper's chain:
// levels 0..X, which include the idle-wait states) and every repeating level
// has the same state layout. The stationary vector obeys the matrix-geometric
// relation pi_{k+1} = pi_k R for repeating levels, with R the minimal
// nonnegative solution of A0 + R A1 + R^2 A2 = 0.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace perfbg::qbd {

using linalg::Matrix;
using linalg::Vector;

struct QbdProcess {
  Matrix b00;  ///< boundary -> boundary (n_b x n_b)
  Matrix b01;  ///< boundary -> first repeating level (n_b x n_r)
  Matrix b10;  ///< first repeating level -> boundary (n_r x n_b)
  Matrix a0;   ///< repeating level j -> j+1 (n_r x n_r)
  Matrix a1;   ///< within repeating level (n_r x n_r)
  Matrix a2;   ///< repeating level j -> j-1 (n_r x n_r)

  /// Optional structure hint: flat start offset of each boundary level, in
  /// ascending order beginning with 0. Builders whose boundary states are
  /// grouped by level (the FG/BG chain builder) fill this in, enabling the
  /// block-tridiagonal boundary solve; empty means "structure unknown" and
  /// the solution falls back to the dense boundary system. The solver
  /// verifies the claimed structure against the actual blocks, so a stale or
  /// wrong partition degrades to the dense path instead of a wrong answer.
  std::vector<std::size_t> boundary_level_offsets;

  /// Set by builders that ran validate() on these exact blocks at assembly
  /// time, letting qbd::preflight() skip its O(n^2) revalidation scans. Any
  /// code that mutates the blocks after construction must clear it.
  bool prevalidated = false;

  std::size_t boundary_size() const { return b00.rows(); }
  std::size_t level_size() const { return a1.rows(); }

  /// Checks shapes, sign structure and zero row sums of the three row
  /// blocks; throws std::invalid_argument on violation.
  void validate(double tol = 1e-8) const;

  /// Stationary distribution phi of the level-process generator
  /// A = A0 + A1 + A2 (used by the drift condition).
  Vector level_generator_stationary() const;

  /// Mean drift condition: stable (positive recurrent) iff
  /// phi A0 1 < phi A2 1 — i.e. up-rate < down-rate in the repeating part.
  bool is_stable() const;

  /// phi A0 1 / phi A2 1: the "caudal load" of the repeating part. < 1 iff
  /// stable; useful for diagnosing near-saturation sweeps.
  double drift_ratio() const;
};

}  // namespace perfbg::qbd
