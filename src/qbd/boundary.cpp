#include "qbd/boundary.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "linalg/gemm.hpp"
#include "linalg/lu.hpp"
#include "obs/span.hpp"
#include "util/check.hpp"
#include "util/error.hpp"

namespace perfbg::qbd {

namespace {

using linalg::Matrix;
using linalg::Vector;

/// Copies the [r0, r0+nrows) x [c0, c0+ncols) window of `m`.
Matrix submatrix(const Matrix& m, std::size_t r0, std::size_t nrows,
                 std::size_t c0, std::size_t ncols) {
  Matrix out(nrows, ncols);
  for (std::size_t i = 0; i < nrows; ++i) {
    const double* src = m.row_data(r0 + i) + c0;
    double* dst = out.row_data(i);
    for (std::size_t j = 0; j < ncols; ++j) dst[j] = src[j];
  }
  return out;
}

/// True when every entry of rows [r0, r1) of `m` outside columns [c0, c1) is
/// an exact zero.
bool rows_confined_to(const Matrix& m, std::size_t r0, std::size_t r1,
                      std::size_t c0, std::size_t c1) {
  for (std::size_t i = r0; i < r1; ++i) {
    const double* row = m.row_data(i);
    for (std::size_t j = 0; j < c0; ++j)
      if (row[j] != 0.0) return false;
    for (std::size_t j = c1; j < m.cols(); ++j)
      if (row[j] != 0.0) return false;
  }
  return true;
}

}  // namespace

std::optional<Vector> solve_boundary_structured(const QbdProcess& process,
                                                const Matrix& corner,
                                                const Vector& w) {
  const std::vector<std::size_t>& offsets = process.boundary_level_offsets;
  if (offsets.empty() || offsets.front() != 0) return std::nullopt;
  const std::size_t nb = process.boundary_size();
  const std::size_t nr = process.level_size();
  const std::size_t levels = offsets.size();  // boundary levels 0..X

  obs::ScopedSpan span("qbd.solve.boundary.structured");
  span.attr("levels", obs::JsonValue(static_cast<std::int64_t>(levels)));

  // Level partition of [0, nb), with the censored repeating block appended as
  // block index `levels`.
  std::vector<std::size_t> start(levels + 2);
  for (std::size_t l = 0; l < levels; ++l) start[l] = offsets[l];
  start[levels] = nb;
  start[levels + 1] = nb + nr;
  for (std::size_t l = 0; l + 1 < start.size(); ++l)
    if (start[l] >= start[l + 1]) return std::nullopt;

  // Structure scan (exact zeros): every B00 row of level l may touch only
  // levels l-1 .. l+1, B01 is fed only from the top level, and B10 feeds only
  // into it. Any stray entry disqualifies the recursion — the block residual
  // check at the end cannot see out-of-band entries, so this scan is the only
  // guard and always runs.
  for (std::size_t l = 0; l < levels; ++l) {
    const std::size_t lo = l == 0 ? 0 : start[l - 1];
    const std::size_t hi = std::min(nb, start[l + 2]);
    if (!rows_confined_to(process.b00, start[l], start[l + 1], lo, hi))
      return std::nullopt;
  }
  if (!rows_confined_to(process.b01, 0, start[levels - 1], 0, 0))
    return std::nullopt;
  for (std::size_t i = 0; i < nr; ++i) {
    const double* row = process.b10.row_data(i);
    for (std::size_t j = 0; j < start[levels - 1]; ++j)
      if (row[j] != 0.0) return std::nullopt;
  }

  const std::size_t nblocks = levels + 1;  // diagonal blocks incl. corner
  auto block_rows = [&](std::size_t l) { return start[l + 1] - start[l]; };

  // Diagonal, super- and sub-diagonal blocks of M in the level partition.
  auto diag_block = [&](std::size_t l) {
    if (l == levels) return corner;
    return submatrix(process.b00, start[l], block_rows(l), start[l], block_rows(l));
  };
  auto upper_block = [&](std::size_t l) {  // U_l = M[l, l+1]
    if (l + 1 == levels)
      return submatrix(process.b01, start[l], block_rows(l), 0, nr);
    return submatrix(process.b00, start[l], block_rows(l), start[l + 1],
                     block_rows(l + 1));
  };
  auto lower_block = [&](std::size_t l) {  // L_l = M[l, l-1]
    if (l == levels)
      return submatrix(process.b10, 0, nr, start[l - 1], block_rows(l - 1));
    return submatrix(process.b00, start[l], block_rows(l), start[l - 1],
                     block_rows(l - 1));
  };

  // Forward elimination: Dt_l = D_l - C_l U_{l-1} with C_l = L_l Dt_{l-1}^{-1}
  // (computed as a transposed multi-RHS solve). The leading Dt blocks of a
  // proper generator are nonsingular M-matrices; an exactly singular one means
  // the partition assumption is wrong, so it falls back rather than throwing.
  std::vector<Matrix> c_blocks(nblocks);  // C_1 .. C_{levels} at index l
  std::vector<Matrix> u_blocks(nblocks);  // U_l kept for the residual check
  Matrix dt = diag_block(0);
  double scale = dt.inf_norm();
  std::vector<Matrix> d_blocks(nblocks);
  d_blocks[0] = dt;
  try {
    for (std::size_t l = 1; l < nblocks; ++l) {
      const Matrix u_prev = upper_block(l - 1);
      u_blocks[l - 1] = u_prev;
      const Matrix l_block = lower_block(l);
      const linalg::LuDecomposition dt_t(dt.transposed());
      Matrix c = dt_t.solve(l_block.transposed()).transposed();
      dt = diag_block(l);
      d_blocks[l] = dt;
      scale = std::max(scale, dt.inf_norm());
      linalg::gemm_sub(c, u_prev, dt);
      c_blocks[l] = std::move(c);
    }
  } catch (const Error&) {
    span.attr("fallback", obs::JsonValue("singular leading block"));
    return std::nullopt;
  }

  // Top of the recursion: x_{X+1} Dt_{X+1} = 0. Dt_{X+1} is the rank nr - 1
  // censored generator; the null direction comes out of the allow-singular-
  // tail factorization of its transpose.
  std::vector<Vector> x(nblocks);
  try {
    linalg::LuOptions lu_opts;
    lu_opts.allow_singular_tail = true;
    const linalg::LuDecomposition top(dt.transposed(), lu_opts);
    x[nblocks - 1] = top.null_tail_vector();
  } catch (const Error&) {
    span.attr("fallback", obs::JsonValue("singular null-vector factorization"));
    return std::nullopt;
  }

  // Back-substitution x_l = -x_{l+1} C_{l+1}.
  for (std::size_t l = nblocks - 1; l-- > 0;) {
    Vector v = linalg::vec_mat(x[l + 1], c_blocks[l + 1]);
    for (double& e : v) e = -e;
    x[l] = std::move(v);
  }

  // Assemble, fix the orientation of the null direction, normalize x . w = 1.
  Vector full(nb + nr, 0.0);
  for (std::size_t l = 0; l < nblocks; ++l)
    std::copy(x[l].begin(), x[l].end(), full.begin() + static_cast<std::ptrdiff_t>(start[l]));
  double norm = 0.0;
  for (std::size_t i = 0; i < full.size(); ++i) norm += full[i] * w[i];
  if (!std::isfinite(norm) || std::abs(norm) < 1e-300) {
    span.attr("fallback", obs::JsonValue("degenerate normalization"));
    return std::nullopt;
  }
  for (double& e : full) e /= norm;

  // Residual cross-check against the tridiagonal blocks. The scan above
  // guarantees these blocks are all of M, so ||x M||_inf out of tolerance
  // means the recursion lost accuracy and the dense path should decide.
  double residual = 0.0;
  for (std::size_t l = 0; l < nblocks; ++l) {
    Vector y = linalg::vec_mat(x[l], d_blocks[l]);
    if (l + 1 < nblocks) {
      const Vector from_below = linalg::vec_mat(x[l + 1], lower_block(l + 1));
      for (std::size_t j = 0; j < y.size(); ++j) y[j] += from_below[j];
    }
    if (l > 0) {
      const Vector from_above = linalg::vec_mat(x[l - 1], u_blocks[l - 1]);
      for (std::size_t j = 0; j < y.size(); ++j) y[j] += from_above[j];
    }
    for (double e : y) residual = std::max(residual, std::abs(e / norm));
  }
  span.attr("residual", obs::JsonValue(residual));
  if (!(residual <= 1e-6 * (1.0 + scale))) {
    span.attr("fallback", obs::JsonValue("residual out of tolerance"));
    return std::nullopt;
  }
  return full;
}

}  // namespace perfbg::qbd
