// Preflight stability diagnosis for QBD processes.
//
// Run before any matrix-quadratic iteration, preflight() classifies bad
// inputs in microseconds instead of letting the R-solver burn max_iters:
//
//   1. finiteness       — any NaN/Inf entry in any block  -> kInvalidModel
//   2. generator sanity — shapes, sign structure, zero row sums
//                         (QbdProcess::validate)           -> kInvalidModel
//   3. level-process structure — closed classes of A0+A1+A2 exist and each
//                         supports downward transitions    -> kInvalidModel
//   4. drift condition  — phi A0 1 < phi A2 1 per closed class; a violation
//                         reports "rho = 1.07 >= 1"        -> kUnstableQbd
//
// All failures throw perfbg::Error with the relevant context filled in
// (drift ratio, matrix size), so sweeps can record the point and continue.
#pragma once

#include "qbd/qbd.hpp"

namespace perfbg::qbd {

struct PreflightOptions {
  /// Row-sum / sign tolerance forwarded to QbdProcess::validate().
  double generator_tol = 1e-8;
  /// Declare the process unstable when drift ratio >= 1 - stability_margin.
  /// The default accepts anything strictly below 1; sweeps probing the
  /// boundary can set a margin to also reject numerically hopeless
  /// near-critical points.
  double stability_margin = 0.0;
};

/// What preflight measured on the way to its verdict.
struct PreflightReport {
  std::size_t boundary_size = 0;
  std::size_t level_size = 0;
  std::size_t closed_classes = 0;  ///< closed classes of the level process
  double drift_ratio = 0.0;        ///< worst-case rho over closed classes
};

/// Diagnoses the process as described above. Returns the report on success;
/// throws perfbg::Error{kInvalidModel | kUnstableQbd | kSingularMatrix} on
/// the first failed check.
PreflightReport preflight(const QbdProcess& process, const PreflightOptions& opts = {});

}  // namespace perfbg::qbd
