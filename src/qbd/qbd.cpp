#include "qbd/qbd.hpp"

#include <cmath>

#include "markov/stationary.hpp"
#include "util/check.hpp"

namespace perfbg::qbd {

void QbdProcess::validate(double tol) const {
  const std::size_t nb = b00.rows();
  const std::size_t nr = a1.rows();
  PERFBG_REQUIRE(nb > 0 && nr > 0, "QBD blocks must be non-empty");
  PERFBG_REQUIRE(b00.is_square() && a0.is_square() && a1.is_square() && a2.is_square(),
                 "QBD diagonal blocks must be square");
  PERFBG_REQUIRE(a0.rows() == nr && a2.rows() == nr, "A blocks must share one size");
  PERFBG_REQUIRE(b01.rows() == nb && b01.cols() == nr, "B01 must be n_b x n_r");
  PERFBG_REQUIRE(b10.rows() == nr && b10.cols() == nb, "B10 must be n_r x n_b");

  auto require_nonneg_offdiag = [&](const Matrix& m, bool diagonal_allowed_negative,
                                    const char* what) {
    for (std::size_t i = 0; i < m.rows(); ++i) {
      const double* row = m.row_data(i);
      for (std::size_t j = 0; j < m.cols(); ++j) {
        const bool diag = diagonal_allowed_negative && i == j;
        PERFBG_REQUIRE(diag || row[j] >= -tol, what);
      }
    }
  };
  require_nonneg_offdiag(b00, true, "B00 off-diagonal must be nonnegative");
  require_nonneg_offdiag(b01, false, "B01 must be nonnegative");
  require_nonneg_offdiag(b10, false, "B10 must be nonnegative");
  require_nonneg_offdiag(a0, false, "A0 must be nonnegative");
  require_nonneg_offdiag(a1, true, "A1 off-diagonal must be nonnegative");
  require_nonneg_offdiag(a2, false, "A2 must be nonnegative");

  for (std::size_t i = 0; i < nb; ++i) {
    const double s = b00.row_sum(i) + b01.row_sum(i);
    PERFBG_REQUIRE(std::abs(s) <= tol * std::max(1.0, std::abs(b00.row_data(i)[i])),
                   "boundary generator rows must sum to zero");
  }
  for (std::size_t i = 0; i < nr; ++i) {
    const double diag = std::abs(a1.row_data(i)[i]);
    const double s_first = b10.row_sum(i) + a1.row_sum(i) + a0.row_sum(i);
    PERFBG_REQUIRE(std::abs(s_first) <= tol * std::max(1.0, diag),
                   "first-repeating-level rows must sum to zero");
    const double s_rep = a2.row_sum(i) + a1.row_sum(i) + a0.row_sum(i);
    PERFBG_REQUIRE(std::abs(s_rep) <= tol * std::max(1.0, diag),
                   "repeating-level rows must sum to zero");
  }
}

Vector QbdProcess::level_generator_stationary() const {
  // The level generator can be reducible (in the FG/BG chain the background
  // buffer can only fill, never drain, at high levels, so the full-buffer
  // slots form a closed class; a frozen idle-wait phase multiplies that
  // class). The drift condition uses a stationary vector supported on a
  // closed class; drift_ratio() checks every closed class.
  const linalg::Matrix a = a0 + a1 + a2;
  return markov::stationary_on_class(a, markov::closed_classes(a).front());
}

double QbdProcess::drift_ratio() const {
  // Stability requires up-rate < down-rate within every closed class of the
  // level process (classes not reachable from the initial conditions are
  // harmless, so taking the maximum is conservative; for the chains built
  // here the classes are symmetric copies and agree exactly).
  const linalg::Matrix a = a0 + a1 + a2;
  const Vector ones(level_size(), 1.0);
  double worst = 0.0;
  for (const auto& cls : markov::closed_classes(a)) {
    const Vector phi = markov::stationary_on_class(a, cls);
    const double up = linalg::dot(phi, linalg::mat_vec(a0, ones));
    const double down = linalg::dot(phi, linalg::mat_vec(a2, ones));
    PERFBG_ASSERT(down > 0.0, "repeating part has no downward transitions");
    worst = std::max(worst, up / down);
  }
  return worst;
}

bool QbdProcess::is_stable() const { return drift_ratio() < 1.0; }

}  // namespace perfbg::qbd
