#include "qbd/preflight.hpp"

#include <cmath>
#include <sstream>

#include "markov/stationary.hpp"
#include "util/error.hpp"

namespace perfbg::qbd {

namespace {

void require_finite(const Matrix& m, const char* name, std::size_t level_size) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double* row = m.row_data(i);
    for (std::size_t j = 0; j < m.cols(); ++j) {
      if (std::isfinite(row[j])) continue;
      std::ostringstream os;
      os << "block " << name << " has a non-finite entry " << row[j] << " at (" << i
         << ", " << j << ")";
      ErrorContext ctx;
      ctx.matrix_size = level_size;
      throw Error(ErrorCode::kInvalidModel, os.str(), ctx);
    }
  }
}

}  // namespace

PreflightReport preflight(const QbdProcess& process, const PreflightOptions& opts) {
  PreflightReport report;
  report.boundary_size = process.b00.rows();
  report.level_size = process.a1.rows();

  // 1 + 2. Finiteness, then shapes / sign structure / zero row sums.
  // Finiteness goes first because NaN poisons every later comparison, so
  // reporting it as a sign/row-sum violation would point the user at the
  // wrong fix. Builders that validated these exact blocks at assembly time
  // (prevalidated) already proved both, so the O(n^2) scans are skipped.
  if (!process.prevalidated) {
    require_finite(process.b00, "B00", report.level_size);
    require_finite(process.b01, "B01", report.level_size);
    require_finite(process.b10, "B10", report.level_size);
    require_finite(process.a0, "A0", report.level_size);
    require_finite(process.a1, "A1", report.level_size);
    require_finite(process.a2, "A2", report.level_size);
    try {
      process.validate(opts.generator_tol);
    } catch (const std::invalid_argument& e) {
      ErrorContext ctx;
      ctx.matrix_size = report.level_size;
      throw Error(ErrorCode::kInvalidModel, e.what(), ctx);
    }
  }

  // 3 + 4. Drift condition per closed class of the level process
  // A = A0 + A1 + A2 (stationary_on_class may surface kSingularMatrix for a
  // malformed class; let it propagate typed).
  const linalg::Matrix a = process.a0 + process.a1 + process.a2;
  const auto classes = markov::closed_classes(a);
  report.closed_classes = classes.size();
  const Vector ones(report.level_size, 1.0);
  for (const auto& cls : classes) {
    const Vector phi = markov::stationary_on_class(a, cls);
    const double up = linalg::dot(phi, linalg::mat_vec(process.a0, ones));
    const double down = linalg::dot(phi, linalg::mat_vec(process.a2, ones));
    if (down <= 0.0) {
      ErrorContext ctx;
      ctx.matrix_size = report.level_size;
      throw Error(ErrorCode::kInvalidModel,
                  "repeating part has no downward transitions in a closed class of the "
                  "level process (A2 restricted to the class is zero)",
                  ctx);
    }
    report.drift_ratio = std::max(report.drift_ratio, up / down);
  }

  if (report.drift_ratio >= 1.0 - opts.stability_margin) {
    std::ostringstream os;
    os << "QBD is not positive recurrent: drift ratio rho = " << report.drift_ratio
       << " >= 1" << (opts.stability_margin > 0.0
                          ? " - margin " + std::to_string(opts.stability_margin)
                          : std::string())
       << "; the mean up-rate of the repeating part meets or exceeds its down-rate, so "
          "no stationary distribution exists";
    ErrorContext ctx;
    ctx.drift_ratio = report.drift_ratio;
    ctx.matrix_size = report.level_size;
    throw Error(ErrorCode::kUnstableQbd, os.str(), ctx);
  }
  return report;
}

}  // namespace perfbg::qbd
