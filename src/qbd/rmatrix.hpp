// Solvers for the matrix-quadratic equations of a QBD:
//
//   G:  A2 + A1 G + A0 G^2 = 0   (minimal nonnegative solution)
//   R:  A0 + R A1 + R^2 A2 = 0   (minimal nonnegative solution)
//
// with the classical identity R = A0 (-(A1 + A0 G))^{-1} connecting them.
// Two algorithms are provided: Latouche–Ramaswami logarithmic reduction
// (quadratic convergence, the default) and plain functional iteration
// (linear convergence, kept as an independently-coded cross-check and for
// the ablation benchmark).
//
// Robustness: unless RSolverOptions::enable_fallback is off, a failing
// primary algorithm does not abort the solve — the solver descends a ladder
//   1. the configured algorithm (logarithmic reduction by default), run with
//      the caller's exact options
//   2. the alternate algorithm (functional iteration <-> log reduction)
//   3. functional iteration with a relaxed uniformization constant
//      (c doubled — better-conditioned linear solves, slower convergence)
// Fallback rungs (2 and 3) run with a 10x iteration budget and the tolerance
// floored at 1e-10 — functional iteration converges linearly, so holding the
// last-resort rungs to the quadratic primary's 1e-13 would defeat them; the
// achieved accuracy is recorded in RSolverStats::final_residual. The ladder
// throws perfbg::Error{kNonConvergence} listing every rung's failure only
// when it is exhausted. Non-finite iterates abort a rung immediately with
// kNumericalBreakdown instead of looping to max_iters.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "qbd/qbd.hpp"
#include "util/cancellation.hpp"

namespace perfbg::qbd {

enum class RSolverKind { kLogarithmicReduction, kFunctionalIteration };

/// Which rung of the fallback ladder produced the result.
enum class SolveRung {
  kPrimary = 0,               ///< the configured algorithm, standard settings
  kAlternateAlgorithm = 1,    ///< the other G/R algorithm
  kRelaxedUniformization = 2, ///< functional iteration, relaxed constant
  kWarmStart = 3,             ///< refinement of a caller-provided R seed
};

/// A previous R solution offered as a starting point for a nearby model (an
/// adjacent sweep point, a re-solve after a small parameter change). The
/// solver refines it with functional iteration; `iterations` is what the
/// seeding solve cost, so the refinement can report how much it saved.
struct RWarmStart {
  Matrix r;
  int iterations = 0;
};

/// Outcome of a ladder descent: the winning rung plus one diagnostic line per
/// rung that failed before it.
struct SolveOutcome {
  SolveRung rung = SolveRung::kPrimary;
  std::string rung_name = "primary";     ///< human-readable winner description
  int rungs_attempted = 1;               ///< includes the successful one
  std::vector<std::string> failures;     ///< what() of each failed rung, in order
  bool fallback_used() const { return rungs_attempted > 1; }
};

struct RSolverOptions {
  RSolverKind kind = RSolverKind::kLogarithmicReduction;
  double tolerance = 1e-13;  ///< stop when the iteration increment norm falls below
  int max_iters = 10000;     ///< safety bound (log-reduction needs ~40 even near saturation)
  /// When true (and a stats out-param is given), the solver records one
  /// RSolverIteration per iteration into RSolverStats::trace. The per-
  /// iteration residual costs extra matrix products, so tracing is opt-in;
  /// the untraced hot path is unchanged.
  bool record_trace = false;
  /// Descend the fallback ladder on failure (see file header). Off: the
  /// configured algorithm is the only attempt — the behaviour cross-check
  /// benches and convergence studies want.
  bool enable_fallback = true;
  /// Test-only fault injection: pretend the first n rungs failed without
  /// running them, so the fallback path and the ladder-exhausted error can be
  /// exercised deterministically from tests. Leave at 0 in production code.
  int inject_rung_failures = 0;
  /// Optional cooperative cancellation token, checked once per iteration of
  /// every solver loop. When it fires, the solve throws
  /// perfbg::Error{kDeadlineExceeded} or {kInterrupted}; both codes are
  /// non-recoverable — the fallback ladder propagates them immediately
  /// instead of descending to the next rung. Null: never cancelled.
  const CancellationToken* cancel = nullptr;
  /// First fallback-ladder rung to attempt (0 = primary; clamped to the last
  /// rung). The sweep runner's retry path sets this to the attempt index so a
  /// retried point resumes the ladder at the next rung instead of repeating
  /// the ones that already failed. Each rung keeps the budget/tolerance it
  /// would have had in a full descent.
  int start_rung = 0;
  /// Optional warm start: refine this previous solution with functional
  /// iteration before running the configured algorithm. Attempted only on a
  /// fresh solve (start_rung == 0, matching shape); runs with the tolerance
  /// floored at the fallback floor (1e-10) and its own iteration cap. If the
  /// refinement fails to converge — or converges but its equation residual
  /// does not meet the floored tolerance — the solve silently proceeds cold,
  /// so a bad seed costs at most warm_start_max_iters cheap iterations.
  /// Shared and immutable so concurrent sweep points can hold one seed.
  std::shared_ptr<const RWarmStart> warm_start;
  /// Iteration cap for the warm-start refinement. Deliberately modest: each
  /// functional iteration is ~3x cheaper than a logarithmic-reduction step,
  /// so a cap of 150 bounds the worst-case "bad seed" overhead below one
  /// cold solve while letting a good seed finish in a handful of steps.
  int warm_start_max_iters = 150;
};

/// One row of the convergence trace.
struct RSolverIteration {
  int iteration = 0;          ///< 1-based iteration index
  double increment_norm = 0.0;  ///< inf-norm of this iteration's update
  double residual = 0.0;        ///< fixed-point residual of the iterate
  double wall_ms = 0.0;         ///< wall time spent in this iteration
};

struct RSolverStats {
  int iterations = 0;
  /// Iteration budget the winning rung ran under (opts.max_iters for the
  /// primary, the 10x fallback budget for fallback rungs). iterations /
  /// max_iters_used is the budget consumption the health telemetry reports.
  int max_iters_used = 0;
  /// Inf-norms of the first and last iteration increments of the winning
  /// rung; always recorded (one scalar store per iteration, unlike the
  /// opt-in trace), so health records can summarise the residual trajectory
  /// — geometric decay rate (last/first)^(1/(iterations-1)) — without the
  /// per-iteration residual cost. Negative until an iteration ran.
  double first_increment = -1.0;
  double last_increment = -1.0;
  double final_residual = 0.0;  ///< ||A0 + R A1 + R^2 A2||_inf at the solution
  /// Convergence tolerance the winning rung actually ran with: the caller's
  /// tolerance on a primary success, the floored fallback tolerance (see the
  /// file header) when a fallback rung produced the result. Residual bounds
  /// must be checked against this, not RSolverOptions::tolerance.
  double tolerance_used = 0.0;
  /// Which fallback rung produced the result (kPrimary when the configured
  /// algorithm succeeded outright) and what each earlier rung reported.
  SolveOutcome outcome;
  /// True when the result came from refining RSolverOptions::warm_start. A
  /// failed refinement attempt leaves this false and appends its diagnosis to
  /// outcome.failures without counting as a fallback rung.
  bool warm_start_used = false;
  /// Seed iterations minus refinement iterations (clamped at 0): the
  /// estimated iteration cost avoided by warm starting. 0 on cold solves.
  int warm_start_iterations_saved = 0;
  /// Per-iteration convergence trace; empty unless
  /// RSolverOptions::record_trace was set. For the logarithmic-reduction R
  /// solver this is the trace of the underlying G iteration (R is obtained
  /// from G in closed form). On a fallback, the trace is the winning rung's.
  std::vector<RSolverIteration> trace;
};

/// Minimal nonnegative solution of A0 + R A1 + R^2 A2 = 0 for a stable QBD.
/// Throws perfbg::Error{kNonConvergence} when every ladder rung fails
/// (typically an unstable process; run qbd::preflight() first to get the
/// drift diagnosis instead), kNumericalBreakdown / kSingularMatrix for
/// non-finite iterates and singular linear solves.
Matrix solve_r(const Matrix& a0, const Matrix& a1, const Matrix& a2,
               const RSolverOptions& opts = {}, RSolverStats* stats = nullptr);

/// Minimal nonnegative solution of A2 + A1 G + A0 G^2 = 0 (the first-passage
/// matrix of the level process). For a stable QBD, G is stochastic. Error
/// behaviour matches solve_r.
Matrix solve_g(const Matrix& a0, const Matrix& a1, const Matrix& a2,
               const RSolverOptions& opts = {}, RSolverStats* stats = nullptr);

/// Residual ||A0 + R A1 + R^2 A2||_inf, for tests and diagnostics.
double r_equation_residual(const Matrix& r, const Matrix& a0, const Matrix& a1,
                           const Matrix& a2);

}  // namespace perfbg::qbd
