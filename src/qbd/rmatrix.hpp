// Solvers for the matrix-quadratic equations of a QBD:
//
//   G:  A2 + A1 G + A0 G^2 = 0   (minimal nonnegative solution)
//   R:  A0 + R A1 + R^2 A2 = 0   (minimal nonnegative solution)
//
// with the classical identity R = A0 (-(A1 + A0 G))^{-1} connecting them.
// Two algorithms are provided: Latouche–Ramaswami logarithmic reduction
// (quadratic convergence, the default) and plain functional iteration
// (linear convergence, kept as an independently-coded cross-check and for
// the ablation benchmark).
#pragma once

#include <vector>

#include "qbd/qbd.hpp"

namespace perfbg::qbd {

enum class RSolverKind { kLogarithmicReduction, kFunctionalIteration };

struct RSolverOptions {
  RSolverKind kind = RSolverKind::kLogarithmicReduction;
  double tolerance = 1e-13;  ///< stop when the iteration increment norm falls below
  int max_iters = 10000;     ///< safety bound (log-reduction needs ~40 even near saturation)
  /// When true (and a stats out-param is given), the solver records one
  /// RSolverIteration per iteration into RSolverStats::trace. The per-
  /// iteration residual costs extra matrix products, so tracing is opt-in;
  /// the untraced hot path is unchanged.
  bool record_trace = false;
};

/// One row of the convergence trace.
struct RSolverIteration {
  int iteration = 0;          ///< 1-based iteration index
  double increment_norm = 0.0;  ///< inf-norm of this iteration's update
  double residual = 0.0;        ///< fixed-point residual of the iterate
  double wall_ms = 0.0;         ///< wall time spent in this iteration
};

struct RSolverStats {
  int iterations = 0;
  double final_residual = 0.0;  ///< ||A0 + R A1 + R^2 A2||_inf at the solution
  /// Per-iteration convergence trace; empty unless
  /// RSolverOptions::record_trace was set. For the logarithmic-reduction R
  /// solver this is the trace of the underlying G iteration (R is obtained
  /// from G in closed form).
  std::vector<RSolverIteration> trace;
};

/// Minimal nonnegative solution of A0 + R A1 + R^2 A2 = 0 for a stable QBD.
/// Throws std::runtime_error when the iteration fails to converge (typically
/// an unstable process; check QbdProcess::is_stable() first).
Matrix solve_r(const Matrix& a0, const Matrix& a1, const Matrix& a2,
               const RSolverOptions& opts = {}, RSolverStats* stats = nullptr);

/// Minimal nonnegative solution of A2 + A1 G + A0 G^2 = 0 (the first-passage
/// matrix of the level process). For a stable QBD, G is stochastic.
Matrix solve_g(const Matrix& a0, const Matrix& a1, const Matrix& a2,
               const RSolverOptions& opts = {}, RSolverStats* stats = nullptr);

/// Residual ||A0 + R A1 + R^2 A2||_inf, for tests and diagnostics.
double r_equation_residual(const Matrix& r, const Matrix& a0, const Matrix& a1,
                           const Matrix& a2);

}  // namespace perfbg::qbd
