#include "qbd/rmatrix.hpp"

#include <chrono>
#include <cmath>
#include <functional>
#include <limits>
#include <optional>
#include <sstream>

#include "linalg/gemm.hpp"
#include "linalg/lu.hpp"
#include "linalg/sparse.hpp"
#include "obs/span.hpp"
#include "util/check.hpp"
#include "util/error.hpp"

namespace perfbg::qbd {

namespace {

/// Opt-in per-iteration recorder. Wall time is measured from the previous
/// tick, so the (trace-only) residual computation between iterations is not
/// charged to the next iteration.
class IterationTrace {
 public:
  IterationTrace(const RSolverOptions& opts, RSolverStats* stats)
      : out_(opts.record_trace && stats ? &stats->trace : nullptr) {
    if (out_) {
      out_->clear();
      tick_ = std::chrono::steady_clock::now();
    }
  }

  bool enabled() const { return out_ != nullptr; }

  /// residual_fn is only invoked when tracing is on; its cost lands between
  /// the wall-time capture and the next tick, so it never inflates wall_ms.
  template <typename ResidualFn>
  void record(int iteration, double increment_norm, ResidualFn&& residual_fn) {
    if (!out_) return;
    const auto now = std::chrono::steady_clock::now();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(now - tick_).count();
    out_->push_back({iteration, increment_norm, residual_fn(), wall_ms});
    tick_ = std::chrono::steady_clock::now();
  }

 private:
  std::vector<RSolverIteration>* out_;
  std::chrono::steady_clock::time_point tick_;
};

/// Always-on residual-trajectory bookkeeping: one scalar store per iteration
/// feeding the health telemetry's decay-rate estimate. A rung that fails is
/// overwritten by the next rung, so the values left behind belong to the
/// winning rung.
void note_increment(RSolverStats* stats, int it, double norm,
                    const RSolverOptions& opts) {
  if (!stats) return;
  if (it == 0) {
    stats->first_increment = norm;
    stats->max_iters_used = opts.max_iters;
  }
  stats->last_increment = norm;
}

/// Every entry finite. Norm-based breakdown checks alone are not enough:
/// inf_norm / max_abs_diff reduce with std::max, which silently drops NaN
/// (NaN comparisons are false), so a poisoned iterate can masquerade as
/// converged. The explicit scan is O(n^2) per iteration against the O(n^3)
/// solves around it.
bool all_finite(const Matrix& m) {
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double* row = m.row_data(i);
    for (std::size_t j = 0; j < m.cols(); ++j)
      if (!std::isfinite(row[j])) return false;
  }
  return true;
}

void check_shapes(const Matrix& a0, const Matrix& a1, const Matrix& a2) {
  PERFBG_REQUIRE(a0.is_square() && a1.is_square() && a2.is_square(), "A blocks must be square");
  PERFBG_REQUIRE(a0.rows() == a1.rows() && a1.rows() == a2.rows(),
                 "A blocks must have one common size");
  PERFBG_REQUIRE(a0.rows() > 0, "A blocks must be non-empty");
}

[[noreturn]] void throw_non_convergence(const char* what, const RSolverOptions& opts,
                                        double last_increment, std::size_t n) {
  std::ostringstream os;
  os << what << " did not converge within " << opts.max_iters
     << " iterations (tolerance " << opts.tolerance << ")";
  ErrorContext ctx;
  ctx.iterations = opts.max_iters;
  if (std::isfinite(last_increment) && last_increment >= 0.0)
    ctx.last_residual = last_increment;
  ctx.matrix_size = n;
  throw Error(ErrorCode::kNonConvergence, os.str(), ctx);
}

[[noreturn]] void throw_breakdown(const char* what, int iteration, std::size_t n) {
  std::ostringstream os;
  os << what << " produced a non-finite iterate";
  ErrorContext ctx;
  ctx.iterations = iteration;
  ctx.matrix_size = n;
  throw Error(ErrorCode::kNumericalBreakdown, os.str(), ctx);
}

/// Uniformization constant and the discrete (substochastic) block triple.
struct DiscreteBlocks {
  Matrix a0_hat, a1_hat, a2_hat;
};

/// `slack` is the relative margin of the uniformization constant over the
/// largest diagonal rate: c = (1 + slack) * max_i |A1_ii|. The standard
/// 1e-10 barely dominates (fastest convergence); the relaxed-fallback rung
/// uses slack = 1 (c doubled), which better conditions the I - hat-A1 solves
/// at the price of more iterations.
DiscreteBlocks uniformize_blocks(const Matrix& a0, const Matrix& a1, const Matrix& a2,
                                 double slack) {
  double c = 0.0;
  for (std::size_t i = 0; i < a1.rows(); ++i) c = std::max(c, -a1(i, i));
  PERFBG_REQUIRE(c > 0.0, "A1 must have a negative diagonal");
  c *= 1.0 + slack;  // strictly dominate, keeping hat-A1 diagonal nonnegative
  DiscreteBlocks d;
  d.a0_hat = a0;
  d.a0_hat *= 1.0 / c;
  d.a2_hat = a2;
  d.a2_hat *= 1.0 / c;
  d.a1_hat = a1;
  d.a1_hat *= 1.0 / c;
  d.a1_hat += Matrix::identity(a1.rows());
  return d;
}

/// Fixed-point residual of the discrete G equation G = A2h + A1h G + A0h G^2,
/// used for the (opt-in) per-iteration convergence trace.
double discrete_g_residual(const DiscreteBlocks& d, const Matrix& g) {
  return (d.a2_hat + d.a1_hat * g + d.a0_hat * (g * g) - g).inf_norm();
}

/// Logarithmic reduction on the discrete blocks (Latouche & Ramaswami 1993).
/// Returns G; quadratically convergent for positive recurrent QBDs.
Matrix logarithmic_reduction_g(const DiscreteBlocks& d, const RSolverOptions& opts,
                               RSolverStats* stats) {
  const std::size_t n = d.a1_hat.rows();
  const Matrix identity = Matrix::identity(n);

  const linalg::LuDecomposition base(identity - d.a1_hat);
  Matrix b0 = base.solve(d.a0_hat);  // "up" factor
  Matrix b2 = base.solve(d.a2_hat);  // "down" factor

  Matrix g = b2;
  Matrix t = b0;
  IterationTrace trace(opts, stats);
  int it = 0;
  double last_increment = -1.0;
  for (; it < opts.max_iters; ++it) {
    if (opts.cancel) opts.cancel->check();
    obs::ScopedSpan span("qbd.rsolve.iteration");
    const Matrix u = b0 * b2 + b2 * b0;
    const linalg::LuDecomposition lu(identity - u);
    const Matrix b0_next = lu.solve(b0 * b0);
    const Matrix b2_next = lu.solve(b2 * b2);
    const Matrix increment = t * b2_next;
    g += increment;
    t = t * b0_next;
    b0 = b0_next;
    b2 = b2_next;
    const double increment_norm = increment.inf_norm();
    if (!std::isfinite(increment_norm) || !all_finite(g))
      throw_breakdown("logarithmic reduction", it + 1, n);
    last_increment = increment_norm;
    note_increment(stats, it, increment_norm, opts);
    trace.record(it + 1, increment_norm, [&] { return discrete_g_residual(d, g); });
    span.attr("iteration", obs::JsonValue(it + 1))
        .attr("increment_norm", obs::JsonValue(increment_norm));
    if (increment_norm < opts.tolerance && t.inf_norm() < std::sqrt(opts.tolerance)) break;
  }
  if (it >= opts.max_iters)
    throw_non_convergence("logarithmic reduction", opts, last_increment, n);
  if (stats) stats->iterations = it + 1;
  return g;
}

/// Natural fixed-point iteration for G on the discrete blocks:
/// G <- (I - A1h - A0h G)^{-1} A2h, monotone from G = 0.
Matrix functional_iteration_g(const DiscreteBlocks& d, const RSolverOptions& opts,
                              RSolverStats* stats) {
  const std::size_t n = d.a1_hat.rows();
  const Matrix identity = Matrix::identity(n);
  Matrix g(n, n, 0.0);
  IterationTrace trace(opts, stats);
  int it = 0;
  double last_delta = -1.0;
  for (; it < opts.max_iters; ++it) {
    if (opts.cancel) opts.cancel->check();
    obs::ScopedSpan span("qbd.rsolve.iteration");
    const Matrix next =
        linalg::LuDecomposition(identity - d.a1_hat - d.a0_hat * g).solve(d.a2_hat);
    const double delta = next.max_abs_diff(g);
    g = next;
    if (!std::isfinite(delta) || !all_finite(g))
      throw_breakdown("functional iteration for G", it + 1, n);
    last_delta = delta;
    note_increment(stats, it, delta, opts);
    trace.record(it + 1, delta, [&] { return discrete_g_residual(d, g); });
    span.attr("iteration", obs::JsonValue(it + 1))
        .attr("increment_norm", obs::JsonValue(delta));
    if (delta < opts.tolerance) break;
  }
  if (it >= opts.max_iters)
    throw_non_convergence("functional iteration for G", opts, last_delta, n);
  if (stats) stats->iterations = it + 1;
  return g;
}

/// Direct functional iteration on the continuous-time R equation:
/// R <- -(A0 + R^2 A2) A1^{-1}, monotone from R = 0 (or refining a caller
/// seed when `seed` is non-null — used by the warm-start path).
Matrix functional_iteration_r(const Matrix& a0, const Matrix& a1, const Matrix& a2,
                              const RSolverOptions& opts, RSolverStats* stats,
                              const Matrix* seed = nullptr) {
  const linalg::LuDecomposition a1_lu(a1);
  const std::size_t n = a0.rows();
  // A2 is sparse/banded for the chains built here (O(phases) nonzeros per
  // row), so the R^2 A2 term streams the CSR form instead of a dense product.
  const linalg::SparseMatrix a2_sparse = linalg::SparseMatrix::from_dense(a2);
  Matrix r = seed ? *seed : Matrix(n, n, 0.0);
  IterationTrace trace(opts, stats);
  int it = 0;
  double last_delta = -1.0;
  // Contraction probe for seeded (warm-start) refinements: the linear rate of
  // this iteration is ~sp(R), so on slowly mixing chains a long tail of cheap
  // steps still loses to a cold quadratic solve. Measure the rate over
  // iterations [probe_start, probe_end] and abandon immediately when the
  // projected iteration count exceeds the budget, bounding a failed warm bet
  // to a handful of iterations instead of max_iters.
  constexpr int kProbeStart = 3, kProbeEnd = 8;
  double probe_delta = -1.0;
  for (; it < opts.max_iters; ++it) {
    if (opts.cancel) opts.cancel->check();
    obs::ScopedSpan span("qbd.rsolve.iteration");
    Matrix rhs = a0;
    a2_sparse.add_left_multiply(r * r, rhs);
    rhs *= -1.0;
    // Solve X A1 = rhs (A1 acts from the right), all rows in one pass.
    const Matrix next = a1_lu.solve_left(rhs);
    const double delta = next.max_abs_diff(r);
    r = next;
    if (!std::isfinite(delta) || !all_finite(r))
      throw_breakdown("functional iteration for R", it + 1, n);
    last_delta = delta;
    note_increment(stats, it, delta, opts);
    trace.record(it + 1, delta, [&] { return r_equation_residual(r, a0, a1, a2); });
    span.attr("iteration", obs::JsonValue(it + 1))
        .attr("increment_norm", obs::JsonValue(delta));
    if (delta < opts.tolerance) break;
    if (seed && delta > 0.0) {
      if (it == kProbeStart) {
        probe_delta = delta;
      } else if (it == kProbeEnd && probe_delta > 0.0) {
        const double rate =
            std::pow(delta / probe_delta, 1.0 / (kProbeEnd - kProbeStart));
        const double projected =
            rate < 1.0 ? std::log(opts.tolerance / delta) / std::log(rate)
                       : std::numeric_limits<double>::infinity();
        if (!(static_cast<double>(it) + projected <= opts.max_iters)) {
          std::ostringstream os;
          os << "warm refinement abandoned: contraction rate " << rate
             << " projects " << projected << " more iterations against a budget of "
             << opts.max_iters;
          ErrorContext ctx;
          ctx.iterations = it + 1;
          ctx.last_residual = delta;
          ctx.matrix_size = n;
          throw Error(ErrorCode::kNonConvergence, os.str(), ctx);
        }
      }
    }
  }
  if (it >= opts.max_iters)
    throw_non_convergence("functional iteration for R", opts, last_delta, n);
  if (stats) stats->iterations = it + 1;
  return r;
}

/// R = A0 (-(A1 + A0 G))^{-1}: the closed form connecting G to R, computed
/// as one transposed multi-RHS solve (M^T R^T = A0^T) instead of forming the
/// explicit inverse. A0 is sparse for the chains built here, so its product
/// with G streams the CSR form.
Matrix r_from_g(const Matrix& a0, const Matrix& a1, const Matrix& g) {
  Matrix m = linalg::SparseMatrix::from_dense(a0).multiply_dense(g);
  m += a1;
  m *= -1.0;
  return linalg::LuDecomposition(m.transposed()).solve(a0.transposed()).transposed();
}

/// One rung of the fallback ladder.
struct RungSpec {
  SolveRung id;
  const char* name;
  double tolerance;  ///< the tolerance this rung's solver runs with
  std::function<Matrix()> run;
};

/// Descends the ladder: first rung that returns wins; a rung failing with a
/// typed Error is recorded and the next rung runs. With fallback disabled
/// only the first rung runs and its error propagates untouched (so callers
/// opting out keep exact single-algorithm semantics). An exhausted ladder
/// throws kNonConvergence aggregating every rung's diagnosis.
Matrix run_ladder(const std::vector<RungSpec>& rungs, const RSolverOptions& opts,
                  RSolverStats* stats, std::size_t n) {
  // A retry resumes the descent at start_rung (clamped so a runaway attempt
  // counter still exercises the last rung); without fallback only that one
  // rung runs.
  const std::size_t first =
      std::min<std::size_t>(std::max(opts.start_rung, 0), rungs.size() - 1);
  const std::size_t count = opts.enable_fallback ? rungs.size() : first + 1;
  SolveOutcome outcome;
  std::optional<Error> first_error;
  int last_iterations = -1;
  double last_residual = -1.0;
  for (std::size_t idx = first; idx < count; ++idx) {
    const RungSpec& rung = rungs[idx];
    outcome.rungs_attempted = static_cast<int>(idx) + 1;
    if (static_cast<int>(idx) < opts.inject_rung_failures) {
      outcome.failures.push_back(std::string(rung.name) +
                                 ": injected fault (test hook, rung skipped)");
      continue;
    }
    obs::ScopedSpan rung_span("qbd.solve.rung");
    rung_span.attr("rung", obs::JsonValue(rung.name))
        .attr("rung_index", obs::JsonValue(static_cast<int>(idx)))
        .attr("matrix_size", obs::JsonValue(static_cast<std::int64_t>(n)));
    try {
      Matrix result = rung.run();
      // Chokepoint finiteness check: also covers the r_from_g closed form
      // inside the R rungs, where a near-singular A1 + A0 G can turn a finite
      // G into a non-finite R without any iteration noticing.
      if (!all_finite(result)) {
        ErrorContext ctx;
        ctx.matrix_size = n;
        throw Error(ErrorCode::kNumericalBreakdown,
                    std::string(rung.name) + " produced a non-finite result", ctx);
      }
      outcome.rung = rung.id;
      outcome.rung_name = rung.name;
      if (stats) {
        stats->tolerance_used = rung.tolerance;
        stats->outcome = std::move(outcome);
      }
      return result;
    } catch (const Error& e) {
      rung_span.attr("failed", obs::JsonValue(true))
          .attr("error", obs::JsonValue(error_code_name(e.code())));
      // Cancellation is not a solver failure: descending the ladder after a
      // deadline or interrupt fired would keep burning the budget the token
      // exists to cap. Propagate immediately.
      if (e.code() == ErrorCode::kDeadlineExceeded || e.code() == ErrorCode::kInterrupted) {
        if (stats) {
          outcome.failures.push_back(std::string(rung.name) + ": " + e.what());
          stats->outcome = std::move(outcome);
        }
        throw;
      }
      outcome.failures.push_back(std::string(rung.name) + ": " + e.what());
      if (!first_error) first_error = e;
      if (e.context().has_iterations()) last_iterations = e.context().iterations;
      if (e.context().has_last_residual()) last_residual = e.context().last_residual;
    }
  }
  if (stats) stats->outcome = outcome;
  if (!opts.enable_fallback && first_error) throw *first_error;
  std::ostringstream os;
  os << "no rung of the solver fallback ladder produced a solution ("
     << outcome.rungs_attempted << " of " << rungs.size() << " rungs attempted";
  for (const std::string& f : outcome.failures) os << "; " << f;
  os << "). Is the QBD stable? Run qbd::preflight() for the drift diagnosis.";
  ErrorContext ctx;
  ctx.iterations = last_iterations;
  ctx.last_residual = last_residual;
  ctx.matrix_size = n;
  throw Error(ErrorCode::kNonConvergence, os.str(), ctx);
}

constexpr double kStandardSlack = 1e-10;
constexpr double kRelaxedSlack = 1.0;
/// Fallback rungs get a 10x iteration budget and a tolerance floored at
/// 1e-10: functional iteration converges only linearly, so holding it to the
/// primary's quadratic-algorithm tolerance (default 1e-13) would make the
/// last-resort rungs fail on models the primary handles in 40 iterations.
/// A 1e-10-accurate R from a fallback beats no R; the achieved accuracy is
/// visible in RSolverStats::final_residual.
constexpr int kFallbackIterationMultiplier = 10;
constexpr double kFallbackToleranceFloor = 1e-10;

RSolverOptions fallback_options(const RSolverOptions& opts) {
  RSolverOptions fb = opts;
  fb.max_iters = opts.max_iters * kFallbackIterationMultiplier;
  fb.tolerance = std::max(opts.tolerance, kFallbackToleranceFloor);
  return fb;
}

/// The three-rung ladder for G (see the file header of rmatrix.hpp). The
/// primary runs with the caller's exact options; fallback rungs run with
/// fallback_options() (bigger budget, floored tolerance).
std::vector<RungSpec> g_ladder(const Matrix& a0, const Matrix& a1, const Matrix& a2,
                               const RSolverOptions& opts, RSolverStats* stats) {
  const bool log_primary = opts.kind == RSolverKind::kLogarithmicReduction;
  auto log_g = [&a0, &a1, &a2, stats](const RSolverOptions& o) {
    return logarithmic_reduction_g(uniformize_blocks(a0, a1, a2, kStandardSlack), o,
                                   stats);
  };
  auto fun_g = [&a0, &a1, &a2, stats](const RSolverOptions& o) {
    return functional_iteration_g(uniformize_blocks(a0, a1, a2, kStandardSlack), o,
                                  stats);
  };
  const RSolverOptions fb = fallback_options(opts);
  auto relaxed_g = [&a0, &a1, &a2, fb, stats] {
    return functional_iteration_g(uniformize_blocks(a0, a1, a2, kRelaxedSlack), fb,
                                  stats);
  };
  std::vector<RungSpec> rungs;
  rungs.push_back({SolveRung::kPrimary,
                   log_primary ? "logarithmic reduction" : "functional iteration (G)",
                   opts.tolerance,
                   log_primary ? std::function<Matrix()>([log_g, opts] { return log_g(opts); })
                               : std::function<Matrix()>([fun_g, opts] { return fun_g(opts); })});
  rungs.push_back({SolveRung::kAlternateAlgorithm,
                   log_primary ? "functional iteration (G)" : "logarithmic reduction",
                   fb.tolerance,
                   log_primary ? std::function<Matrix()>([fun_g, fb] { return fun_g(fb); })
                               : std::function<Matrix()>([log_g, fb] { return log_g(fb); })});
  rungs.push_back({SolveRung::kRelaxedUniformization,
                   "functional iteration (G, relaxed uniformization constant)",
                   fb.tolerance, std::function<Matrix()>(relaxed_g)});
  return rungs;
}

}  // namespace

double r_equation_residual(const Matrix& r, const Matrix& a0, const Matrix& a1,
                           const Matrix& a2) {
  // Fused accumulation A0 + R A1 + R^2 A2 into one buffer: two gemm_adds
  // instead of three temporaries and two elementwise passes.
  Matrix res = a0;
  linalg::gemm_add(r, a1, res);
  linalg::gemm_add(r * r, a2, res);
  return res.inf_norm();
}

Matrix solve_g(const Matrix& a0, const Matrix& a1, const Matrix& a2,
               const RSolverOptions& opts, RSolverStats* stats) {
  check_shapes(a0, a1, a2);
  obs::ScopedSpan span("qbd.solve_g");
  span.attr("matrix_size", obs::JsonValue(static_cast<std::int64_t>(a1.rows())));
  Matrix g = run_ladder(g_ladder(a0, a1, a2, opts, stats), opts, stats, a1.rows());
  if (stats) {
    // Residual of the continuous-time G equation.
    stats->final_residual = (a2 + a1 * g + a0 * (g * g)).inf_norm();
    span.attr("iterations", obs::JsonValue(stats->iterations))
        .attr("final_residual", obs::JsonValue(stats->final_residual));
  }
  return g;
}

Matrix solve_r(const Matrix& a0, const Matrix& a1, const Matrix& a2,
               const RSolverOptions& opts, RSolverStats* stats) {
  check_shapes(a0, a1, a2);
  obs::ScopedSpan span("qbd.solve_r");
  span.attr("matrix_size", obs::JsonValue(static_cast<std::int64_t>(a0.rows())));

  // Warm start: refine the caller's previous R before any cold algorithm.
  // Attempted only on a fresh descent (retries already know the primary is in
  // trouble) and verified against the floored tolerance before being trusted
  // — a refinement that converged on its increment but not on the equation
  // residual is discarded and the solve proceeds cold.
  std::string warm_failure;
  Matrix r;
  bool solved = false;
  if (opts.warm_start && opts.start_rung == 0 &&
      opts.warm_start->r.rows() == a0.rows() && opts.warm_start->r.is_square()) {
    RSolverOptions wopts = opts;
    wopts.tolerance = std::max(opts.tolerance, kFallbackToleranceFloor);
    // Break-even budget: a functional iteration costs roughly a third of a
    // logarithmic-reduction step, so refining past ~3x the seed's own
    // iteration count is slower than just solving cold. A near-converged
    // seed (the repeat-solve case this exists for) finishes in a handful of
    // iterations either way; a distant seed hits this wall — or the
    // contraction probe inside the iteration — and the solve goes cold.
    wopts.max_iters = std::min(std::max(1, opts.warm_start_max_iters),
                               std::max(12, 3 * opts.warm_start->iterations));
    obs::ScopedSpan warm_span("qbd.solve.rung");
    warm_span.attr("rung", obs::JsonValue("warm-start refinement"))
        .attr("matrix_size", obs::JsonValue(static_cast<std::int64_t>(a0.rows())));
    try {
      Matrix warm = functional_iteration_r(a0, a1, a2, wopts, stats, &opts.warm_start->r);
      const double residual = r_equation_residual(warm, a0, a1, a2);
      if (!all_finite(warm) || !(residual <= 10.0 * wopts.tolerance)) {
        warm_failure = "warm-start refinement: converged increment but equation "
                       "residual " + std::to_string(residual) + " above tolerance";
        warm_span.attr("failed", obs::JsonValue(true));
      } else {
        r = std::move(warm);
        solved = true;
        if (stats) {
          stats->tolerance_used = wopts.tolerance;
          stats->outcome = SolveOutcome{};
          stats->outcome.rung = SolveRung::kWarmStart;
          stats->outcome.rung_name = "warm-start refinement";
          stats->warm_start_used = true;
          stats->warm_start_iterations_saved =
              std::max(0, opts.warm_start->iterations - stats->iterations);
          span.attr("warm_start", obs::JsonValue(true));
        }
      }
    } catch (const Error& e) {
      if (e.code() == ErrorCode::kDeadlineExceeded ||
          e.code() == ErrorCode::kInterrupted)
        throw;
      warm_failure = std::string("warm-start refinement: ") + e.what();
      warm_span.attr("failed", obs::JsonValue(true))
          .attr("error", obs::JsonValue(error_code_name(e.code())));
    }
  }

  if (solved) {
    // fall through to the shared residual/clamp tail below
  } else if (opts.kind == RSolverKind::kLogarithmicReduction) {
    // G via the ladder, then R from G in closed form.
    const Matrix g = run_ladder(g_ladder(a0, a1, a2, opts, stats), opts, stats, a1.rows());
    r = r_from_g(a0, a1, g);
  } else {
    // Primary: direct continuous-time R iteration. Fallbacks go through G —
    // the G route does not need A1 invertible, so it also covers singular-A1
    // failures of the direct iteration.
    const RSolverOptions fb = fallback_options(opts);
    auto direct_r = [&a0, &a1, &a2, opts, stats] {
      return functional_iteration_r(a0, a1, a2, opts, stats);
    };
    auto log_g_route = [&a0, &a1, &a2, fb, stats] {
      return r_from_g(a0, a1,
                      logarithmic_reduction_g(
                          uniformize_blocks(a0, a1, a2, kStandardSlack), fb, stats));
    };
    auto relaxed_g_route = [&a0, &a1, &a2, fb, stats] {
      return r_from_g(a0, a1,
                      functional_iteration_g(
                          uniformize_blocks(a0, a1, a2, kRelaxedSlack), fb, stats));
    };
    const std::vector<RungSpec> rungs{
        {SolveRung::kPrimary, "functional iteration (R)", opts.tolerance, direct_r},
        {SolveRung::kAlternateAlgorithm, "logarithmic reduction (G route)",
         fb.tolerance, log_g_route},
        {SolveRung::kRelaxedUniformization,
         "functional iteration (G route, relaxed uniformization constant)",
         fb.tolerance, relaxed_g_route}};
    r = run_ladder(rungs, opts, stats, a0.rows());
  }
  if (stats) {
    stats->final_residual = r_equation_residual(r, a0, a1, a2);
    // A failed warm-start attempt is diagnostic context, not a fallback rung:
    // it prepends its failure without touching rungs_attempted.
    if (!warm_failure.empty())
      stats->outcome.failures.insert(stats->outcome.failures.begin(),
                                     std::move(warm_failure));
    span.attr("iterations", obs::JsonValue(stats->iterations))
        .attr("final_residual", obs::JsonValue(stats->final_residual));
  }
  // R is nonnegative in exact arithmetic; clamp roundoff-level negatives so
  // downstream nonnegativity checks (spectral radius, probabilities) hold.
  // The threshold is relative to ||R||_inf so large-rate models do not trip
  // the assert on benign roundoff.
  const double negative_tolerance = 1e-9 * std::max(1.0, r.inf_norm());
  for (std::size_t i = 0; i < r.rows(); ++i) {
    double* row = r.row_data(i);
    for (std::size_t j = 0; j < r.cols(); ++j) {
      if (row[j] < 0.0) {
        PERFBG_ASSERT(row[j] > -negative_tolerance, "R has a significantly negative entry");
        row[j] = 0.0;
      }
    }
  }
  return r;
}

}  // namespace perfbg::qbd
