#include "qbd/rmatrix.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "linalg/lu.hpp"
#include "util/check.hpp"

namespace perfbg::qbd {

namespace {

/// Opt-in per-iteration recorder. Wall time is measured from the previous
/// tick, so the (trace-only) residual computation between iterations is not
/// charged to the next iteration.
class IterationTrace {
 public:
  IterationTrace(const RSolverOptions& opts, RSolverStats* stats)
      : out_(opts.record_trace && stats ? &stats->trace : nullptr) {
    if (out_) {
      out_->clear();
      tick_ = std::chrono::steady_clock::now();
    }
  }

  bool enabled() const { return out_ != nullptr; }

  /// residual_fn is only invoked when tracing is on; its cost lands between
  /// the wall-time capture and the next tick, so it never inflates wall_ms.
  template <typename ResidualFn>
  void record(int iteration, double increment_norm, ResidualFn&& residual_fn) {
    if (!out_) return;
    const auto now = std::chrono::steady_clock::now();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(now - tick_).count();
    out_->push_back({iteration, increment_norm, residual_fn(), wall_ms});
    tick_ = std::chrono::steady_clock::now();
  }

 private:
  std::vector<RSolverIteration>* out_;
  std::chrono::steady_clock::time_point tick_;
};

void check_shapes(const Matrix& a0, const Matrix& a1, const Matrix& a2) {
  PERFBG_REQUIRE(a0.is_square() && a1.is_square() && a2.is_square(), "A blocks must be square");
  PERFBG_REQUIRE(a0.rows() == a1.rows() && a1.rows() == a2.rows(),
                 "A blocks must have one common size");
  PERFBG_REQUIRE(a0.rows() > 0, "A blocks must be non-empty");
}

/// Uniformization constant and the discrete (substochastic) block triple.
struct DiscreteBlocks {
  Matrix a0_hat, a1_hat, a2_hat;
};

DiscreteBlocks uniformize_blocks(const Matrix& a0, const Matrix& a1, const Matrix& a2) {
  double c = 0.0;
  for (std::size_t i = 0; i < a1.rows(); ++i) c = std::max(c, -a1(i, i));
  PERFBG_REQUIRE(c > 0.0, "A1 must have a negative diagonal");
  c *= 1.0 + 1e-10;  // strictly dominate, keeping hat-A1 diagonal nonnegative
  DiscreteBlocks d;
  d.a0_hat = a0;
  d.a0_hat *= 1.0 / c;
  d.a2_hat = a2;
  d.a2_hat *= 1.0 / c;
  d.a1_hat = a1;
  d.a1_hat *= 1.0 / c;
  d.a1_hat += Matrix::identity(a1.rows());
  return d;
}

/// Fixed-point residual of the discrete G equation G = A2h + A1h G + A0h G^2,
/// used for the (opt-in) per-iteration convergence trace.
double discrete_g_residual(const DiscreteBlocks& d, const Matrix& g) {
  return (d.a2_hat + d.a1_hat * g + d.a0_hat * (g * g) - g).inf_norm();
}

/// Logarithmic reduction on the discrete blocks (Latouche & Ramaswami 1993).
/// Returns G; quadratically convergent for positive recurrent QBDs.
Matrix logarithmic_reduction_g(const DiscreteBlocks& d, const RSolverOptions& opts,
                               RSolverStats* stats) {
  const std::size_t n = d.a1_hat.rows();
  const Matrix identity = Matrix::identity(n);

  const linalg::LuDecomposition base(identity - d.a1_hat);
  Matrix b0 = base.solve(d.a0_hat);  // "up" factor
  Matrix b2 = base.solve(d.a2_hat);  // "down" factor

  Matrix g = b2;
  Matrix t = b0;
  IterationTrace trace(opts, stats);
  int it = 0;
  for (; it < opts.max_iters; ++it) {
    const Matrix u = b0 * b2 + b2 * b0;
    const linalg::LuDecomposition lu(identity - u);
    const Matrix b0_next = lu.solve(b0 * b0);
    const Matrix b2_next = lu.solve(b2 * b2);
    const Matrix increment = t * b2_next;
    g += increment;
    t = t * b0_next;
    b0 = b0_next;
    b2 = b2_next;
    const double increment_norm = increment.inf_norm();
    trace.record(it + 1, increment_norm, [&] { return discrete_g_residual(d, g); });
    if (increment_norm < opts.tolerance && t.inf_norm() < std::sqrt(opts.tolerance)) break;
  }
  if (it >= opts.max_iters)
    throw std::runtime_error("perfbg: logarithmic reduction did not converge "
                             "(is the QBD stable?)");
  if (stats) stats->iterations = it + 1;
  return g;
}

/// Natural fixed-point iteration for G on the discrete blocks:
/// G <- (I - A1h - A0h G)^{-1} A2h, monotone from G = 0.
Matrix functional_iteration_g(const DiscreteBlocks& d, const RSolverOptions& opts,
                              RSolverStats* stats) {
  const std::size_t n = d.a1_hat.rows();
  const Matrix identity = Matrix::identity(n);
  Matrix g(n, n, 0.0);
  IterationTrace trace(opts, stats);
  int it = 0;
  for (; it < opts.max_iters; ++it) {
    const Matrix next =
        linalg::LuDecomposition(identity - d.a1_hat - d.a0_hat * g).solve(d.a2_hat);
    const double delta = next.max_abs_diff(g);
    g = next;
    trace.record(it + 1, delta, [&] { return discrete_g_residual(d, g); });
    if (delta < opts.tolerance) break;
  }
  if (it >= opts.max_iters)
    throw std::runtime_error("perfbg: functional iteration for G did not converge "
                             "(is the QBD stable?)");
  if (stats) stats->iterations = it + 1;
  return g;
}

}  // namespace

double r_equation_residual(const Matrix& r, const Matrix& a0, const Matrix& a1,
                           const Matrix& a2) {
  return (a0 + r * a1 + r * r * a2).inf_norm();
}

Matrix solve_g(const Matrix& a0, const Matrix& a1, const Matrix& a2,
               const RSolverOptions& opts, RSolverStats* stats) {
  check_shapes(a0, a1, a2);
  const DiscreteBlocks d = uniformize_blocks(a0, a1, a2);
  Matrix g = (opts.kind == RSolverKind::kLogarithmicReduction)
                 ? logarithmic_reduction_g(d, opts, stats)
                 : functional_iteration_g(d, opts, stats);
  if (stats) {
    // Residual of the continuous-time G equation.
    stats->final_residual = (a2 + a1 * g + a0 * (g * g)).inf_norm();
  }
  return g;
}

Matrix solve_r(const Matrix& a0, const Matrix& a1, const Matrix& a2,
               const RSolverOptions& opts, RSolverStats* stats) {
  check_shapes(a0, a1, a2);
  Matrix r;
  if (opts.kind == RSolverKind::kLogarithmicReduction) {
    // R = A0 (-(A1 + A0 G))^{-1}.
    const Matrix g = solve_g(a0, a1, a2, opts, stats);
    Matrix m = a1 + a0 * g;
    m *= -1.0;
    r = linalg::LuDecomposition(std::move(m)).inverse();
    r = a0 * r;
  } else {
    // Direct functional iteration on the continuous-time R equation:
    // R <- -(A0 + R^2 A2) A1^{-1}, monotone from R = 0.
    const linalg::LuDecomposition a1_lu(a1);
    const std::size_t n = a0.rows();
    r = Matrix(n, n, 0.0);
    IterationTrace trace(opts, stats);
    int it = 0;
    for (; it < opts.max_iters; ++it) {
      Matrix rhs = a0 + (r * r) * a2;
      rhs *= -1.0;
      // Solve X A1 = rhs row by row (A1 acts from the right).
      Matrix next(n, n);
      Vector row(n);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) row[j] = rhs(i, j);
        const Vector x = a1_lu.solve_left(row);
        for (std::size_t j = 0; j < n; ++j) next(i, j) = x[j];
      }
      const double delta = next.max_abs_diff(r);
      r = next;
      trace.record(it + 1, delta, [&] { return r_equation_residual(r, a0, a1, a2); });
      if (delta < opts.tolerance) break;
    }
    if (it >= opts.max_iters)
      throw std::runtime_error("perfbg: functional iteration for R did not converge "
                               "(is the QBD stable?)");
    if (stats) {
      stats->iterations = it + 1;
      stats->final_residual = r_equation_residual(r, a0, a1, a2);
    }
  }
  if (stats && opts.kind == RSolverKind::kLogarithmicReduction)
    stats->final_residual = r_equation_residual(r, a0, a1, a2);
  // R is nonnegative in exact arithmetic; clamp roundoff-level negatives so
  // downstream nonnegativity checks (spectral radius, probabilities) hold.
  for (std::size_t i = 0; i < r.rows(); ++i)
    for (std::size_t j = 0; j < r.cols(); ++j) {
      if (r(i, j) < 0.0) {
        PERFBG_ASSERT(r(i, j) > -1e-9, "R has a significantly negative entry");
        r(i, j) = 0.0;
      }
    }
  return r;
}

}  // namespace perfbg::qbd
