// Stationary solution of a QBD process: R matrix, boundary vector, and the
// geometric tail, with the level-sum helpers needed to evaluate queue-length
// style metrics in closed form.
#pragma once

#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "qbd/qbd.hpp"
#include "qbd/rmatrix.hpp"

namespace perfbg::qbd {

/// Solves a QBD for its stationary distribution. The solution exposes
///   boundary()          pi over the flattened boundary states,
///   repeating_level(k)  pi over repeating level k (k = 0 is the first),
///   repeating_sum()     sum_k pi_k            = pi_0 (I-R)^{-1},
///   repeating_index_sum sum_k k pi_k          = pi_0 R (I-R)^{-2},
/// all as per-state vectors over the repeating layout.
class QbdSolution {
 public:
  /// Solves the process. Runs qbd::preflight() first, so malformed blocks
  /// fail with perfbg::Error{kInvalidModel} and non-positive-recurrent
  /// processes with perfbg::Error{kUnstableQbd} (naming the drift ratio)
  /// before any solver iteration is spent.
  /// A non-null `metrics` registry receives per-phase timings
  /// (qbd.preflight / qbd.solve.r / qbd.solve.boundary / qbd.solve.tail),
  /// the counters qbd.rsolve.iterations and qbd.solve.fallback_used, and the
  /// gauges qbd.preflight.drift_ratio, qbd.rsolve.final_residual and
  /// qbd.r.spectral_radius.
  explicit QbdSolution(const QbdProcess& process, const RSolverOptions& opts = {},
                       obs::MetricsRegistry* metrics = nullptr);

  const Matrix& r_matrix() const { return r_; }
  double r_spectral_radius() const { return sp_r_; }
  /// Preflight drift ratio of the solved process (< 1 for a stable QBD);
  /// proximity to 1 is the telemetry's near-saturation signal.
  double preflight_drift() const { return preflight_drift_; }
  const RSolverStats& solver_stats() const { return stats_; }
  /// Per-iteration R-solver convergence trace; non-empty iff the solve ran
  /// with RSolverOptions::record_trace.
  const std::vector<RSolverIteration>& solver_trace() const { return stats_.trace; }

  const Vector& boundary() const { return pi_boundary_; }
  const Vector& first_repeating() const { return pi_first_; }

  /// pi over repeating level k (k >= 0); computed as pi_first R^k.
  Vector repeating_level(int k) const;

  /// Componentwise sum over all repeating levels: pi_first (I-R)^{-1}.
  const Vector& repeating_sum() const { return rep_sum_; }

  /// Componentwise sum of k * pi_k over repeating levels:
  /// pi_first R (I-R)^{-2}.
  const Vector& repeating_index_sum() const { return rep_index_sum_; }

  /// Total probability mass over all repeating levels.
  double repeating_mass() const { return linalg::sum(rep_sum_); }
  /// Total probability mass in the boundary.
  double boundary_mass() const { return linalg::sum(pi_boundary_); }
  /// boundary_mass + repeating_mass; equals 1 up to numerical error.
  double total_mass() const { return boundary_mass() + repeating_mass(); }

  /// Expected repeating-level index: sum_k k * ||pi_k||_1.
  double mean_repeating_index() const { return linalg::sum(rep_index_sum_); }

 private:
  Matrix r_;
  RSolverStats stats_;
  double sp_r_ = 0.0;
  double preflight_drift_ = -1.0;
  Vector pi_boundary_;
  Vector pi_first_;
  Vector rep_sum_;
  Vector rep_index_sum_;
};

/// Builds the numerical-health record of a completed solve: convergence
/// counters and residual-trajectory summary from the solver stats, fallback
/// outcome, preflight drift and sp(R). The caller stamps identity fields
/// (key, attempt) before handing it to RunReport::add_health.
obs::SolveHealth solve_health(const QbdSolution& solution);

/// Appends the solver's per-iteration convergence trace to a sink as events
/// named "qbd.rsolve.convergence" with fields
/// {iteration, increment_norm, residual, wall_ms}.
void export_convergence_trace(const RSolverStats& stats, obs::TraceSink& sink);

}  // namespace perfbg::qbd
