// Structured solve of the QBD boundary balance equations.
//
// The flattened boundary system of QbdSolution is x M = 0, x . w = 1 with
//
//        | B00  B01 |
//   M  = | B10  A1 + R A2 |
//
// For the paper's chain the boundary states are ordered by level (0..X), and
// every transition moves at most one level, so M is block tridiagonal with
// X + 2 diagonal blocks (levels 0..X plus the censored repeating block).
// Solving it densely costs O((nb + nr)^3) and is the single largest term of
// the bg_buffer = 20 solve; the level-censoring recursion below costs
// O(sum_l n_l^3) — two orders of magnitude less, since each level block has
// only O(X * phases) states.
//
// Recursion (forward elimination of column blocks):
//   Dt_0 = D_0,   C_l = L_l Dt_{l-1}^{-1},   Dt_l = D_l - C_l U_{l-1}
// which turns x M = 0 into x_{X+1} Dt_{X+1} = 0 (a left null vector of one
// nr x nr block) and the back-substitution x_l = -x_{l+1} C_{l+1}.
//
// The caller provides the level partition (QbdProcess::boundary_level_offsets,
// filled by the chain builder). The solver verifies the block-tridiagonal
// structure with an exact-zero scan and cross-checks the result with a
// block-wise residual; on any violation — structure, a singular leading
// block, or residual out of tolerance — it reports failure and the caller
// falls back to the dense path, so enabling this is never a correctness risk.
#pragma once

#include <optional>

#include "qbd/qbd.hpp"

namespace perfbg::qbd {

/// Attempts the structured boundary solve. `corner` is A1 + R A2 and `w` the
/// normalization weights [1_b ; (I-R)^{-1} 1_r]; both are what the dense path
/// already computes. Returns the normalized stationary vector over
/// [boundary ; first repeating level], or nullopt when the process has no
/// level partition, the partition is not block tridiagonal, or the result
/// fails the residual cross-check.
std::optional<Vector> solve_boundary_structured(const QbdProcess& process,
                                                const Matrix& corner,
                                                const Vector& w);

}  // namespace perfbg::qbd
