#include "qbd/solution.hpp"

#include <algorithm>
#include <optional>
#include <utility>

#include "linalg/lu.hpp"
#include "linalg/sparse.hpp"
#include "linalg/spectral.hpp"
#include "obs/span.hpp"
#include "qbd/boundary.hpp"
#include "qbd/preflight.hpp"
#include "util/check.hpp"

namespace perfbg::qbd {

QbdSolution::QbdSolution(const QbdProcess& process, const RSolverOptions& opts,
                         obs::MetricsRegistry* metrics) {
  obs::ScopedSpan solve_span("qbd.solve");
  solve_span.attr("level_size", obs::JsonValue(static_cast<std::int64_t>(process.level_size())))
      .attr("boundary_size", obs::JsonValue(static_cast<std::int64_t>(process.boundary_size())));
  {
    // Diagnose malformed or unstable input in microseconds (typed
    // kInvalidModel / kUnstableQbd) before any iteration is spent.
    obs::ScopedTimer t(metrics, "qbd.preflight");
    obs::ScopedSpan span("qbd.preflight");
    const PreflightReport pf = preflight(process);
    span.attr("drift_ratio", obs::JsonValue(pf.drift_ratio));
    preflight_drift_ = pf.drift_ratio;
    if (metrics) metrics->set("qbd.preflight.drift_ratio", pf.drift_ratio);
  }

  {
    obs::ScopedTimer t(metrics, "qbd.solve.r");
    r_ = solve_r(process.a0, process.a1, process.a2, opts, &stats_);
  }
  // The solver stops on the iteration increment; the actual equation residual
  // should land within a small factor of the tolerance for a converged solve.
  // Bound against the winning rung's effective tolerance: fallback rungs
  // legitimately run with the floored fallback tolerance, not the caller's.
  PERFBG_DCHECK(stats_.final_residual <=
                    10.0 * std::max(opts.tolerance, stats_.tolerance_used),
                "R-solver residual " + std::to_string(stats_.final_residual) +
                    " exceeds 10x the effective tolerance");
  sp_r_ = linalg::spectral_radius(r_);
  PERFBG_ASSERT(sp_r_ < 1.0, "sp(R) >= 1 for a process that passed the drift test");
  if (metrics) {
    metrics->add("qbd.rsolve.iterations", static_cast<std::uint64_t>(stats_.iterations));
    metrics->add("qbd.solve.count");
    // Always materialized (possibly at 0) so run reports are schema-stable.
    metrics->add("qbd.solve.fallback_used", stats_.outcome.fallback_used() ? 1 : 0);
    metrics->add("qbd.solve.warm_start_used", stats_.warm_start_used ? 1 : 0);
    metrics->add("qbd.solve.warm_start_iterations_saved",
                 static_cast<std::uint64_t>(
                     std::max(0, stats_.warm_start_iterations_saved)));
    metrics->set("qbd.rsolve.final_residual", stats_.final_residual);
    metrics->set("qbd.r.spectral_radius", sp_r_);
  }
  obs::ScopedTimer boundary_timer(metrics, "qbd.solve.boundary");
  obs::ScopedSpan boundary_span("qbd.solve.boundary");

  const std::size_t nb = process.boundary_size();
  const std::size_t nr = process.level_size();
  const Matrix identity = Matrix::identity(nr);
  const linalg::LuDecomposition i_minus_r(identity - r_);
  const Matrix s1 = i_minus_r.inverse();        // (I-R)^{-1}

  // Balance equations for (pi_b, pi_first):
  //   pi_b B00 + pi_first B10 = 0
  //   pi_b B01 + pi_first (A1 + R A2) = 0
  // assembled as x M = 0 with the normalization x . w = 1,
  // w = [1_b ; (I-R)^{-1} 1_r] replacing the last column.
  const std::size_t n = nb + nr;
  boundary_span.attr("matrix_size", obs::JsonValue(static_cast<std::int64_t>(n)));
  // A2 has O(phases) nonzeros per row, so the censored corner block streams
  // its CSR form instead of a dense product.
  Matrix corner = process.a1;
  linalg::SparseMatrix::from_dense(process.a2).add_left_multiply(r_, corner);

  Vector w(n, 1.0);
  {
    const Vector ones(nr, 1.0);
    const Vector tail = linalg::mat_vec(s1, ones);  // (I-R)^{-1} 1
    for (std::size_t j = 0; j < nr; ++j) w[nb + j] = tail[j];
  }

  // Structured path first: when the boundary is level-partitioned (the chain
  // builder records the partition) the system is block tridiagonal and the
  // level-censoring recursion solves it in a fraction of the dense cost. Any
  // structural or numerical doubt makes it decline, and the dense solve below
  // remains the authority.
  Vector x;
  std::optional<Vector> structured = solve_boundary_structured(process, corner, w);
  boundary_span.attr("structured", obs::JsonValue(structured.has_value()));
  if (structured) {
    x = std::move(*structured);
  } else {
    Matrix m(n, n, 0.0);
    for (std::size_t i = 0; i < nb; ++i) {
      double* row = m.row_data(i);
      const double* b00_row = process.b00.row_data(i);
      const double* b01_row = process.b01.row_data(i);
      for (std::size_t j = 0; j < nb; ++j) row[j] = b00_row[j];
      for (std::size_t j = 0; j < nr; ++j) row[nb + j] = b01_row[j];
    }
    for (std::size_t i = 0; i < nr; ++i) {
      double* row = m.row_data(nb + i);
      const double* b10_row = process.b10.row_data(i);
      const double* corner_row = corner.row_data(i);
      for (std::size_t j = 0; j < nb; ++j) row[j] = b10_row[j];
      for (std::size_t j = 0; j < nr; ++j) row[nb + j] = corner_row[j];
    }
    for (std::size_t i = 0; i < n; ++i) m.row_data(i)[n - 1] = w[i];
    Vector rhs(n, 0.0);
    rhs[n - 1] = 1.0;
    x = linalg::LuDecomposition(std::move(m)).solve_left(rhs);
  }

  pi_boundary_.assign(x.begin(), x.begin() + static_cast<std::ptrdiff_t>(nb));
  pi_first_.assign(x.begin() + static_cast<std::ptrdiff_t>(nb), x.end());
  for (double v : pi_boundary_)
    PERFBG_ASSERT(v > -1e-9, "negative boundary probability");
  for (double v : pi_first_)
    PERFBG_ASSERT(v > -1e-9, "negative repeating-level probability");
  boundary_timer.stop();
  boundary_span.end();

  obs::ScopedTimer tail_timer(metrics, "qbd.solve.tail");
  obs::ScopedSpan tail_span("qbd.solve.tail");
  rep_sum_ = linalg::vec_mat(pi_first_, s1);
  // sum_k k R^k = R (I-R)^{-2}.
  const Matrix s2 = r_ * (s1 * s1);
  rep_index_sum_ = linalg::vec_mat(pi_first_, s2);
}

obs::SolveHealth solve_health(const QbdSolution& solution) {
  const RSolverStats& stats = solution.solver_stats();
  obs::SolveHealth h;
  h.status = stats.outcome.fallback_used() ? obs::SolveStatus::kFallback
                                           : obs::SolveStatus::kConverged;
  h.iterations = stats.iterations;
  h.max_iters = stats.max_iters_used;
  h.final_residual = stats.final_residual;
  h.tolerance_used = stats.tolerance_used;
  h.first_increment = stats.first_increment;
  h.last_increment = stats.last_increment;
  h.decay_rate = obs::geometric_decay_rate(stats.first_increment,
                                           stats.last_increment, stats.iterations);
  h.rung = static_cast<int>(stats.outcome.rung);
  h.rung_name = stats.outcome.rung_name;
  h.rungs_attempted = stats.outcome.rungs_attempted;
  h.warm_start_used = stats.warm_start_used;
  h.warm_start_iterations_saved = stats.warm_start_iterations_saved;
  h.drift_ratio = solution.preflight_drift();
  h.spectral_radius = solution.r_spectral_radius();
  return h;
}

void export_convergence_trace(const RSolverStats& stats, obs::TraceSink& sink) {
  for (const RSolverIteration& it : stats.trace) {
    obs::TraceEvent e("qbd.rsolve.convergence");
    e.with("iteration", obs::JsonValue(it.iteration))
        .with("increment_norm", obs::JsonValue(it.increment_norm))
        .with("residual", obs::JsonValue(it.residual))
        .with("wall_ms", obs::JsonValue(it.wall_ms));
    sink.record(e);
  }
}

Vector QbdSolution::repeating_level(int k) const {
  PERFBG_REQUIRE(k >= 0, "repeating level index must be >= 0");
  Vector v = pi_first_;
  for (int i = 0; i < k; ++i) v = linalg::vec_mat(v, r_);
  return v;
}

}  // namespace perfbg::qbd
