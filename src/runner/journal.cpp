#include "runner/journal.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/failpoint.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#define PERFBG_HAVE_FSYNC 1
#endif

namespace perfbg::runner {

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string hash_hex(std::uint64_t h) {
  static const char* digits = "0123456789abcdef";
  std::string out = "0x0000000000000000";
  for (int i = 17; i >= 2; --i, h >>= 4) out[i] = digits[h & 0xf];
  return out;
}

obs::JsonValue JournalRecord::to_json() const {
  obs::JsonValue v = obs::JsonValue::object();
  v.set("hash", obs::JsonValue(hash_hex(fnv1a64(key))));
  v.set("key", obs::JsonValue(key));
  v.set("attempts", obs::JsonValue(attempts));
  v.set("wall_ms", obs::JsonValue(wall_ms));
  if (!trace.empty()) v.set("trace_id", obs::JsonValue(trace));
  if (ok()) {
    v.set("payload", payload);
  } else {
    obs::JsonValue err = obs::JsonValue::object();
    err.set("code", obs::JsonValue(error_code));
    err.set("message", obs::JsonValue(error_message));
    v.set("error", std::move(err));
  }
  return v;
}

JournalRecord JournalRecord::from_json(const obs::JsonValue& v) {
  JournalRecord r;
  r.key = v.at("key").as_string();
  r.attempts = static_cast<int>(v.at("attempts").as_int());
  if (const obs::JsonValue* wall = v.find("wall_ms")) r.wall_ms = wall->as_double();
  if (const obs::JsonValue* trace = v.find("trace_id"); trace && trace->is_string())
    r.trace = trace->as_string();
  if (const obs::JsonValue* err = v.find("error")) {
    r.error_code = err->at("code").as_string();
    r.error_message = err->at("message").as_string();
  } else {
    r.payload = v.at("payload");
  }
  return r;
}

JournalIndex JournalIndex::load(const std::string& path,
                                const std::string& expected_sweep_id) {
  std::ifstream in(path);
  if (!in)
    throw std::invalid_argument("cannot read sweep journal '" + path + "'");
  JournalIndex index;
  index.path_ = path;
  bool have_header = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    obs::JsonValue v;
    try {
      v = obs::parse_json(line);
    } catch (const std::invalid_argument&) {
      // A torn line — most likely the append a crash interrupted. Skip it;
      // the point it described simply re-runs on resume.
      continue;
    }
    if (!v.is_object()) continue;
    if (const obs::JsonValue* schema = v.find("schema")) {
      if (schema->as_string() != kSweepJournalSchema)
        throw std::invalid_argument("journal '" + path + "' has schema '" +
                                    schema->as_string() + "', expected '" +
                                    kSweepJournalSchema + "'");
      index.sweep_id_ = v.at("sweep_id").as_string();
      have_header = true;
      continue;
    }
    if (!have_header)
      throw std::invalid_argument("journal '" + path +
                                  "' has records before its schema header");
    try {
      JournalRecord record = JournalRecord::from_json(v);
      std::string hash = hash_hex(fnv1a64(record.key));
      index.by_hash_[std::move(hash)] = std::move(record);
    } catch (const std::exception&) {
      continue;  // structurally unusable record: treat as not completed
    }
  }
  if (!have_header)
    throw std::invalid_argument("journal '" + path + "' has no " +
                                kSweepJournalSchema + " header line");
  if (!expected_sweep_id.empty() && index.sweep_id_ != expected_sweep_id)
    throw std::invalid_argument("journal '" + path + "' belongs to sweep '" +
                                index.sweep_id_ + "', not '" + expected_sweep_id +
                                "'; refusing to resume from it");
  return index;
}

JournalIndex JournalIndex::load_with_rotation(const std::string& path,
                                              const std::string& expected_sweep_id) {
  const std::string rotated = path + ".1";
  std::error_code ec;
  const bool have_rotated = std::filesystem::exists(rotated, ec) && !ec;
  const bool have_current = std::filesystem::exists(path, ec) && !ec;
  if (!have_rotated) return load(path, expected_sweep_id);

  JournalIndex index = load(rotated, expected_sweep_id);
  index.path_ = path;
  if (!have_current) return index;  // crashed between rename and fresh header
  JournalIndex current = load(path, expected_sweep_id);
  for (auto& [hash, record] : current.by_hash_)
    index.by_hash_[hash] = std::move(record);
  index.sweep_id_ = std::move(current.sweep_id_);
  return index;
}

const JournalRecord* JournalIndex::find(const std::string& key) const {
  const auto it = by_hash_.find(hash_hex(fnv1a64(key)));
  if (it == by_hash_.end() || it->second.key != key) return nullptr;
  return &it->second;
}

namespace {

/// Push the record's bytes to the disk, not just the page cache: a journal
/// whose promise is "survives SIGKILL" must not lose fsync'd records to a
/// power cut either. No-op fallback where fsync is unavailable.
void sync_file(std::FILE* f) {
#if defined(PERFBG_HAVE_FSYNC)
  ::fsync(::fileno(f));
#else
  (void)f;
#endif
}

/// fsync the directory holding `path`: a freshly created or renamed file is
/// only durable once its directory entry is, and the file's own fsync does
/// not cover that. Best-effort no-op where unsupported.
void sync_parent_dir(const std::string& path) {
#if defined(PERFBG_HAVE_FSYNC)
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
#else
  (void)path;
#endif
}

/// Cut a torn final line (no trailing '\n': the append a crash interrupted)
/// before reopening for append. Readers skip torn lines, but a *writer* that
/// appends after one would concatenate the fragment with the next record and
/// corrupt both, so the fragment must go before the first new byte lands.
void truncate_torn_tail(const std::string& path) {
  std::error_code ec;
  const auto size = std::filesystem::file_size(path, ec);
  if (ec || size == 0) return;
  std::ifstream in(path, std::ios::binary);
  if (!in) return;
  std::uint64_t retained = 0;  // bytes up to and including the last '\n'
  std::uint64_t pos = 0;
  char buf[1 << 16];
  while (in) {
    in.read(buf, sizeof buf);
    const std::streamsize n = in.gcount();
    for (std::streamsize i = 0; i < n; ++i)
      if (buf[i] == '\n') retained = pos + static_cast<std::uint64_t>(i) + 1;
    pos += static_cast<std::uint64_t>(n);
  }
  in.close();
  if (retained < size) std::filesystem::resize_file(path, retained, ec);
}

}  // namespace

JournalWriter::JournalWriter(std::string path, std::string sweep_id,
                             std::uint64_t max_bytes)
    : path_(std::move(path)), sweep_id_(std::move(sweep_id)), max_bytes_(max_bytes) {
  truncate_torn_tail(path_);
  std::lock_guard<std::mutex> lock(mu_);
  open_for_append_locked();
}

void JournalWriter::open_for_append_locked() {
  file_ = std::fopen(path_.c_str(), "ab");
  if (!file_) throw std::runtime_error("cannot open sweep journal '" + path_ + "'");
  if (std::ftell(file_) == 0) {
    obs::JsonValue header = obs::JsonValue::object();
    header.set("schema", obs::JsonValue(kSweepJournalSchema));
    header.set("sweep_id", obs::JsonValue(sweep_id_));
    const std::string line = header.dump() + "\n";
    if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
      std::fclose(file_);
      file_ = nullptr;
      throw std::runtime_error("cannot write sweep journal header to '" + path_ + "'");
    }
    std::fflush(file_);
    sync_file(file_);
    // Make the file's existence durable, not just its header bytes.
    sync_parent_dir(path_);
  }
}

void JournalWriter::maybe_rotate_locked(std::size_t incoming_bytes) {
  if (max_bytes_ == 0 || !file_) return;
  const long current = std::ftell(file_);
  if (current <= 0) return;
  if (static_cast<std::uint64_t>(current) + incoming_bytes <= max_bytes_) return;
  std::fflush(file_);
  sync_file(file_);
  std::fclose(file_);
  file_ = nullptr;
  const std::string rotated = path_ + ".1";
  if (std::rename(path_.c_str(), rotated.c_str()) != 0) {
    // Rotation is best-effort: keep appending to the oversized file rather
    // than lose records (availability over the size cap).
    open_for_append_locked();
    return;
  }
  sync_parent_dir(path_);
  ++rotations_;
  open_for_append_locked();
}

JournalWriter::~JournalWriter() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_) {
    std::fflush(file_);
    sync_file(file_);
    std::fclose(file_);
  }
}

std::uint64_t JournalWriter::rotations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rotations_;
}

void JournalWriter::append(const JournalRecord& record) {
  const std::string line = record.to_json().dump() + "\n";
  std::lock_guard<std::mutex> lock(mu_);
  if (!file_) return;
  if (failpoint("runner.journal.append") != 0)
    throw std::runtime_error("sweep journal write failed for '" + path_ +
                             "' (injected fault)");
  maybe_rotate_locked(line.size());
  if (!file_) return;
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size())
    throw std::runtime_error("sweep journal write failed for '" + path_ + "'");
  std::fflush(file_);
  sync_file(file_);
}

}  // namespace perfbg::runner
