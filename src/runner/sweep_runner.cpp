#include "runner/sweep_runner.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <mutex>
#include <optional>
#include <thread>

#include "obs/span.hpp"
#include "util/check.hpp"
#include "util/error.hpp"

namespace perfbg::runner {

namespace {

// One counter for both SIGINT and SIGTERM: level 1 = drain (no new points),
// level >= 2 = also cancel in-flight tokens. fetch_add on a lock-free atomic
// is async-signal-safe.
std::atomic<int> g_interrupts{0};

void on_signal(int) { g_interrupts.fetch_add(1, std::memory_order_relaxed); }

/// Codes worth a retry: numerical trouble that a different ladder rung (or a
/// less loaded machine) may clear. Model defects and cancellations are final.
bool is_retryable(ErrorCode code) {
  return code == ErrorCode::kNonConvergence || code == ErrorCode::kNumericalBreakdown ||
         code == ErrorCode::kSingularMatrix;
}

/// Exponential backoff with *jitterless decorrelation*: the per-point
/// inputs-hash stretches the delay by a factor in [1, 1.5), so concurrent
/// retries of different points de-synchronize without any RNG — reruns stay
/// bit-reproducible.
double backoff_delay_ms(double base_ms, int attempt, std::uint64_t hash) {
  if (base_ms <= 0.0) return 0.0;
  const double exp = static_cast<double>(1u << std::min(attempt - 1, 20));
  const double decorrelation = 1.0 + static_cast<double>(hash % 64) / 128.0;
  return std::min(base_ms * exp * decorrelation, 10'000.0);
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Sleeps ~delay_ms in short slices, bailing out early on an interrupt so a
/// backlog of backoffs cannot delay a drain.
void interruptible_sleep(double delay_ms) {
  const auto t0 = std::chrono::steady_clock::now();
  while (ms_since(t0) < delay_ms && g_interrupts.load(std::memory_order_relaxed) == 0)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
}

}  // namespace

void install_signal_handlers() {
  static std::once_flag once;
  std::call_once(once, [] {
    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
  });
}

int interrupt_level() { return g_interrupts.load(std::memory_order_relaxed); }
bool interrupt_requested() { return interrupt_level() > 0; }
void request_interrupt() { g_interrupts.fetch_add(1, std::memory_order_relaxed); }
void clear_interrupt() { g_interrupts.store(0, std::memory_order_relaxed); }

int SweepResult::exit_code() const {
  if (interrupted) return error_exit_code(ErrorCode::kInterrupted);
  return failed > 0 ? 1 : 0;
}

SweepRunner::SweepRunner(RunnerOptions options) : options_(std::move(options)) {}

SweepRunner::~SweepRunner() = default;

void SweepRunner::add(std::string key, PointFn fn) {
  PERFBG_REQUIRE(!ran_, "SweepRunner::add after run()");
  PERFBG_REQUIRE(fn != nullptr, "SweepRunner::add needs a point function");
  tasks_.push_back({std::move(key), std::move(fn)});
}

PointOutcome SweepRunner::execute_point(std::size_t index, CancellationToken& token) {
  const Task& task = tasks_[index];
  obs::MetricsRegistry* metrics = options_.metrics;
  PointOutcome out;
  out.index = index;
  out.key = task.key;

  if (options_.resume) {
    if (const JournalRecord* record = options_.resume->find(task.key)) {
      out.payload = record->payload;
      out.error_code = record->error_code;
      out.error_message = record->error_message;
      out.attempts = record->attempts;
      out.wall_ms = record->wall_ms;
      out.resumed = true;
      if (metrics) metrics->add("runner.points.resumed");
      // Re-journal into a *different* target so a fresh --journal file is a
      // complete (compacted) record of the merged run; appending the replay
      // back into its own source would only duplicate lines.
      if (options_.journal && options_.journal->path() != options_.resume->path())
        options_.journal->append(*record);
      return out;
    }
  }

  const std::uint64_t hash = fnv1a64(task.key);
  std::string code, message;
  bool retryable = false;
  int attempt = 1;
  for (;; ++attempt) {
    token.reset();
    if (options_.point_timeout_ms > 0.0)
      token.set_deadline_after_ms(options_.point_timeout_ms);
    // A second signal may have arrived before this point started.
    if (interrupt_level() >= 2) token.cancel(CancelReason::kInterrupt);
    PointContext ctx(&token, index, attempt);
    code.clear();
    message.clear();
    retryable = false;
    const auto t0 = std::chrono::steady_clock::now();
    try {
      obs::ScopedSpan span("runner.point");
      span.attr("key", obs::JsonValue(task.key))
          .attr("index", obs::JsonValue(static_cast<std::int64_t>(index)))
          .attr("attempt", obs::JsonValue(attempt));
      out.payload = task.fn(ctx);
    } catch (const Error& e) {
      code = error_code_name(e.code());
      message = e.what();
      retryable = is_retryable(e.code());
      if (e.code() == ErrorCode::kDeadlineExceeded && metrics)
        metrics->add("runner.deadline.exceeded");
    } catch (const std::exception& e) {
      code = "kUnclassified";
      message = e.what();
    }
    out.wall_ms = ms_since(t0);
    if (code.empty()) break;
    if (!(retryable && attempt < options_.max_attempts && interrupt_level() == 0)) break;
    if (metrics) metrics->add("runner.retry.attempts");
    const double delay = backoff_delay_ms(options_.backoff_base_ms, attempt, hash);
    if (delay > 0.0) {
      obs::ScopedSpan span("runner.retry");
      span.attr("key", obs::JsonValue(task.key))
          .attr("next_attempt", obs::JsonValue(attempt + 1))
          .attr("backoff_ms", obs::JsonValue(delay));
      interruptible_sleep(delay);
    }
  }
  out.attempts = attempt;
  out.error_code = code;
  out.error_message = message;
  if (!out.ok()) out.payload = obs::JsonValue();  // no stale payload next to an error

  if (metrics) {
    metrics->add(out.ok() ? "runner.points.ok" : "runner.points.failed");
    if (out.ok() && attempt > 1) metrics->add("runner.retry.recovered");
    metrics->record_time("runner.point.wall", out.wall_ms);
    // Log-bucketed twin of the timer: the timer gives count/total/min/max,
    // the histogram adds the p50/p99 tail view (and the Prometheus
    // exposition's bucket series) for per-point wall times.
    metrics->define_histogram("runner.point.wall_ms",
                              obs::log_buckets(1e-2, 1e5, 5));
    metrics->observe("runner.point.wall_ms", out.wall_ms);
  }

  // Checkpoint every point that reached a final state. An interrupt-aborted
  // point did not: it must re-run on resume, so it stays out of the journal.
  if (options_.journal && code != error_code_name(ErrorCode::kInterrupted)) {
    obs::ScopedSpan span("runner.checkpoint");
    span.attr("key", obs::JsonValue(task.key));
    JournalRecord record;
    record.key = task.key;
    record.payload = out.payload;
    record.error_code = out.error_code;
    record.error_message = out.error_message;
    record.attempts = out.attempts;
    record.wall_ms = out.wall_ms;
    options_.journal->append(record);
    if (metrics) metrics->add("runner.checkpoint.records");
  }
  return out;
}

SweepResult SweepRunner::run(const std::function<void(const PointOutcome&)>& emit) {
  PERFBG_REQUIRE(!ran_, "SweepRunner::run may only be called once");
  ran_ = true;
  install_signal_handlers();

  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t n = tasks_.size();
  const int jobs = std::max(1, options_.jobs);

  SweepResult result;
  result.outcomes.resize(n);

  // One token per worker, reset per attempt. Kept in stable storage so the
  // escalation path (second signal) can cancel all of them.
  std::vector<std::unique_ptr<CancellationToken>> tokens;
  tokens.reserve(static_cast<std::size_t>(jobs));
  for (int s = 0; s < jobs; ++s) tokens.push_back(std::make_unique<CancellationToken>());

  std::atomic<std::size_t> next{0};
  std::atomic<int> live_workers{jobs};
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::optional<PointOutcome>> done(n);

  auto worker = [&](int slot) {
    CancellationToken& token = *tokens[static_cast<std::size_t>(slot)];
    // First interrupt level stops dispatch; the point already taken drains.
    while (interrupt_level() == 0) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      PointOutcome out = execute_point(i, token);
      {
        std::lock_guard<std::mutex> lock(mu);
        done[i] = std::move(out);
      }
      cv.notify_all();
    }
    live_workers.fetch_sub(1, std::memory_order_relaxed);
    cv.notify_all();
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(jobs));
  for (int s = 0; s < jobs; ++s) pool.emplace_back(worker, s);

  // Ordered emission from this thread: results stream out in submission
  // order the moment the next-in-order point lands. The 50 ms poll also
  // bounds how late an interrupt escalation is noticed.
  std::size_t emit_next = 0;
  bool escalated = false;
  {
    std::unique_lock<std::mutex> lock(mu);
    while (true) {
      if (!escalated && interrupt_level() >= 2) {
        escalated = true;
        for (auto& token : tokens) token->cancel(CancelReason::kInterrupt);
      }
      while (emit_next < n && done[emit_next].has_value()) {
        if (emit) {
          // done[emit_next] is write-once; safe to read outside the lock.
          const PointOutcome& outcome = *done[emit_next];
          lock.unlock();
          emit(outcome);
          lock.lock();
        }
        ++emit_next;
      }
      if (emit_next == n) break;
      if (live_workers.load(std::memory_order_relaxed) == 0) break;
      cv.wait_for(lock, std::chrono::milliseconds(50));
    }
  }
  for (std::thread& t : pool) t.join();

  std::size_t interrupted_points = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (done[i].has_value()) {
      result.outcomes[i] = std::move(*done[i]);
      ++result.completed;
      if (!result.outcomes[i].ok()) ++result.failed;
      if (result.outcomes[i].resumed) ++result.resumed;
      else result.compute_ms += result.outcomes[i].wall_ms;
      if (result.outcomes[i].error_code == error_code_name(ErrorCode::kInterrupted))
        ++interrupted_points;
    } else {
      PointOutcome& out = result.outcomes[i];
      out.index = i;
      out.key = tasks_[i].key;
      out.attempts = 0;
      out.error_code = error_code_name(ErrorCode::kInterrupted);
      out.error_message = "point not started: sweep interrupted before dispatch";
    }
  }
  result.elapsed_ms = ms_since(t0);
  result.interrupted =
      interrupt_requested() && (result.completed < n || interrupted_points > 0);

  if (obs::MetricsRegistry* metrics = options_.metrics) {
    metrics->set("runner.jobs", static_cast<double>(jobs));
    // Cumulative counters so a binary running several sweeps (one per figure
    // panel) reports one overall speedup in its run report.
    metrics->add("runner.compute_us",
                 static_cast<std::uint64_t>(result.compute_ms * 1000.0));
    metrics->add("runner.elapsed_us",
                 static_cast<std::uint64_t>(result.elapsed_ms * 1000.0));
    const double elapsed_us = static_cast<double>(metrics->counter("runner.elapsed_us"));
    if (elapsed_us > 0.0)
      metrics->set("runner.speedup",
                   static_cast<double>(metrics->counter("runner.compute_us")) / elapsed_us);
  }
  return result;
}

void define_runner_flags(Flags& flags) {
  flags.define("jobs", "sweep worker threads, default 1 (sequential)");
  flags.define("point-timeout-ms",
               "abandon a sweep point after this wall-clock budget in ms (0 = none)");
  flags.define("retries",
               "extra attempts for transiently failing sweep points, default 0");
  flags.define("retry-backoff-ms",
               "base of the deterministic exponential retry backoff, default 0");
  flags.define("journal",
               "append a resumable checkpoint journal (JSON lines) to this path");
  flags.define("resume",
               "replay completed points from this journal instead of re-solving them");
  flags.define_switch(
      "warm-start",
      "seed each point's R iteration from the previous point of the same model "
      "class (sequential sweeps only; ignored with --jobs > 1)");
}

RunnerOptions runner_options_from_flags(const Flags& flags) {
  RunnerOptions options;
  options.jobs = flags.get_int("jobs", 1);
  options.point_timeout_ms = flags.get_double("point-timeout-ms", 0.0);
  options.max_attempts = 1 + std::max(0, flags.get_int("retries", 0));
  options.backoff_base_ms = flags.get_double("retry-backoff-ms", 0.0);
  options.warm_start = flags.has("warm-start");
  return options;
}

JournalSession open_journal_session(const Flags& flags, const std::string& sweep_id) {
  JournalSession session;
  const std::string resume_path = flags.get_string("resume", "");
  std::string journal_path = flags.get_string("journal", "");
  if (!resume_path.empty()) {
    session.resume =
        std::make_unique<JournalIndex>(JournalIndex::load(resume_path, sweep_id));
    // --resume without --journal continues checkpointing into the same file.
    if (journal_path.empty()) journal_path = resume_path;
  }
  if (!journal_path.empty())
    session.writer = std::make_unique<JournalWriter>(journal_path, sweep_id);
  return session;
}

}  // namespace perfbg::runner
