// Checkpoint journal for resumable sweeps (schema perfbg.sweep_journal.v1).
//
// A journal is a JSON-lines file: a header line naming the schema and the
// sweep it belongs to, then one record per *completed* point (success or
// classified failure), appended and fsync'd as the point finishes, so the
// file survives a SIGKILL with at most the in-flight points lost. Records
// carry the point's inputs-hash (FNV-1a 64 over the caller's stable key), the
// result payload, the error, the attempt count, and the compute wall time, so
// `--resume=<journal>` can replay a completed point byte-identically without
// re-solving it.
//
//   {"schema": "perfbg.sweep_journal.v1", "sweep_id": "bench_suite"}
//   {"hash": "0x8c2d...", "key": "email|p=0.1|X=5", "attempts": 1,
//    "wall_ms": 1.84, "payload": {...}}
//   {"hash": "0x1f00...", "key": "email|p=0.9|X=20", "attempts": 2,
//    "wall_ms": 0.0, "error": {"code": "kNonConvergence", "message": "..."}}
//
// Reading is forgiving where crash recovery needs it to be: a torn trailing
// line (the write the crash interrupted) or any malformed line is skipped;
// a record whose hash repeats wins with its last occurrence (a resumed run
// re-journals into the same file). Reading is strict where misuse hides bugs:
// a missing/mismatched schema header or a sweep_id that does not match the
// resuming tool throws std::invalid_argument (exit 2, usage error).
//
// Crash-consistency beyond the record fsync:
//   - the parent directory is fsync'd after the file is created or rotated,
//     so the *name* survives a power cut, not just the bytes;
//   - JournalWriter truncates a torn final line before appending (appending
//     after a torn tail would concatenate the fragment with the next record,
//     corrupting both — skipping on read is not enough once we write again);
//   - an optional size cap rotates the file by atomic rename to `<path>.1`
//     (single generation, the previous `.1` is replaced) and starts a fresh
//     journal with its own header; JournalIndex::load_with_rotation() merges
//     `<path>.1` then `<path>`, newest record per hash winning.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>

#include "obs/json.hpp"

namespace perfbg::runner {

inline constexpr const char* kSweepJournalSchema = "perfbg.sweep_journal.v1";

/// FNV-1a 64-bit over the key's bytes: the journal's inputs-hash.
std::uint64_t fnv1a64(const std::string& s);
/// "0x" + 16 lowercase hex digits (JSON int64 cannot carry a full uint64).
std::string hash_hex(std::uint64_t h);

/// One completed sweep point, as journaled.
struct JournalRecord {
  std::string key;            ///< the caller's stable point key
  obs::JsonValue payload;     ///< result payload; null when the point failed
  std::string error_code;     ///< ErrorCode name ("" on success)
  std::string error_message;  ///< full what() of the failure ("" on success)
  int attempts = 1;           ///< attempts spent (including the final one)
  double wall_ms = 0.0;       ///< compute wall time of the final attempt
  std::string trace;          ///< optional request trace id (hex); "" = none.
                              ///< perfbgd journals it so a served request's
                              ///< journal line joins to its tracez record.

  bool ok() const { return error_code.empty(); }
  obs::JsonValue to_json() const;
  /// Throws std::invalid_argument on a structurally unusable record.
  static JournalRecord from_json(const obs::JsonValue& v);
};

/// The completed points of a previous run, indexed by inputs-hash for
/// `--resume`. Load once, then find() per point.
class JournalIndex {
 public:
  /// Parses a journal file. Throws std::invalid_argument when the file cannot
  /// be read, has no valid schema header, or (when `expected_sweep_id` is
  /// non-empty) belongs to a different sweep.
  static JournalIndex load(const std::string& path,
                           const std::string& expected_sweep_id = "");

  /// Like load(), but rotation-aware: merges `<path>.1` (when present) then
  /// `<path>`, the newer file winning per hash. Tolerates `<path>` missing
  /// when `<path>.1` exists — the crash window between a rotation's rename
  /// and the fresh file's header write leaves exactly that state on disk.
  static JournalIndex load_with_rotation(const std::string& path,
                                         const std::string& expected_sweep_id = "");

  const std::string& sweep_id() const { return sweep_id_; }
  /// The file this index was loaded from (so a writer can tell whether it is
  /// appending to the same journal or compacting into a fresh one).
  const std::string& path() const { return path_; }
  std::size_t size() const { return by_hash_.size(); }

  /// The journaled record for this key, or nullptr when the point has not
  /// completed. A hash hit with a different stored key (collision or a stale
  /// journal) counts as a miss.
  const JournalRecord* find(const std::string& key) const;

  /// All completed records keyed by hash-hex, for whole-journal consumers
  /// (perfbgd's cache warm-start re-hashes each record's key itself).
  const std::map<std::string, JournalRecord>& records() const { return by_hash_; }

 private:
  std::string sweep_id_;
  std::string path_;
  std::map<std::string, JournalRecord> by_hash_;
};

/// Thread-safe incremental journal appender. Each append() writes one line,
/// flushes, and fsyncs, so a completed point survives any later crash.
class JournalWriter {
 public:
  /// Opens `path` for appending, truncating a torn final line first and
  /// writing the schema header when the file is new or empty. `max_bytes`
  /// (0 = unlimited) caps the file: an append that would cross the cap first
  /// rotates the file to `<path>.1` by atomic rename (replacing any previous
  /// `.1`) and starts a fresh journal. Throws std::runtime_error on I/O
  /// failure.
  JournalWriter(std::string path, std::string sweep_id, std::uint64_t max_bytes = 0);
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  const std::string& path() const { return path_; }
  /// How many times append() has rotated the file since construction.
  std::uint64_t rotations() const;

  /// Throws std::runtime_error when the line cannot be written (real I/O
  /// failure or the `runner.journal.append` failpoint); the record is then
  /// NOT durable and the caller must not acknowledge it as journaled.
  void append(const JournalRecord& record);

 private:
  void open_for_append_locked();
  void maybe_rotate_locked(std::size_t incoming_bytes);

  std::string path_;
  std::string sweep_id_;
  std::uint64_t max_bytes_ = 0;
  std::uint64_t rotations_ = 0;
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
};

}  // namespace perfbg::runner
