// Resilient parallel sweep execution (DESIGN.md §11).
//
// A SweepRunner fans N independent sweep points across a fixed pool of
// `jobs` worker threads while keeping every observable output deterministic:
// results are buffered and handed to the caller in submission order, so a
// table rendered from a `--jobs=8` run is byte-identical to the sequential
// one. On top of the pool it layers the failure-handling the bench sweeps
// need to survive production-sized grids:
//
//   - per-point deadline (--point-timeout-ms): each attempt runs under a
//     CancellationToken armed with a wall-clock budget; cooperative checks
//     inside the qbd iteration loops turn a wedged point into a recorded
//     kDeadlineExceeded failure instead of a hung run;
//   - retry with backoff (--retries / --retry-backoff-ms): points failing
//     with a transient/numerical code (kNonConvergence, kNumericalBreakdown,
//     kSingularMatrix) re-run, with PointContext::attempt() telling the task
//     to resume the solver fallback ladder at the next rung; backoff delays
//     are exponential and decorrelated by the point's inputs-hash — no RNG,
//     so runs stay reproducible;
//   - checkpoint journal (--journal) and resume (--resume): every completed
//     point is appended to a perfbg.sweep_journal.v1 file and fsync'd
//     (journal.hpp); a resumed run replays journaled points without
//     re-solving them and re-runs only the rest;
//   - graceful shutdown: SIGINT/SIGTERM stop the dispatch of new points and
//     drain the in-flight ones (a second signal also cancels their tokens);
//     the journal and all observability sinks are flushed and the sweep
//     reports "interrupted but resumable" (exit code 9, kInterrupted).
//
// Observability: when RunnerOptions::metrics is set the runner maintains
// runner.points.* / runner.retry.* / runner.deadline.exceeded /
// runner.checkpoint.records counters and the runner.speedup gauge
// (cumulative compute-time over elapsed-time — the --jobs=N vs --jobs=1
// wall-clock ratio); every attempt runs inside a `runner.point` span, so
// Chrome traces of a parallel sweep show one lane per worker.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "runner/journal.hpp"
#include "util/cancellation.hpp"
#include "util/flags.hpp"

namespace perfbg::runner {

struct RunnerOptions {
  int jobs = 1;                  ///< worker threads (values < 1 behave as 1)
  double point_timeout_ms = 0.0; ///< per-attempt wall-clock budget (<= 0: none)
  int max_attempts = 1;          ///< 1 + --retries
  double backoff_base_ms = 0.0;  ///< base of the exponential retry backoff
  /// --warm-start: sweeps may seed a point's R iteration from the previous
  /// point of the same model class (see qbd/warm_start.hpp). Only honoured by
  /// sequential sweeps (jobs == 1): with workers, which point solves first is
  /// scheduling-dependent and warm iteration counts — and thus health records
  /// — would no longer be run-to-run deterministic. The runner just carries
  /// the flag; the point functions implement the seeding.
  bool warm_start = false;
  JournalWriter* journal = nullptr;      ///< checkpoint sink (optional)
  const JournalIndex* resume = nullptr;  ///< completed points to replay (optional)
  obs::MetricsRegistry* metrics = nullptr;  ///< runner.* metrics sink (optional)
};

/// Per-attempt execution context handed to the point function.
class PointContext {
 public:
  PointContext(const CancellationToken* token, std::size_t index, int attempt)
      : token_(token), index_(index), attempt_(attempt) {}

  /// The attempt's cancellation token: pass it into RSolverOptions::cancel
  /// (long-running loops outside the solver should poll token().cancelled()).
  const CancellationToken& token() const { return *token_; }
  std::size_t index() const { return index_; }
  /// 1-based attempt number; retried points see 2, 3, ... and should resume
  /// the solver fallback ladder at rung attempt()-1 (RSolverOptions::
  /// start_rung).
  int attempt() const { return attempt_; }

 private:
  const CancellationToken* token_;
  std::size_t index_;
  int attempt_;
};

/// The work of one sweep point: compute and return the point's JSON payload.
/// Throwing perfbg::Error classifies the point as failed with that code;
/// any other exception is recorded with the pseudo-code "kUnclassified".
using PointFn = std::function<obs::JsonValue(PointContext&)>;

/// Final state of one sweep point, in submission order.
struct PointOutcome {
  std::size_t index = 0;
  std::string key;
  obs::JsonValue payload;     ///< null unless ok()
  std::string error_code;     ///< ErrorCode name ("" on success)
  std::string error_message;  ///< what() of the final failure
  int attempts = 0;           ///< 0 only for points the interrupt left unrun
  double wall_ms = 0.0;       ///< compute wall time of the final attempt
  bool resumed = false;       ///< replayed from the journal, not re-solved

  bool ok() const { return error_code.empty(); }
};

struct SweepResult {
  std::vector<PointOutcome> outcomes;  ///< submission order, one per add()
  bool interrupted = false;  ///< drained after SIGINT/SIGTERM; resumable
  std::size_t completed = 0; ///< points that reached a final state this run
  std::size_t failed = 0;    ///< completed with an error (incl. deadline)
  std::size_t resumed = 0;   ///< replayed from the journal
  double elapsed_ms = 0.0;   ///< wall time of run()
  double compute_ms = 0.0;   ///< sum of per-point compute time (non-resumed)

  /// compute_ms / elapsed_ms: the observed parallel speedup (~= the --jobs=1
  /// wall clock over this run's wall clock).
  double speedup() const { return elapsed_ms > 0.0 ? compute_ms / elapsed_ms : 0.0; }
  /// 0 all points ok; 9 (kInterrupted) when interrupted-but-resumable;
  /// 1 when any point failed.
  int exit_code() const;
};

/// Fixed-pool sweep executor. add() the points, then run() once.
class SweepRunner {
 public:
  explicit SweepRunner(RunnerOptions options);
  ~SweepRunner();
  SweepRunner(const SweepRunner&) = delete;
  SweepRunner& operator=(const SweepRunner&) = delete;

  /// Queues one point. `key` must be stable across runs and unique within
  /// the sweep — it is the journal's resume identity.
  void add(std::string key, PointFn fn);

  std::size_t size() const { return tasks_.size(); }

  /// Executes all points. `emit`, when given, is called from this thread in
  /// submission order as results become available (streaming ordered
  /// output); after an interrupt it stops at the first unfinished point, so
  /// emitted output is always a clean prefix.
  SweepResult run(const std::function<void(const PointOutcome&)>& emit = {});

 private:
  struct Task {
    std::string key;
    PointFn fn;
  };

  PointOutcome execute_point(std::size_t index, CancellationToken& token);

  RunnerOptions options_;
  std::vector<Task> tasks_;
  bool ran_ = false;
};

/// Defines the runner's shared command-line surface on a Flags object:
/// --jobs, --point-timeout-ms, --retries, --retry-backoff-ms, --journal,
/// --resume. Used by BenchRun (all bench binaries), bench_suite, and
/// perfbg_cli so the flags stay identical everywhere.
void define_runner_flags(Flags& flags);

/// Reads the flags defined above into options (journal/resume stay null —
/// open_journal_session() turns the paths into a writer and an index).
RunnerOptions runner_options_from_flags(const Flags& flags);

/// The journal plumbing a tool owns for the lifetime of its sweeps.
struct JournalSession {
  std::unique_ptr<JournalWriter> writer;
  std::unique_ptr<JournalIndex> resume;
};

/// Opens the --journal / --resume paths from `flags` for a sweep identified
/// by `sweep_id`. --resume loads the journal (validating schema + sweep_id)
/// and, unless a different --journal was given, keeps appending to the same
/// file. Throws std::invalid_argument on a bad/mismatched journal.
JournalSession open_journal_session(const Flags& flags, const std::string& sweep_id);

/// Installs SIGINT/SIGTERM handlers that request a graceful drain (first
/// signal) and cooperative cancellation of in-flight points (second signal).
/// Idempotent; run() calls it automatically.
void install_signal_handlers();

/// Number of interrupt requests seen so far (signals + request_interrupt()).
int interrupt_level();
/// True once any interrupt was requested.
bool interrupt_requested();
/// Programmatic interrupt, equivalent to one SIGINT: tests use it to
/// simulate a mid-run kill deterministically.
void request_interrupt();
/// Clears the interrupt state (test support).
void clear_interrupt();

}  // namespace perfbg::runner
