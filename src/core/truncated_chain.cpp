#include "core/truncated_chain.hpp"

#include "core/chain_builder.hpp"
#include "markov/stationary.hpp"
#include "markov/transient.hpp"
#include "util/check.hpp"

namespace perfbg::core {

TruncatedFgBgChain::TruncatedFgBgChain(const FgBgParams& params, int extra_levels)
    : params_(params),
      layout_(params_.background_disabled() ? 0 : params_.bg_buffer,
              params_.arrivals.phases() * params_.effective_service().phases() *
                  params_.effective_idle_wait().phases()),
      extra_levels_(extra_levels) {
  PERFBG_REQUIRE(extra_levels >= 1, "need at least one repeating level");
  const qbd::QbdProcess q = build_fgbg_qbd(params_, layout_);
  const std::size_t nb = q.boundary_size(), nr = q.level_size();
  const std::size_t n = nb + nr * static_cast<std::size_t>(extra_levels);
  generator_ = linalg::Matrix(n, n, 0.0);
  auto put = [&](std::size_t r0, std::size_t c0, const linalg::Matrix& b) {
    for (std::size_t i = 0; i < b.rows(); ++i)
      for (std::size_t j = 0; j < b.cols(); ++j) generator_(r0 + i, c0 + j) += b(i, j);
  };
  put(0, 0, q.b00);
  put(0, nb, q.b01);
  put(nb, 0, q.b10);
  for (int l = 0; l < extra_levels; ++l) {
    const std::size_t off = nb + nr * static_cast<std::size_t>(l);
    put(off, off, q.a1);
    if (l + 1 < extra_levels)
      put(off, off + nr, q.a0);
    else
      put(off, off, q.a0);  // reflect arrivals at the top edge
    if (l >= 1) put(off, off - nr, q.a2);
  }

  // Per-macro-state descriptors with resolved y, and per-flat-state service
  // completion rates. Combined phase index: (arrival * m_s + service) * m_w
  // + wait.
  const traffic::PhaseType service = params_.effective_service();
  const std::size_t svc = service.phases();
  const std::size_t wait = params_.effective_idle_wait().phases();
  const std::size_t phases = layout_.phases();
  for (const StateDesc& s : layout_.boundary()) flat_desc_.push_back(s);
  for (int l = 0; l < extra_levels; ++l) {
    const int level = layout_.first_repeating_level() + l;
    for (const StateDesc& s : layout_.repeating())
      flat_desc_.push_back({s.kind, s.x, level - s.x});
  }
  exit_rate_.assign(n, 0.0);
  for (std::size_t ms = 0; ms < flat_desc_.size(); ++ms) {
    if (flat_desc_[ms].kind == Activity::kIdle) continue;
    for (std::size_t k = 0; k < phases; ++k)
      exit_rate_[ms * phases + k] = service.exit_rates()[(k / wait) % svc];
  }
}

StateDesc TruncatedFgBgChain::describe(std::size_t flat_index) const {
  PERFBG_REQUIRE(flat_index < state_count(), "state index out of range");
  return flat_desc_[flat_index / layout_.phases()];
}

linalg::Vector TruncatedFgBgChain::empty_state() const {
  linalg::Vector pi(state_count(), 0.0);
  const std::size_t idle = layout_.boundary_index(Activity::kIdle, 0, 0);
  const std::size_t phases = layout_.phases();
  const traffic::PhaseType service = params_.effective_service();
  const traffic::PhaseType wait = params_.effective_idle_wait();
  const std::size_t svc = service.phases();
  const std::size_t wph = wait.phases();
  const linalg::Vector& arr_pi = params_.arrivals.phase_stationary();
  for (std::size_t k = 0; k < phases; ++k)
    pi[idle * phases + k] =
        arr_pi[k / (svc * wph)] * service.alpha()[(k / wph) % svc] * wait.alpha()[k % wph];
  return pi;
}

linalg::Vector TruncatedFgBgChain::stationary() const {
  return markov::stationary_unichain_ctmc(generator_);
}

linalg::Vector TruncatedFgBgChain::transient(const linalg::Vector& pi0, double t) const {
  return markov::transient_ctmc(generator_, pi0, t);
}

double TruncatedFgBgChain::mean_fg_jobs(const linalg::Vector& pi) const {
  PERFBG_REQUIRE(pi.size() == state_count(), "distribution size mismatch");
  const std::size_t phases = layout_.phases();
  double total = 0.0;
  for (std::size_t i = 0; i < pi.size(); ++i) total += pi[i] * flat_desc_[i / phases].y;
  return total;
}

double TruncatedFgBgChain::mean_bg_jobs(const linalg::Vector& pi) const {
  PERFBG_REQUIRE(pi.size() == state_count(), "distribution size mismatch");
  const std::size_t phases = layout_.phases();
  double total = 0.0;
  for (std::size_t i = 0; i < pi.size(); ++i) total += pi[i] * flat_desc_[i / phases].x;
  return total;
}

double TruncatedFgBgChain::bg_busy_probability(const linalg::Vector& pi) const {
  PERFBG_REQUIRE(pi.size() == state_count(), "distribution size mismatch");
  const std::size_t phases = layout_.phases();
  double total = 0.0;
  for (std::size_t i = 0; i < pi.size(); ++i)
    if (flat_desc_[i / phases].kind == Activity::kBgService) total += pi[i];
  return total;
}

double TruncatedFgBgChain::bg_completion_rate(const linalg::Vector& pi) const {
  PERFBG_REQUIRE(pi.size() == state_count(), "distribution size mismatch");
  const std::size_t phases = layout_.phases();
  double total = 0.0;
  for (std::size_t i = 0; i < pi.size(); ++i)
    if (flat_desc_[i / phases].kind == Activity::kBgService) total += pi[i] * exit_rate_[i];
  return total;
}

double TruncatedFgBgChain::bg_drop_rate(const linalg::Vector& pi) const {
  PERFBG_REQUIRE(pi.size() == state_count(), "distribution size mismatch");
  const std::size_t phases = layout_.phases();
  const int cap = layout_.bg_buffer();
  double total = 0.0;
  for (std::size_t i = 0; i < pi.size(); ++i) {
    const StateDesc& d = flat_desc_[i / phases];
    if (d.kind == Activity::kFgService && d.x == cap) total += pi[i] * exit_rate_[i];
  }
  return params_.bg_probability * total;
}

double TruncatedFgBgChain::top_level_mass(const linalg::Vector& pi) const {
  PERFBG_REQUIRE(pi.size() == state_count(), "distribution size mismatch");
  const std::size_t nr = layout_.repeating_flat_size();
  double total = 0.0;
  for (std::size_t i = pi.size() - nr; i < pi.size(); ++i) total += pi[i];
  return total;
}

std::vector<TruncatedFgBgChain::TransientPoint> TruncatedFgBgChain::transient_sweep(
    const linalg::Vector& pi0, double horizon, int steps) const {
  PERFBG_REQUIRE(horizon > 0.0 && steps >= 1, "need a positive horizon and steps");
  const double dt = horizon / steps;
  std::vector<TransientPoint> out;
  out.reserve(static_cast<std::size_t>(steps) + 1);
  linalg::Vector pi = pi0;
  double completed = 0.0, dropped = 0.0;
  double prev_rate = bg_completion_rate(pi), prev_drop = bg_drop_rate(pi);
  out.push_back({0.0, mean_fg_jobs(pi), mean_bg_jobs(pi), 0.0, 0.0});
  for (int s = 1; s <= steps; ++s) {
    pi = transient(pi, dt);
    const double rate = bg_completion_rate(pi);
    const double drop = bg_drop_rate(pi);
    completed += 0.5 * (prev_rate + rate) * dt;
    dropped += 0.5 * (prev_drop + drop) * dt;
    prev_rate = rate;
    prev_drop = drop;
    out.push_back({s * dt, mean_fg_jobs(pi), mean_bg_jobs(pi), completed, dropped});
  }
  return out;
}

}  // namespace perfbg::core
