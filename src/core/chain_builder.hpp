// Translates FgBgParams into the QBD blocks of the paper's Markov chain
// (Fig. 3 with each scalar state expanded into the MAP's phase block, as in
// the paper's Fig. 4 / Eq. 6-7).
#pragma once

#include "core/params.hpp"
#include "core/state_space.hpp"
#include "qbd/qbd.hpp"

namespace perfbg::core {

/// Builds the QBD process for the given parameters over the given layout.
/// The layout must have bg_buffer == params.bg_buffer (or 0 when
/// params.bg_probability == 0) and phases == params.arrivals.phases().
qbd::QbdProcess build_fgbg_qbd(const FgBgParams& params, const FgBgLayout& layout);

}  // namespace perfbg::core
