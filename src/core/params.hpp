// Parameters of the paper's foreground/background storage-system model.
#pragma once

#include <optional>

#include "traffic/map_process.hpp"
#include "traffic/phase_type.hpp"

namespace perfbg::core {

/// Configuration of the FG/BG service center (paper Section 3.2):
/// a single non-preemptive FCFS server with an infinite foreground buffer and
/// a finite background buffer, exponential service, MAP foreground arrivals,
/// background jobs spawned by foreground completions with probability p and
/// served only after an exponential idle wait.
struct FgBgParams {
  /// All other knobs start at the paper's defaults; set fields directly.
  explicit FgBgParams(traffic::MarkovianArrivalProcess arrival_process)
      : arrivals(std::move(arrival_process)) {}

  /// Foreground arrival process (the paper's MMPP; any MAP is accepted).
  traffic::MarkovianArrivalProcess arrivals;

  /// Mean service time of both job classes (paper: 6 ms, exponential).
  /// Ignored when `service_distribution` is set.
  double mean_service_time = 6.0;

  /// Optional phase-type service distribution (the paper's footnote-3
  /// extension: service may be PH instead of exponential; both job classes
  /// share it). When unset, service is exponential with mean
  /// `mean_service_time`.
  std::optional<traffic::PhaseType> service_distribution;

  /// Probability p that a completing foreground job spawns a background job
  /// (paper: 0.1 ... 0.9; 0 disables background work entirely).
  double bg_probability = 0.3;

  /// Background buffer capacity X (paper default: 5 jobs, ~0.5-1 MB).
  int bg_buffer = 5;

  /// Mean idle wait before background service starts, in multiples of the
  /// mean service time (paper default: 1.0; its Figs. 9-10 sweep this).
  /// Ignored when `idle_wait_distribution` is set.
  double idle_wait_intensity = 1.0;

  /// Optional phase-type idle-wait distribution (footnote-3 extension; the
  /// paper's model uses an exponential wait). When unset, the wait is
  /// exponential with mean idle_wait_intensity * E[S].
  std::optional<traffic::PhaseType> idle_wait_distribution;

  /// The effective service distribution (exponential when none is set).
  traffic::PhaseType effective_service() const {
    return service_distribution ? *service_distribution
                                : traffic::PhaseType::exponential(mean_service_time);
  }
  /// Mean service time E[S] of the effective service distribution.
  double mean_service() const {
    return service_distribution ? service_distribution->mean() : mean_service_time;
  }
  /// Mean service rate mu = 1 / E[S].
  double service_rate() const { return 1.0 / mean_service(); }
  /// The effective idle-wait distribution (exponential when none is set).
  traffic::PhaseType effective_idle_wait() const {
    return idle_wait_distribution
               ? *idle_wait_distribution
               : traffic::PhaseType::exponential(idle_wait_intensity * mean_service());
  }
  /// Mean idle wait E[W].
  double mean_idle_wait() const {
    return idle_wait_distribution ? idle_wait_distribution->mean()
                                  : idle_wait_intensity * mean_service();
  }
  /// Mean idle-wait expiry rate alpha = 1 / E[W].
  double idle_wait_rate() const { return 1.0 / mean_idle_wait(); }
  /// Offered foreground load rho = lambda * E[S].
  double fg_offered_load() const { return arrivals.mean_rate() * mean_service(); }
  /// True when background work is disabled (p == 0).
  bool background_disabled() const { return bg_probability == 0.0; }

  /// Throws std::invalid_argument when any field is out of range.
  void validate() const;
};

}  // namespace perfbg::core
