#include "core/multiclass.hpp"

#include "util/check.hpp"

namespace perfbg::core {

namespace {

using linalg::Matrix;

void add_block(Matrix& m, std::size_t phases, std::size_t row, std::size_t col,
               const Matrix& block) {
  for (std::size_t a = 0; a < phases; ++a)
    for (std::size_t b = 0; b < phases; ++b) m(row * phases + a, col * phases + b) += block(a, b);
}

void close_rows(Matrix& diag_home, std::size_t phases, std::size_t row,
                const std::vector<const Matrix*>& row_blocks) {
  for (std::size_t a = 0; a < phases; ++a) {
    const std::size_t i = row * phases + a;
    double s = 0.0;
    for (const Matrix* m : row_blocks) s += m->row_sum(i);
    diag_home(i, i) -= s;
  }
}

}  // namespace

void McParams::validate() const {
  PERFBG_REQUIRE(mean_service_time > 0.0, "mean service time must be positive");
  PERFBG_REQUIRE(p1 >= 0.0 && p2 >= 0.0 && p1 + p2 <= 1.0,
                 "class spawn probabilities must be nonnegative with p1 + p2 <= 1");
  PERFBG_REQUIRE(p1 + p2 > 0.0, "at least one class must spawn (else use FgBgModel)");
  PERFBG_REQUIRE(buffer1 >= 1 && buffer2 >= 1, "class buffers must be >= 1");
  PERFBG_REQUIRE(idle_wait_intensity > 0.0, "idle wait intensity must be positive");
}

McLayout::McLayout(int buffer1, int buffer2, std::size_t phases)
    : buffer1_(buffer1), buffer2_(buffer2), phases_(phases) {
  PERFBG_REQUIRE(buffer1 >= 1 && buffer2 >= 1, "buffers must be >= 1");
  PERFBG_REQUIRE(phases >= 1, "need at least one phase");
  const int x_total = buffer1_ + buffer2_;

  // Boundary: levels j = 0 .. X1+X2, all states with x1 + x2 + y = j.
  for (int j = 0; j <= x_total; ++j) {
    for (int x1 = 0; x1 <= std::min(j, buffer1_); ++x1) {
      for (int x2 = 0; x2 <= std::min(j - x1, buffer2_); ++x2) {
        const int y = j - x1 - x2;
        if (y >= 1) boundary_.push_back({McActivity::kFgService, x1, x2, y});
        if (x1 >= 1) boundary_.push_back({McActivity::kBg1Service, x1, x2, y});
        if (x2 >= 1) boundary_.push_back({McActivity::kBg2Service, x1, x2, y});
        if (y == 0) boundary_.push_back({McActivity::kIdle, x1, x2, 0});
      }
    }
  }

  // Repeating layout: one slot per (activity, x1, x2); y = level - x1 - x2.
  for (int x1 = 0; x1 <= buffer1_; ++x1) {
    for (int x2 = 0; x2 <= buffer2_; ++x2) {
      repeating_.push_back({McActivity::kFgService, x1, x2, -1});
      if (x1 >= 1) repeating_.push_back({McActivity::kBg1Service, x1, x2, -1});
      if (x2 >= 1) repeating_.push_back({McActivity::kBg2Service, x1, x2, -1});
    }
  }
}

std::size_t McLayout::boundary_index(McActivity kind, int x1, int x2, int y) const {
  for (std::size_t i = 0; i < boundary_.size(); ++i) {
    const McStateDesc& s = boundary_[i];
    if (s.kind == kind && s.x1 == x1 && s.x2 == x2 && s.y == y) return i;
  }
  PERFBG_REQUIRE(false, "no such boundary state");
  return 0;  // unreachable
}

std::size_t McLayout::repeating_index(McActivity kind, int x1, int x2) const {
  for (std::size_t i = 0; i < repeating_.size(); ++i) {
    const McStateDesc& s = repeating_[i];
    if (s.kind == kind && s.x1 == x1 && s.x2 == x2) return i;
  }
  PERFBG_REQUIRE(false, "no such repeating slot");
  return 0;  // unreachable
}

qbd::QbdProcess build_multiclass_qbd(const McParams& params, const McLayout& layout) {
  params.validate();
  const std::size_t phases = params.arrivals.phases();
  PERFBG_REQUIRE(layout.phases() == phases, "layout/arrival phase mismatch");
  PERFBG_REQUIRE(layout.buffer1() == params.buffer1 && layout.buffer2() == params.buffer2,
                 "layout buffers must match params");

  const double mu = params.service_rate();
  const int cap1 = params.buffer1, cap2 = params.buffer2;
  const Matrix& d1 = params.arrivals.d1();
  Matrix phase_moves = params.arrivals.d0();
  for (std::size_t a = 0; a < phases; ++a) phase_moves(a, a) = 0.0;
  const Matrix identity = Matrix::identity(phases);
  const Matrix idle_expiry = identity * params.idle_wait_rate();

  // Per-state completion split: spawns into a full buffer are dropped and
  // fold into the no-spawn path.
  auto spawn1_rate = [&](int x1) { return x1 < cap1 ? mu * params.p1 : 0.0; };
  auto spawn2_rate = [&](int x2) { return x2 < cap2 ? mu * params.p2 : 0.0; };

  const std::size_t nb = layout.boundary_flat_size();
  const std::size_t nr = layout.repeating_flat_size();
  qbd::QbdProcess q;
  q.b00 = Matrix(nb, nb, 0.0);
  q.b01 = Matrix(nb, nr, 0.0);
  q.b10 = Matrix(nr, nb, 0.0);
  q.a0 = Matrix(nr, nr, 0.0);
  q.a1 = Matrix(nr, nr, 0.0);
  q.a2 = Matrix(nr, nr, 0.0);

  const int x_total = cap1 + cap2;

  // ---- boundary rows ----
  const auto& bstates = layout.boundary();
  for (std::size_t s = 0; s < bstates.size(); ++s) {
    const McStateDesc st = bstates[s];
    const int level = st.x1 + st.x2 + st.y;
    add_block(q.b00, phases, s, s, phase_moves);

    // Arrival: one level up; the target activity keeps its kind except from
    // idle, where the foreground job starts service at once.
    const McActivity arr_kind =
        st.kind == McActivity::kIdle ? McActivity::kFgService : st.kind;
    const int arr_y = st.kind == McActivity::kIdle ? 1 : st.y + 1;
    if (level + 1 <= x_total) {
      add_block(q.b00, phases, s, layout.boundary_index(arr_kind, st.x1, st.x2, arr_y), d1);
    } else {
      add_block(q.b01, phases, s, layout.repeating_index(arr_kind, st.x1, st.x2), d1);
    }

    switch (st.kind) {
      case McActivity::kFgService: {
        const double s1 = spawn1_rate(st.x1), s2 = spawn2_rate(st.x2);
        const double s0 = mu - s1 - s2;
        auto down_target = [&](int x1, int x2) {
          // After a completion the state has y-1 foreground jobs.
          if (st.y >= 2)
            return layout.boundary_index(McActivity::kFgService, x1, x2, st.y - 1);
          return layout.boundary_index(McActivity::kIdle, x1, x2, 0);
        };
        add_block(q.b00, phases, s, down_target(st.x1, st.x2), identity * s0);
        if (s1 > 0.0) add_block(q.b00, phases, s, down_target(st.x1 + 1, st.x2), identity * s1);
        if (s2 > 0.0) add_block(q.b00, phases, s, down_target(st.x1, st.x2 + 1), identity * s2);
        break;
      }
      case McActivity::kBg1Service: {
        const std::size_t target =
            st.y >= 1
                ? layout.boundary_index(McActivity::kFgService, st.x1 - 1, st.x2, st.y)
                : layout.boundary_index(McActivity::kIdle, st.x1 - 1, st.x2, 0);
        add_block(q.b00, phases, s, target, identity * mu);
        break;
      }
      case McActivity::kBg2Service: {
        const std::size_t target =
            st.y >= 1
                ? layout.boundary_index(McActivity::kFgService, st.x1, st.x2 - 1, st.y)
                : layout.boundary_index(McActivity::kIdle, st.x1, st.x2 - 1, 0);
        add_block(q.b00, phases, s, target, identity * mu);
        break;
      }
      case McActivity::kIdle: {
        // Idle-wait expiry: class 1 has priority over class 2.
        if (st.x1 >= 1) {
          add_block(q.b00, phases, s,
                    layout.boundary_index(McActivity::kBg1Service, st.x1, st.x2, 0),
                    idle_expiry);
        } else if (st.x2 >= 1) {
          add_block(q.b00, phases, s,
                    layout.boundary_index(McActivity::kBg2Service, st.x1, st.x2, 0),
                    idle_expiry);
        }
        break;
      }
    }
  }

  // ---- repeating rows (levels j > X1+X2); also emits B10 for level X+1 ----
  const auto& rstates = layout.repeating();
  for (std::size_t s = 0; s < rstates.size(); ++s) {
    const McStateDesc st = rstates[s];
    add_block(q.a1, phases, s, s, phase_moves);
    add_block(q.a0, phases, s, s, d1);
    const int y_first = layout.first_repeating_level() - st.x1 - st.x2;  // y at level X+1

    switch (st.kind) {
      case McActivity::kFgService: {
        const double s1 = spawn1_rate(st.x1), s2 = spawn2_rate(st.x2);
        const double s0 = mu - s1 - s2;
        // Spawns stay within the level.
        if (s1 > 0.0)
          add_block(q.a1, phases, s,
                    layout.repeating_index(McActivity::kFgService, st.x1 + 1, st.x2),
                    identity * s1);
        if (s2 > 0.0)
          add_block(q.a1, phases, s,
                    layout.repeating_index(McActivity::kFgService, st.x1, st.x2 + 1),
                    identity * s2);
        // No-spawn completion: down one level, same slot.
        add_block(q.a2, phases, s, s, identity * s0);
        // Level X+1 -> X boundary image of the same move.
        const std::size_t down =
            y_first - 1 >= 1
                ? layout.boundary_index(McActivity::kFgService, st.x1, st.x2, y_first - 1)
                : layout.boundary_index(McActivity::kIdle, st.x1, st.x2, 0);
        add_block(q.b10, phases, s, down, identity * s0);
        break;
      }
      case McActivity::kBg1Service: {
        add_block(q.a2, phases, s,
                  layout.repeating_index(McActivity::kFgService, st.x1 - 1, st.x2),
                  identity * mu);
        add_block(q.b10, phases, s,
                  layout.boundary_index(McActivity::kFgService, st.x1 - 1, st.x2, y_first),
                  identity * mu);
        break;
      }
      case McActivity::kBg2Service: {
        add_block(q.a2, phases, s,
                  layout.repeating_index(McActivity::kFgService, st.x1, st.x2 - 1),
                  identity * mu);
        add_block(q.b10, phases, s,
                  layout.boundary_index(McActivity::kFgService, st.x1, st.x2 - 1, y_first),
                  identity * mu);
        break;
      }
      case McActivity::kIdle:
        PERFBG_ASSERT(false, "idle states cannot appear in repeating levels");
    }
  }

  for (std::size_t s = 0; s < bstates.size(); ++s)
    close_rows(q.b00, phases, s, {&q.b00, &q.b01});
  for (std::size_t s = 0; s < rstates.size(); ++s)
    close_rows(q.a1, phases, s, {&q.a1, &q.a0, &q.a2});

  q.validate();
  return q;
}

McModel::McModel(McParams params)
    : params_(std::move(params)),
      layout_(params_.buffer1, params_.buffer2, params_.arrivals.phases()),
      process_(build_multiclass_qbd(params_, layout_)) {}

McMetrics McModel::solve(const qbd::RSolverOptions& opts) const {
  const qbd::QbdSolution sol(process_, opts);
  const std::size_t a = layout_.phases();
  const double mu = params_.service_rate();
  McMetrics m;

  double p_fg = 0.0, p_fg_cap1 = 0.0, p_fg_cap2 = 0.0;
  double p_b1 = 0.0, p_b2 = 0.0, p_b_y0 = 0.0, p_idle = 0.0;
  double qlen_fg = 0.0, qlen_1 = 0.0, qlen_2 = 0.0;

  auto account = [&](const McStateDesc& st, int y, double mass) {
    qlen_fg += y * mass;
    qlen_1 += st.x1 * mass;
    qlen_2 += st.x2 * mass;
    switch (st.kind) {
      case McActivity::kFgService:
        p_fg += mass;
        if (st.x1 == params_.buffer1) p_fg_cap1 += mass;
        if (st.x2 == params_.buffer2) p_fg_cap2 += mass;
        break;
      case McActivity::kBg1Service:
        p_b1 += mass;
        if (y == 0) p_b_y0 += mass;
        break;
      case McActivity::kBg2Service:
        p_b2 += mass;
        if (y == 0) p_b_y0 += mass;
        break;
      case McActivity::kIdle:
        p_idle += mass;
        break;
    }
  };

  const auto& bstates = layout_.boundary();
  for (std::size_t s = 0; s < bstates.size(); ++s) {
    double mass = 0.0;
    for (std::size_t k = 0; k < a; ++k) mass += sol.boundary()[s * a + k];
    account(bstates[s], bstates[s].y, mass);
  }
  const int first = layout_.first_repeating_level();
  const auto& rstates = layout_.repeating();
  for (std::size_t s = 0; s < rstates.size(); ++s) {
    double mass = 0.0, index_mass = 0.0;
    for (std::size_t k = 0; k < a; ++k) {
      mass += sol.repeating_sum()[s * a + k];
      index_mass += sol.repeating_index_sum()[s * a + k];
    }
    // y = (first + level offset) - x1 - x2; split the y-weighted sum into
    // the base part (handled by account) and the level-offset part.
    account(rstates[s], first - rstates[s].x1 - rstates[s].x2, mass);
    qlen_fg += index_mass;
  }

  m.probability_mass = p_fg + p_b1 + p_b2 + p_idle;
  m.fg_queue_length = qlen_fg;
  m.bg1_queue_length = qlen_1;
  m.bg2_queue_length = qlen_2;
  m.bg1_completion = p_fg > 0.0 && params_.p1 > 0.0 ? 1.0 - p_fg_cap1 / p_fg : 1.0;
  m.bg2_completion = p_fg > 0.0 && params_.p2 > 0.0 ? 1.0 - p_fg_cap2 / p_fg : 1.0;
  const double p_y0 = p_idle + p_b_y0;
  m.fg_delayed = p_y0 < 1.0 ? (p_b1 + p_b2 - p_b_y0) / (1.0 - p_y0) : 0.0;
  m.bg1_busy_fraction = p_b1;
  m.bg2_busy_fraction = p_b2;
  m.busy_fraction = p_fg + p_b1 + p_b2;
  m.idle_fraction = p_idle;
  m.fg_throughput = mu * p_fg;
  return m;
}

}  // namespace perfbg::core
