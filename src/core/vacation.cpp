#include "core/vacation.hpp"

#include "util/check.hpp"

namespace perfbg::core {

namespace {

double mg1_waiting_time(double lambda, const traffic::PhaseType& service) {
  const double rho = lambda * service.mean();
  PERFBG_REQUIRE(lambda > 0.0, "arrival rate must be positive");
  PERFBG_REQUIRE(rho < 1.0, "M/G/1 requires lambda E[S] < 1");
  // Pollaczek-Khinchine: E[Wq] = lambda E[S^2] / (2 (1 - rho)).
  return lambda * service.moment(2) / (2.0 * (1.0 - rho));
}

}  // namespace

double mg1_multiple_vacations_waiting_time(double lambda, const traffic::PhaseType& service,
                                           const traffic::PhaseType& vacation) {
  return mg1_waiting_time(lambda, service) + vacation.moment(2) / (2.0 * vacation.mean());
}

double mg1_multiple_vacations_number_in_system(double lambda,
                                               const traffic::PhaseType& service,
                                               const traffic::PhaseType& vacation) {
  return lambda * (mg1_multiple_vacations_waiting_time(lambda, service, vacation) +
                   service.mean());
}

double mg1_number_in_system(double lambda, const traffic::PhaseType& service) {
  return lambda * (mg1_waiting_time(lambda, service) + service.mean());
}

}  // namespace perfbg::core
