#include "core/model.hpp"

#include <cmath>

#include "obs/span.hpp"
#include "util/check.hpp"

namespace perfbg::core {

void FgBgParams::validate() const {
  PERFBG_REQUIRE(mean_service_time > 0.0, "mean service time must be positive");
  PERFBG_REQUIRE(bg_probability >= 0.0 && bg_probability <= 1.0,
                 "background probability must be in [0, 1]");
  PERFBG_REQUIRE(background_disabled() || bg_buffer >= 1,
                 "background buffer must be >= 1 when p > 0");
  PERFBG_REQUIRE(idle_wait_intensity > 0.0, "idle wait intensity must be positive");
}

namespace {

qbd::QbdProcess timed_build(const FgBgParams& params, const FgBgLayout& layout,
                            obs::MetricsRegistry* metrics) {
  obs::ScopedTimer t(metrics, "core.chain_build");
  obs::ScopedSpan span("core.chain_build");
  span.attr("phases", obs::JsonValue(static_cast<std::int64_t>(layout.phases())))
      .attr("bg_buffer", obs::JsonValue(layout.bg_buffer()));
  return build_fgbg_qbd(params, layout);
}

}  // namespace

FgBgModel::FgBgModel(FgBgParams params, obs::MetricsRegistry* metrics)
    : params_(std::move(params)),
      layout_(params_.background_disabled() ? 0 : params_.bg_buffer,
              params_.arrivals.phases() * params_.effective_service().phases() *
                  params_.effective_idle_wait().phases()),
      process_(timed_build(params_, layout_, metrics)),
      metrics_(metrics) {}

FgBgSolution FgBgModel::solve(const qbd::RSolverOptions& opts) const {
  obs::ScopedTimer total(metrics_, "core.solve.total");
  obs::ScopedSpan span("core.solve");
  span.attr("level_size", obs::JsonValue(static_cast<std::int64_t>(process_.level_size())));
  return FgBgSolution(params_, layout_, qbd::QbdSolution(process_, opts, metrics_),
                      metrics_);
}

FgBgSolution::FgBgSolution(FgBgParams params, FgBgLayout layout, qbd::QbdSolution solution,
                           obs::MetricsRegistry* metrics)
    : params_(std::move(params)), layout_(std::move(layout)), qbd_(std::move(solution)) {
  obs::ScopedTimer t(metrics, "core.solve.metrics_eval");
  obs::ScopedSpan span("core.solve.metrics_eval");
  compute_metrics();
}

double FgBgSolution::boundary_mass(Activity kind, int x, int y) const {
  const std::size_t s = layout_.boundary_index(kind, x, y);
  const std::size_t a = layout_.phases();
  double m = 0.0;
  for (std::size_t k = 0; k < a; ++k) m += qbd_.boundary()[s * a + k];
  return m;
}

double FgBgSolution::repeating_slot_mass(Activity kind, int x) const {
  const std::size_t s = layout_.repeating_index(kind, x);
  const std::size_t a = layout_.phases();
  double m = 0.0;
  for (std::size_t k = 0; k < a; ++k) m += qbd_.repeating_sum()[s * a + k];
  return m;
}

double FgBgSolution::fg_count_probability(int n, int level_cutoff) const {
  PERFBG_REQUIRE(n >= 0, "job count must be >= 0");
  const std::size_t a = layout_.phases();
  double total = 0.0;
  // Boundary part: states with y == n.
  for (std::size_t s = 0; s < layout_.boundary().size(); ++s) {
    if (layout_.boundary()[s].y != n) continue;
    for (std::size_t k = 0; k < a; ++k) total += qbd_.boundary()[s * a + k];
  }
  // Repeating part: at level j, slot with x has y = j - x, so y == n requires
  // level j = n + x — one level per slot.
  const int first = layout_.first_repeating_level();
  for (std::size_t s = 0; s < layout_.repeating().size(); ++s) {
    const int x = layout_.repeating()[s].x;
    const int j = n + x;
    if (j < first || j - first > level_cutoff) continue;
    const linalg::Vector pi = qbd_.repeating_level(j - first);
    for (std::size_t k = 0; k < a; ++k) total += pi[s * a + k];
  }
  return total;
}

void FgBgSolution::compute_metrics() {
  const std::size_t a = layout_.phases();
  const double p = params_.bg_probability;
  const double lambda = params_.arrivals.mean_rate();
  const int x_cap = layout_.bg_buffer();
  FgBgMetrics& m = metrics_;

  // Combined phases: k = (arrival * m_s + service) * m_w + wait.
  const traffic::PhaseType service = params_.effective_service();
  const std::size_t svc = service.phases();
  const std::size_t wait = params_.effective_idle_wait().phases();
  PERFBG_ASSERT(a == params_.arrivals.phases() * svc * wait, "phase bookkeeping mismatch");
  // Per-phase arrival intensity (for the arrival-weighted delay metric) and
  // per-phase service completion rate (for all flow-based metrics — with PH
  // service the completion flow is phase dependent, so occupancy ratios are
  // no longer enough).
  linalg::Vector phase_rate(a, 0.0), phase_exit(a, 0.0);
  for (std::size_t k = 0; k < a; ++k) {
    phase_rate[k] = params_.arrivals.d1().row_sum(k / (svc * wait));
    phase_exit[k] = service.exit_rates()[(k / wait) % svc];
  }

  double p_fg = 0.0, p_fg_cap = 0.0, p_bg = 0.0, p_bg_y0 = 0.0, p_idle = 0.0;
  double qlen_fg = 0.0, qlen_bg = 0.0;
  double delayed_arrival_rate = 0.0;
  double fg_flow = 0.0, fg_flow_cap = 0.0, bg_flow = 0.0;

  // ---- boundary contribution ----
  const auto& bstates = layout_.boundary();
  for (std::size_t s = 0; s < bstates.size(); ++s) {
    const StateDesc st = bstates[s];
    double mass = 0.0, weighted_rate = 0.0, flow = 0.0;
    for (std::size_t k = 0; k < a; ++k) {
      const double pi = qbd_.boundary()[s * a + k];
      mass += pi;
      weighted_rate += pi * phase_rate[k];
      flow += pi * phase_exit[k];
    }
    qlen_fg += st.y * mass;
    qlen_bg += st.x * mass;
    switch (st.kind) {
      case Activity::kFgService:
        p_fg += mass;
        fg_flow += flow;
        if (st.x == x_cap) {
          p_fg_cap += mass;
          fg_flow_cap += flow;
        }
        break;
      case Activity::kBgService:
        p_bg += mass;
        bg_flow += flow;
        if (st.y == 0) p_bg_y0 += mass;
        delayed_arrival_rate += weighted_rate;
        break;
      case Activity::kIdle:
        p_idle += mass;
        break;
    }
  }

  // ---- repeating contribution ----
  // Level j >= X+1 holds slot (kind, x) with y = j - x. With S0 = sum_k pi_k
  // and S1 = sum_k k*pi_k (k = level offset), the level index satisfies
  // sum over levels of y * pi = (X+1) * S0 + S1 - x * S0, per slot.
  const int first = layout_.first_repeating_level();
  const auto& rstates = layout_.repeating();
  for (std::size_t s = 0; s < rstates.size(); ++s) {
    const StateDesc st = rstates[s];
    double mass = 0.0, index_mass = 0.0, weighted_rate = 0.0, flow = 0.0;
    for (std::size_t k = 0; k < a; ++k) {
      const double s0 = qbd_.repeating_sum()[s * a + k];
      mass += s0;
      index_mass += qbd_.repeating_index_sum()[s * a + k];
      weighted_rate += s0 * phase_rate[k];
      flow += s0 * phase_exit[k];
    }
    qlen_fg += (first - st.x) * mass + index_mass;
    qlen_bg += st.x * mass;
    if (st.kind == Activity::kFgService) {
      p_fg += mass;
      fg_flow += flow;
      if (st.x == x_cap) {
        p_fg_cap += mass;
        fg_flow_cap += flow;
      }
    } else {
      p_bg += mass;  // repeating B slots always have y >= 1
      bg_flow += flow;
      delayed_arrival_rate += weighted_rate;
    }
  }

  m.probability_mass = p_fg + p_bg + p_idle;
  m.fg_queue_length = qlen_fg;
  m.bg_queue_length = qlen_bg;
  m.fg_offered_load = params_.fg_offered_load();
  m.fg_busy_fraction = p_fg;
  m.bg_busy_fraction = p_bg;
  m.busy_fraction = p_fg + p_bg;
  m.idle_fraction = p_idle;

  m.fg_throughput = fg_flow;  // completion flow out of FG-serving states
  m.fg_response_time = qlen_fg / lambda;

  // WaitP_FG (paper): among foreground jobs in the system, the portion
  // waiting behind a background job in service.
  const double p_y0 = p_idle + p_bg_y0;
  const double p_y_pos = 1.0 - p_y0;
  m.fg_delayed = p_y_pos > 0.0 ? (p_bg - p_bg_y0) / p_y_pos : 0.0;
  // Arrival-weighted extension: the fraction of FG arrivals that land while a
  // BG job is in service (all of them are delayed by the non-preemptive BG).
  m.fg_delayed_arrivals = delayed_arrival_rate / lambda;

  if (params_.background_disabled()) {
    m.bg_completion = 1.0;  // nothing is ever generated, nothing is dropped
    m.bg_generation_rate = m.bg_accept_rate = m.bg_drop_rate = 0.0;
    m.bg_throughput = 0.0;
    m.bg_response_time = 0.0;
  } else {
    // Spawn attempts are a p-thinning of the FG completion flow; attempts in
    // x == X states are dropped. With PH service the flow is phase weighted,
    // so the ratio uses completion flows, not occupancies.
    m.bg_completion = fg_flow > 0.0 ? 1.0 - fg_flow_cap / fg_flow : 1.0;
    m.bg_generation_rate = p * fg_flow;
    m.bg_drop_rate = p * fg_flow_cap;
    m.bg_accept_rate = m.bg_generation_rate - m.bg_drop_rate;
    m.bg_throughput = bg_flow;  // equals bg_accept_rate in steady state
    m.bg_response_time = m.bg_accept_rate > 0.0 ? qlen_bg / m.bg_accept_rate : 0.0;
  }
}

}  // namespace perfbg::core
