// Explicit finite truncation of the FG/BG chain.
//
// The QBD solution is exact for steady state; this module materializes the
// same chain as one finite generator (boundary + K repeating levels with a
// reflecting top edge) to enable analyses the matrix-geometric form does not
// give directly:
//   * transient ("performability") evaluation via uniformization — queue
//     trajectories and background-completion counts over a finite horizon,
//   * independent validation of the steady-state solution (the test suite's
//     brute-force oracle),
//   * distributions over the full state detail at modest loads.
//
// The truncation error is controlled by `extra_levels`: the neglected tail
// mass decays like sp(R)^K.
#pragma once

#include <functional>
#include <vector>

#include "core/model.hpp"

namespace perfbg::core {

class TruncatedFgBgChain {
 public:
  /// Builds the truncated generator with `extra_levels` repeating levels
  /// appended to the boundary (>= 1).
  TruncatedFgBgChain(const FgBgParams& params, int extra_levels);

  const FgBgParams& params() const { return params_; }
  const FgBgLayout& layout() const { return layout_; }
  /// The full truncated generator (flat, phase-expanded).
  const linalg::Matrix& generator() const { return generator_; }
  std::size_t state_count() const { return generator_.rows(); }

  /// Descriptor of flat state i: the macro state plus its level-resolved
  /// foreground count y (repeating slots get y = level - x).
  StateDesc describe(std::size_t flat_index) const;

  /// The distribution with all mass on the empty-and-idle state (uniform
  /// over arrival/service phases weighted by the arrival process's
  /// stationary phase distribution) — the natural "fresh disk" start.
  linalg::Vector empty_state() const;

  /// Stationary distribution of the truncated chain (GTH; exact up to the
  /// truncation). Mainly for validation against the QBD solution.
  linalg::Vector stationary() const;

  /// Transient distribution pi0 * exp(Q t) via uniformization.
  linalg::Vector transient(const linalg::Vector& pi0, double t) const;

  /// Expected foreground jobs in system under a distribution.
  double mean_fg_jobs(const linalg::Vector& pi) const;
  /// Expected background jobs in system under a distribution.
  double mean_bg_jobs(const linalg::Vector& pi) const;
  /// Probability that a background job is in service.
  double bg_busy_probability(const linalg::Vector& pi) const;
  /// Instantaneous background completion rate (jobs per unit time).
  double bg_completion_rate(const linalg::Vector& pi) const;
  /// Instantaneous rate at which spawned background jobs are dropped.
  double bg_drop_rate(const linalg::Vector& pi) const;

  /// Probability mass sitting in the top (reflecting) level — a truncation
  /// health check; keep it well below the tolerance of any conclusion.
  double top_level_mass(const linalg::Vector& pi) const;

  /// One row of a transient study: metrics of pi0 * exp(Q t) at time t plus
  /// the background work completed in [0, t] (time-integrated completion
  /// rate, evaluated with `steps` uniformization checkpoints and
  /// trapezoidal integration).
  struct TransientPoint {
    double time = 0.0;
    double mean_fg = 0.0;
    double mean_bg = 0.0;
    double bg_completed_so_far = 0.0;
    double bg_dropped_so_far = 0.0;
  };
  std::vector<TransientPoint> transient_sweep(const linalg::Vector& pi0, double horizon,
                                              int steps) const;

 private:
  FgBgParams params_;
  FgBgLayout layout_;
  int extra_levels_;
  linalg::Matrix generator_;
  std::vector<StateDesc> flat_desc_;  // per macro state (levels resolved)
  linalg::Vector exit_rate_;          // per flat state: service completion rate
};

}  // namespace perfbg::core
