// Classical vacation-queue baseline (the paper's related work, e.g. its
// refs [2, 20]): an M/G/1 queue with multiple exhaustive vacations under
// Poisson arrivals, evaluated with the decomposition result
//
//   E[Wq] = E[Wq^{M/G/1}] + E[V^2] / (2 E[V]).
//
// This is what pre-QBD analyses of background work use in place of the
// explicit foreground/background chain. Two limitations the benches
// demonstrate: (i) it assumes vacations repeat whenever the queue is empty,
// i.e. background work never runs out — exact only in the p = 1, large
// buffer, zero idle-wait corner of the FG/BG model; and (ii) it cannot
// represent dependent (MMPP) arrivals at all.
#pragma once

#include "traffic/phase_type.hpp"

namespace perfbg::core {

/// M/G/1 with multiple vacations: mean waiting time in queue (excluding
/// service) for Poisson(lambda) arrivals, PH service, i.i.d. PH vacations.
/// Throws std::invalid_argument when the queue is unstable (lambda E[S] >= 1).
double mg1_multiple_vacations_waiting_time(double lambda, const traffic::PhaseType& service,
                                           const traffic::PhaseType& vacation);

/// Mean number in system by Little's law: L = lambda (Wq + E[S]).
double mg1_multiple_vacations_number_in_system(double lambda,
                                               const traffic::PhaseType& service,
                                               const traffic::PhaseType& vacation);

/// Plain M/G/1 (no vacations) mean number in system (Pollaczek-Khinchine),
/// provided for baseline tables.
double mg1_number_in_system(double lambda, const traffic::PhaseType& service);

}  // namespace perfbg::core
