// The paper's stated future work (§6): "model extensions that capture more
// than one job priority level, i.e., different classes of background jobs."
//
// This module implements a two-class background extension of the FG/BG
// model: a completing foreground job spawns a class-1 (high-priority)
// background job with probability p1 or a class-2 (low-priority) one with
// probability p2 (p1 + p2 <= 1). Each class has its own finite buffer; when
// the idle wait expires, a class-1 job is served if any is waiting,
// otherwise a class-2 job. Service remains exponential and non-preemptive.
//
// The chain is again a QBD with levels j = y + x1 + x2: foreground arrivals
// move up, completions move down, and spawns move within a level. Repeating
// levels (j > X1 + X2) hold one slot per (activity, x1, x2) combination.
#pragma once

#include "core/state_space.hpp"
#include "qbd/qbd.hpp"
#include "qbd/solution.hpp"
#include "traffic/map_process.hpp"

namespace perfbg::core {

struct McParams {
  explicit McParams(traffic::MarkovianArrivalProcess arrival_process)
      : arrivals(std::move(arrival_process)) {}

  traffic::MarkovianArrivalProcess arrivals;
  double mean_service_time = 6.0;
  double p1 = 0.2;  ///< spawn probability of the high-priority class
  double p2 = 0.2;  ///< spawn probability of the low-priority class
  int buffer1 = 5;  ///< class-1 buffer X1
  int buffer2 = 5;  ///< class-2 buffer X2
  double idle_wait_intensity = 1.0;

  double service_rate() const { return 1.0 / mean_service_time; }
  double idle_wait_rate() const { return service_rate() / idle_wait_intensity; }
  double fg_offered_load() const { return arrivals.mean_rate() * mean_service_time; }

  void validate() const;
};

/// Activities of the two-class chain.
enum class McActivity { kFgService, kBg1Service, kBg2Service, kIdle };

struct McStateDesc {
  McActivity kind;
  int x1;  ///< class-1 background jobs in system
  int x2;  ///< class-2 background jobs in system
  int y;   ///< foreground jobs; for repeating slots y = level - x1 - x2
};

/// State-space layout: boundary (levels 0 .. X1+X2) plus the repeating
/// layout, each state expanded by the arrival phases.
class McLayout {
 public:
  McLayout(int buffer1, int buffer2, std::size_t phases);

  int buffer1() const { return buffer1_; }
  int buffer2() const { return buffer2_; }
  std::size_t phases() const { return phases_; }
  int first_repeating_level() const { return buffer1_ + buffer2_ + 1; }

  const std::vector<McStateDesc>& boundary() const { return boundary_; }
  const std::vector<McStateDesc>& repeating() const { return repeating_; }
  std::size_t boundary_flat_size() const { return boundary_.size() * phases_; }
  std::size_t repeating_flat_size() const { return repeating_.size() * phases_; }

  std::size_t boundary_index(McActivity kind, int x1, int x2, int y) const;
  std::size_t repeating_index(McActivity kind, int x1, int x2) const;

 private:
  int buffer1_, buffer2_;
  std::size_t phases_;
  std::vector<McStateDesc> boundary_;
  std::vector<McStateDesc> repeating_;
};

/// Steady-state metrics of the two-class system.
struct McMetrics {
  double fg_queue_length = 0.0;
  double bg1_queue_length = 0.0;
  double bg2_queue_length = 0.0;
  double bg1_completion = 0.0;  ///< fraction of spawned class-1 jobs admitted
  double bg2_completion = 0.0;
  double fg_delayed = 0.0;       ///< paper-style ratio, behind either class
  double busy_fraction = 0.0;
  double bg1_busy_fraction = 0.0;
  double bg2_busy_fraction = 0.0;
  double idle_fraction = 0.0;
  double fg_throughput = 0.0;
  double probability_mass = 0.0;
};

/// Builds the two-class QBD for the given parameters and layout.
qbd::QbdProcess build_multiclass_qbd(const McParams& params, const McLayout& layout);

/// Facade mirroring FgBgModel for the two-class system.
class McModel {
 public:
  explicit McModel(McParams params);

  const McParams& params() const { return params_; }
  const McLayout& layout() const { return layout_; }
  const qbd::QbdProcess& process() const { return process_; }
  bool is_stable() const { return process_.is_stable(); }
  double drift_ratio() const { return process_.drift_ratio(); }

  McMetrics solve(const qbd::RSolverOptions& opts = {}) const;

 private:
  McParams params_;
  McLayout layout_;
  qbd::QbdProcess process_;
};

}  // namespace perfbg::core
