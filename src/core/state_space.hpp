// State-space layout of the FG/BG Markov chain (paper Fig. 3, Section 4).
//
// A state is (activity, x, y, phase): x background jobs in system, y
// foreground jobs in system, and the MAP phase. Activities:
//   FgService — a foreground job is in service (y >= 1),
//   BgService — a background job is in service (x >= 1),
//   Idle      — no job in service; for x >= 1 the idle-wait clock runs.
//
// Levels are j = x + y. Levels 0..X (X = background buffer) are irregular and
// flattened into the QBD boundary; levels j > X all share the repeating
// layout [F(0), F(1), B(1), ..., F(X), B(X)] (x is fixed per slot, y = j - x).
#pragma once

#include <cstddef>
#include <vector>

#include "util/check.hpp"

namespace perfbg::core {

enum class Activity { kFgService, kBgService, kIdle };

/// One macro state (a block of `phases` adjacent QBD states).
struct StateDesc {
  Activity kind;
  int x;  ///< background jobs in system
  int y;  ///< foreground jobs in system; for repeating slots y = level - x
};

/// Precomputed index maps between (activity, x, y) macro states and flat QBD
/// block positions, for both the boundary and the repeating layout.
class FgBgLayout {
 public:
  /// bg_buffer >= 1 builds the full FG/BG space; bg_buffer == 0 builds the
  /// degenerate no-background space (plain MAP/M/1: boundary = {Idle(0,0)},
  /// repeating = {F(0)}), used when p == 0.
  FgBgLayout(int bg_buffer, std::size_t phases);

  int bg_buffer() const { return bg_buffer_; }
  std::size_t phases() const { return phases_; }

  /// Macro states of the flattened boundary (levels 0..X), in index order.
  const std::vector<StateDesc>& boundary() const { return boundary_; }
  /// Macro states of one repeating level, in index order (y not fixed).
  const std::vector<StateDesc>& repeating() const { return repeating_; }

  std::size_t boundary_macro_count() const { return boundary_.size(); }
  std::size_t repeating_macro_count() const { return repeating_.size(); }
  /// Flat sizes (macro count * phases).
  std::size_t boundary_flat_size() const { return boundary_.size() * phases_; }
  std::size_t repeating_flat_size() const { return repeating_.size() * phases_; }

  /// Macro index of a boundary state; the state must exist (x + y <= X and
  /// the activity constraints hold) or this throws std::invalid_argument.
  std::size_t boundary_index(Activity kind, int x, int y) const;

  /// Macro index of a repeating-layout slot (kind in {FgService, BgService}).
  std::size_t repeating_index(Activity kind, int x) const;

  /// The first repeating level number, X + 1.
  int first_repeating_level() const { return bg_buffer_ + 1; }

 private:
  int bg_buffer_;
  std::size_t phases_;
  std::vector<StateDesc> boundary_;
  std::vector<StateDesc> repeating_;
};

}  // namespace perfbg::core
