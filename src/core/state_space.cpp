#include "core/state_space.hpp"

namespace perfbg::core {

FgBgLayout::FgBgLayout(int bg_buffer, std::size_t phases)
    : bg_buffer_(bg_buffer), phases_(phases) {
  PERFBG_REQUIRE(bg_buffer >= 0, "background buffer must be >= 0");
  PERFBG_REQUIRE(phases >= 1, "MAP must have at least one phase");

  const int x_max = bg_buffer_;
  // Boundary: levels j = 0..X. Within level j:
  //   F(0, j), then interleaved F(x, j-x), B(x, j-x) for x = 1..j-1,
  //   then B(j, 0), then Idle(j, 0).
  for (int j = 0; j <= x_max; ++j) {
    for (int x = 0; x < j; ++x) {
      boundary_.push_back({Activity::kFgService, x, j - x});
      if (x >= 1) boundary_.push_back({Activity::kBgService, x, j - x});
    }
    if (j >= 1) boundary_.push_back({Activity::kBgService, j, 0});
    boundary_.push_back({Activity::kIdle, j, 0});
  }

  // Repeating layout: [F(0), F(1), B(1), ..., F(X), B(X)].
  repeating_.push_back({Activity::kFgService, 0, -1});
  for (int x = 1; x <= x_max; ++x) {
    repeating_.push_back({Activity::kFgService, x, -1});
    repeating_.push_back({Activity::kBgService, x, -1});
  }
}

std::size_t FgBgLayout::boundary_index(Activity kind, int x, int y) const {
  // Sizes are tiny ((X+1)^2 macro states); a linear scan keeps the invariants
  // in one obvious place.
  for (std::size_t i = 0; i < boundary_.size(); ++i) {
    const StateDesc& s = boundary_[i];
    if (s.kind == kind && s.x == x && s.y == y) return i;
  }
  PERFBG_REQUIRE(false, "no such boundary state");
  return 0;  // unreachable
}

std::size_t FgBgLayout::repeating_index(Activity kind, int x) const {
  PERFBG_REQUIRE(x >= 0 && x <= bg_buffer_, "x out of range for repeating layout");
  if (kind == Activity::kFgService) return x == 0 ? 0 : static_cast<std::size_t>(2 * x - 1);
  PERFBG_REQUIRE(kind == Activity::kBgService && x >= 1,
                 "repeating layout has only FgService and BgService slots");
  return static_cast<std::size_t>(2 * x);
}

}  // namespace perfbg::core
