// Facade: build the FG/BG chain, solve it, and evaluate the paper's metrics.
#pragma once

#include <optional>

#include "core/chain_builder.hpp"
#include "core/params.hpp"
#include "core/state_space.hpp"
#include "qbd/solution.hpp"

namespace perfbg::core {

/// Steady-state performance measures of the FG/BG system (paper Section 4.1
/// closed forms, plus flow-rate extensions).
struct FgBgMetrics {
  // --- the four quantities the paper plots ---
  double fg_queue_length = 0.0;   ///< QLEN_FG: mean FG jobs in system (Figs 5, 9, 11)
  double bg_queue_length = 0.0;   ///< mean BG jobs in system (Fig 8)
  double bg_completion = 0.0;     ///< Comp_BG: fraction of spawned BG jobs that
                                  ///< are admitted and complete (Figs 7, 10, 12)
  double fg_delayed = 0.0;        ///< WaitP_FG: the paper's ratio P[B-serving,
                                  ///< y>=1] / P[y>=1] (Figs 6, 13)

  // --- extensions ---
  double fg_delayed_arrivals = 0.0;  ///< arrival-weighted fraction of FG jobs
                                     ///< that arrive while a BG job is served
  double fg_offered_load = 0.0;      ///< lambda * E[S]
  double busy_fraction = 0.0;        ///< P[server busy] (FG or BG in service)
  double fg_busy_fraction = 0.0;     ///< P[FG in service]
  double bg_busy_fraction = 0.0;     ///< P[BG in service]
  double idle_fraction = 0.0;        ///< P[idle or idle-waiting]
  double fg_throughput = 0.0;        ///< FG completions per unit time (= lambda)
  double fg_response_time = 0.0;     ///< Little: QLEN_FG / lambda
  double bg_generation_rate = 0.0;   ///< p * mu * P[FG in service]
  double bg_accept_rate = 0.0;       ///< spawned BG jobs admitted per unit time
  double bg_drop_rate = 0.0;         ///< spawned BG jobs dropped per unit time
  double bg_throughput = 0.0;        ///< BG completions per unit time (= accept rate)
  double bg_response_time = 0.0;     ///< Little on admitted BG jobs
  double probability_mass = 0.0;     ///< total stationary mass (== 1 check)
};

/// Solved instance of the model. Exposes the aggregate metrics plus
/// state-level probabilities for validation and diagnostics.
class FgBgSolution {
 public:
  /// A non-null `metrics` registry receives the core.solve.metrics_eval
  /// timing for the closed-form metric evaluation.
  FgBgSolution(FgBgParams params, FgBgLayout layout, qbd::QbdSolution solution,
               obs::MetricsRegistry* metrics = nullptr);

  const FgBgParams& params() const { return params_; }
  const FgBgLayout& layout() const { return layout_; }
  const qbd::QbdSolution& qbd() const { return qbd_; }

  const FgBgMetrics& metrics() const { return metrics_; }

  /// Stationary probability of one boundary macro state (summed over phases).
  double boundary_mass(Activity kind, int x, int y) const;
  /// Total stationary probability of one repeating slot across all levels.
  double repeating_slot_mass(Activity kind, int x) const;
  /// P[exactly n FG jobs in system] for small n (n <= bg_buffer reaches the
  /// boundary; larger n sums matching repeating-layout slots level by level).
  double fg_count_probability(int n, int level_cutoff = 4096) const;

  /// Asymptotic geometric decay rate of the congestion tail (the caudal
  /// characteristic sp(R)): P[x + y > n] ~ c * sp(R)^n for large n. Useful
  /// for latency-percentile style provisioning without summing the tail.
  double tail_decay_rate() const { return qbd_.r_spectral_radius(); }

  /// Numerical-health record of the underlying QBD solve (see
  /// obs/health.hpp): convergence counters, residual-trajectory decay rate,
  /// fallback rung, drift and sp(R). Identity fields (key, attempt) are left
  /// for the caller to stamp before RunReport::add_health.
  obs::SolveHealth health() const { return qbd::solve_health(qbd_); }

 private:
  FgBgParams params_;
  FgBgLayout layout_;
  qbd::QbdSolution qbd_;
  FgBgMetrics metrics_;

  void compute_metrics();
};

/// The model: construct once, solve for the stationary metrics.
class FgBgModel {
 public:
  /// Validates parameters and builds the QBD blocks (cheap; solving is
  /// deferred to solve()). A non-null `metrics` registry receives phase
  /// timings for this model: core.chain_build here, core.solve.total /
  /// core.solve.metrics_eval plus the qbd.* metrics from solve().
  explicit FgBgModel(FgBgParams params, obs::MetricsRegistry* metrics = nullptr);

  const FgBgParams& params() const { return params_; }
  const FgBgLayout& layout() const { return layout_; }
  const qbd::QbdProcess& process() const { return process_; }

  /// True when the stationarity (mean-drift) condition holds.
  bool is_stable() const { return process_.is_stable(); }
  /// Drift ratio of the repeating part (< 1 iff stable).
  double drift_ratio() const { return process_.drift_ratio(); }

  /// Solves the QBD and evaluates all metrics. Unstable configurations fail
  /// the solver's preflight in microseconds with perfbg::Error{kUnstableQbd}
  /// (a std::runtime_error) naming the drift ratio.
  FgBgSolution solve(const qbd::RSolverOptions& opts = {}) const;

 private:
  FgBgParams params_;
  FgBgLayout layout_;
  qbd::QbdProcess process_;
  obs::MetricsRegistry* metrics_ = nullptr;
};

}  // namespace perfbg::core
